// Ablation B: mux coverage vs. timing budget.
//
// AddMUX() multiplexes only the cells whose slack absorbs the mux delay;
// this sweep adds an artificial slack margin to demand increasingly more
// headroom (fewer muxes) and reports the resulting dynamic/static power.
// margin = 0 reproduces the paper's rule ("critical path delay
// unchanged"); the extreme right of the sweep approaches the PI-only
// input-control technique.
//
// Usage: ablation_mux_coverage [--circuits ...] [--max-gates N]

#include <cstdio>

#include "bench_common.hpp"
#include "netlist/stats.hpp"

using namespace scanpower;
using namespace scanpower::benchtool;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  if (args.max_gates == 0) args.max_gates = 1500;
  default_to_small_set(args);
  const double margins_ps[] = {0.0, 10.0, 25.0, 50.0, 100.0, 1e9};

  std::printf("Ablation B: slack margin sweep (AddMUX timing budget)\n\n");
  std::printf("%-8s %12s %8s %8s %14s %12s\n", "circuit", "margin(ps)",
              "muxed", "cells", "dyn(uW/Hz)", "static(uW)");
  for (const PaperRow& row : paper_table1()) {
    if (!args.selected(row.circuit)) continue;
    const Netlist nl = prepare_circuit(row.circuit);
    const NetlistStats st = compute_stats(nl);
    if (st.num_comb_gates > static_cast<std::size_t>(args.max_gates)) continue;

    FlowOptions base = tuned_options(st.num_comb_gates);
    const TestSet tests = generate_tests(nl, base.tpg);
    for (const double margin : margins_ps) {
      FlowOptions opts = base;
      opts.mux.slack_margin_ps = margin;
      FlowResult details;
      ScanSession session(nl, opts);
      const ScanPowerResult r = session.run_proposed(tests, &details);
      std::printf("%-7s* %12.0f %8zu %8zu %14.3e %12.2f\n", row.circuit,
                  margin, details.mux_plan.num_multiplexed,
                  details.mux_plan.multiplexed.size(), r.dynamic_per_hz_uw,
                  r.static_uw);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
