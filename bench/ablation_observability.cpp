// Ablation A: what does the leakage-observability directive buy?
//
// The paper's FindControlledInputPattern() makes two decision types
// (candidate input choice, backtrace descent) "based on leakage
// observability" so that, among all transition-blocking vectors, a
// low-leakage one is selected. This harness runs the proposed flow with
// the directive on and off (undirected depth-based decisions, as the
// C-algorithm baseline uses) and with both observability estimators.
//
// Usage: ablation_observability [--circuits ...] [--max-gates N]

#include <cstdio>

#include "bench_common.hpp"
#include "netlist/stats.hpp"

using namespace scanpower;
using namespace scanpower::benchtool;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  if (args.max_gates == 0) args.max_gates = 1500;
  default_to_small_set(args);

  std::printf("Ablation A: leakage-observability directive\n\n");
  std::printf("%-8s | %12s %12s %12s | %s\n", "circuit", "undirected",
              "obs(MC)", "obs(prob)", "static power in uW (dynamic unchanged "
                                      "by design of the directive)");
  for (const PaperRow& row : paper_table1()) {
    if (!args.selected(row.circuit)) continue;
    const Netlist nl = prepare_circuit(row.circuit);
    const NetlistStats st = compute_stats(nl);
    if (st.num_comb_gates > static_cast<std::size_t>(args.max_gates)) continue;

    FlowOptions base = tuned_options(st.num_comb_gates);
    const TestSet tests = generate_tests(nl, base.tpg);

    FlowOptions undirected = base;
    undirected.use_observability_directive = false;
    FlowOptions mc = base;
    mc.observability.method = ObservabilityMethod::MonteCarlo;
    FlowOptions prob = base;
    prob.observability.method = ObservabilityMethod::Probabilistic;

    ScanSession s_un(nl, undirected);
    ScanSession s_mc(nl, mc);
    ScanSession s_pr(nl, prob);
    const ScanPowerResult r_un = s_un.run_proposed(tests, nullptr);
    const ScanPowerResult r_mc = s_mc.run_proposed(tests, nullptr);
    const ScanPowerResult r_pr = s_pr.run_proposed(tests, nullptr);
    std::printf("%-7s* | %12.2f %12.2f %12.2f | dyn %.3e / %.3e / %.3e\n",
                row.circuit, r_un.static_uw, r_mc.static_uw, r_pr.static_uw,
                r_un.dynamic_per_hz_uw, r_mc.dynamic_per_hz_uw,
                r_pr.dynamic_per_hz_uw);
    std::fflush(stdout);
  }
  return 0;
}
