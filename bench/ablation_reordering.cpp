// Ablation D (the paper's future-work hook): "No test vector reordering
// or scan cell reordering was performed in these experiments. By applying
// reordering techniques, further improvements can be achieved."
//
// This harness quantifies that sentence: it applies greedy test-vector
// reordering and greedy scan-cell reordering on top of the traditional
// and proposed structures and reports the dynamic-power deltas.
//
// Usage: ablation_reordering [--circuits ...] [--max-gates N]

#include <cstdio>

#include "bench_common.hpp"
#include "netlist/stats.hpp"
#include "scan/reorder.hpp"

using namespace scanpower;
using namespace scanpower::benchtool;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  if (args.max_gates == 0) args.max_gates = 1500;
  default_to_small_set(args);

  std::printf("Ablation D: vector/cell reordering on top of each structure\n\n");
  std::printf("%-8s %-12s %14s %14s %14s %14s\n", "circuit", "structure",
              "baseline", "+vec order", "+cell order", "+both");
  for (const PaperRow& row : paper_table1()) {
    if (!args.selected(row.circuit)) continue;
    const Netlist nl = prepare_circuit(row.circuit);
    const NetlistStats st = compute_stats(nl);
    if (st.num_comb_gates > static_cast<std::size_t>(args.max_gates)) continue;

    FlowOptions opts = tuned_options(st.num_comb_gates);
    const TestSet tests = generate_tests(nl, opts.tpg);
    const TestSet vec_ordered = reorder_test_vectors(tests);
    const ScanChainOrder cell_order = reorder_scan_cells(nl, tests);
    const ScanChainOrder cell_order_v = reorder_scan_cells(nl, vec_ordered);

    const LeakageModel leakage(opts.leakage_params);
    ScanPowerEvaluator eval(nl, leakage, opts.delay.caps(), opts.power);

    auto run4 = [&](std::span<const Logic> pi_ctl,
                    std::span<const Logic> mux_ctl, const char* label) {
      ScanSimOptions so = opts.scan;
      const double base =
          eval.evaluate(tests, pi_ctl, mux_ctl, so).dynamic_per_hz_uw;
      const double vec =
          eval.evaluate(vec_ordered, pi_ctl, mux_ctl, so).dynamic_per_hz_uw;
      so.chain_order = &cell_order;
      const double cell =
          eval.evaluate(tests, pi_ctl, mux_ctl, so).dynamic_per_hz_uw;
      so.chain_order = &cell_order_v;
      const double both =
          eval.evaluate(vec_ordered, pi_ctl, mux_ctl, so).dynamic_per_hz_uw;
      std::printf("%-8s %-12s %14.3e %14.3e %14.3e %14.3e\n", row.circuit,
                  label, base, vec, cell, both);
    };

    // Traditional structure.
    run4({}, {}, "traditional");
    // Proposed structure (pattern from the flow).
    FlowResult details;
    ScanSession session(nl, opts);
    session.run_proposed(tests, &details);
    run4(details.pattern.pi_pattern, details.pattern.mux_pattern, "proposed");
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
