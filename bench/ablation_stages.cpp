// Ablation C: contribution of each flow stage.
//
// The proposed method = AddMUX + observability-directed blocking pattern
// + min-leakage don't-care fill + pin reordering. This harness toggles
// the stages one at a time (keeping everything else fixed) so the
// per-stage contribution to the Table-I result is visible.
//
// Usage: ablation_stages [--circuits ...] [--max-gates N]

#include <cstdio>

#include "bench_common.hpp"
#include "netlist/stats.hpp"

using namespace scanpower;
using namespace scanpower::benchtool;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  if (args.max_gates == 0) args.max_gates = 1500;
  default_to_small_set(args);

  std::printf("Ablation C: per-stage contribution\n\n");
  std::printf("%-8s %-22s %14s %12s\n", "circuit", "configuration",
              "dyn(uW/Hz)", "static(uW)");
  for (const PaperRow& row : paper_table1()) {
    if (!args.selected(row.circuit)) continue;
    const Netlist nl = prepare_circuit(row.circuit);
    const NetlistStats st = compute_stats(nl);
    if (st.num_comb_gates > static_cast<std::size_t>(args.max_gates)) continue;

    FlowOptions base = tuned_options(st.num_comb_gates);
    const TestSet tests = generate_tests(nl, base.tpg);

    struct Config {
      const char* name;
      bool muxes, obs, fill, reorder;
    };
    const Config configs[] = {
        {"full method", true, true, true, true},
        {"- pin reorder", true, true, true, false},
        {"- min-leak fill", true, true, false, true},
        {"- observability", true, false, true, true},
        {"- muxes (PI only)", false, true, true, true},
        {"blocking only", true, false, false, false},
    };
    for (const Config& c : configs) {
      FlowOptions opts = base;
      opts.insert_muxes = c.muxes;
      opts.use_observability_directive = c.obs;
      opts.do_min_leakage_fill = c.fill;
      opts.do_pin_reorder = c.reorder;
      ScanSession session(nl, opts);
      const ScanPowerResult r = session.run_proposed(tests, nullptr);
      std::printf("%-7s* %-22s %14.3e %12.2f\n", row.circuit, c.name,
                  r.dynamic_per_hz_uw, r.static_uw);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
