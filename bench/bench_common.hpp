#pragma once
// Shared helpers for the experiment harnesses: circuit preparation,
// per-size flow tuning, and the paper's Table-I reference values.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "core/session.hpp"
#include "techmap/techmap.hpp"

namespace scanpower::benchtool {

/// Paper Table I rows (traditional / input-control / proposed).
struct PaperRow {
  const char* circuit;
  double trad_dyn, trad_stat;
  double ic_dyn, ic_stat;
  double prop_dyn, prop_stat;
  double impr_dyn_trad, impr_stat_trad;
  double impr_dyn_ic, impr_stat_ic;
};

inline const std::vector<PaperRow>& paper_table1() {
  static const std::vector<PaperRow> rows = {
      {"s344", 5.88e-8, 27.99, 5.72e-8, 27.50, 3.24e-8, 23.89, 44.82, 14.65, 43.23, 13.12},
      {"s382", 6.43e-8, 27.58, 5.51e-8, 26.69, 2.38e-8, 24.42, 62.90, 11.46, 56.73, 8.50},
      {"s444", 8.00e-8, 33.72, 6.92e-8, 33.30, 2.44e-8, 27.99, 69.44, 17.00, 64.67, 15.95},
      {"s510", 8.46e-8, 47.93, 8.18e-8, 47.50, 8.22e-8, 45.96, 2.92, 4.11, -0.41, 3.24},
      {"s641", 5.69e-8, 59.07, 1.77e-8, 56.97, 1.78e-8, 48.97, 68.80, 17.10, -0.5, 14.05},
      {"s713", 6.30e-8, 66.15, 1.85e-8, 64.90, 1.82e-8, 52.10, 71.06, 21.23, 1.25, 19.71},
      {"s1196", 3.10e-8, 115.54, 3.06e-8, 117.75, 2.52e-8, 95.78, 18.61, 17.09, 17.50, 18.65},
      {"s1238", 3.19e-8, 121.56, 3.39e-8, 124.75, 2.59e-8, 96.38, 18.64, 20.70, 23.63, 22.74},
      {"s1423", 2.24e-7, 128.22, 1.93e-7, 130.23, 5.43e-8, 117.0, 75.77, 9.02, 71.83, 10.43},
      {"s1494", 3.56e-7, 177.52, 3.48e-7, 179.86, 3.52e-7, 164.87, 9.52, 7.12, 7.45, 8.33},
      {"s5378", 8.90e-7, 327.52, 1.29e-8, 332.02, 1.17e-8, 315.0, 98.68, 3.82, 9.50, 5.12},
      {"s9234", 1.50e-6, 819.98, 1.68e-8, 854.52, 1.57e-8, 772.36, 98.95, 5.80, 6.96, 9.61},
  };
  return rows;
}

/// Maps the named ISCAS89-profile circuit onto the paper's library.
inline Netlist prepare_circuit(const std::string& name) {
  return map_to_nand_nor_inv(make_iscas89_like(name));
}

/// Flow options tuned by circuit size so the large profiles finish in
/// laptop time without changing the method (only search budgets shrink).
/// The fault-sim, observability and fill engines always run the 4-word
/// packed block; the large profiles additionally fan the fault sweep and
/// the Monte-Carlo observability out over all hardware threads (results
/// are bit-identical to the serial engines at fixed block width). The
/// packed power stack made the per-sample cost ~10x cheaper, so the large
/// profiles now afford the full sample/trial budgets.
inline FlowOptions tuned_options(std::size_t num_gates) {
  FlowOptions opts;
  opts.tpg.fault_sim.block_words = 4;
  opts.observability.block_words = 4;
  opts.fill.block_words = 4;
  if (num_gates > 4000) {
    opts.tpg.podem_backtrack_limit = 60;
    opts.tpg.max_random_batches = 48;
    opts.justify_backtrack_limit = 60;
    opts.max_power_patterns = 256;
    opts.tpg.fault_sim.num_threads = 0;  // hardware concurrency
    opts.observability.num_threads = 0;
  } else if (num_gates > 1500) {
    opts.tpg.podem_backtrack_limit = 200;
    opts.justify_backtrack_limit = 120;
    opts.max_power_patterns = 512;
    opts.tpg.fault_sim.num_threads = 0;  // hardware concurrency
    opts.observability.num_threads = 0;
  }
  return opts;
}

/// Parses "--circuits a,b,c" and "--max-gates N" style filters.
struct BenchArgs {
  std::vector<std::string> circuits;  ///< empty = all
  int max_gates = 0;                  ///< 0 = unlimited

  bool selected(const std::string& name) const {
    if (circuits.empty()) return true;
    for (const auto& c : circuits) {
      if (c == name) return true;
    }
    return false;
  }
};

/// Ablation harnesses default to a representative small/medium subset so
/// the whole bench sweep stays affordable; --circuits overrides.
inline void default_to_small_set(BenchArgs& args) {
  if (args.circuits.empty()) {
    args.circuits = {"s344", "s382", "s444"};
  }
}

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--circuits") == 0 && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string tok =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!tok.empty()) args.circuits.push_back(tok);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--max-gates") == 0 && i + 1 < argc) {
      args.max_gates = std::atoi(argv[++i]);
    }
  }
  return args;
}

}  // namespace scanpower::benchtool
