// Regenerates the *claims* of Figure 1 (the proposed scan structure):
// for each circuit, reports how many scan-cell outputs receive a mux, and
// verifies the three architectural properties the figure illustrates --
// the critical path is untouched, normal-mode behaviour (and hence fault
// coverage) is identical, and during shift every multiplexed pseudo-input
// presents its constant.
//
// Usage: figure1_structure [--circuits ...] [--max-gates N]

#include <cstdio>

#include "bench_common.hpp"
#include "core/verify.hpp"
#include "netlist/stats.hpp"

using namespace scanpower;
using namespace scanpower::benchtool;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  if (args.max_gates == 0) args.max_gates = 1500;  // verification is O(vectors * gates)
  default_to_small_set(args);

  std::printf("Figure 1: proposed scan structure -- mux coverage and checks\n\n");
  std::printf("%-8s %8s %9s %10s | %8s %8s %8s\n", "circuit", "cells",
              "muxed", "coverage", "Tcrit ok", "equiv", "consts");
  for (const PaperRow& row : paper_table1()) {
    if (!args.selected(row.circuit)) continue;
    const Netlist nl = prepare_circuit(row.circuit);
    const NetlistStats st = compute_stats(nl);
    if (st.num_comb_gates > static_cast<std::size_t>(args.max_gates)) {
      std::printf("%-7s* (skipped: %zu gates > --max-gates %d)\n",
                  row.circuit, st.num_comb_gates, args.max_gates);
      continue;
    }
    FlowOptions opts = tuned_options(st.num_comb_gates);
    const TestSet tests = generate_tests(nl, opts.tpg);
    FlowResult details;
    ScanSession session(nl, opts);
    session.run_proposed(tests, &details);
    const StructureVerification v = verify_mux_structure(
        nl, details.mux_plan, details.pattern.mux_pattern, opts.delay, &tests);
    std::printf("%-7s* %8zu %9zu %9.1f%% | %8s %8s %8s\n", row.circuit,
                details.mux_plan.multiplexed.size(),
                details.mux_plan.num_multiplexed,
                100.0 * details.mux_plan.coverage(),
                v.critical_delay_unchanged ? "yes" : "NO",
                v.normal_mode_equivalent ? "yes" : "NO",
                v.scan_mode_constants_ok ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf(
      "\n'Tcrit ok'  : STA critical delay unchanged after physical mux "
      "insertion\n'equiv'     : normal mode (SE=0) responses identical on "
      "random vectors + the test set\n'consts'    : shift mode (SE=1) "
      "presents the planned constants\n");
  return 0;
}
