// Reproduces Figure 2 of the paper: leakage current of a NAND2 gate per
// input state (45 nm technology). The paper's HSPICE/BSIM4 values are the
// calibration target of the analytic model, so this table must match
// exactly; the surrounding cells show the same stack-effect structure.

#include <cstdio>

#include "power/leakage_model.hpp"

using namespace scanpower;

int main() {
  const LeakageModel model;
  std::printf("Figure 2: leakage current of NAND2 (45 nm, 0.9 V)\n");
  std::printf("  A B | model (nA) | paper (nA)\n");
  std::printf("  ----+------------+-----------\n");
  const double paper[4] = {78, 73, 264, 408};
  for (unsigned a = 0; a <= 1; ++a) {
    for (unsigned b = 0; b <= 1; ++b) {
      // Pattern bit0 = pin A, bit1 = pin B.
      const unsigned pattern = a | (b << 1);
      const double leak = model.cell_leakage_na(GateType::Nand, 2, pattern);
      std::printf("  %u %u | %10.1f | %9.0f\n", a, b, leak,
                  paper[(a << 1) | b]);
    }
  }

  std::printf("\nFull characterized library (nA per input state):\n");
  auto print_cell = [&](GateType t, int width) {
    std::printf("  %s%d:", gate_type_name(t), width);
    for (unsigned p = 0; p < (1u << width); ++p) {
      std::printf(" %s=%.1f", [&] {
        static char buf[8];
        for (int i = 0; i < width; ++i) buf[i] = ((p >> i) & 1) ? '1' : '0';
        buf[width] = 0;
        return buf;
      }(), model.cell_leakage_na(t, width, p));
    }
    std::printf("\n");
  };
  print_cell(GateType::Not, 1);
  for (int w = 2; w <= 4; ++w) print_cell(GateType::Nand, w);
  for (int w = 2; w <= 4; ++w) print_cell(GateType::Nor, w);
  return 0;
}
