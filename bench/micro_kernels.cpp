// Throughput micro-benchmarks (google-benchmark) for the computational
// kernels behind every experiment: logic simulation, packed fault
// simulation, STA, leakage evaluation, observability and justification.

#include <benchmark/benchmark.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "atpg/fault_sim.hpp"
#include "atpg/packed_sim.hpp"
#include "atpg/tpg.hpp"
#include "benchgen/benchgen.hpp"
#include "compact/compact_diag.hpp"
#include "compact/misr.hpp"
#include "compact/signature_log.hpp"
#include "core/dont_care_fill.hpp"
#include "core/justify.hpp"
#include "core/session.hpp"
#include "core/work_queue.hpp"
#include "diag/diagnose.hpp"
#include "diag/noise.hpp"
#include "diag/response.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "netlist/bench_io.hpp"
#include "power/leakage_model.hpp"
#include "power/observability.hpp"
#include "power/packed_leakage.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "timing/sta.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace {

using namespace scanpower;

// Kernel-backend axis for the backend-dispatch benchmarks: argument
// values index this table (0=scalar, 1=avx2, 2=avx512, 3=wide). Only
// backends available on the running host are registered, so a JSON run
// never fails on a machine without the ISA -- its rows are just absent.
constexpr SimBackend kBenchBackends[] = {SimBackend::Scalar, SimBackend::Avx2,
                                         SimBackend::Avx512, SimBackend::Wide};

SimBackend bench_backend(std::int64_t idx) {
  return kBenchBackends[static_cast<std::size_t>(idx)];
}

std::vector<std::int64_t> available_backend_indices() {
  std::vector<std::int64_t> v;
  for (std::int64_t i = 0; i < 4; ++i) {
    if (backend_available(kBenchBackends[i])) v.push_back(i);
  }
  return v;
}

const Netlist& circuit(const std::string& name) {
  static std::map<std::string, Netlist> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, map_to_nand_nor_inv(make_iscas89_like(name))).first;
  }
  return it->second;
}

void BM_SimulatorFullEval(benchmark::State& state) {
  const Netlist& nl = circuit(state.range(0) == 0 ? "s344" : "s1423");
  Simulator sim(nl);
  Rng rng(1);
  for (auto _ : state) {
    for (GateId pi : nl.inputs()) sim.set_input(pi, from_bool(rng.next_bool()));
    for (GateId ff : nl.dffs()) sim.set_state(ff, from_bool(rng.next_bool()));
    sim.eval();
    benchmark::DoNotOptimize(sim.values().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(nl.num_gates()));
}
BENCHMARK(BM_SimulatorFullEval)->Arg(0)->Arg(1);

void BM_SimulatorIncrementalOneBit(benchmark::State& state) {
  const Netlist& nl = circuit(state.range(0) == 0 ? "s344" : "s1423");
  Simulator sim(nl);
  for (GateId pi : nl.inputs()) sim.set_input(pi, Logic::Zero);
  for (GateId ff : nl.dffs()) sim.set_state(ff, Logic::Zero);
  sim.eval();
  bool flip = false;
  for (auto _ : state) {
    sim.set_state(nl.dffs()[0], from_bool(flip));
    flip = !flip;
    sim.eval_incremental();
    benchmark::DoNotOptimize(sim.values().data());
  }
}
BENCHMARK(BM_SimulatorIncrementalOneBit)->Arg(0)->Arg(1);

void BM_PackedSim64Patterns(benchmark::State& state) {
  const Netlist& nl = circuit("s1423");
  PackedSimulator sim(nl);
  Rng rng(3);
  for (auto _ : state) {
    for (GateId pi : nl.inputs()) sim.set_source(pi, rng.next_u64());
    for (GateId ff : nl.dffs()) sim.set_source(ff, rng.next_u64());
    sim.eval();
    benchmark::DoNotOptimize(sim.values().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64 *
                          static_cast<int64_t>(nl.num_gates()));
}
BENCHMARK(BM_PackedSim64Patterns);

// Good-machine throughput vs block width: W*64 patterns per sweep. Args
// are (block words W, kernel backend index).
void BM_BlockSimEval(benchmark::State& state) {
  const Netlist& nl = circuit("s1423");
  const int words = static_cast<int>(state.range(0));
  BlockSimulator sim(nl, words, bench_backend(state.range(1)));
  Rng rng(3);
  for (auto _ : state) {
    for (GateId pi : nl.inputs()) {
      for (int w = 0; w < words; ++w) sim.set_source_word(pi, w, rng.next_u64());
    }
    for (GateId ff : nl.dffs()) {
      for (int w = 0; w < words; ++w) sim.set_source_word(ff, w, rng.next_u64());
    }
    sim.eval();
    benchmark::DoNotOptimize(sim.storage().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64 * words *
                          static_cast<int64_t>(nl.num_gates()));
}
BENCHMARK(BM_BlockSimEval)->Apply([](benchmark::internal::Benchmark* b) {
  for (std::int64_t be : available_backend_indices()) {
    const SimBackend backend = bench_backend(be);
    for (std::int64_t w : {1, 2, 4, 8, 16, 32}) {
      if (backend_supports_words(backend, static_cast<int>(w))) {
        b->Args({w, be});
      }
    }
  }
});

void BM_FaultSim64Patterns(benchmark::State& state) {
  const Netlist& nl = circuit("s344");
  const auto faults = collapse_faults(nl);
  FaultSimulator fsim(nl);
  Rng rng(5);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 64; ++i) pats.push_back(random_pattern(nl, rng));
  for (auto _ : state) {
    const FaultSimResult res = fsim.run(pats, faults);
    benchmark::DoNotOptimize(res.num_detected);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(faults.size()));
}
BENCHMARK(BM_FaultSim64Patterns);

// The acceptance kernel for the packed/parallel engine: PPSFP fault
// simulation of 256 random patterns over the full collapsed fault list of
// the s9234-like profile. Args are (block words W, worker threads, kernel
// backend index); (1, 1, scalar) is the seed engine's single-word
// single-thread configuration. Throughput is reported in fault-pattern
// pairs per second so configurations compare directly.
void BM_FaultSimS9234(benchmark::State& state) {
  const Netlist& nl = circuit("s9234");
  const auto faults = collapse_faults(nl);
  FaultSimOptions opts;
  opts.block_words = static_cast<int>(state.range(0));
  opts.num_threads = static_cast<int>(state.range(1));
  opts.backend = bench_backend(state.range(2));
  FaultSimulator fsim(nl, opts);
  Rng rng(9);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 256; ++i) pats.push_back(random_pattern(nl, rng));
  for (auto _ : state) {
    const FaultSimResult res = fsim.run(pats, faults);
    benchmark::DoNotOptimize(res.num_detected);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(faults.size()) *
                          static_cast<int64_t>(pats.size()));
}
BENCHMARK(BM_FaultSimS9234)
    ->Unit(benchmark::kMillisecond)
    ->Args({1, 1, 0})   // seed configuration
    ->Args({2, 1, 0})
    ->Args({4, 1, 0})
    ->Args({8, 1, 0})
    ->Args({4, 2, 0})
    ->Args({4, 4, 0})   // acceptance configuration
    ->Apply([](benchmark::internal::Benchmark* b) {
      // Backend comparison rows at the W=4 single-thread shape (the wide
      // backend at its native widths).
      for (std::int64_t be : available_backend_indices()) {
        if (be == 0) continue;  // scalar rows registered above
        const SimBackend backend = bench_backend(be);
        if (backend == SimBackend::Wide) {
          b->Args({16, 1, be})->Args({32, 1, be});
        } else {
          b->Args({4, 1, be})->Args({8, 1, be});
        }
      }
    });

// The diagnosis acceptance kernel: one full diagnose() call -- fanin-cone
// back-trace pruning plus packed scoring of every surviving candidate --
// against a synthetic single-fault failure log on the s9234-like profile
// (256 patterns, full collapsed fault list). Args are (block words W,
// worker threads, scoring early-exit, telemetry); rankings are
// bit-identical across every configuration at fixed early-exit setting,
// so throughput comparisons are apples-to-apples. The /4/1/0/0 vs
// /4/1/1/0 delta is the early-exit win recorded in BENCH_diag.json; the
// /4/1/1/0 vs /4/1/1/1 and /4/4/1/0 vs /4/4/1/1 deltas are the telemetry
// overhead bound (< 2%) recorded in BENCH_telemetry.json. The telemetry
// runs attach a live registry AND an enabled trace recorder (cleared each
// iteration so the span buffer cannot grow without bound).
void BM_DiagnosisS9234(benchmark::State& state) {
  const Netlist& nl = circuit("s9234");
  const auto faults = collapse_faults(nl);
  Rng rng(9);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 256; ++i) pats.push_back(random_pattern(nl, rng));

  // Deterministic device-under-diagnosis: the first detected fault past
  // the middle of the collapsed list.
  FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4});
  const FaultSimResult det = fsim.run(pats, faults);
  std::size_t injected = faults.size();
  for (std::size_t fi = faults.size() / 2; fi < faults.size(); ++fi) {
    if (det.detected[fi]) {
      injected = fi;
      break;
    }
  }
  SP_CHECK(injected < faults.size(),
           "BM_DiagnosisS9234: no detected fault in the second half");
  ResponseCapture capture(nl, 4);
  const FailureLog log = capture.inject(pats, faults[injected]);

  DiagnosisOptions opts;
  opts.block_words = static_cast<int>(state.range(0));
  opts.num_threads = static_cast<int>(state.range(1));
  opts.score_early_exit = state.range(2) != 0;
  const bool with_telemetry = state.range(3) != 0;
  Telemetry telem;
  if (with_telemetry) {
    telem.trace.set_enabled(true);
    opts.telemetry = &telem;
  }
  Diagnoser diag(nl, opts);
  for (auto _ : state) {
    const DiagnosisResult res = diag.diagnose(pats, faults, log);
    benchmark::DoNotOptimize(res.ranked.data());
    if (with_telemetry) telem.trace.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(faults.size()));
}
BENCHMARK(BM_DiagnosisS9234)
    ->Unit(benchmark::kMillisecond)
    ->Args({1, 1, 1, 0})
    ->Args({4, 1, 0, 0})   // scoring early-exit disabled (baseline)
    ->Args({4, 1, 1, 0})
    ->Args({4, 1, 1, 1})   // telemetry-on counterpart of /4/1/1/0
    ->Args({4, 4, 1, 0})   // acceptance configuration
    ->Args({4, 4, 1, 1});  // telemetry-on counterpart of /4/4/1/0

// Noisy-tester variant of BM_DiagnosisS9234: the same injected fault,
// but the failure log is corrupted by the seeded NoiseModel (5% record
// drops, 5% spurious flips) and diagnosed with a matching
// noise_tolerance. Args are (block words W, worker threads, suspect-set
// recovery on/off); the /4/4/0 vs /4/4/1 delta is the cost of the
// multi-fault union-cover pass on a noisy single-fault log, recorded in
// BENCH_noise.json.
void BM_DiagnosisS9234Noisy(benchmark::State& state) {
  const Netlist& nl = circuit("s9234");
  const auto faults = collapse_faults(nl);
  Rng rng(9);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 256; ++i) pats.push_back(random_pattern(nl, rng));

  // The same deterministic device-under-diagnosis as BM_DiagnosisS9234.
  FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4});
  const FaultSimResult det = fsim.run(pats, faults);
  std::size_t injected = faults.size();
  for (std::size_t fi = faults.size() / 2; fi < faults.size(); ++fi) {
    if (det.detected[fi]) {
      injected = fi;
      break;
    }
  }
  SP_CHECK(injected < faults.size(),
           "BM_DiagnosisS9234Noisy: no detected fault in the second half");
  ResponseCapture capture(nl, 4);
  FailureLog log = capture.inject(pats, faults[injected]);
  const NoiseModel noise(NoiseOptions{.drop_rate = 0.05, .flip_rate = 0.05});
  NoiseStats stats;
  log = noise.corrupt(log, capture.points().size(), &stats);

  DiagnosisOptions opts;
  opts.block_words = static_cast<int>(state.range(0));
  opts.num_threads = static_cast<int>(state.range(1));
  opts.multiplets = state.range(2) != 0;
  opts.noise_tolerance = stats.dropped + stats.flipped + 2;
  Diagnoser diag(nl, opts);
  for (auto _ : state) {
    const DiagnosisResult res = diag.diagnose(pats, faults, log);
    benchmark::DoNotOptimize(res.ranked.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(faults.size()));
}
BENCHMARK(BM_DiagnosisS9234Noisy)
    ->Unit(benchmark::kMillisecond)
    ->Args({1, 1, 1})
    ->Args({4, 4, 0})   // suspect-set recovery disabled (baseline)
    ->Args({4, 4, 1});  // acceptance configuration

// MISR time-compaction of the s9234-like profile's full 256-pattern
// response matrix (default width-32 register, 32-pattern windows). Arg 0
// is the scalar reference register (one response bit per step), args
// 1/4/8 the bit-sliced packed engine at that block width. Throughput in
// response bits compacted per second.
void BM_MisrCompact(benchmark::State& state) {
  const Netlist& nl = circuit("s9234");
  Rng rng(9);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 256; ++i) pats.push_back(random_pattern(nl, rng));
  ResponseCapture cap(nl, 4);
  const ResponseMatrix responses = cap.capture_good(pats);
  const MisrConfig cfg;
  if (state.range(0) == 0) {
    const Misr misr(cfg);
    for (auto _ : state) {
      benchmark::DoNotOptimize(misr.compact_scalar(responses));
    }
  } else {
    const MisrCompactor compactor(cfg, static_cast<int>(state.range(0)));
    std::vector<std::uint64_t> sigs(compactor.num_windows(pats.size()));
    for (auto _ : state) {
      compactor.compact(responses, nullptr, sigs);
      benchmark::DoNotOptimize(sigs.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(responses.num_points) *
                          static_cast<int64_t>(responses.num_patterns));
}
BENCHMARK(BM_MisrCompact)->Unit(benchmark::kMillisecond)
    ->Arg(0)->Arg(1)->Arg(4)->Arg(8);

// Compacted-diagnosis variant of BM_DiagnosisS9234: one full
// SignatureDiagnoser::diagnose() against the MISR signature log of the
// same injected fault (default width/window). Args are (block words W,
// worker threads); rankings are bit-identical across configurations.
void BM_DiagnosisS9234Compact(benchmark::State& state) {
  const Netlist& nl = circuit("s9234");
  const auto faults = collapse_faults(nl);
  Rng rng(9);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 256; ++i) pats.push_back(random_pattern(nl, rng));

  // The same deterministic device-under-diagnosis as BM_DiagnosisS9234.
  FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4});
  const FaultSimResult det = fsim.run(pats, faults);
  std::size_t injected = faults.size();
  for (std::size_t fi = faults.size() / 2; fi < faults.size(); ++fi) {
    if (det.detected[fi]) {
      injected = fi;
      break;
    }
  }
  SP_CHECK(injected < faults.size(),
           "BM_DiagnosisS9234Compact: no detected fault in the second half");
  SignatureCapture capture(nl, MisrConfig{}, 4);
  const SignatureLog log = capture.inject(pats, faults[injected]);

  DiagnosisOptions opts;
  opts.block_words = static_cast<int>(state.range(0));
  opts.num_threads = static_cast<int>(state.range(1));
  SignatureDiagnoser diag(nl, opts);
  for (auto _ : state) {
    const DiagnosisResult res = diag.diagnose(pats, faults, log);
    benchmark::DoNotOptimize(res.ranked.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(faults.size()));
}
BENCHMARK(BM_DiagnosisS9234Compact)
    ->Unit(benchmark::kMillisecond)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 4});

// The service-API acceptance kernel: 8 independent single-fault failure
// logs against the s9234-like profile (256 patterns, full collapsed
// list), diagnosed cold vs warm. Args are (warm session, worker threads):
//  - warm = 0: the stateless per-call path -- every log constructs a
//    throwaway ScanSession, paying the full shared-state build (netlist
//    copy, collapsed fault list, observation points + cones, good-machine
//    block cache, worker pool) before its diagnosis, which is what each
//    separate diag_cli-style invocation costs.
//  - warm = 1: one long-lived session diagnoses all 8 logs through
//    diagnose_batch(); the shared state was built once outside the loop,
//    logs fan round-robin across the session pool.
// Results are bit-identical between the two paths (guarded by
// tests/test_session.cpp); the warm/cold per-log time ratio is the
// amortization headline recorded in BENCH_session.json.
void BM_DiagnosisS9234Batch(benchmark::State& state) {
  const Netlist& nl = circuit("s9234");
  const bool warm = state.range(0) != 0;
  Rng rng(9);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 256; ++i) pats.push_back(random_pattern(nl, rng));

  FlowOptions fopts;
  fopts.diag.block_words = 4;
  fopts.diag.num_threads = static_cast<int>(state.range(1));

  // 8 deterministic devices-under-diagnosis: detected collapsed faults,
  // evenly spread over the fault list (an undetected fault's empty log
  // would skip cone pruning and distort the per-log cost).
  const auto faults = collapse_faults(nl);
  FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4});
  const FaultSimResult det = fsim.run(pats, faults);
  ScanSession session(nl, fopts);
  session.bind_patterns(pats);
  std::vector<Evidence> evidence;
  std::size_t next = 0;  // never re-pick a fault: 8 *distinct* logs
  for (std::size_t fi = 0; fi < faults.size() && evidence.size() < 8;
       fi += faults.size() / 11 + 1) {
    std::size_t pick = std::max(fi, next);
    while (pick < faults.size() && !det.detected[pick]) ++pick;
    if (pick >= faults.size()) break;
    next = pick + 1;
    evidence.push_back(session.inject(faults[pick]));
  }
  SP_CHECK(evidence.size() == 8, "BM_DiagnosisS9234Batch: need 8 logs");

  if (warm) {
    // Populate the lazy caches once so the loop measures steady state.
    benchmark::DoNotOptimize(session.diagnose_batch(evidence));
    for (auto _ : state) {
      const std::vector<DiagnosisResult> rs = session.diagnose_batch(evidence);
      benchmark::DoNotOptimize(rs.data());
    }
  } else {
    for (auto _ : state) {
      for (const Evidence& ev : evidence) {
        ScanSession cold(nl, fopts);
        cold.bind_patterns(pats);
        const DiagnosisResult r = cold.diagnose(ev);
        benchmark::DoNotOptimize(r.ranked.data());
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(evidence.size()));
}
BENCHMARK(BM_DiagnosisS9234Batch)
    ->Unit(benchmark::kMillisecond)
    ->Args({0, 1})   // cold per-call baseline
    ->Args({1, 1})   // warm session (acceptance comparison at T=1)
    ->Args({0, 4})
    ->Args({1, 4});

void BM_StaticTimingAnalysis(benchmark::State& state) {
  const Netlist& nl = circuit("s1423");
  const DelayModel model;
  for (auto _ : state) {
    TimingAnalysis sta(nl, model);
    benchmark::DoNotOptimize(sta.critical_delay_ps());
  }
}
BENCHMARK(BM_StaticTimingAnalysis);

void BM_CircuitLeakage(benchmark::State& state) {
  const Netlist& nl = circuit("s1423");
  const LeakageModel model;
  Simulator sim(nl);
  Rng rng(7);
  for (GateId pi : nl.inputs()) sim.set_input(pi, from_bool(rng.next_bool()));
  for (GateId ff : nl.dffs()) sim.set_state(ff, from_bool(rng.next_bool()));
  sim.eval();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.circuit_leakage_na(nl, sim.values()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(nl.num_gates()));
}
BENCHMARK(BM_CircuitLeakage);

// Leakage evaluation of 256 random fully specified vectors on the
// s9234-like profile: simulate + per-vector circuit leakage. Arg 0 is the
// scalar stack (one Simulator pass + circuit_leakage_na walk per vector),
// arg 1 the packed stack (one BlockSimulator sweep + per-lane table
// aggregation) with arg 2 the kernel backend index and W at the backend's
// native width (4, or 16 for the wide backend). Throughput in gate-vector
// pairs per second; one iteration evaluates one lane block, so items
// processed scale with the width.
void BM_LeakageEval(benchmark::State& state) {
  const Netlist& nl = circuit("s9234");
  const LeakageModel model;
  const bool packed = state.range(0) != 0;
  constexpr int kVectors = 256;
  Rng rng(7);
  std::int64_t vectors = kVectors;
  if (packed) {
    const SimBackend backend = bench_backend(state.range(1));
    const int words = backend == SimBackend::Wide ? 16 : 4;
    const GateLeakageTables tables(nl, model);
    const PackedLeakageEvaluator leval(nl, tables, backend);
    BlockSimulator sim(nl, words, backend);
    std::vector<double> leak(sim.lanes());
    vectors = static_cast<std::int64_t>(sim.lanes());
    for (auto _ : state) {
      for (GateId pi : nl.inputs()) {
        for (int w = 0; w < words; ++w) {
          sim.set_source_word(pi, w, rng.next_u64());
        }
      }
      for (GateId ff : nl.dffs()) {
        for (int w = 0; w < words; ++w) {
          sim.set_source_word(ff, w, rng.next_u64());
        }
      }
      sim.eval();
      leval.eval(sim, leak);
      benchmark::DoNotOptimize(leak.data());
    }
  } else {
    Simulator sim(nl);
    for (auto _ : state) {
      double total = 0.0;
      for (int v = 0; v < kVectors; ++v) {
        for (GateId pi : nl.inputs()) {
          sim.set_input(pi, from_bool(rng.next_bool()));
        }
        for (GateId ff : nl.dffs()) {
          sim.set_state(ff, from_bool(rng.next_bool()));
        }
        sim.eval_incremental();
        total += model.circuit_leakage_na(nl, sim.values());
      }
      benchmark::DoNotOptimize(total);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * vectors *
                          static_cast<int64_t>(nl.num_gates()));
}
BENCHMARK(BM_LeakageEval)
    ->Unit(benchmark::kMillisecond)
    ->Args({0, 0})
    ->Apply([](benchmark::internal::Benchmark* b) {
      for (std::int64_t be : available_backend_indices()) b->Args({1, be});
    });

// The power-stack acceptance kernel: Monte-Carlo leakage observability of
// the s9234-like profile, 256 samples. Args are (packed engine, block
// words W, worker threads, kernel backend index); (0, _, _, _) is the
// scalar per-sample baseline, (1, 4, 1, scalar) the single-thread
// acceptance configuration (>= 4x required). Packed results are
// bit-identical across thread counts and backends at fixed W.
void BM_ObservabilityMC(benchmark::State& state) {
  const Netlist& nl = circuit("s9234");
  const LeakageModel model;
  ObservabilityOptions opts;
  opts.samples = 256;
  opts.packed = state.range(0) != 0;
  opts.block_words = static_cast<int>(state.range(1));
  opts.num_threads = static_cast<int>(state.range(2));
  opts.backend = bench_backend(state.range(3));
  for (auto _ : state) {
    LeakageObservability obs(nl, model, opts);
    benchmark::DoNotOptimize(obs.values().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          opts.samples * static_cast<int64_t>(nl.num_gates()));
}
BENCHMARK(BM_ObservabilityMC)
    ->Unit(benchmark::kMillisecond)
    ->Args({0, 1, 1, 0})   // scalar per-sample baseline
    ->Args({1, 1, 1, 0})
    ->Args({1, 4, 1, 0})   // acceptance configuration
    ->Args({1, 4, 4, 0})
    ->Apply([](benchmark::internal::Benchmark* b) {
      for (std::int64_t be : available_backend_indices()) {
        if (be == 0) continue;  // scalar rows registered above
        const SimBackend backend = bench_backend(be);
        b->Args({1, backend == SimBackend::Wide ? 16 : 4, 1, be});
      }
    });

// Don't-care fill of an all-X pattern on the s9234-like profile (64
// candidate fills, every second scan cell multiplexed). Arg 0 scores
// candidates with the scalar 3-valued stack, arg 1 with the ternary
// packed engine; both pick the same fill.
void BM_DontCareFill(benchmark::State& state) {
  const Netlist& nl = circuit("s9234");
  const LeakageModel model;
  FillOptions opts;
  opts.packed = state.range(0) != 0;
  std::vector<bool> eligible(nl.dffs().size());
  for (std::size_t i = 0; i < eligible.size(); ++i) eligible[i] = i % 2 == 0;
  for (auto _ : state) {
    std::vector<Logic> pi(nl.inputs().size(), Logic::X);
    std::vector<Logic> mux(nl.dffs().size(), Logic::X);
    const FillResult res =
        fill_dont_cares_min_leakage(nl, model, pi, mux, eligible, opts);
    benchmark::DoNotOptimize(res.best_leakage_na);
  }
}
BENCHMARK(BM_DontCareFill)->Unit(benchmark::kMillisecond)->Arg(0)->Arg(1);

void BM_Justify(benchmark::State& state) {
  const Netlist& nl = circuit("s344");
  std::vector<bool> controllable(nl.num_gates(), false);
  for (GateId pi : nl.inputs()) controllable[pi] = true;
  for (GateId ff : nl.dffs()) controllable[ff] = true;
  // Justify deep internal lines round-robin.
  std::vector<GateId> targets;
  for (GateId id : nl.topo_order()) {
    if (nl.level(id) >= nl.depth() / 2) targets.push_back(id);
  }
  std::size_t k = 0;
  for (auto _ : state) {
    Justifier j(nl, controllable);
    const GateId t = targets[k++ % targets.size()];
    benchmark::DoNotOptimize(j.justify(t, true));
  }
}
BENCHMARK(BM_Justify);

void BM_TestGeneration(benchmark::State& state) {
  const Netlist& nl = circuit("s344");
  for (auto _ : state) {
    const TestSet ts = generate_tests(nl);
    benchmark::DoNotOptimize(ts.patterns.size());
  }
}
BENCHMARK(BM_TestGeneration)->Unit(benchmark::kMillisecond);

// Saturation benchmark for the diagnosis service stack: N client threads
// hammer M designs with failure logs, closed-loop (one outstanding
// request per client). Args are (warm, clients, designs):
//  - warm = 1: requests flow through one DiagnosisQueue whose designs
//    were open()ed up front -- shared DesignContexts out of the
//    SessionPool, queued logs coalesced per design into batched
//    64-candidate rounds.
//  - warm = 0: the cold per-call path -- every request constructs a
//    throwaway ScanSession (full design-keyed build) before diagnosing,
//    which is what per-invocation CLI calls cost.
// Engine knobs are pinned at T=4 / W=4 for both paths (the acceptance
// comparison in BENCH_server.json). Reported: logs/sec (items) plus
// p50/p99 per-request latency in ms. Results are bit-identical between
// the paths (guarded by tests/test_session_pool.cpp).
void BM_DiagServer(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  const int clients = static_cast<int>(state.range(1));
  const int ndesigns = static_cast<int>(state.range(2));
  static const char* kDesigns[] = {"s713", "s1423"};

  FlowOptions fopts;
  fopts.diag.block_words = 4;
  fopts.diag.num_threads = 4;

  // Per design: 96 random patterns and 8 distinct detected-fault logs.
  struct Dut {
    const Netlist* nl;
    std::vector<TestPattern> pats;
    std::vector<Evidence> evs;
  };
  std::vector<Dut> duts;
  for (int d = 0; d < ndesigns; ++d) {
    Dut dut;
    dut.nl = &circuit(kDesigns[d]);
    Rng rng(17 + d);
    for (int i = 0; i < 96; ++i) {
      dut.pats.push_back(random_pattern(*dut.nl, rng));
    }
    const auto faults = collapse_faults(*dut.nl);
    FaultSimulator fsim(*dut.nl, FaultSimOptions{.block_words = 4});
    const FaultSimResult det = fsim.run(dut.pats, faults);
    ScanSession inj(*dut.nl, fopts);
    inj.bind_patterns(dut.pats);
    std::size_t next = 0;
    for (std::size_t fi = 0; fi < faults.size() && dut.evs.size() < 8;
         fi += faults.size() / 11 + 1) {
      std::size_t pick = std::max(fi, next);
      while (pick < faults.size() && !det.detected[pick]) ++pick;
      if (pick >= faults.size()) break;
      next = pick + 1;
      dut.evs.push_back(inj.inject(faults[pick]));
    }
    SP_CHECK(dut.evs.size() == 8, "BM_DiagServer: need 8 logs per design");
    duts.push_back(std::move(dut));
  }

  // The queue (and its contexts) is service steady state: built once,
  // outside the measured loop, exactly like a long-running diag_server.
  Telemetry telem;
  DiagnosisQueue::Options qo;
  qo.pool_capacity = static_cast<std::size_t>(ndesigns);
  DiagnosisQueue queue(qo, &telem);
  std::vector<DiagnosisQueue::DesignKey> keys;
  if (warm) {
    for (const Dut& dut : duts) {
      keys.push_back(queue.open(*dut.nl, fopts, dut.pats));
    }
    queue.submit(keys[0], duts[0].evs[0]).get();  // populate lazy caches
  }

  constexpr int kPerClient = 8;  // requests per client per iteration
  std::mutex lat_mu;
  std::vector<double> lat_ms;
  for (auto _ : state) {
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        std::vector<double> local;
        local.reserve(kPerClient);
        for (int i = 0; i < kPerClient; ++i) {
          const Dut& dut = duts[static_cast<std::size_t>(c + i) % duts.size()];
          const Evidence& ev = dut.evs[static_cast<std::size_t>(i) %
                                       dut.evs.size()];
          const auto t0 = std::chrono::steady_clock::now();
          if (warm) {
            std::future<DiagnosisResult> f = queue.submit(
                keys[static_cast<std::size_t>(c + i) % keys.size()], ev);
            benchmark::DoNotOptimize(f.get().num_candidates);
          } else {
            ScanSession cold(*dut.nl, fopts);
            cold.bind_patterns(dut.pats);
            benchmark::DoNotOptimize(cold.diagnose(ev).num_candidates);
          }
          local.push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        }
        std::lock_guard<std::mutex> lock(lat_mu);
        lat_ms.insert(lat_ms.end(), local.begin(), local.end());
      });
    }
    for (std::thread& w : workers) w.join();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          clients * kPerClient);
  std::sort(lat_ms.begin(), lat_ms.end());
  if (!lat_ms.empty()) {
    const auto pct = [&](double p) {
      const std::size_t i = static_cast<std::size_t>(
          p * static_cast<double>(lat_ms.size() - 1));
      return lat_ms[i];
    };
    state.counters["p50_ms"] = pct(0.50);
    state.counters["p99_ms"] = pct(0.99);
  }
}
BENCHMARK(BM_DiagServer)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Args({0, 4, 1})   // cold per-call baseline, 4 clients, 1 design
    ->Args({1, 4, 1})   // warm queue (acceptance comparison)
    ->Args({0, 4, 2})
    ->Args({1, 4, 2})
    ->Args({1, 1, 1})   // no concurrency: queue overhead floor
    ->Args({1, 8, 2});  // oversubscribed saturation

// The same closed-loop saturation through the full network stack: N
// loopback DiagClients drive a NetServer whose queue/engine knobs match
// BM_DiagServer warm (T=4 / W=4, s713, 96 patterns, 8 detected-fault
// logs submitted as inject-index commands). Args are
// (clients, max_pending):
//  - max_pending = 0: unbounded queue. items/sec here over
//    BM_DiagServer/1/4/1 warm is the TCP transport tax (framing + two
//    socket hops per request) -- the BENCH_net.json acceptance wants
//    >= 0.8x.
//  - max_pending > 0: bounded queue with the Reject policy. Queue depth
//    cannot exceed the bound by construction (submit throws past it);
//    the "rejects" counter is how many overload frames the flood drew,
//    each absorbed by the client's jittered exponential backoff -- every
//    request still completes.
// Reported: requests/sec (items), p50/p99 per-request latency (submit +
// flush round trip) and the cumulative overload rejects.
void BM_DiagServerTcp(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const std::size_t max_pending = static_cast<std::size_t>(state.range(1));

  // The server loads the design by path; the netlist name is the file
  // stem, so the profile is written as <tmpdir>/s713.bench.
  const std::string dir =
      "/tmp/bm_diag_server_tcp_" + std::to_string(getpid());
  (void)mkdir(dir.c_str(), 0755);
  const std::string bench_path = dir + "/s713.bench";
  {
    std::ofstream f(bench_path);
    write_bench(f, circuit("s713"));
  }
  constexpr std::size_t kPatterns = 96;
  constexpr std::uint64_t kSeed = 17;

  // The same 8 detected faults BM_DiagServer injects, as indices the
  // wire commands can name.
  const Netlist& nl = circuit("s713");
  Rng rng(kSeed);
  std::vector<TestPattern> pats;
  for (std::size_t i = 0; i < kPatterns; ++i) {
    pats.push_back(random_pattern(nl, rng));
  }
  const auto faults = collapse_faults(nl);
  FaultSimulator fsim(nl, FaultSimOptions{.block_words = 4});
  const FaultSimResult det = fsim.run(pats, faults);
  std::vector<std::size_t> idx;
  std::size_t next = 0;
  for (std::size_t fi = 0; fi < faults.size() && idx.size() < 8;
       fi += faults.size() / 11 + 1) {
    std::size_t pick = std::max(fi, next);
    while (pick < faults.size() && !det.detected[pick]) ++pick;
    if (pick >= faults.size()) break;
    next = pick + 1;
    idx.push_back(pick);
  }
  SP_CHECK(idx.size() == 8, "BM_DiagServerTcp: need 8 detected faults");

  FlowOptions fopts;
  fopts.diag.block_words = 4;
  fopts.diag.num_threads = 4;

  Telemetry telem;
  DiagnosisQueue::Options qo;
  qo.pool_capacity = 1;
  qo.max_pending = max_pending;
  if (max_pending > 0) qo.overload = DiagnosisQueue::OverloadPolicy::Reject;
  qo.retry_hint_ms = 1;
  DiagnosisQueue queue(qo, &telem);
  net::NetServer::Options nopts;
  nopts.service.flow = fopts;
  net::NetServer server(queue, &telem, nopts);

  // Steady state built outside the measured loop: every client is
  // connected with the design registered (identical patterns, so the
  // later opens are no-ops) and the engine caches are hot.
  std::vector<std::unique_ptr<net::DiagClient>> conns;
  for (int c = 0; c < clients; ++c) {
    net::DiagClient::Options copts;
    copts.seed = 0xbacc0ff + static_cast<std::uint64_t>(c);
    copts.backoff_base_ms = 1;
    copts.backoff_max_ms = 50;
    copts.max_retries = 10'000;
    conns.push_back(std::make_unique<net::DiagClient>(
        "127.0.0.1", server.port(), copts));
    conns.back()->design(bench_path);
    conns.back()->patterns(kPatterns, kSeed);
  }
  conns[0]->submit("inject-index " + std::to_string(idx[0]));
  conns[0]->flush();  // populate lazy caches

  constexpr int kPerClient = 8;  // requests per client per iteration
  std::mutex lat_mu;
  std::vector<double> lat_ms;
  for (auto _ : state) {
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        std::vector<double> local;
        local.reserve(kPerClient);
        for (int i = 0; i < kPerClient; ++i) {
          const std::size_t f = idx[static_cast<std::size_t>(c + i) %
                                    idx.size()];
          const auto t0 = std::chrono::steady_clock::now();
          conns[static_cast<std::size_t>(c)]->submit("inject-index " +
                                                     std::to_string(f));
          benchmark::DoNotOptimize(
              conns[static_cast<std::size_t>(c)]->flush().size());
          local.push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        }
        std::lock_guard<std::mutex> lock(lat_mu);
        lat_ms.insert(lat_ms.end(), local.begin(), local.end());
      });
    }
    for (std::thread& w : workers) w.join();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          clients * kPerClient);
  std::uint64_t rejects = 0;
  for (auto& c : conns) {
    rejects += c->overload_retries();
    c->quit();
  }
  state.counters["rejects"] = static_cast<double>(rejects);
  state.counters["queue_rejected"] = static_cast<double>(
      telem.metrics.snapshot().counter(CounterId::kQueueRejected));
  std::sort(lat_ms.begin(), lat_ms.end());
  if (!lat_ms.empty()) {
    const auto pct = [&](double p) {
      const std::size_t i = static_cast<std::size_t>(
          p * static_cast<double>(lat_ms.size() - 1));
      return lat_ms[i];
    };
    state.counters["p50_ms"] = pct(0.50);
    state.counters["p99_ms"] = pct(0.99);
  }
  conns.clear();
  server.shutdown();
  std::remove(bench_path.c_str());
  rmdir(dir.c_str());
}
BENCHMARK(BM_DiagServerTcp)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Args({1, 0})   // single client: transport overhead floor
    ->Args({4, 0})   // warm 4-client throughput (vs BM_DiagServer/1/4/1)
    ->Args({4, 2});  // bounded flood: Reject + client backoff

}  // namespace

BENCHMARK_MAIN();
