// Regenerates Table I of the paper: dynamic (uW/Hz) and static (uW) power
// of the combinational part during scan, for traditional scan, the
// input-control technique [Huang & Lee, TCAD'01] and the proposed
// structure, on the twelve ISCAS89-profile circuits.
//
// Absolute numbers differ from the paper (synthetic circuit instances, an
// analytic leakage model calibrated only at NAND2, our own ATPG vectors);
// the comparison targets are the *shape* columns: who wins, by roughly
// what factor, and where the method saturates.
//
// Usage: table1_power [--circuits s344,s382] [--max-gates N]

#include <cstdio>

#include "bench_common.hpp"
#include "netlist/stats.hpp"
#include "util/thread_pool.hpp"

using namespace scanpower;
using namespace scanpower::benchtool;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv);

  std::printf(
      "Table I: power dissipation for the proposed and prior structures\n"
      "(* = synthetic ISCAS89-profile circuit; see DESIGN.md)\n\n");
  std::printf(
      "%-8s | %-23s | %-23s | %-23s | %-15s | %-15s\n", "", "traditional",
      "input control [8]", "proposed", "impr vs trad %", "impr vs IC %");
  std::printf(
      "%-8s | %11s %11s | %11s %11s | %11s %11s | %7s %7s | %7s %7s\n",
      "circuit", "dyn(uW/Hz)", "stat(uW)", "dyn(uW/Hz)", "stat(uW)",
      "dyn(uW/Hz)", "stat(uW)", "dyn", "stat", "dyn", "stat");
  const char* sep =
      "---------+-------------------------+-------------------------+----"
      "---------------------+-----------------+----------------\n";
  std::printf("%s", sep);

  for (const PaperRow& row : paper_table1()) {
    if (!args.selected(row.circuit)) continue;
    const Netlist nl = prepare_circuit(row.circuit);
    const NetlistStats st = compute_stats(nl);
    if (args.max_gates > 0 &&
        st.num_comb_gates > static_cast<std::size_t>(args.max_gates)) {
      std::printf("%-7s* | skipped (--max-gates %d)\n", row.circuit,
                  args.max_gates);
      continue;
    }
    const FlowOptions opts = tuned_options(st.num_comb_gates);
    ScanSession session(nl, opts);
    const FlowResult r = session.run_flow();
    std::printf(
        "%-7s* | %11.3e %11.2f | %11.3e %11.2f | %11.3e %11.2f | %7.2f "
        "%7.2f | %7.2f %7.2f   (measured)\n",
        row.circuit, r.traditional.dynamic_per_hz_uw, r.traditional.static_uw,
        r.input_control.dynamic_per_hz_uw, r.input_control.static_uw,
        r.proposed.dynamic_per_hz_uw, r.proposed.static_uw,
        r.dyn_vs_traditional_pct, r.stat_vs_traditional_pct,
        r.dyn_vs_input_control_pct, r.stat_vs_input_control_pct);
    std::printf(
        "%-8s | %11.3e %11.2f | %11.3e %11.2f | %11.3e %11.2f | %7.2f "
        "%7.2f | %7.2f %7.2f   (paper)\n",
        "", row.trad_dyn, row.trad_stat, row.ic_dyn, row.ic_stat,
        row.prop_dyn, row.prop_stat, row.impr_dyn_trad, row.impr_stat_trad,
        row.impr_dyn_ic, row.impr_stat_ic);
    std::printf("%-8s | muxed %zu/%zu cells, %zu patterns, %.1f%% coverage, "
                "blocked %zu / propagated %zu gates [fsim %dx64 lanes, "
                "%d thread(s)]\n",
                "", r.mux_plan.num_multiplexed, r.mux_plan.multiplexed.size(),
                r.num_patterns, 100.0 * r.fault_coverage,
                r.pattern.gates_blocked, r.pattern.gates_propagated,
                opts.tpg.fault_sim.block_words,
                ThreadPool::resolve_threads(opts.tpg.fault_sim.num_threads));
    std::printf("%s", sep);
    std::fflush(stdout);
  }
  return 0;
}
