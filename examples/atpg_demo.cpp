// ATPG substrate demo: the test-generation flow the experiments feed on
// (the paper uses ATOM vectors; this library ships its own generator --
// random phase, PODEM top-off, reverse-order compaction).
//
// Shows: fault universe and collapsing, per-phase progress, final
// coverage, and a dump of the first few patterns.

#include <cstdio>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/podem.hpp"
#include "atpg/tpg.hpp"
#include "benchgen/benchgen.hpp"
#include "techmap/techmap.hpp"
#include "util/log.hpp"

using namespace scanpower;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s344";
  set_log_level(LogLevel::Info);  // narrate the TPG phases

  const Netlist nl = map_to_nand_nor_inv(make_circuit(name));
  std::printf("circuit %s*: %zu gates, %zu PIs, %zu scan cells\n\n",
              name.c_str(), nl.num_gates(), nl.inputs().size(),
              nl.dffs().size());

  const auto all = enumerate_faults(nl);
  const auto collapsed = collapse_faults(nl);
  std::printf("faults: %zu raw -> %zu collapsed (%.1f%%)\n\n", all.size(),
              collapsed.size(), 100.0 * collapsed.size() / all.size());

  const TestSet ts = generate_tests(nl);
  std::printf("\nresult: %zu patterns\n", ts.patterns.size());
  std::printf("  coverage        : %.2f%% of all collapsed faults\n",
              100.0 * ts.fault_coverage());
  std::printf("  test efficiency : %.2f%% of testable faults\n",
              100.0 * ts.test_efficiency());
  std::printf("  untestable      : %zu (proven redundant by PODEM)\n",
              ts.untestable_faults);
  std::printf("  aborted         : %zu\n\n", ts.aborted_faults);

  std::printf("first patterns (pi|scan-cells):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ts.patterns.size()); ++i) {
    std::printf("  #%zu %s\n", i, ts.patterns[i].to_string().c_str());
  }

  // Single-fault PODEM walkthrough on the first undetectable-by-chance
  // stem fault.
  const Fault demo = collapsed.front();
  Podem podem(nl);
  const PodemResult r = podem.generate(demo);
  std::printf("\nPODEM on %s: %s (%d backtracks)\n",
              demo.to_string(nl).c_str(),
              r.status == PodemStatus::Detected     ? "detected"
              : r.status == PodemStatus::Untestable ? "untestable"
                                                    : "aborted",
              r.backtracks);
  if (r.status == PodemStatus::Detected) {
    std::printf("  cube: %s\n", r.pattern.to_string().c_str());
  }
  return 0;
}
