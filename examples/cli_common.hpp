#pragma once
// Shared helpers for the example command-line front ends (diag_cli,
// flow_cli, min_leakage_vector): uniform "--flag <value>" parsing and
// design loading, so every CLI agrees on conventions instead of each
// re-implementing its own strcmp/atoi ladder.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "atpg/sim_backend.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog_io.hpp"
#include "techmap/techmap.hpp"
#include "util/log.hpp"

namespace scanpower::cli {

/// Parses a --log-level value; a bad name is a fatal usage error.
inline LogLevel parse_log_level(const char* v) {
  if (std::strcmp(v, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(v, "info") == 0) return LogLevel::Info;
  if (std::strcmp(v, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(v, "error") == 0) return LogLevel::Error;
  if (std::strcmp(v, "off") == 0) return LogLevel::Off;
  std::fprintf(stderr,
               "error: --log-level must be debug, info, warn, error or off "
               "(got \"%s\")\n",
               v);
  std::exit(2);
}

/// True iff argv[i] is exactly `name` (a value-less flag).
inline bool flag(char** argv, int i, const char* name) {
  return std::strcmp(argv[i], name) == 0;
}

/// Matches "--name <value>": when argv[i] equals `name` the value is
/// consumed (advancing `i`) and stored in `out`. A trailing flag with no
/// value is a fatal usage error -- legacy parsers silently fell through
/// to the generic usage message.
inline bool value_flag(int argc, char** argv, int& i, const char* name,
                       const char*& out) {
  if (std::strcmp(argv[i], name) != 0) return false;
  if (i + 1 >= argc) {
    std::fprintf(stderr, "error: %s requires a value\n", name);
    std::exit(2);
  }
  out = argv[++i];
  return true;
}

inline bool value_flag(int argc, char** argv, int& i, const char* name,
                       int& out) {
  const char* v = nullptr;
  if (!value_flag(argc, argv, i, name, v)) return false;
  out = std::atoi(v);
  return true;
}

inline bool value_flag(int argc, char** argv, int& i, const char* name,
                       long& out) {
  const char* v = nullptr;
  if (!value_flag(argc, argv, i, name, v)) return false;
  out = std::atol(v);
  return true;
}

inline bool value_flag(int argc, char** argv, int& i, const char* name,
                       double& out) {
  const char* v = nullptr;
  if (!value_flag(argc, argv, i, name, v)) return false;
  out = std::atof(v);
  return true;
}

inline bool value_flag(int argc, char** argv, int& i, const char* name,
                       std::uint64_t& out) {
  const char* v = nullptr;
  if (!value_flag(argc, argv, i, name, v)) return false;
  out = std::strtoull(v, nullptr, 10);
  return true;
}

/// Matches "--name <backend>" (auto/scalar/avx2/avx512/wide); a bad name
/// is a fatal usage error listing the valid ones.
inline bool backend_flag(int argc, char** argv, int& i, const char* name,
                         SimBackend& out) {
  const char* v = nullptr;
  if (!value_flag(argc, argv, i, name, v)) return false;
  if (!parse_backend(v, &out)) {
    std::fprintf(stderr,
                 "error: %s must be auto, scalar, avx2, avx512 or wide "
                 "(got \"%s\")\n",
                 name, v);
    std::exit(2);
  }
  return true;
}

/// Hexadecimal variant of value_flag (e.g. --misr-poly).
inline bool hex_value_flag(int argc, char** argv, int& i, const char* name,
                           std::uint64_t& out) {
  const char* v = nullptr;
  if (!value_flag(argc, argv, i, name, v)) return false;
  out = std::strtoull(v, nullptr, 16);
  return true;
}

inline bool is_verilog_path(const std::string& path) {
  return path.size() > 2 && path.rfind(".v") == path.size() - 2;
}

/// Loads a .bench / structural .v design (picked by extension) and, when
/// `do_map` is set, maps it onto the paper's NAND/NOR/INV library.
inline Netlist load_design(const std::string& path, bool do_map) {
  Netlist nl = is_verilog_path(path) ? parse_verilog_file(path)
                                     : parse_bench_file(path);
  if (do_map && !is_mapped(nl)) nl = map_to_nand_nor_inv(nl);
  return nl;
}

}  // namespace scanpower::cli
