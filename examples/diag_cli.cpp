// Fault-diagnosis front end: read a .bench / structural .v design, obtain
// a failing-pattern log (from a tester file, or synthetically by injecting
// a fault), and print the ranked candidate report.
//
//   diag_cli <design.bench|design.v> [options]
//     --log <file>         load a failure log (see diag/response.hpp format;
//                          name-based "po:<net>"/"ff:<cell>" records resolve
//                          against the loaded design)
//     --inject <fault>     inject "net/sa0" / "gate.in2/sa1" synthetically
//     --inject-index <n>   inject the n-th collapsed fault
//     --save-log <file>    write the (synthetic) failure log (with --compact:
//                          the signature log)
//     --named-log          save name-based records (survive renumbering)
//     --no-early-exit      score every candidate to completion
//     --random <n>         use n random patterns instead of the ATPG set
//     --seed <n>           pattern seed
//     --threads <n>        candidate-scoring worker threads (0 = all cores)
//     --block-words <w>    packed block width (1, 2, 4 or 8)
//     --no-prune           score the whole fault list (skip cone back-trace)
//     --top <n>            report size (default 10)
//     --json <file>        machine-readable result dump
//     --no-map             skip NAND/NOR/INV technology mapping
//     --verbose            narrate progress
//
//   Response compaction (diagnosis over MISR signatures):
//     --compact            compact responses into per-window MISR signatures
//                          and diagnose window signature mismatches instead
//                          of per-point failures
//     --misr-width <n>     MISR register width in bits, 4..64 (default 32;
//                          implies --compact)
//     --misr-poly <hex>    MISR feedback polynomial, Galois right-shift form,
//                          top bit required (default: per-width CRC constant;
//                          implies --compact)
//     --window <k>         patterns compacted per signature window
//                          (default 32; implies --compact)
//     --signature-log <f>  load a signature log as the failure source (its
//                          recorded MISR configuration wins; implies
//                          --compact)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/flow.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "netlist/verilog_io.hpp"
#include "techmap/techmap.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace scanpower;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <design.bench|design.v> [--log file | --inject fault |"
      " --inject-index n | --signature-log file]\n"
      "          [--save-log file] [--named-log] [--random n] [--seed n]\n"
      "          [--threads n] [--block-words w] [--no-prune]\n"
      "          [--no-early-exit] [--top n] [--json file] [--no-map]\n"
      "          [--verbose]\n"
      "          [--compact] [--misr-width n] [--misr-poly hex] [--window k]\n"
      "\n"
      "  --compact diagnoses MISR-compacted per-window signatures instead of\n"
      "  per-point failures; --misr-width/--misr-poly/--window configure the\n"
      "  compactor (and imply --compact), --signature-log loads a recorded\n"
      "  signature log (its MISR configuration wins).\n",
      argv0);
  return 2;
}

void dump_json(const std::string& path, const Netlist& nl,
               const DiagnosisOptions& dopts, const FailureLog& log,
               const DiagnosisResult& res, std::size_t num_patterns,
               std::size_t top, const SignatureLog* slog = nullptr) {
  std::ofstream f(path);
  SP_CHECK(f.good(), "cannot write " + path);
  JsonWriter j(f);
  j.begin_object();
  j.field("circuit", nl.name());
  j.field("num_patterns", static_cast<std::uint64_t>(num_patterns));
  j.begin_object("options");
  j.field("block_words", dopts.block_words);
  j.field("num_threads", dopts.num_threads);
  j.field("cone_pruning", dopts.cone_pruning);
  j.field("score_early_exit", dopts.score_early_exit);
  j.end_object();
  if (slog != nullptr) {
    j.begin_object("compact");
    j.field("misr_width", slog->misr.width);
    j.field("misr_poly", strprintf("%llx", static_cast<unsigned long long>(
                                               slog->misr.resolved_poly())));
    j.field("window", slog->misr.window);
    j.field("num_windows", static_cast<std::uint64_t>(res.num_windows));
    j.field("num_failing_windows",
            static_cast<std::uint64_t>(res.num_failing_windows));
    j.field("num_masked", static_cast<std::uint64_t>(res.num_masked));
    j.end_object();
  }
  j.begin_object("log");
  j.field("num_failures", static_cast<std::uint64_t>(
                              slog ? res.num_failures : log.failures.size()));
  j.field("num_failing_patterns",
          static_cast<std::uint64_t>(res.num_failing_patterns));
  j.field("num_failing_points",
          static_cast<std::uint64_t>(res.num_failing_points));
  j.end_object();
  j.field("num_faults", static_cast<std::uint64_t>(res.num_faults));
  j.field("num_candidates", static_cast<std::uint64_t>(res.num_candidates));
  j.field("num_dropped", static_cast<std::uint64_t>(res.num_dropped));
  j.begin_array("ranked");
  for (std::size_t i = 0; i < res.ranked.size() && i < top; ++i) {
    const CandidateScore& sc = res.ranked[i];
    j.begin_object();
    j.field("rank", static_cast<std::uint64_t>(res.rank_of(sc.fault)));
    j.field("fault", sc.fault.to_string(nl));
    j.field("tfsf", sc.tfsf);
    j.field("tfsp", sc.tfsp);
    j.field("tpsf", sc.tpsf);
    j.field("exact", sc.exact());
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

void print_ranked(const Netlist& nl, const DiagnosisResult& res,
                  std::size_t top) {
  std::printf("%5s %-28s %8s %8s %8s %6s\n", "rank", "fault", "TFSF", "TFSP",
              "TPSF", "exact");
  for (std::size_t i = 0; i < res.ranked.size() && i < top; ++i) {
    const CandidateScore& sc = res.ranked[i];
    std::printf("%5zu %-28s %8llu %8llu %8llu %6s\n", res.rank_of(sc.fault),
                sc.fault.to_string(nl).c_str(),
                static_cast<unsigned long long>(sc.tfsf),
                static_cast<unsigned long long>(sc.tfsp),
                static_cast<unsigned long long>(sc.tpsf),
                sc.exact() ? "yes" : "no");
  }
  if (res.ranked.size() > top) {
    std::printf("  ... %zu more candidates\n", res.ranked.size() - top);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const char* path = nullptr;
  const char* log_path = nullptr;
  const char* inject_spec = nullptr;
  long inject_index = -1;
  const char* save_log_path = nullptr;
  const char* json_path = nullptr;
  const char* sig_log_path = nullptr;
  long num_random = 0;
  std::uint64_t seed = 0xd1a6ULL;
  bool do_map = true;
  bool named_log = false;
  bool compact = false;
  MisrConfig misr;
  DiagnosisOptions dopts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
      log_path = argv[++i];
    } else if (std::strcmp(argv[i], "--compact") == 0) {
      compact = true;
    } else if (std::strcmp(argv[i], "--misr-width") == 0 && i + 1 < argc) {
      misr.width = std::atoi(argv[++i]);
      compact = true;
    } else if (std::strcmp(argv[i], "--misr-poly") == 0 && i + 1 < argc) {
      misr.poly = std::strtoull(argv[++i], nullptr, 16);
      compact = true;
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      misr.window = std::atoi(argv[++i]);
      compact = true;
    } else if (std::strcmp(argv[i], "--signature-log") == 0 && i + 1 < argc) {
      sig_log_path = argv[++i];
      compact = true;
    } else if (std::strcmp(argv[i], "--inject") == 0 && i + 1 < argc) {
      inject_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--inject-index") == 0 && i + 1 < argc) {
      inject_index = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--save-log") == 0 && i + 1 < argc) {
      save_log_path = argv[++i];
    } else if (std::strcmp(argv[i], "--random") == 0 && i + 1 < argc) {
      num_random = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      dopts.num_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--block-words") == 0 && i + 1 < argc) {
      dopts.block_words = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-prune") == 0) {
      dopts.cone_pruning = false;
    } else if (std::strcmp(argv[i], "--no-early-exit") == 0) {
      dopts.score_early_exit = false;
    } else if (std::strcmp(argv[i], "--named-log") == 0) {
      named_log = true;
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      dopts.max_report = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-map") == 0) {
      do_map = false;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      set_log_level(LogLevel::Info);
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      path = argv[i];
    }
  }
  if (!path) return usage(argv[0]);
  const int sources = (log_path != nullptr) + (inject_spec != nullptr) +
                      (inject_index >= 0) + (sig_log_path != nullptr);
  if (sources != 1) {
    std::fprintf(stderr,
                 "error: exactly one of --log / --inject / --inject-index / "
                 "--signature-log is required\n");
    return 2;
  }
  if (compact && log_path != nullptr) {
    std::fprintf(stderr,
                 "error: --compact diagnoses signature logs; use "
                 "--signature-log (or --inject) instead of --log\n");
    return 2;
  }

  try {
    const std::string path_str(path);
    const bool is_verilog =
        path_str.size() > 2 && path_str.rfind(".v") == path_str.size() - 2;
    Netlist nl =
        is_verilog ? parse_verilog_file(path_str) : parse_bench_file(path_str);
    if (do_map && !is_mapped(nl)) nl = map_to_nand_nor_inv(nl);
    std::printf("%s: %s\n", nl.name().c_str(),
                compute_stats(nl).to_string().c_str());

    // ---- pattern set ----------------------------------------------------
    std::vector<TestPattern> patterns;
    if (num_random > 0) {
      Rng rng(seed);
      for (long i = 0; i < num_random; ++i) {
        patterns.push_back(random_pattern(nl, rng));
      }
      std::printf("%zu random patterns (seed 0x%llx)\n", patterns.size(),
                  static_cast<unsigned long long>(seed));
    } else {
      TpgOptions tpg;
      tpg.seed = seed;
      tpg.fault_sim.block_words = dopts.block_words;
      tpg.fault_sim.num_threads = dopts.num_threads;
      const TestSet tests = generate_tests(nl, tpg);
      patterns = tests.patterns;
      std::printf("%zu ATPG patterns, %.1f%% fault coverage\n",
                  patterns.size(), 100.0 * tests.fault_coverage());
    }

    const std::vector<Fault> faults = collapse_faults(nl);

    // ---- compacted path: per-window MISR signatures ---------------------
    if (compact) {
      SignatureLog slog;
      if (sig_log_path) {
        slog = load_signature_log_file(sig_log_path);
        SP_CHECK(slog.num_patterns == patterns.size(),
                 "signature log pattern count does not match the applied set");
      } else {
        Fault injected;
        if (inject_spec) {
          injected = parse_fault(nl, inject_spec);
        } else {
          SP_CHECK(static_cast<std::size_t>(inject_index) < faults.size(),
                   "--inject-index out of range");
          injected = faults[static_cast<std::size_t>(inject_index)];
        }
        SignatureCapture capture(nl, misr, dopts.block_words);
        slog = capture.inject(patterns, injected);
        std::printf("injected %s: %zu/%zu failing windows\n",
                    injected.to_string(nl).c_str(), slog.num_failing_windows(),
                    slog.num_windows());
      }
      std::printf("MISR width %d, poly %llx, window %d patterns\n",
                  slog.misr.width,
                  static_cast<unsigned long long>(slog.misr.resolved_poly()),
                  slog.misr.window);
      if (save_log_path) {
        save_signature_log_file(save_log_path, slog);
        std::printf("wrote signature log to %s\n", save_log_path);
      }
      const DiagnosisResult res =
          run_compacted_diagnosis(nl, patterns, slog, dopts);
      if (res.num_failing_windows == 0) {
        std::printf("\nno failing windows: nothing to diagnose (fault "
                    "undetected by this pattern set?)\n");
      } else {
        std::printf("\n%zu/%zu failing windows (%zu masked point-windows) -> "
                    "%zu/%zu candidates after back-trace\n\n",
                    res.num_failing_windows, res.num_windows, res.num_masked,
                    res.num_candidates, res.num_faults);
        print_ranked(nl, res, dopts.max_report);
      }
      if (json_path) {
        dump_json(json_path, nl, dopts, FailureLog{}, res, patterns.size(),
                  dopts.max_report, &slog);
        std::printf("\nwrote JSON result to %s\n", json_path);
      }
      return 0;
    }

    // ---- failure log ----------------------------------------------------
    FailureLog log;
    ResponseCapture capture(nl, dopts.block_words);
    if (log_path) {
      log = load_failure_log_file(log_path, &nl, &capture.points());
      SP_CHECK(log.num_patterns == patterns.size(),
               "failure log pattern count does not match the applied set");
    } else {
      Fault injected;
      if (inject_spec) {
        injected = parse_fault(nl, inject_spec);
      } else {
        SP_CHECK(static_cast<std::size_t>(inject_index) < faults.size(),
                 "--inject-index out of range");
        injected = faults[static_cast<std::size_t>(inject_index)];
      }
      log = capture.inject(patterns, injected);
      std::printf("injected %s: %zu failures\n",
                  injected.to_string(nl).c_str(), log.failures.size());
    }
    if (save_log_path) {
      save_failure_log_file(save_log_path, log, &nl, &capture.points(),
                            named_log);
      std::printf("wrote failure log to %s\n", save_log_path);
    }
    if (log.failures.empty()) {
      std::printf("\nno failures: nothing to diagnose (fault undetected by "
                  "this pattern set?)\n");
      if (json_path) {
        const DiagnosisResult empty_res;
        dump_json(json_path, nl, dopts, log, empty_res, patterns.size(),
                  dopts.max_report);
      }
      return 0;
    }

    // ---- diagnosis ------------------------------------------------------
    const DiagnosisResult res = run_diagnosis(nl, patterns, log, dopts);
    std::printf("\n%zu failures (%zu patterns, %zu observation points) -> "
                "%zu/%zu candidates after back-trace (%zu dropped early)\n\n",
                res.num_failures, res.num_failing_patterns,
                res.num_failing_points, res.num_candidates, res.num_faults,
                res.num_dropped);
    const std::size_t top = dopts.max_report;
    print_ranked(nl, res, top);

    if (json_path) {
      dump_json(json_path, nl, dopts, log, res, patterns.size(), top);
      std::printf("\nwrote JSON result to %s\n", json_path);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
