// Fault-diagnosis front end: read a .bench / structural .v design, obtain
// one or more failing-pattern logs (from tester files, or synthetically by
// injecting a fault), and print the ranked candidate report(s). Built on
// the stateful ScanSession API: the design's engine state (collapsed
// faults, observation cones, good-machine blocks, worker pool) is paid
// once and shared by every log -- a batch of K logs costs K scoring
// passes, not K full setups.
//
//   diag_cli <design.bench|design.v> [options]
//     --log <file>         load a failure log (repeatable: each --log adds
//                          one log to the batch; see diag/response.hpp
//                          format; name-based "po:<net>"/"ff:<cell>"
//                          records resolve against the loaded design)
//     --inject <fault>     inject "net/sa0" / "gate.in2/sa1" synthetically
//     --inject-index <n>   inject the n-th collapsed fault
//     --save-log <file>    write the (synthetic or loaded) log back out;
//                          single-log runs only
//     --named-log          save name-based records (survive renumbering)
//     --no-early-exit      score every candidate to completion
//     --random <n>         use n random patterns instead of the ATPG set
//     --seed <n>           pattern seed
//     --threads <n>        candidate-scoring worker threads (0 = all cores)
//     --block-words <w>    packed block width (1, 2, 4, 8, 16 or 32; 16/32
//                          require the wide backend)
//     --backend <b>        kernel backend (auto, scalar, avx2, avx512, wide)
//     --no-prune           score the whole fault list (skip cone back-trace)
//     --top <n>            report size (default 10)
//     --json <file>        machine-readable result dump (an object for a
//                          single log, an array of objects for a batch;
//                          each object carries a "metrics" section with
//                          the query's phase timings and work tallies)
//     --no-map             skip NAND/NOR/INV technology mapping
//     --verbose            narrate progress (same as --log-level info)
//     --log-level <l>      stderr log threshold: debug|info|warn|error|off
//
//   Telemetry (compiled out under SCANPOWER_TELEMETRY=OFF; the flags then
//   print zero counters / an empty trace):
//     --metrics            print the session's metrics snapshot (text)
//     --metrics=json       ... as a JSON object on stdout
//     --trace <file>       record nested phase spans (session -> diagnose
//                          -> prune/score/cover) and write a Chrome
//                          trace_event JSON file (load via chrome://tracing
//                          or https://ui.perfetto.dev)
//
//   Response compaction (diagnosis over MISR signatures):
//     --compact            compact responses into per-window MISR signatures
//                          and diagnose window signature mismatches instead
//                          of per-point failures
//     --misr-width <n>     MISR register width in bits, 4..64 (default 32;
//                          implies --compact)
//     --misr-poly <hex>    MISR feedback polynomial, Galois right-shift form,
//                          top bit required (default: per-width CRC constant;
//                          implies --compact)
//     --window <k>         patterns compacted per signature window
//                          (default 32; implies --compact)
//     --signature-log <f>  load a signature log (repeatable, may be mixed
//                          with --log; its recorded MISR configuration
//                          wins; implies --compact)
//
//   Tester noise (diag/noise.hpp harness; applies to every log, loaded or
//   injected, before --save-log so the noisy log can be written out):
//     --noise-drop <r>     drop each failing record/window with rate r in
//                          [0,1] (intermittent defects, retest passes)
//     --noise-flip <r>     spurious-failure rate: flip ~r * |records|
//                          passing entries to failing (tester glitches)
//     --noise-seed <n>     noise RNG seed (default 0x5eeded); same seed +
//                          same log = byte-identical corruption
//     --tolerance <n>      DiagnosisOptions::noise_tolerance -- candidates
//                          within n mismatched (pattern, point) entries of
//                          the leader survive early-exit and tie ranking
//     --top-set <n>        report at most n multi-fault suspect sets
//                          (0 disables the multiplet cover stage)
//
// Batches mix freely: two failure logs and a signature log in one run hit
// the same session.diagnose_batch() entry point and come back in order.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "cli_common.hpp"
#include "core/session.hpp"
#include "diag/noise.hpp"
#include "netlist/stats.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace scanpower;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <design.bench|design.v> [--log file]... "
      "[--signature-log file]...\n"
      "          [--inject fault | --inject-index n]\n"
      "          [--save-log file] [--named-log] [--random n] [--seed n]\n"
      "          [--threads n] [--block-words w] [--no-prune]\n"
      "          [--backend auto|scalar|avx2|avx512|wide]\n"
      "          [--no-early-exit] [--top n] [--json file] [--no-map]\n"
      "          [--verbose] [--log-level debug|info|warn|error|off]\n"
      "          [--metrics | --metrics=json] [--trace file]\n"
      "          [--compact] [--misr-width n] [--misr-poly hex] [--window k]\n"
      "          [--noise-drop r] [--noise-flip r] [--noise-seed n]\n"
      "          [--tolerance n] [--top-set n]\n"
      "\n"
      "  --log / --signature-log are repeatable and may be mixed: all logs\n"
      "  are diagnosed in one batch against one shared engine session, and\n"
      "  --json then emits one array with a result object per log (in\n"
      "  input order). --compact diagnoses MISR-compacted per-window\n"
      "  signatures for the injection modes; --misr-width/--misr-poly/\n"
      "  --window configure the compactor (and imply --compact).\n",
      argv0);
  return 2;
}

void json_result(JsonWriter& j, const Netlist& nl, const DiagnosisOptions& dopts,
                 const std::string& source, const Evidence& ev,
                 const DiagnosisResult& res, std::size_t num_patterns,
                 std::size_t top, const NoiseOptions* nopts,
                 const NoiseStats* nstats) {
  const SignatureLog* slog = std::get_if<SignatureLog>(&ev);
  const FailureLog* flog = std::get_if<FailureLog>(&ev);
  j.begin_object();
  j.field("circuit", nl.name());
  j.field("source", source);
  j.field("num_patterns", static_cast<std::uint64_t>(num_patterns));
  j.begin_object("options");
  j.field("block_words", dopts.block_words);
  j.field("backend", backend_name(dopts.backend));
  j.field("num_threads", dopts.num_threads);
  j.field("cone_pruning", dopts.cone_pruning);
  j.field("score_early_exit", dopts.score_early_exit);
  j.field("noise_tolerance", dopts.noise_tolerance);
  j.end_object();
  if (nopts != nullptr) {
    j.begin_object("noise");
    j.field("drop_rate", nopts->drop_rate);
    j.field("flip_rate", nopts->flip_rate);
    j.field("seed", nopts->seed);
    j.field("dropped", static_cast<std::uint64_t>(nstats->dropped));
    j.field("flipped", static_cast<std::uint64_t>(nstats->flipped));
    j.end_object();
  }
  if (slog != nullptr) {
    j.begin_object("compact");
    j.field("misr_width", slog->misr.width);
    j.field("misr_poly", strprintf("%llx", static_cast<unsigned long long>(
                                               slog->misr.resolved_poly())));
    j.field("window", slog->misr.window);
    j.field("num_windows", static_cast<std::uint64_t>(res.num_windows));
    j.field("num_failing_windows",
            static_cast<std::uint64_t>(res.num_failing_windows));
    j.field("num_masked", static_cast<std::uint64_t>(res.num_masked));
    j.end_object();
  }
  j.begin_object("log");
  j.field("num_failures",
          static_cast<std::uint64_t>(flog ? flog->failures.size()
                                          : res.num_failures));
  j.field("num_failing_patterns",
          static_cast<std::uint64_t>(res.num_failing_patterns));
  j.field("num_failing_points",
          static_cast<std::uint64_t>(res.num_failing_points));
  j.end_object();
  j.field("num_faults", static_cast<std::uint64_t>(res.num_faults));
  j.field("num_candidates", static_cast<std::uint64_t>(res.num_candidates));
  j.field("num_dropped", static_cast<std::uint64_t>(res.num_dropped));
  j.begin_object("metrics");
  j.field("prune_us", res.stats.prune_us);
  j.field("score_us", res.stats.score_us);
  j.field("cover_us", res.stats.cover_us);
  j.field("sweep_calls", res.stats.sweep_calls);
  j.field("sweep_aborts", res.stats.sweep_aborts);
  j.field("cone_cache_hits", res.stats.cone_cache_hits);
  j.field("cone_cache_misses", res.stats.cone_cache_misses);
  j.end_object();
  j.begin_array("ranked");
  for (std::size_t i = 0; i < res.ranked.size() && i < top; ++i) {
    const CandidateScore& sc = res.ranked[i];
    j.begin_object();
    j.field("rank", static_cast<std::uint64_t>(res.rank_of(sc.fault)));
    j.field("fault", sc.fault.to_string(nl));
    j.field("tfsf", sc.tfsf);
    j.field("tfsp", sc.tfsp);
    j.field("tpsf", sc.tpsf);
    j.field("exact", sc.exact());
    j.end_object();
  }
  j.end_array();
  j.field("union_fallback", res.union_fallback);
  j.begin_array("suspect_sets");
  for (const SuspectSet& set : res.multiplets) {
    j.begin_object();
    j.field("covered", static_cast<std::uint64_t>(set.covered));
    j.field("uncovered", static_cast<std::uint64_t>(set.uncovered));
    j.begin_array("faults");
    for (const CandidateScore& sc : set.members) {
      j.begin_object();
      j.field("fault", sc.fault.to_string(nl));
      j.field("tfsf", sc.tfsf);
      j.field("tfsp", sc.tfsp);
      j.field("tpsf", sc.tpsf);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

void print_ranked(const Netlist& nl, const DiagnosisResult& res,
                  std::size_t top) {
  std::printf("%5s %-28s %8s %8s %8s %6s\n", "rank", "fault", "TFSF", "TFSP",
              "TPSF", "exact");
  for (std::size_t i = 0; i < res.ranked.size() && i < top; ++i) {
    const CandidateScore& sc = res.ranked[i];
    std::printf("%5zu %-28s %8llu %8llu %8llu %6s\n", res.rank_of(sc.fault),
                sc.fault.to_string(nl).c_str(),
                static_cast<unsigned long long>(sc.tfsf),
                static_cast<unsigned long long>(sc.tfsp),
                static_cast<unsigned long long>(sc.tpsf),
                sc.exact() ? "yes" : "no");
  }
  if (res.ranked.size() > top) {
    std::printf("  ... %zu more candidates\n", res.ranked.size() - top);
  }
}

void print_multiplets(const Netlist& nl, const DiagnosisResult& res) {
  if (res.union_fallback) {
    std::printf("  (single-fault cone intersection was empty or noisy: "
                "union-pruning fallback engaged)\n");
  }
  if (res.multiplets.empty()) return;
  const std::size_t total =
      res.multiplets.front().covered + res.multiplets.front().uncovered;
  std::printf("\nmulti-fault suspect sets:\n");
  for (std::size_t s = 0; s < res.multiplets.size(); ++s) {
    const SuspectSet& set = res.multiplets[s];
    std::string joined;
    for (const CandidateScore& sc : set.members) {
      if (!joined.empty()) joined += " + ";
      joined += sc.fault.to_string(nl);
    }
    std::printf("  set %zu: {%s} explains %zu/%zu failing patterns\n", s + 1,
                joined.c_str(), set.covered, total);
  }
}

void print_result(const Netlist& nl, const std::string& source,
                  const Evidence& ev, const DiagnosisResult& res,
                  std::size_t top) {
  if (std::holds_alternative<SignatureLog>(ev)) {
    std::printf("\n[%s] %zu/%zu failing windows (%zu masked point-windows) -> "
                "%zu/%zu candidates after back-trace\n\n",
                source.c_str(), res.num_failing_windows, res.num_windows,
                res.num_masked, res.num_candidates, res.num_faults);
  } else {
    std::printf("\n[%s] %zu failures (%zu patterns, %zu observation points) "
                "-> %zu/%zu candidates after back-trace (%zu dropped "
                "early)\n\n",
                source.c_str(), res.num_failures, res.num_failing_patterns,
                res.num_failing_points, res.num_candidates, res.num_faults,
                res.num_dropped);
  }
  print_ranked(nl, res, top);
  print_multiplets(nl, res);
  if constexpr (kTelemetryEnabled) {
    const DiagnosisStats& st = res.stats;
    std::printf("timing: prune %llu us, score %llu us, cover %llu us "
                "(%llu sweeps, %llu aborted)\n",
                static_cast<unsigned long long>(st.prune_us),
                static_cast<unsigned long long>(st.score_us),
                static_cast<unsigned long long>(st.cover_us),
                static_cast<unsigned long long>(st.sweep_calls),
                static_cast<unsigned long long>(st.sweep_aborts));
  }
}

bool evidence_has_failures(const Evidence& ev) {
  if (const FailureLog* flog = std::get_if<FailureLog>(&ev)) {
    return !flog->failures.empty();
  }
  return std::get<SignatureLog>(ev).num_failing_windows() != 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const char* path = nullptr;
  struct FileLog {
    const char* path;
    bool signature;
  };
  std::vector<FileLog> file_logs;  // in argv order
  const char* inject_spec = nullptr;
  long inject_index = -1;
  const char* save_log_path = nullptr;
  const char* json_path = nullptr;
  const char* trace_path = nullptr;
  bool metrics_text = false;
  bool metrics_json = false;
  long num_random = 0;
  std::uint64_t seed = 0xd1a6ULL;
  bool do_map = true;
  bool named_log = false;
  bool compact = false;
  bool noise = false;
  MisrConfig misr;
  NoiseOptions nopts;
  DiagnosisOptions dopts;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (cli::value_flag(argc, argv, i, "--log", v)) {
      file_logs.push_back({v, false});
    } else if (cli::flag(argv, i, "--compact")) {
      compact = true;
    } else if (cli::value_flag(argc, argv, i, "--misr-width", misr.width)) {
      compact = true;
    } else if (cli::hex_value_flag(argc, argv, i, "--misr-poly", misr.poly)) {
      compact = true;
    } else if (cli::value_flag(argc, argv, i, "--window", misr.window)) {
      compact = true;
    } else if (cli::value_flag(argc, argv, i, "--signature-log", v)) {
      // Signature logs are inherently compacted; no --compact implied, so
      // they mix with --log files in one batch.
      file_logs.push_back({v, true});
    } else if (cli::value_flag(argc, argv, i, "--inject", inject_spec)) {
    } else if (cli::value_flag(argc, argv, i, "--inject-index", inject_index)) {
    } else if (cli::value_flag(argc, argv, i, "--save-log", save_log_path)) {
    } else if (cli::value_flag(argc, argv, i, "--random", num_random)) {
    } else if (cli::value_flag(argc, argv, i, "--seed", seed)) {
    } else if (cli::value_flag(argc, argv, i, "--threads", dopts.num_threads)) {
    } else if (cli::value_flag(argc, argv, i, "--block-words",
                               dopts.block_words)) {
    } else if (cli::backend_flag(argc, argv, i, "--backend", dopts.backend)) {
    } else if (cli::flag(argv, i, "--no-prune")) {
      dopts.cone_pruning = false;
    } else if (cli::flag(argv, i, "--no-early-exit")) {
      dopts.score_early_exit = false;
    } else if (cli::flag(argv, i, "--named-log")) {
      named_log = true;
    } else if (cli::value_flag(argc, argv, i, "--noise-drop",
                               nopts.drop_rate)) {
      noise = true;
    } else if (cli::value_flag(argc, argv, i, "--noise-flip",
                               nopts.flip_rate)) {
      noise = true;
    } else if (cli::value_flag(argc, argv, i, "--noise-seed", nopts.seed)) {
    } else if (cli::value_flag(argc, argv, i, "--tolerance",
                               dopts.noise_tolerance)) {
    } else if (cli::value_flag(argc, argv, i, "--top-set", v)) {
      dopts.max_multiplets = static_cast<std::size_t>(std::atol(v));
      dopts.multiplets = dopts.max_multiplets > 0;
    } else if (cli::value_flag(argc, argv, i, "--top", v)) {
      dopts.max_report = static_cast<std::size_t>(std::atol(v));
    } else if (cli::value_flag(argc, argv, i, "--json", json_path)) {
    } else if (cli::value_flag(argc, argv, i, "--trace", trace_path)) {
    } else if (cli::flag(argv, i, "--metrics")) {
      metrics_text = true;
    } else if (cli::flag(argv, i, "--metrics=json")) {
      metrics_json = true;
    } else if (cli::flag(argv, i, "--no-map")) {
      do_map = false;
    } else if (cli::flag(argv, i, "--verbose")) {
      set_log_level(LogLevel::Info);
    } else if (cli::value_flag(argc, argv, i, "--log-level", v)) {
      set_log_level(cli::parse_log_level(v));
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      path = argv[i];
    }
  }
  if (!path) return usage(argv[0]);
  const bool inject_mode = inject_spec != nullptr || inject_index >= 0;
  if (inject_mode ? !file_logs.empty() || (inject_spec && inject_index >= 0)
                  : file_logs.empty()) {
    std::fprintf(stderr,
                 "error: give either one --inject / --inject-index, or any "
                 "number of --log / --signature-log files\n");
    return 2;
  }
  const bool any_full_log =
      std::any_of(file_logs.begin(), file_logs.end(),
                  [](const FileLog& f) { return !f.signature; });
  if (compact && any_full_log) {
    std::fprintf(stderr,
                 "error: --compact diagnoses signature logs; use "
                 "--signature-log (or --inject) instead of --log\n");
    return 2;
  }
  // --save-log writes exactly one log. Count the run's logs the same way
  // for both modes (an injection is one synthetic log) so the guard can't
  // be skirted by --inject; a multi-log batch is a hard error naming the
  // conflicting flags instead of silently writing only one of the logs.
  const std::size_t num_logs = inject_mode ? 1 : file_logs.size();
  if (save_log_path && num_logs != 1) {
    const std::size_t num_sig =
        static_cast<std::size_t>(std::count_if(
            file_logs.begin(), file_logs.end(),
            [](const FileLog& f) { return f.signature; }));
    std::fprintf(stderr,
                 "error: --save-log writes a single log, but this run "
                 "diagnoses %zu (%zu --log, %zu --signature-log); drop "
                 "--save-log or reduce the batch to one log\n",
                 num_logs, file_logs.size() - num_sig, num_sig);
    return 2;
  }

  try {
    Netlist nl = cli::load_design(path, do_map);
    std::printf("%s: %s\n", nl.name().c_str(),
                compute_stats(nl).to_string().c_str());

    // One session carries every shared piece of engine state -- faults,
    // observation cones, good-machine blocks, X-mask plans, the worker
    // pool -- across all logs of this run.
    FlowOptions fopts;
    fopts.diag = dopts;
    fopts.misr = misr;
    fopts.tpg.seed = seed;
    fopts.tpg.fault_sim.block_words = dopts.block_words;
    fopts.tpg.fault_sim.num_threads = dopts.num_threads;
    fopts.tpg.fault_sim.backend = dopts.backend;
    fopts.observability.block_words = dopts.block_words;
    fopts.observability.backend = dopts.backend;
    fopts.fill.block_words = dopts.block_words;
    fopts.fill.backend = dopts.backend;
    ScanSession session(std::move(nl), fopts);
    const Netlist& design = session.netlist();
    if (trace_path) session.telemetry().trace.set_enabled(true);

    // ---- pattern set ----------------------------------------------------
    if (num_random > 0) {
      Rng rng(seed);
      std::vector<TestPattern> patterns;
      for (long i = 0; i < num_random; ++i) {
        patterns.push_back(random_pattern(design, rng));
      }
      session.bind_patterns(patterns);
      std::printf("%zu random patterns (seed 0x%llx)\n", patterns.size(),
                  static_cast<unsigned long long>(seed));
    } else {
      session.bind_tests();
      std::printf("%zu ATPG patterns, %.1f%% fault coverage\n",
                  session.patterns().size(),
                  100.0 * session.tests().fault_coverage());
    }
    const std::size_t num_patterns = session.patterns().size();

    // ---- evidence -------------------------------------------------------
    // Tester-noise harness: every log (synthetic or loaded) is corrupted
    // before --save-log sees it, so the noisy log can be written out and
    // re-diagnosed later. Stats are kept per log for the JSON dump.
    const NoiseModel noise_model(nopts);  // validates the rates up front
    std::vector<NoiseStats> noise_stats;
    const auto corrupt_full = [&](FailureLog& log) {
      NoiseStats st;
      if (noise) {
        log = noise_model.corrupt(log, session.points().size(), &st);
        std::printf("noise: dropped %zu failing records, flipped %zu "
                    "(seed 0x%llx)\n", st.dropped, st.flipped,
                    static_cast<unsigned long long>(nopts.seed));
      }
      noise_stats.push_back(st);
    };
    const auto corrupt_sig = [&](SignatureLog& slog) {
      NoiseStats st;
      if (noise) {
        slog = noise_model.corrupt(slog, &st);
        std::printf("noise: dropped %zu failing windows, garbled %zu "
                    "(seed 0x%llx)\n", st.dropped, st.flipped,
                    static_cast<unsigned long long>(nopts.seed));
      }
      noise_stats.push_back(st);
    };
    std::vector<Evidence> evidence;
    std::vector<std::string> sources;
    if (inject_mode) {
      Fault injected;
      if (inject_spec) {
        injected = parse_fault(design, inject_spec);
      } else {
        SP_CHECK(static_cast<std::size_t>(inject_index) <
                     session.faults().size(),
                 "--inject-index out of range");
        injected = session.faults()[static_cast<std::size_t>(inject_index)];
      }
      if (compact) {
        SignatureLog slog = session.inject_compacted(injected);
        std::printf("injected %s: %zu/%zu failing windows\n",
                    injected.to_string(design).c_str(),
                    slog.num_failing_windows(), slog.num_windows());
        corrupt_sig(slog);
        std::printf("MISR width %d, poly %llx, window %d patterns\n",
                    slog.misr.width,
                    static_cast<unsigned long long>(slog.misr.resolved_poly()),
                    slog.misr.window);
        if (save_log_path) {
          save_signature_log_file(save_log_path, slog);
          std::printf("wrote signature log to %s\n", save_log_path);
        }
        evidence.push_back(std::move(slog));
      } else {
        FailureLog log = session.inject(injected);
        std::printf("injected %s: %zu failures\n",
                    injected.to_string(design).c_str(), log.failures.size());
        corrupt_full(log);
        if (save_log_path) {
          save_failure_log_file(save_log_path, log, &design, &session.points(),
                                named_log);
          std::printf("wrote failure log to %s\n", save_log_path);
        }
        evidence.push_back(std::move(log));
      }
      sources.push_back("injected " + injected.to_string(design));
    } else {
      // Load in argv order: batch results come back index-aligned, so the
      // report / JSON array order must match the flags as given.
      for (const FileLog& f : file_logs) {
        if (f.signature) {
          SignatureLog slog = load_signature_log_file(f.path);
          SP_CHECK(slog.num_patterns == num_patterns,
                   std::string(f.path) +
                       ": signature log pattern count does not match the "
                       "applied set");
          corrupt_sig(slog);
          if (save_log_path) {
            save_signature_log_file(save_log_path, slog);
            std::printf("wrote signature log to %s\n", save_log_path);
          }
          evidence.push_back(std::move(slog));
        } else {
          FailureLog log =
              load_failure_log_file(f.path, &design, &session.points());
          SP_CHECK(log.num_patterns == num_patterns,
                   std::string(f.path) +
                       ": failure log pattern count does not match the "
                       "applied set");
          corrupt_full(log);
          if (save_log_path) {
            save_failure_log_file(save_log_path, log, &design,
                                  &session.points(), named_log);
            std::printf("wrote failure log to %s\n", save_log_path);
          }
          evidence.push_back(std::move(log));
        }
        sources.push_back(f.path);
      }
    }

    // ---- diagnosis ------------------------------------------------------
    // A log with nothing failing means an undetected fault: diagnosing it
    // would rank every fault as a perfect explanation, so such entries are
    // skipped (empty result object) and flagged instead. The filtered
    // copy is only built when something actually needs skipping.
    const bool all_fail = std::all_of(evidence.begin(), evidence.end(),
                                      evidence_has_failures);
    std::vector<DiagnosisResult> results;
    if (all_fail) {
      results = session.diagnose_batch(evidence);
    } else {
      std::vector<Evidence> todo;
      std::vector<std::size_t> todo_at;
      for (std::size_t i = 0; i < evidence.size(); ++i) {
        if (evidence_has_failures(evidence[i])) {
          todo.push_back(evidence[i]);
          todo_at.push_back(i);
        }
      }
      results.resize(evidence.size());
      std::vector<DiagnosisResult> done = session.diagnose_batch(todo);
      for (std::size_t k = 0; k < done.size(); ++k) {
        results[todo_at[k]] = std::move(done[k]);
      }
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!evidence_has_failures(evidence[i])) {
        std::printf("\n[%s] no failures: nothing to diagnose (fault "
                    "undetected by this pattern set?)\n",
                    sources[i].c_str());
      } else {
        print_result(design, sources[i], evidence[i], results[i],
                     dopts.max_report);
      }
    }

    if (json_path) {
      std::ofstream f(json_path);
      SP_CHECK(f.good(), std::string("cannot write ") + json_path);
      JsonWriter j(f);
      const bool array = results.size() > 1;
      if (array) j.begin_array();
      for (std::size_t i = 0; i < results.size(); ++i) {
        json_result(j, design, dopts, sources[i], evidence[i], results[i],
                    num_patterns, dopts.max_report, noise ? &nopts : nullptr,
                    noise ? &noise_stats[i] : nullptr);
      }
      if (array) j.end_array();
      std::printf("\nwrote JSON result%s to %s\n", array ? " array" : "",
                  json_path);
    }

    if (metrics_text || metrics_json) {
      const MetricsSnapshot snap = session.metrics();
      if (metrics_json) {
        std::ostringstream os;
        JsonWriter j(os);
        j.begin_object();
        snap.write_json(j);
        j.end_object();
        std::printf("%s\n", os.str().c_str());
      } else {
        std::ostringstream os;
        snap.write_text(os);
        std::printf("\nmetrics:\n%s", os.str().c_str());
      }
    }
    if (trace_path) {
      std::ofstream f(trace_path);
      SP_CHECK(f.good(), std::string("cannot write ") + trace_path);
      session.telemetry().trace.write_chrome_trace(f);
      std::printf("wrote Chrome trace (%zu spans) to %s\n",
                  session.telemetry().trace.events().size(), trace_path);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
