// Long-running diagnosis server over the async service stack: designs are
// shared DesignContexts parked in a SessionPool, requests flow through a
// DiagnosisQueue (submit -> future), and queued logs coalesce per design
// into batched 64-candidate scoring rounds -- so a burst of K logs against
// one design costs one engine setup plus K scoring passes, and results
// stay bit-identical to sequential diagnose() calls.
//
// Two transports over the same command grammar (net::CommandSession):
//
//   stdin (default)        newline-delimited commands on stdin, results
//                          on stdout, errors on stderr -- the PR 9
//                          behavior.
//   --listen <port>        TCP wire mode on 127.0.0.1:<port> (0 = let
//                          the kernel pick; the bound port is printed as
//                          "listening <port>" on stdout). Every command
//                          is answered with one JSON line; an overloaded
//                          queue rejects evidence with
//                          {"error":"overloaded","retry_after_ms":...}.
//                          stdin stays live for `quit` (EOF also stops);
//                          shutdown stops accepting, drains pending
//                          work, answers it, then closes.
//
// Line protocol (# starts a comment):
//
//   design <path> [nomap]      load a .bench / structural .v design and
//                              make it current (contexts stay warm in the
//                              pool across switches; LRU past capacity)
//   patterns <n> [seed]        bind n random patterns to the current
//                              design (required before evidence)
//   log <path>                 submit a failure-log file for diagnosis
//   signature-log <path>       submit a MISR signature-log file
//   inject <fault>             synthesize + submit "net/sa0" style fault
//   inject-index <n>           ... the n-th collapsed fault
//   flush                      wait for every pending result and print one
//                              compact JSON object per line (input order)
//   stats                      print the server telemetry report (the
//                              sessions.* / queue.* / net.* counters with
//                              the pool, queue-depth and connection
//                              gauges)
//   quit                       flush and exit
//
// Startup flags:
//
//   diag_server [--listen port] [--max-connections n]
//               [--max-pending n] [--overload block|reject]
//               [--pool-capacity n] [--max-batch n] [--top n]
//               [--threads n] [--block-words w]
//               [--backend auto|scalar|avx2|avx512|wide]
//               [--log-level debug|info|warn|error|off]
//
//   --max-pending bounds queued+in-flight jobs (0 = unbounded);
//   --overload picks what submit does at the bound: "block" parks the
//   submitter, "reject" answers overloaded so clients back off
//   (net::DiagClient retries with jittered exponential backoff).
//
// Example session:
//
//   design bench/iscas89/s9234.bench
//   patterns 192 7
//   inject G100/sa1
//   log chip42.flog
//   flush
//   quit

#include <cstdio>
#include <iostream>
#include <string>

#include "cli_common.hpp"
#include "core/work_queue.hpp"
#include "net/server.hpp"
#include "util/log.hpp"

using namespace scanpower;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--listen port] [--max-connections n]\n"
      "          [--max-pending n] [--overload block|reject]\n"
      "          [--pool-capacity n] [--max-batch n] [--top n]\n"
      "          [--threads n] [--block-words w]\n"
      "          [--backend auto|scalar|avx2|avx512|wide]\n"
      "          [--log-level debug|info|warn|error|off]\n"
      "\n"
      "  Without --listen, reads newline-delimited commands on stdin;\n"
      "  with --listen, serves the same grammar over TCP on\n"
      "  127.0.0.1:<port> (0 = ephemeral; prints \"listening <port>\").\n"
      "  Commands:\n"
      "    design <path> [nomap]   load a design, make it current\n"
      "    patterns <n> [seed]     bind n random patterns to it\n"
      "    log <file>              submit a failure log\n"
      "    signature-log <file>    submit a MISR signature log\n"
      "    inject <fault>          synthesize + submit net/sa0-style fault\n"
      "    inject-index <n>        ... the n-th collapsed fault\n"
      "    flush                   print pending results (one JSON/line)\n"
      "    stats                   print server telemetry\n"
      "    quit                    flush and exit\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool listen = false;
  int listen_port = 0;
  std::size_t max_connections = 64;
  std::size_t pool_capacity = SessionPool::kDefaultCapacity;
  std::size_t max_batch = 64;
  std::size_t max_pending = 0;
  auto overload = DiagnosisQueue::OverloadPolicy::Block;
  std::size_t top = 5;
  DiagnosisOptions dopts;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (cli::value_flag(argc, argv, i, "--listen", v)) {
      listen = true;
      listen_port = std::atoi(v);
      if (listen_port < 0 || listen_port > 65535) {
        std::fprintf(stderr, "error: --listen port must be 0..65535\n");
        return 2;
      }
    } else if (cli::value_flag(argc, argv, i, "--max-connections", v)) {
      max_connections = static_cast<std::size_t>(std::atol(v));
    } else if (cli::value_flag(argc, argv, i, "--max-pending", v)) {
      max_pending = static_cast<std::size_t>(std::atol(v));
    } else if (cli::value_flag(argc, argv, i, "--overload", v)) {
      if (std::strcmp(v, "block") == 0) {
        overload = DiagnosisQueue::OverloadPolicy::Block;
      } else if (std::strcmp(v, "reject") == 0) {
        overload = DiagnosisQueue::OverloadPolicy::Reject;
      } else {
        std::fprintf(stderr,
                     "error: --overload must be block or reject (got "
                     "\"%s\")\n",
                     v);
        return 2;
      }
    } else if (cli::value_flag(argc, argv, i, "--pool-capacity", v)) {
      pool_capacity = static_cast<std::size_t>(std::atol(v));
    } else if (cli::value_flag(argc, argv, i, "--max-batch", v)) {
      max_batch = static_cast<std::size_t>(std::atol(v));
    } else if (cli::value_flag(argc, argv, i, "--top", v)) {
      top = static_cast<std::size_t>(std::atol(v));
    } else if (cli::value_flag(argc, argv, i, "--threads",
                               dopts.num_threads)) {
    } else if (cli::value_flag(argc, argv, i, "--block-words",
                               dopts.block_words)) {
    } else if (cli::backend_flag(argc, argv, i, "--backend", dopts.backend)) {
    } else if (cli::value_flag(argc, argv, i, "--log-level", v)) {
      set_log_level(cli::parse_log_level(v));
    } else {
      return usage(argv[0]);
    }
  }

  Telemetry telemetry;
  DiagnosisQueue::Options qopts;
  qopts.max_batch = max_batch;
  qopts.pool_capacity = pool_capacity;
  qopts.max_pending = max_pending;
  qopts.overload = overload;
  DiagnosisQueue queue(qopts, &telemetry);

  net::ServiceOptions sopts;
  sopts.top = top;
  sopts.flow.diag = dopts;
  sopts.flow.tpg.fault_sim.block_words = dopts.block_words;
  sopts.flow.tpg.fault_sim.num_threads = dopts.num_threads;
  sopts.flow.tpg.fault_sim.backend = dopts.backend;

  if (listen) {
    sopts.wire_mode = true;
    net::NetServer::Options nopts;
    nopts.port = static_cast<std::uint16_t>(listen_port);
    nopts.max_connections = max_connections;
    nopts.service = sopts;
    net::NetServer server(queue, &telemetry, nopts);
    // The bound port, for wrappers spawning us with --listen 0.
    std::printf("listening %u\n", static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    // stdin stays the control channel: `quit` (or EOF) stops the server.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line == "quit") break;
      if (!line.empty() && line[0] != '#') {
        std::fprintf(stderr,
                     "error: TCP mode takes only 'quit' on stdin\n");
      }
    }
    server.shutdown();  // stop accepting, drain + answer pending, close
    queue.drain();
    return 0;
  }

  sopts.wire_mode = false;
  net::CommandSession session(
      queue, &telemetry, sopts,
      /*out=*/[](std::string_view s) {
        std::cout << s << "\n";
        std::cout.flush();
      },
      /*err=*/[](std::string_view msg) {
        std::fprintf(stderr, "error: %.*s\n", static_cast<int>(msg.size()),
                     msg.data());
      });
  std::string line;
  bool open = true;
  while (open && std::getline(std::cin, line)) {
    open = session.handle_line(line, 0);
  }
  if (open) session.flush();  // EOF without quit: answer what's pending
  return 0;
}
