// Long-running diagnosis server over the async service stack: designs are
// shared DesignContexts parked in a SessionPool, requests flow through a
// DiagnosisQueue (submit -> future), and queued logs coalesce per design
// into batched 64-candidate scoring rounds -- so a burst of K logs against
// one design costs one engine setup plus K scoring passes, and results
// stay bit-identical to sequential diagnose() calls.
//
// Line protocol, newline-delimited on stdin (# starts a comment):
//
//   design <path> [nomap]      load a .bench / structural .v design and
//                              make it current (contexts stay warm in the
//                              pool across switches; LRU past capacity)
//   patterns <n> [seed]        bind n random patterns to the current
//                              design (required before evidence; rebind
//                              drains the design first)
//   log <path>                 submit a failure-log file for diagnosis
//   signature-log <path>       submit a MISR signature-log file
//   inject <fault>             synthesize + submit "net/sa0" style fault
//   inject-index <n>           ... the n-th collapsed fault
//   flush                      wait for every pending result and print one
//                              compact JSON object per line (input order)
//   stats                      print the server telemetry report (the
//                              sessions.* / queue.* counters with the
//                              context-pool and queue gauges)
//   quit                       flush and exit
//
// Responses go to stdout; errors for one request poison only that
// request's line ("error" field), never the server. Startup flags:
//
//   diag_server [--pool-capacity n] [--max-batch n] [--top n]
//               [--threads n] [--block-words w]
//               [--backend auto|scalar|avx2|avx512|wide]
//               [--log-level debug|info|warn|error|off]
//
// Example session:
//
//   design bench/iscas89/s9234.bench
//   patterns 192 7
//   inject G100/sa1
//   log chip42.flog
//   flush
//   quit

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "compact/signature_log.hpp"
#include "core/session.hpp"
#include "core/work_queue.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace scanpower;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--pool-capacity n] [--max-batch n] [--top n]\n"
      "          [--threads n] [--block-words w]\n"
      "          [--backend auto|scalar|avx2|avx512|wide]\n"
      "          [--log-level debug|info|warn|error|off]\n"
      "\n"
      "  Reads newline-delimited commands on stdin:\n"
      "    design <path> [nomap]   load a design, make it current\n"
      "    patterns <n> [seed]     bind n random patterns to it\n"
      "    log <file>              submit a failure log\n"
      "    signature-log <file>    submit a MISR signature log\n"
      "    inject <fault>          synthesize + submit net/sa0-style fault\n"
      "    inject-index <n>        ... the n-th collapsed fault\n"
      "    flush                   print pending results (one JSON/line)\n"
      "    stats                   print server telemetry\n"
      "    quit                    flush and exit\n",
      argv0);
  return 2;
}

/// One registered design: the queue key plus a cheap front session over
/// the shared context (used to parse faults and synthesize injected
/// evidence without touching the dispatcher's tenant session).
struct Design {
  DiagnosisQueue::DesignKey key = 0;
  std::shared_ptr<const DesignContext> ctx;
  std::unique_ptr<ScanSession> front;
  std::size_t num_patterns = 0;
};

struct Pending {
  std::string circuit;
  std::string source;
  std::size_t num_patterns = 0;
  std::shared_ptr<const DesignContext> ctx;  // keeps names resolvable
  std::future<DiagnosisResult> result;
};

void write_result(std::ostream& os, Pending& p, std::size_t top) {
  JsonWriter j(os, /*indent=*/0);  // compact: one object per line
  DiagnosisResult res;
  try {
    res = p.result.get();
  } catch (const std::exception& e) {
    j.begin_object();
    j.field("circuit", p.circuit);
    j.field("source", p.source);
    j.field("error", e.what());
    j.end_object();
    os << "\n";
    return;
  }
  const Netlist& nl = p.ctx->netlist();
  j.begin_object();
  j.field("circuit", p.circuit);
  j.field("source", p.source);
  j.field("num_patterns", static_cast<std::uint64_t>(p.num_patterns));
  j.field("num_faults", static_cast<std::uint64_t>(res.num_faults));
  j.field("num_candidates", static_cast<std::uint64_t>(res.num_candidates));
  j.field("num_failing_patterns",
          static_cast<std::uint64_t>(res.num_failing_patterns));
  j.field("union_fallback", res.union_fallback);
  j.begin_array("ranked");
  for (std::size_t i = 0; i < res.ranked.size() && i < top; ++i) {
    const CandidateScore& sc = res.ranked[i];
    j.begin_object();
    j.field("fault", sc.fault.to_string(nl));
    j.field("tfsf", sc.tfsf);
    j.field("tfsp", sc.tfsp);
    j.field("tpsf", sc.tpsf);
    j.field("exact", sc.exact());
    j.end_object();
  }
  j.end_array();
  j.end_object();
  os << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t pool_capacity = SessionPool::kDefaultCapacity;
  std::size_t max_batch = 64;
  std::size_t top = 5;
  DiagnosisOptions dopts;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (cli::value_flag(argc, argv, i, "--pool-capacity", v)) {
      pool_capacity = static_cast<std::size_t>(std::atol(v));
    } else if (cli::value_flag(argc, argv, i, "--max-batch", v)) {
      max_batch = static_cast<std::size_t>(std::atol(v));
    } else if (cli::value_flag(argc, argv, i, "--top", v)) {
      top = static_cast<std::size_t>(std::atol(v));
    } else if (cli::value_flag(argc, argv, i, "--threads",
                               dopts.num_threads)) {
    } else if (cli::value_flag(argc, argv, i, "--block-words",
                               dopts.block_words)) {
    } else if (cli::backend_flag(argc, argv, i, "--backend", dopts.backend)) {
    } else if (cli::value_flag(argc, argv, i, "--log-level", v)) {
      set_log_level(cli::parse_log_level(v));
    } else {
      return usage(argv[0]);
    }
  }

  Telemetry telemetry;
  DiagnosisQueue::Options qopts;
  qopts.max_batch = max_batch;
  qopts.pool_capacity = pool_capacity;
  DiagnosisQueue queue(qopts, &telemetry);

  FlowOptions fopts;
  fopts.diag = dopts;
  fopts.tpg.fault_sim.block_words = dopts.block_words;
  fopts.tpg.fault_sim.num_threads = dopts.num_threads;
  fopts.tpg.fault_sim.backend = dopts.backend;

  std::map<std::string, Design> designs;  // by netlist name
  Design* current = nullptr;
  std::vector<Pending> pending;
  // The design the 'design' command loaded, waiting for 'patterns'.
  std::unique_ptr<Netlist> loaded;

  const auto flush = [&] {
    for (Pending& p : pending) write_result(std::cout, p, top);
    std::cout.flush();
    pending.clear();
  };
  const auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "error: %s\n", msg.c_str());
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') continue;
    try {
      if (cmd == "design") {
        std::string path, opt;
        if (!(in >> path)) {
          fail("design needs a file path");
          continue;
        }
        in >> opt;
        loaded = std::make_unique<Netlist>(
            cli::load_design(path, /*do_map=*/opt != "nomap"));
        auto it = designs.find(loaded->name());
        if (it != designs.end()) {
          current = &it->second;  // already registered: just switch
          loaded.reset();
        } else {
          current = nullptr;  // registered by the next 'patterns'
        }
      } else if (cmd == "patterns") {
        std::size_t n = 0;
        std::uint64_t seed = 0xd1a6ULL;
        if (!(in >> n) || n == 0) {
          fail("patterns needs a count >= 1");
          continue;
        }
        in >> seed;
        const Netlist* nl =
            loaded ? loaded.get() : (current ? &current->ctx->netlist() : nullptr);
        if (!nl) {
          fail("no design loaded (use: design <path>)");
          continue;
        }
        Rng rng(seed);
        std::vector<TestPattern> patterns;
        patterns.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          patterns.push_back(random_pattern(*nl, rng));
        }
        queue.drain();  // rebind requires the design idle
        const auto key = queue.open(*nl, fopts, patterns);
        Design& d = designs[nl->name()];
        d.key = key;
        if (!d.ctx) {
          d.ctx = queue.contexts().acquire(*nl, fopts);
          d.front = std::make_unique<ScanSession>(d.ctx, fopts);
        }
        d.front->bind_patterns(patterns);
        d.num_patterns = n;
        current = &d;
        loaded.reset();
      } else if (cmd == "log" || cmd == "signature-log" || cmd == "inject" ||
                 cmd == "inject-index") {
        if (!current) {
          fail("no design registered (use: design <path>, then patterns <n>)");
          continue;
        }
        std::string arg;
        if (!(in >> arg)) {
          fail(cmd + " needs an argument");
          continue;
        }
        Evidence ev;
        if (cmd == "log") {
          ev = load_failure_log_file(arg, &current->ctx->netlist(),
                                     &current->ctx->points());
        } else if (cmd == "signature-log") {
          ev = load_signature_log_file(arg);
        } else {
          const Fault f =
              cmd == "inject"
                  ? parse_fault(current->ctx->netlist(), arg)
                  : current->ctx->faults().at(
                        static_cast<std::size_t>(std::stol(arg)));
          ev = current->front->inject(f);
        }
        Pending p;
        p.circuit = current->ctx->netlist().name();
        p.source = cmd + " " + arg;
        p.num_patterns = current->num_patterns;
        p.ctx = current->ctx;
        p.result = queue.submit(current->key, std::move(ev));
        pending.push_back(std::move(p));
      } else if (cmd == "flush") {
        flush();
      } else if (cmd == "stats") {
        telemetry.metrics.snapshot().write_text(std::cout);
        std::cout.flush();
      } else if (cmd == "quit") {
        break;
      } else {
        fail("unknown command: " + cmd);
      }
    } catch (const std::exception& e) {
      fail(e.what());
    }
  }
  flush();
  return 0;
}
