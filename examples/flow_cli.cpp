// Command-line front end for arbitrary .bench / structural .v designs: runs the full
// DATE'05 comparison flow on a user-supplied circuit.
//
//   flow_cli <design.bench> [options]
//     --no-map            skip NAND/NOR/INV technology mapping
//     --no-reorder        skip pin reordering
//     --no-obs            undirected justification (no observability)
//     --margin <ps>       extra slack demanded by AddMUX
//     --seed <n>          ATPG/fill/observability seed
//     --write <out.bench> write the mux-inserted netlist
//     --verbose           narrate flow progress

#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/flow.hpp"
#include "core/verify.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/verilog_io.hpp"
#include "netlist/stats.hpp"
#include "scan/add_mux.hpp"
#include "techmap/techmap.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

using namespace scanpower;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <design.bench> [--no-map] [--no-reorder] [--no-obs]"
               " [--margin ps] [--seed n] [--write out.bench] [--verbose]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const char* path = nullptr;
  const char* write_path = nullptr;
  bool do_map = true;
  FlowOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-map") == 0) {
      do_map = false;
    } else if (std::strcmp(argv[i], "--no-reorder") == 0) {
      opts.do_pin_reorder = false;
    } else if (std::strcmp(argv[i], "--no-obs") == 0) {
      opts.use_observability_directive = false;
    } else if (std::strcmp(argv[i], "--margin") == 0 && i + 1 < argc) {
      opts.mux.slack_margin_ps = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      const auto seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      opts.tpg.seed = seed;
      opts.observability.seed = seed ^ 0x0b5e;
      opts.fill.seed = seed ^ 0xf111;
    } else if (std::strcmp(argv[i], "--write") == 0 && i + 1 < argc) {
      write_path = argv[++i];
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      set_log_level(LogLevel::Info);
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      path = argv[i];
    }
  }
  if (!path) return usage(argv[0]);

  try {
    const std::string path_str(path);
    const bool is_verilog =
        path_str.size() > 2 && path_str.rfind(".v") == path_str.size() - 2;
    Netlist nl =
        is_verilog ? parse_verilog_file(path_str) : parse_bench_file(path_str);
    if (do_map && !is_mapped(nl)) nl = map_to_nand_nor_inv(nl);
    std::printf("%s: %s\n\n", nl.name().c_str(),
                compute_stats(nl).to_string().c_str());

    const FlowResult r = run_flow(nl, opts);
    std::printf("%zu test patterns, %.1f%% fault coverage, %zu/%zu cells "
                "multiplexed\n\n",
                r.num_patterns, 100.0 * r.fault_coverage,
                r.mux_plan.num_multiplexed, r.mux_plan.multiplexed.size());
    std::printf("%-16s %14s %12s %14s\n", "structure", "dyn (uW/Hz)",
                "static (uW)", "peak dyn");
    auto row = [](const char* name, const ScanPowerResult& p) {
      std::printf("%-16s %14.3e %12.2f %14.3e\n", name, p.dynamic_per_hz_uw,
                  p.static_uw, p.peak_dynamic_per_hz_uw);
    };
    row("traditional", r.traditional);
    row("input control", r.input_control);
    row("proposed", r.proposed);
    std::printf("\nimprovement vs traditional: dyn %.1f%%, static %.1f%%\n",
                r.dyn_vs_traditional_pct, r.stat_vs_traditional_pct);
    std::printf("improvement vs input ctl  : dyn %.1f%%, static %.1f%%\n",
                r.dyn_vs_input_control_pct, r.stat_vs_input_control_pct);

    if (write_path) {
      const Netlist muxed =
          insert_muxes_physically(nl, r.mux_plan, r.pattern.mux_pattern);
      std::ofstream f(write_path);
      SP_CHECK(f.good(), std::string("cannot write ") + write_path);
      write_bench(f, muxed);
      std::printf("\nwrote mux-inserted netlist to %s\n", write_path);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
