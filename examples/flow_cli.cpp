// Command-line front end for arbitrary .bench / structural .v designs: runs the full
// DATE'05 comparison flow on a user-supplied circuit through a ScanSession
// (one session per run; its cached test set / observability / tables are
// what a long-running service would keep warm between queries).
//
//   flow_cli <design.bench> [options]
//     --no-map            skip NAND/NOR/INV technology mapping
//     --no-reorder        skip pin reordering
//     --no-obs            undirected justification (no observability)
//     --margin <ps>       extra slack demanded by AddMUX
//     --seed <n>          ATPG/fill/observability seed
//     --threads <n>       fault-simulation worker threads (0 = all cores)
//     --block-words <w>   packed simulation block width (1, 2, 4, 8, 16 or
//                         32; 16/32 require the wide backend)
//     --backend <b>       kernel backend (auto, scalar, avx2, avx512, wide)
//     --json <file>       machine-readable result dump (includes a
//                         "metrics" section with the session's counters)
//     --write <out.bench> write the mux-inserted netlist
//     --verbose           narrate flow progress (same as --log-level info)
//     --log-level <l>     stderr log threshold: debug|info|warn|error|off
//     --metrics           print the session's metrics snapshot (text)
//     --metrics=json      ... as a JSON object on stdout
//     --trace <file>      record phase spans and write a Chrome trace_event
//                         JSON file (compiled out under
//                         SCANPOWER_TELEMETRY=OFF)

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli_common.hpp"
#include "core/session.hpp"
#include "core/verify.hpp"
#include "netlist/stats.hpp"
#include "scan/add_mux.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

using namespace scanpower;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <design.bench> [--no-map] [--no-reorder] [--no-obs]"
               " [--margin ps] [--seed n] [--threads n] [--block-words w]"
               " [--backend auto|scalar|avx2|avx512|wide]"
               " [--json file] [--write out.bench] [--verbose]"
               " [--log-level debug|info|warn|error|off]"
               " [--metrics | --metrics=json] [--trace file]\n",
               argv0);
  return 2;
}

void dump_json(const char* path, const FlowResult& r, const FlowOptions& opts,
               const MetricsSnapshot& snap) {
  std::ofstream f(path);
  SP_CHECK(f.good(), std::string("cannot write ") + path);
  JsonWriter j(f);
  j.begin_object();
  j.field("circuit", r.circuit);
  j.field("num_comb_gates", static_cast<std::uint64_t>(r.stats.num_comb_gates));
  j.field("num_dffs", static_cast<std::uint64_t>(r.stats.num_dffs));
  j.field("num_patterns", static_cast<std::uint64_t>(r.num_patterns));
  j.field("fault_coverage", r.fault_coverage);
  j.begin_object("options");
  j.field("block_words", opts.tpg.fault_sim.block_words);
  j.field("backend", backend_name(opts.tpg.fault_sim.backend));
  j.field("num_threads", opts.tpg.fault_sim.num_threads);
  j.field("seed", opts.tpg.seed);
  j.end_object();
  j.begin_object("mux");
  j.field("num_multiplexed", static_cast<std::uint64_t>(r.mux_plan.num_multiplexed));
  j.field("num_cells", static_cast<std::uint64_t>(r.mux_plan.multiplexed.size()));
  j.end_object();
  const auto power = [&](const char* name, const ScanPowerResult& p) {
    j.begin_object(name);
    j.field("dynamic_per_hz_uw", p.dynamic_per_hz_uw);
    j.field("static_uw", p.static_uw);
    j.field("peak_dynamic_per_hz_uw", p.peak_dynamic_per_hz_uw);
    j.end_object();
  };
  power("traditional", r.traditional);
  power("input_control", r.input_control);
  power("proposed", r.proposed);
  j.begin_object("improvement_pct");
  j.field("dyn_vs_traditional", r.dyn_vs_traditional_pct);
  j.field("stat_vs_traditional", r.stat_vs_traditional_pct);
  j.field("dyn_vs_input_control", r.dyn_vs_input_control_pct);
  j.field("stat_vs_input_control", r.stat_vs_input_control_pct);
  j.end_object();
  j.begin_object("metrics");
  snap.write_json(j);
  j.end_object();
  j.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const char* path = nullptr;
  const char* write_path = nullptr;
  const char* json_path = nullptr;
  const char* trace_path = nullptr;
  bool metrics_text = false;
  bool metrics_json = false;
  bool do_map = true;
  std::uint64_t seed = 0;
  bool have_seed = false;
  FlowOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (cli::flag(argv, i, "--no-map")) {
      do_map = false;
    } else if (cli::flag(argv, i, "--no-reorder")) {
      opts.do_pin_reorder = false;
    } else if (cli::flag(argv, i, "--no-obs")) {
      opts.use_observability_directive = false;
    } else if (cli::value_flag(argc, argv, i, "--margin",
                               opts.mux.slack_margin_ps)) {
    } else if (cli::value_flag(argc, argv, i, "--seed", seed)) {
      have_seed = true;
    } else if (cli::value_flag(argc, argv, i, "--threads",
                               opts.tpg.fault_sim.num_threads)) {
      opts.diag.num_threads = opts.tpg.fault_sim.num_threads;
    } else if (cli::value_flag(argc, argv, i, "--block-words",
                               opts.tpg.fault_sim.block_words)) {
      opts.diag.block_words = opts.tpg.fault_sim.block_words;
      opts.observability.block_words = opts.tpg.fault_sim.block_words;
      opts.fill.block_words = opts.tpg.fault_sim.block_words;
    } else if (cli::backend_flag(argc, argv, i, "--backend",
                                 opts.tpg.fault_sim.backend)) {
      opts.diag.backend = opts.tpg.fault_sim.backend;
      opts.observability.backend = opts.tpg.fault_sim.backend;
      opts.fill.backend = opts.tpg.fault_sim.backend;
    } else if (cli::value_flag(argc, argv, i, "--json", json_path)) {
    } else if (cli::value_flag(argc, argv, i, "--write", write_path)) {
    } else if (cli::value_flag(argc, argv, i, "--trace", trace_path)) {
    } else if (cli::flag(argv, i, "--metrics")) {
      metrics_text = true;
    } else if (cli::flag(argv, i, "--metrics=json")) {
      metrics_json = true;
    } else if (cli::flag(argv, i, "--verbose")) {
      set_log_level(LogLevel::Info);
    } else if (cli::value_flag(argc, argv, i, "--log-level", v)) {
      set_log_level(cli::parse_log_level(v));
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      path = argv[i];
    }
  }
  if (!path) return usage(argv[0]);
  if (have_seed) {
    opts.tpg.seed = seed;
    opts.observability.seed = seed ^ 0x0b5e;
    opts.fill.seed = seed ^ 0xf111;
  }

  try {
    Netlist nl = cli::load_design(path, do_map);
    std::printf("%s: %s\n\n", nl.name().c_str(),
                compute_stats(nl).to_string().c_str());

    ScanSession session(std::move(nl), opts);
    if (trace_path) session.telemetry().trace.set_enabled(true);
    const FlowResult r = session.run_flow();
    std::printf("%zu test patterns, %.1f%% fault coverage, %zu/%zu cells "
                "multiplexed\n\n",
                r.num_patterns, 100.0 * r.fault_coverage,
                r.mux_plan.num_multiplexed, r.mux_plan.multiplexed.size());
    std::printf("%-16s %14s %12s %14s\n", "structure", "dyn (uW/Hz)",
                "static (uW)", "peak dyn");
    auto row = [](const char* name, const ScanPowerResult& p) {
      std::printf("%-16s %14.3e %12.2f %14.3e\n", name, p.dynamic_per_hz_uw,
                  p.static_uw, p.peak_dynamic_per_hz_uw);
    };
    row("traditional", r.traditional);
    row("input control", r.input_control);
    row("proposed", r.proposed);
    std::printf("\nimprovement vs traditional: dyn %.1f%%, static %.1f%%\n",
                r.dyn_vs_traditional_pct, r.stat_vs_traditional_pct);
    std::printf("improvement vs input ctl  : dyn %.1f%%, static %.1f%%\n",
                r.dyn_vs_input_control_pct, r.stat_vs_input_control_pct);

    if (json_path) {
      dump_json(json_path, r, opts, session.metrics());
      std::printf("\nwrote JSON result to %s\n", json_path);
    }

    if (metrics_text || metrics_json) {
      const MetricsSnapshot snap = session.metrics();
      std::ostringstream os;
      if (metrics_json) {
        JsonWriter j(os);
        j.begin_object();
        snap.write_json(j);
        j.end_object();
        std::printf("%s\n", os.str().c_str());
      } else {
        snap.write_text(os);
        std::printf("\nmetrics:\n%s", os.str().c_str());
      }
    }
    if (trace_path) {
      std::ofstream f(trace_path);
      SP_CHECK(f.good(), std::string("cannot write ") + trace_path);
      session.telemetry().trace.write_chrome_trace(f);
      std::printf("wrote Chrome trace (%zu spans) to %s\n",
                  session.telemetry().trace.events().size(), trace_path);
    }

    if (write_path) {
      const Netlist muxed = insert_muxes_physically(
          session.netlist(), r.mux_plan, r.pattern.mux_pattern);
      std::ofstream f(write_path);
      SP_CHECK(f.good(), std::string("cannot write ") + write_path);
      write_bench(f, muxed);
      std::printf("\nwrote mux-inserted netlist to %s\n", write_path);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
