// Input-vector-control explorer: the static-power machinery of the paper
// in isolation.
//
// Shows, for one circuit: per-cell leakage tables, leakage observability
// of the primary inputs (the [15] attribute the paper extends to internal
// lines), and a random-sampling search for the minimum-leakage input
// vector ([14]'s recipe, also used for the don't-care fill), compared
// against exhaustive search when the input space is small enough.

#include <cstdio>

#include "benchgen/benchgen.hpp"
#include "power/leakage_model.hpp"
#include "power/observability.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

using namespace scanpower;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s27";
  const Netlist nl = map_to_nand_nor_inv(make_circuit(name));
  const LeakageModel model;

  std::printf("circuit %s: %zu gates\n\n", name.c_str(), nl.num_gates());

  // Leakage observability at the primary inputs (positive -> the line at 1
  // costs leakage; drive it to 0 in standby).
  ObservabilityOptions oopts;
  oopts.samples = 2048;
  const LeakageObservability obs(nl, model, oopts);
  std::printf("leakage observability (PIs), mean leakage %.1f nA:\n",
              obs.mean_leakage_na());
  for (GateId pi : nl.inputs()) {
    std::printf("  %-6s %+9.2f nA  -> prefer %c\n",
                nl.gate_name(pi).c_str(), obs.obs(pi),
                obs.obs(pi) > 0 ? '0' : '1');
  }

  // Random-sampling minimum-leakage vector over PIs + scan cells.
  Simulator sim(nl);
  Rng rng(0xbeef);
  auto eval_vec = [&](std::uint64_t bits) {
    unsigned k = 0;
    for (GateId pi : nl.inputs()) sim.set_input(pi, from_bool((bits >> k++) & 1));
    for (GateId ff : nl.dffs()) sim.set_state(ff, from_bool((bits >> k++) & 1));
    sim.eval_incremental();
    return model.circuit_leakage_na(nl, sim.values());
  };
  const std::size_t n_src = nl.inputs().size() + nl.dffs().size();

  double best = 1e300;
  std::uint64_t best_bits = 0;
  const int samples = 256;
  for (int s = 0; s < samples; ++s) {
    const std::uint64_t bits = rng.next_u64();
    const double leak = eval_vec(bits);
    if (leak < best) {
      best = leak;
      best_bits = bits;
    }
  }
  std::printf("\nrandom search (%d samples): best %.1f nA (%.2f uW at 0.9 V)\n",
              samples, best, best * 0.9e-3);

  if (n_src <= 20) {
    double exact = 1e300;
    double worst = 0.0;
    for (std::uint64_t v = 0; v < (1ull << n_src); ++v) {
      const double leak = eval_vec(v);
      if (leak < exact) exact = leak;
      if (leak > worst) worst = leak;
    }
    std::printf("exhaustive (%llu vectors): best %.1f nA, worst %.1f nA\n",
                static_cast<unsigned long long>(1ull << n_src), exact, worst);
    std::printf("random search found within %.2f%% of the true minimum;\n"
                "min-vs-max leakage spread is %.1fx -- why vector control "
                "matters.\n",
                100.0 * (best - exact) / exact, worst / exact);
  } else {
    std::printf("(input space too large for exhaustive comparison)\n");
  }

  // Echo the chosen vector.
  std::string vec;
  for (std::size_t k = 0; k < n_src; ++k) {
    vec.push_back(((best_bits >> k) & 1) ? '1' : '0');
  }
  std::printf("\nbest sampled vector (PIs then scan cells): %s\n", vec.c_str());
  return 0;
}
