// Input-vector-control explorer: the static-power machinery of the paper
// in isolation.
//
// Shows, for one circuit: leakage observability of the primary inputs
// (the [15] attribute the paper extends to internal lines) and the packed
// minimum-leakage vector search ([14]'s random-sampling recipe, batched
// 64*W vectors per sweep plus single-bit refinement), compared against
// exhaustive search when the input space is small enough.

#include <cstdio>

#include "benchgen/benchgen.hpp"
#include "cli_common.hpp"
#include "core/find_pattern.hpp"
#include "power/leakage_model.hpp"
#include "power/observability.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace scanpower;

int main(int argc, char** argv) {
  std::string name = "s27";
  MinLeakageSearchOptions sopts;
  sopts.seed = 0xbeef;
  for (int i = 1; i < argc; ++i) {
    if (cli::value_flag(argc, argv, i, "--sweeps", sopts.sweeps)) {
    } else if (cli::value_flag(argc, argv, i, "--threads", sopts.num_threads)) {
    } else if (cli::value_flag(argc, argv, i, "--block-words",
                               sopts.block_words)) {
    } else if (cli::backend_flag(argc, argv, i, "--backend", sopts.backend)) {
    } else {
      name = argv[i];
    }
  }
  const Netlist nl = map_to_nand_nor_inv(make_circuit(name));
  const LeakageModel model;

  std::printf("circuit %s: %zu gates\n\n", name.c_str(), nl.num_gates());

  // Leakage observability at the primary inputs (positive -> the line at 1
  // costs leakage; drive it to 0 in standby).
  ObservabilityOptions oopts;
  oopts.samples = 2048;
  oopts.block_words = sopts.block_words;
  oopts.num_threads = sopts.num_threads;
  oopts.backend = sopts.backend;
  const LeakageObservability obs(nl, model, oopts);
  std::printf("leakage observability (PIs), mean leakage %.1f nA:\n",
              obs.mean_leakage_na());
  for (GateId pi : nl.inputs()) {
    std::printf("  %-6s %+9.2f nA  -> prefer %c\n",
                nl.gate_name(pi).c_str(), obs.obs(pi),
                obs.obs(pi) > 0 ? '0' : '1');
  }

  // Packed minimum-leakage vector search over PIs + scan cells: 64*W
  // random vectors per sweep, then steepest-descent bit flips.
  const std::size_t n_src = nl.inputs().size() + nl.dffs().size();
  const MinLeakageSearchResult search =
      min_leakage_vector_search(nl, model, sopts);
  std::printf("\npacked search (%zu vectors, %d refinement flips): "
              "random best %.1f nA -> %.1f nA (%.2f uW at 0.9 V)\n",
              search.vectors_evaluated, search.refine_flips,
              search.random_best_na, search.best_leakage_na,
              search.best_leakage_na * 0.9e-3);

  if (n_src <= 20) {
    Simulator sim(nl);
    auto eval_vec = [&](std::uint64_t bits) {
      unsigned k = 0;
      for (GateId pi : nl.inputs()) {
        sim.set_input(pi, from_bool((bits >> k++) & 1));
      }
      for (GateId ff : nl.dffs()) {
        sim.set_state(ff, from_bool((bits >> k++) & 1));
      }
      sim.eval_incremental();
      return model.circuit_leakage_na(nl, sim.values());
    };
    double exact = 1e300;
    double worst = 0.0;
    for (std::uint64_t v = 0; v < (1ull << n_src); ++v) {
      const double leak = eval_vec(v);
      if (leak < exact) exact = leak;
      if (leak > worst) worst = leak;
    }
    std::printf("exhaustive (%llu vectors): best %.1f nA, worst %.1f nA\n",
                static_cast<unsigned long long>(1ull << n_src), exact, worst);
    std::printf("packed search found within %.2f%% of the true minimum;\n"
                "min-vs-max leakage spread is %.1fx -- why vector control "
                "matters.\n",
                100.0 * (search.best_leakage_na - exact) / exact,
                worst / exact);
  } else {
    std::printf("(input space too large for exhaustive comparison)\n");
  }

  // Echo the chosen vector.
  std::string vec;
  for (Logic v : search.pi) vec.push_back(v == Logic::One ? '1' : '0');
  for (Logic v : search.ppi) vec.push_back(v == Logic::One ? '1' : '0');
  std::printf("\nbest vector (PIs then scan cells): %s\n", vec.c_str());
  return 0;
}
