// End-to-end socket smoke for the TCP diagnosis service: spawns a real
// `diag_server --listen 0` child process, reads the ephemeral port it
// prints, drives it with net::DiagClient over a benchgen profile, and
// byte-compares every wire result against the in-process
// ScanSession::diagnose() reference -- the full acceptance loop
// (process spawn -> TCP -> queue -> engine -> JSON -> client parse) in
// one ctest. Usage:
//
//   net_smoke <path-to-diag_server>
//
// Exits 0 on success; prints the first mismatch and exits 1 otherwise.

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "core/session.hpp"
#include "net/client.hpp"
#include "net/framing.hpp"
#include "netlist/bench_io.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace scanpower;

namespace {

struct Server {
  pid_t pid = -1;
  int to_child = -1;    ///< child's stdin (write "quit\n" to stop it)
  int from_child = -1;  ///< child's stdout ("listening <port>")
};

Server spawn_server(const char* binary) {
  int in_pipe[2], out_pipe[2];
  SP_CHECK(pipe(in_pipe) == 0 && pipe(out_pipe) == 0, "pipe failed");
  const pid_t pid = fork();
  SP_CHECK(pid >= 0, "fork failed");
  if (pid == 0) {
    dup2(in_pipe[0], STDIN_FILENO);
    dup2(out_pipe[1], STDOUT_FILENO);
    close(in_pipe[0]);
    close(in_pipe[1]);
    close(out_pipe[0]);
    close(out_pipe[1]);
    execl(binary, binary, "--listen", "0", "--max-pending", "8",
          "--overload", "reject", static_cast<char*>(nullptr));
    std::perror("execl diag_server");
    _exit(127);
  }
  close(in_pipe[0]);
  close(out_pipe[1]);
  return Server{pid, in_pipe[1], out_pipe[0]};
}

std::uint16_t read_port(int fd) {
  // First line of the child's stdout: "listening <port>".
  std::string line;
  char c;
  while (read(fd, &c, 1) == 1 && c != '\n') line.push_back(c);
  SP_CHECK(line.rfind("listening ", 0) == 0,
           "expected \"listening <port>\", got: " + line);
  const int port = std::atoi(line.c_str() + std::strlen("listening "));
  SP_CHECK(port > 0 && port <= 65535, "bad port in: " + line);
  return static_cast<std::uint16_t>(port);
}

int fail(const std::string& what, const std::string& got,
         const std::string& want) {
  std::fprintf(stderr, "FAIL %s\n  got:  %s\n  want: %s\n", what.c_str(),
               got.c_str(), want.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <path-to-diag_server>\n", argv[0]);
    return 2;
  }

  // The benchgen profile, written where the server can load it. The
  // netlist name is the file stem, so the file must be named s344.bench.
  const std::string dir =
      strprintf("/tmp/net_smoke_%d", static_cast<int>(getpid()));
  SP_CHECK(mkdir(dir.c_str(), 0755) == 0, "mkdir " + dir + " failed");
  const std::string bench_path = dir + "/s344.bench";
  {
    std::ofstream f(bench_path);
    write_bench(f, map_to_nand_nor_inv(make_circuit("s344")));
  }
  const Netlist nl = parse_bench_file(bench_path);
  const auto faults = collapse_faults(nl);
  constexpr std::size_t kPatterns = 64;
  constexpr std::uint64_t kSeed = 9;
  const std::size_t picks[] = {3, 41 % faults.size(), 97 % faults.size()};

  // In-process reference through the shared serializer.
  FlowOptions opts;
  Rng rng(kSeed);
  std::vector<TestPattern> pats;
  for (std::size_t i = 0; i < kPatterns; ++i) {
    pats.push_back(random_pattern(nl, rng));
  }
  ScanSession ref(nl, opts);
  ref.bind_patterns(pats);
  std::vector<std::string> expected;
  for (const std::size_t p : picks) {
    expected.push_back(net::result_json(
        ref.diagnose(ref.inject(faults[p])), nl, nl.name(),
        "inject-index " + std::to_string(p), kPatterns, 5));
  }

  const Server srv = spawn_server(argv[1]);
  int rc = 0;
  try {
    const std::uint16_t port = read_port(srv.from_child);
    net::DiagClient client("127.0.0.1", port);

    std::string resp = client.design(bench_path);
    if (net::json_string_field(resp, "circuit") !=
        std::optional<std::string>("s344")) {
      rc |= fail("design ack", resp, "{\"ok\":\"design\",\"circuit\":\"s344\"}");
    }
    resp = client.patterns(kPatterns, kSeed);
    if (net::json_u64_field(resp, "num_patterns") !=
        std::optional<std::uint64_t>(kPatterns)) {
      rc |= fail("patterns ack", resp, "num_patterns:64");
    }
    for (const std::size_t p : picks) {
      client.submit("inject-index " + std::to_string(p));
    }
    const std::vector<std::string> results = client.flush();
    if (results.size() != expected.size()) {
      rc |= fail("flush count", std::to_string(results.size()),
                 std::to_string(expected.size()));
    }
    for (std::size_t i = 0; i < results.size() && i < expected.size(); ++i) {
      if (results[i] != expected[i]) {
        rc |= fail("result " + std::to_string(i) + " byte identity",
                   results[i], expected[i]);
      }
    }
    resp = client.request("stats");
    for (const char* key : {"\"net.requests\":", "\"queue.submitted\":"}) {
      if (resp.find(key) == std::string::npos) {
        rc |= fail("stats", resp, std::string("contains ") + key);
      }
    }
    client.quit();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL exception: %s\n", e.what());
    rc = 1;
  }

  // Stop the server via its stdin control channel and reap it.
  (void)!write(srv.to_child, "quit\n", 5);
  close(srv.to_child);
  close(srv.from_child);
  int status = 0;
  if (waitpid(srv.pid, &status, 0) != srv.pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "FAIL server exit status %d\n", status);
    rc = 1;
  }
  std::remove(bench_path.c_str());
  rmdir(dir.c_str());
  if (rc == 0) std::printf("net_smoke: PASS (3 results byte-identical)\n");
  return rc;
}
