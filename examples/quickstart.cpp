// Quickstart: run the full DATE'05 flow on one circuit and print the
// three-way power comparison (traditional scan vs input control vs the
// proposed multiplexed structure).

#include <cstdio>

#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "techmap/techmap.hpp"

using namespace scanpower;

int main() {
  // 1. Get a circuit (synthetic ISCAS89-profile s344; see DESIGN.md) and
  //    map it onto the paper's NAND/NOR/INV library.
  Netlist rtl = make_iscas89_like("s344");
  Netlist mapped = map_to_nand_nor_inv(rtl);

  // 2. Run the whole comparison flow: ATPG, AddMUX, leakage observability,
  //    FindControlledInputPattern, don't-care filling, pin reordering and
  //    scan-shift power simulation.
  FlowOptions opts;
  const FlowResult r = run_flow(mapped, opts);

  // 3. Report.
  std::printf("circuit %s*: %s\n", r.circuit.c_str(),
              r.stats.to_string().c_str());
  std::printf("tests: %zu patterns, %.1f%% fault coverage\n", r.num_patterns,
              100.0 * r.fault_coverage);
  std::printf("muxed scan cells: %zu/%zu\n", r.mux_plan.num_multiplexed,
              r.mux_plan.multiplexed.size());
  std::printf("\n%-16s %14s %12s\n", "structure", "dyn (uW/Hz)", "static (uW)");
  auto row = [](const char* name, const ScanPowerResult& p) {
    std::printf("%-16s %14.3e %12.2f\n", name, p.dynamic_per_hz_uw,
                p.static_uw);
  };
  row("traditional", r.traditional);
  row("input control", r.input_control);
  row("proposed", r.proposed);
  std::printf("\nimprovement vs traditional: dynamic %.1f%%, static %.1f%%\n",
              r.dyn_vs_traditional_pct, r.stat_vs_traditional_pct);
  std::printf("improvement vs input ctl  : dynamic %.1f%%, static %.1f%%\n",
              r.dyn_vs_input_control_pct, r.stat_vs_input_control_pct);
  return 0;
}
