// Quickstart: one ScanSession serving several queries against one design.
//
// A session is the unit of state in this library: constructed once from a
// (netlist, options) pair, it owns the worker pool and lazily caches
// everything expensive (ATPG test set, collapsed fault list, observation
// cones, leakage tables, good-machine pattern blocks), so the second
// query against the same design costs only its own scoring work. Here we
// run the paper's three-way power comparison, then play tester: inject a
// defect, diagnose its full failure log, and diagnose the MISR-compacted
// signature log of the same defect -- both through the single
// session.diagnose(Evidence) entry point.

#include <cstdio>

#include "benchgen/benchgen.hpp"
#include "core/session.hpp"
#include "core/session_pool.hpp"
#include "techmap/techmap.hpp"

using namespace scanpower;

int main() {
  // 1. Get a circuit (synthetic ISCAS89-profile s344; see DESIGN.md), map
  //    it onto the paper's NAND/NOR/INV library, and open a session.
  Netlist mapped = map_to_nand_nor_inv(make_iscas89_like("s344"));
  ScanSession session(std::move(mapped), FlowOptions{});
  const Netlist& nl = session.netlist();

  // 2. The full comparison flow: ATPG, AddMUX, leakage observability,
  //    FindControlledInputPattern, don't-care filling, pin reordering and
  //    scan-shift power simulation.
  const FlowResult r = session.run_flow();

  std::printf("circuit %s*: %s\n", r.circuit.c_str(),
              r.stats.to_string().c_str());
  std::printf("tests: %zu patterns, %.1f%% fault coverage\n", r.num_patterns,
              100.0 * r.fault_coverage);
  std::printf("muxed scan cells: %zu/%zu\n", r.mux_plan.num_multiplexed,
              r.mux_plan.multiplexed.size());
  std::printf("\n%-16s %14s %12s\n", "structure", "dyn (uW/Hz)", "static (uW)");
  auto row = [](const char* name, const ScanPowerResult& p) {
    std::printf("%-16s %14.3e %12.2f\n", name, p.dynamic_per_hz_uw,
                p.static_uw);
  };
  row("traditional", r.traditional);
  row("input control", r.input_control);
  row("proposed", r.proposed);
  std::printf("\nimprovement vs traditional: dynamic %.1f%%, static %.1f%%\n",
              r.dyn_vs_traditional_pct, r.stat_vs_traditional_pct);
  std::printf("improvement vs input ctl  : dynamic %.1f%%, static %.1f%%\n",
              r.dyn_vs_input_control_pct, r.stat_vs_input_control_pct);

  // 3. Diagnosis against the same session: bind the ATPG patterns (free --
  //    run_flow already generated them) and pick a defect to plant.
  session.bind_tests();
  const Fault defect = session.faults()[session.faults().size() / 3];

  // 3a. Full tester observability: per-(pattern, point) failure log.
  const Evidence full_log = session.inject(defect);
  const DiagnosisResult full = session.diagnose(full_log);

  // 3b. Production tester: per-window MISR signatures only. Same entry
  //     point -- diagnose() dispatches on the evidence alternative.
  const Evidence sig_log = session.inject_compacted(defect);
  const DiagnosisResult compacted = session.diagnose(sig_log);

  std::printf("\ninjected %s\n", defect.to_string(nl).c_str());
  std::printf("  full-response log : rank %zu of %zu candidates%s\n",
              full.rank_of(defect), full.num_candidates,
              !full.ranked.empty() && full.ranked[0].exact() ? " (exact)" : "");
  std::printf("  MISR signature log: rank %zu of %zu candidates "
              "(%zu/%zu failing windows)\n",
              compacted.rank_of(defect), compacted.num_candidates,
              compacted.num_failing_windows, compacted.num_windows);

  // 4. What did all of that cost? Every engine the session built reported
  //    into its telemetry scope; metrics() snapshots the counters (all
  //    zero when built with SCANPOWER_TELEMETRY=OFF). Individual results
  //    also carry per-query timings in DiagnosisResult::stats.
  const MetricsSnapshot m = session.metrics();
  std::printf("\ntelemetry: %llu diagnoses over %llu candidates, "
              "%llu cone sweeps (%llu skipped unexcited), "
              "good-block cache %llu built / %llu reads\n",
              static_cast<unsigned long long>(
                  m.counter(CounterId::kDiagQueries) +
                  m.counter(CounterId::kCompactQueries)),
              static_cast<unsigned long long>(
                  m.counter(CounterId::kDiagCandidates) +
                  m.counter(CounterId::kCompactCandidates)),
              static_cast<unsigned long long>(
                  m.counter(CounterId::kSweepCalls)),
              static_cast<unsigned long long>(
                  m.counter(CounterId::kSweepUnexcited)),
              static_cast<unsigned long long>(
                  m.counter(CounterId::kGoodCacheBuiltBlocks)),
              static_cast<unsigned long long>(
                  m.counter(CounterId::kGoodCacheCachedReads)));
  std::printf("diagnosis timing: prune %llu us, score %llu us\n",
              static_cast<unsigned long long>(full.stats.prune_us),
              static_cast<unsigned long long>(full.stats.score_us));

  // 5. Serving several clients of the same design? Share the design-keyed
  //    layer instead of rebuilding it per session: a SessionPool hands out
  //    immutable DesignContexts keyed by a structural hash (LRU-evicted
  //    past its capacity), and sessions built over one are cheap -- they
  //    reference the context's faults/cones/tables and keep only their
  //    own pattern caches. Results are bit-identical to an isolated
  //    session; see diag_server for the queue-fed multi-client front end.
  SessionPool pool(/*capacity=*/4);
  ScanSession tenant(pool.acquire(nl), session.options());
  tenant.bind_patterns(session.patterns());
  const DiagnosisResult shared = tenant.diagnose(full_log);
  std::printf("\nshared-context tenant agrees: rank %zu of %zu candidates\n",
              shared.rank_of(defect), shared.num_candidates);

  // 6. Remote clients? `diag_server --listen 0` serves the same command
  //    grammar over TCP (ephemeral port printed as "listening <port>"),
  //    answering every command with one JSON line and rejecting evidence
  //    with {"error":"overloaded","retry_after_ms":...} when the queue is
  //    past --max-pending. net::DiagClient (src/net/client.hpp) is the
  //    matching blocking client -- connect/request timeouts plus jittered
  //    exponential backoff on overload -- and wire results are
  //    byte-identical to the in-process diagnose() calls above.
  return 0;
}
