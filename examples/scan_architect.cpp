// Scan-architecture explorer: walks through the proposed structure step
// by step on one circuit, printing what each stage of the method decides
// -- the timing analysis behind AddMUX, the found control pattern, the
// don't-care fill, and the pin-reordering summary -- then verifies the
// architectural claims and writes the modified netlist to .bench.

#include <cstdio>
#include <fstream>

#include "atpg/tpg.hpp"
#include "benchgen/benchgen.hpp"
#include "core/dont_care_fill.hpp"
#include "core/find_pattern.hpp"
#include "core/pin_reorder.hpp"
#include "core/verify.hpp"
#include "netlist/bench_io.hpp"
#include "power/observability.hpp"
#include "scan/add_mux.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "timing/sta.hpp"

using namespace scanpower;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s344";
  const Netlist nl = map_to_nand_nor_inv(make_circuit(name));
  const DelayModel delay;
  const LeakageModel leakage;

  // ---- Step 1: AddMUX --------------------------------------------------
  const TimingAnalysis sta(nl, delay);
  std::printf("Step 1: AddMUX on %s* (critical path %.1f ps)\n", name.c_str(),
              sta.critical_delay_ps());
  const MuxPlan plan = plan_muxes(nl, delay);
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    const GateId dff = nl.dffs()[i];
    const double d_mux = delay.mux_delay_ps(delay.caps().load_ff(nl, dff));
    std::printf("  %-8s slack %7.1f ps, mux %5.1f ps -> %s\n",
                nl.gate_name(dff).c_str(), sta.slack_ps(dff), d_mux,
                plan.multiplexed[i] ? "MUX" : "keep (critical)");
  }
  std::printf("  => %zu/%zu cells multiplexed\n\n", plan.num_multiplexed,
              plan.multiplexed.size());

  // ---- Step 2: leakage observability + FindControlledInputPattern -------
  const LeakageObservability obs(nl, leakage);
  FindPatternOptions fopts;
  fopts.observability = &obs.values();
  FindPatternResult pat =
      find_controlled_input_pattern(nl, plan, delay.caps(), fopts);
  std::printf("Step 2: FindControlledInputPattern\n");
  std::printf("  blocked %zu transition gates, %zu escaped, %zu lines "
              "still toggling\n",
              pat.gates_blocked, pat.gates_propagated, pat.transition_lines);
  std::printf("  PI pattern : %s\n", logic_string(pat.pi_pattern).c_str());
  std::printf("  mux pattern: %s (x = not multiplexed / free)\n\n",
              logic_string(pat.mux_pattern).c_str());

  // ---- Step 3: don't-care filling ----------------------------------------
  const FillResult fill = fill_dont_cares_min_leakage(
      nl, leakage, pat.pi_pattern, pat.mux_pattern, plan.multiplexed);
  std::printf("Step 3: don't-care fill (%zu free inputs, %d samples)\n",
              fill.free_inputs, fill.trials);
  std::printf("  first random fill %.1f nA -> best %.1f nA\n",
              fill.first_leakage_na, fill.best_leakage_na);
  std::printf("  PI pattern : %s\n", logic_string(pat.pi_pattern).c_str());
  std::printf("  mux pattern: %s\n\n", logic_string(pat.mux_pattern).c_str());

  // ---- Step 4: pin reordering ---------------------------------------------
  Netlist tuned = nl;
  Simulator sim(tuned);
  for (std::size_t k = 0; k < nl.inputs().size(); ++k) {
    sim.set_input(nl.inputs()[k], pat.pi_pattern[k]);
  }
  for (std::size_t c = 0; c < nl.dffs().size(); ++c) {
    sim.set_state(nl.dffs()[c], pat.mux_pattern[c]);
  }
  sim.eval();
  const ReorderResult reorder =
      reorder_pins_for_leakage(tuned, leakage, sim.values());
  std::printf("Step 4: pin reordering\n");
  std::printf("  %zu/%zu symmetric gates permuted, %.1f nA saved in the "
              "scan-mode state\n\n",
              reorder.gates_permuted, reorder.gates_considered,
              reorder.saved_na());

  // ---- Step 5: verification ------------------------------------------------
  const TestSet tests = generate_tests(nl);
  const StructureVerification v =
      verify_mux_structure(nl, plan, pat.mux_pattern, delay, &tests);
  std::printf("Step 5: verification\n");
  std::printf("  critical delay %.1f -> %.1f ps : %s\n",
              v.critical_delay_before_ps, v.critical_delay_after_ps,
              v.critical_delay_unchanged ? "unchanged" : "CHANGED");
  std::printf("  normal-mode equivalence on %zu vectors: %s\n",
              v.vectors_checked, v.normal_mode_equivalent ? "ok" : "FAILED");
  std::printf("  scan-mode constants: %s\n",
              v.scan_mode_constants_ok ? "ok" : "FAILED");

  // ---- Step 6: write the modified design --------------------------------
  const Netlist muxed = insert_muxes_physically(nl, plan, pat.mux_pattern);
  const std::string out = name + "_proposed.bench";
  std::ofstream f(out);
  write_bench(f, muxed);
  std::printf("\nwrote the modified netlist to %s (%zu gates)\n", out.c_str(),
              muxed.num_gates());
  return 0;
}
