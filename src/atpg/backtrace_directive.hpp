#pragma once
// Pluggable decision heuristics for PODEM-style backtrace.
//
// PODEM is complete regardless of how ties are broken (it enumerates
// controllable-point assignments with backtracking), so the directive only
// shapes *which* satisfying assignment is found first. ATPG uses a
// level-based default; the core algorithm of the paper plugs in a
// leakage-observability directive so the blocking vector found is also a
// low-leakage vector (Section 4).

#include <vector>

#include "netlist/netlist.hpp"

namespace scanpower {

class BacktraceDirective {
 public:
  virtual ~BacktraceDirective() = default;

  /// Chooses among `candidates` (fanin gate ids with unknown value) the
  /// line to pursue when the required value on the chosen line is
  /// `target_value`. Must return one of the candidates.
  virtual GateId choose(const Netlist& nl, GateId gate,
                        const std::vector<GateId>& candidates,
                        bool target_value) const = 0;
};

/// Default: prefer the shallowest candidate (cheapest to justify); ties by
/// lowest id for determinism. `gate` and `target_value` unused.
class DepthDirective final : public BacktraceDirective {
 public:
  GateId choose(const Netlist& nl, GateId /*gate*/,
                const std::vector<GateId>& candidates,
                bool /*target_value*/) const override {
    GateId best = candidates.front();
    for (GateId c : candidates) {
      if (nl.level(c) < nl.level(best) ||
          (nl.level(c) == nl.level(best) && c < best)) {
        best = c;
      }
    }
    return best;
  }
};

/// Leakage-observability directive (the paper's rule): when the value to
/// be set is 1 choose the candidate with minimum observability, when 0 the
/// maximum -- i.e. steer lines toward their low-leakage polarity.
class ObservabilityDirective final : public BacktraceDirective {
 public:
  explicit ObservabilityDirective(const std::vector<double>& obs)
      : obs_(&obs) {}

  GateId choose(const Netlist& /*nl*/, GateId /*gate*/,
                const std::vector<GateId>& candidates,
                bool target_value) const override {
    GateId best = candidates.front();
    for (GateId c : candidates) {
      const double oc = (*obs_)[c];
      const double ob = (*obs_)[best];
      const bool better = target_value ? (oc < ob) : (oc > ob);
      if (better || (oc == ob && c < best)) best = c;
    }
    return best;
  }

 private:
  const std::vector<double>* obs_;
};

}  // namespace scanpower
