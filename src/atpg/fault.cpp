#include "atpg/fault.hpp"

#include <cctype>
#include <cstdlib>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

std::string Fault::to_string(const Netlist& nl) const {
  if (pin < 0) {
    return strprintf("%s/sa%d", nl.gate_name(gate).c_str(), stuck_at ? 1 : 0);
  }
  return strprintf("%s.in%d/sa%d", nl.gate_name(gate).c_str(), pin,
                   stuck_at ? 1 : 0);
}

namespace {

/// Is this gate a fault site in the full-scan combinational view?
bool is_fault_site(const Netlist& nl, GateId id) {
  const GateType t = nl.type(id);
  if (t == GateType::Const0 || t == GateType::Const1) return false;
  if (t == GateType::Dff) return true;  // Q net = pseudo-input stem
  return true;                          // PIs and combinational gates
}

/// Do input faults on this pin have an input-pin identity distinct from
/// the stem? (Only fanout branches create distinct faults; with BENCH
/// one-net-per-gate semantics, a pin fault is distinct from the driver's
/// stem fault iff the driver reaches anything besides this pin: another
/// fanout branch, or direct observation as a primary output. A PO-marked
/// driver makes its stem fault detectable at the PO itself, which the
/// branch fault is not -- they are *not* equivalent.)
bool pin_fault_distinct(const Netlist& nl, GateId gate, int pin) {
  const GateId driver = nl.fanins(gate)[static_cast<std::size_t>(pin)];
  return nl.fanouts(driver).size() > 1 || nl.is_output(driver);
}

}  // namespace

std::vector<Fault> enumerate_faults(const Netlist& nl) {
  std::vector<Fault> faults;
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (!is_fault_site(nl, id)) continue;
    faults.push_back({id, -1, false});
    faults.push_back({id, -1, true});
    if (!is_combinational(nl.type(id)) && nl.type(id) != GateType::Dff) continue;
    for (int pin = 0; pin < static_cast<int>(nl.fanins(id).size()); ++pin) {
      faults.push_back({id, pin, false});
      faults.push_back({id, pin, true});
    }
  }
  return faults;
}

Fault collapse_representative(const Netlist& nl, const Fault& f) {
  if (f.pin < 0) return f;  // stems are always kept
  const GateType t = nl.type(f.gate);
  const auto pin = static_cast<std::size_t>(f.pin);
  if (t == GateType::Dff) {
    if (pin_fault_distinct(nl, f.gate, f.pin)) return f;
    return {nl.fanins(f.gate)[pin], -1, f.stuck_at};
  }
  if (t == GateType::Buf) return {f.gate, -1, f.stuck_at};
  if (t == GateType::Not) return {f.gate, -1, !f.stuck_at};
  const auto cv = controlling_value(t);
  if (cv && f.stuck_at == *cv) return {f.gate, -1, *controlled_output(t)};
  if (!pin_fault_distinct(nl, f.gate, f.pin)) {
    return {nl.fanins(f.gate)[pin], -1, f.stuck_at};
  }
  return f;
}

Fault parse_fault(const Netlist& nl, const std::string& spec) {
  const std::size_t slash = spec.rfind('/');
  SP_CHECK(slash != std::string::npos && slash + 4 == spec.size() &&
               spec.compare(slash + 1, 2, "sa") == 0 &&
               (spec[slash + 3] == '0' || spec[slash + 3] == '1'),
           "parse_fault: expected \"net/sa0\" or \"gate.inN/sa1\", got \"" +
               spec + "\"");
  Fault f;
  f.stuck_at = spec[slash + 3] == '1';
  std::string site = spec.substr(0, slash);
  const std::size_t dot = site.rfind(".in");
  if (dot != std::string::npos && dot + 3 < site.size()) {
    // Only treat the suffix as a pin selector when it is all digits --
    // net names themselves may contain dots.
    bool digits = true;
    for (std::size_t i = dot + 3; i < site.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(site[i]))) digits = false;
    }
    if (digits && nl.find(site) == kInvalidGate) {
      f.pin = std::atoi(site.c_str() + dot + 3);
      site = site.substr(0, dot);
    }
  }
  f.gate = nl.find(site);
  SP_CHECK(f.gate != kInvalidGate, "parse_fault: unknown net \"" + site + "\"");
  if (f.pin >= 0) {
    SP_CHECK(static_cast<std::size_t>(f.pin) < nl.fanins(f.gate).size(),
             "parse_fault: pin out of range in \"" + spec + "\"");
  }
  return f;
}

std::vector<Fault> collapse_faults(const Netlist& nl) {
  // Keep: both polarities on every stem; input-pin faults only where they
  // are neither equivalent to the gate's output fault nor a non-branching
  // copy of the driver's stem fault.
  std::vector<Fault> faults;
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (!is_fault_site(nl, id)) continue;
    faults.push_back({id, -1, false});
    faults.push_back({id, -1, true});
    const GateType t = nl.type(id);
    if (t == GateType::Dff) {
      // The D pin is an observable branch; distinct fault only when the
      // driver fans out elsewhere too.
      if (pin_fault_distinct(nl, id, 0)) {
        faults.push_back({id, 0, false});
        faults.push_back({id, 0, true});
      }
      continue;
    }
    if (!is_combinational(t)) continue;

    const auto cv = controlling_value(t);
    for (int pin = 0; pin < static_cast<int>(nl.fanins(id).size()); ++pin) {
      for (bool sa : {false, true}) {
        // BUF/NOT: input faults are equivalent to output faults.
        if (t == GateType::Buf || t == GateType::Not) continue;
        // Controlling-value input faults are equivalent to an output fault.
        if (cv && sa == *cv) continue;
        // Non-branching pins mirror the driver stem fault exactly.
        if (!pin_fault_distinct(nl, id, pin)) continue;
        faults.push_back({id, pin, sa});
      }
    }
  }
  return faults;
}

}  // namespace scanpower
