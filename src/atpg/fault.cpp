#include "atpg/fault.hpp"

#include "util/strings.hpp"

namespace scanpower {

std::string Fault::to_string(const Netlist& nl) const {
  if (pin < 0) {
    return strprintf("%s/sa%d", nl.gate_name(gate).c_str(), stuck_at ? 1 : 0);
  }
  return strprintf("%s.in%d/sa%d", nl.gate_name(gate).c_str(), pin,
                   stuck_at ? 1 : 0);
}

namespace {

/// Is this gate a fault site in the full-scan combinational view?
bool is_fault_site(const Netlist& nl, GateId id) {
  const GateType t = nl.type(id);
  if (t == GateType::Const0 || t == GateType::Const1) return false;
  if (t == GateType::Dff) return true;  // Q net = pseudo-input stem
  return true;                          // PIs and combinational gates
}

/// Do input faults on this pin have an input-pin identity distinct from
/// the stem? (Only fanout branches create distinct faults; with BENCH
/// one-net-per-gate semantics, a pin fault is distinct from the driver's
/// stem fault iff the driver has fanout > 1.)
bool pin_fault_distinct(const Netlist& nl, GateId gate, int pin) {
  const GateId driver = nl.fanins(gate)[static_cast<std::size_t>(pin)];
  return nl.fanouts(driver).size() > 1;
}

}  // namespace

std::vector<Fault> enumerate_faults(const Netlist& nl) {
  std::vector<Fault> faults;
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (!is_fault_site(nl, id)) continue;
    faults.push_back({id, -1, false});
    faults.push_back({id, -1, true});
    if (!is_combinational(nl.type(id)) && nl.type(id) != GateType::Dff) continue;
    for (int pin = 0; pin < static_cast<int>(nl.fanins(id).size()); ++pin) {
      faults.push_back({id, pin, false});
      faults.push_back({id, pin, true});
    }
  }
  return faults;
}

std::vector<Fault> collapse_faults(const Netlist& nl) {
  // Keep: both polarities on every stem; input-pin faults only where they
  // are neither equivalent to the gate's output fault nor a non-branching
  // copy of the driver's stem fault.
  std::vector<Fault> faults;
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (!is_fault_site(nl, id)) continue;
    faults.push_back({id, -1, false});
    faults.push_back({id, -1, true});
    const GateType t = nl.type(id);
    if (t == GateType::Dff) {
      // The D pin is an observable branch; distinct fault only when the
      // driver fans out elsewhere too.
      if (pin_fault_distinct(nl, id, 0)) {
        faults.push_back({id, 0, false});
        faults.push_back({id, 0, true});
      }
      continue;
    }
    if (!is_combinational(t)) continue;

    const auto cv = controlling_value(t);
    for (int pin = 0; pin < static_cast<int>(nl.fanins(id).size()); ++pin) {
      for (bool sa : {false, true}) {
        // BUF/NOT: input faults are equivalent to output faults.
        if (t == GateType::Buf || t == GateType::Not) continue;
        // Controlling-value input faults are equivalent to an output fault.
        if (cv && sa == *cv) continue;
        // Non-branching pins mirror the driver stem fault exactly.
        if (!pin_fault_distinct(nl, id, pin)) continue;
        faults.push_back({id, pin, sa});
      }
    }
  }
  return faults;
}

}  // namespace scanpower
