#pragma once
// Single stuck-at fault model over the full-scan combinational core.
//
// Fault sites: every gate output net and every gate input pin of
// combinational gates, plus primary-input nets and DFF-output
// (pseudo-input) nets. In full scan the DFF boundary is directly
// controllable/observable, so test generation is purely combinational:
// controllable points are PIs + DFF outputs, observable points are POs +
// DFF D pins.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace scanpower {

struct Fault {
  GateId gate = kInvalidGate;  ///< site gate
  int pin = -1;                ///< -1: output (stem) fault; >=0: input pin
  bool stuck_at = false;       ///< stuck-at value

  bool operator==(const Fault&) const = default;
  std::string to_string(const Netlist& nl) const;
};

/// All stuck-at faults (both polarities at every site), uncollapsed.
std::vector<Fault> enumerate_faults(const Netlist& nl);

/// Equivalence-collapsed fault list. Rules (classic):
///  - BUF/NOT: input faults fold onto output faults.
///  - AND/NAND: input sa-0 ≡ output sa-(0^inv); OR/NOR: input sa-1 ≡
///    output sa-(1^inv).
///  - Fanout-free stems: the output fault of a gate driving exactly one
///    pin collapses onto that pin's fault when they are equivalent.
/// The representative kept is the output-side fault.
std::vector<Fault> collapse_faults(const Netlist& nl);

/// The collapsed-class representative of any enumerated fault: the member
/// of collapse_faults(nl) that is equivalent to `f` under the rules above
/// (identity for faults the collapsed list keeps). Diagnosis treats a
/// candidate and its representative as the same defect.
Fault collapse_representative(const Netlist& nl, const Fault& f);

/// Parses the Fault::to_string form: "net/sa0" for a stem fault,
/// "gate.in2/sa1" for an input-pin fault. Throws Error on unknown nets,
/// out-of-range pins or malformed specs.
Fault parse_fault(const Netlist& nl, const std::string& spec);

}  // namespace scanpower
