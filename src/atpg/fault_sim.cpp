#include "atpg/fault_sim.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "atpg/packed_sim.hpp"
#include "util/assert.hpp"

namespace scanpower {

FaultSimulator::FaultSimulator(const Netlist& nl) : nl_(&nl) {
  SP_CHECK(nl.finalized(), "FaultSimulator requires a finalized netlist");
  observable_.assign(nl.num_gates(), 0);
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (nl.is_output(id)) observable_[id] = 1;
  }
  for (GateId dff : nl.dffs()) observable_[nl.fanins(dff)[0]] = 1;
  cone_cache_.resize(nl.num_gates());
  cone_cached_.assign(nl.num_gates(), 0);
}

const std::vector<GateId>& FaultSimulator::cone(GateId site) {
  if (cone_cached_[site]) return cone_cache_[site];
  // DFS over combinational fanout; site included. Sorted by level so a
  // single sweep evaluates fanins before fanouts.
  std::vector<GateId> out;
  std::vector<std::uint8_t> seen(nl_->num_gates(), 0);
  std::vector<GateId> stack{site};
  seen[site] = 1;
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    for (GateId fo : nl_->fanouts(id)) {
      if (!is_combinational(nl_->type(fo))) continue;
      if (!seen[fo]) {
        seen[fo] = 1;
        stack.push_back(fo);
      }
    }
  }
  std::sort(out.begin(), out.end(), [this](GateId a, GateId b) {
    const auto la = nl_->level(a);
    const auto lb = nl_->level(b);
    return la != lb ? la < lb : a < b;
  });
  cone_cache_[site] = std::move(out);
  cone_cached_[site] = 1;
  return cone_cache_[site];
}

FaultSimResult FaultSimulator::run(std::span<const TestPattern> patterns,
                                   std::span<const Fault> faults,
                                   const std::vector<bool>* initial_detected) {
  const Netlist& nl = *nl_;
  FaultSimResult res;
  res.detected.assign(faults.size(), false);
  res.detecting_pattern.assign(faults.size(), FaultSimResult::kNotDetected);
  res.new_detects_per_pattern.assign(patterns.size(), 0);
  if (initial_detected) {
    SP_CHECK(initial_detected->size() == faults.size(),
             "fault_sim: initial_detected size mismatch");
  }

  PackedSimulator good(nl);
  std::vector<PatternWord> faulty(nl.num_gates());
  std::vector<std::uint8_t> touched(nl.num_gates(), 0);
  std::vector<PatternWord> ins;

  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t batch = std::min<std::size_t>(64, patterns.size() - base);
    // Load the batch into bit lanes.
    for (std::size_t k = 0; k < nl.inputs().size(); ++k) {
      PatternWord w = 0;
      for (std::size_t j = 0; j < batch; ++j) {
        const Logic v = patterns[base + j].pi[k];
        SP_CHECK(v != Logic::X, "fault_sim: patterns must be fully specified");
        if (v == Logic::One) w |= PatternWord{1} << j;
      }
      good.set_source(nl.inputs()[k], w);
    }
    for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
      PatternWord w = 0;
      for (std::size_t j = 0; j < batch; ++j) {
        const Logic v = patterns[base + j].ppi[k];
        SP_CHECK(v != Logic::X, "fault_sim: patterns must be fully specified");
        if (v == Logic::One) w |= PatternWord{1} << j;
      }
      good.set_source(nl.dffs()[k], w);
    }
    good.eval();
    const PatternWord lane_mask =
        batch == 64 ? ~PatternWord{0} : ((PatternWord{1} << batch) - 1);

    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (res.detected[fi]) continue;
      if (initial_detected && (*initial_detected)[fi]) continue;
      const Fault& f = faults[fi];
      PatternWord detect = 0;

      if (f.pin >= 0 && nl.type(f.gate) == GateType::Dff) {
        // Fault on the D branch of a scan cell: directly observed.
        const PatternWord good_d = good.value(nl.fanins(f.gate)[0]);
        const PatternWord forced = f.stuck_at ? ~PatternWord{0} : 0;
        detect = (good_d ^ forced) & lane_mask;
      } else {
        const GateId site = f.gate;
        const auto& cone_gates = cone(site);
        // Seed the faulty machine at the site.
        PatternWord site_val;
        if (f.pin < 0) {
          site_val = f.stuck_at ? ~PatternWord{0} : 0;
        } else {
          ins.clear();
          const auto& fan = nl.fanins(site);
          for (std::size_t p = 0; p < fan.size(); ++p) {
            PatternWord w = good.value(fan[p]);
            if (static_cast<int>(p) == f.pin) {
              w = f.stuck_at ? ~PatternWord{0} : 0;
            }
            ins.push_back(w);
          }
          site_val = eval_type_packed(nl.type(site), ins);
        }
        if (((site_val ^ good.value(site)) & lane_mask) == 0) {
          continue;  // fault not excited by any lane
        }
        faulty[site] = site_val;
        touched[site] = 1;
        if (observable_[site]) {
          detect |= (site_val ^ good.value(site)) & lane_mask;
        }
        // Sweep the cone in level order.
        for (GateId id : cone_gates) {
          if (id == site) continue;
          ins.clear();
          for (GateId fin : nl.fanins(id)) {
            ins.push_back(touched[fin] ? faulty[fin] : good.value(fin));
          }
          const PatternWord v = eval_type_packed(nl.type(id), ins);
          faulty[id] = v;
          touched[id] = 1;
          if (observable_[id]) {
            detect |= (v ^ good.value(id)) & lane_mask;
          }
        }
        for (GateId id : cone_gates) touched[id] = 0;
      }

      if (detect != 0) {
        res.detected[fi] = true;
        const int lane = std::countr_zero(detect);
        const std::size_t pat = base + static_cast<std::size_t>(lane);
        res.detecting_pattern[fi] = pat;
        res.new_detects_per_pattern[pat]++;
        res.num_detected++;
      }
    }
  }
  return res;
}

double fault_coverage(const Netlist& nl,
                      std::span<const TestPattern> patterns) {
  const std::vector<Fault> faults = collapse_faults(nl);
  FaultSimulator fsim(nl);
  const FaultSimResult res = fsim.run(patterns, faults);
  return faults.empty() ? 0.0
                        : static_cast<double>(res.num_detected) /
                              static_cast<double>(faults.size());
}

}  // namespace scanpower
