#include "atpg/fault_sim.hpp"

#include <algorithm>
#include <bit>

#include "atpg/packed_sim.hpp"
#include "util/assert.hpp"

namespace scanpower {

FaultSimulator::FaultSimulator(const Netlist& nl, FaultSimOptions opts)
    : nl_(&nl), opts_(opts) {
  SP_CHECK(nl.finalized(), "FaultSimulator requires a finalized netlist");
  SP_CHECK(is_valid_block_words(opts_.block_words),
           "fault_sim: block_words must be 1, 2, 4 or 8");
  opts_.num_threads = ThreadPool::resolve_threads(opts_.num_threads);
  observable_.assign(nl.num_gates(), 0);
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (nl.is_output(id)) observable_[id] = 1;
  }
  for (GateId dff : nl.dffs()) observable_[nl.fanins(dff)[0]] = 1;

  pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
  workers_.resize(static_cast<std::size_t>(pool_->size()));
  const std::size_t n = nl.num_gates();
  const std::size_t words = static_cast<std::size_t>(opts_.block_words);
  for (Worker& w : workers_) {
    w.faulty.assign(n * words, 0);
    w.touched.assign(n, 0);
    w.cones.init(n);
  }
}

FaultSimulator::~FaultSimulator() = default;

void FaultSimulator::ConeCacheShard::init(std::size_t num_gates) {
  cache.resize(num_gates);
  cached.assign(num_gates, 0);
  seen.assign(num_gates, 0);
}

const std::vector<GateId>& FaultSimulator::ConeCacheShard::cone(
    const Netlist& nl, GateId site) {
  if (cached[site]) return cache[site];
  // DFS over combinational fanout; site included. Sorted by level so a
  // single sweep evaluates fanins before fanouts. `seen` is reusable
  // scratch: every entry set below is a member of `out` and is cleared
  // before returning.
  const std::span<const GateType> types = nl.types_flat();
  const std::span<const std::uint32_t> levels = nl.levels_flat();
  std::vector<GateId> out;
  std::vector<GateId> stack{site};
  seen[site] = 1;
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    for (GateId fo : nl.fanout_span(id)) {
      if (!is_combinational(types[fo])) continue;
      if (!seen[fo]) {
        seen[fo] = 1;
        stack.push_back(fo);
      }
    }
  }
  for (GateId id : out) seen[id] = 0;
  std::sort(out.begin(), out.end(), [&](GateId a, GateId b) {
    return levels[a] != levels[b] ? levels[a] < levels[b] : a < b;
  });
  cache[site] = std::move(out);
  cached[site] = 1;
  return cache[site];
}

template <int W>
void FaultSimulator::sweep_faults(const BlockSimulator& good, std::size_t base,
                                  std::size_t batch,
                                  std::span<const Fault> faults,
                                  std::span<const std::size_t> live,
                                  FaultSimResult& res,
                                  std::vector<std::uint8_t>& detected_u8) {
  const Netlist& nl = *nl_;
  const std::span<const GateType> types = nl.types_flat();

  // Lane-validity mask for this block (the last block of a pattern set may
  // only partially fill its words).
  PackedBlock<W> mask;
  for (int w = 0; w < W; ++w) {
    const std::size_t lane0 = static_cast<std::size_t>(w) * 64;
    if (batch >= lane0 + 64) {
      mask.w[w] = ~PatternWord{0};
    } else if (batch > lane0) {
      mask.w[w] = (PatternWord{1} << (batch - lane0)) - 1;
    } else {
      mask.w[w] = 0;
    }
  }

  const int num_workers = pool_->size();
  pool_->run_on_all([&](int t) {
    Worker& wk = workers_[static_cast<std::size_t>(t)];
    PatternWord* const faulty = wk.faulty.data();
    std::uint8_t* const touched = wk.touched.data();
    // Round-robin fault partition: fault live[i] belongs to worker
    // i % num_workers, which is stable across batches and thread
    // schedules -- every per-fault result slot has exactly one writer.
    for (std::size_t li = static_cast<std::size_t>(t); li < live.size();
         li += static_cast<std::size_t>(num_workers)) {
      const std::size_t fi = live[li];
      if (detected_u8[fi]) continue;
      const Fault& f = faults[fi];
      PackedBlock<W> detect{};

      if (f.pin >= 0 && types[f.gate] == GateType::Dff) {
        // Fault on the D branch of a scan cell: directly observed.
        const PatternWord* good_d = good.block(nl.fanin_span(f.gate)[0]);
        const PatternWord forced = f.stuck_at ? ~PatternWord{0} : 0;
        for (int w = 0; w < W; ++w) {
          detect.w[w] = (good_d[w] ^ forced) & mask.w[w];
        }
      } else {
        const GateId site = f.gate;
        // Seed the faulty machine at the site.
        PatternWord site_val[W];
        if (f.pin < 0) {
          const PatternWord forced = f.stuck_at ? ~PatternWord{0} : 0;
          for (int w = 0; w < W; ++w) site_val[w] = forced;
        } else {
          // Input-pin fault: re-evaluate the site gate with that one pin
          // forced. Positional (a driver may feed several pins), so the
          // word-wise generic evaluator is used; this runs once per fault,
          // not per cone gate.
          const std::span<const GateId> fan = nl.fanin_span(site);
          wk.ins.resize(fan.size());
          const PatternWord forced = f.stuck_at ? ~PatternWord{0} : 0;
          for (int w = 0; w < W; ++w) {
            for (std::size_t p = 0; p < fan.size(); ++p) {
              wk.ins[p] = static_cast<int>(p) == f.pin
                              ? forced
                              : good.block(fan[p])[w];
            }
            site_val[w] = eval_type_packed(types[site], wk.ins);
          }
        }
        const PatternWord* good_site = good.block(site);
        PatternWord excited = 0;
        for (int w = 0; w < W; ++w) {
          excited |= (site_val[w] ^ good_site[w]) & mask.w[w];
        }
        if (excited == 0) continue;  // fault not excited by any lane

        PatternWord* const site_block = faulty + static_cast<std::size_t>(site) * W;
        for (int w = 0; w < W; ++w) site_block[w] = site_val[w];
        touched[site] = 1;
        if (observable_[site]) {
          for (int w = 0; w < W; ++w) {
            detect.w[w] |= (site_val[w] ^ good_site[w]) & mask.w[w];
          }
        }
        // Sweep the cone in level order, sparsely: `touched` marks gates
        // whose faulty value actually differs from the good machine, so a
        // gate with no touched fanin is identical to the good machine and
        // is skipped without evaluation. Most fault effects die within a
        // few levels, which turns the O(cone) sweep into an O(active
        // frontier) sweep with cheap byte-load skip checks.
        const std::vector<GateId>& cone_gates = wk.cones.cone(nl, site);
        wk.active.clear();
        wk.active.push_back(site);
        const auto fanin_block = [&](GateId fin) {
          return touched[fin] ? faulty + static_cast<std::size_t>(fin) * W
                              : good.block(fin);
        };
        for (GateId id : cone_gates) {
          if (id == site) continue;
          const std::span<const GateId> fans = nl.fanin_span(id);
          std::uint8_t any_touched = 0;
          for (GateId fin : fans) any_touched |= touched[fin];
          if (!any_touched) continue;
          PatternWord* const out = faulty + static_cast<std::size_t>(id) * W;
          eval_gate_block<W>(types[id], fans, fanin_block, out);
          const PatternWord* g = good.block(id);
          PatternWord diff = 0;
          for (int w = 0; w < W; ++w) diff |= out[w] ^ g[w];
          if (diff == 0) continue;  // effect cancelled here
          touched[id] = 1;
          wk.active.push_back(id);
          if (observable_[id]) {
            for (int w = 0; w < W; ++w) {
              detect.w[w] |= (out[w] ^ g[w]) & mask.w[w];
            }
          }
        }
        for (GateId id : wk.active) touched[id] = 0;
      }

      if (detect.any()) {
        detected_u8[fi] = 1;
        std::size_t lane = 0;
        for (int w = 0; w < W; ++w) {
          if (detect.w[w] != 0) {
            lane = static_cast<std::size_t>(w) * 64 +
                   static_cast<std::size_t>(std::countr_zero(detect.w[w]));
            break;
          }
        }
        const std::size_t pat = base + lane;
        res.detecting_pattern[fi] = pat;
        wk.new_detects[pat]++;
        wk.num_detected++;
      }
    }
  });
}

FaultSimResult FaultSimulator::run(std::span<const TestPattern> patterns,
                                   std::span<const Fault> faults,
                                   const std::vector<bool>* initial_detected) {
  const Netlist& nl = *nl_;
  FaultSimResult res;
  res.detected.assign(faults.size(), false);
  res.detecting_pattern.assign(faults.size(), FaultSimResult::kNotDetected);
  res.new_detects_per_pattern.assign(patterns.size(), 0);
  if (initial_detected) {
    SP_CHECK(initial_detected->size() == faults.size(),
             "fault_sim: initial_detected size mismatch");
  }

  // Live fault universe: everything not already detected by earlier calls.
  std::vector<std::size_t> live;
  live.reserve(faults.size());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (initial_detected && (*initial_detected)[fi]) continue;
    live.push_back(fi);
  }

  const int W = opts_.block_words;
  const std::size_t lanes = static_cast<std::size_t>(W) * 64;
  BlockSimulator good(nl, W);
  std::vector<std::uint8_t> detected_u8(faults.size(), 0);
  for (Worker& w : workers_) {
    w.new_detects.assign(patterns.size(), 0);
    w.num_detected = 0;
  }
  std::size_t num_detected = 0;

  for (std::size_t base = 0; base < patterns.size(); base += lanes) {
    // Fault dropping may empty the live list mid-run: then the remaining
    // blocks have nothing to compare against, so skip their good-machine
    // evaluation and stop early.
    if (num_detected == live.size()) break;
    const std::size_t batch = std::min(lanes, patterns.size() - base);

    // Block-wise lane load: word w of source k holds patterns
    // [base + 64w, base + 64w + 64).
    auto load_sources = [&](const std::vector<GateId>& sources, bool use_pi) {
      for (std::size_t k = 0; k < sources.size(); ++k) {
        for (int wi = 0; wi < W; ++wi) {
          const std::size_t lane0 = static_cast<std::size_t>(wi) * 64;
          PatternWord w = 0;
          const std::size_t count =
              batch > lane0 ? std::min<std::size_t>(64, batch - lane0) : 0;
          for (std::size_t j = 0; j < count; ++j) {
            const TestPattern& pat = patterns[base + lane0 + j];
            const Logic v = use_pi ? pat.pi[k] : pat.ppi[k];
            SP_CHECK(v != Logic::X,
                     "fault_sim: patterns must be fully specified");
            if (v == Logic::One) w |= PatternWord{1} << j;
          }
          good.set_source_word(sources[k], wi, w);
        }
      }
    };
    load_sources(nl.inputs(), /*use_pi=*/true);
    load_sources(nl.dffs(), /*use_pi=*/false);
    good.eval();

    switch (W) {
      case 1: sweep_faults<1>(good, base, batch, faults, live, res, detected_u8); break;
      case 2: sweep_faults<2>(good, base, batch, faults, live, res, detected_u8); break;
      case 4: sweep_faults<4>(good, base, batch, faults, live, res, detected_u8); break;
      case 8: sweep_faults<8>(good, base, batch, faults, live, res, detected_u8); break;
      default: SP_ASSERT(false, "invalid block width");
    }
    num_detected = 0;
    for (const Worker& w : workers_) num_detected += w.num_detected;
  }

  // Deterministic merge: per-fault slots were single-writer; per-pattern
  // counters are summed over workers (order-independent).
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (detected_u8[fi]) res.detected[fi] = true;
  }
  res.num_detected = num_detected;
  for (const Worker& w : workers_) {
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      res.new_detects_per_pattern[p] += w.new_detects[p];
    }
  }
  return res;
}

double fault_coverage(const Netlist& nl, std::span<const TestPattern> patterns,
                      FaultSimOptions opts) {
  const std::vector<Fault> faults = collapse_faults(nl);
  FaultSimulator fsim(nl, opts);
  const FaultSimResult res = fsim.run(patterns, faults);
  return faults.empty() ? 0.0
                        : static_cast<double>(res.num_detected) /
                              static_cast<double>(faults.size());
}

}  // namespace scanpower
