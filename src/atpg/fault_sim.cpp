#include "atpg/fault_sim.hpp"

#include <algorithm>
#include <bit>

#include "atpg/packed_sim.hpp"
#include "util/assert.hpp"

namespace scanpower {

namespace {

/// Work-counter slot attributing swept blocks to the resolved backend.
CounterId backend_blocks_counter(SimBackend b) {
  switch (b) {
    case SimBackend::Avx2: return CounterId::kBackendBlocksAvx2;
    case SimBackend::Avx512: return CounterId::kBackendBlocksAvx512;
    case SimBackend::Wide: return CounterId::kBackendBlocksWide;
    default: return CounterId::kBackendBlocksScalar;
  }
}

}  // namespace

std::vector<std::uint8_t> observable_net_mask(const Netlist& nl) {
  std::vector<std::uint8_t> observable(nl.num_gates(), 0);
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (nl.is_output(id)) observable[id] = 1;
  }
  for (GateId dff : nl.dffs()) observable[nl.fanins(dff)[0]] = 1;
  return observable;
}

void FaultConeEvaluator::init(const Netlist& nl, int block_words,
                              SimBackend backend) {
  SP_CHECK(nl.finalized(), "FaultConeEvaluator requires a finalized netlist");
  SP_CHECK(is_valid_block_words(block_words),
           "FaultConeEvaluator: block_words must be 1, 2, 4, 8, 16 or 32");
  nl_ = &nl;
  words_ = block_words;
  backend_ = resolve_backend(backend, block_words);
  kern_ = &sim_kernels(backend_);
  const std::size_t n = nl.num_gates();
  faulty_.assign(n * static_cast<std::size_t>(block_words), 0);
  touched_.assign(n, 0);
  active_.clear();
  cone_cache_.assign(n, {});
  cone_cached_.assign(n, 0);
  seen_.assign(n, 0);
}

const std::vector<GateId>& FaultConeEvaluator::cone(GateId site) {
  if (cone_cached_[site]) return cone_cache_[site];
  // DFS over combinational fanout; site included. Sorted by level so a
  // single sweep evaluates fanins before fanouts. `seen_` is reusable
  // scratch: every entry set below is a member of `out` and is cleared
  // before returning.
  const Netlist& nl = *nl_;
  const std::span<const GateType> types = nl.types_flat();
  const std::span<const std::uint32_t> levels = nl.levels_flat();
  std::vector<GateId> out;
  std::vector<GateId> stack{site};
  seen_[site] = 1;
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    for (GateId fo : nl.fanout_span(id)) {
      if (!is_combinational(types[fo])) continue;
      if (!seen_[fo]) {
        seen_[fo] = 1;
        stack.push_back(fo);
      }
    }
  }
  for (GateId id : out) seen_[id] = 0;
  std::sort(out.begin(), out.end(), [&](GateId a, GateId b) {
    return levels[a] != levels[b] ? levels[a] < levels[b] : a < b;
  });
  cone_cache_[site] = std::move(out);
  cone_cached_[site] = 1;
  return cone_cache_[site];
}

FaultSimulator::FaultSimulator(const Netlist& nl, FaultSimOptions opts)
    : nl_(&nl), opts_(opts) {
  SP_CHECK(nl.finalized(), "FaultSimulator requires a finalized netlist");
  SP_CHECK(is_valid_block_words(opts_.block_words),
           "fault_sim: block_words must be 1, 2, 4, 8, 16 or 32");
  opts_.num_threads = ThreadPool::resolve_threads(opts_.num_threads);
  observable_ = observable_net_mask(nl);

  pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
  workers_.resize(static_cast<std::size_t>(pool_->size()));
  for (Worker& w : workers_) {
    w.eval.init(nl, opts_.block_words, opts_.backend);
  }
}

FaultSimulator::~FaultSimulator() = default;

template <int W>
void FaultSimulator::sweep_faults(const BlockSimulator& good, std::size_t base,
                                  std::size_t batch,
                                  std::span<const Fault> faults,
                                  std::span<const std::size_t> live,
                                  FaultSimResult& res,
                                  std::vector<std::uint8_t>& detected_u8) {
  // Lane-validity mask for this block (the last block of a pattern set may
  // only partially fill its words).
  const PackedBlock<W> mask = lane_validity_mask<W>(batch);

  const int num_workers = pool_->size();
  pool_->run_on_all([&](int t) {
    Worker& wk = workers_[static_cast<std::size_t>(t)];
    // Round-robin fault partition: fault live[i] belongs to worker
    // i % num_workers, which is stable across batches and thread
    // schedules -- every per-fault result slot has exactly one writer.
    for (std::size_t li = static_cast<std::size_t>(t); li < live.size();
         li += static_cast<std::size_t>(num_workers)) {
      const std::size_t fi = live[li];
      if (detected_u8[fi]) continue;
      PackedBlock<W> detect{};
      wk.eval.propagate<W>(good, faults[fi], mask, observable_,
                           [&](GateId, const PatternWord* diff) {
                             for (int w = 0; w < W; ++w) detect.w[w] |= diff[w];
                           });

      if (detect.any()) {
        detected_u8[fi] = 1;
        std::size_t lane = 0;
        for (int w = 0; w < W; ++w) {
          if (detect.w[w] != 0) {
            lane = static_cast<std::size_t>(w) * 64 +
                   static_cast<std::size_t>(std::countr_zero(detect.w[w]));
            break;
          }
        }
        const std::size_t pat = base + lane;
        res.detecting_pattern[fi] = pat;
        wk.new_detects[pat]++;
        wk.num_detected++;
      }
    }
  });
}

FaultSimResult FaultSimulator::run(std::span<const TestPattern> patterns,
                                   std::span<const Fault> faults,
                                   const std::vector<bool>* initial_detected) {
  const Netlist& nl = *nl_;
  FaultSimResult res;
  res.detected.assign(faults.size(), false);
  res.detecting_pattern.assign(faults.size(), FaultSimResult::kNotDetected);
  res.new_detects_per_pattern.assign(patterns.size(), 0);
  if (initial_detected) {
    SP_CHECK(initial_detected->size() == faults.size(),
             "fault_sim: initial_detected size mismatch");
  }

  // Live fault universe: everything not already detected by earlier calls.
  std::vector<std::size_t> live;
  live.reserve(faults.size());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (initial_detected && (*initial_detected)[fi]) continue;
    live.push_back(fi);
  }

  const int W = opts_.block_words;
  const std::size_t lanes = static_cast<std::size_t>(W) * 64;
  BlockSimulator good(nl, W, opts_.backend);
  std::vector<std::uint8_t> detected_u8(faults.size(), 0);
  for (Worker& w : workers_) {
    w.new_detects.assign(patterns.size(), 0);
    w.num_detected = 0;
  }
  std::size_t num_detected = 0;
  std::uint64_t num_blocks = 0;

  for (std::size_t base = 0; base < patterns.size(); base += lanes) {
    // Fault dropping may empty the live list mid-run: then the remaining
    // blocks have nothing to compare against, so skip their good-machine
    // evaluation and stop early.
    if (num_detected == live.size()) break;
    ++num_blocks;
    const std::size_t batch = std::min(lanes, patterns.size() - base);

    load_pattern_block(nl, patterns, base, good);
    good.eval();

    switch (W) {
      case 1: sweep_faults<1>(good, base, batch, faults, live, res, detected_u8); break;
      case 2: sweep_faults<2>(good, base, batch, faults, live, res, detected_u8); break;
      case 4: sweep_faults<4>(good, base, batch, faults, live, res, detected_u8); break;
      case 8: sweep_faults<8>(good, base, batch, faults, live, res, detected_u8); break;
      case 16: sweep_faults<16>(good, base, batch, faults, live, res, detected_u8); break;
      case 32: sweep_faults<32>(good, base, batch, faults, live, res, detected_u8); break;
      default: SP_ASSERT(false, "invalid block width");
    }
    num_detected = 0;
    for (const Worker& w : workers_) num_detected += w.num_detected;
  }

  // Deterministic merge: per-fault slots were single-writer; per-pattern
  // counters are summed over workers (order-independent).
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (detected_u8[fi]) res.detected[fi] = true;
  }
  res.num_detected = num_detected;
  for (const Worker& w : workers_) {
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      res.new_detects_per_pattern[p] += w.new_detects[p];
    }
  }

  if (Telemetry* telem = opts_.telemetry) {
    telem->metrics.add(0, CounterId::kFaultSimRuns, 1);
    telem->metrics.add(0, CounterId::kFaultSimBlocks, num_blocks);
    telem->metrics.add(0, CounterId::kFaultSimDetected, res.num_detected);
    telem->metrics.set_gauge(GaugeId::kSimBackend,
                             static_cast<std::int64_t>(good.backend()));
    telem->metrics.add(0, backend_blocks_counter(good.backend()), num_blocks);
    for (std::size_t t = 0; t < workers_.size(); ++t) {
      flush_sweep_stats(telem, static_cast<int>(t), workers_[t].eval);
    }
  }
  return res;
}

double fault_coverage(const Netlist& nl, std::span<const TestPattern> patterns,
                      FaultSimOptions opts) {
  const std::vector<Fault> faults = collapse_faults(nl);
  FaultSimulator fsim(nl, opts);
  const FaultSimResult res = fsim.run(patterns, faults);
  return faults.empty() ? 0.0
                        : static_cast<double>(res.num_detected) /
                              static_cast<double>(faults.size());
}

}  // namespace scanpower
