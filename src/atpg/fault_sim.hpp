#pragma once
// Parallel-pattern, cone-restricted stuck-at fault simulation (PPSFP).
//
// Patterns are packed 64*W per block (W words of 64 bit lanes, W
// runtime-selectable from {1,2,4,8}); for each live fault only the fanout
// cone of the fault site is re-evaluated against the good machine, and
// detection is checked at the observable points inside the cone (primary
// outputs and DFF D pins -- the full-scan response).
//
// The still-undetected fault list is partitioned round-robin across a
// reusable worker pool. Each worker owns its own faulty-value / touched
// scratch and its own cone-cache shard, so the parallel section is
// write-shared only on per-fault result slots (each fault belongs to
// exactly one worker). Results are bit-identical for every (block width,
// thread count) configuration: a fault's detecting pattern is the lowest
// lane of the first detecting block, and per-pattern new-detect counts
// are merged as sums of per-worker counters.

#include <memory>
#include <span>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/packed_sim.hpp"
#include "atpg/pattern.hpp"
#include "netlist/netlist.hpp"
#include "util/thread_pool.hpp"

namespace scanpower {

struct FaultSimResult {
  static constexpr std::size_t kNotDetected = static_cast<std::size_t>(-1);
  std::vector<bool> detected;                       ///< per fault
  std::vector<std::size_t> detecting_pattern;       ///< first detecting pattern or kNotDetected
  std::vector<std::uint32_t> new_detects_per_pattern;
  std::size_t num_detected = 0;
};

struct FaultSimOptions {
  /// Pattern words per simulation block: 64*block_words patterns per
  /// sweep. Must be 1, 2, 4 or 8.
  int block_words = 4;
  /// Worker count for the per-fault sweep. 1 = serial (no threads
  /// spawned); 0 = hardware concurrency.
  int num_threads = 1;
};

class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& nl, FaultSimOptions opts = {});
  ~FaultSimulator();

  const FaultSimOptions& options() const { return opts_; }

  /// Simulates `patterns` (must be fully specified) against `faults`.
  /// Faults already marked detected in `initial_detected` (optional,
  /// same size as faults) are skipped (fault dropping across calls).
  FaultSimResult run(std::span<const TestPattern> patterns,
                     std::span<const Fault> faults,
                     const std::vector<bool>* initial_detected = nullptr);

 private:
  /// Lazily built, level-sorted combinational fanout cones. Each worker
  /// owns one shard, so lookups never lock; a site shared by faults of
  /// different workers is simply built once per shard.
  struct ConeCacheShard {
    std::vector<std::vector<GateId>> cache;
    std::vector<std::uint8_t> cached;
    std::vector<std::uint8_t> seen;  ///< reusable DFS scratch (all-zero between calls)

    void init(std::size_t num_gates);
    const std::vector<GateId>& cone(const Netlist& nl, GateId site);
  };

  /// Per-worker mutable state for the parallel fault sweep.
  struct Worker {
    std::vector<PatternWord> faulty;   ///< num_gates * W faulty-machine words
    std::vector<std::uint8_t> touched; ///< gate's faulty value differs from good
    std::vector<GateId> active;        ///< touched gates of the current fault
    std::vector<PatternWord> ins;      ///< scratch for pin-forced site eval
    ConeCacheShard cones;
    std::vector<std::uint32_t> new_detects;  ///< per pattern, merged serially
    std::size_t num_detected = 0;
  };

  template <int W>
  void sweep_faults(const BlockSimulator& good, std::size_t base,
                    std::size_t batch, std::span<const Fault> faults,
                    std::span<const std::size_t> live, FaultSimResult& res,
                    std::vector<std::uint8_t>& detected_u8);

  const Netlist* nl_;
  FaultSimOptions opts_;
  std::vector<std::uint8_t> observable_;  ///< PO or drives a DFF D pin
  std::vector<Worker> workers_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Convenience: fault coverage of a pattern set over the collapsed list.
double fault_coverage(const Netlist& nl, std::span<const TestPattern> patterns,
                      FaultSimOptions opts = {});

}  // namespace scanpower
