#pragma once
// Parallel-pattern, cone-restricted stuck-at fault simulation (PPSFP).
//
// Patterns are packed 64*W per block (W words of 64 bit lanes, W
// runtime-selectable from {1,2,4,8}); for each live fault only the fanout
// cone of the fault site is re-evaluated against the good machine, and
// detection is checked at the observable points inside the cone (primary
// outputs and DFF D pins -- the full-scan response).
//
// The per-fault cone propagation lives in FaultConeEvaluator, a reusable
// worker-local engine shared with the diagnosis subsystem (src/diag/):
// fault simulation reduces its sink calls to a detect word, diagnosis
// records which observation points differ.
//
// The still-undetected fault list is partitioned round-robin across a
// reusable worker pool. Each worker owns its own evaluator (faulty-value /
// touched scratch and cone-cache shard), so the parallel section is
// write-shared only on per-fault result slots (each fault belongs to
// exactly one worker). Results are bit-identical for every (block width,
// thread count) configuration: a fault's detecting pattern is the lowest
// lane of the first detecting block, and per-pattern new-detect counts
// are merged as sums of per-worker counters.

#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/packed_sim.hpp"
#include "atpg/pattern.hpp"
#include "atpg/sim_kernels.hpp"
#include "netlist/netlist.hpp"
#include "util/thread_pool.hpp"

namespace scanpower {

/// Byte mask over gates: 1 iff the gate's net is an observable point of
/// the full-scan response (primary output, or driver of a DFF D pin).
std::vector<std::uint8_t> observable_net_mask(const Netlist& nl);

/// Reusable worker-local engine for packed single-fault evaluation: owns
/// the faulty-machine scratch and a lazily built cache of level-sorted
/// combinational fanout cones. One instance per worker thread; instances
/// never share mutable state, so concurrent propagate() calls on distinct
/// evaluators are race-free.
class FaultConeEvaluator {
 public:
  FaultConeEvaluator() = default;

  /// Binds the evaluator to a finalized netlist, block width and kernel
  /// backend. May be called again to rebind; all scratch is reset.
  void init(const Netlist& nl, int block_words,
            SimBackend backend = SimBackend::Auto);

  int block_words() const { return words_; }
  /// The resolved kernel backend (never Auto; valid after init()).
  SimBackend backend() const { return backend_; }

  /// Level-sorted combinational fanout cone of a fault site, site
  /// included (cached per evaluator).
  const std::vector<GateId>& cone(GateId site);

  /// Cheap always-on sweep tallies, accumulated by propagate() as plain
  /// adds (never a registry write on the per-gate path). Consumers flush
  /// them into a MetricsRegistry with take_stats() -- serially, in
  /// ascending worker order -- after a run.
  struct SweepStats {
    std::uint64_t calls = 0;        ///< propagate() invocations
    std::uint64_t unexcited = 0;    ///< died before sweeping a cone
    std::uint64_t cone_gates = 0;   ///< summed cone sizes of swept cones
    std::uint64_t active_gates = 0; ///< gates actually re-evaluated dirty
    std::uint64_t aborts = 0;       ///< sweeps cut short by a bool sink
  };
  /// Returns the tallies since the last call and resets them.
  SweepStats take_stats() {
    SweepStats s = stats_;
    stats_ = SweepStats{};
    return s;
  }

  /// Evaluates fault `f` against the good-machine block: seeds the faulty
  /// machine at the site, sweeps the site's cone sparsely, and calls
  /// sink(gate, diff) for every gate with observable[gate] != 0 whose
  /// faulty value differs from the good machine in a valid lane. `diff`
  /// points at W lane-masked XOR-difference words (faulty ^ good).
  ///
  /// Special case: a fault on the D branch of a scan cell (f.pin >= 0 on
  /// a Dff gate) is observed at that cell's capture point and nowhere
  /// else; the sink then receives the DFF's own gate id (bypassing the
  /// `observable` filter, which covers nets, not capture branches).
  ///
  /// A sink returning bool may abort the sweep: returning false stops the
  /// cone evaluation for this fault (used by the diagnosis scoring
  /// early-exit). Void-returning sinks always sweep the full cone.
  ///
  /// W must equal the init() width.
  template <int W, typename Sink>
  void propagate(const BlockSimulator& good, const Fault& f,
                 const PackedBlock<W>& mask,
                 std::span<const std::uint8_t> observable, Sink&& sink);

 private:
  const Netlist* nl_ = nullptr;
  int words_ = 0;
  SimBackend backend_ = SimBackend::Auto;  ///< resolved by init()
  const SimKernels* kern_ = nullptr;       ///< backend kernel table
  std::vector<PatternWord> faulty_;   ///< num_gates * W faulty-machine words
  std::vector<std::uint8_t> touched_; ///< gate's faulty value differs from good
  std::vector<GateId> active_;        ///< touched gates of the current fault
  std::vector<PatternWord> ins_;      ///< scratch for pin-forced site eval

  // Cone cache: lazily built, level-sorted combinational fanout cones.
  std::vector<std::vector<GateId>> cone_cache_;
  std::vector<std::uint8_t> cone_cached_;
  std::vector<std::uint8_t> seen_;  ///< reusable DFS scratch (all-zero between calls)

  SweepStats stats_;
};

struct FaultSimResult {
  static constexpr std::size_t kNotDetected = static_cast<std::size_t>(-1);
  std::vector<bool> detected;                       ///< per fault
  std::vector<std::size_t> detecting_pattern;       ///< first detecting pattern or kNotDetected
  std::vector<std::uint32_t> new_detects_per_pattern;
  std::size_t num_detected = 0;
};

struct FaultSimOptions {
  /// Pattern words per simulation block: 64*block_words patterns per
  /// sweep. Must be 1, 2, 4, 8, 16 or 32 (16/32 require the wide
  /// backend).
  int block_words = 4;
  /// Worker count for the per-fault sweep. 1 = serial (no threads
  /// spawned); 0 = hardware concurrency.
  int num_threads = 1;
  /// Kernel backend; Auto = best available for the width. Results are
  /// bit-identical across backends.
  SimBackend backend = SimBackend::Auto;
  /// Optional metrics/trace scope (not owned; nullptr = no telemetry).
  Telemetry* telemetry = nullptr;
};

class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& nl, FaultSimOptions opts = {});
  ~FaultSimulator();

  const FaultSimOptions& options() const { return opts_; }

  /// Simulates `patterns` (must be fully specified) against `faults`.
  /// Faults already marked detected in `initial_detected` (optional,
  /// same size as faults) are skipped (fault dropping across calls).
  FaultSimResult run(std::span<const TestPattern> patterns,
                     std::span<const Fault> faults,
                     const std::vector<bool>* initial_detected = nullptr);

 private:
  /// Per-worker mutable state for the parallel fault sweep.
  struct Worker {
    FaultConeEvaluator eval;
    std::vector<std::uint32_t> new_detects;  ///< per pattern, merged serially
    std::size_t num_detected = 0;
  };

  template <int W>
  void sweep_faults(const BlockSimulator& good, std::size_t base,
                    std::size_t batch, std::span<const Fault> faults,
                    std::span<const std::size_t> live, FaultSimResult& res,
                    std::vector<std::uint8_t>& detected_u8);

  const Netlist* nl_;
  FaultSimOptions opts_;
  std::vector<std::uint8_t> observable_;  ///< PO or drives a DFF D pin
  std::vector<Worker> workers_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Convenience: fault coverage of a pattern set over the collapsed list.
double fault_coverage(const Netlist& nl, std::span<const TestPattern> patterns,
                      FaultSimOptions opts = {});

/// Adds already-drained sweep tallies into a telemetry scope.
inline void add_sweep_stats(Telemetry* t, int shard,
                            const FaultConeEvaluator::SweepStats& s) {
  if constexpr (!kTelemetryEnabled) return;
  if (t == nullptr) return;
  t->metrics.add(shard, CounterId::kSweepCalls, s.calls);
  t->metrics.add(shard, CounterId::kSweepUnexcited, s.unexcited);
  t->metrics.add(shard, CounterId::kSweepConeGates, s.cone_gates);
  t->metrics.add(shard, CounterId::kSweepActiveGates, s.active_gates);
  t->metrics.add(shard, CounterId::kSweepAborts, s.aborts);
}

/// Flushes one evaluator's sweep tallies into a telemetry scope (and resets
/// them). Callers flush their workers serially in ascending worker order.
inline void flush_sweep_stats(Telemetry* t, int shard,
                              FaultConeEvaluator& eval) {
  if constexpr (!kTelemetryEnabled) return;
  if (t == nullptr) return;
  add_sweep_stats(t, shard, eval.take_stats());
}

// ---- FaultConeEvaluator::propagate (template body) -------------------------

template <int W, typename Sink>
void FaultConeEvaluator::propagate(const BlockSimulator& good, const Fault& f,
                                   const PackedBlock<W>& mask,
                                   std::span<const std::uint8_t> observable,
                                   Sink&& sink) {
  SP_ASSERT(nl_ != nullptr && W == words_,
            "FaultConeEvaluator: propagate width mismatch");
  const Netlist& nl = *nl_;
  const std::span<const GateType> types = nl.types_flat();
  PatternWord* const faulty = faulty_.data();
  std::uint8_t* const touched = touched_.data();

  // Sinks may return bool (false = stop sweeping this fault's cone).
  auto call_sink = [&sink](GateId g, const PatternWord* d) -> bool {
    if constexpr (std::is_invocable_r_v<bool, Sink&, GateId,
                                        const PatternWord*> &&
                  !std::is_void_v<
                      std::invoke_result_t<Sink&, GateId,
                                           const PatternWord*>>) {
      return static_cast<bool>(sink(g, d));
    } else {
      sink(g, d);
      return true;
    }
  };

  ++stats_.calls;
  if (f.pin >= 0 && types[f.gate] == GateType::Dff) {
    // Fault on the D branch of a scan cell: directly observed at that
    // cell's capture point only.
    const PatternWord* good_d = good.block(nl.fanin_span(f.gate)[0]);
    const PatternWord forced = f.stuck_at ? ~PatternWord{0} : 0;
    PatternWord diff[W];
    PatternWord any = 0;
    for (int w = 0; w < W; ++w) {
      diff[w] = (good_d[w] ^ forced) & mask.w[w];
      any |= diff[w];
    }
    if (any != 0) {
      (void)call_sink(f.gate, static_cast<const PatternWord*>(diff));
    } else {
      ++stats_.unexcited;
    }
    return;
  }

  const GateId site = f.gate;
  // Seed the faulty machine at the site.
  PatternWord site_val[W];
  if (f.pin < 0) {
    const PatternWord forced = f.stuck_at ? ~PatternWord{0} : 0;
    for (int w = 0; w < W; ++w) site_val[w] = forced;
  } else {
    // Input-pin fault: re-evaluate the site gate with that one pin
    // forced. Positional (a driver may feed several pins), so the
    // word-wise generic evaluator is used; this runs once per fault,
    // not per cone gate.
    const std::span<const GateId> fan = nl.fanin_span(site);
    ins_.resize(fan.size());
    const PatternWord forced = f.stuck_at ? ~PatternWord{0} : 0;
    for (int w = 0; w < W; ++w) {
      for (std::size_t p = 0; p < fan.size(); ++p) {
        ins_[p] = static_cast<int>(p) == f.pin ? forced : good.block(fan[p])[w];
      }
      site_val[w] = eval_type_packed(types[site], ins_);
    }
  }
  const PatternWord* good_site = good.block(site);
  PatternWord excited = 0;
  for (int w = 0; w < W; ++w) {
    excited |= (site_val[w] ^ good_site[w]) & mask.w[w];
  }
  if (excited == 0) {  // fault not excited by any valid lane
    ++stats_.unexcited;
    return;
  }

  PatternWord* const site_block = faulty + static_cast<std::size_t>(site) * W;
  for (int w = 0; w < W; ++w) site_block[w] = site_val[w];
  touched[site] = 1;
  PatternWord diff[W];
  if (observable[site]) {
    PatternWord any = 0;
    for (int w = 0; w < W; ++w) {
      diff[w] = (site_val[w] ^ good_site[w]) & mask.w[w];
      any |= diff[w];
    }
    if (any != 0 && !call_sink(site, static_cast<const PatternWord*>(diff))) {
      touched[site] = 0;
      ++stats_.aborts;
      ++stats_.active_gates;
      return;
    }
  }
  // Sweep the cone in level order, sparsely, through the backend's
  // cone_sweep kernel: `touched` marks gates whose faulty value actually
  // differs from the good machine, so a gate with no touched fanin is
  // identical to the good machine and is skipped without evaluation.
  // Most fault effects die within a few levels, which turns the O(cone)
  // sweep into an O(active frontier) sweep with cheap byte-load skip
  // checks.
  const std::vector<GateId>& cone_gates = cone(site);
  stats_.cone_gates += cone_gates.size();
  active_.resize(cone_gates.size() + 1);
  active_[0] = site;

  ConeSweepArgs args;
  args.nl = &nl;
  args.good = good.storage().data();
  args.faulty = faulty;
  args.touched = touched;
  args.cone = cone_gates.data();
  args.cone_size = cone_gates.size();
  args.site = site;
  args.mask = mask.w.data();
  args.observable = observable.data();
  args.sink = [](void* ctx, GateId g, const PatternWord* d) -> bool {
    return (*static_cast<decltype(call_sink)*>(ctx))(g, d);
  };
  args.sink_ctx = &call_sink;
  args.active = active_.data();
  args.active_count = 1;  // the pre-seeded site
  kern_->cone_sweep(args, W);

  if (args.aborted) ++stats_.aborts;
  stats_.active_gates += args.active_count;
  for (std::size_t i = 0; i < args.active_count; ++i) {
    touched[active_[i]] = 0;
  }
}

}  // namespace scanpower
