#pragma once
// Parallel-pattern, cone-restricted stuck-at fault simulation.
//
// Patterns are packed 64 per word; for each live fault only the fanout
// cone of the fault site is re-evaluated against the good machine, and
// detection is checked at the observable points inside the cone
// (primary outputs and DFF D pins -- the full-scan response).

#include <span>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/pattern.hpp"
#include "netlist/netlist.hpp"

namespace scanpower {

struct FaultSimResult {
  static constexpr std::size_t kNotDetected = static_cast<std::size_t>(-1);
  std::vector<bool> detected;                       ///< per fault
  std::vector<std::size_t> detecting_pattern;       ///< first detecting pattern or kNotDetected
  std::vector<std::uint32_t> new_detects_per_pattern;
  std::size_t num_detected = 0;
};

class FaultSimulator {
 public:
  explicit FaultSimulator(const Netlist& nl);

  /// Simulates `patterns` (must be fully specified) against `faults`.
  /// Faults already marked detected in `initial_detected` (optional,
  /// same size as faults) are skipped (fault dropping across calls).
  FaultSimResult run(std::span<const TestPattern> patterns,
                     std::span<const Fault> faults,
                     const std::vector<bool>* initial_detected = nullptr);

 private:
  /// Level-sorted combinational fanout cone of a gate (cached).
  const std::vector<GateId>& cone(GateId site);

  const Netlist* nl_;
  std::vector<std::uint8_t> observable_;  ///< PO or drives a DFF D pin
  std::vector<std::vector<GateId>> cone_cache_;
  std::vector<std::uint8_t> cone_cached_;
};

/// Convenience: fault coverage of a pattern set over the collapsed list.
double fault_coverage(const Netlist& nl, std::span<const TestPattern> patterns);

}  // namespace scanpower
