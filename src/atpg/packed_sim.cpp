#include "atpg/packed_sim.hpp"

#include "atpg/sim_kernels.hpp"
#include "util/assert.hpp"

namespace scanpower {

PatternWord eval_type_packed(GateType type, std::span<const PatternWord> ins) {
  switch (type) {
    case GateType::Const0:
      return 0;
    case GateType::Const1:
      return ~PatternWord{0};
    case GateType::Buf:
      return ins[0];
    case GateType::Not:
      return ~ins[0];
    case GateType::And:
    case GateType::Nand: {
      PatternWord acc = ~PatternWord{0};
      for (PatternWord w : ins) acc &= w;
      return type == GateType::And ? acc : ~acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      PatternWord acc = 0;
      for (PatternWord w : ins) acc |= w;
      return type == GateType::Or ? acc : ~acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      PatternWord acc = 0;
      for (PatternWord w : ins) acc ^= w;
      return type == GateType::Xor ? acc : ~acc;
    }
    case GateType::Mux:
      return (~ins[0] & ins[1]) | (ins[0] & ins[2]);
    case GateType::Input:
    case GateType::Dff:
      SP_ASSERT(false, "eval_type_packed on a source");
  }
  SP_ASSERT(false, "unhandled type in eval_type_packed");
}

BlockSimulator::BlockSimulator(const Netlist& nl, int words,
                               SimBackend backend)
    : nl_(&nl), words_(words) {
  SP_CHECK(nl.finalized(), "BlockSimulator requires a finalized netlist");
  SP_CHECK(is_valid_block_words(words),
           "BlockSimulator: block width must be 1, 2, 4, 8, 16 or 32 words");
  backend_ = resolve_backend(backend, words);
  kern_ = &sim_kernels(backend_);
  values_.assign(nl.num_gates() * static_cast<std::size_t>(words_), 0);
}

void BlockSimulator::eval() { kern_->eval_full(*nl_, values_.data(), words_); }

}  // namespace scanpower
