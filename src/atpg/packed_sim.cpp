#include "atpg/packed_sim.hpp"

#include "util/assert.hpp"

namespace scanpower {

PatternWord eval_type_packed(GateType type, std::span<const PatternWord> ins) {
  switch (type) {
    case GateType::Const0:
      return 0;
    case GateType::Const1:
      return ~PatternWord{0};
    case GateType::Buf:
      return ins[0];
    case GateType::Not:
      return ~ins[0];
    case GateType::And:
    case GateType::Nand: {
      PatternWord acc = ~PatternWord{0};
      for (PatternWord w : ins) acc &= w;
      return type == GateType::And ? acc : ~acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      PatternWord acc = 0;
      for (PatternWord w : ins) acc |= w;
      return type == GateType::Or ? acc : ~acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      PatternWord acc = 0;
      for (PatternWord w : ins) acc ^= w;
      return type == GateType::Xor ? acc : ~acc;
    }
    case GateType::Mux:
      return (~ins[0] & ins[1]) | (ins[0] & ins[2]);
    case GateType::Input:
    case GateType::Dff:
      SP_ASSERT(false, "eval_type_packed on a source");
  }
  SP_ASSERT(false, "unhandled type in eval_type_packed");
}

PackedSimulator::PackedSimulator(const Netlist& nl) : nl_(&nl) {
  SP_CHECK(nl.finalized(), "PackedSimulator requires a finalized netlist");
  values_.assign(nl.num_gates(), 0);
}

void PackedSimulator::eval() {
  std::vector<PatternWord> ins;
  for (GateId id : nl_->topo_order()) {
    const Gate& g = nl_->gate(id);
    ins.clear();
    for (GateId f : g.fanins) ins.push_back(values_[f]);
    values_[id] = eval_type_packed(g.type, ins);
  }
}

PatternWord PackedSimulator::eval_gate_packed(
    GateId id, std::span<const PatternWord> fanin_words) const {
  return eval_type_packed(nl_->type(id), fanin_words);
}

}  // namespace scanpower
