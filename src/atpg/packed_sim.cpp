#include "atpg/packed_sim.hpp"

#include "util/assert.hpp"

namespace scanpower {

PatternWord eval_type_packed(GateType type, std::span<const PatternWord> ins) {
  switch (type) {
    case GateType::Const0:
      return 0;
    case GateType::Const1:
      return ~PatternWord{0};
    case GateType::Buf:
      return ins[0];
    case GateType::Not:
      return ~ins[0];
    case GateType::And:
    case GateType::Nand: {
      PatternWord acc = ~PatternWord{0};
      for (PatternWord w : ins) acc &= w;
      return type == GateType::And ? acc : ~acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      PatternWord acc = 0;
      for (PatternWord w : ins) acc |= w;
      return type == GateType::Or ? acc : ~acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      PatternWord acc = 0;
      for (PatternWord w : ins) acc ^= w;
      return type == GateType::Xor ? acc : ~acc;
    }
    case GateType::Mux:
      return (~ins[0] & ins[1]) | (ins[0] & ins[2]);
    case GateType::Input:
    case GateType::Dff:
      SP_ASSERT(false, "eval_type_packed on a source");
  }
  SP_ASSERT(false, "unhandled type in eval_type_packed");
}

BlockSimulator::BlockSimulator(const Netlist& nl, int words)
    : nl_(&nl), words_(words) {
  SP_CHECK(nl.finalized(), "BlockSimulator requires a finalized netlist");
  SP_CHECK(is_valid_block_words(words),
           "BlockSimulator: block width must be 1, 2, 4 or 8 words");
  values_.assign(nl.num_gates() * static_cast<std::size_t>(words_), 0);
}

template <int W>
void BlockSimulator::eval_impl() {
  const Netlist& nl = *nl_;
  const std::span<const GateType> types = nl.types_flat();
  PatternWord* const vals = values_.data();
  const auto fanin_block = [vals](GateId f) {
    return vals + static_cast<std::size_t>(f) * W;
  };
  for (GateId id : nl.topo_order()) {
    eval_gate_block<W>(types[id], nl.fanin_span(id), fanin_block,
                       vals + static_cast<std::size_t>(id) * W);
  }
}

void BlockSimulator::eval() {
  switch (words_) {
    case 1: eval_impl<1>(); break;
    case 2: eval_impl<2>(); break;
    case 4: eval_impl<4>(); break;
    case 8: eval_impl<8>(); break;
    default: SP_ASSERT(false, "invalid block width");
  }
}

}  // namespace scanpower
