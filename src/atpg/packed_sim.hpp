#pragma once
// Multi-word parallel-pattern binary simulation.
//
// Each gate's value is a block of W 64-bit words (W*64 fully specified
// patterns per sweep, one pattern per bit lane). W is selected at runtime
// from {1, 2, 4, 8} for the word backends, or {16, 32} for the
// device-shaped wide backend; full evaluation dispatches through a
// per-backend kernel table (see sim_backend.hpp / sim_kernels.hpp), so
// the same simulator runs scalar, AVX2, AVX-512 or wide kernels with
// bit-identical results. Used by the fault simulator (good machine +
// cone-restricted faulty machine) and by random-phase test generation.
//
// Inner loops read the netlist through the flat CSR views (fanin_span /
// types_flat) and use fixed-fanin fast paths for the NAND/NOR/INV-mapped
// library: a 2-input NAND costs two loads, an AND and a NOT per word,
// with no per-gate fanin-vector rebuild.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "atpg/sim_backend.hpp"
#include "netlist/netlist.hpp"
#include "util/assert.hpp"

namespace scanpower {

using PatternWord = std::uint64_t;

struct SimKernels;  // sim_kernels.hpp

/// A block of W pattern words (W*64 bit lanes).
template <int W>
struct PackedBlock {
  std::array<PatternWord, W> w{};

  bool any() const {
    PatternWord acc = 0;
    for (PatternWord x : w) acc |= x;
    return acc != 0;
  }
};

/// Widths accepted by BlockSimulator / FaultSimOptions. 1-8 are the word
/// backends' widths; 16/32 belong to the wide backend (see
/// backend_supports_words for the per-backend matrix).
inline bool is_valid_block_words(int w) {
  return w == 1 || w == 2 || w == 4 || w == 8 || w == 16 || w == 32;
}

/// Lane-validity mask for a block holding `batch` patterns (a final block
/// of a pattern set may only partially fill its words): lane i is set iff
/// i < batch.
template <int W>
inline PackedBlock<W> lane_validity_mask(std::size_t batch) {
  PackedBlock<W> mask;
  for (int w = 0; w < W; ++w) {
    const std::size_t lane0 = static_cast<std::size_t>(w) * 64;
    if (batch >= lane0 + 64) {
      mask.w[w] = ~PatternWord{0};
    } else if (batch > lane0) {
      mask.w[w] = (PatternWord{1} << (batch - lane0)) - 1;
    } else {
      mask.w[w] = 0;
    }
  }
  return mask;
}

/// Evaluates one gate over per-fanin word blocks. `fanin_block(f)` must
/// return a pointer to fanin f's W-word block; `out` receives W words.
/// Instantiated per width so the word loops unroll; the 1- and 2-input
/// cases of the mapped library bypass the generic accumulation loop.
template <int W, typename FaninBlockFn>
inline void eval_gate_block(GateType type, std::span<const GateId> fanins,
                            FaninBlockFn&& fanin_block, PatternWord* out) {
  const std::size_t n = fanins.size();
  switch (type) {
    case GateType::Const0:
      for (int w = 0; w < W; ++w) out[w] = 0;
      return;
    case GateType::Const1:
      for (int w = 0; w < W; ++w) out[w] = ~PatternWord{0};
      return;
    case GateType::Buf: {
      const PatternWord* a = fanin_block(fanins[0]);
      for (int w = 0; w < W; ++w) out[w] = a[w];
      return;
    }
    case GateType::Not: {
      const PatternWord* a = fanin_block(fanins[0]);
      for (int w = 0; w < W; ++w) out[w] = ~a[w];
      return;
    }
    case GateType::And:
    case GateType::Nand: {
      if (n == 2) {
        const PatternWord* a = fanin_block(fanins[0]);
        const PatternWord* b = fanin_block(fanins[1]);
        if (type == GateType::And) {
          for (int w = 0; w < W; ++w) out[w] = a[w] & b[w];
        } else {
          for (int w = 0; w < W; ++w) out[w] = ~(a[w] & b[w]);
        }
        return;
      }
      const PatternWord* a = fanin_block(fanins[0]);
      for (int w = 0; w < W; ++w) out[w] = a[w];
      for (std::size_t i = 1; i < n; ++i) {
        const PatternWord* b = fanin_block(fanins[i]);
        for (int w = 0; w < W; ++w) out[w] &= b[w];
      }
      if (type == GateType::Nand) {
        for (int w = 0; w < W; ++w) out[w] = ~out[w];
      }
      return;
    }
    case GateType::Or:
    case GateType::Nor: {
      if (n == 2) {
        const PatternWord* a = fanin_block(fanins[0]);
        const PatternWord* b = fanin_block(fanins[1]);
        if (type == GateType::Or) {
          for (int w = 0; w < W; ++w) out[w] = a[w] | b[w];
        } else {
          for (int w = 0; w < W; ++w) out[w] = ~(a[w] | b[w]);
        }
        return;
      }
      const PatternWord* a = fanin_block(fanins[0]);
      for (int w = 0; w < W; ++w) out[w] = a[w];
      for (std::size_t i = 1; i < n; ++i) {
        const PatternWord* b = fanin_block(fanins[i]);
        for (int w = 0; w < W; ++w) out[w] |= b[w];
      }
      if (type == GateType::Nor) {
        for (int w = 0; w < W; ++w) out[w] = ~out[w];
      }
      return;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      const PatternWord* a = fanin_block(fanins[0]);
      for (int w = 0; w < W; ++w) out[w] = a[w];
      for (std::size_t i = 1; i < n; ++i) {
        const PatternWord* b = fanin_block(fanins[i]);
        for (int w = 0; w < W; ++w) out[w] ^= b[w];
      }
      if (type == GateType::Xnor) {
        for (int w = 0; w < W; ++w) out[w] = ~out[w];
      }
      return;
    }
    case GateType::Mux: {
      const PatternWord* s = fanin_block(fanins[0]);
      const PatternWord* a = fanin_block(fanins[1]);
      const PatternWord* b = fanin_block(fanins[2]);
      for (int w = 0; w < W; ++w) out[w] = (~s[w] & a[w]) | (s[w] & b[w]);
      return;
    }
    case GateType::Input:
    case GateType::Dff:
      break;  // sources: asserted below
  }
  SP_ASSERT(false, "eval_gate_block on a source");
}

/// Runtime-width packed simulator: gate values are contiguous W-word
/// blocks, gate-major (`block(id)[w]`).
class BlockSimulator {
 public:
  explicit BlockSimulator(const Netlist& nl, int words = 4,
                          SimBackend backend = SimBackend::Auto);

  int words() const { return words_; }
  /// The resolved kernel backend (never Auto).
  SimBackend backend() const { return backend_; }
  std::size_t lanes() const { return static_cast<std::size_t>(words_) * 64; }

  PatternWord* block(GateId id) {
    return values_.data() + static_cast<std::size_t>(id) * words_;
  }
  const PatternWord* block(GateId id) const {
    return values_.data() + static_cast<std::size_t>(id) * words_;
  }
  PatternWord word(GateId id, int wi) const { return block(id)[wi]; }
  void set_source_word(GateId id, int wi, PatternWord w) { block(id)[wi] = w; }

  /// Full levelized evaluation (good machine) over all W words, through
  /// the resolved backend's kernel table.
  void eval();

  const std::vector<PatternWord>& storage() const { return values_; }

 protected:
  const Netlist* nl_;
  int words_;
  SimBackend backend_;        ///< resolved, never Auto
  const SimKernels* kern_;    ///< backend kernel table
  std::vector<PatternWord> values_;  ///< num_gates * words_, gate-major
};

/// Single-word (64-pattern) view, kept as the convenience API for tests
/// and random-phase TPG.
class PackedSimulator : public BlockSimulator {
 public:
  explicit PackedSimulator(const Netlist& nl) : BlockSimulator(nl, 1) {}

  /// Sets one source's word (bit lane = pattern index).
  void set_source(GateId id, PatternWord w) { set_source_word(id, 0, w); }
  PatternWord value(GateId id) const { return word(id, 0); }
  const std::vector<PatternWord>& values() const { return storage(); }
};

/// Pure combinational word evaluation for a gate type.
PatternWord eval_type_packed(GateType type, std::span<const PatternWord> ins);

}  // namespace scanpower
