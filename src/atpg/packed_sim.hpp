#pragma once
// 64-way parallel-pattern binary simulation.
//
// Each gate's value is a 64-bit word, one fully specified pattern per bit
// lane. Used by the fault simulator (good machine + cone-restricted faulty
// machine) and by random-phase test generation.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace scanpower {

using PatternWord = std::uint64_t;

class PackedSimulator {
 public:
  explicit PackedSimulator(const Netlist& nl);

  /// Sets one source's word (bit lane = pattern index).
  void set_source(GateId id, PatternWord w) { values_[id] = w; }
  PatternWord value(GateId id) const { return values_[id]; }
  const std::vector<PatternWord>& values() const { return values_; }

  /// Full levelized evaluation (good machine).
  void eval();

  /// Evaluates one gate from current fanin words, with an optional forced
  /// word on one input pin (used by the faulty machine). Exposed so the
  /// fault simulator can sweep cones.
  PatternWord eval_gate_packed(GateId id,
                               std::span<const PatternWord> fanin_words) const;

 private:
  const Netlist* nl_;
  std::vector<PatternWord> values_;
};

/// Pure combinational word evaluation for a gate type.
PatternWord eval_type_packed(GateType type, std::span<const PatternWord> ins);

}  // namespace scanpower
