#include "atpg/pattern.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "atpg/packed_sim.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

void load_pattern_block(const Netlist& nl, std::span<const TestPattern> patterns,
                        std::size_t base, BlockSimulator& sim) {
  const int words = sim.words();
  const std::size_t batch =
      patterns.size() > base ? std::min(sim.lanes(), patterns.size() - base) : 0;
  auto load = [&](const std::vector<GateId>& sources, bool use_pi) {
    for (std::size_t k = 0; k < sources.size(); ++k) {
      for (int wi = 0; wi < words; ++wi) {
        const std::size_t lane0 = static_cast<std::size_t>(wi) * 64;
        PatternWord w = 0;
        const std::size_t count =
            batch > lane0 ? std::min<std::size_t>(64, batch - lane0) : 0;
        for (std::size_t j = 0; j < count; ++j) {
          const TestPattern& pat = patterns[base + lane0 + j];
          const Logic v = use_pi ? pat.pi[k] : pat.ppi[k];
          SP_CHECK(v != Logic::X,
                   "load_pattern_block: patterns must be fully specified");
          if (v == Logic::One) w |= PatternWord{1} << j;
        }
        sim.set_source_word(sources[k], wi, w);
      }
    }
  };
  load(nl.inputs(), /*use_pi=*/true);
  load(nl.dffs(), /*use_pi=*/false);
}

bool TestPattern::fully_specified() const {
  for (Logic v : pi) {
    if (v == Logic::X) return false;
  }
  for (Logic v : ppi) {
    if (v == Logic::X) return false;
  }
  return true;
}

void TestPattern::random_fill(Rng& rng) {
  for (Logic& v : pi) {
    if (v == Logic::X) v = from_bool(rng.next_bool());
  }
  for (Logic& v : ppi) {
    if (v == Logic::X) v = from_bool(rng.next_bool());
  }
}

std::string TestPattern::to_string() const {
  return logic_string(pi) + "|" + logic_string(ppi);
}

TestPattern TestPattern::from_string(const std::string& s) {
  const std::size_t bar = s.find('|');
  SP_CHECK(bar != std::string::npos, "TestPattern: missing '|' separator");
  TestPattern p;
  p.pi = logic_vector(s.substr(0, bar));
  p.ppi = logic_vector(s.substr(bar + 1));
  return p;
}

void save_test_set(std::ostream& out, const TestSet& ts) {
  out << "# scanpower test set\n";
  out << "seed " << ts.seed << "\n";
  out << "stats " << ts.total_faults << " " << ts.detected_faults << " "
      << ts.untestable_faults << " " << ts.aborted_faults << "\n";
  for (const TestPattern& p : ts.patterns) out << p.to_string() << "\n";
}

TestSet load_test_set(std::istream& in) {
  TestSet ts;
  std::string line;
  std::size_t expected_pi = 0;
  std::size_t expected_ppi = 0;
  bool first_pattern = true;
  while (std::getline(in, line)) {
    const std::string_view body = trim(line);
    if (body.empty() || body[0] == '#') continue;
    if (starts_with(body, "seed ")) {
      ts.seed = static_cast<std::uint64_t>(
          std::strtoull(std::string(body.substr(5)).c_str(), nullptr, 10));
      continue;
    }
    if (starts_with(body, "stats ")) {
      const auto parts = split(body.substr(6), " ");
      SP_CHECK(parts.size() == 4, "test set: malformed stats line");
      ts.total_faults = std::strtoull(parts[0].c_str(), nullptr, 10);
      ts.detected_faults = std::strtoull(parts[1].c_str(), nullptr, 10);
      ts.untestable_faults = std::strtoull(parts[2].c_str(), nullptr, 10);
      ts.aborted_faults = std::strtoull(parts[3].c_str(), nullptr, 10);
      continue;
    }
    TestPattern p = TestPattern::from_string(std::string(body));
    if (first_pattern) {
      expected_pi = p.pi.size();
      expected_ppi = p.ppi.size();
      first_pattern = false;
    }
    SP_CHECK(p.pi.size() == expected_pi && p.ppi.size() == expected_ppi,
             "test set: inconsistent pattern widths");
    ts.patterns.push_back(std::move(p));
  }
  return ts;
}

void save_test_set_file(const std::string& path, const TestSet& ts) {
  std::ofstream out(path);
  SP_CHECK(out.good(), "cannot write test set file: " + path);
  save_test_set(out, ts);
}

TestSet load_test_set_file(const std::string& path) {
  std::ifstream in(path);
  SP_CHECK(in.good(), "cannot open test set file: " + path);
  return load_test_set(in);
}

TestPattern random_pattern(const Netlist& nl, Rng& rng) {
  TestPattern p;
  p.pi.reserve(nl.inputs().size());
  p.ppi.reserve(nl.dffs().size());
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    p.pi.push_back(from_bool(rng.next_bool()));
  }
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    p.ppi.push_back(from_bool(rng.next_bool()));
  }
  return p;
}

}  // namespace scanpower
