#pragma once
// Test patterns for the full-scan combinational view.
//
// A pattern assigns primary inputs (ordered like Netlist::inputs()) and
// pseudo-inputs / scan-cell values (ordered like Netlist::dffs()). X
// entries are care-free positions produced by PODEM before fill.

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic.hpp"
#include "util/rng.hpp"

namespace scanpower {

struct TestPattern {
  std::vector<Logic> pi;
  std::vector<Logic> ppi;

  friend bool operator==(const TestPattern&, const TestPattern&) = default;

  bool fully_specified() const;
  /// Replaces every X with a random bit.
  void random_fill(Rng& rng);
  /// "pi|ppi" string form, e.g. "01x1|100".
  std::string to_string() const;
  static TestPattern from_string(const std::string& s);
};

/// A generated test set plus bookkeeping for reports.
struct TestSet {
  std::vector<TestPattern> patterns;
  std::size_t total_faults = 0;      ///< collapsed fault universe
  std::size_t detected_faults = 0;
  std::size_t untestable_faults = 0; ///< proven redundant by PODEM
  std::size_t aborted_faults = 0;    ///< backtrack limit hit
  std::uint64_t seed = 0;

  double fault_coverage() const {
    return total_faults ? static_cast<double>(detected_faults) /
                              static_cast<double>(total_faults)
                        : 0.0;
  }
  /// Coverage of the testable universe (excludes proven-untestable).
  double test_efficiency() const {
    const std::size_t testable = total_faults - untestable_faults;
    return testable ? static_cast<double>(detected_faults) /
                          static_cast<double>(testable)
                    : 0.0;
  }
};

/// Uniformly random fully specified pattern.
TestPattern random_pattern(const Netlist& nl, Rng& rng);

class BlockSimulator;

/// Loads patterns [base, base + sim.lanes()) into the block simulator's
/// source words, one bit lane per pattern (PIs from `pi`, DFF outputs from
/// `ppi`). A partial final block zero-fills the invalid lanes. Patterns
/// must be fully specified (throws Error otherwise). Shared by fault
/// simulation and response capture so every consumer agrees on the
/// lane <-> pattern mapping.
void load_pattern_block(const Netlist& nl, std::span<const TestPattern> patterns,
                        std::size_t base, BlockSimulator& sim);

/// Plain-text test-set file format:
///   # comments
///   seed <n>
///   stats <total> <detected> <untestable> <aborted>
///   <pi bits>|<ppi bits>        (one pattern per line, x = don't care)
void save_test_set(std::ostream& out, const TestSet& ts);
TestSet load_test_set(std::istream& in);  ///< throws Error on bad input
void save_test_set_file(const std::string& path, const TestSet& ts);
TestSet load_test_set_file(const std::string& path);

}  // namespace scanpower
