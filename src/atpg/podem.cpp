#include "atpg/podem.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace scanpower {

Podem::Podem(const Netlist& nl, PodemOptions opts) : nl_(&nl), opts_(opts) {
  SP_CHECK(nl.finalized(), "Podem requires a finalized netlist");
  if (!opts_.directive) opts_.directive = &default_directive_;
  assign_.assign(nl.num_gates(), Logic::X);
  good_.assign(nl.num_gates(), Logic::X);
  faulty_.assign(nl.num_gates(), Logic::X);
}

Logic Podem::faulty_input(GateId gate, std::size_t pin) const {
  if (gate == fault_.gate && static_cast<int>(pin) == fault_.pin) {
    return from_bool(fault_.stuck_at);
  }
  return faulty_[nl_->fanins(gate)[pin]];
}

GateId Podem::activation_line() const {
  // Stem fault: the gate's own output line. Pin fault: the driver of the
  // faulted branch must carry the opposite value.
  if (fault_.pin < 0) return fault_.gate;
  return nl_->fanins(fault_.gate)[static_cast<std::size_t>(fault_.pin)];
}

void Podem::imply() {
  const Netlist& nl = *nl_;
  // Sources.
  for (GateId pi : nl.inputs()) {
    good_[pi] = assign_[pi];
    faulty_[pi] = assign_[pi];
  }
  for (GateId ff : nl.dffs()) {
    good_[ff] = assign_[ff];
    faulty_[ff] = assign_[ff];
  }
  // Stem fault forcing at sources.
  if (fault_.pin < 0) {
    const GateType t = nl.type(fault_.gate);
    if (t == GateType::Input || t == GateType::Dff) {
      faulty_[fault_.gate] = from_bool(fault_.stuck_at);
    }
  }
  std::vector<Logic> ins;
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    ins.clear();
    for (GateId f : g.fanins) ins.push_back(good_[f]);
    good_[id] = eval_gate(g.type, ins);
    ins.clear();
    for (std::size_t p = 0; p < g.fanins.size(); ++p) {
      ins.push_back(faulty_input(id, p));
    }
    faulty_[id] = eval_gate(g.type, ins);
    if (fault_.pin < 0 && id == fault_.gate) {
      faulty_[id] = from_bool(fault_.stuck_at);
    }
  }
}

bool Podem::detected() const {
  const Netlist& nl = *nl_;
  if (dff_pin_fault_) {
    const Logic d = good_[nl.fanins(fault_.gate)[0]];
    return is_known(d) && as_bool(d) != fault_.stuck_at;
  }
  for (GateId po : nl.outputs()) {
    if (is_known(good_[po]) && is_known(faulty_[po]) &&
        good_[po] != faulty_[po]) {
      return true;
    }
  }
  for (GateId dff : nl.dffs()) {
    const GateId d = nl.fanins(dff)[0];
    if (is_known(good_[d]) && is_known(faulty_[d]) && good_[d] != faulty_[d]) {
      return true;
    }
  }
  return false;
}

bool Podem::activation_impossible() const {
  const Logic v = good_[activation_line()];
  return is_known(v) && as_bool(v) == fault_.stuck_at;
}

bool Podem::activated() const {
  const Logic v = good_[activation_line()];
  return is_known(v) && as_bool(v) != fault_.stuck_at;
}

std::vector<GateId> Podem::d_frontier() const {
  const Netlist& nl = *nl_;
  std::vector<GateId> frontier;
  for (GateId id : nl.topo_order()) {
    // A frontier gate's output cannot yet show the effect, but one of its
    // inputs does.
    const bool out_open = good_[id] == Logic::X || faulty_[id] == Logic::X;
    if (!out_open) continue;
    const Gate& g = nl.gate(id);
    for (std::size_t p = 0; p < g.fanins.size(); ++p) {
      const Logic gv = good_[g.fanins[p]];
      const Logic fv = faulty_input(id, p);
      if (is_known(gv) && is_known(fv) && gv != fv) {
        frontier.push_back(id);
        break;
      }
    }
  }
  return frontier;
}

std::optional<std::pair<GateId, bool>> Podem::objective() {
  // Phase 1: excite the fault.
  if (!activated()) {
    const GateId line = activation_line();
    if (good_[line] != Logic::X) return std::nullopt;  // impossible
    return std::make_pair(line, !fault_.stuck_at);
  }
  if (dff_pin_fault_) return std::nullopt;  // activation == detection here
  // Phase 2: drive the effect through a D-frontier gate. Scan every
  // frontier gate (deepest first) for an extendable side input: its good
  // value must be open (X) and its faulty value must not already be the
  // controlling value (which would block the effect in the faulty
  // machine no matter what we justify).
  auto frontier = d_frontier();
  std::sort(frontier.begin(), frontier.end(), [this](GateId a, GateId b) {
    return nl_->level(a) != nl_->level(b) ? nl_->level(a) > nl_->level(b)
                                          : a < b;
  });
  for (GateId g : frontier) {
    const Gate& gate = nl_->gate(g);
    const auto cv = controlling_value(gate.type);
    for (std::size_t p = 0; p < gate.fanins.size(); ++p) {
      const GateId fin = gate.fanins[p];
      if (good_[fin] != Logic::X) continue;
      const Logic fv = faulty_input(g, p);
      if (cv && fv == from_bool(*cv)) continue;  // permanently blocked pin
      // Non-controlling value lets the effect pass; for parity-type gates
      // any fixed value works.
      const bool v = cv ? !*cv : false;
      return std::make_pair(fin, v);
    }
  }
  // No frontier extension available, but that is not a *proof* of a dead
  // end (a faulty-machine blocking value may flip under a different
  // source assignment). Stay complete by brute-force extending the
  // assignment: pick any unassigned source feeding the circuit.
  for (GateId pi : nl_->inputs()) {
    if (assign_[pi] == Logic::X) return std::make_pair(pi, false);
  }
  for (GateId ff : nl_->dffs()) {
    if (assign_[ff] == Logic::X) return std::make_pair(ff, false);
  }
  // Everything assigned and still neither detected nor conflicting: with
  // all sources known every line is known, so the frontier must be empty
  // and the caller's dead-end handling (backtrack) is sound.
  return std::nullopt;
}

std::pair<GateId, Logic> Podem::backtrace(GateId node, bool value) const {
  const Netlist& nl = *nl_;
  GateId cur = node;
  bool v = value;
  for (;;) {
    const GateType t = nl.type(cur);
    if (t == GateType::Input || t == GateType::Dff) {
      return {cur, from_bool(v)};
    }
    SP_ASSERT(t != GateType::Const0 && t != GateType::Const1,
              "backtrace reached a constant (objective unreachable)");
    const Gate& g = nl.gate(cur);
    const bool want = is_inverting(t) ? !v : v;
    // Candidates: fanins still unknown in the good machine.
    std::vector<GateId> candidates;
    for (GateId f : g.fanins) {
      if (good_[f] == Logic::X) candidates.push_back(f);
    }
    SP_ASSERT(!candidates.empty(), "backtrace on a fully specified gate");
    const auto cv = controlling_value(t);
    bool next_value;
    GateId chosen;
    if (cv) {
      // want (pre-inversion sense) equal to the controlled AND/OR result?
      // AND-family: output sense 'want'==false needs one controlling 0;
      // 'want'==true needs all-1. OR-family dual.
      const bool needs_controlling = (want == (t == GateType::Or || t == GateType::Nor));
      if (needs_controlling) {
        chosen = opts_.directive->choose(nl, cur, candidates, *cv);
        next_value = *cv;
      } else {
        chosen = opts_.directive->choose(nl, cur, candidates, !*cv);
        next_value = !*cv;
      }
    } else if (t == GateType::Buf || t == GateType::Not) {
      chosen = g.fanins[0];
      next_value = want;
    } else {
      // XOR/XNOR/MUX: pick a candidate and aim for `want`; backtracking
      // corrects bad guesses.
      chosen = opts_.directive->choose(nl, cur, candidates, want);
      next_value = want;
    }
    cur = chosen;
    v = next_value;
  }
}

bool Podem::backtrack() {
  while (!decisions_.empty()) {
    Decision& d = decisions_.back();
    if (!d.flipped) {
      d.flipped = true;
      d.value = logic_not(d.value);
      assign_[d.point] = d.value;
      ++backtracks_;
      return true;
    }
    assign_[d.point] = Logic::X;
    decisions_.pop_back();
  }
  return false;
}

PodemResult Podem::generate(const Fault& fault) {
  const Netlist& nl = *nl_;
  fault_ = fault;
  dff_pin_fault_ = fault.pin >= 0 && nl.type(fault.gate) == GateType::Dff;
  std::fill(assign_.begin(), assign_.end(), Logic::X);
  decisions_.clear();
  backtracks_ = 0;

  PodemResult res;
  for (;;) {
    imply();
    if (detected()) {
      res.status = PodemStatus::Detected;
      res.backtracks = backtracks_;
      res.pattern.pi.clear();
      res.pattern.ppi.clear();
      for (GateId pi : nl.inputs()) res.pattern.pi.push_back(assign_[pi]);
      for (GateId ff : nl.dffs()) res.pattern.ppi.push_back(assign_[ff]);
      return res;
    }
    const bool dead = activation_impossible() ||
                      (activated() && !dff_pin_fault_ && d_frontier().empty());
    std::optional<std::pair<GateId, bool>> obj;
    if (!dead) obj = objective();
    if (dead || !obj) {
      if (backtracks_ >= opts_.backtrack_limit) {
        res.status = PodemStatus::Aborted;
        res.backtracks = backtracks_;
        return res;
      }
      if (!backtrack()) {
        res.status = PodemStatus::Untestable;
        res.backtracks = backtracks_;
        return res;
      }
      continue;
    }
    if (backtracks_ >= opts_.backtrack_limit) {
      res.status = PodemStatus::Aborted;
      res.backtracks = backtracks_;
      return res;
    }
    const auto [point, value] = backtrace(obj->first, obj->second);
    SP_ASSERT(assign_[point] == Logic::X, "backtrace chose an assigned point");
    assign_[point] = value;
    decisions_.push_back({point, value, false});
  }
}

}  // namespace scanpower
