#pragma once
// PODEM test generation for one stuck-at fault (full-scan combinational
// view), using dual 3-valued good/faulty machines.
//
// Decisions are made only at controllable points (PIs and DFF outputs),
// which keeps the search complete: if the decision tree is exhausted the
// fault is proven untestable (redundant). The backtrace tie-break is
// pluggable (BacktraceDirective); the same engine powers the paper's
// Justify() when driven by the leakage-observability directive.

#include <optional>

#include "atpg/backtrace_directive.hpp"
#include "atpg/fault.hpp"
#include "atpg/pattern.hpp"
#include "netlist/netlist.hpp"
#include "sim/logic.hpp"

namespace scanpower {

struct PodemOptions {
  int backtrack_limit = 4000;
  const BacktraceDirective* directive = nullptr;  ///< default: DepthDirective
};

enum class PodemStatus { Detected, Untestable, Aborted };

struct PodemResult {
  PodemStatus status = PodemStatus::Aborted;
  TestPattern pattern;  ///< with X at unassigned positions (Detected only)
  int backtracks = 0;
};

class Podem {
 public:
  explicit Podem(const Netlist& nl, PodemOptions opts = {});

  PodemResult generate(const Fault& fault);

 private:
  struct Decision {
    GateId point;
    Logic value;
    bool flipped;
  };

  void imply();
  bool detected() const;
  bool activation_impossible() const;
  bool activated() const;
  /// Gates that can still propagate the fault effect.
  std::vector<GateId> d_frontier() const;
  /// Objective (line, value) to pursue next; nullopt = dead end.
  std::optional<std::pair<GateId, bool>> objective();
  /// Maps an objective to an unassigned controllable point.
  std::pair<GateId, Logic> backtrace(GateId node, bool value) const;
  bool backtrack();  ///< false when the tree is exhausted

  Logic faulty_input(GateId gate, std::size_t pin) const;
  GateId activation_line() const;

  const Netlist* nl_;
  PodemOptions opts_;
  DepthDirective default_directive_;
  Fault fault_{};
  bool dff_pin_fault_ = false;

  std::vector<Logic> assign_;  ///< controllable-point assignment (by gate id)
  std::vector<Logic> good_;
  std::vector<Logic> faulty_;
  std::vector<Decision> decisions_;
  int backtracks_ = 0;
};

}  // namespace scanpower
