#include "atpg/redundancy.hpp"

#include "atpg/fault.hpp"
#include "atpg/podem.hpp"
#include "netlist/builder.hpp"
#include "netlist/simplify.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace scanpower {

namespace {

/// Ties the output net of `stem` to `value`: every reader is rewired to a
/// tie cell. Returns the rewritten (finalized) netlist.
Netlist tie_stem(const Netlist& nl, GateId stem, bool value) {
  NetlistBuilder builder(nl.name());
  const std::string tie_name = value ? "tie1$$" : "tie0$$";
  bool tie_exists = nl.find(tie_name) != kInvalidGate;
  if (!tie_exists) {
    builder.add_gate(value ? GateType::Const1 : GateType::Const0, tie_name, {});
  }
  auto pin = [&](GateId f) -> std::string {
    return f == stem ? tie_name : nl.gate_name(f);
  };
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::Input) {
      builder.add_input(g.name);
      continue;
    }
    std::vector<std::string> fans;
    fans.reserve(g.fanins.size());
    for (GateId f : g.fanins) fans.push_back(pin(f));
    builder.add_gate(g.type, g.name, fans);
  }
  for (GateId po : nl.outputs()) {
    // A redundant PO stem keeps its own (now unread) gate; the PO itself
    // is tied only through observability, which PODEM already ruled out
    // for POs (a PO stem fault is always observable, so it can only be
    // proven redundant if unexcitable -- in which case the gate is
    // constant and simplify() handles it). Keep the original PO net.
    builder.add_output(nl.gate_name(po));
  }
  return builder.link();
}

}  // namespace

RedundancyResult remove_redundancies(const Netlist& nl,
                                     const RedundancyOptions& opts) {
  SP_CHECK(nl.finalized(), "remove_redundancies requires a finalized netlist");
  RedundancyResult res{simplify(nl), 0, 0, 0};

  std::size_t comb_before = 0;
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (is_combinational(nl.type(id)) && nl.type(id) != GateType::Const0 &&
        nl.type(id) != GateType::Const1) {
      ++comb_before;
    }
  }

  PodemOptions popts;
  popts.backtrack_limit = opts.podem_backtrack_limit;

  bool changed = true;
  while (changed && res.lines_tied < static_cast<std::size_t>(opts.max_ties)) {
    changed = false;
    ++res.rounds;
    Podem podem(res.netlist, popts);
    // Stem faults only: tying a branch would need fanout splitting.
    for (GateId id = 0; id < res.netlist.num_gates() && !changed; ++id) {
      const GateType t = res.netlist.type(id);
      if (!is_combinational(t) || t == GateType::Const0 ||
          t == GateType::Const1) {
        continue;
      }
      if (res.netlist.fanouts(id).empty()) continue;  // dead already
      for (const bool sa : {false, true}) {
        const PodemResult pr = podem.generate({id, -1, sa});
        if (pr.status != PodemStatus::Untestable) continue;
        SP_LOG_DEBUG(strprintf("redundancy: tying %s to %d",
                            res.netlist.gate_name(id).c_str(), sa ? 1 : 0));
        res.netlist = simplify(tie_stem(res.netlist, id, sa));
        ++res.lines_tied;
        changed = true;
        break;
      }
    }
  }

  std::size_t comb_after = 0;
  for (GateId id = 0; id < res.netlist.num_gates(); ++id) {
    const GateType t = res.netlist.type(id);
    if (is_combinational(t) && t != GateType::Const0 && t != GateType::Const1) {
      ++comb_after;
    }
  }
  res.gates_removed = comb_before > comb_after ? comb_before - comb_after : 0;
  return res;
}

}  // namespace scanpower
