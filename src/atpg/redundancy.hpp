#pragma once
// ATPG-based redundancy removal.
//
// A stuck-at fault with *no* test (proven by exhausting PODEM's decision
// tree) is undetectable: replacing the faulted line by the stuck value
// cannot change any primary output or next-state function. Repeatedly
// proving a stem fault redundant, tying the stem to the constant, and
// re-simplifying yields an irredundant (w.r.t. the proof budget) circuit
// -- the classic ATPG-driven logic optimization.
//
// Removal is one-fault-at-a-time (tying a line can make other redundancy
// proofs stale), so this pass is intended for small/medium circuits; a
// round/backtrack budget bounds the work.

#include "netlist/netlist.hpp"

namespace scanpower {

struct RedundancyOptions {
  int podem_backtrack_limit = 2000;  ///< proof budget per fault
  int max_ties = 1 << 20;            ///< stop after this many removals
};

struct RedundancyResult {
  Netlist netlist;                ///< simplified, irredundant circuit
  std::size_t lines_tied = 0;     ///< redundant stems replaced by constants
  std::size_t gates_removed = 0;  ///< combinational gates eliminated
  std::size_t rounds = 0;
};

RedundancyResult remove_redundancies(const Netlist& nl,
                                     const RedundancyOptions& opts = {});

}  // namespace scanpower
