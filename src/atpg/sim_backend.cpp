#include "atpg/sim_backend.hpp"

#include <cstdlib>

#include "atpg/packed_sim.hpp"
#include "atpg/sim_kernels.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

namespace {

bool cpu_supports(SimBackend b) {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  switch (b) {
    case SimBackend::Avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case SimBackend::Avx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
    default:
      return true;
  }
#else
  return b != SimBackend::Avx2 && b != SimBackend::Avx512;
#endif
}

/// SCANPOWER_FORCE_BACKEND, parsed once. Auto (the default) = unset or
/// unparseable; the variable only steers Auto-configured engines, so CI
/// can force a backend under the full test suite without breaking tests
/// that configure one explicitly.
SimBackend forced_backend() {
  static const SimBackend forced = [] {
    const char* env = std::getenv("SCANPOWER_FORCE_BACKEND");
    SimBackend b = SimBackend::Auto;
    if (env != nullptr && env[0] != '\0') {
      if (!parse_backend(env, &b)) b = SimBackend::Auto;
    }
    return b;
  }();
  return forced;
}

}  // namespace

const char* backend_name(SimBackend b) {
  switch (b) {
    case SimBackend::Auto: return "auto";
    case SimBackend::Scalar: return "scalar";
    case SimBackend::Avx2: return "avx2";
    case SimBackend::Avx512: return "avx512";
    case SimBackend::Wide: return "wide";
  }
  return "?";
}

bool parse_backend(const std::string& s, SimBackend* out) {
  for (SimBackend b : {SimBackend::Auto, SimBackend::Scalar, SimBackend::Avx2,
                       SimBackend::Avx512, SimBackend::Wide}) {
    if (s == backend_name(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

bool backend_compiled(SimBackend b) {
  switch (b) {
    case SimBackend::Auto:
    case SimBackend::Scalar:
    case SimBackend::Wide:
      return true;
    case SimBackend::Avx2:
      return avx2_sim_kernels() != nullptr;
    case SimBackend::Avx512:
      return avx512_sim_kernels() != nullptr;
  }
  return false;
}

bool backend_available(SimBackend b) {
  return backend_compiled(b) && cpu_supports(b);
}

bool backend_supports_words(SimBackend b, int block_words) {
  if (!is_valid_block_words(block_words)) return false;
  switch (b) {
    case SimBackend::Auto:
    case SimBackend::Scalar:
      return true;
    case SimBackend::Avx2:
    case SimBackend::Avx512:
      return block_words <= 8;
    case SimBackend::Wide:
      return block_words >= 16;
  }
  return false;
}

SimBackend detect_best_backend(int block_words) {
  if (block_words > 8) return SimBackend::Wide;
  if (backend_available(SimBackend::Avx512)) return SimBackend::Avx512;
  if (backend_available(SimBackend::Avx2)) return SimBackend::Avx2;
  return SimBackend::Scalar;
}

SimBackend resolve_backend(SimBackend req, int block_words) {
  SP_CHECK(is_valid_block_words(block_words),
           strprintf("resolve_backend: invalid block width %d", block_words));
  if (req != SimBackend::Auto) {
    SP_CHECK(backend_available(req),
             strprintf("backend '%s' is not available on this host%s",
                       backend_name(req),
                       backend_compiled(req)
                           ? " (CPU lacks the required features)"
                           : " (library built without its kernels)"));
    SP_CHECK(backend_supports_words(req, block_words),
             strprintf("backend '%s' does not support block_words=%d "
                       "(scalar: any width; avx2/avx512: 1-8; wide: 16/32)",
                       backend_name(req), block_words));
    return req;
  }
  const SimBackend forced = forced_backend();
  if (forced != SimBackend::Auto && backend_available(forced) &&
      backend_supports_words(forced, block_words)) {
    return forced;
  }
  return detect_best_backend(block_words);
}

const SimKernels& sim_kernels(SimBackend resolved) {
  const SimKernels* k = nullptr;
  switch (resolved) {
    case SimBackend::Scalar: k = scalar_sim_kernels(); break;
    case SimBackend::Wide: k = wide_sim_kernels(); break;
    case SimBackend::Avx2: k = avx2_sim_kernels(); break;
    case SimBackend::Avx512: k = avx512_sim_kernels(); break;
    case SimBackend::Auto: break;
  }
  SP_ASSERT(k != nullptr, "sim_kernels on an unresolved or absent backend");
  return *k;
}

}  // namespace scanpower
