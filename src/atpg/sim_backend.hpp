#pragma once
// SimBackend: the kernel-backend selector for the packed engines.
//
// Every hot loop of the packed stack (full/ternary block evaluation, the
// sparse fault-cone sweep, the per-lane leakage table gather and the
// Monte-Carlo observability reduction) is routed through a per-backend
// kernel table (see sim_kernels.hpp). Backends:
//
//   Scalar -- the portable word engine; always available and the
//             bit-exactness reference every other backend is checked
//             against. Supports every block width.
//   Avx2   -- x86-64 AVX2 kernels (256-bit gate ops, vpgatherqq-style
//             table gathers, masked vertical observability adds).
//             Compiled only when CMake's SCANPOWER_SIMD finds -mavx2;
//             selected only when the running CPU reports AVX2.
//             Supports W in {1, 2, 4, 8}.
//   Avx512 -- as Avx2 with 512-bit gate kernels; needs AVX-512 F/BW/DQ/VL.
//   Wide   -- the "device-shaped" backend: W in {16, 32} (1024/2048 bit
//             lanes per gate), structure-of-arrays value planes and a
//             uniform, branch-free per-gate inner loop (no 2-input
//             special cases) -- the loop shape a GPU port would use. Runs
//             on any CPU; CI cross-checks it against Scalar.
//
// Selection contract (the house determinism rule): every backend is
// bit-identical to Scalar for values, detection indices, rankings,
// suspect sets and observability/fill reductions at every (block width,
// thread count), so backend choice -- like pool size -- is result-neutral.
//
// `Auto` resolves to the best available backend for the block width; the
// SCANPOWER_FORCE_BACKEND environment variable (scalar/avx2/avx512/wide)
// overrides the detection for Auto-configured engines, falling back
// gracefully (never an error) when the forced backend is unavailable or
// does not support the width. An *explicitly* configured backend is a
// hard contract: resolve_backend throws Error if it is unavailable or
// width-incompatible.

#include <string>

namespace scanpower {

enum class SimBackend : int {
  Auto = 0,  ///< best available backend for the width (default)
  Scalar,    ///< portable reference word engine
  Avx2,      ///< x86-64 AVX2 kernels
  Avx512,    ///< x86-64 AVX-512 kernels
  Wide,      ///< device-shaped wide backend (W in {16, 32})
};

/// Stable lower-case name ("auto", "scalar", "avx2", "avx512", "wide").
const char* backend_name(SimBackend b);

/// Parses a backend name (as produced by backend_name); returns false on
/// an unknown name. Accepts "auto".
bool parse_backend(const std::string& s, SimBackend* out);

/// True if the backend's kernel TU was compiled with the required ISA
/// (CMake flag checks). Scalar and Wide are always compiled.
bool backend_compiled(SimBackend b);

/// True if the backend can run here: compiled and the CPU reports the
/// required features. Scalar and Wide are always available.
bool backend_available(SimBackend b);

/// Width support matrix: Scalar {1,2,4,8,16,32}, Avx2/Avx512 {1,2,4,8},
/// Wide {16,32}. Auto supports any valid width.
bool backend_supports_words(SimBackend b, int block_words);

/// Best available backend for a width, ignoring the environment:
/// W > 8 -> Wide; otherwise Avx512 > Avx2 > Scalar.
SimBackend detect_best_backend(int block_words);

/// Resolves a requested backend for a block width (see the selection
/// contract above). Never returns Auto; the result is always available
/// and supports `block_words`. Throws Error for an explicit request that
/// is unavailable or width-incompatible.
SimBackend resolve_backend(SimBackend req, int block_words);

}  // namespace scanpower
