#pragma once
// Per-backend kernel dispatch table for the packed engines.
//
// A SimKernels is a table of function pointers covering every hot loop of
// the packed stack; each backend (scalar / AVX2 / AVX-512 / wide) provides
// one table from its own translation unit, compiled with that backend's
// ISA flags (CMake sets per-source COMPILE_OPTIONS, so the rest of the
// library stays runnable on non-AVX hosts). All kernel implementations in
// the backend TUs live in anonymous namespaces: nothing compiled with
// -mavx* has external linkage, so no AVX code can be pulled into the
// portable build path by the linker.
//
// Every kernel is bit-identical to the scalar reference: the gate kernels
// are pure 64-bit bitwise logic (associativity is exact), the leakage
// gather preserves the per-lane, per-gate accumulation order, and the
// observability reduction is *defined* as a fixed four-accumulator lane
// interleave (see obs_reduce) in every backend including scalar, which is
// what lets the SIMD backends use vertical masked adds.

#include <cstddef>
#include <cstdint>

#include "atpg/sim_backend.hpp"
#include "netlist/netlist.hpp"

namespace scanpower {

using PatternWord = std::uint64_t;  // = packed_sim.hpp's PatternWord

/// Arguments of the sparse fault-cone sweep (the loop of
/// FaultConeEvaluator::propagate past the seeded site). All pointers are
/// borrowed; `good`/`faulty` are gate-major with `words` words per gate.
struct ConeSweepArgs {
  const Netlist* nl = nullptr;
  const PatternWord* good = nullptr;  ///< good-machine values
  PatternWord* faulty = nullptr;      ///< faulty-machine scratch
  std::uint8_t* touched = nullptr;    ///< per-gate "differs from good"
  const GateId* cone = nullptr;       ///< level-sorted cone, site included
  std::size_t cone_size = 0;
  GateId site = 0;                    ///< skipped by the sweep (pre-seeded)
  const PatternWord* mask = nullptr;  ///< `words` lane-validity words
  const std::uint8_t* observable = nullptr;  ///< per-gate observable flag
  /// Called for observable touched gates with a masked, nonzero
  /// difference block; returning false aborts the sweep.
  bool (*sink)(void* ctx, GateId g, const PatternWord* diff) = nullptr;
  void* sink_ctx = nullptr;
  GateId* active = nullptr;        ///< out: touched gates (capacity >= cone_size + 1)
  std::size_t active_count = 0;    ///< in: pre-seeded entries; out: total
  bool aborted = false;            ///< out: sink stopped the sweep
};

/// One backend's kernel table. Obtain through sim_kernels(); the `words`
/// arguments must be widths the backend supports (resolve_backend
/// guarantees this for engine-constructed simulators).
struct SimKernels {
  SimBackend backend;

  /// Full levelized 2-valued evaluation: values is gate-major storage of
  /// `words` words per gate with sources pre-set (BlockSimulator::eval).
  void (*eval_full)(const Netlist& nl, PatternWord* values, int words);

  /// Full levelized 3-valued (Kleene) evaluation over the p1/p0 planes
  /// (TernaryBlockSimulator::eval).
  void (*eval_ternary)(const Netlist& nl, PatternWord* p1, PatternWord* p0,
                       int words);

  /// Sparse cone sweep; see ConeSweepArgs.
  void (*cone_sweep)(ConeSweepArgs& a, int words);

  /// Per-lane leakage table gather over one 64-lane word:
  ///   leak64[i] += table[base | state(i)],  state bit j of lane i =
  ///   (src[j] >> i) & 1,  for i in [0, 64).
  /// Accumulation order per lane is the gate walk order (the caller
  /// iterates gates), so per-lane sums stay bit-identical to the scalar
  /// walk in every backend.
  void (*leak_gather)(const double* table, unsigned base,
                      const PatternWord* src, int k, double* leak64);

  /// Monte-Carlo observability reduction over one gate's block: over all
  /// lanes i (ascending, across `words` words) with bit i of v set and
  /// valid, accumulate leak[i] into acc[i & 3] and count the lanes; then
  ///   *s1 = ((acc[0] + acc[1]) + acc[2]) + acc[3].
  /// This fixed interleave is the reduction's definition in every backend
  /// (masked lanes contribute an exact +0.0 in the vector backends).
  void (*obs_reduce)(const PatternWord* v, const PatternWord* valid,
                     const double* leak, int words, double* s1,
                     std::uint32_t* c1);
};

/// Per-backend tables. Scalar and wide always exist; avx2/avx512 return
/// nullptr when their TU was compiled without the ISA (SCANPOWER_SIMD off,
/// non-x86 host, or the compiler lacks the flags).
const SimKernels* scalar_sim_kernels();
const SimKernels* wide_sim_kernels();
const SimKernels* avx2_sim_kernels();
const SimKernels* avx512_sim_kernels();

/// Table of a *resolved* backend (never Auto; must be compiled in).
const SimKernels& sim_kernels(SimBackend resolved);

}  // namespace scanpower
