// AVX2 backend. This TU is the only place AVX2 intrinsics (or code
// compiled with -mavx2) may live; CMake gives it per-source
// COMPILE_OPTIONS and everything below sits in an anonymous namespace, so
// no AVX2 code has external linkage and the portable build path can never
// pull it in. When the compiler does not provide __AVX2__ here (SIMD off,
// non-x86 host) the TU degrades to a nullptr accessor.
//
// Kernels:
//   eval_full / eval_ternary  -- 256-bit gate kernels for W = 4/8 (one or
//       two __m256i per gate block); W = 1/2 fall back to the generic
//       bodies recompiled in this TU. Pure bitwise -> bit-identical.
//   cone_sweep                -- generic body (sparse and branchy; the
//       win is in the full evaluations), recompiled with -mavx2.
//   leak_gather               -- per-lane state assembly with variable
//       shifts + vpgatherqpd, 4 lanes at a time; one add per lane keeps
//       the scalar accumulation order exactly.
//   obs_reduce                -- vertical masked adds into one __m256d
//       whose lane l IS acc[l] of the reduction's 4-accumulator
//       definition; masked lanes add an exact +0.0, the final fold runs
//       in the defined order. Bit-identical by construction.

#include "atpg/sim_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "atpg/packed_sim.hpp"
#include "util/assert.hpp"

namespace scanpower {
namespace {

#include "atpg/sim_kernels_impl.inc"

struct Ops256 {
  using V = __m256i;
  static constexpr int kWordsPerVec = 4;
  static V load(const PatternWord* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(PatternWord* p, V v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V zeros() { return _mm256_setzero_si256(); }
  static V ones() { return _mm256_set1_epi64x(-1); }
  static V vand(V a, V b) { return _mm256_and_si256(a, b); }
  static V vor(V a, V b) { return _mm256_or_si256(a, b); }
  static V vxor(V a, V b) { return _mm256_xor_si256(a, b); }
  static V vnot(V a) { return _mm256_xor_si256(a, ones()); }
  static V vandnot(V a, V b) { return _mm256_andnot_si256(a, b); }
};

#include "atpg/sim_kernels_vec.inc"

void eval_full(const Netlist& nl, PatternWord* values, int words) {
  switch (words) {
    case 1: eval_full_impl<1>(nl, values); break;
    case 2: eval_full_impl<2>(nl, values); break;
    case 4: eval_full_vec<Ops256, 1>(nl, values); break;
    case 8: eval_full_vec<Ops256, 2>(nl, values); break;
    default: SP_ASSERT(false, "avx2 backend: unsupported block width");
  }
}

void eval_ternary(const Netlist& nl, PatternWord* p1, PatternWord* p0,
                  int words) {
  switch (words) {
    case 1: eval_ternary_impl<1>(nl, p1, p0); break;
    case 2: eval_ternary_impl<2>(nl, p1, p0); break;
    case 4: eval_ternary_vec<Ops256, 1>(nl, p1, p0); break;
    case 8: eval_ternary_vec<Ops256, 2>(nl, p1, p0); break;
    default: SP_ASSERT(false, "avx2 backend: unsupported block width");
  }
}

void cone_sweep(ConeSweepArgs& a, int words) {
  dispatch_words<1u | 2u | 4u | 8u>(
      words, [&](auto w) { cone_sweep_impl<decltype(w)::value>(a); });
}

void leak_gather(const double* table, unsigned base, const PatternWord* src,
                 int k, double* leak64) {
  const __m256i lane0 = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i vbase = _mm256_set1_epi64x(static_cast<long long>(base));
  for (int i = 0; i < 64; i += 4) {
    const __m256i lanes = _mm256_add_epi64(lane0, _mm256_set1_epi64x(i));
    __m256i idx = vbase;
    for (int j = 0; j < k; ++j) {
      __m256i bits = _mm256_srlv_epi64(
          _mm256_set1_epi64x(static_cast<long long>(src[j])), lanes);
      bits = _mm256_and_si256(bits, one);
      idx = _mm256_or_si256(idx, _mm256_slli_epi64(bits, j));
    }
    const __m256d vals = _mm256_i64gather_pd(table, idx, 8);
    _mm256_storeu_pd(leak64 + i,
                     _mm256_add_pd(_mm256_loadu_pd(leak64 + i), vals));
  }
}

void obs_reduce(const PatternWord* v, const PatternWord* valid,
                const double* leak, int words, double* s1, std::uint32_t* c1) {
  const __m256i sel0 = _mm256_setr_epi64x(1, 2, 4, 8);
  __m256d acc = _mm256_setzero_pd();
  std::uint32_t cnt = 0;
  for (int w = 0; w < words; ++w) {
    const PatternWord bits = v[w] & valid[w];
    cnt += static_cast<std::uint32_t>(std::popcount(bits));
    if (bits == 0) continue;
    const double* const lw = leak + static_cast<std::size_t>(w) * 64;
    const __m256i vbits = _mm256_set1_epi64x(static_cast<long long>(bits));
    for (int i = 0; i < 64; i += 4) {
      const __m256i sel = _mm256_slli_epi64(sel0, i);
      const __m256d mask = _mm256_castsi256_pd(
          _mm256_cmpeq_epi64(_mm256_and_si256(vbits, sel), sel));
      acc = _mm256_add_pd(acc,
                          _mm256_and_pd(_mm256_loadu_pd(lw + i), mask));
    }
  }
  double a[4];
  _mm256_storeu_pd(a, acc);
  *s1 = ((a[0] + a[1]) + a[2]) + a[3];
  *c1 = cnt;
}

const SimKernels kTable = {
    SimBackend::Avx2, &eval_full,   &eval_ternary,
    &cone_sweep,      &leak_gather, &obs_reduce,
};

}  // namespace

const SimKernels* avx2_sim_kernels() { return &kTable; }

}  // namespace scanpower

#else  // !__AVX2__

namespace scanpower {
const SimKernels* avx2_sim_kernels() { return nullptr; }
}  // namespace scanpower

#endif
