// AVX-512 backend (needs F/BW/DQ/VL, i.e. the Skylake-X family subset).
// Same isolation rules as the AVX2 TU: everything is anonymous-namespace,
// per-source COMPILE_OPTIONS, nullptr accessor when not compiled in.
//
// W = 8 runs one 512-bit vector per gate block; W = 4 uses 256-bit ops
// (VL); W = 1/2 use the generic bodies. The leakage gather indexes 8
// lanes per vpgatherqpd. obs_reduce keeps the 4-accumulator *definition*
// of the reduction -- a 512-bit 8-lane accumulator would change the
// addition interleave and break bit-identity -- so it runs the same
// 256-bit masked-add kernel as AVX2 (with AVX-512 maskz loads).

#include "atpg/sim_kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "atpg/packed_sim.hpp"
#include "util/assert.hpp"

namespace scanpower {
namespace {

#include "atpg/sim_kernels_impl.inc"

struct Ops256 {
  using V = __m256i;
  static constexpr int kWordsPerVec = 4;
  static V load(const PatternWord* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(PatternWord* p, V v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V zeros() { return _mm256_setzero_si256(); }
  static V ones() { return _mm256_set1_epi64x(-1); }
  static V vand(V a, V b) { return _mm256_and_si256(a, b); }
  static V vor(V a, V b) { return _mm256_or_si256(a, b); }
  static V vxor(V a, V b) { return _mm256_xor_si256(a, b); }
  static V vnot(V a) { return _mm256_xor_si256(a, ones()); }
  static V vandnot(V a, V b) { return _mm256_andnot_si256(a, b); }
};

struct Ops512 {
  using V = __m512i;
  static constexpr int kWordsPerVec = 8;
  static V load(const PatternWord* p) { return _mm512_loadu_si512(p); }
  static void store(PatternWord* p, V v) { _mm512_storeu_si512(p, v); }
  static V zeros() { return _mm512_setzero_si512(); }
  static V ones() { return _mm512_set1_epi64(-1); }
  static V vand(V a, V b) { return _mm512_and_si512(a, b); }
  static V vor(V a, V b) { return _mm512_or_si512(a, b); }
  static V vxor(V a, V b) { return _mm512_xor_si512(a, b); }
  static V vnot(V a) { return _mm512_xor_si512(a, ones()); }
  static V vandnot(V a, V b) { return _mm512_andnot_si512(a, b); }
};

#include "atpg/sim_kernels_vec.inc"

void eval_full(const Netlist& nl, PatternWord* values, int words) {
  switch (words) {
    case 1: eval_full_impl<1>(nl, values); break;
    case 2: eval_full_impl<2>(nl, values); break;
    case 4: eval_full_vec<Ops256, 1>(nl, values); break;
    case 8: eval_full_vec<Ops512, 1>(nl, values); break;
    default: SP_ASSERT(false, "avx512 backend: unsupported block width");
  }
}

void eval_ternary(const Netlist& nl, PatternWord* p1, PatternWord* p0,
                  int words) {
  switch (words) {
    case 1: eval_ternary_impl<1>(nl, p1, p0); break;
    case 2: eval_ternary_impl<2>(nl, p1, p0); break;
    case 4: eval_ternary_vec<Ops256, 1>(nl, p1, p0); break;
    case 8: eval_ternary_vec<Ops512, 1>(nl, p1, p0); break;
    default: SP_ASSERT(false, "avx512 backend: unsupported block width");
  }
}

void cone_sweep(ConeSweepArgs& a, int words) {
  dispatch_words<1u | 2u | 4u | 8u>(
      words, [&](auto w) { cone_sweep_impl<decltype(w)::value>(a); });
}

void leak_gather(const double* table, unsigned base, const PatternWord* src,
                 int k, double* leak64) {
  const __m512i lane0 = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i vbase = _mm512_set1_epi64(static_cast<long long>(base));
  for (int i = 0; i < 64; i += 8) {
    const __m512i lanes = _mm512_add_epi64(lane0, _mm512_set1_epi64(i));
    __m512i idx = vbase;
    for (int j = 0; j < k; ++j) {
      __m512i bits = _mm512_srlv_epi64(
          _mm512_set1_epi64(static_cast<long long>(src[j])), lanes);
      bits = _mm512_and_si512(bits, one);
      idx = _mm512_or_si512(idx, _mm512_slli_epi64(bits, j));
    }
    const __m512d vals = _mm512_i64gather_pd(idx, table, 8);
    _mm512_storeu_pd(leak64 + i,
                     _mm512_add_pd(_mm512_loadu_pd(leak64 + i), vals));
  }
}

void obs_reduce(const PatternWord* v, const PatternWord* valid,
                const double* leak, int words, double* s1, std::uint32_t* c1) {
  __m256d acc = _mm256_setzero_pd();
  std::uint32_t cnt = 0;
  for (int w = 0; w < words; ++w) {
    const PatternWord bits = v[w] & valid[w];
    cnt += static_cast<std::uint32_t>(std::popcount(bits));
    if (bits == 0) continue;
    const double* const lw = leak + static_cast<std::size_t>(w) * 64;
    for (int i = 0; i < 64; i += 4) {
      const __mmask8 m = static_cast<__mmask8>((bits >> i) & 0xF);
      acc = _mm256_add_pd(acc, _mm256_maskz_loadu_pd(m, lw + i));
    }
  }
  double a[4];
  _mm256_storeu_pd(a, acc);
  *s1 = ((a[0] + a[1]) + a[2]) + a[3];
  *c1 = cnt;
}

const SimKernels kTable = {
    SimBackend::Avx512, &eval_full,   &eval_ternary,
    &cone_sweep,        &leak_gather, &obs_reduce,
};

}  // namespace

const SimKernels* avx512_sim_kernels() { return &kTable; }

}  // namespace scanpower

#else  // !AVX-512 F/BW/DQ/VL

namespace scanpower {
const SimKernels* avx512_sim_kernels() { return nullptr; }
}  // namespace scanpower

#endif
