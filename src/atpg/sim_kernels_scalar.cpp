// Scalar backend: the portable word engine, compiled with the project's
// baseline flags. This TU's kernels are the bit-exactness reference every
// other backend is cross-checked against (tests/test_backend.cpp).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "atpg/packed_sim.hpp"
#include "atpg/sim_kernels.hpp"
#include "util/assert.hpp"

namespace scanpower {
namespace {

#include "atpg/sim_kernels_impl.inc"

constexpr unsigned kWidths = 1u | 2u | 4u | 8u | 16u | 32u;

void eval_full(const Netlist& nl, PatternWord* values, int words) {
  dispatch_words<kWidths>(
      words, [&](auto w) { eval_full_impl<decltype(w)::value>(nl, values); });
}

void eval_ternary(const Netlist& nl, PatternWord* p1, PatternWord* p0,
                  int words) {
  dispatch_words<kWidths>(words, [&](auto w) {
    eval_ternary_impl<decltype(w)::value>(nl, p1, p0);
  });
}

void cone_sweep(ConeSweepArgs& a, int words) {
  dispatch_words<kWidths>(words,
                          [&](auto w) { cone_sweep_impl<decltype(w)::value>(a); });
}

const SimKernels kTable = {
    SimBackend::Scalar, &eval_full,       &eval_ternary,
    &cone_sweep,        &leak_gather_impl, &obs_reduce_impl,
};

}  // namespace

const SimKernels* scalar_sim_kernels() { return &kTable; }

}  // namespace scanpower
