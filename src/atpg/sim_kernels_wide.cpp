// Wide backend: the "device-shaped" engine. Blocks are W in {16, 32}
// words per gate (1024/2048 bit-lanes), stored as structure-of-arrays
// value planes, and the full evaluation walks every gate with ONE uniform,
// branch-free inner loop: inputs are XOR-inverted by a per-gate input mask
// and AND-accumulated, then the accumulator is XOR-inverted by an output
// mask (AND/NAND/OR/NOR/BUF/NOT all reduce to a mask pair by De Morgan;
// XOR/XNOR use the same shape with an XOR accumulator). No fanin-count
// special cases, no controlling-value early-outs -- the loop shape a GPU
// port would give one thread per word. Runs on any CPU; everything is
// 64-bit bitwise logic, so results are bit-identical to Scalar.
//
// The ternary evaluation, cone sweep and reductions reuse the shared
// generic bodies at W = 16/32 (instantiated here with internal linkage).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "atpg/packed_sim.hpp"
#include "atpg/sim_kernels.hpp"
#include "util/assert.hpp"

namespace scanpower {
namespace {

#include "atpg/sim_kernels_impl.inc"

constexpr unsigned kWidths = 16u | 32u;

/// Per-gate masks of the uniform AND/XOR-accumulate form.
struct GatePlan {
  PatternWord in_mask;   ///< XORed into every input word before accumulate
  PatternWord out_mask;  ///< XORed into the accumulator afterwards
  std::uint8_t mode;     ///< 0 = AND-accumulate, 1 = XOR-accumulate,
                         ///< 2 = mux blend, 3 = constant (out_mask = value)
};

GatePlan plan_gate(GateType t) {
  constexpr PatternWord kAll = ~PatternWord{0};
  switch (t) {
    case GateType::Const0: return {0, 0, 3};
    case GateType::Const1: return {0, kAll, 3};
    case GateType::Buf:    return {0, 0, 0};
    case GateType::Not:    return {0, kAll, 0};
    case GateType::And:    return {0, 0, 0};
    case GateType::Nand:   return {0, kAll, 0};
    case GateType::Or:     return {kAll, kAll, 0};   // ~(AND of ~inputs)
    case GateType::Nor:    return {kAll, 0, 0};
    case GateType::Xor:    return {0, 0, 1};
    case GateType::Xnor:   return {0, kAll, 1};
    case GateType::Mux:    return {0, 0, 2};
    case GateType::Input:
    case GateType::Dff:
      break;
  }
  SP_ASSERT(false, "topo_order contains a source");
  return {0, 0, 3};
}

template <int W>
void eval_full_wide(const Netlist& nl, PatternWord* vals) {
  const std::span<const GateType> types = nl.types_flat();
  const auto blk = [vals](GateId id) {
    return vals + static_cast<std::size_t>(id) * W;
  };
  PatternWord acc[W];
  for (GateId id : nl.topo_order()) {
    const GatePlan p = plan_gate(types[id]);
    const std::span<const GateId> fans = nl.fanin_span(id);
    PatternWord* const out = blk(id);
    if (p.mode == 0) {
      for (int w = 0; w < W; ++w) acc[w] = ~PatternWord{0};
      for (GateId fin : fans) {
        const PatternWord* f = blk(fin);
        for (int w = 0; w < W; ++w) acc[w] &= f[w] ^ p.in_mask;
      }
      for (int w = 0; w < W; ++w) out[w] = acc[w] ^ p.out_mask;
    } else if (p.mode == 1) {
      for (int w = 0; w < W; ++w) acc[w] = 0;
      for (GateId fin : fans) {
        const PatternWord* f = blk(fin);
        for (int w = 0; w < W; ++w) acc[w] ^= f[w];
      }
      for (int w = 0; w < W; ++w) out[w] = acc[w] ^ p.out_mask;
    } else if (p.mode == 2) {
      const PatternWord* s = blk(fans[0]);
      const PatternWord* a = blk(fans[1]);
      const PatternWord* b = blk(fans[2]);
      for (int w = 0; w < W; ++w) out[w] = (s[w] & b[w]) | (~s[w] & a[w]);
    } else {
      for (int w = 0; w < W; ++w) out[w] = p.out_mask;
    }
  }
}

void eval_full(const Netlist& nl, PatternWord* values, int words) {
  dispatch_words<kWidths>(
      words, [&](auto w) { eval_full_wide<decltype(w)::value>(nl, values); });
}

void eval_ternary(const Netlist& nl, PatternWord* p1, PatternWord* p0,
                  int words) {
  dispatch_words<kWidths>(words, [&](auto w) {
    eval_ternary_impl<decltype(w)::value>(nl, p1, p0);
  });
}

void cone_sweep(ConeSweepArgs& a, int words) {
  dispatch_words<kWidths>(words,
                          [&](auto w) { cone_sweep_impl<decltype(w)::value>(a); });
}

const SimKernels kTable = {
    SimBackend::Wide, &eval_full,       &eval_ternary,
    &cone_sweep,      &leak_gather_impl, &obs_reduce_impl,
};

}  // namespace

const SimKernels* wide_sim_kernels() { return &kTable; }

}  // namespace scanpower
