#include "atpg/tpg.hpp"

#include <algorithm>

#include "atpg/fault_sim.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scanpower {

TestSet generate_tests(const Netlist& nl, const TpgOptions& opts) {
  Rng rng(opts.seed);
  const std::vector<Fault> faults = collapse_faults(nl);
  FaultSimulator fsim(nl, opts.fault_sim);
  // One candidate batch fills one packed block (64 patterns per word).
  const std::size_t block_patterns =
      static_cast<std::size_t>(fsim.options().block_words) * 64;

  TestSet ts;
  ts.seed = opts.seed;
  ts.total_faults = faults.size();

  std::vector<bool> detected(faults.size(), false);
  std::size_t num_detected = 0;

  // ---- Phase 1: random patterns with fault dropping -------------------
  int dry_batches = 0;
  for (int batch = 0;
       batch < opts.max_random_batches &&
       dry_batches < opts.unproductive_batch_limit &&
       num_detected < faults.size();
       ++batch) {
    std::vector<TestPattern> cand;
    cand.reserve(block_patterns);
    for (std::size_t i = 0; i < block_patterns; ++i) {
      cand.push_back(random_pattern(nl, rng));
    }
    const FaultSimResult res = fsim.run(cand, faults, &detected);
    if (res.num_detected == 0) {
      ++dry_batches;
      continue;
    }
    dry_batches = 0;
    num_detected += res.num_detected;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (res.detected[fi]) detected[fi] = true;
    }
    for (std::size_t p = 0; p < cand.size(); ++p) {
      if (res.new_detects_per_pattern[p] > 0) {
        ts.patterns.push_back(std::move(cand[p]));
      }
    }
  }
  SP_LOG_INFO(strprintf("tpg[%s]: random phase %zu/%zu faults, %zu patterns",
                     nl.name().c_str(), num_detected, faults.size(),
                     ts.patterns.size()));

  // ---- Phase 2: PODEM top-off -----------------------------------------
  // Generated patterns are fault-simulated in block-wide batches: collateral
  // dropping within a batch is deferred (a handful of redundant PODEM
  // calls), which is far cheaper than one fault-sim pass per pattern on
  // large fault lists.
  PodemOptions popts;
  popts.backtrack_limit = opts.podem_backtrack_limit;
  Podem podem(nl, popts);
  std::vector<TestPattern> batch;
  auto flush_batch = [&]() {
    if (batch.empty()) return;
    const FaultSimResult res = fsim.run(batch, faults, &detected);
    num_detected += res.num_detected;
    for (std::size_t k = 0; k < faults.size(); ++k) {
      if (res.detected[k]) detected[k] = true;
    }
    for (TestPattern& p : batch) ts.patterns.push_back(std::move(p));
    batch.clear();
  };
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (detected[fi]) continue;
    const PodemResult pr = podem.generate(faults[fi]);
    if (pr.status == PodemStatus::Untestable) {
      ts.untestable_faults++;
      continue;
    }
    if (pr.status == PodemStatus::Aborted) {
      ts.aborted_faults++;
      continue;
    }
    TestPattern pat = pr.pattern;
    pat.random_fill(rng);
    batch.push_back(std::move(pat));
    if (batch.size() == block_patterns) flush_batch();
  }
  flush_batch();
  SP_LOG_INFO(strprintf(
      "tpg[%s]: after PODEM %zu/%zu faults (%zu untestable, %zu aborted), "
      "%zu patterns",
      nl.name().c_str(), num_detected, faults.size(), ts.untestable_faults,
      ts.aborted_faults, ts.patterns.size()));

  // ---- Phase 3: reverse-order compaction -------------------------------
  if (opts.compact && !ts.patterns.empty()) {
    std::vector<TestPattern> reversed(ts.patterns.rbegin(),
                                      ts.patterns.rend());
    const FaultSimResult res = fsim.run(reversed, faults);
    std::vector<TestPattern> kept;
    for (std::size_t p = 0; p < reversed.size(); ++p) {
      if (res.new_detects_per_pattern[p] > 0) {
        kept.push_back(std::move(reversed[p]));
      }
    }
    ts.patterns = std::move(kept);
  }

  // Final coverage accounting on the compacted set.
  const FaultSimResult final_res = fsim.run(ts.patterns, faults);
  ts.detected_faults = final_res.num_detected;
  SP_LOG_INFO(strprintf("tpg[%s]: final %zu patterns, coverage %.2f%%",
                     nl.name().c_str(), ts.patterns.size(),
                     100.0 * ts.fault_coverage()));
  return ts;
}

}  // namespace scanpower
