#pragma once
// Deterministic test-set generation (substitute for ATOM [Hamzaoglu &
// Patel, VTS'98], which the paper uses to produce its test vectors).
//
// Flow: collapsed fault list -> random phase with fault dropping ->
// PODEM top-off for the remaining faults -> reverse-order fault-sim
// compaction. Produces compact, fully specified pattern sets with the
// coverage statistics reported alongside every experiment.

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/pattern.hpp"
#include "atpg/podem.hpp"
#include "netlist/netlist.hpp"

namespace scanpower {

struct TpgOptions {
  std::uint64_t seed = 0xa70a70a7ULL;
  int max_random_batches = 64;      ///< random batches of one fault-sim block
  int unproductive_batch_limit = 2; ///< stop random phase after N dry batches
  int podem_backtrack_limit = 4000;
  bool compact = true;              ///< reverse-order compaction pass
  FaultSimOptions fault_sim;        ///< packed-block width / worker threads
};

TestSet generate_tests(const Netlist& nl, const TpgOptions& opts = {});

}  // namespace scanpower
