#include "benchgen/benchgen.hpp"

#include <algorithm>

#include "netlist/bench_io.hpp"
#include "netlist/builder.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scanpower {

const char* s27_bench_text() {
  // The genuine ISCAS89 s27 netlist.
  return R"(# s27 -- ISCAS89 benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";
}

Netlist make_s27() { return parse_bench_string(s27_bench_text(), "s27"); }

namespace {

/// Gate-type menu for synthetic circuits, roughly matching ISCAS89 usage:
/// 2-input NAND/NOR dominate, with AND/OR/NOT sprinkled in. Everything is
/// later technology-mapped anyway.
struct TypeChoice {
  GateType type;
  int min_w;
  int max_w;
  int weight;
};
constexpr TypeChoice kMenu[] = {
    {GateType::Nand, 2, 3, 28}, {GateType::Nor, 2, 3, 22},
    {GateType::And, 2, 4, 16},  {GateType::Or, 2, 4, 14},
    {GateType::Not, 1, 1, 14},  {GateType::Nand, 4, 4, 3},
    {GateType::Nor, 4, 4, 3},
};

}  // namespace

Netlist generate_synthetic(const SynthProfile& profile) {
  SP_CHECK(profile.num_pi >= 1 && profile.num_ff >= 1 && profile.num_po >= 1,
           "generate_synthetic: profile needs at least one PI/PO/FF");
  SP_CHECK(profile.num_gates >= profile.num_ff + profile.num_po,
           "generate_synthetic: too few gates for the requested profile");
  Rng rng(profile.seed);

  // Signals are indexed in creation order; fanins always point backwards,
  // which guarantees an acyclic combinational part. Levels are tracked so
  // the logic depth follows the published circuit's profile: each gate
  // draws a target level and only consumes shallower signals.
  struct Sig {
    std::string name;
    int fanout = 0;
    int level = 0;
    std::uint64_t support = 0;  ///< hashed source-support bitset
  };
  std::vector<Sig> sigs;
  std::vector<std::string> pi_names;
  std::vector<std::string> ff_names;
  for (int i = 0; i < profile.num_pi; ++i) {
    pi_names.push_back(strprintf("I%d", i));
    sigs.push_back({pi_names.back(), 0, 0,
                    1ull << (sigs.size() % 64)});
  }
  for (int i = 0; i < profile.num_ff; ++i) {
    ff_names.push_back(strprintf("F%d", i));
    sigs.push_back({ff_names.back(), 0, 0,
                    1ull << (sigs.size() % 64)});
  }
  const int max_depth = std::max(2, profile.max_depth);

  int total_weight = 0;
  for (const TypeChoice& c : kMenu) total_weight += c.weight;

  struct GateSpec {
    GateType type;
    std::string name;
    std::vector<std::string> fanins;
  };
  std::vector<GateSpec> gates;

  // Fanin selection: mostly "recent" signals (builds structure), sometimes
  // a uniform draw (builds reconvergence and wide fanout); signals with no
  // fanout yet get priority so little logic dangles. `level_cap` keeps the
  // resulting gate at or below its target level, and `support_so_far`
  // steers away from fanins that add no new source support (heavily
  // overlapping reconvergence breeds untestable redundancy).
  auto pick_fanin = [&](std::vector<std::size_t>& used, int level_cap,
                        std::uint64_t support_so_far) -> std::size_t {
    for (int attempt = 0; attempt < 12; ++attempt) {
      std::size_t idx;
      const double roll = rng.next_double();
      if (roll < 0.15) {
        // Rescue an undriven signal (reservoir over the last 64 unused).
        std::size_t best = sigs.size();
        std::size_t seen = 0;
        for (std::size_t k = sigs.size(); k-- > 0 && seen < 64;) {
          if (sigs[k].fanout == 0 && sigs[k].level < level_cap) {
            ++seen;
            if (rng.next_below(seen) == 0) best = k;
          }
        }
        idx = best != sigs.size() ? best : rng.next_below(sigs.size());
      } else if (roll < 0.70) {
        // Locality: among the most recent ~48 signals.
        const std::size_t window = std::min<std::size_t>(48, sigs.size());
        idx = sigs.size() - 1 - rng.next_below(window);
      } else {
        idx = rng.next_below(sigs.size());
      }
      if (sigs[idx].level >= level_cap) continue;
      // First attempts insist on contributing fresh support bits.
      if (attempt < 6 && support_so_far != 0 &&
          (sigs[idx].support & ~support_so_far) == 0) {
        continue;
      }
      if (std::find(used.begin(), used.end(), idx) == used.end()) {
        used.push_back(idx);
        return idx;
      }
    }
    // Fallback: a fresh source (level 0 always satisfies the cap).
    const std::size_t n_src =
        static_cast<std::size_t>(profile.num_pi + profile.num_ff);
    for (int attempt = 0; attempt < 16; ++attempt) {
      const std::size_t idx = rng.next_below(n_src);
      if (std::find(used.begin(), used.end(), idx) == used.end()) {
        used.push_back(idx);
        return idx;
      }
    }
    // Last resort: linear scan for any unused shallow signal.
    for (std::size_t idx = 0; idx < sigs.size(); ++idx) {
      if (sigs[idx].level < level_cap &&
          std::find(used.begin(), used.end(), idx) == used.end()) {
        used.push_back(idx);
        return idx;
      }
    }
    SP_ASSERT(false, "generate_synthetic: no distinct fanin available");
  };

  for (int g = 0; g < profile.num_gates; ++g) {
    int roll = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(total_weight)));
    const TypeChoice* choice = &kMenu[0];
    for (const TypeChoice& c : kMenu) {
      roll -= c.weight;
      if (roll < 0) {
        choice = &c;
        break;
      }
    }
    int width = choice->min_w +
                static_cast<int>(rng.next_below(
                    static_cast<std::uint64_t>(choice->max_w - choice->min_w + 1)));
    width = std::min<int>(width, static_cast<int>(sigs.size()));
    GateType type = choice->type;
    if (width == 1 && type != GateType::Not) type = GateType::Not;

    // Target level drawn uniformly: produces a roughly even distribution
    // of gates across levels up to the profile depth.
    const int target_level =
        1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_depth)));
    GateSpec spec;
    spec.type = type;
    spec.name = strprintf("N%d", g);
    std::vector<std::size_t> used;
    int level = 0;
    std::uint64_t support = 0;
    for (int k = 0; k < width; ++k) {
      const std::size_t idx = pick_fanin(used, target_level, support);
      sigs[idx].fanout++;
      level = std::max(level, sigs[idx].level + 1);
      support |= sigs[idx].support;
      spec.fanins.push_back(sigs[idx].name);
    }
    gates.push_back(std::move(spec));
    sigs.push_back({gates.back().name, 0, level, support});
  }

  const std::size_t first_gate_sig =
      static_cast<std::size_t>(profile.num_pi + profile.num_ff);

  // Drain pass: a dangling gate output becomes an extra fanin of some
  // later, deeper gate (function-preserving for the consumer's level; the
  // library allows up to 4-input cells). Whatever cannot be drained is
  // offered to the PO/FF-D sinks below.
  {
    std::vector<std::size_t> dangling;
    for (std::size_t k = first_gate_sig; k < sigs.size(); ++k) {
      if (sigs[k].fanout == 0) dangling.push_back(k);
    }
    // Keep enough dangling signals to feed the sinks.
    const std::size_t keep =
        static_cast<std::size_t>(profile.num_po + profile.num_ff);
    std::size_t to_drain = dangling.size() > keep ? dangling.size() - keep : 0;
    for (std::size_t k : dangling) {
      if (to_drain == 0) break;
      bool drained = false;
      for (std::size_t g = k - first_gate_sig + 1;
           g < gates.size() && !drained; ++g) {
        GateSpec& spec = gates[g];
        const std::size_t consumer_sig = first_gate_sig + g;
        if (spec.fanins.size() >= 4) continue;
        if (sigs[consumer_sig].level <= sigs[k].level) continue;
        if (spec.type == GateType::Not || spec.type == GateType::Buf) continue;
        spec.fanins.push_back(sigs[k].name);
        sigs[k].fanout++;
        drained = true;
        --to_drain;
      }
    }
  }

  // Sinks: FF D inputs and POs draw from undriven signals first so no
  // logic dangles, then random gate outputs (skipping sources for POs to
  // keep them interesting).
  std::vector<std::size_t> undriven;
  for (std::size_t k = first_gate_sig; k < sigs.size(); ++k) {
    if (sigs[k].fanout == 0) undriven.push_back(k);
  }
  rng.shuffle(undriven);

  auto draw_sink_source = [&]() -> std::size_t {
    if (!undriven.empty()) {
      const std::size_t idx = undriven.back();
      undriven.pop_back();
      return idx;
    }
    return first_gate_sig + rng.next_below(sigs.size() - first_gate_sig);
  };

  std::vector<std::string> ff_d(static_cast<std::size_t>(profile.num_ff));
  for (auto& d : ff_d) d = sigs[draw_sink_source()].name;
  // POs must be distinct signals (duplicates collapse when marked).
  std::vector<std::string> po;
  std::vector<std::uint8_t> is_po(sigs.size(), 0);
  while (po.size() < static_cast<std::size_t>(profile.num_po)) {
    std::size_t idx = draw_sink_source();
    if (is_po[idx]) {
      // Linear probe for the next free gate signal.
      for (std::size_t k = 0; k < sigs.size(); ++k) {
        idx = first_gate_sig + (idx + k - first_gate_sig + 1) %
                                   (sigs.size() - first_gate_sig);
        if (!is_po[idx]) break;
      }
    }
    SP_CHECK(!is_po[idx], "generate_synthetic: not enough signals for POs");
    is_po[idx] = 1;
    po.push_back(sigs[idx].name);
  }

  // Assemble.
  NetlistBuilder builder(profile.name);
  for (const std::string& n : pi_names) builder.add_input(n);
  for (int i = 0; i < profile.num_ff; ++i) {
    builder.add_gate(GateType::Dff, ff_names[static_cast<std::size_t>(i)],
                     {ff_d[static_cast<std::size_t>(i)]});
  }
  for (const GateSpec& g : gates) builder.add_gate(g.type, g.name, g.fanins);
  for (const std::string& p : po) builder.add_output(p);
  return builder.link();
}

Netlist make_iscas89_like(const std::string& name) {
  for (const SynthProfile& p : iscas89_profiles()) {
    if (p.name == name) return generate_synthetic(p);
  }
  throw Error("make_iscas89_like: unknown circuit " + name);
}

Netlist make_circuit(const std::string& name) {
  if (name == "s27") return make_s27();
  return make_iscas89_like(name);
}

}  // namespace scanpower
