#pragma once
// Benchmark circuits.
//
// The paper evaluates on ISCAS89 netlists. The genuine s27 is embedded
// for tests; the Table-I circuits (s344..s9234) are *synthesized* by a
// seeded generator that reproduces each circuit's published profile
// (PI/PO/FF/gate counts) with realistic fanout distribution and logic
// depth. This substitution is recorded in DESIGN.md: all algorithms
// consume only the gate-level graph, so matching the structural profile
// preserves the experiment's shape. Synthetic circuits carry a "*"
// wherever experiment tables print their names.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace scanpower {

/// The genuine ISCAS89 s27 benchmark (4 PI, 1 PO, 3 FF, 10 gates).
Netlist make_s27();

/// Raw .bench text of s27 (for parser tests).
const char* s27_bench_text();

struct SynthProfile {
  std::string name;   ///< e.g. "s344"
  int num_pi = 4;
  int num_po = 4;
  int num_ff = 4;
  int num_gates = 100;  ///< combinational gates (inverters included)
  std::uint64_t seed = 1;
  /// Target logic depth (levels). Matches the published circuit's depth;
  /// keeping it realistic also keeps the fault universe testable (very
  /// deep random logic over few sources is mostly redundant).
  int max_depth = 20;
};

/// Generates a random sequential circuit matching the profile. Output is
/// deterministic in the seed. The circuit is guaranteed acyclic in its
/// combinational part, fully driven, and free of dangling logic (every
/// gate reaches a PO or a flip-flop).
Netlist generate_synthetic(const SynthProfile& profile);

/// Published profiles for the 12 Table-I ISCAS89 circuits, with fixed
/// seeds.
const std::vector<SynthProfile>& iscas89_profiles();

/// Looks up `name` ("s344", ...) in iscas89_profiles() and generates it.
/// Throws Error for unknown names.
Netlist make_iscas89_like(const std::string& name);

/// Convenience: "s27" returns the genuine netlist, anything else goes
/// through make_iscas89_like().
Netlist make_circuit(const std::string& name);

}  // namespace scanpower
