#include "benchgen/benchgen.hpp"

namespace scanpower {

// Published structural profiles of the twelve ISCAS89 circuits used in
// Table I of the paper (PI/PO/FF/gate counts and logic depths from the
// benchmark distribution). Seeds are fixed so every experiment
// regenerates identical circuits.
const std::vector<SynthProfile>& iscas89_profiles() {
  static const std::vector<SynthProfile> profiles = {
      {"s344", 9, 11, 15, 160, 0x5344'0001ULL, 20},
      {"s382", 3, 6, 21, 158, 0x5382'0001ULL, 9},
      {"s444", 3, 6, 21, 181, 0x5444'0001ULL, 11},
      {"s510", 19, 7, 6, 211, 0x5510'0001ULL, 12},
      {"s641", 35, 24, 19, 379, 0x5641'0001ULL, 24},
      {"s713", 35, 23, 19, 393, 0x5713'0001ULL, 26},
      {"s1196", 14, 14, 18, 529, 0x51196'001ULL, 24},
      {"s1238", 14, 14, 18, 508, 0x51238'001ULL, 22},
      {"s1423", 17, 5, 74, 657, 0x51423'001ULL, 30},
      {"s1494", 8, 19, 6, 647, 0x51494'001ULL, 17},
      {"s5378", 35, 49, 179, 2779, 0x55378'001ULL, 25},
      {"s9234", 36, 39, 211, 5597, 0x59234'001ULL, 28},
  };
  return profiles;
}

}  // namespace scanpower
