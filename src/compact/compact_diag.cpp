#include "compact/compact_diag.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace scanpower {

namespace {

/// Structural validation shared by diagnose() and diagnose_with(): the
/// log must cover the applied pattern set and be internally consistent
/// before any plan/signature work is spent on it.
void check_signature_log(std::span<const TestPattern> patterns,
                         const SignatureLog& log) {
  SP_CHECK(log.num_patterns == patterns.size(),
           "diagnose: signature log covers a different pattern count");
  SP_CHECK(log.num_windows() == log.misr.num_windows(patterns.size()) &&
               log.observed.size() == log.expected.size(),
           "diagnose: malformed signature log");
}

}  // namespace

/// Per-worker mutable state for the parallel candidate sweep. Each
/// candidate's predicted response diff is collected into `diff` (only
/// rows the cone sweep actually reached are written, tracked in `dirty`
/// so clearing is sparse), compacted into `diff_sigs`, and matched
/// against the log's window signatures.
struct SignatureDiagnoser::Worker {
  FaultConeEvaluator eval;
  std::vector<PatternWord> diff;          ///< num_points * words_per_point
  std::vector<std::uint32_t> dirty;       ///< rows written for this candidate
  std::vector<std::uint8_t> dirty_mark;   ///< per row
  std::vector<std::uint64_t> diff_sigs;   ///< per window
  std::unique_ptr<BlockSimulator> stream; ///< streaming good machine (only
                                          ///< when blocks are not cached)
};

SignatureDiagnoser::SignatureDiagnoser(const Netlist& nl, DiagnosisOptions opts)
    : nl_(&nl), opts_(opts) {
  SP_CHECK(nl.finalized(), "SignatureDiagnoser requires a finalized netlist");
  SP_CHECK(is_valid_block_words(opts_.block_words),
           "diagnose: block_words must be 1, 2, 4, 8, 16 or 32");
  opts_.num_threads = ThreadPool::resolve_threads(opts_.num_threads);
  owned_points_ = std::make_unique<ObservationPoints>(nl);
  owned_cones_ = std::make_unique<ObservationConeCache>(nl, *owned_points_);
  owned_goods_ = std::make_unique<GoodBlockCache>();
  owned_pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
  points_ = owned_points_.get();
  cones_ = owned_cones_.get();
  goods_ = owned_goods_.get();
  pool_ = owned_pool_.get();
  workers_.resize(static_cast<std::size_t>(pool_->size()));
  for (auto& w : workers_) {
    w = std::make_unique<Worker>();
    w->eval.init(nl, opts_.block_words, opts_.backend);
  }
}

SignatureDiagnoser::SignatureDiagnoser(const Netlist& nl, DiagnosisOptions opts,
                                       ThreadPool& pool,
                                       const ObservationPoints& points,
                                       ObservationConeCache& cones,
                                       GoodBlockCache& goods)
    : nl_(&nl), opts_(opts), points_(&points), cones_(&cones), goods_(&goods),
      pool_(&pool) {
  SP_CHECK(nl.finalized(), "SignatureDiagnoser requires a finalized netlist");
  SP_CHECK(is_valid_block_words(opts_.block_words),
           "diagnose: block_words must be 1, 2, 4, 8, 16 or 32");
  opts_.num_threads = pool.size();
  workers_.resize(static_cast<std::size_t>(pool_->size()));
  for (auto& w : workers_) {
    w = std::make_unique<Worker>();
    w->eval.init(nl, opts_.block_words, opts_.backend);
  }
}

SignatureDiagnoser::~SignatureDiagnoser() = default;

void SignatureDiagnoser::ensure_goods(std::span<const TestPattern> patterns) {
  if (owned_goods_) {
    goods_->bind(*nl_, patterns, opts_.block_words,
                 GoodBlockCache::kDefaultMaxCachedBlocks, opts_.backend);
    return;
  }
  SP_CHECK(goods_->bound_to(patterns, opts_.block_words),
           "diagnose: the shared good-block cache is bound to a different "
           "pattern set (bind the session to these patterns first)");
}

std::vector<std::uint32_t> SignatureDiagnoser::prune_candidates(
    std::span<const Fault> faults, const SignatureLog& log,
    const XMaskPlan& plan) {
  const Netlist& nl = *nl_;
  // A failing window names no failing point, so the candidate must lie in
  // the union of every unmasked point's cone for that window. Distinct
  // unmasked sets are deduplicated before intersecting; without X-masking
  // every failing window shares the full point set and the union is built
  // once.
  std::vector<std::vector<std::uint32_t>> op_sets;
  for (std::size_t w = 0; w < log.num_windows(); ++w) {
    if (!log.window_fails(w)) continue;
    std::vector<std::uint32_t> ops;
    for (std::size_t op = 0; op < points_->size(); ++op) {
      if (!plan.masked(op, w)) ops.push_back(static_cast<std::uint32_t>(op));
    }
    op_sets.push_back(std::move(ops));
  }
  std::sort(op_sets.begin(), op_sets.end());
  op_sets.erase(std::unique(op_sets.begin(), op_sets.end()), op_sets.end());

  return prune_by_cone_unions(nl, *cones_, faults, op_sets);
}

template <int W>
void SignatureDiagnoser::score_candidates(
    std::span<const TestPattern> patterns, std::span<const Fault> faults,
    std::span<const std::uint32_t> candidates, const SignatureLog& log,
    const XMaskPlan& plan, const MisrCompactor& compactor,
    std::vector<CandidateScore>& scores) {
  const Netlist& nl = *nl_;
  const GoodBlockCache& goods = *goods_;
  const std::size_t lanes = static_cast<std::size_t>(W) * 64;
  const std::size_t nblocks = goods.num_blocks();
  const std::size_t wpp = (patterns.size() + 63) / 64;
  const std::size_t nwin = log.num_windows();
  const int num_workers = pool_->size();

  std::vector<std::uint64_t> obs_diff(nwin);
  std::uint64_t num_failing = 0;
  for (std::size_t w = 0; w < nwin; ++w) {
    obs_diff[w] = log.observed[w] ^ log.expected[w];
    if (obs_diff[w] != 0) ++num_failing;
  }

  // Candidates round-robin across workers: each score slot has exactly
  // one writer, and a candidate's counters depend only on its own full
  // diff, so the ranking is bit-identical for every (block width, thread
  // count) configuration. Good-machine blocks come from the shared cache;
  // past its cap each worker streams them through its own simulator (the
  // values are identical either way).
  pool_->run_on_all([&](int t) {
    Worker& wk = *workers_[static_cast<std::size_t>(t)];
    wk.diff.assign(points_->size() * wpp, 0);
    wk.dirty.clear();
    wk.dirty_mark.assign(points_->size(), 0);
    wk.diff_sigs.assign(nwin, 0);
    if (!goods.cached() && !wk.stream) {
      wk.stream = std::make_unique<BlockSimulator>(nl, W, opts_.backend);
    }
    for (std::size_t ci = static_cast<std::size_t>(t); ci < candidates.size();
         ci += static_cast<std::size_t>(num_workers)) {
      CandidateScore& sc = scores[ci];
      const Fault& f = faults[candidates[ci]];
      // A D-branch fault sinks its DFF gate id as the capture branch; a
      // Q-stem fault sinks the same id meaning the Q net (read by
      // downstream points).
      const bool d_branch = f.pin >= 0 && nl.type(f.gate) == GateType::Dff;
      bool any = false;
      for (std::size_t b = 0; b < nblocks; ++b) {
        const std::size_t base = b * lanes;
        const std::size_t batch = std::min(lanes, patterns.size() - base);
        const BlockSimulator* good;
        if (goods.cached()) {
          good = &goods.block(b);
        } else {
          goods.stream(b, *wk.stream);
          good = wk.stream.get();
        }
        const PackedBlock<W> mask = lane_validity_mask<W>(batch);
        const std::size_t word0 = base / 64;
        const std::size_t nwords = (batch + 63) / 64;
        wk.eval.propagate<W>(
            *good, f, mask, points_->observable(),
            [&](GateId gate, const PatternWord* diff) {
              const auto record = [&](std::uint32_t op) {
                PatternWord* row = wk.diff.data() + op * wpp + word0;
                for (std::size_t w = 0; w < nwords; ++w) row[w] = diff[w];
                if (!wk.dirty_mark[op]) {
                  wk.dirty_mark[op] = 1;
                  wk.dirty.push_back(op);
                }
                any = true;
              };
              if (d_branch && gate == f.gate) {
                record(static_cast<std::uint32_t>(points_->point_of_dff(gate)));
              } else {
                for (std::uint32_t op : points_->points_of_gate(gate)) {
                  record(op);
                }
              }
            });
      }
      if (!any) {
        // Unexcited candidate: predicts every window passing.
        sc.tfsp = num_failing;
        continue;
      }
      compactor.compact_rows(wk.diff, points_->size(), patterns.size(), &plan,
                             wk.diff_sigs);
      for (std::size_t w = 0; w < nwin; ++w) {
        const std::uint64_t d = wk.diff_sigs[w];
        if (obs_diff[w] != 0) {
          if (d == obs_diff[w]) {
            ++sc.tfsf;
          } else if (d == 0) {
            ++sc.tfsp;
          } else {
            ++sc.tfsp;  // fails the window, but with the wrong signature:
            ++sc.tpsf;  // unexplained observation AND a misprediction
          }
        } else if (d != 0) {
          ++sc.tpsf;
        }
      }
      for (std::uint32_t op : wk.dirty) {
        PatternWord* row = wk.diff.data() + op * wpp;
        std::fill(row, row + wpp, 0);
        wk.dirty_mark[op] = 0;
      }
      wk.dirty.clear();
    }
  });
}

DiagnosisResult SignatureDiagnoser::diagnose(
    std::span<const TestPattern> patterns, std::span<const Fault> faults,
    const SignatureLog& log) {
  check_signature_log(patterns, log);

  // Rebuild the X-mask plan and the expected signatures from the good
  // machine -- the per-call state a ScanSession caches per MISR
  // configuration and feeds to diagnose_with() directly.
  const MisrCompactor compactor(log.misr, opts_.block_words);
  const XMaskPlan plan(*nl_, *points_, patterns, log.misr.window,
                       opts_.block_words, opts_.backend);
  const std::vector<TestPattern> filled = zero_filled_patterns(patterns);
  const std::span<const TestPattern> sim_patterns =
      filled.empty() ? patterns : std::span<const TestPattern>(filled);
  ResponseCapture capture(*nl_, opts_.block_words, opts_.backend);
  const ResponseMatrix good = capture.capture_good(sim_patterns);
  const std::vector<std::uint64_t> expected = compactor.compact(good, &plan);

  return diagnose_with(sim_patterns, faults, log, plan, expected);
}

DiagnosisResult SignatureDiagnoser::diagnose_with(
    std::span<const TestPattern> patterns, std::span<const Fault> faults,
    const SignatureLog& log, const XMaskPlan& plan,
    std::span<const std::uint64_t> expected) {
  check_signature_log(patterns, log);
  // A mismatch between the log's expected signatures and the good machine
  // means the log was recorded for different patterns or a different MISR
  // configuration, which would silently wreck every score.
  SP_CHECK(std::equal(expected.begin(), expected.end(), log.expected.begin(),
                      log.expected.end()),
           "diagnose: signature log's expected signatures do not match the "
           "good machine (wrong pattern set or MISR configuration?)");
  ensure_goods(patterns);

  Telemetry* const telem = opts_.telemetry;
  DiagnosisResult res;
  std::uint64_t total_us = 0;
  std::uint64_t cone_h0 = 0, cone_m0 = 0;
  if constexpr (kTelemetryEnabled) {
    cone_h0 = cones_->hits();
    cone_m0 = cones_->misses();
  }
  {
    TraceSpan span_all(telem, "compact_diagnose", 0, CounterId::kCount,
                       &total_us);
    res.num_faults = faults.size();
    res.num_windows = log.num_windows();
    res.num_failing_windows = log.num_failing_windows();
    res.num_failures = res.num_failing_windows;
    res.num_masked = plan.num_masked();

    const MisrCompactor compactor(log.misr, opts_.block_words);

    std::vector<std::uint32_t> candidates;
    {
      TraceSpan span(telem, "prune", 0, CounterId::kDiagPruneUs,
                     &res.stats.prune_us);
      if (opts_.cone_pruning) {
        candidates = prune_candidates(faults, log, plan);
      } else {
        candidates.resize(faults.size());
        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
          candidates[fi] = static_cast<std::uint32_t>(fi);
        }
      }
    }
    res.num_candidates = candidates.size();

    std::vector<CandidateScore> scores(candidates.size());
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      scores[ci].fault = faults[candidates[ci]];
      scores[ci].fault_index = candidates[ci];
    }

    {
      TraceSpan span(telem, "score", 0, CounterId::kDiagScoreUs,
                     &res.stats.score_us);
      switch (opts_.block_words) {
        case 1: score_candidates<1>(patterns, faults, candidates, log, plan, compactor, scores); break;
        case 2: score_candidates<2>(patterns, faults, candidates, log, plan, compactor, scores); break;
        case 4: score_candidates<4>(patterns, faults, candidates, log, plan, compactor, scores); break;
        case 8: score_candidates<8>(patterns, faults, candidates, log, plan, compactor, scores); break;
        case 16: score_candidates<16>(patterns, faults, candidates, log, plan, compactor, scores); break;
        case 32: score_candidates<32>(patterns, faults, candidates, log, plan, compactor, scores); break;
        default: SP_ASSERT(false, "invalid block width");
      }
    }

    std::sort(scores.begin(), scores.end());
    res.ranked = std::move(scores);

    if constexpr (kTelemetryEnabled) {
      FaultConeEvaluator::SweepStats tot;
      for (std::size_t t = 0; t < workers_.size(); ++t) {
        const FaultConeEvaluator::SweepStats s = workers_[t]->eval.take_stats();
        tot.calls += s.calls;
        tot.unexcited += s.unexcited;
        tot.cone_gates += s.cone_gates;
        tot.active_gates += s.active_gates;
        tot.aborts += s.aborts;
        add_sweep_stats(telem, static_cast<int>(t), s);
      }
      res.stats.sweep_calls = tot.calls;
      res.stats.sweep_aborts = tot.aborts;
      res.stats.cone_cache_hits = cones_->hits() - cone_h0;
      res.stats.cone_cache_misses = cones_->misses() - cone_m0;
    }
  }
  if constexpr (kTelemetryEnabled) {
    if (telem != nullptr) {
      telem->metrics.add(0, CounterId::kCompactQueries, 1);
      telem->metrics.add(0, CounterId::kCompactCandidates, res.num_candidates);
      telem->metrics.record_hist(HistId::kCompactDiagnoseUs, total_us);
    }
  }
  return res;
}

}  // namespace scanpower
