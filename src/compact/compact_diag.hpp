#pragma once
// Stuck-at diagnosis over MISR-compacted responses.
//
// The tester reports one signature per window of patterns instead of
// per-point failures (SignatureLog), so diagnosis cannot compare
// (pattern, observation point) pairs -- it compares signatures. For a
// single stuck-at candidate the faulty signature is predictable without
// re-compacting the whole response: by MISR linearity
//     sig(faulty) = sig(good) ^ sig(diff),
// so every candidate's packed cone sweep (FaultConeEvaluator, the same
// engine full-response diagnosis uses) collects its response diff, the
// diff is X-masked and compacted, and windows are matched:
//
//   TFSF  window fails on the tester AND the candidate predicts exactly
//         the observed signature (explained window)
//   TFSP  window fails on the tester, candidate predicts pass -- or
//         predicts a *different* corruption (counted in both TFSP and
//         TPSF: it neither explains the observation nor stays silent)
//   TPSF  window passes on the tester, candidate predicts a failure
//
// Ranking reuses CandidateScore/DiagnosisResult verbatim (counters are
// window counts): exact explanations first, then ascending TFSP + TPSF,
// then descending TFSF. Candidates are scored round-robin across the
// worker pool from per-worker scratch; counters depend only on the
// candidate's full diff (never on block partitioning or scheduling), so
// rankings are bit-identical for every (block width, thread count)
// configuration.
//
// Cone pruning is necessarily weaker than the full-response engine's: a
// failing window names no failing point, so a candidate must merely lie
// in the union of the *unmasked* points' cones for every failing window
// (compaction trades diagnosability for bandwidth). Distinct unmasked
// sets are deduplicated before intersecting; without X-masking all
// windows share one union and the back-trace runs once.

#include <memory>
#include <span>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/pattern.hpp"
#include "compact/misr.hpp"
#include "compact/signature_log.hpp"
#include "compact/xmask.hpp"
#include "diag/diagnose.hpp"
#include "diag/response.hpp"
#include "netlist/netlist.hpp"
#include "util/thread_pool.hpp"

namespace scanpower {

class SignatureDiagnoser {
 public:
  /// Standalone: builds a private worker pool, observation-point space,
  /// cone cache and good-block cache, and rebuilds the X-mask plan plus
  /// expected signatures on every diagnose() call. Takes the
  /// engine knobs from DiagnosisOptions (block_words, num_threads,
  /// cone_pruning, max_report); the MISR configuration comes from the
  /// diagnosed log. score_early_exit does not apply -- window counters
  /// are too coarse for a sound mid-sweep bound -- and is ignored.
  explicit SignatureDiagnoser(const Netlist& nl, DiagnosisOptions opts = {});
  /// Borrowing: shares a ScanSession's pool, point space, cone cache and
  /// good-block cache; the session also caches (X-mask plan, expected
  /// signatures) per MISR configuration and hands them to
  /// diagnose_with(). opts.num_threads is superseded by the pool's size.
  SignatureDiagnoser(const Netlist& nl, DiagnosisOptions opts,
                     ThreadPool& pool, const ObservationPoints& points,
                     ObservationConeCache& cones, GoodBlockCache& goods);
  ~SignatureDiagnoser();

  const DiagnosisOptions& options() const { return opts_; }
  const ObservationPoints& points() const { return *points_; }

  /// Scores `faults` against a compacted signature log under `patterns`
  /// (the set the log was recorded for; X bits allowed -- they are
  /// zero-filled for simulation and handled by the rebuilt X-mask plan).
  /// Checks that the log's expected signatures match the good machine,
  /// which catches pattern-set or MISR-configuration mismatches up front.
  DiagnosisResult diagnose(std::span<const TestPattern> patterns,
                           std::span<const Fault> faults,
                           const SignatureLog& log);

  /// Precomputed-state variant used by ScanSession: `patterns` must be
  /// fully specified (the session's zero-filled view), `plan` the X-mask
  /// plan of the original patterns at the log's window size, and
  /// `expected` the good-machine window signatures under that plan --
  /// the state diagnose() rebuilds per call.
  DiagnosisResult diagnose_with(std::span<const TestPattern> patterns,
                                std::span<const Fault> faults,
                                const SignatureLog& log,
                                const XMaskPlan& plan,
                                std::span<const std::uint64_t> expected);

 private:
  struct Worker;

  void ensure_goods(std::span<const TestPattern> patterns);
  std::vector<std::uint32_t> prune_candidates(std::span<const Fault> faults,
                                              const SignatureLog& log,
                                              const XMaskPlan& plan);

  template <int W>
  void score_candidates(std::span<const TestPattern> patterns,
                        std::span<const Fault> faults,
                        std::span<const std::uint32_t> candidates,
                        const SignatureLog& log, const XMaskPlan& plan,
                        const MisrCompactor& compactor,
                        std::vector<CandidateScore>& scores);

  const Netlist* nl_;
  DiagnosisOptions opts_;
  // Owned engine state (standalone construction only; null when borrowed).
  std::unique_ptr<ObservationPoints> owned_points_;
  std::unique_ptr<ObservationConeCache> owned_cones_;
  std::unique_ptr<GoodBlockCache> owned_goods_;
  std::unique_ptr<ThreadPool> owned_pool_;
  // Borrowed-or-owned views used by all engine code.
  const ObservationPoints* points_ = nullptr;
  ObservationConeCache* cones_ = nullptr;
  GoodBlockCache* goods_ = nullptr;
  ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace scanpower
