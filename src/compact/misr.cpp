#include "compact/misr.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "compact/xmask.hpp"
#include "util/assert.hpp"

namespace scanpower {

std::uint64_t default_misr_poly(int width) {
  SP_CHECK(width >= 4 && width <= 64,
           "MISR width must be between 4 and 64 bits");
  // Reflected CRC constants (Galois right-shift form). Truncating keeps
  // the top bit set (both constants lead with binary 11), which is all
  // correctness needs; the canonical widths get the standard polynomials.
  switch (width) {
    case 8: return 0x8CULL;                  // CRC-8/MAXIM
    case 16: return 0xA001ULL;               // CRC-16/IBM
    case 32: return 0xEDB88320ULL;           // CRC-32
    case 64: return 0xC96C5795D7870F42ULL;   // CRC-64/XZ
    default:
      if (width < 32) return 0xEDB88320ULL >> (32 - width);
      return 0xC96C5795D7870F42ULL >> (64 - width);
  }
}

std::uint64_t MisrConfig::resolved_poly() const {
  return poly != 0 ? poly : default_misr_poly(width);
}

Misr::Misr(const MisrConfig& cfg) : cfg_(cfg) {
  SP_CHECK(cfg.width >= 4 && cfg.width <= 64,
           "MISR width must be between 4 and 64 bits");
  SP_CHECK(cfg.window >= 1, "MISR window must be at least 1 pattern");
  poly_ = cfg.resolved_poly();
  state_mask_ = cfg.width == 64 ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << cfg.width) - 1;
  SP_CHECK((poly_ & ~state_mask_) == 0,
           "MISR polynomial does not fit the register width");
  SP_CHECK((poly_ >> (cfg.width - 1)) & 1,
           "MISR polynomial must have its top bit set (invertible register)");
}

std::vector<std::uint64_t> Misr::compact_scalar(const ResponseMatrix& responses,
                                                const XMaskPlan* mask) const {
  const std::size_t width = static_cast<std::size_t>(cfg_.width);
  const std::size_t window = static_cast<std::size_t>(cfg_.window);
  const std::size_t chunks = chunks_per_pattern(responses.num_points);
  std::vector<std::uint64_t> out(cfg_.num_windows(responses.num_patterns), 0);
  for (std::size_t win = 0; win < out.size(); ++win) {
    const std::size_t p0 = win * window;
    const std::size_t p1 = std::min(p0 + window, responses.num_patterns);
    std::uint64_t state = 0;
    for (std::size_t p = p0; p < p1; ++p) {
      for (std::size_t c = 0; c < chunks; ++c) {
        std::uint64_t chunk = 0;
        for (std::size_t i = 0; i < width; ++i) {
          const std::size_t op = c * width + i;
          if (op >= responses.num_points) break;
          if (mask && mask->masked(op, win)) continue;
          if (responses.bit(op, p)) chunk |= std::uint64_t{1} << i;
        }
        state = step(state) ^ chunk;
      }
    }
    out[win] = state;
  }
  return out;
}

MisrCompactor::MisrCompactor(const MisrConfig& cfg, int block_words)
    : misr_(cfg), words_(block_words) {
  SP_CHECK(is_valid_block_words(block_words),
           "MisrCompactor: block_words must be 1, 2, 4, 8, 16 or 32");
}

template <int W>
void MisrCompactor::compact_impl(std::span<const PatternWord> rows,
                                 std::size_t num_points,
                                 std::size_t num_patterns,
                                 const XMaskPlan* mask,
                                 std::span<std::uint64_t> out) const {
  const std::size_t width = static_cast<std::size_t>(misr_.width());
  const std::size_t window = static_cast<std::size_t>(misr_.config().window);
  const std::size_t chunks = misr_.chunks_per_pattern(num_points);
  const std::uint64_t poly = misr_.poly();
  const std::size_t wpp = (num_patterns + 63) / 64;

  // Window fold state, carried across word blocks (a window may straddle
  // block boundaries).
  std::uint64_t fold = 0;
  std::size_t win = 0;
  std::size_t in_win = 0;

  // Bit-sliced register: state bit i of lane l lives in bit l of
  // S[i * W + l / 64]. Stack scratch; 64 * 8 words at the maxima.
  std::array<PatternWord, 64 * W> state;
  std::array<PatternWord, W> fb;

  for (std::size_t w0 = 0; w0 < wpp; w0 += W) {
    const std::size_t nw = std::min<std::size_t>(W, wpp - w0);
    state.fill(0);
    for (std::size_t c = 0; c < chunks; ++c) {
      // step: fb = bit 0; right-shift the slices; XOR fb into the taps.
      for (std::size_t w = 0; w < nw; ++w) fb[w] = state[w];
      for (std::size_t i = 0; i + 1 < width; ++i) {
        for (std::size_t w = 0; w < nw; ++w) {
          state[i * W + w] = state[(i + 1) * W + w];
        }
      }
      for (std::size_t w = 0; w < nw; ++w) state[(width - 1) * W + w] = 0;
      std::uint64_t taps = poly;
      while (taps != 0) {
        const int t = std::countr_zero(taps);
        taps &= taps - 1;
        for (std::size_t w = 0; w < nw; ++w) {
          state[static_cast<std::size_t>(t) * W + w] ^= fb[w];
        }
      }
      // inject chunk c: response words of points [c*width, ...).
      for (std::size_t i = 0; i < width; ++i) {
        const std::size_t op = c * width + i;
        if (op >= num_points) break;
        const PatternWord* row = rows.data() + op * wpp + w0;
        if (const PatternWord* keep = mask ? mask->keep_row(op) : nullptr) {
          for (std::size_t w = 0; w < nw; ++w) {
            state[i * W + w] ^= row[w] & keep[w0 + w];
          }
        } else {
          for (std::size_t w = 0; w < nw; ++w) state[i * W + w] ^= row[w];
        }
      }
    }
    // Fold this block's per-pattern partial signatures into the window
    // chain: state_after(s, r) = idle^chunks(s) ^ sig_from_zero(r).
    const std::size_t base = w0 * 64;
    const std::size_t batch = std::min<std::size_t>(nw * 64, num_patterns - base);
    for (std::size_t l = 0; l < batch; ++l) {
      std::uint64_t partial = 0;
      const std::size_t wi = l / 64;
      const int bit = static_cast<int>(l % 64);
      for (std::size_t i = 0; i < width; ++i) {
        partial |= ((state[i * W + wi] >> bit) & 1) << i;
      }
      fold = misr_.idle(fold, chunks) ^ partial;
      if (++in_win == window || base + l + 1 == num_patterns) {
        out[win++] = fold;
        fold = 0;
        in_win = 0;
      }
    }
  }
}

void MisrCompactor::compact_rows(std::span<const PatternWord> rows,
                                 std::size_t num_points,
                                 std::size_t num_patterns,
                                 const XMaskPlan* mask,
                                 std::span<std::uint64_t> out) const {
  SP_CHECK(out.size() == num_windows(num_patterns),
           "MisrCompactor: output span does not match the window count");
  SP_CHECK(rows.size() >= num_points * ((num_patterns + 63) / 64),
           "MisrCompactor: response rows too short");
  if (mask && !mask->any_masked()) mask = nullptr;  // empty plan: no masking
  if (mask) {
    SP_CHECK(mask->num_points() == num_points &&
                 mask->num_windows() == out.size(),
             "MisrCompactor: X-mask plan shape mismatch");
  }
  switch (words_) {
    case 1: compact_impl<1>(rows, num_points, num_patterns, mask, out); break;
    case 2: compact_impl<2>(rows, num_points, num_patterns, mask, out); break;
    case 4: compact_impl<4>(rows, num_points, num_patterns, mask, out); break;
    case 8: compact_impl<8>(rows, num_points, num_patterns, mask, out); break;
    case 16: compact_impl<16>(rows, num_points, num_patterns, mask, out); break;
    case 32: compact_impl<32>(rows, num_points, num_patterns, mask, out); break;
    default: SP_ASSERT(false, "invalid block width");
  }
}

void MisrCompactor::compact(const ResponseMatrix& responses,
                            const XMaskPlan* mask,
                            std::span<std::uint64_t> out) const {
  compact_rows(responses.words, responses.num_points, responses.num_patterns,
               mask, out);
}

std::vector<std::uint64_t> MisrCompactor::compact(
    const ResponseMatrix& responses, const XMaskPlan* mask) const {
  std::vector<std::uint64_t> out(num_windows(responses.num_patterns));
  compact(responses, mask, out);
  return out;
}

}  // namespace scanpower
