#pragma once
// Time compaction of scan responses into MISR signatures.
//
// A tester rarely observes every (pattern, observation point) response
// bit the way ResponseMatrix assumes: responses are fed through a
// multiple-input signature register (MISR) -- an LFSR that XORs `width`
// response bits into its state per cycle -- and only the accumulated
// signature is compared, once per window of patterns. This header holds
// the compaction core:
//
//  - Misr: the scalar register (programmable polynomial, width 4..64) and
//    the canonical compaction recipe. Per pattern the observation points
//    are fed in ceil(num_points / width) chunks of `width` bits; patterns
//    of a window chain through the register; every window starts from the
//    all-zero state.
//  - MisrCompactor: the packed engine. Per-pattern partial signatures are
//    computed bit-sliced over the response words (the register state is
//    held as `width` blocks of W pattern words, so one LFSR step is a
//    word-array rotate plus tap XORs over 64*W lanes at once -- the same
//    word layout as BlockSimulator), then window signatures are folded
//    per pattern using the linearity of the register:
//        state_after(s, r) = idle^C(s) ^ sig_from_zero(r).
//    Results are bit-identical to Misr::compact_scalar for every block
//    width.
//
// Everything here is linear over GF(2): sig(A ^ B) == sig(A) ^ sig(B)
// for response matrices A, B (windows start from state 0), which is what
// lets diagnosis predict a candidate's faulty signature as
// good_signature ^ sig(diff) without re-compacting the full response.

#include <cstdint>
#include <span>
#include <vector>

#include "diag/response.hpp"

namespace scanpower {

class XMaskPlan;

/// Compaction knobs. The polynomial is in Galois right-shift form: one
/// step is `fb = s & 1; s >>= 1; if (fb) s ^= poly`. Bit width-1 of the
/// polynomial must be set (the default ones are), which makes the
/// transition invertible -- a single corrupted response bit can never
/// alias to the fault-free signature.
struct MisrConfig {
  int width = 32;           ///< register width in bits (4..64)
  std::uint64_t poly = 0;   ///< feedback taps; 0 = default_misr_poly(width)
  int window = 32;          ///< patterns compacted per signature

  std::uint64_t resolved_poly() const;
  std::size_t num_windows(std::size_t num_patterns) const {
    return (num_patterns + static_cast<std::size_t>(window) - 1) /
           static_cast<std::size_t>(window);
  }
  friend bool operator==(const MisrConfig& a, const MisrConfig& b) {
    return a.width == b.width && a.window == b.window &&
           a.resolved_poly() == b.resolved_poly();
  }
};

/// Known-good feedback polynomial for a register width (reflected CRC
/// constants for the common widths, truncations of them otherwise; all
/// have the required top bit set).
std::uint64_t default_misr_poly(int width);

/// Scalar MISR: the reference implementation of the compaction recipe.
class Misr {
 public:
  explicit Misr(const MisrConfig& cfg);  ///< validates width/poly/window

  const MisrConfig& config() const { return cfg_; }
  int width() const { return cfg_.width; }
  std::uint64_t poly() const { return poly_; }
  std::uint64_t state_mask() const { return state_mask_; }

  /// Response chunks fed per pattern: ceil(num_points / width).
  std::size_t chunks_per_pattern(std::size_t num_points) const {
    return (num_points + static_cast<std::size_t>(cfg_.width) - 1) /
           static_cast<std::size_t>(cfg_.width);
  }

  /// One register step without injection.
  std::uint64_t step(std::uint64_t s) const {
    const std::uint64_t fb = s & 1;
    s >>= 1;
    return fb ? s ^ poly_ : s;
  }
  std::uint64_t idle(std::uint64_t s, std::size_t steps) const {
    for (std::size_t i = 0; i < steps; ++i) s = step(s);
    return s;
  }

  /// Per-window signatures of a response matrix, one response bit at a
  /// time (masked points -- see XMaskPlan -- contribute 0). The packed
  /// engine is cross-checked against this bit-for-bit.
  std::vector<std::uint64_t> compact_scalar(
      const ResponseMatrix& responses, const XMaskPlan* mask = nullptr) const;

 private:
  MisrConfig cfg_;
  std::uint64_t poly_ = 0;
  std::uint64_t state_mask_ = 0;
};

/// Packed MISR compaction: 64 * block_words per-pattern partial
/// signatures per bit-sliced sweep. One instance is cheap and stateless
/// between calls; give each worker thread its own (compact() uses only
/// stack scratch, so sharing a const instance is also race-free).
class MisrCompactor {
 public:
  explicit MisrCompactor(const MisrConfig& cfg, int block_words = 4);

  const Misr& misr() const { return misr_; }
  int block_words() const { return words_; }
  std::size_t num_windows(std::size_t num_patterns) const {
    return misr_.config().num_windows(num_patterns);
  }

  /// Per-window signatures of `responses`; out.size() must equal
  /// num_windows(responses.num_patterns). Invalid high lanes of the final
  /// response word must be zero (every producer in this library
  /// guarantees that).
  void compact(const ResponseMatrix& responses, const XMaskPlan* mask,
               std::span<std::uint64_t> out) const;
  std::vector<std::uint64_t> compact(const ResponseMatrix& responses,
                                     const XMaskPlan* mask = nullptr) const;

  /// Raw-row variant for reused scratch buffers (diagnosis scores
  /// candidates out of a per-worker diff buffer without wrapping it in a
  /// ResponseMatrix): `rows` holds num_points * words_per_point words in
  /// ResponseMatrix row order.
  void compact_rows(std::span<const PatternWord> rows, std::size_t num_points,
                    std::size_t num_patterns, const XMaskPlan* mask,
                    std::span<std::uint64_t> out) const;

 private:
  template <int W>
  void compact_impl(std::span<const PatternWord> rows, std::size_t num_points,
                    std::size_t num_patterns, const XMaskPlan* mask,
                    std::span<std::uint64_t> out) const;

  Misr misr_;
  int words_;
};

}  // namespace scanpower
