#include "compact/signature_log.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

std::size_t SignatureLog::num_failing_windows() const {
  std::size_t n = 0;
  for (std::size_t w = 0; w < num_windows(); ++w) {
    if (window_fails(w)) ++n;
  }
  return n;
}

void save_signature_log(std::ostream& out, const SignatureLog& log) {
  SP_CHECK(log.expected.size() == log.observed.size(),
           "save_signature_log: expected/observed window counts differ");
  out << "# scanpower signature log\n";
  if (!log.circuit.empty()) out << "circuit " << log.circuit << "\n";
  out << "patterns " << log.num_patterns << "\n";
  out << strprintf("misr %d %llx %d\n", log.misr.width,
                   static_cast<unsigned long long>(log.misr.resolved_poly()),
                   log.misr.window);
  out << "windows " << log.num_windows() << "\n";
  for (std::size_t w = 0; w < log.num_windows(); ++w) {
    out << strprintf("sig %zu %016llx %016llx\n", w,
                     static_cast<unsigned long long>(log.expected[w]),
                     static_cast<unsigned long long>(log.observed[w]));
  }
}

namespace {

/// Strict non-negative decimal token: digits only, no sign, no trailing
/// characters.
bool parse_dec_token(const std::string& tok, std::uint64_t& out) {
  if (tok.empty() || tok.size() > 19) return false;
  std::uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

/// Strict hex token (no 0x prefix, at most 16 digits).
bool parse_hex_token(const std::string& tok, std::uint64_t& out) {
  if (tok.empty() || tok.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : tok) {
    int d = -1;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  out = v;
  return true;
}

}  // namespace

SignatureLog load_signature_log(std::istream& in) {
  SignatureLog log;
  bool have_circuit = false;
  bool have_patterns = false;
  bool have_misr = false;
  bool have_windows = false;
  std::vector<std::uint8_t> seen;
  std::string line;
  std::size_t lineno = 0;
  const auto fail_at = [&lineno](const std::string& what) {
    throw Error(strprintf("signature log line %zu: %s", lineno, what.c_str()));
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed(trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream ls(trimmed);
    std::string kw;
    ls >> kw;
    if (kw == "circuit") {
      if (have_circuit) fail_at("duplicate circuit record");
      ls >> log.circuit;
      if (log.circuit.empty()) fail_at("expected \"circuit <name>\"");
      have_circuit = true;
    } else if (kw == "patterns") {
      if (have_patterns) fail_at("duplicate patterns record");
      std::string tok;
      ls >> tok;
      std::uint64_t v = 0;
      if (!parse_dec_token(tok, v)) {
        fail_at("bad pattern count \"" + tok + "\"");
      }
      log.num_patterns = static_cast<std::size_t>(v);
      have_patterns = true;
    } else if (kw == "misr") {
      if (have_misr) fail_at("duplicate misr record");
      std::string width_tok, poly_tok, window_tok;
      ls >> width_tok >> poly_tok >> window_tok;
      std::uint64_t width = 0, poly = 0, window = 0;
      if (!parse_dec_token(width_tok, width) || width == 0 || width > 64 ||
          !parse_hex_token(poly_tok, poly) ||
          !parse_dec_token(window_tok, window) || window == 0 ||
          window > 0x7fffffffULL) {
        fail_at("expected \"misr <width> <poly-hex> <window>\"");
      }
      log.misr.width = static_cast<int>(width);
      log.misr.poly = poly;
      log.misr.window = static_cast<int>(window);
      have_misr = true;
    } else if (kw == "windows") {
      if (have_windows) fail_at("duplicate windows record");
      std::string tok;
      ls >> tok;
      std::uint64_t count = 0;
      if (!parse_dec_token(tok, count)) {
        fail_at("bad window count \"" + tok + "\"");
      }
      log.expected.assign(count, 0);
      log.observed.assign(count, 0);
      seen.assign(count, 0);
      have_windows = true;
    } else if (kw == "sig") {
      if (!have_misr) {
        fail_at("\"sig\" before \"misr\" (signature width unknown)");
      }
      if (!have_windows) fail_at("\"sig\" before \"windows\"");
      std::string w_tok, exp_tok, obs_tok;
      ls >> w_tok >> exp_tok >> obs_tok;
      std::uint64_t w = 0, exp = 0, obs = 0;
      if (!parse_dec_token(w_tok, w) || !parse_hex_token(exp_tok, exp) ||
          !parse_hex_token(obs_tok, obs)) {
        fail_at("expected \"sig <window> <expected-hex> <observed-hex>\"");
      }
      if (w >= seen.size()) {
        fail_at(strprintf("window %llu out of range (%zu windows)",
                          static_cast<unsigned long long>(w), seen.size()));
      }
      if (seen[w]) {
        fail_at(strprintf("duplicate window %llu",
                          static_cast<unsigned long long>(w)));
      }
      // A signature wider than the MISR cannot have come from this
      // compactor -- a corrupted or truncated value.
      const std::uint64_t width_mask =
          log.misr.width >= 64 ? ~std::uint64_t{0}
                               : ((std::uint64_t{1} << log.misr.width) - 1);
      if ((exp & ~width_mask) != 0 || (obs & ~width_mask) != 0) {
        fail_at(strprintf("signature exceeds the %d-bit MISR width",
                          log.misr.width));
      }
      seen[w] = 1;
      log.expected[w] = exp;
      log.observed[w] = obs;
    } else {
      fail_at("unknown keyword \"" + kw + "\"");
    }
    std::string rest;
    ls >> rest;
    if (!rest.empty()) fail_at("unexpected trailing token \"" + rest + "\"");
  }
  SP_CHECK(have_misr, "signature log: missing \"misr\" record");
  SP_CHECK(have_windows, "signature log: missing \"windows\" record");
  for (std::size_t w = 0; w < seen.size(); ++w) {
    SP_CHECK(seen[w], strprintf("signature log: truncated (window %zu of %zu "
                                "missing)", w, seen.size()));
  }
  // Validate the MISR configuration (and that the window count matches it).
  (void)Misr(log.misr);
  SP_CHECK(log.misr.num_windows(log.num_patterns) == log.num_windows(),
           "signature log: window count does not match patterns/window");
  return log;
}

void save_signature_log_file(const std::string& path, const SignatureLog& log) {
  std::ofstream f(path);
  SP_CHECK(f.good(), "cannot write " + path);
  save_signature_log(f, log);
}

SignatureLog load_signature_log_file(const std::string& path) {
  std::ifstream f(path);
  SP_CHECK(f.good(), "cannot read " + path);
  return load_signature_log(f);
}

SignatureCapture::SignatureCapture(const Netlist& nl, MisrConfig cfg,
                                   int block_words, SimBackend backend)
    : nl_(&nl), cfg_(cfg), backend_(backend), capture_(nl, block_words, backend),
      compactor_(cfg, block_words) {
  cfg_.poly = cfg_.resolved_poly();
}

void SignatureCapture::bind(std::span<const TestPattern> patterns) {
  const auto same = [](const TestPattern& a, const TestPattern& b) {
    return a.pi == b.pi && a.ppi == b.ppi;
  };
  if (bound_valid_ && patterns.size() == bound_.size() &&
      std::equal(patterns.begin(), patterns.end(), bound_.begin(), same)) {
    return;
  }
  bound_.assign(patterns.begin(), patterns.end());
  bound_valid_ = true;
  filled_ = zero_filled_patterns(patterns);
  mask_ = XMaskPlan(*nl_, capture_.points(), patterns, cfg_.window,
                    capture_.block_words(), backend_);
  const ResponseMatrix good = capture_.capture_good(effective_patterns());
  expected_ = compactor_.compact(good, &mask_);
}

namespace {

SignatureLog compose_observed(const std::string& circuit,
                              std::size_t num_patterns, const MisrConfig& cfg,
                              const std::vector<std::uint64_t>& expected,
                              const std::vector<std::uint64_t>& diff_sigs) {
  SignatureLog log;
  log.circuit = circuit;
  log.num_patterns = num_patterns;
  log.misr = cfg;
  log.expected = expected;
  log.observed.resize(expected.size());
  for (std::size_t w = 0; w < expected.size(); ++w) {
    log.observed[w] = expected[w] ^ diff_sigs[w];
  }
  return log;
}

}  // namespace

SignatureLog SignatureCapture::inject(std::span<const TestPattern> patterns,
                                      std::span<const Fault> faults) {
  bind(patterns);
  const FailureLog failures = capture_.inject(effective_patterns(), faults);
  const ResponseMatrix diff = failures.to_matrix(points().size());
  const std::vector<std::uint64_t> diff_sigs = compactor_.compact(diff, &mask_);
  return compose_observed(nl_->name(), patterns.size(), cfg_, expected_,
                          diff_sigs);
}

SignatureLog SignatureCapture::inject(std::span<const TestPattern> patterns,
                                      const Fault& f) {
  bind(patterns);
  const FailureLog failures = capture_.inject(effective_patterns(), f);
  const ResponseMatrix diff = failures.to_matrix(points().size());
  const std::vector<std::uint64_t> diff_sigs = compactor_.compact(diff, &mask_);
  return compose_observed(nl_->name(), patterns.size(), cfg_, expected_,
                          diff_sigs);
}

}  // namespace scanpower
