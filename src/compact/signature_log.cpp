#include "compact/signature_log.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

std::size_t SignatureLog::num_failing_windows() const {
  std::size_t n = 0;
  for (std::size_t w = 0; w < num_windows(); ++w) {
    if (window_fails(w)) ++n;
  }
  return n;
}

void save_signature_log(std::ostream& out, const SignatureLog& log) {
  SP_CHECK(log.expected.size() == log.observed.size(),
           "save_signature_log: expected/observed window counts differ");
  out << "# scanpower signature log\n";
  if (!log.circuit.empty()) out << "circuit " << log.circuit << "\n";
  out << "patterns " << log.num_patterns << "\n";
  out << strprintf("misr %d %llx %d\n", log.misr.width,
                   static_cast<unsigned long long>(log.misr.resolved_poly()),
                   log.misr.window);
  out << "windows " << log.num_windows() << "\n";
  for (std::size_t w = 0; w < log.num_windows(); ++w) {
    out << strprintf("sig %zu %016llx %016llx\n", w,
                     static_cast<unsigned long long>(log.expected[w]),
                     static_cast<unsigned long long>(log.observed[w]));
  }
}

SignatureLog load_signature_log(std::istream& in) {
  SignatureLog log;
  bool have_windows = false;
  std::vector<std::uint8_t> seen;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed(trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream ls(trimmed);
    std::string kw;
    ls >> kw;
    if (kw == "circuit") {
      ls >> log.circuit;
    } else if (kw == "patterns") {
      ls >> log.num_patterns;
      SP_CHECK(!ls.fail(), strprintf("signature log line %zu: bad pattern "
                                     "count", lineno));
    } else if (kw == "misr") {
      unsigned long long poly = 0;
      ls >> log.misr.width >> std::hex >> poly >> std::dec >> log.misr.window;
      SP_CHECK(!ls.fail(),
               strprintf("signature log line %zu: expected \"misr <width> "
                         "<poly-hex> <window>\"", lineno));
      log.misr.poly = poly;
    } else if (kw == "windows") {
      std::size_t count = 0;
      ls >> count;
      SP_CHECK(!ls.fail(), strprintf("signature log line %zu: bad window "
                                     "count", lineno));
      log.expected.assign(count, 0);
      log.observed.assign(count, 0);
      seen.assign(count, 0);
      have_windows = true;
    } else if (kw == "sig") {
      SP_CHECK(have_windows,
               strprintf("signature log line %zu: \"sig\" before \"windows\"",
                         lineno));
      std::size_t w = 0;
      unsigned long long exp = 0;
      unsigned long long obs = 0;
      ls >> w >> std::hex >> exp >> obs >> std::dec;
      SP_CHECK(!ls.fail(), strprintf("signature log line %zu: expected \"sig "
                                     "<window> <expected> <observed>\"",
                                     lineno));
      SP_CHECK(w < seen.size(),
               strprintf("signature log line %zu: window %zu out of range",
                         lineno, w));
      SP_CHECK(!seen[w],
               strprintf("signature log line %zu: duplicate window %zu",
                         lineno, w));
      seen[w] = 1;
      log.expected[w] = exp;
      log.observed[w] = obs;
    } else {
      SP_CHECK(false, strprintf("signature log line %zu: unknown keyword "
                                "\"%s\"", lineno, kw.c_str()));
    }
  }
  SP_CHECK(have_windows, "signature log: missing \"windows\" record");
  SP_CHECK(std::all_of(seen.begin(), seen.end(),
                       [](std::uint8_t s) { return s != 0; }),
           "signature log: missing window records");
  // Validate the MISR configuration (and that the window count matches it).
  (void)Misr(log.misr);
  SP_CHECK(log.misr.num_windows(log.num_patterns) == log.num_windows(),
           "signature log: window count does not match patterns/window");
  return log;
}

void save_signature_log_file(const std::string& path, const SignatureLog& log) {
  std::ofstream f(path);
  SP_CHECK(f.good(), "cannot write " + path);
  save_signature_log(f, log);
}

SignatureLog load_signature_log_file(const std::string& path) {
  std::ifstream f(path);
  SP_CHECK(f.good(), "cannot read " + path);
  return load_signature_log(f);
}

SignatureCapture::SignatureCapture(const Netlist& nl, MisrConfig cfg,
                                   int block_words)
    : nl_(&nl), cfg_(cfg), capture_(nl, block_words),
      compactor_(cfg, block_words) {
  cfg_.poly = cfg_.resolved_poly();
}

void SignatureCapture::bind(std::span<const TestPattern> patterns) {
  const auto same = [](const TestPattern& a, const TestPattern& b) {
    return a.pi == b.pi && a.ppi == b.ppi;
  };
  if (bound_valid_ && patterns.size() == bound_.size() &&
      std::equal(patterns.begin(), patterns.end(), bound_.begin(), same)) {
    return;
  }
  bound_.assign(patterns.begin(), patterns.end());
  bound_valid_ = true;
  filled_ = zero_filled_patterns(patterns);
  mask_ = XMaskPlan(*nl_, capture_.points(), patterns, cfg_.window,
                    capture_.block_words());
  const ResponseMatrix good = capture_.capture_good(effective_patterns());
  expected_ = compactor_.compact(good, &mask_);
}

SignatureLog SignatureCapture::inject(std::span<const TestPattern> patterns,
                                      const Fault& f) {
  bind(patterns);
  const FailureLog failures = capture_.inject(effective_patterns(), f);
  const ResponseMatrix diff = failures.to_matrix(points().size());
  std::vector<std::uint64_t> diff_sigs = compactor_.compact(diff, &mask_);
  SignatureLog log;
  log.circuit = nl_->name();
  log.num_patterns = patterns.size();
  log.misr = cfg_;
  log.expected = expected_;
  log.observed.resize(expected_.size());
  for (std::size_t w = 0; w < expected_.size(); ++w) {
    log.observed[w] = expected_[w] ^ diff_sigs[w];
  }
  return log;
}

}  // namespace scanpower
