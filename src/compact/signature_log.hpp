#pragma once
// Compacted tester logs: per-window expected vs observed MISR signatures.
//
// SignatureLog is the compaction-era analogue of FailureLog: instead of
// per-(pattern, point) failures the tester reports one signature per
// window of patterns, alongside the fault-free expected signature. The
// text format is self-contained (it records the MISR configuration), so
// a log can be diagnosed later without out-of-band knowledge of the
// compactor -- only the pattern set must be reproduced, exactly like the
// failure-log flow.
//
// SignatureCapture is the synthetic tester: it captures the good-machine
// response, builds the deterministic X-mask plan from the pattern set,
// and injects a stuck-at fault to produce the SignatureLog a MISR-based
// tester would record for that defective chip. By MISR linearity the
// observed signature is expected ^ sig(response diff), so injection
// reuses ResponseCapture's packed faulty-machine sweep.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/pattern.hpp"
#include "compact/misr.hpp"
#include "compact/xmask.hpp"
#include "diag/response.hpp"
#include "netlist/netlist.hpp"

namespace scanpower {

struct SignatureLog {
  std::string circuit;
  std::size_t num_patterns = 0;
  MisrConfig misr;                      ///< poly stored resolved
  std::vector<std::uint64_t> expected;  ///< per window, fault-free
  std::vector<std::uint64_t> observed;  ///< per window, as the tester saw

  std::size_t num_windows() const { return expected.size(); }
  bool window_fails(std::size_t w) const { return expected[w] != observed[w]; }
  std::size_t num_failing_windows() const;
};

/// Plain-text signature-log format:
///   # comments
///   circuit <name>
///   patterns <n>
///   misr <width> <poly-hex> <window>
///   windows <count>
///   sig <window> <expected-hex> <observed-hex>
/// Every window index in [0, count) must appear exactly once; load
/// re-sorts, so a second save is byte-identical to the first.
void save_signature_log(std::ostream& out, const SignatureLog& log);
SignatureLog load_signature_log(std::istream& in);
void save_signature_log_file(const std::string& path, const SignatureLog& log);
SignatureLog load_signature_log_file(const std::string& path);

/// Synthetic MISR tester: expected signatures, X-mask plan and fault
/// injection for one pattern set.
class SignatureCapture {
 public:
  explicit SignatureCapture(const Netlist& nl, MisrConfig cfg = {},
                            int block_words = 4,
                            SimBackend backend = SimBackend::Auto);

  const MisrConfig& config() const { return cfg_; }
  const ObservationPoints& points() const { return capture_.points(); }

  /// Binds a pattern set: zero-fills X bits for the binary response
  /// sweep, captures the good-machine signatures and builds the X-mask
  /// plan. inject() binds implicitly; a pattern set equal to the bound
  /// one (compared by content) reuses the cached capture.
  void bind(std::span<const TestPattern> patterns);

  /// Valid after bind()/inject().
  const XMaskPlan& mask() const { return mask_; }
  const std::vector<std::uint64_t>& expected() const { return expected_; }

  /// The signature log a MISR tester records for a chip carrying exactly
  /// fault `f` under `patterns`.
  SignatureLog inject(std::span<const TestPattern> patterns, const Fault& f);

  /// Multi-fault analogue: the signature log of a chip carrying every
  /// fault in `faults` simultaneously (exact k-fault simulation via
  /// ResponseCapture's multi-fault sweep, compacted through linearity).
  SignatureLog inject(std::span<const TestPattern> patterns,
                      std::span<const Fault> faults);

 private:
  std::span<const TestPattern> effective_patterns() const {
    return filled_.empty() ? std::span<const TestPattern>(bound_)
                           : std::span<const TestPattern>(filled_);
  }

  const Netlist* nl_;
  MisrConfig cfg_;
  SimBackend backend_ = SimBackend::Auto;
  ResponseCapture capture_;
  MisrCompactor compactor_;

  bool bound_valid_ = false;
  std::vector<TestPattern> bound_;   ///< copy of the bound pattern set
  std::vector<TestPattern> filled_;  ///< X zero-filled copy; empty if not needed
  XMaskPlan mask_;
  std::vector<std::uint64_t> expected_;
};

}  // namespace scanpower
