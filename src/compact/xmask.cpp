#include "compact/xmask.hpp"

#include <algorithm>

#include "power/packed_leakage.hpp"
#include "util/assert.hpp"

namespace scanpower {

namespace {

/// Ternary analogue of load_pattern_block: X bits stay X; invalid lanes
/// of a partial final block are loaded as known 0 (they are never read).
void load_ternary_block(const Netlist& nl,
                        std::span<const TestPattern> patterns,
                        std::size_t base, TernaryBlockSimulator& sim) {
  const int words = sim.words();
  const std::size_t batch =
      patterns.size() > base ? std::min(sim.lanes(), patterns.size() - base) : 0;
  const auto load = [&](const std::vector<GateId>& sources, bool use_pi) {
    for (std::size_t k = 0; k < sources.size(); ++k) {
      for (int wi = 0; wi < words; ++wi) {
        const std::size_t lane0 = static_cast<std::size_t>(wi) * 64;
        PatternWord ones = 0;
        PatternWord xs = 0;
        const std::size_t count =
            batch > lane0 ? std::min<std::size_t>(64, batch - lane0) : 0;
        for (std::size_t j = 0; j < count; ++j) {
          const TestPattern& pat = patterns[base + lane0 + j];
          const Logic v = use_pi ? pat.pi[k] : pat.ppi[k];
          if (v == Logic::One) ones |= PatternWord{1} << j;
          if (v == Logic::X) xs |= PatternWord{1} << j;
        }
        sim.p1(sources[k])[wi] = ones | xs;
        sim.p0(sources[k])[wi] = ~ones | xs;
      }
    }
  };
  load(nl.inputs(), /*use_pi=*/true);
  load(nl.dffs(), /*use_pi=*/false);
}

}  // namespace

std::vector<TestPattern> zero_filled_patterns(
    std::span<const TestPattern> patterns) {
  if (std::all_of(patterns.begin(), patterns.end(),
                  [](const TestPattern& p) { return p.fully_specified(); })) {
    return {};
  }
  std::vector<TestPattern> filled(patterns.begin(), patterns.end());
  for (TestPattern& p : filled) {
    for (Logic& v : p.pi) {
      if (v == Logic::X) v = Logic::Zero;
    }
    for (Logic& v : p.ppi) {
      if (v == Logic::X) v = Logic::Zero;
    }
  }
  return filled;
}

XMaskPlan::XMaskPlan(const Netlist& nl, const ObservationPoints& points,
                     std::span<const TestPattern> patterns, int window,
                     int block_words, SimBackend backend) {
  SP_CHECK(window >= 1, "XMaskPlan: window must be at least 1 pattern");
  SP_CHECK(is_valid_block_words(block_words),
           "XMaskPlan: block_words must be 1, 2, 4, 8, 16 or 32");
  num_points_ = points.size();
  num_windows_ = (patterns.size() + static_cast<std::size_t>(window) - 1) /
                 static_cast<std::size_t>(window);
  words_per_point_ = (patterns.size() + 63) / 64;

  // Fully specified patterns cannot produce X anywhere: empty plan, no
  // sweep.
  if (std::all_of(patterns.begin(), patterns.end(),
                  [](const TestPattern& p) { return p.fully_specified(); })) {
    return;
  }

  // Per point, the packed X mask over patterns (lane p = 1 iff the good
  // machine evaluates the observed gate to X under pattern p).
  std::vector<PatternWord> xwords(num_points_ * words_per_point_, 0);
  TernaryBlockSimulator sim(nl, block_words, backend);
  const std::size_t lanes = sim.lanes();
  for (std::size_t base = 0; base < patterns.size(); base += lanes) {
    const std::size_t batch = std::min(lanes, patterns.size() - base);
    load_ternary_block(nl, patterns, base, sim);
    sim.eval();
    const std::size_t word0 = base / 64;
    const std::size_t nwords = (batch + 63) / 64;
    for (std::size_t op = 0; op < num_points_; ++op) {
      const GateId g = points.observed_gate(op);
      const PatternWord* p1 = sim.p1(g);
      const PatternWord* p0 = sim.p0(g);
      PatternWord* row = xwords.data() + op * words_per_point_ + word0;
      for (std::size_t w = 0; w < nwords; ++w) row[w] = p1[w] & p0[w];
    }
  }

  // Window verdicts and packed keep rows. A window's lanes are the
  // contiguous pattern range [w * window, min((w+1) * window, n)).
  masked_.assign(num_points_ * num_windows_, 0);
  keep_.assign(num_points_ * words_per_point_, ~PatternWord{0});
  const auto window_range_or = [&](const PatternWord* row, std::size_t p0,
                                   std::size_t p1) {
    PatternWord acc = 0;
    for (std::size_t w = p0 / 64; w <= (p1 - 1) / 64; ++w) {
      const std::size_t lo = std::max(p0, w * 64) - w * 64;
      const std::size_t hi = std::min(p1, (w + 1) * 64) - w * 64;
      PatternWord m = ~PatternWord{0};
      if (hi < 64) m = (PatternWord{1} << hi) - 1;
      m &= ~((PatternWord{1} << lo) - 1);
      acc |= row[w] & m;
    }
    return acc;
  };
  for (std::size_t op = 0; op < num_points_; ++op) {
    const PatternWord* xrow = xwords.data() + op * words_per_point_;
    PatternWord* keep = keep_.data() + op * words_per_point_;
    for (std::size_t win = 0; win < num_windows_; ++win) {
      const std::size_t p0 = win * static_cast<std::size_t>(window);
      const std::size_t p1 =
          std::min(p0 + static_cast<std::size_t>(window), patterns.size());
      if (window_range_or(xrow, p0, p1) == 0) continue;
      masked_[op * num_windows_ + win] = 1;
      ++num_masked_;
      for (std::size_t p = p0; p < p1; ++p) {
        keep[p / 64] &= ~(PatternWord{1} << (p % 64));
      }
    }
  }
}

}  // namespace scanpower
