#pragma once
// Deterministic X-masking for response compaction.
//
// A MISR signature is only comparable when every compacted bit is
// predictable: one observation point whose good-machine value is unknown
// (X) poisons the whole window's signature. Patterns straight out of
// PODEM carry X on care-free inputs, so before compaction the tester
// masks (forces to 0) every observation point that can go X anywhere in
// a window -- the classic X-bounding scheme.
//
// XMaskPlan decides those points with a packed ternary sweep: the
// patterns are loaded into a TernaryBlockSimulator with their X bits
// preserved (one pattern per lane), and a point is masked in window `w`
// iff its observed gate evaluates to X for at least one pattern of `w`.
// The plan depends only on the pattern set, the netlist and the window
// size, so the tester (SignatureCapture) and the diagnosis engine
// (SignatureDiagnoser) rebuild identical plans independently.
//
// Points that are known for every pattern of a window pass through
// unmasked; fully specified pattern sets produce an empty plan without
// running the sweep.

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/pattern.hpp"
#include "diag/response.hpp"
#include "netlist/netlist.hpp"

namespace scanpower {

/// Copy of `patterns` with every X bit forced to 0 -- the canonical fill
/// for the binary response sweeps behind compaction (X-masking makes the
/// choice invisible: unmasked points are X-free by construction).
/// Returns an empty vector when all patterns are already fully specified
/// (callers keep using the original span).
std::vector<TestPattern> zero_filled_patterns(
    std::span<const TestPattern> patterns);

class XMaskPlan {
 public:
  /// Empty plan: nothing masked (the fully-specified fast path).
  XMaskPlan() = default;

  /// Ternary sweep over `patterns` (X bits preserved): point `op` is
  /// masked in window `w` iff its good-machine value is X for some
  /// pattern of `w`. `window` is the compaction window in patterns.
  XMaskPlan(const Netlist& nl, const ObservationPoints& points,
            std::span<const TestPattern> patterns, int window,
            int block_words = 4, SimBackend backend = SimBackend::Auto);

  std::size_t num_points() const { return num_points_; }
  std::size_t num_windows() const { return num_windows_; }
  std::size_t words_per_point() const { return words_per_point_; }

  /// Total masked (point, window) pairs; 0 for an empty plan.
  std::size_t num_masked() const { return num_masked_; }
  bool any_masked() const { return num_masked_ != 0; }

  bool masked(std::size_t op, std::size_t window) const {
    return any_masked() && masked_[op * num_windows_ + window] != 0;
  }

  /// Packed keep mask over patterns for point `op` (words_per_point()
  /// words): lane p is 1 iff `op` is unmasked in p's window. Returns
  /// nullptr for an empty plan (keep everything).
  const PatternWord* keep_row(std::size_t op) const {
    return any_masked() ? keep_.data() + op * words_per_point_ : nullptr;
  }

 private:
  std::size_t num_points_ = 0;
  std::size_t num_windows_ = 0;
  std::size_t words_per_point_ = 0;
  std::size_t num_masked_ = 0;
  std::vector<std::uint8_t> masked_;  ///< num_points x num_windows
  std::vector<PatternWord> keep_;     ///< num_points x words_per_point
};

}  // namespace scanpower
