#include "core/design_context.hpp"

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

namespace {

void check_block_words(const char* who, int w, const char* knob) {
  SP_CHECK(is_valid_block_words(w),
           strprintf("%s: %s must be 1, 2, 4, 8, 16 or 32 (got %d)", who,
                     knob, w));
}

/// Explicit backends are a hard contract (Auto falls back gracefully):
/// fail construction with the knob named instead of deep inside an engine.
void check_backend(const char* who, SimBackend b, int words,
                   const char* knob) {
  if (b == SimBackend::Auto) return;
  SP_CHECK(backend_available(b),
           strprintf("%s: %s backend '%s' is not available on this "
                     "host (%s)",
                     who, knob, backend_name(b),
                     backend_compiled(b) ? "CPU lacks the required features"
                                         : "library built without its kernels"));
  SP_CHECK(backend_supports_words(b, words),
           strprintf("%s: %s backend '%s' does not support "
                     "block_words=%d (scalar: any width; avx2/avx512: 1-8; "
                     "wide: 16/32)",
                     who, knob, backend_name(b), words));
}

void check_threads(const char* who, int t, const char* knob) {
  SP_CHECK(t >= 0,
           strprintf("%s: %s must be >= 0 (0 = all hardware "
                     "threads; got %d)",
                     who, knob, t));
}

}  // namespace

void validate_flow_options(const Netlist& nl, const FlowOptions& opts,
                           const char* who) {
  SP_CHECK(nl.finalized(),
           strprintf("%s: netlist must be finalized (call Netlist::finalize "
                     "first)",
                     who));
  check_block_words(who, opts.tpg.fault_sim.block_words,
                    "tpg.fault_sim.block_words");
  check_block_words(who, opts.diag.block_words, "diag.block_words");
  check_block_words(who, opts.observability.block_words,
                    "observability.block_words");
  check_block_words(who, opts.fill.block_words, "fill.block_words");
  check_backend(who, opts.tpg.fault_sim.backend,
                opts.tpg.fault_sim.block_words, "tpg.fault_sim");
  check_backend(who, opts.diag.backend, opts.diag.block_words, "diag");
  check_backend(who, opts.observability.backend,
                opts.observability.block_words, "observability");
  check_backend(who, opts.fill.backend, opts.fill.block_words, "fill");
  check_threads(who, opts.tpg.fault_sim.num_threads,
                "tpg.fault_sim.num_threads");
  check_threads(who, opts.diag.num_threads, "diag.num_threads");
  check_threads(who, opts.observability.num_threads,
                "observability.num_threads");
  check_threads(who, opts.fill.num_threads, "fill.num_threads");
  SP_CHECK(opts.misr.width >= 4 && opts.misr.width <= 64,
           strprintf("%s: misr.width must be in 4..64 (got %d)", who,
                     opts.misr.width));
  SP_CHECK(opts.misr.window >= 1,
           strprintf("%s: misr.window must be >= 1 pattern (got %d)", who,
                     opts.misr.window));
  const std::uint64_t poly = opts.misr.resolved_poly();
  SP_CHECK((opts.misr.width == 64 || (poly >> opts.misr.width) == 0) &&
               ((poly >> (opts.misr.width - 1)) & 1) != 0,
           strprintf("%s: misr.poly %llx does not fit width %d with "
                     "the top (bit %d) tap set; the top tap keeps the MISR "
                     "transition invertible -- see default_misr_poly()",
                     who, static_cast<unsigned long long>(poly),
                     opts.misr.width, opts.misr.width - 1));
  SP_CHECK(opts.observability.samples > 1,
           strprintf("%s: observability.samples must be >= 2 (got %d)", who,
                     opts.observability.samples));
  SP_CHECK(opts.fill.trials >= 1,
           strprintf("%s: fill.trials must be >= 1 (got %d)", who,
                     opts.fill.trials));
}

namespace {

/// FNV-1a, the repo's usual cheap structural hash.
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  void mix_bytes(const char* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(p[i]);
      h *= 0x100000001b3ULL;
    }
  }
};

}  // namespace

std::uint64_t DesignContext::hash_design(const Netlist& nl) {
  Fnv f;
  f.mix_bytes(nl.name().data(), nl.name().size());
  f.mix(nl.num_gates());
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    f.mix(static_cast<std::uint64_t>(nl.types_flat()[id]));
    for (GateId fin : nl.fanin_span(id)) f.mix(fin);
  }
  for (GateId po : nl.outputs()) f.mix(po);
  for (GateId ff : nl.dffs()) f.mix(ff);
  return f.h;
}

DesignContext::DesignContext(Netlist nl, FlowOptions opts,
                             Telemetry* telemetry)
    : nl_((validate_flow_options(nl, opts, "DesignContext"), std::move(nl))),
      opts_(std::move(opts)),
      model_(opts_.leakage_params),
      hash_(hash_design(nl_)),
      faults_(collapse_faults(nl_)),
      points_(nl_),
      cones_(nl_, points_),
      tables_(nl_, model_) {
  // Materialize every cone before the context is published: the lazy miss
  // path shares DFS scratch and is serial-only, so a shared context must
  // never take it again. (SessionPool wraps the whole construction in the
  // sessions.ctx_build_us span; the counter here covers direct builds.)
  cones_.build_all();
  SP_TELEM_ADD(telemetry, 0, CounterId::kCtxBuilds, 1);
  // Engines built by tenant sessions carry their own telemetry scopes;
  // the context itself never retains the pointer.
  opts_.diag.telemetry = nullptr;
  opts_.tpg.fault_sim.telemetry = nullptr;
}

const TestSet& DesignContext::tests() const {
  std::call_once(tests_once_, [this] {
    tests_ = std::make_unique<TestSet>(generate_tests(nl_, opts_.tpg));
  });
  return *tests_;
}

}  // namespace scanpower
