#pragma once
// DesignContext: the immutable, shareable design-keyed layer of the
// service stack.
//
// ScanSession amortizes engine state across queries, but it is a
// single-threaded object: one session per client, each with its own copy
// of the design-keyed state (collapsed fault list, observation points and
// cones, leakage tables, ATPG set, the netlist itself). A multi-tenant
// service wants that layer built once per *design* and referenced by many
// concurrent sessions. DesignContext is exactly that split:
//
//   - build-once-under-lock: the constructor builds every eagerly needed
//     piece (collapsed faults, ObservationPoints, the fully materialized
//     ObservationConeCache, GateLeakageTables); the ATPG TestSet is the
//     one expensive piece a diagnosis-only tenant never touches, so it
//     builds lazily behind std::call_once.
//   - read-only after publish: once a shared_ptr<const DesignContext> is
//     handed out, nothing mutates but relaxed cache tallies -- so the
//     bit-identical-across-(block_words, num_threads) house rule extends
//     to "across concurrent tenants": N sessions sharing one context
//     return byte-identical results to N isolated sessions.
//
// Sessions reference a context via shared_ptr (ScanSession's context
// constructor), so SessionPool eviction can never invalidate in-flight
// work: the last referencing session keeps the context alive.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/flow.hpp"

namespace scanpower {

/// Validates every engine knob of `opts` against `nl` up front -- bad
/// block widths, thread counts, backends, MISR configurations and sample
/// counts throw Error with the knob named, prefixed by `who`. Shared by
/// ScanSession and DesignContext so both entry points reject the same
/// misconfigurations with the same messages.
void validate_flow_options(const Netlist& nl, const FlowOptions& opts,
                           const char* who);

class DesignContext {
 public:
  /// Copies the (finalized) netlist and builds the design-keyed layer.
  /// `opts` is validated up front exactly like ScanSession's constructor;
  /// it also supplies the TPG configuration of the lazy ATPG set and the
  /// default options of sessions created from this context. `telemetry`
  /// (optional) receives the build counters; the context does not retain
  /// it past construction.
  explicit DesignContext(Netlist nl, FlowOptions opts = {},
                         Telemetry* telemetry = nullptr);

  DesignContext(const DesignContext&) = delete;
  DesignContext& operator=(const DesignContext&) = delete;

  const Netlist& netlist() const { return nl_; }
  const FlowOptions& options() const { return opts_; }
  const LeakageModel& leakage_model() const { return model_; }

  /// Collapsed stuck-at fault universe of the design.
  const std::vector<Fault>& faults() const { return faults_; }
  /// Observation-point index space of the full-scan response.
  const ObservationPoints& points() const { return points_; }
  /// Fully pre-built fanin cones (build_all() ran in the constructor, so
  /// concurrent cone() calls can only hit -- reads plus relaxed tallies).
  /// Mutable through const: the reference is handed to the diagnosers'
  /// borrowing constructors, and post-publish the object is logically
  /// immutable.
  ObservationConeCache& cones() const { return cones_; }
  /// Per-(netlist, model) state->leakage tables.
  const GateLeakageTables& leakage_tables() const { return tables_; }
  /// ATPG test set under options().tpg; first caller builds it under
  /// std::call_once, so concurrent tenants block rather than duplicate.
  const TestSet& tests() const;

  /// Structural hash of the design (name, gate types, CSR fanins, outputs,
  /// scan cells): the SessionPool key. Computed once at construction.
  std::uint64_t design_hash() const { return hash_; }
  /// The same hash for a netlist without building a context -- pool lookup.
  static std::uint64_t hash_design(const Netlist& nl);

 private:
  Netlist nl_;
  FlowOptions opts_;
  LeakageModel model_;
  std::uint64_t hash_ = 0;

  std::vector<Fault> faults_;
  ObservationPoints points_;
  mutable ObservationConeCache cones_;
  GateLeakageTables tables_;

  mutable std::once_flag tests_once_;
  mutable std::unique_ptr<TestSet> tests_;
};

}  // namespace scanpower
