#include "core/dont_care_fill.hpp"

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scanpower {

FillResult fill_dont_cares_min_leakage(const Netlist& nl,
                                       const LeakageModel& model,
                                       std::vector<Logic>& pi_pattern,
                                       std::vector<Logic>& mux_pattern,
                                       const std::vector<bool>& mux_eligible,
                                       const FillOptions& opts) {
  SP_CHECK(pi_pattern.size() == nl.inputs().size(),
           "fill: pi_pattern size mismatch");
  SP_CHECK(mux_pattern.size() == nl.dffs().size() &&
               mux_eligible.size() == nl.dffs().size(),
           "fill: mux_pattern size mismatch");

  // Free positions: X PIs and X *eligible* mux cells.
  std::vector<std::size_t> free_pi;
  std::vector<std::size_t> free_mux;
  for (std::size_t i = 0; i < pi_pattern.size(); ++i) {
    if (pi_pattern[i] == Logic::X) free_pi.push_back(i);
  }
  for (std::size_t i = 0; i < mux_pattern.size(); ++i) {
    if (mux_eligible[i] && mux_pattern[i] == Logic::X) free_mux.push_back(i);
  }

  FillResult res;
  res.free_inputs = free_pi.size() + free_mux.size();

  Rng rng(opts.seed);
  Simulator sim(nl);

  auto leakage_of = [&](const std::vector<Logic>& pi,
                        const std::vector<Logic>& mux) {
    for (std::size_t k = 0; k < pi.size(); ++k) {
      sim.set_input(nl.inputs()[k], pi[k]);
    }
    for (std::size_t c = 0; c < mux.size(); ++c) {
      // Non-multiplexed cells toggle during shift: X (expected leakage).
      sim.set_state(nl.dffs()[c], mux_eligible[c] ? mux[c] : Logic::X);
    }
    sim.eval_incremental();
    return model.circuit_leakage_na(nl, sim.values());
  };

  if (res.free_inputs == 0) {
    res.best_leakage_na = res.first_leakage_na = leakage_of(pi_pattern, mux_pattern);
    return res;
  }

  std::vector<Logic> best_pi = pi_pattern;
  std::vector<Logic> best_mux = mux_pattern;
  double best = 0.0;
  const int trials = opts.minimize_leakage ? std::max(1, opts.trials) : 1;
  std::vector<Logic> cand_pi = pi_pattern;
  std::vector<Logic> cand_mux = mux_pattern;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t i : free_pi) cand_pi[i] = from_bool(rng.next_bool());
    for (std::size_t i : free_mux) cand_mux[i] = from_bool(rng.next_bool());
    const double leak = leakage_of(cand_pi, cand_mux);
    if (t == 0) res.first_leakage_na = leak;
    if (t == 0 || leak < best) {
      best = leak;
      best_pi = cand_pi;
      best_mux = cand_mux;
    }
  }
  res.best_leakage_na = best;
  res.trials = trials;
  pi_pattern = std::move(best_pi);
  mux_pattern = std::move(best_mux);
  return res;
}

}  // namespace scanpower
