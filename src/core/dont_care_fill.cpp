#include "core/dont_care_fill.hpp"

#include <algorithm>
#include <memory>

#include "power/packed_leakage.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scanpower {

namespace {

/// Scalar reference engine: one 3-valued Simulator pass plus a
/// circuit_leakage_na walk per candidate. Kept as the cross-check /
/// benchmark baseline for the packed engine below.
FillResult fill_scalar(const Netlist& nl, const LeakageModel& model,
                       std::vector<Logic>& pi_pattern,
                       std::vector<Logic>& mux_pattern,
                       const std::vector<bool>& mux_eligible,
                       const FillOptions& opts,
                       const std::vector<std::size_t>& free_pi,
                       const std::vector<std::size_t>& free_mux,
                       FillResult res) {
  Rng rng;
  Simulator sim(nl);

  auto leakage_of = [&](const std::vector<Logic>& pi,
                        const std::vector<Logic>& mux) {
    for (std::size_t k = 0; k < pi.size(); ++k) {
      sim.set_input(nl.inputs()[k], pi[k]);
    }
    for (std::size_t c = 0; c < mux.size(); ++c) {
      // Non-multiplexed cells toggle during shift: X (expected leakage).
      sim.set_state(nl.dffs()[c], mux_eligible[c] ? mux[c] : Logic::X);
    }
    sim.eval_incremental();
    return model.circuit_leakage_na(nl, sim.values());
  };

  if (res.free_inputs == 0) {
    res.best_leakage_na = res.first_leakage_na =
        leakage_of(pi_pattern, mux_pattern);
    return res;
  }

  std::vector<Logic> best_pi = pi_pattern;
  std::vector<Logic> best_mux = mux_pattern;
  double best = 0.0;
  const int trials = opts.minimize_leakage ? std::max(1, opts.trials) : 1;
  std::vector<Logic> cand_pi = pi_pattern;
  std::vector<Logic> cand_mux = mux_pattern;
  for (int t = 0; t < trials; ++t) {
    // Per-64-trial-word seeds: trial t draws from a generator seeded by
    // (seed, t / 64) alone, so trial words are independent and the packed
    // engine can partition them across workers while drawing the exact
    // same stream.
    if (t % 64 == 0) {
      rng.reseed(block_seed(opts.seed, static_cast<std::uint64_t>(t) / 64));
    }
    for (std::size_t i : free_pi) cand_pi[i] = from_bool(rng.next_bool());
    for (std::size_t i : free_mux) cand_mux[i] = from_bool(rng.next_bool());
    const double leak = leakage_of(cand_pi, cand_mux);
    if (t == 0) res.first_leakage_na = leak;
    if (t == 0 || leak < best) {
      best = leak;
      best_pi = cand_pi;
      best_mux = cand_mux;
    }
  }
  res.best_leakage_na = best;
  res.trials = trials;
  pi_pattern = std::move(best_pi);
  mux_pattern = std::move(best_mux);
  return res;
}

/// Packed engine: candidates are bit lanes of 3-valued packed sweeps. The
/// random stream (per trial: free PIs in order, then free mux cells) and
/// the best-candidate selection rule (strict improvement, earliest trial
/// wins ties) are exactly the scalar engine's, and per-lane leakage is
/// bit-identical to circuit_leakage_na, so both engines pick the same
/// fill.
FillResult fill_packed(const Netlist& nl, const LeakageModel& model,
                       std::vector<Logic>& pi_pattern,
                       std::vector<Logic>& mux_pattern,
                       const std::vector<bool>& mux_eligible,
                       const FillOptions& opts,
                       const std::vector<std::size_t>& free_pi,
                       const std::vector<std::size_t>& free_mux,
                       FillResult res) {
  SP_CHECK(is_valid_block_words(opts.block_words),
           "fill: block_words must be 1, 2, 4, 8, 16 or 32");
  std::unique_ptr<const GateLeakageTables> owned_tables;
  if (opts.tables == nullptr) {
    owned_tables = std::make_unique<GateLeakageTables>(nl, model);
  }
  const GateLeakageTables& tables =
      opts.tables ? *opts.tables : *owned_tables;
  const PackedLeakageEvaluator leval(nl, tables, opts.backend);

  // Free positions in the scalar engine's draw order.
  std::vector<GateId> free_sources;
  free_sources.reserve(free_pi.size() + free_mux.size());
  for (std::size_t i : free_pi) free_sources.push_back(nl.inputs()[i]);
  for (std::size_t i : free_mux) free_sources.push_back(nl.dffs()[i]);
  const std::size_t nfree = free_sources.size();

  const int trials =
      res.free_inputs == 0 ? 1
                           : (opts.minimize_leakage ? std::max(1, opts.trials)
                                                    : 1);
  // Clamp the block width to the candidate count: scoring 24 trials on a
  // 256-lane block would aggregate leakage for 232 dead lanes. Never
  // clamp to a width the configured backend cannot run (the wide backend
  // starts at 16 words).
  int W = opts.block_words;
  while (W > 1 &&
         static_cast<std::size_t>(W) * 32 >= static_cast<std::size_t>(trials) &&
         backend_supports_words(opts.backend, W / 2)) {
    W /= 2;
  }
  const std::size_t lanes = static_cast<std::size_t>(W) * 64;

  // Fixed sources: assigned constants broadcast lane-wide; non-eligible
  // mux cells broadcast X (they toggle during shift).
  auto broadcast_fixed = [&](TernaryBlockSimulator& sim) {
    for (std::size_t k = 0; k < pi_pattern.size(); ++k) {
      sim.set_source_all(nl.inputs()[k], pi_pattern[k]);
    }
    for (std::size_t c = 0; c < mux_pattern.size(); ++c) {
      sim.set_source_all(nl.dffs()[c],
                         mux_eligible[c] ? mux_pattern[c] : Logic::X);
    }
  };

  if (res.free_inputs == 0) {
    TernaryBlockSimulator sim(nl, W, opts.backend);
    std::vector<double> leak(lanes);
    broadcast_fixed(sim);
    sim.eval();
    leval.eval(sim, leak);
    res.best_leakage_na = res.first_leakage_na = leak[0];
    return res;
  }

  const std::size_t total = static_cast<std::size_t>(trials);
  const std::size_t nblocks = (total + lanes - 1) / lanes;
  // Borrow the caller's pool when provided (ScanSession); the sweep is
  // bit-identical for any pool size, so sharing is result-free.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool_ptr = opts.pool;
  if (pool_ptr == nullptr) {
    owned_pool =
        std::make_unique<ThreadPool>(ThreadPool::resolve_threads(opts.num_threads));
    pool_ptr = owned_pool.get();
  }
  ThreadPool& pool = *pool_ptr;
  const int T = pool.size();

  // Per-worker simulation state; one block of candidates per worker per
  // wave. Trial word k (trials 64k..64k+63) draws from a generator seeded
  // by (opts.seed, k) alone, and block-local winners are merged on the
  // caller thread in ascending block order with a strict '<', so the
  // chosen fill -- the earliest strict minimum, exactly the scalar
  // engine's rule -- is bit-identical for any thread count.
  struct Partial {
    std::vector<PatternWord> cand;
    std::vector<double> leak;
    std::vector<std::uint8_t> bits;  ///< free-source values of the block winner
    double min = 0.0;                ///< block-local minimum leakage
    double first = 0.0;              ///< leak[0]; consumed for block 0 only
  };
  std::vector<TernaryBlockSimulator> sims;
  sims.reserve(static_cast<std::size_t>(T));
  std::vector<Partial> parts(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    sims.emplace_back(nl, W, opts.backend);
    broadcast_fixed(sims.back());
    parts[static_cast<std::size_t>(t)].cand.assign(
        nfree * static_cast<std::size_t>(W), PatternWord{0});
    parts[static_cast<std::size_t>(t)].leak.assign(lanes, 0.0);
    parts[static_cast<std::size_t>(t)].bits.assign(nfree, 0);
  }

  bool have_best = false;
  double best = 0.0;
  std::vector<std::uint8_t> best_bits(nfree, 0);

  ordered_block_sweep(
      pool, nblocks,
      [&](int t, std::size_t b) {
        Partial& part = parts[static_cast<std::size_t>(t)];
        TernaryBlockSimulator& sim = sims[static_cast<std::size_t>(t)];
        const std::size_t base = b * lanes;
        const std::size_t batch = std::min(lanes, total - base);
        // Assemble candidate words lane by lane so the rng stream matches
        // the scalar engine trial-for-trial.
        Rng rng;
        std::fill(part.cand.begin(), part.cand.end(), PatternWord{0});
        for (std::size_t lane = 0; lane < batch; ++lane) {
          if (lane % 64 == 0) {
            rng.reseed(block_seed(opts.seed, (base + lane) / 64));
          }
          const std::size_t w = lane / 64;
          const PatternWord bit = PatternWord{1} << (lane % 64);
          for (std::size_t j = 0; j < nfree; ++j) {
            if (rng.next_bool()) part.cand[j * W + w] |= bit;
          }
        }
        for (std::size_t j = 0; j < nfree; ++j) {
          for (int w = 0; w < W; ++w) {
            sim.set_source_word(free_sources[j], w, part.cand[j * W + w]);
          }
        }
        sim.eval();
        leval.eval(sim, part.leak);
        part.first = part.leak[0];
        // Block-local earliest strict minimum.
        bool have = false;
        for (std::size_t lane = 0; lane < batch; ++lane) {
          if (have && !(part.leak[lane] < part.min)) continue;
          have = true;
          part.min = part.leak[lane];
          const std::size_t w = lane / 64;
          const PatternWord bit = PatternWord{1} << (lane % 64);
          for (std::size_t j = 0; j < nfree; ++j) {
            part.bits[j] = (part.cand[j * W + w] & bit) != 0;
          }
        }
      },
      [&](int t, std::size_t b) {
        const Partial& part = parts[static_cast<std::size_t>(t)];
        if (b == 0) res.first_leakage_na = part.first;
        if (!have_best || part.min < best) {
          have_best = true;
          best = part.min;
          best_bits = part.bits;
        }
      });

  res.best_leakage_na = best;
  res.trials = trials;
  std::size_t j = 0;
  for (std::size_t i : free_pi) pi_pattern[i] = from_bool(best_bits[j++] != 0);
  for (std::size_t i : free_mux) {
    mux_pattern[i] = from_bool(best_bits[j++] != 0);
  }
  return res;
}

}  // namespace

FillResult fill_dont_cares_min_leakage(const Netlist& nl,
                                       const LeakageModel& model,
                                       std::vector<Logic>& pi_pattern,
                                       std::vector<Logic>& mux_pattern,
                                       const std::vector<bool>& mux_eligible,
                                       const FillOptions& opts) {
  SP_CHECK(pi_pattern.size() == nl.inputs().size(),
           "fill: pi_pattern size mismatch");
  SP_CHECK(mux_pattern.size() == nl.dffs().size() &&
               mux_eligible.size() == nl.dffs().size(),
           "fill: mux_pattern size mismatch");

  // Free positions: X PIs and X *eligible* mux cells.
  std::vector<std::size_t> free_pi;
  std::vector<std::size_t> free_mux;
  for (std::size_t i = 0; i < pi_pattern.size(); ++i) {
    if (pi_pattern[i] == Logic::X) free_pi.push_back(i);
  }
  for (std::size_t i = 0; i < mux_pattern.size(); ++i) {
    if (mux_eligible[i] && mux_pattern[i] == Logic::X) free_mux.push_back(i);
  }

  FillResult res;
  res.free_inputs = free_pi.size() + free_mux.size();

  return opts.packed ? fill_packed(nl, model, pi_pattern, mux_pattern,
                                   mux_eligible, opts, free_pi, free_mux, res)
                     : fill_scalar(nl, model, pi_pattern, mux_pattern,
                                   mux_eligible, opts, free_pi, free_mux, res);
}

}  // namespace scanpower
