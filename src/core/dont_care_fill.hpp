#pragma once
// Don't-care filling for the controlled inputs that remain unassigned
// after FindControlledInputPattern().
//
// The paper fills them with the input-vector-control recipe of
// [Halter/Najm]: "applying several random inputs and examining the total
// leakage for each of them" -- the number of required samples is far
// smaller than the 2^k vector space. The non-controlled pseudo-inputs
// stay X and contribute their expected leakage, so the objective is the
// same X-aware leakage the scan-mode average measures.

#include <cstdint>

#include "atpg/sim_backend.hpp"
#include "netlist/netlist.hpp"
#include "power/leakage_model.hpp"
#include "sim/logic.hpp"

namespace scanpower {

class ThreadPool;

struct FillOptions {
  int trials = 64;           ///< random candidates examined
  std::uint64_t seed = 0xf111f111ULL;
  bool minimize_leakage = true;  ///< false: take the first random fill
                                 ///< (baseline behaviour)
  /// Packed engine: all candidate fills are scored as bit lanes of
  /// 3-valued packed sweeps (64*block_words candidates each); the
  /// non-multiplexed cells stay X lanes-wide and contribute expected
  /// leakage through the (state, xmask) tables. Draws the same random
  /// stream and computes bit-identical leakage to the scalar engine, so
  /// both pick the same fill. false = scalar reference (one 3-valued
  /// Simulator pass + circuit_leakage_na walk per trial).
  ///
  /// Every 64-trial word draws from a generator seeded by (seed, trial /
  /// 64) alone -- in both engines -- so trial blocks are independent and
  /// the packed engine can partition them across a worker pool.
  bool packed = true;
  /// Pattern words per packed sweep (1, 2, 4, 8, 16 or 32; 16/32 require
  /// the wide backend).
  int block_words = 4;
  /// Worker threads for the packed sweep; 1 = serial, 0 = all cores.
  /// Results are bit-identical across thread counts: candidate blocks
  /// have fixed per-block seeds and block results are merged in
  /// ascending block order.
  int num_threads = 1;
  /// Kernel backend for the packed sweep; Auto = best available for the
  /// width. Results are bit-identical across backends.
  SimBackend backend = SimBackend::Auto;
  /// Borrowed per-(netlist, model) leakage tables for the packed engine;
  /// null = build a private copy per call (the one-shot cost a
  /// ScanSession amortizes). Must match the (netlist, model) pair passed
  /// to fill_dont_cares_min_leakage.
  const GateLeakageTables* tables = nullptr;
  /// Borrowed worker pool; null = create a private one of num_threads
  /// workers. Any pool size produces bit-identical fills.
  ThreadPool* pool = nullptr;
};

struct FillResult {
  double best_leakage_na = 0.0;   ///< expected leakage of the chosen fill
  double first_leakage_na = 0.0;  ///< leakage of the first (random) fill
  int trials = 0;
  std::size_t free_inputs = 0;    ///< number of X positions filled
};

/// Fills every X in `pi_pattern` / `mux_pattern` in place. Positions of
/// `mux_pattern` marked X that correspond to non-multiplexed cells must be
/// excluded by the caller passing `mux_eligible` (true = cell is
/// multiplexed and may be assigned).
FillResult fill_dont_cares_min_leakage(const Netlist& nl,
                                       const LeakageModel& model,
                                       std::vector<Logic>& pi_pattern,
                                       std::vector<Logic>& mux_pattern,
                                       const std::vector<bool>& mux_eligible,
                                       const FillOptions& opts = {});

}  // namespace scanpower
