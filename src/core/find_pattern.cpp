#include "core/find_pattern.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "power/packed_leakage.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace scanpower {

namespace {

/// Gate categories for transition propagation ("Update TNS, TGS"):
/// gates without a controlling value always pass transitions.
bool always_propagates(GateType t) {
  switch (t) {
    case GateType::Buf:
    case GateType::Not:
    case GateType::Xor:
    case GateType::Xnor:
    case GateType::Mux:  // conservative: a toggling input can reach out
      return true;
    default:
      return false;
  }
}

}  // namespace

FindPatternResult find_controlled_input_pattern(const Netlist& nl,
                                                const MuxPlan& mux_plan,
                                                const CapacitanceModel& caps,
                                                const FindPatternOptions& opts) {
  SP_CHECK(nl.finalized(),
           "find_controlled_input_pattern requires a finalized netlist");
  SP_CHECK(mux_plan.multiplexed.size() == nl.dffs().size(),
           "find_controlled_input_pattern: plan/netlist mismatch");

  // Controlled inputs: PIs (optionally) + multiplexed pseudo-inputs.
  std::vector<bool> controllable(nl.num_gates(), false);
  if (opts.control_primary_inputs) {
    for (GateId pi : nl.inputs()) controllable[pi] = true;
  }
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    if (mux_plan.multiplexed[i]) controllable[nl.dffs()[i]] = true;
  }

  // Directive: leakage observability when provided (the paper), depth
  // otherwise (the undirected baseline).
  DepthDirective depth_directive;
  std::unique_ptr<ObservabilityDirective> obs_directive;
  const BacktraceDirective* directive = &depth_directive;
  if (opts.observability) {
    SP_CHECK(opts.observability->size() == nl.num_gates(),
             "find_controlled_input_pattern: observability size mismatch");
    obs_directive = std::make_unique<ObservabilityDirective>(*opts.observability);
    directive = obs_directive.get();
  }
  Justifier justifier(nl, controllable, directive);

  const std::vector<double> loads = caps.load_vector(nl);

  FindPatternResult res;
  res.transition_nodes.assign(nl.num_gates(), false);

  // TGS as an ordered set keyed by (-load, id): largest output capacitance
  // first, deterministic ties.
  struct TgsKey {
    double neg_load;
    GateId id;
    bool operator<(const TgsKey& o) const {
      return neg_load != o.neg_load ? neg_load < o.neg_load : id < o.id;
    }
  };
  std::set<TgsKey> tgs;
  std::vector<bool> in_tgs(nl.num_gates(), false);
  std::vector<bool> tgs_done(nl.num_gates(), false);

  auto tgs_insert = [&](GateId g) {
    if (in_tgs[g] || tgs_done[g] || res.transition_nodes[g]) return;
    in_tgs[g] = true;
    tgs.insert({-loads[g], g});
  };
  auto tgs_erase = [&](GateId g) {
    if (!in_tgs[g]) return;
    in_tgs[g] = false;
    tgs.erase({-loads[g], g});
  };

  // "Update TNS, TGS": propagate transition marks from a worklist of newly
  // transitioning lines; gates with open side inputs become TGS members.
  std::vector<GateId> worklist;
  auto mark_transition = [&](GateId g) {
    if (res.transition_nodes[g]) return;
    res.transition_nodes[g] = true;
    tgs_erase(g);  // a transitioning line is no longer a blocking site
    worklist.push_back(g);
  };

  auto update = [&]() {
    while (!worklist.empty()) {
      const GateId tn = worklist.back();
      worklist.pop_back();
      for (GateId target : nl.fanouts(tn)) {
        const GateType t = nl.type(target);
        if (t == GateType::Dff) continue;  // D pin: no further propagation
        if (res.transition_nodes[target] || tgs_done[target]) continue;
        if (always_propagates(t)) {
          mark_transition(target);
          continue;
        }
        const auto cv = controlling_value(t);
        SP_ASSERT(cv.has_value(), "unexpected gate type in update");
        // A settled controlling value on any input blocks the transition.
        bool blocked = false;
        bool has_open = false;  // X side input (potential blocking site)
        for (GateId f : nl.fanins(target)) {
          if (res.transition_nodes[f]) continue;  // transitioning input
          const Logic v = justifier.value(f);
          if (v == from_bool(*cv)) {
            blocked = true;
            break;
          }
          if (v == Logic::X) has_open = true;
        }
        if (blocked) continue;
        if (!has_open) {
          // Every side input settled non-controlling: transitions pass.
          mark_transition(target);
        } else {
          tgs_insert(target);
        }
      }
    }
  };

  // Step 1: initialize TNS with the non-multiplexed pseudo-inputs (and,
  // when PIs are not controlled, the primary inputs as well -- they hold
  // arbitrary values across the session in that configuration).
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    if (!mux_plan.multiplexed[i]) mark_transition(nl.dffs()[i]);
  }
  if (!opts.control_primary_inputs) {
    for (GateId pi : nl.inputs()) mark_transition(pi);
  }
  // Step 2: initial update.
  update();

  // Step 3: main loop.
  while (!tgs.empty()) {
    const GateId mc_tg = tgs.begin()->id;
    tgs_erase(mc_tg);
    tgs_done[mc_tg] = true;
    if (res.transition_nodes[mc_tg]) continue;  // resolved meanwhile

    const GateType t = nl.type(mc_tg);
    const auto cv = controlling_value(t);
    SP_ASSERT(cv.has_value(), "TGS member without controlling value");

    // Re-examine: commitments made for earlier gates may already settle
    // this one.
    bool blocked = false;
    std::vector<GateId> candidates;
    bool all_side_settled = true;
    for (GateId f : nl.fanins(mc_tg)) {
      if (res.transition_nodes[f]) continue;
      const Logic v = justifier.value(f);
      if (v == from_bool(*cv)) {
        blocked = true;
        break;
      }
      if (v == Logic::X) {
        all_side_settled = false;
        if (justifier.can_control(f)) candidates.push_back(f);
      }
    }
    if (blocked) {
      ++res.gates_blocked;
      continue;
    }

    // Candidate order: by leakage observability for the controlling value
    // ("If there is more than one option, select based on leakage
    // observability") -- cv == 1 prefers minimum observability, cv == 0
    // maximum; without observability, by position (first don't-care
    // input).
    if (opts.observability && candidates.size() > 1) {
      const auto& obs = *opts.observability;
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](GateId a, GateId b) {
                         return *cv ? obs[a] < obs[b] : obs[a] > obs[b];
                       });
    }
    for (GateId cand : candidates) {
      if (justifier.justify(cand, *cv, opts.justify_backtrack_limit)) {
        blocked = true;
        break;
      }
    }

    if (blocked) {
      ++res.gates_blocked;
      // The justification may have settled other lines; gates waiting in
      // TGS re-check themselves when popped, and newly settled controlling
      // values can only help. Nothing to re-propagate: a blocked gate's
      // output is a settled constant.
      continue;
    }
    ++res.gates_propagated;
    (void)all_side_settled;
    // Blocking failed: the transition escapes through mc_tg.
    mark_transition(mc_tg);
    update();
  }

  // Step 4: save the assigned values on the controlled inputs.
  res.pi_pattern.reserve(nl.inputs().size());
  for (GateId pi : nl.inputs()) {
    res.pi_pattern.push_back(opts.control_primary_inputs
                                 ? justifier.assignment()[pi]
                                 : Logic::X);
  }
  res.mux_pattern.reserve(nl.dffs().size());
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    res.mux_pattern.push_back(mux_plan.multiplexed[i]
                                  ? justifier.assignment()[nl.dffs()[i]]
                                  : Logic::X);
  }
  res.implied_values = justifier.values();

  // Final transition analysis: commitments made late in the main loop can
  // settle controlling values on gates that were already marked as
  // propagating, so the worklist marks are conservative. Recompute the
  // transition set as a fixpoint over the *final* assignment.
  {
    std::fill(res.transition_nodes.begin(), res.transition_nodes.end(), false);
    std::vector<GateId> work;
    auto mark = [&](GateId g) {
      if (!res.transition_nodes[g]) {
        res.transition_nodes[g] = true;
        work.push_back(g);
      }
    };
    for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
      if (!mux_plan.multiplexed[i]) mark(nl.dffs()[i]);
    }
    if (!opts.control_primary_inputs) {
      for (GateId pi : nl.inputs()) mark(pi);
    }
    while (!work.empty()) {
      const GateId tn = work.back();
      work.pop_back();
      for (GateId target : nl.fanouts(tn)) {
        const GateType t = nl.type(target);
        if (t == GateType::Dff) continue;
        if (res.transition_nodes[target]) continue;
        if (always_propagates(t)) {
          mark(target);
          continue;
        }
        const auto cv = controlling_value(t);
        bool blocked = false;
        for (GateId f : nl.fanins(target)) {
          if (res.transition_nodes[f]) continue;
          if (justifier.value(f) == from_bool(*cv)) {
            blocked = true;
            break;
          }
        }
        if (!blocked) mark(target);
      }
    }
  }
  res.transition_lines = static_cast<std::size_t>(
      std::count(res.transition_nodes.begin(), res.transition_nodes.end(), true));
  SP_LOG_INFO(strprintf(
      "find_pattern[%s]: %zu blocked, %zu propagated, %zu transition lines",
      nl.name().c_str(), res.gates_blocked, res.gates_propagated,
      res.transition_lines));
  return res;
}

MinLeakageSearchResult min_leakage_vector_search(
    const Netlist& nl, const LeakageModel& model,
    const MinLeakageSearchOptions& opts) {
  SP_CHECK(nl.finalized(),
           "min_leakage_vector_search requires a finalized netlist");
  SP_CHECK(is_valid_block_words(opts.block_words),
           "min_leakage_vector_search: block_words must be 1, 2, 4, 8, 16 or 32");
  SP_CHECK(opts.sweeps >= 1, "min_leakage_vector_search: need >= 1 sweep");

  const int W = opts.block_words;
  const std::size_t lanes = static_cast<std::size_t>(W) * 64;
  std::vector<GateId> sources;
  sources.reserve(nl.inputs().size() + nl.dffs().size());
  for (GateId pi : nl.inputs()) sources.push_back(pi);
  for (GateId ff : nl.dffs()) sources.push_back(ff);
  const std::size_t n_src = sources.size();

  const GateLeakageTables tables(nl, model);
  const PackedLeakageEvaluator leval(nl, tables, opts.backend);
  const int T = ThreadPool::resolve_threads(opts.num_threads);
  ThreadPool pool(T);

  std::vector<BlockSimulator> sims;
  std::vector<std::vector<double>> leak_buf(static_cast<std::size_t>(T));
  sims.reserve(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    sims.emplace_back(nl, W, opts.backend);
    leak_buf[static_cast<std::size_t>(t)].resize(lanes);
  }

  MinLeakageSearchResult res;

  // ---- random-restart stage --------------------------------------------
  // Sweep s draws from a generator seeded by (opts.seed, s) alone; sweep
  // partials merge in ascending sweep order with strict improvement
  // (ordered_block_sweep), so the winner is independent of the thread
  // count.
  struct SweepBest {
    double leak = 0.0;
    std::vector<std::uint8_t> bits;
  };
  std::vector<SweepBest> parts(static_cast<std::size_t>(T));
  for (SweepBest& p : parts) p.bits.resize(n_src);

  double best = 0.0;
  std::vector<std::uint8_t> best_bits(n_src, 0);
  bool have_best = false;

  const std::size_t sweeps = static_cast<std::size_t>(opts.sweeps);
  ordered_block_sweep(
      pool, sweeps,
      [&](int t, std::size_t s) {
        SweepBest& part = parts[static_cast<std::size_t>(t)];
        BlockSimulator& sim = sims[static_cast<std::size_t>(t)];
        Rng rng(block_seed(opts.seed, s));
        for (GateId src : sources) {
          for (int w = 0; w < W; ++w) {
            sim.set_source_word(src, w, rng.next_u64());
          }
        }
        sim.eval();
        double* const leak = leak_buf[static_cast<std::size_t>(t)].data();
        leval.eval(sim, {leak, lanes});
        std::size_t arg = 0;
        for (std::size_t lane = 1; lane < lanes; ++lane) {
          if (leak[lane] < leak[arg]) arg = lane;
        }
        part.leak = leak[arg];
        const std::size_t w = arg / 64;
        for (std::size_t j = 0; j < n_src; ++j) {
          part.bits[j] = (sim.word(sources[j], static_cast<int>(w)) >>
                          (arg % 64)) &
                         1;
        }
      },
      [&](int t, std::size_t) {
        const SweepBest& part = parts[static_cast<std::size_t>(t)];
        if (!have_best || part.leak < best) {
          have_best = true;
          best = part.leak;
          best_bits = part.bits;
        }
      });
  res.vectors_evaluated = sweeps * lanes;
  res.random_best_na = best;

  // ---- refinement stage -------------------------------------------------
  // Steepest descent over single-bit flips: every neighbour of the
  // incumbent is one lane of a batch (lane j flips source chunk+j);
  // unflipped tail lanes replay the incumbent and cannot win a strict
  // improvement.
  BlockSimulator& sim = sims[0];
  double* const leak = leak_buf[0].data();
  while (res.refine_flips < opts.max_refine_flips) {
    double cand_best = best;
    std::size_t cand_flip = static_cast<std::size_t>(-1);
    for (std::size_t chunk = 0; chunk < n_src; chunk += lanes) {
      const std::size_t m = std::min(lanes, n_src - chunk);
      for (std::size_t j = 0; j < n_src; ++j) {
        const PatternWord bc = best_bits[j] ? ~PatternWord{0} : 0;
        for (int w = 0; w < W; ++w) sim.set_source_word(sources[j], w, bc);
      }
      for (std::size_t j = 0; j < m; ++j) {
        const int w = static_cast<int>(j / 64);
        sim.set_source_word(sources[chunk + j], w,
                            sim.word(sources[chunk + j], w) ^
                                (PatternWord{1} << (j % 64)));
      }
      sim.eval();
      leval.eval(sim, {leak, lanes});
      for (std::size_t j = 0; j < m; ++j) {
        if (leak[j] < cand_best) {
          cand_best = leak[j];
          cand_flip = chunk + j;
        }
      }
      res.vectors_evaluated += m;
    }
    if (cand_flip == static_cast<std::size_t>(-1)) break;
    best_bits[cand_flip] ^= 1;
    best = cand_best;
    ++res.refine_flips;
  }

  res.best_leakage_na = best;
  res.pi.reserve(nl.inputs().size());
  res.ppi.reserve(nl.dffs().size());
  for (std::size_t j = 0; j < n_src; ++j) {
    const Logic v = from_bool(best_bits[j] != 0);
    if (j < nl.inputs().size()) {
      res.pi.push_back(v);
    } else {
      res.ppi.push_back(v);
    }
  }
  SP_LOG_INFO(strprintf(
      "min_leakage_search[%s]: random best %.1f nA -> refined %.1f nA "
      "(%d flips, %zu vectors)",
      nl.name().c_str(), res.random_best_na, res.best_leakage_na,
      res.refine_flips, res.vectors_evaluated));
  return res;
}

}  // namespace scanpower
