#pragma once
// FindControlledInputPattern() -- the paper's core procedure (Section 4).
//
// Inputs: a mapped netlist, the mux plan (which pseudo-inputs are
// controlled), leakage observability of every line, and an output-
// capacitance model. Output: one scan-mode pattern for the controlled
// inputs that blocks as many scan-chain transitions as possible, biased
// toward low leakage by the observability directive.
//
// Worklists:
//   TNS (transition node set): lines that carry transitions during shift.
//   TGS (transition gate set): gates fed by a transition whose outcome is
//     still open (they have unassigned side inputs that could receive the
//     controlling value).
//
// Main loop (paper pseudocode): pick the TGS gate with the largest output
// capacitance (mc_tg), try to justify its controlling value on one of its
// don't-care side inputs (candidate order and the Justify() backtrace are
// both directed by leakage observability); on failure the transition
// propagates: mc_tg's output joins TNS and its fanout gates are
// (re)examined.
//
// Note on the published pseudocode: step f ("add all fan-out nodes of
// mc_tg to TNS") is reached via the Goto in step d.iii even when blocking
// *succeeded*; propagating a blocked gate's output would mark constant
// lines as transitioning, so we implement the semantically consistent
// reading -- fanouts are added only when every candidate fails.

#include <vector>

#include "atpg/backtrace_directive.hpp"
#include "core/justify.hpp"
#include "netlist/netlist.hpp"
#include "scan/add_mux.hpp"
#include "sim/logic.hpp"
#include "timing/delay_model.hpp"

namespace scanpower {

struct FindPatternOptions {
  /// Leakage observability per line; enables the paper's directive for
  /// candidate selection and backtrace. May be null (undirected baseline,
  /// as in the input-control technique [8]).
  const std::vector<double>* observability = nullptr;
  int justify_backtrack_limit = 500;
  /// Whether primary inputs are controllable (true for both the paper's
  /// method and the input-control baseline).
  bool control_primary_inputs = true;
};

struct FindPatternResult {
  /// Pattern over primary inputs, ordered like Netlist::inputs(); X =
  /// don't care (to be filled later).
  std::vector<Logic> pi_pattern;
  /// Constants for multiplexed cells, ordered like Netlist::dffs(); X for
  /// non-multiplexed cells (and still-free multiplexed ones).
  std::vector<Logic> mux_pattern;
  /// Implied 3-valued internal values under the pattern (non-controlled
  /// pseudo-inputs X).
  std::vector<Logic> implied_values;
  /// Lines marked as carrying transitions when the procedure finished.
  std::vector<bool> transition_nodes;
  std::size_t gates_blocked = 0;     ///< TGS entries resolved by justification
  std::size_t gates_propagated = 0;  ///< TGS entries whose transition escaped
  std::size_t transition_lines = 0;  ///< |TNS| at exit
};

FindPatternResult find_controlled_input_pattern(
    const Netlist& nl, const MuxPlan& mux_plan, const CapacitanceModel& caps,
    const FindPatternOptions& opts = {});

}  // namespace scanpower
