#pragma once
// FindControlledInputPattern() -- the paper's core procedure (Section 4).
//
// Inputs: a mapped netlist, the mux plan (which pseudo-inputs are
// controlled), leakage observability of every line, and an output-
// capacitance model. Output: one scan-mode pattern for the controlled
// inputs that blocks as many scan-chain transitions as possible, biased
// toward low leakage by the observability directive.
//
// Worklists:
//   TNS (transition node set): lines that carry transitions during shift.
//   TGS (transition gate set): gates fed by a transition whose outcome is
//     still open (they have unassigned side inputs that could receive the
//     controlling value).
//
// Main loop (paper pseudocode): pick the TGS gate with the largest output
// capacitance (mc_tg), try to justify its controlling value on one of its
// don't-care side inputs (candidate order and the Justify() backtrace are
// both directed by leakage observability); on failure the transition
// propagates: mc_tg's output joins TNS and its fanout gates are
// (re)examined.
//
// Note on the published pseudocode: step f ("add all fan-out nodes of
// mc_tg to TNS") is reached via the Goto in step d.iii even when blocking
// *succeeded*; propagating a blocked gate's output would mark constant
// lines as transitioning, so we implement the semantically consistent
// reading -- fanouts are added only when every candidate fails.

#include <vector>

#include "atpg/backtrace_directive.hpp"
#include "atpg/sim_backend.hpp"
#include "core/justify.hpp"
#include "netlist/netlist.hpp"
#include "power/leakage_model.hpp"
#include "scan/add_mux.hpp"
#include "sim/logic.hpp"
#include "timing/delay_model.hpp"

namespace scanpower {

struct FindPatternOptions {
  /// Leakage observability per line; enables the paper's directive for
  /// candidate selection and backtrace. May be null (undirected baseline,
  /// as in the input-control technique [8]).
  const std::vector<double>* observability = nullptr;
  int justify_backtrack_limit = 500;
  /// Whether primary inputs are controllable (true for both the paper's
  /// method and the input-control baseline).
  bool control_primary_inputs = true;
};

struct FindPatternResult {
  /// Pattern over primary inputs, ordered like Netlist::inputs(); X =
  /// don't care (to be filled later).
  std::vector<Logic> pi_pattern;
  /// Constants for multiplexed cells, ordered like Netlist::dffs(); X for
  /// non-multiplexed cells (and still-free multiplexed ones).
  std::vector<Logic> mux_pattern;
  /// Implied 3-valued internal values under the pattern (non-controlled
  /// pseudo-inputs X).
  std::vector<Logic> implied_values;
  /// Lines marked as carrying transitions when the procedure finished.
  std::vector<bool> transition_nodes;
  std::size_t gates_blocked = 0;     ///< TGS entries resolved by justification
  std::size_t gates_propagated = 0;  ///< TGS entries whose transition escaped
  std::size_t transition_lines = 0;  ///< |TNS| at exit
};

FindPatternResult find_controlled_input_pattern(
    const Netlist& nl, const MuxPlan& mux_plan, const CapacitanceModel& caps,
    const FindPatternOptions& opts = {});

// ---- packed minimum-leakage vector search ----------------------------------
//
// The standby-vector search ([14]'s random-sampling recipe, which the
// paper reuses for don't-care filling) evaluated one scalar vector at a
// time. The packed stage evaluates 64*block_words fully specified
// candidate vectors per sweep on the BlockSimulator + GateLeakageTables
// engine: a random-restart stage (each sweep drawn from a fixed per-sweep
// seed, sweeps partitioned across a worker pool, partials merged in sweep
// order so the result is bit-identical for any thread count) followed by
// a steepest-descent refinement stage that scores every single-bit
// neighbour of the incumbent as lanes of one batch.

struct MinLeakageSearchOptions {
  int sweeps = 8;             ///< random-restart sweeps (64*W vectors each)
  int max_refine_flips = 64;  ///< accepted single-bit refinement moves
  /// Pattern words per sweep (1, 2, 4, 8, 16 or 32; 16/32 require the
  /// wide backend).
  int block_words = 4;
  int num_threads = 1;        ///< workers for the random stage (0 = all cores)
  /// Kernel backend for the packed sweeps; Auto = best available for the
  /// width. Results are bit-identical across backends.
  SimBackend backend = SimBackend::Auto;
  std::uint64_t seed = 0x3ea2c0de5ee51eafULL;
};

struct MinLeakageSearchResult {
  /// Best vector found, ordered like Netlist::inputs() / Netlist::dffs().
  std::vector<Logic> pi;
  std::vector<Logic> ppi;
  double best_leakage_na = 0.0;    ///< after refinement
  double random_best_na = 0.0;     ///< best of the random-restart stage
  std::size_t vectors_evaluated = 0;
  int refine_flips = 0;            ///< accepted refinement moves
};

/// Searches for a minimum-leakage standby vector over all sources (PIs
/// and scan cells).
MinLeakageSearchResult min_leakage_vector_search(
    const Netlist& nl, const LeakageModel& model,
    const MinLeakageSearchOptions& opts = {});

}  // namespace scanpower
