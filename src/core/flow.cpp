// Deprecated one-shot wrappers over the stateful ScanSession API: each
// call constructs a throwaway session, pays the full shared-state build
// (collapsed faults, observation cones, leakage tables, good-machine
// blocks, worker pool) and throws it away -- exactly the cost
// ScanSession amortizes for multi-query workloads. Kept for source
// compatibility only; in-repo callers are migrated and CI enforces
// -Werror=deprecated-declarations on them.

#include "core/flow.hpp"

// The wrappers below intentionally implement the deprecated entry points;
// silence the self-referential deprecation warnings for this one TU.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

#include "core/session.hpp"

namespace scanpower {

ScanPowerResult run_proposed(const Netlist& nl, const TestSet& tests,
                             const FlowOptions& opts, FlowResult* details) {
  ScanSession session(nl, opts);
  return session.run_proposed(tests, details);
}

DiagnosisResult run_diagnosis(const Netlist& nl,
                              std::span<const TestPattern> patterns,
                              const FailureLog& log,
                              const DiagnosisOptions& opts) {
  FlowOptions fopts;
  fopts.diag = opts;
  ScanSession session(nl, fopts);
  session.bind_patterns(patterns);
  return session.diagnose(Evidence(log));
}

DiagnosisResult run_compacted_diagnosis(const Netlist& nl,
                                        std::span<const TestPattern> patterns,
                                        const SignatureLog& log,
                                        const DiagnosisOptions& opts) {
  FlowOptions fopts;
  fopts.diag = opts;
  ScanSession session(nl, fopts);
  session.bind_patterns(patterns);
  return session.diagnose(Evidence(log));
}

FlowResult run_flow(const Netlist& nl, const FlowOptions& opts) {
  ScanSession session(nl, opts);
  return session.run_flow();
}

}  // namespace scanpower
