#include "core/flow.hpp"

#include <memory>

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace scanpower {

namespace {

/// Implied internal values under a final control pattern: controlled
/// inputs at their constants, everything else X.
std::vector<Logic> implied_scan_values(const Netlist& nl,
                                       std::span<const Logic> pi_pattern,
                                       std::span<const Logic> mux_pattern) {
  Simulator sim(nl);
  for (std::size_t k = 0; k < nl.inputs().size(); ++k) {
    sim.set_input(nl.inputs()[k],
                  pi_pattern.empty() ? Logic::X : pi_pattern[k]);
  }
  for (std::size_t c = 0; c < nl.dffs().size(); ++c) {
    sim.set_state(nl.dffs()[c],
                  mux_pattern.empty() ? Logic::X : mux_pattern[c]);
  }
  sim.eval();
  return sim.values();
}

}  // namespace

namespace {

/// Applies FlowOptions::max_power_patterns (truncation keeps the original
/// scan-in sequence, so all structures see identical stimulus).
TestSet capped_tests(const TestSet& tests, std::size_t cap) {
  if (cap == 0 || tests.patterns.size() <= cap) return tests;
  TestSet out = tests;
  out.patterns.resize(cap);
  return out;
}

}  // namespace

ScanPowerResult run_proposed(const Netlist& nl, const TestSet& tests,
                             const FlowOptions& opts, FlowResult* details) {
  const LeakageModel leakage(opts.leakage_params);
  const CapacitanceModel& caps = opts.delay.caps();

  // --- AddMUX -----------------------------------------------------------
  MuxPlan plan;
  if (opts.insert_muxes) {
    plan = plan_muxes(nl, opts.delay, opts.mux);
  } else {
    plan.multiplexed.assign(nl.dffs().size(), false);
    plan.base_critical_delay_ps = 0.0;
  }

  // --- leakage observability ---------------------------------------------
  std::unique_ptr<LeakageObservability> obs;
  if (opts.use_observability_directive) {
    obs = std::make_unique<LeakageObservability>(nl, leakage,
                                                 opts.observability);
  }

  // --- FindControlledInputPattern -----------------------------------------
  FindPatternOptions fopts;
  fopts.observability = obs ? &obs->values() : nullptr;
  fopts.justify_backtrack_limit = opts.justify_backtrack_limit;
  FindPatternResult pat = find_controlled_input_pattern(nl, plan, caps, fopts);

  // --- don't-care filling --------------------------------------------------
  FillOptions fill_opts = opts.fill;
  fill_opts.minimize_leakage = opts.do_min_leakage_fill;
  const FillResult fill = fill_dont_cares_min_leakage(
      nl, leakage, pat.pi_pattern, pat.mux_pattern, plan.multiplexed,
      fill_opts);

  // --- pin reordering -------------------------------------------------------
  // Work on a copy: reordering is a physical rewrite of the circuit.
  Netlist tuned = nl;
  ReorderResult reorder;
  if (opts.do_pin_reorder) {
    const std::vector<Logic> scan_vals =
        implied_scan_values(nl, pat.pi_pattern, pat.mux_pattern);
    reorder = reorder_pins_for_leakage(tuned, leakage, scan_vals);
  }

  // --- evaluation -------------------------------------------------------------
  ScanPowerEvaluator eval(tuned, leakage, caps, opts.power);
  const TestSet eval_tests = capped_tests(tests, opts.max_power_patterns);
  const ScanPowerResult power =
      eval.evaluate(eval_tests, pat.pi_pattern, pat.mux_pattern, opts.scan);

  if (details) {
    details->mux_plan = plan;
    details->pattern = pat;
    details->fill = fill;
    details->reorder = reorder;
  }
  return power;
}

DiagnosisResult run_diagnosis(const Netlist& nl,
                              std::span<const TestPattern> patterns,
                              const FailureLog& log,
                              const DiagnosisOptions& opts) {
  SP_CHECK(nl.finalized(), "run_diagnosis requires a finalized netlist");
  const std::vector<Fault> faults = collapse_faults(nl);
  Diagnoser diag(nl, opts);
  DiagnosisResult res = diag.diagnose(patterns, faults, log);
  log_info(strprintf(
      "diagnosis[%s]: %zu failures over %zu patterns -> %zu/%zu candidates, "
      "best %s (tfsf %llu, tfsp %llu, tpsf %llu)",
      nl.name().c_str(), res.num_failures, res.num_failing_patterns,
      res.num_candidates, res.num_faults,
      res.ranked.empty() ? "<none>" : res.ranked[0].fault.to_string(nl).c_str(),
      res.ranked.empty() ? 0ULL
                         : static_cast<unsigned long long>(res.ranked[0].tfsf),
      res.ranked.empty() ? 0ULL
                         : static_cast<unsigned long long>(res.ranked[0].tfsp),
      res.ranked.empty() ? 0ULL
                         : static_cast<unsigned long long>(res.ranked[0].tpsf)));
  return res;
}

DiagnosisResult run_compacted_diagnosis(const Netlist& nl,
                                        std::span<const TestPattern> patterns,
                                        const SignatureLog& log,
                                        const DiagnosisOptions& opts) {
  SP_CHECK(nl.finalized(), "run_compacted_diagnosis requires a finalized netlist");
  const std::vector<Fault> faults = collapse_faults(nl);
  SignatureDiagnoser diag(nl, opts);
  DiagnosisResult res = diag.diagnose(patterns, faults, log);
  log_info(strprintf(
      "compacted diagnosis[%s]: %zu/%zu failing windows (MISR width %d, "
      "window %d, %zu masked point-windows) -> %zu/%zu candidates, best %s "
      "(tfsf %llu, tfsp %llu, tpsf %llu)",
      nl.name().c_str(), res.num_failing_windows, res.num_windows,
      log.misr.width, log.misr.window, res.num_masked, res.num_candidates,
      res.num_faults,
      res.ranked.empty() ? "<none>" : res.ranked[0].fault.to_string(nl).c_str(),
      res.ranked.empty() ? 0ULL
                         : static_cast<unsigned long long>(res.ranked[0].tfsf),
      res.ranked.empty() ? 0ULL
                         : static_cast<unsigned long long>(res.ranked[0].tfsp),
      res.ranked.empty() ? 0ULL
                         : static_cast<unsigned long long>(res.ranked[0].tpsf)));
  return res;
}

FlowResult run_flow(const Netlist& nl, const FlowOptions& opts) {
  SP_CHECK(nl.finalized(), "run_flow requires a finalized netlist");
  FlowResult res;
  res.circuit = nl.name();
  res.stats = compute_stats(nl);

  const LeakageModel leakage(opts.leakage_params);
  const CapacitanceModel& caps = opts.delay.caps();

  // Shared test set (the paper uses the same ATOM vectors for all three
  // structures; "no test vector reordering or scan cell reordering").
  const TestSet tests = generate_tests(nl, opts.tpg);
  res.num_patterns = tests.patterns.size();
  res.fault_coverage = tests.fault_coverage();

  const TestSet eval_tests = capped_tests(tests, opts.max_power_patterns);

  // --- traditional scan -------------------------------------------------
  {
    ScanPowerEvaluator eval(nl, leakage, caps, opts.power);
    res.traditional = eval.evaluate(eval_tests, {}, {}, opts.scan);
  }

  // --- input control [8] --------------------------------------------------
  {
    MuxPlan no_mux;
    no_mux.multiplexed.assign(nl.dffs().size(), false);
    FindPatternOptions fopts;
    fopts.observability = nullptr;  // undirected
    fopts.justify_backtrack_limit = opts.justify_backtrack_limit;
    FindPatternResult pat =
        find_controlled_input_pattern(nl, no_mux, caps, fopts);
    FillOptions fill_opts = opts.fill;
    fill_opts.minimize_leakage = false;  // [8] targets transitions only
    fill_dont_cares_min_leakage(nl, leakage, pat.pi_pattern, pat.mux_pattern,
                                no_mux.multiplexed, fill_opts);
    ScanPowerEvaluator eval(nl, leakage, caps, opts.power);
    res.input_control =
        eval.evaluate(eval_tests, pat.pi_pattern, {}, opts.scan);
  }

  // --- proposed ------------------------------------------------------------
  res.proposed = run_proposed(nl, tests, opts, &res);

  res.dyn_vs_traditional_pct = improvement_pct(
      res.traditional.dynamic_per_hz_uw, res.proposed.dynamic_per_hz_uw);
  res.stat_vs_traditional_pct =
      improvement_pct(res.traditional.static_uw, res.proposed.static_uw);
  res.dyn_vs_input_control_pct = improvement_pct(
      res.input_control.dynamic_per_hz_uw, res.proposed.dynamic_per_hz_uw);
  res.stat_vs_input_control_pct =
      improvement_pct(res.input_control.static_uw, res.proposed.static_uw);

  log_info(strprintf(
      "flow[%s]: dyn %.3e -> %.3e uW/Hz (%.1f%%), stat %.2f -> %.2f uW (%.1f%%)",
      nl.name().c_str(), res.traditional.dynamic_per_hz_uw,
      res.proposed.dynamic_per_hz_uw, res.dyn_vs_traditional_pct,
      res.traditional.static_uw, res.proposed.static_uw,
      res.stat_vs_traditional_pct));
  return res;
}

}  // namespace scanpower
