#pragma once
// End-to-end experiment flow: the three columns of Table I for one
// circuit.
//
//   traditional scan : no input control; PIs hold the previously applied
//                      test's values during shift.
//   input control [8]: a transition-blocking pattern on the PIs only
//                      (C-algorithm analogue: same TNS/TGS engine,
//                      undirected, no muxes, first-random don't-care
//                      fill, no pin reordering).
//   proposed         : AddMUX + observability-directed
//                      FindControlledInputPattern + min-leakage don't-care
//                      fill + pin reordering.
//
// All three share the same ATPG test set, scan protocol and power models,
// so the only differences are the paper's knobs. Option toggles expose
// each stage for the ablation benches.

#include <string>

#include "atpg/tpg.hpp"
#include "compact/compact_diag.hpp"
#include "compact/misr.hpp"
#include "compact/signature_log.hpp"
#include "core/dont_care_fill.hpp"
#include "core/find_pattern.hpp"
#include "core/pin_reorder.hpp"
#include "diag/diagnose.hpp"
#include "diag/response.hpp"
#include "netlist/netlist.hpp"
#include "netlist/stats.hpp"
#include "power/observability.hpp"
#include "power/power_est.hpp"
#include "scan/scan_sim.hpp"
#include "timing/delay_model.hpp"

namespace scanpower {

struct FlowOptions {
  TpgOptions tpg;
  DiagnosisOptions diag;  ///< used by the diagnosis flow entry points
  MisrConfig misr;        ///< response-compaction config (compacted diagnosis)
  ObservabilityOptions observability;
  MuxPlanOptions mux;
  FillOptions fill;
  int justify_backtrack_limit = 500;
  ScanSimOptions scan;
  PowerConfig power;
  DelayModel delay;
  LeakageParams leakage_params;
  /// Cap on the number of patterns *power-simulated* (0 = all). The
  /// dynamic/static figures are per-cycle averages, so a few hundred
  /// patterns estimate them tightly; large circuits use this to keep
  /// Table-I runs laptop-sized. Test generation itself is never capped.
  std::size_t max_power_patterns = 0;

  // Ablation toggles (all on = the paper's method).
  bool use_observability_directive = true;
  bool do_min_leakage_fill = true;
  bool do_pin_reorder = true;
  bool insert_muxes = true;
};

struct FlowResult {
  std::string circuit;
  NetlistStats stats;

  std::size_t num_patterns = 0;
  double fault_coverage = 0.0;

  MuxPlan mux_plan;
  FindPatternResult pattern;    ///< proposed method's pattern search
  FillResult fill;
  ReorderResult reorder;

  ScanPowerResult traditional;
  ScanPowerResult input_control;
  ScanPowerResult proposed;

  // Improvement percentages, as printed in Table I.
  double dyn_vs_traditional_pct = 0.0;
  double stat_vs_traditional_pct = 0.0;
  double dyn_vs_input_control_pct = 0.0;
  double stat_vs_input_control_pct = 0.0;
};

/// Percentage improvement of `ours` over `base` (positive = better).
inline double improvement_pct(double base, double ours) {
  return base == 0.0 ? 0.0 : 100.0 * (base - ours) / base;
}

}  // namespace scanpower
