#include "core/justify.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace scanpower {

Justifier::Justifier(const Netlist& nl, std::vector<bool> controllable,
                     const BacktraceDirective* directive)
    : nl_(&nl),
      controllable_(std::move(controllable)),
      directive_(directive ? directive : &default_directive_) {
  SP_CHECK(nl.finalized(), "Justifier requires a finalized netlist");
  SP_CHECK(controllable_.size() == nl.num_gates(),
           "Justifier: controllable mask size mismatch");
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (!controllable_[id]) continue;
    const GateType t = nl.type(id);
    SP_CHECK(t == GateType::Input || t == GateType::Dff,
             "Justifier: controllable point " + nl.gate_name(id) +
                 " is not a source");
  }
  assign_.assign(nl.num_gates(), Logic::X);
  values_.assign(nl.num_gates(), Logic::X);

  // can_control: a line is influenceable iff it is a controlled input or
  // any fanin is influenceable (monotone over the topological order).
  can_control_.assign(nl.num_gates(), false);
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (controllable_[id]) can_control_[id] = true;
  }
  for (GateId id : nl.topo_order()) {
    for (GateId f : nl.fanins(id)) {
      if (can_control_[f]) {
        can_control_[id] = true;
        break;
      }
    }
  }
  imply();
}

void Justifier::imply() {
  const Netlist& nl = *nl_;
  for (GateId pi : nl.inputs()) {
    values_[pi] = controllable_[pi] ? assign_[pi] : Logic::X;
  }
  for (GateId ff : nl.dffs()) {
    values_[ff] = controllable_[ff] ? assign_[ff] : Logic::X;
  }
  std::vector<Logic> ins;
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    ins.clear();
    for (GateId f : g.fanins) ins.push_back(values_[f]);
    values_[id] = eval_gate(g.type, ins);
  }
}

void Justifier::preset(GateId source, bool value) {
  SP_CHECK(controllable_[source], "preset on a non-controlled input");
  SP_CHECK(assign_[source] == Logic::X || assign_[source] == from_bool(value),
           "preset contradicts an earlier commitment on " +
               nl_->gate_name(source));
  assign_[source] = from_bool(value);
  imply();
}

std::pair<GateId, Logic> Justifier::backtrace(GateId node, bool value) const {
  const Netlist& nl = *nl_;
  GateId cur = node;
  bool v = value;
  for (;;) {
    const GateType t = nl.type(cur);
    if (controllable_[cur]) return {cur, from_bool(v)};
    if (t == GateType::Input || t == GateType::Dff || !can_control_[cur] ||
        t == GateType::Const0 || t == GateType::Const1) {
      return {kInvalidGate, Logic::X};  // dead end
    }
    const Gate& g = nl.gate(cur);
    const bool want = is_inverting(t) ? !v : v;
    std::vector<GateId> candidates;
    for (GateId f : g.fanins) {
      if (values_[f] == Logic::X && can_control_[f]) candidates.push_back(f);
    }
    if (candidates.empty()) return {kInvalidGate, Logic::X};
    const auto cv = controlling_value(t);
    GateId chosen;
    bool next_value;
    if (cv) {
      const bool needs_controlling =
          (want == (t == GateType::Or || t == GateType::Nor));
      const bool target = needs_controlling ? *cv : !*cv;
      chosen = directive_->choose(nl, cur, candidates, target);
      next_value = target;
    } else if (t == GateType::Buf || t == GateType::Not) {
      chosen = g.fanins[0];
      next_value = want;
    } else {
      chosen = directive_->choose(nl, cur, candidates, want);
      next_value = want;
    }
    cur = chosen;
    v = next_value;
  }
}

bool Justifier::justify(GateId node, bool value, int backtrack_limit) {
  const Logic target = from_bool(value);
  if (values_[node] == target) return true;
  if (values_[node] != Logic::X) return false;  // contradicts commitments
  if (!can_control_[node]) return false;

  std::vector<Decision> decisions;
  int backtracks = 0;

  auto rollback_all = [&]() {
    for (const Decision& d : decisions) assign_[d.point] = Logic::X;
    decisions.clear();
    imply();
  };

  // Flips the most recent unflipped decision of *this* call; false when
  // the local decision tree is exhausted (or the budget ran out).
  auto backtrack = [&]() -> bool {
    while (!decisions.empty()) {
      Decision& d = decisions.back();
      if (!d.flipped && backtracks < backtrack_limit) {
        d.flipped = true;
        d.value = logic_not(d.value);
        assign_[d.point] = d.value;
        ++backtracks;
        imply();
        return true;
      }
      assign_[d.point] = Logic::X;
      decisions.pop_back();
    }
    return false;
  };

  for (;;) {
    if (values_[node] == target) return true;  // committed
    if (values_[node] != Logic::X) {
      if (!backtrack()) {
        rollback_all();
        return false;
      }
      continue;
    }
    // values_[node] == X: extend the assignment toward the objective.
    const auto [point, pv] = backtrace(node, value);
    if (point == kInvalidGate) {
      // No controllable X line supports the objective from here.
      if (!backtrack()) {
        rollback_all();
        return false;
      }
      continue;
    }
    SP_ASSERT(assign_[point] == Logic::X,
              "justify backtrace chose an assigned point");
    assign_[point] = pv;
    decisions.push_back({point, pv, false});
    imply();
  }
}

}  // namespace scanpower
