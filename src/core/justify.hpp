#pragma once
// Justify(): PODEM-like line justification over the *controlled inputs*
// (primary inputs + multiplexed pseudo-inputs), the engine behind
// FindControlledInputPattern().
//
// Differences from ATPG PODEM:
//  - no fault machine: one 3-valued circuit;
//  - decision points are the controlled inputs only; non-controlled
//    pseudo-inputs are permanently X (their values change every shift
//    cycle, so nothing may depend on them);
//  - justifications are *cumulative*: each successful justify() commits
//    its assignments and later calls must respect them. A failed call
//    rolls back everything it assigned.
//
// The backtrace tie-break is the pluggable BacktraceDirective; the paper
// drives it with leakage observability so that, of the many blocking
// vectors, a low-leakage one is found.

#include <vector>

#include "atpg/backtrace_directive.hpp"
#include "netlist/netlist.hpp"
#include "sim/logic.hpp"

namespace scanpower {

class Justifier {
 public:
  /// `controllable[g]` marks gates (must be Input/Dff) whose value the
  /// scan-mode pattern may fix.
  Justifier(const Netlist& nl, std::vector<bool> controllable,
            const BacktraceDirective* directive = nullptr);

  /// Attempts to set line `node` to `value`. Commits on success; restores
  /// the previous state on failure. Returns success.
  bool justify(GateId node, bool value, int backtrack_limit = 500);

  /// Pre-assigns a controlled input (e.g. an externally chosen constant).
  /// Throws if it contradicts an earlier commitment.
  void preset(GateId source, bool value);

  /// Current 3-valued circuit values under the committed assignment
  /// (non-controlled sources X).
  const std::vector<Logic>& values() const { return values_; }
  Logic value(GateId id) const { return values_[id]; }

  /// Committed controlled-input assignment (X = still free).
  const std::vector<Logic>& assignment() const { return assign_; }

  const std::vector<bool>& controllable() const { return controllable_; }

  /// True if the line's value can be influenced by controlled inputs
  /// (i.e. its fanin cone reaches at least one controlled input).
  bool can_control(GateId id) const { return can_control_[id]; }

 private:
  struct Decision {
    GateId point;
    Logic value;
    bool flipped;
  };

  void imply();
  std::pair<GateId, Logic> backtrace(GateId node, bool value) const;

  const Netlist* nl_;
  std::vector<bool> controllable_;
  std::vector<bool> can_control_;
  DepthDirective default_directive_;
  const BacktraceDirective* directive_;
  std::vector<Logic> assign_;
  std::vector<Logic> values_;
};

}  // namespace scanpower
