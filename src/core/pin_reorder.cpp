#include "core/pin_reorder.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace scanpower {

ReorderResult reorder_pins_for_leakage(Netlist& nl, const LeakageModel& model,
                                       std::span<const Logic> scan_values) {
  SP_CHECK(scan_values.size() == nl.num_gates(),
           "reorder_pins_for_leakage: value vector size mismatch");
  ReorderResult res;
  std::vector<Logic> ins;
  std::vector<Logic> permuted;
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    const Gate& g = nl.gate(id);
    if (!is_symmetric(g.type)) continue;
    const std::size_t width = g.fanins.size();
    if (width < 2 || width > 6) continue;  // factorial guard
    ++res.gates_considered;

    ins.clear();
    for (GateId f : g.fanins) ins.push_back(scan_values[f]);
    const double before = model.cell_expected_leakage_na(g.type, ins);

    // Try every distinct permutation of the observed value multiset.
    std::vector<int> perm(width);
    std::iota(perm.begin(), perm.end(), 0);
    std::vector<int> best_perm = perm;
    double best = before;
    std::sort(perm.begin(), perm.end(), [&](int a, int b) {
      return static_cast<int>(ins[static_cast<std::size_t>(a)]) <
             static_cast<int>(ins[static_cast<std::size_t>(b)]);
    });
    // Iterate permutations of pin sources; skip value-identical repeats by
    // permuting the sorted order with next_permutation over *values*.
    std::vector<int> p = perm;
    do {
      permuted.clear();
      for (int src : p) permuted.push_back(ins[static_cast<std::size_t>(src)]);
      const double leak = model.cell_expected_leakage_na(g.type, permuted);
      if (leak + 1e-12 < best) {
        best = leak;
        best_perm = p;
      }
    } while (std::next_permutation(p.begin(), p.end(), [&](int a, int b) {
      // Order permutations by (value, source index) so next_permutation
      // enumerates each arrangement once.
      const int va = static_cast<int>(ins[static_cast<std::size_t>(a)]);
      const int vb = static_cast<int>(ins[static_cast<std::size_t>(b)]);
      return va != vb ? va < vb : a < b;
    }));

    res.leakage_before_na += before;
    res.leakage_after_na += best;
    bool identity = true;
    for (std::size_t i = 0; i < width; ++i) {
      if (best_perm[i] != static_cast<int>(i)) identity = false;
    }
    if (!identity) {
      nl.permute_fanins(id, best_perm);
      ++res.gates_permuted;
    }
  }
  return res;
}

}  // namespace scanpower
