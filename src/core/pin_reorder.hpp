#pragma once
// Symmetric-gate input reordering for scan-mode leakage (Section 4,
// Figure 2 of the paper).
//
// The leakage of a cell depends on *which pin* carries which value: a
// NAND2 at "01" leaks 73 nA, at "10" 264 nA. Once the scan-mode values of
// all internal lines are known (the controlled-input pattern applied,
// non-controlled lines X), each symmetric gate's pins can be permuted --
// a function-preserving rewrite -- so the gate sits in its cheapest
// state. X inputs participate with their expected leakage.

#include <span>

#include "netlist/netlist.hpp"
#include "power/leakage_model.hpp"
#include "sim/logic.hpp"

namespace scanpower {

struct ReorderResult {
  std::size_t gates_considered = 0;
  std::size_t gates_permuted = 0;
  double leakage_before_na = 0.0;  ///< over reordered gates only
  double leakage_after_na = 0.0;
  double saved_na() const { return leakage_before_na - leakage_after_na; }
};

/// Permutes fanins of symmetric gates in place to minimize expected
/// leakage under `scan_values` (3-valued, indexed by gate id). The
/// netlist's logic function is unchanged.
ReorderResult reorder_pins_for_leakage(Netlist& nl, const LeakageModel& model,
                                       std::span<const Logic> scan_values);

}  // namespace scanpower
