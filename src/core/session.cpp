#include "core/session.hpp"

#include <algorithm>

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace scanpower {

namespace {

/// Applies FlowOptions::max_power_patterns (truncation keeps the original
/// scan-in sequence, so all structures see identical stimulus).
TestSet capped_tests(const TestSet& tests, std::size_t cap) {
  if (cap == 0 || tests.patterns.size() <= cap) return tests;
  TestSet out = tests;
  out.patterns.resize(cap);
  return out;
}

/// Implied internal values under a final control pattern: controlled
/// inputs at their constants, everything else X.
std::vector<Logic> implied_scan_values(const Netlist& nl,
                                       std::span<const Logic> pi_pattern,
                                       std::span<const Logic> mux_pattern) {
  Simulator sim(nl);
  for (std::size_t k = 0; k < nl.inputs().size(); ++k) {
    sim.set_input(nl.inputs()[k],
                  pi_pattern.empty() ? Logic::X : pi_pattern[k]);
  }
  for (std::size_t c = 0; c < nl.dffs().size(); ++c) {
    sim.set_state(nl.dffs()[c],
                  mux_pattern.empty() ? Logic::X : mux_pattern[c]);
  }
  sim.eval();
  return sim.values();
}

}  // namespace

ScanSession::ScanSession(Netlist nl, FlowOptions opts)
    : nl_(std::move(nl)), opts_(std::move(opts)),
      model_(opts_.leakage_params) {
  // Validate every engine knob up front, naming the knob -- the same
  // misconfigurations used to surface as failures deep inside the engines.
  validate_flow_options(nl_, opts_, "ScanSession");

  // Every engine built from these option copies reports into the session
  // scope. Safe: a session is neither copyable nor movable, so the
  // pointer never dangles while an engine lives.
  opts_.diag.telemetry = &telemetry_;
  opts_.tpg.fault_sim.telemetry = &telemetry_;
}

ScanSession::ScanSession(std::shared_ptr<const DesignContext> ctx,
                         FlowOptions opts)
    : ctx_(std::move(ctx)), opts_(std::move(opts)),
      model_(opts_.leakage_params) {
  SP_CHECK(ctx_ != nullptr, "ScanSession: null DesignContext");
  validate_flow_options(ctx_->netlist(), opts_, "ScanSession");
  opts_.diag.telemetry = &telemetry_;
  opts_.tpg.fault_sim.telemetry = &telemetry_;
}

ScanSession::ScanSession(std::shared_ptr<const DesignContext> ctx)
    : ScanSession(ctx, ctx == nullptr ? FlowOptions{} : ctx->options()) {}

ScanSession::~ScanSession() = default;

MetricsSnapshot ScanSession::metrics() {
  MetricsSnapshot snap = telemetry_.metrics.snapshot();
  if constexpr (kTelemetryEnabled) {
    const auto set = [&snap](CounterId id, std::uint64_t v) {
      snap.counters[static_cast<std::size_t>(id)] = v;
    };
    // Cache and pool tallies live on the owning objects as absolute
    // lifetime values; overwrite (never add) the registry slots so
    // repeated snapshots stay correct.
    if (ctx_) {
      // Shared context: cone tallies aggregate across every tenant (the
      // cache itself is design-wide state).
      set(CounterId::kConeCacheHits, ctx_->cones().hits());
      set(CounterId::kConeCacheMisses, ctx_->cones().misses());
    } else if (cones_) {
      set(CounterId::kConeCacheHits, cones_->hits());
      set(CounterId::kConeCacheMisses, cones_->misses());
    }
    set(CounterId::kGoodCacheBinds, goods_.binds());
    set(CounterId::kGoodCacheBuiltBlocks, goods_.built_blocks());
    set(CounterId::kGoodCacheBuildUs, goods_.build_us());
    set(CounterId::kGoodCacheCachedReads, goods_.cached_reads());
    set(CounterId::kGoodCacheStreamedReads, goods_.streamed_reads());
    snap.gauges[static_cast<std::size_t>(GaugeId::kGoodBlocksCached)] =
        static_cast<std::int64_t>(goods_.blocks_cached());
    if (pool_) {
      const ThreadPool::Stats ps = pool_->stats();
      set(CounterId::kPoolRuns, ps.runs);
      set(CounterId::kPoolJobs, ps.jobs);
      set(CounterId::kPoolBusyUs, ps.busy_us);
      snap.gauges[static_cast<std::size_t>(GaugeId::kPoolWorkers)] =
          pool_->size();
    }
  }
  return snap;
}

ThreadPool& ScanSession::pool() {
  if (!pool_) {
    const int t = std::max(
        {ThreadPool::resolve_threads(opts_.diag.num_threads),
         ThreadPool::resolve_threads(opts_.observability.num_threads),
         ThreadPool::resolve_threads(opts_.fill.num_threads)});
    pool_ = std::make_unique<ThreadPool>(t);
  }
  return *pool_;
}

const std::vector<Fault>& ScanSession::faults() {
  if (ctx_) return ctx_->faults();
  if (!faults_) {
    faults_ = std::make_unique<std::vector<Fault>>(collapse_faults(nl()));
  }
  return *faults_;
}

const ObservationPoints& ScanSession::points() {
  if (ctx_) return ctx_->points();
  if (!points_) points_ = std::make_unique<ObservationPoints>(nl());
  return *points_;
}

ObservationConeCache& ScanSession::cones() {
  if (ctx_) return ctx_->cones();  // fully pre-built: concurrent-safe hits
  if (!cones_) {
    cones_ = std::make_unique<ObservationConeCache>(nl(), points());
  }
  return *cones_;
}

const GateLeakageTables& ScanSession::leakage_tables() {
  if (ctx_) return ctx_->leakage_tables();
  if (!tables_) {
    tables_ = std::make_unique<GateLeakageTables>(nl(), leakage_model());
  }
  return *tables_;
}

const LeakageObservability& ScanSession::observability() {
  if (!obs_) {
    ObservabilityOptions o = opts_.observability;
    if (o.method == ObservabilityMethod::MonteCarlo && o.packed) {
      o.tables = &leakage_tables();
      o.pool = &pool();
    }
    obs_ = std::make_unique<LeakageObservability>(nl(), leakage_model(), o);
  }
  return *obs_;
}

const TestSet& ScanSession::tests() {
  // Deliberately NOT forwarded to the context: a tenant's opts_.tpg may
  // differ from the context's, and generate_tests is deterministic, so
  // building locally keeps results bit-identical to an isolated session
  // at the cost of duplicating ATPG for flow-running tenants. Tenants
  // that want the shared set use context()->tests() explicitly.
  if (!tests_) {
    tests_ = std::make_unique<TestSet>(generate_tests(nl(), opts_.tpg));
  }
  return *tests_;
}

void ScanSession::bind_patterns(std::span<const TestPattern> patterns) {
  SP_CHECK(!patterns.empty(),
           "ScanSession::bind_patterns: empty pattern set (a bound test set "
           "must contain at least one pattern)");
  if (has_patterns_ && bound_.size() == patterns.size() &&
      std::equal(patterns.begin(), patterns.end(), bound_.begin())) {
    telemetry_.metrics.add(0, CounterId::kSessionPatternBindHits);
    return;  // identical content: every pattern-keyed cache stays valid
  }
  telemetry_.metrics.add(0, CounterId::kSessionPatternBinds);
  bound_.assign(patterns.begin(), patterns.end());
  filled_ = zero_filled_patterns(bound_);
  has_patterns_ = true;
  goods_.bind(nl(), effective_patterns(), opts_.diag.block_words,
              GoodBlockCache::kDefaultMaxCachedBlocks, opts_.diag.backend);
  // Per-MisrConfig compaction states rebind themselves lazily (they
  // compare the bound content on next use).
}

void ScanSession::bind_tests() { bind_patterns(tests().patterns); }

void ScanSession::require_bound() const {
  SP_CHECK(has_patterns_,
           "ScanSession: no pattern set bound -- call bind_patterns() or "
           "bind_tests() before diagnose()/inject()");
}

void ScanSession::require_fully_specified(const char* what) const {
  SP_CHECK(filled_.empty(),
           strprintf("ScanSession: %s needs a fully specified pattern set, "
                     "but the bound set carries X bits (compacted diagnosis "
                     "X-masks them instead; for full-response flows fill the "
                     "patterns first)",
                     what));
}

Diagnoser& ScanSession::diagnoser() {
  if (!diagnoser_) {
    diagnoser_ = std::make_unique<Diagnoser>(nl(), opts_.diag, pool(), points(),
                                             cones(), goods_);
  }
  return *diagnoser_;
}

SignatureDiagnoser& ScanSession::sig_diagnoser() {
  if (!sig_diagnoser_) {
    sig_diagnoser_ = std::make_unique<SignatureDiagnoser>(
        nl(), opts_.diag, pool(), points(), cones(), goods_);
  }
  return *sig_diagnoser_;
}

ResponseCapture& ScanSession::capture() {
  if (!capture_) {
    capture_ = std::make_unique<ResponseCapture>(nl(), opts_.diag.block_words,
                                                 opts_.diag.backend);
  }
  return *capture_;
}

SignatureCapture& ScanSession::compact_state(const MisrConfig& cfg) {
  // Each entry is a self-contained SignatureCapture (own pattern copy +
  // response capture); the duplication is bounded by the handful of MISR
  // configurations a session sees, and none of it sits on the diagnosis
  // hot path -- entries only build the per-config plan/expected once and
  // serve synthetic injection.
  (void)Misr(cfg);  // full MISR validation before keying on resolved_poly()
  const auto key = std::make_tuple(cfg.width, cfg.resolved_poly(), cfg.window);
  auto it = compact_.find(key);
  if (it == compact_.end()) {
    telemetry_.metrics.add(0, CounterId::kSessionCompactStateMisses);
    telemetry_.metrics.add(0, CounterId::kXMaskBuilds);
    it = compact_
             .emplace(key, std::make_unique<SignatureCapture>(
                               nl(), cfg, opts_.diag.block_words,
                               opts_.diag.backend))
             .first;
  } else {
    telemetry_.metrics.add(0, CounterId::kSessionCompactStateHits);
  }
  {
    // Covers the lazy (X-mask plan, expected signatures) build; a no-op
    // rebind costs one pattern comparison, so the counter stays honest.
    TraceSpan span(&telemetry_, "compact_state.bind", 0,
                   CounterId::kXMaskBuildUs);
    it->second->bind(bound_);  // no-op while the bound content is unchanged
  }
  return *it->second;
}

void ScanSession::validate_evidence(const FailureLog& log) {
  SP_CHECK(log.num_patterns == bound_.size(),
           strprintf("ScanSession::diagnose: failure log covers %zu patterns "
                     "but the bound set has %zu",
                     log.num_patterns, bound_.size()));
  const std::size_t num_points = points().size();
  for (const Failure& f : log.failures) {
    SP_CHECK(f.pattern < log.num_patterns,
             strprintf("ScanSession::diagnose: failure record (pattern %u, "
                       "point %u) outside the %zu-pattern log",
                       f.pattern, f.op, log.num_patterns));
    SP_CHECK(f.op < num_points,
             strprintf("ScanSession::diagnose: failure record (pattern %u, "
                       "point %u) outside the %zu-point observation space",
                       f.pattern, f.op, num_points));
  }
}

DiagnosisResult ScanSession::diagnose_full(const FailureLog& log) {
  require_bound();
  require_fully_specified("full-response diagnosis");
  validate_evidence(log);
  telemetry_.metrics.add(0, CounterId::kSessionDiagnoseFull);
  TraceSpan span(&telemetry_, "session.diagnose_full", 0);
  DiagnosisResult res = diagnoser().diagnose(effective_patterns(), faults(), log);
  SP_LOG_INFO(strprintf(
      "diagnosis[%s]: %zu failures over %zu patterns -> %zu/%zu candidates, "
      "best %s (tfsf %llu, tfsp %llu, tpsf %llu)%s%s",
      nl().name().c_str(), res.num_failures, res.num_failing_patterns,
      res.num_candidates, res.num_faults,
      res.ranked.empty() ? "<none>" : res.ranked[0].fault.to_string(nl()).c_str(),
      res.ranked.empty() ? 0ULL
                         : static_cast<unsigned long long>(res.ranked[0].tfsf),
      res.ranked.empty() ? 0ULL
                         : static_cast<unsigned long long>(res.ranked[0].tfsp),
      res.ranked.empty() ? 0ULL
                         : static_cast<unsigned long long>(res.ranked[0].tpsf),
      res.union_fallback ? ", union-pruning fallback" : "",
      res.multiplets.empty()
          ? ""
          : strprintf(", %zu suspect sets (top covers %zu/%zu failing "
                      "patterns)",
                      res.multiplets.size(), res.multiplets[0].covered,
                      res.num_failing_patterns)
                .c_str()));
  return res;
}

DiagnosisResult ScanSession::diagnose_compacted(const SignatureLog& log) {
  require_bound();
  telemetry_.metrics.add(0, CounterId::kSessionDiagnoseCompact);
  TraceSpan span(&telemetry_, "session.diagnose_compacted", 0);
  SignatureCapture& cs = compact_state(log.misr);
  DiagnosisResult res = sig_diagnoser().diagnose_with(
      effective_patterns(), faults(), log, cs.mask(), cs.expected());
  SP_LOG_INFO(strprintf(
      "compacted diagnosis[%s]: %zu/%zu failing windows (MISR width %d, "
      "window %d, %zu masked point-windows) -> %zu/%zu candidates, best %s "
      "(tfsf %llu, tfsp %llu, tpsf %llu)",
      nl().name().c_str(), res.num_failing_windows, res.num_windows,
      log.misr.width, log.misr.window, res.num_masked, res.num_candidates,
      res.num_faults,
      res.ranked.empty() ? "<none>" : res.ranked[0].fault.to_string(nl()).c_str(),
      res.ranked.empty() ? 0ULL
                         : static_cast<unsigned long long>(res.ranked[0].tfsf),
      res.ranked.empty() ? 0ULL
                         : static_cast<unsigned long long>(res.ranked[0].tfsp),
      res.ranked.empty() ? 0ULL
                         : static_cast<unsigned long long>(res.ranked[0].tpsf)));
  return res;
}

DiagnosisResult ScanSession::diagnose(const Evidence& evidence) {
  return std::visit(
      [&](const auto& log) -> DiagnosisResult {
        using T = std::decay_t<decltype(log)>;
        if constexpr (std::is_same_v<T, FailureLog>) {
          return diagnose_full(log);
        } else {
          return diagnose_compacted(log);
        }
      },
      evidence);
}

std::vector<DiagnosisResult> ScanSession::diagnose_batch(
    std::span<const Evidence> evidence) {
  require_bound();
  telemetry_.metrics.add(0, CounterId::kSessionBatches);
  TraceSpan span(&telemetry_, "session.diagnose_batch", 0);
  std::vector<DiagnosisResult> results(evidence.size());

  // Full-response logs are batched: prune serially, then fan the logs
  // round-robin across the worker pool (each log scored wholly within one
  // worker). Compacted logs keep their per-log pool-parallel candidate
  // sweep; their shared state (plan, expected signatures, good blocks) is
  // already cached on the session, so there is nothing left to batch.
  std::vector<const FailureLog*> full;
  std::vector<std::size_t> full_at;
  for (std::size_t i = 0; i < evidence.size(); ++i) {
    if (const FailureLog* log = std::get_if<FailureLog>(&evidence[i])) {
      full.push_back(log);
      full_at.push_back(i);
    } else {
      results[i] = diagnose_compacted(std::get<SignatureLog>(evidence[i]));
    }
  }
  if (!full.empty()) {
    require_fully_specified("full-response diagnosis");
    for (const FailureLog* log : full) validate_evidence(*log);
    std::vector<DiagnosisResult> rs =
        diagnoser().diagnose_batch(effective_patterns(), faults(), full);
    for (std::size_t k = 0; k < rs.size(); ++k) {
      results[full_at[k]] = std::move(rs[k]);
    }
    SP_LOG_INFO(strprintf("diagnosis batch[%s]: %zu failure logs over %zu "
                       "patterns on %d workers",
                       nl().name().c_str(), full.size(), bound_.size(),
                       pool().size()));
  }
  return results;
}

FailureLog ScanSession::inject(const Fault& f) {
  require_bound();
  require_fully_specified("full-response injection");
  return capture().inject(effective_patterns(), f);
}

FailureLog ScanSession::inject(std::span<const Fault> faults) {
  require_bound();
  require_fully_specified("full-response injection");
  return capture().inject(effective_patterns(), faults);
}

SignatureLog ScanSession::inject_compacted(const Fault& f) {
  return inject_compacted(f, opts_.misr);
}

SignatureLog ScanSession::inject_compacted(const Fault& f,
                                           const MisrConfig& cfg) {
  require_bound();
  return compact_state(cfg).inject(bound_, f);
}

SignatureLog ScanSession::inject_compacted(std::span<const Fault> faults) {
  return inject_compacted(faults, opts_.misr);
}

SignatureLog ScanSession::inject_compacted(std::span<const Fault> faults,
                                           const MisrConfig& cfg) {
  require_bound();
  return compact_state(cfg).inject(bound_, faults);
}

FillResult ScanSession::fill(std::vector<Logic>& pi_pattern,
                             std::vector<Logic>& mux_pattern,
                             const std::vector<bool>& mux_eligible) {
  FillOptions fo = opts_.fill;
  if (fo.packed) {
    fo.tables = &leakage_tables();
    fo.pool = &pool();
  }
  return fill_dont_cares_min_leakage(nl(), leakage_model(), pi_pattern, mux_pattern,
                                     mux_eligible, fo);
}

ScanPowerResult ScanSession::power_report(const TestSet& tests,
                                          std::span<const Logic> pi_control,
                                          std::span<const Logic> mux_control) {
  ScanPowerEvaluator eval(nl(), leakage_model(), opts_.delay.caps(), opts_.power);
  return eval.evaluate(capped_tests(tests, opts_.max_power_patterns),
                       pi_control, mux_control, opts_.scan);
}

ScanPowerResult ScanSession::power_report() { return power_report(tests()); }

ScanPowerResult ScanSession::run_proposed(const TestSet& tests,
                                          FlowResult* details) {
  const CapacitanceModel& caps = opts_.delay.caps();

  // --- AddMUX -----------------------------------------------------------
  MuxPlan plan;
  if (opts_.insert_muxes) {
    plan = plan_muxes(nl(), opts_.delay, opts_.mux);
  } else {
    plan.multiplexed.assign(nl().dffs().size(), false);
    plan.base_critical_delay_ps = 0.0;
  }

  // --- FindControlledInputPattern ---------------------------------------
  FindPatternOptions fopts;
  fopts.observability =
      opts_.use_observability_directive ? &observability().values() : nullptr;
  fopts.justify_backtrack_limit = opts_.justify_backtrack_limit;
  FindPatternResult pat = find_controlled_input_pattern(nl(), plan, caps, fopts);

  // --- don't-care filling ------------------------------------------------
  FillOptions fill_opts = opts_.fill;
  fill_opts.minimize_leakage = opts_.do_min_leakage_fill;
  if (fill_opts.packed) {
    fill_opts.tables = &leakage_tables();
    fill_opts.pool = &pool();
  }
  const FillResult fill = fill_dont_cares_min_leakage(
      nl(), leakage_model(), pat.pi_pattern, pat.mux_pattern,
      plan.multiplexed, fill_opts);

  // --- pin reordering -----------------------------------------------------
  // Work on a copy: reordering is a physical rewrite of the circuit.
  Netlist tuned = nl();
  ReorderResult reorder;
  if (opts_.do_pin_reorder) {
    const std::vector<Logic> scan_vals =
        implied_scan_values(nl(), pat.pi_pattern, pat.mux_pattern);
    reorder = reorder_pins_for_leakage(tuned, leakage_model(), scan_vals);
  }

  // --- evaluation ---------------------------------------------------------
  ScanPowerEvaluator eval(tuned, leakage_model(), caps, opts_.power);
  const TestSet eval_tests = capped_tests(tests, opts_.max_power_patterns);
  const ScanPowerResult power =
      eval.evaluate(eval_tests, pat.pi_pattern, pat.mux_pattern, opts_.scan);

  if (details) {
    details->mux_plan = plan;
    details->pattern = pat;
    details->fill = fill;
    details->reorder = reorder;
  }
  return power;
}

FlowResult ScanSession::run_flow() {
  telemetry_.metrics.add(0, CounterId::kSessionFlowRuns);
  TraceSpan flow_span(&telemetry_, "session.run_flow", 0);
  FlowResult res;
  res.circuit = nl().name();
  res.stats = compute_stats(nl());

  const CapacitanceModel& caps = opts_.delay.caps();

  // Shared test set (the paper uses the same ATOM vectors for all three
  // structures; "no test vector reordering or scan cell reordering").
  const TestSet& shared_tests = tests();
  res.num_patterns = shared_tests.patterns.size();
  res.fault_coverage = shared_tests.fault_coverage();

  const TestSet eval_tests =
      capped_tests(shared_tests, opts_.max_power_patterns);

  // --- traditional scan -------------------------------------------------
  {
    ScanPowerEvaluator eval(nl(), leakage_model(), caps, opts_.power);
    res.traditional = eval.evaluate(eval_tests, {}, {}, opts_.scan);
  }

  // --- input control [8] --------------------------------------------------
  {
    MuxPlan no_mux;
    no_mux.multiplexed.assign(nl().dffs().size(), false);
    FindPatternOptions fopts;
    fopts.observability = nullptr;  // undirected
    fopts.justify_backtrack_limit = opts_.justify_backtrack_limit;
    FindPatternResult pat =
        find_controlled_input_pattern(nl(), no_mux, caps, fopts);
    FillOptions fill_opts = opts_.fill;
    fill_opts.minimize_leakage = false;  // [8] targets transitions only
    if (fill_opts.packed) {
      fill_opts.tables = &leakage_tables();
      fill_opts.pool = &pool();
    }
    fill_dont_cares_min_leakage(nl(), leakage_model(), pat.pi_pattern, pat.mux_pattern,
                                no_mux.multiplexed, fill_opts);
    ScanPowerEvaluator eval(nl(), leakage_model(), caps, opts_.power);
    res.input_control =
        eval.evaluate(eval_tests, pat.pi_pattern, {}, opts_.scan);
  }

  // --- proposed ------------------------------------------------------------
  res.proposed = run_proposed(shared_tests, &res);

  res.dyn_vs_traditional_pct = improvement_pct(
      res.traditional.dynamic_per_hz_uw, res.proposed.dynamic_per_hz_uw);
  res.stat_vs_traditional_pct =
      improvement_pct(res.traditional.static_uw, res.proposed.static_uw);
  res.dyn_vs_input_control_pct = improvement_pct(
      res.input_control.dynamic_per_hz_uw, res.proposed.dynamic_per_hz_uw);
  res.stat_vs_input_control_pct =
      improvement_pct(res.input_control.static_uw, res.proposed.static_uw);

  SP_LOG_INFO(strprintf(
      "flow[%s]: dyn %.3e -> %.3e uW/Hz (%.1f%%), stat %.2f -> %.2f uW (%.1f%%)",
      nl().name().c_str(), res.traditional.dynamic_per_hz_uw,
      res.proposed.dynamic_per_hz_uw, res.dyn_vs_traditional_pct,
      res.traditional.static_uw, res.proposed.static_uw,
      res.stat_vs_traditional_pct));
  return res;
}

}  // namespace scanpower
