#pragma once
// ScanSession: the stateful service API over one (netlist, options) pair.
//
// A one-shot entry point would rebuild the same expensive engine state
// per call: the collapsed fault list, the observation-point index space
// and its fanin cones, the per-(netlist, model) leakage tables, the
// packed good-machine blocks of the pattern set, X-mask plans and
// expected signatures, and a fresh worker pool. The paper's flow is
// inherently multi-query over a fixed design -- ablation columns,
// per-chip failure logs, fill trials -- so a service answering K queries
// should pay that setup once. ScanSession owns all of it, builds each
// piece lazily on first use, and exposes the flows as methods:
//
//   ScanSession session(netlist, options);   // validates options up front
//   session.bind_patterns(patterns);          // or bind_tests() for ATPG
//   DiagnosisResult r = session.diagnose(evidence);
//   std::vector<DiagnosisResult> rs = session.diagnose_batch(batch);
//   FlowResult f = session.run_flow();
//   ScanPowerResult p = session.power_report();
//
// Evidence is the unified tester report: a full per-(pattern, point)
// FailureLog or a MISR-compacted SignatureLog; diagnose() dispatches
// internally, so callers hit one entry point regardless of tester
// compaction. Cache keys: the bound pattern set (by content) keys the
// zero-filled view, the good-block cache and the good response matrix;
// each MisrConfig keys one (X-mask plan, expected signatures) entry on
// top of that. Every result is bit-identical to the one-shot legacy entry
// points for any (block_words, num_threads) configuration -- the engines'
// determinism contracts make shared pools and caches result-neutral.
//
// Thread-safety: a session is a single-threaded object (its methods fan
// work across the internal pool themselves); use one session per
// concurrent client, or serialize calls externally. For multi-tenant
// service use, construct sessions over a shared immutable DesignContext
// (see design_context.hpp / session_pool.hpp): the design-keyed layer --
// netlist, collapsed faults, observation points + fully built cones,
// leakage tables, ATPG set -- is then built once per design and referenced
// concurrently by any number of sessions, each keeping only its private
// pattern-keyed caches and worker pool. Results are bit-identical either
// way.

#include <map>
#include <memory>
#include <span>
#include <tuple>
#include <variant>
#include <vector>

#include "core/design_context.hpp"
#include "core/flow.hpp"
#include "util/telemetry.hpp"

namespace scanpower {

/// What a tester reports for one defective chip: the full failure log, or
/// the per-window MISR signature log when responses are time-compacted.
/// ScanSession::diagnose() handles both through one entry point.
using Evidence = std::variant<FailureLog, SignatureLog>;

class ScanSession {
 public:
  /// Validates `opts` up front -- bad block widths, thread counts, MISR
  /// configurations and sample counts throw Error here with the knob
  /// named, instead of deep inside the engines -- and takes an owning
  /// copy of the (finalized) netlist, so borrowed engine state can never
  /// dangle.
  explicit ScanSession(Netlist nl, FlowOptions opts = {});

  /// Tenant session over a shared immutable DesignContext: the design-
  /// keyed layer (netlist, faults, points, cones, leakage tables, ATPG
  /// set) is referenced, not rebuilt, so construction is cheap and many
  /// sessions may share one context concurrently (each session itself
  /// stays single-threaded). `opts` carries this tenant's engine knobs
  /// (block words, threads, backend...) and is validated exactly like the
  /// owning constructor's; the one-argument form inherits the context's
  /// options. Results are bit-identical to an isolated
  /// ScanSession(context->netlist(), opts).
  ScanSession(std::shared_ptr<const DesignContext> ctx, FlowOptions opts);
  explicit ScanSession(std::shared_ptr<const DesignContext> ctx);
  ~ScanSession();

  ScanSession(const ScanSession&) = delete;
  ScanSession& operator=(const ScanSession&) = delete;

  const Netlist& netlist() const { return nl(); }
  const FlowOptions& options() const { return opts_; }
  const LeakageModel& leakage_model() const {
    return ctx_ ? ctx_->leakage_model() : model_;
  }
  /// The shared design context, or nullptr for an owning session.
  const std::shared_ptr<const DesignContext>& context() const { return ctx_; }

  // ---- telemetry -----------------------------------------------------------

  /// Session-scoped metrics registry and phase-trace recorder: every
  /// engine this session builds writes its counters and spans here (the
  /// options' telemetry pointer is wired up in the constructor). Enable
  /// span recording with telemetry().trace.set_enabled(true). All of it
  /// compiles to nothing under SCANPOWER_TELEMETRY=OFF.
  Telemetry& telemetry() { return telemetry_; }
  /// Point-in-time snapshot of the session's counters. Registry slots are
  /// summed over shards; cache and pool tallies are copied from the owning
  /// objects (absolute lifetime values, so repeated snapshots never
  /// double-count). Call between queries, not concurrently with one.
  MetricsSnapshot metrics();

  // ---- shared lazily built engine state ------------------------------------

  /// The one worker pool every pool-borrowing engine of this session
  /// runs on, sized to the largest resolved thread knob among its
  /// borrowers (diag, observability; fault simulation inside tests()
  /// manages its own transient pool). All engines produce bit-identical
  /// results for any pool size, so sharing is result-neutral.
  ThreadPool& pool();
  /// Collapsed stuck-at fault universe of the netlist.
  const std::vector<Fault>& faults();
  /// Observation-point index space of the full-scan response.
  const ObservationPoints& points();
  /// Per-(netlist, model) state->leakage tables (packed power engines).
  const GateLeakageTables& leakage_tables();
  /// Leakage observability under options().observability.
  const LeakageObservability& observability();
  /// ATPG test set under options().tpg.
  const TestSet& tests();

  // ---- pattern binding -----------------------------------------------------

  /// Binds the pattern set diagnose()/inject() run against: copies the
  /// patterns, zero-fills X bits for the binary sweeps and (re)builds the
  /// good-machine block cache. Rebinding with identical content is a
  /// no-op; different content invalidates every pattern-keyed cache.
  /// Throws on an empty set.
  void bind_patterns(std::span<const TestPattern> patterns);
  /// bind_patterns(tests().patterns) -- generates the ATPG set on first use.
  void bind_tests();
  bool has_patterns() const { return has_patterns_; }
  /// The bound pattern set, as given (X bits preserved).
  std::span<const TestPattern> patterns() const { return bound_; }

  // ---- diagnosis -----------------------------------------------------------

  /// Diagnoses one tester report against the bound pattern set; dispatch
  /// on the Evidence alternative (full-response vs compacted) is internal.
  DiagnosisResult diagnose(const Evidence& evidence);

  /// Diagnoses a batch of independent tester reports (alternatives may be
  /// mixed; results come back in input order). Shared engine state is
  /// paid once for the whole batch and full-response logs fan out across
  /// the worker pool; every result is bit-identical to a sequential
  /// diagnose() call on the same evidence.
  std::vector<DiagnosisResult> diagnose_batch(
      std::span<const Evidence> evidence);

  /// Synthetic device-under-diagnosis: the failure log a tester would
  /// record for a chip carrying exactly fault `f` under the bound set.
  FailureLog inject(const Fault& f);
  /// Multi-fault chip: every fault in `faults` at once, interactions
  /// modelled exactly (ResponseCapture's merged-cone sweep).
  FailureLog inject(std::span<const Fault> faults);
  /// Compacted analogues under options().misr (or an explicit config).
  SignatureLog inject_compacted(const Fault& f);
  SignatureLog inject_compacted(const Fault& f, const MisrConfig& cfg);
  SignatureLog inject_compacted(std::span<const Fault> faults);
  SignatureLog inject_compacted(std::span<const Fault> faults,
                                const MisrConfig& cfg);

  // ---- power ---------------------------------------------------------------

  /// Don't-care fill under options().fill (tables borrowed from the
  /// session); fills X positions of the given patterns in place.
  FillResult fill(std::vector<Logic>& pi_pattern,
                  std::vector<Logic>& mux_pattern,
                  const std::vector<bool>& mux_eligible);

  /// Scan-shift power of `tests` on the session netlist under the given
  /// shift-control values (empty spans = uncontrolled, the traditional-
  /// scan column); the no-argument form evaluates the session's ATPG set.
  ScanPowerResult power_report(const TestSet& tests,
                               std::span<const Logic> pi_control = {},
                               std::span<const Logic> mux_control = {});
  ScanPowerResult power_report();

  /// The full three-way Table-I comparison (traditional / input control /
  /// proposed) on the session netlist, reusing the cached test set,
  /// observability and leakage tables across calls.
  FlowResult run_flow();
  /// Only the proposed method, on a caller-supplied test set; building
  /// block for ablation sweeps.
  ScanPowerResult run_proposed(const TestSet& tests,
                               FlowResult* details = nullptr);

 private:
  /// (X-mask plan, expected signatures, synthetic tester) of one MISR
  /// configuration over the bound pattern set.
  ObservationConeCache& cones();
  Diagnoser& diagnoser();
  SignatureDiagnoser& sig_diagnoser();
  ResponseCapture& capture();
  SignatureCapture& compact_state(const MisrConfig& cfg);

  std::span<const TestPattern> effective_patterns() const {
    return filled_.empty() ? std::span<const TestPattern>(bound_)
                           : std::span<const TestPattern>(filled_);
  }
  void require_bound() const;
  void require_fully_specified(const char* what) const;
  /// Typed, named errors for out-of-range failure records: the hardened
  /// text loaders catch these at parse time, but in-memory logs reach the
  /// session unchecked.
  void validate_evidence(const FailureLog& log);

  DiagnosisResult diagnose_full(const FailureLog& log);
  DiagnosisResult diagnose_compacted(const SignatureLog& log);

  const Netlist& nl() const { return ctx_ ? ctx_->netlist() : nl_; }

  /// Shared design-keyed layer (nullptr = owning session). Declared first:
  /// every engine below may borrow state from it, so it must outlive them
  /// (members destroy in reverse order).
  std::shared_ptr<const DesignContext> ctx_;
  Netlist nl_;        ///< owning sessions only; empty under a context
  FlowOptions opts_;
  LeakageModel model_;
  /// Declared before every engine: engines hold a pointer to it via their
  /// options, so it must outlive them (members destroy in reverse order).
  Telemetry telemetry_;

  // Lazily built, design-keyed state. Declaration order doubles as the
  // destruction contract: the pool outlives every engine borrowing it.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<std::vector<Fault>> faults_;
  std::unique_ptr<ObservationPoints> points_;
  std::unique_ptr<ObservationConeCache> cones_;
  std::unique_ptr<GateLeakageTables> tables_;
  std::unique_ptr<LeakageObservability> obs_;
  std::unique_ptr<TestSet> tests_;

  // Pattern-keyed state (invalidated by bind_patterns with new content).
  bool has_patterns_ = false;
  std::vector<TestPattern> bound_;   ///< as given, X preserved
  std::vector<TestPattern> filled_;  ///< zero-filled copy; empty if not needed
  GoodBlockCache goods_;
  /// Per-MisrConfig (width, poly, window) compaction state; each entry
  /// rebinds itself lazily when the bound pattern set changes.
  std::map<std::tuple<int, std::uint64_t, int>,
           std::unique_ptr<SignatureCapture>>
      compact_;

  std::unique_ptr<ResponseCapture> capture_;
  std::unique_ptr<Diagnoser> diagnoser_;
  std::unique_ptr<SignatureDiagnoser> sig_diagnoser_;
};

}  // namespace scanpower
