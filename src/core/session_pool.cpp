#include "core/session_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

SessionPool::SessionPool(std::size_t capacity, Telemetry* telemetry)
    : capacity_(capacity), telemetry_(telemetry) {
  SP_CHECK(capacity_ >= 1,
           strprintf("SessionPool: capacity must be >= 1 (got %zu)",
                     capacity));
}

std::shared_ptr<const DesignContext> SessionPool::acquire(
    const Netlist& nl, const FlowOptions& opts) {
  const std::uint64_t key = DesignContext::hash_design(nl);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.last_use = ++tick_;
    SP_TELEM_ADD(telemetry_, 0, CounterId::kCtxPoolHits, 1);
    return it->second.ctx;
  }
  SP_TELEM_ADD(telemetry_, 0, CounterId::kCtxPoolMisses, 1);
  std::shared_ptr<const DesignContext> ctx;
  {
    // The span covers the whole build (member-init list included); the
    // kCtxBuilds counter itself is bumped inside the constructor.
    TraceSpan span(telemetry_, "sessions.ctx_build", 0,
                   CounterId::kCtxBuildUs);
    ctx = std::make_shared<const DesignContext>(nl, opts, telemetry_);
  }
  entries_.emplace(key, Entry{ctx, ++tick_});
  evict_to_capacity_locked();
  if constexpr (kTelemetryEnabled) {
    if (telemetry_) {
      telemetry_->metrics.set_gauge(GaugeId::kCtxPoolSize,
                                    static_cast<std::int64_t>(entries_.size()));
    }
  }
  return ctx;
}

void SessionPool::evict_to_capacity_locked() {
  while (entries_.size() > capacity_) {
    auto victim = std::min_element(
        entries_.begin(), entries_.end(), [](const auto& a, const auto& b) {
          return a.second.last_use < b.second.last_use;
        });
    // Only the pool's reference is dropped: sessions holding the context
    // keep it alive, so eviction never invalidates in-flight work.
    entries_.erase(victim);
    SP_TELEM_ADD(telemetry_, 0, CounterId::kCtxPoolEvictions, 1);
  }
}

std::size_t SessionPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SessionPool::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  if constexpr (kTelemetryEnabled) {
    if (telemetry_) telemetry_->metrics.set_gauge(GaugeId::kCtxPoolSize, 0);
  }
}

}  // namespace scanpower
