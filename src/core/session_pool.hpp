#pragma once
// SessionPool: shared DesignContext registry with LRU eviction.
//
// A diagnosis service sees a stream of (design, evidence) requests where
// the design set is small but churns: a handful of hot designs, a long
// tail of cold ones. Building a DesignContext is the expensive part
// (collapsed faults, cones, tables -- hundreds of milliseconds on the
// ISCAS'89-class circuits), so the pool keys contexts by the structural
// design hash and hands out shared_ptrs:
//
//   SessionPool pool(/*capacity=*/8);
//   auto ctx = pool.acquire(netlist, options);   // hit: cheap; miss: build
//   ScanSession session(ctx);                    // per-tenant, cheap
//
// Eviction is LRU past the capacity knob and only drops the pool's own
// reference: in-flight sessions keep their context alive through the
// shared_ptr, so eviction can never invalidate running work. Builds run
// under the pool lock -- two concurrent first-requests for the same
// design would otherwise race to duplicate the most expensive object in
// the system; serializing them is the cheaper failure mode and keeps the
// "one context per design" invariant trivially true.
//
// Telemetry (optional, pool-scoped): sessions.pool_{hits,misses,
// evictions}, sessions.ctx_builds, sessions.ctx_build_us and the
// sessions.pool_size gauge.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/design_context.hpp"

namespace scanpower {

class SessionPool {
 public:
  /// `capacity` bounds resident contexts (>= 1); `telemetry` (optional,
  /// borrowed, must outlive the pool) receives the pool counters.
  explicit SessionPool(std::size_t capacity = kDefaultCapacity,
                       Telemetry* telemetry = nullptr);

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// One resident context per design by default: a diagnosis server
  /// typically multiplexes a few hot designs, and each context holds the
  /// full cone cache, so the knob trades memory for rebuild latency.
  static constexpr std::size_t kDefaultCapacity = 4;

  /// Returns the shared context for this design, building (and caching)
  /// it on first sight. The hit path compares only the structural hash;
  /// `opts` is used (and validated) on the miss path as the context's
  /// build options, so callers multiplexing one design under different
  /// engine knobs should pass per-tenant options to ScanSession instead.
  /// Thread-safe; misses build under the pool lock.
  std::shared_ptr<const DesignContext> acquire(const Netlist& nl,
                                               const FlowOptions& opts = {});

  /// Contexts currently resident (not counting evicted-but-referenced).
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Drops every resident context (in-flight references stay valid).
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const DesignContext> ctx;
    std::uint64_t last_use = 0;
  };

  void evict_to_capacity_locked();

  const std::size_t capacity_;
  Telemetry* telemetry_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> entries_;  ///< design hash -> context
  std::uint64_t tick_ = 0;                  ///< logical LRU clock
};

}  // namespace scanpower
