#include "core/verify.hpp"

#include <cmath>

#include "sim/simulator.hpp"
#include "timing/sta.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scanpower {

namespace {

/// Compares PO values and DFF next states of the original circuit and the
/// muxed circuit (shift-enable forced to `se`) on one source assignment.
bool responses_match(const Netlist& orig, Simulator& sim_orig,
                     const Netlist& muxed, Simulator& sim_muxed, GateId se,
                     std::span<const Logic> pi, std::span<const Logic> state) {
  sim_orig.set_inputs(pi);
  sim_orig.set_states(state);
  sim_orig.eval_incremental();

  for (std::size_t k = 0; k < orig.inputs().size(); ++k) {
    const GateId mpi = muxed.find(orig.gate_name(orig.inputs()[k]));
    sim_muxed.set_input(mpi, pi[k]);
  }
  sim_muxed.set_input(se, Logic::Zero);
  for (std::size_t c = 0; c < orig.dffs().size(); ++c) {
    const GateId mff = muxed.find(orig.gate_name(orig.dffs()[c]));
    sim_muxed.set_state(mff, state[c]);
  }
  sim_muxed.eval_incremental();

  for (GateId po : orig.outputs()) {
    const GateId mpo = muxed.find(orig.gate_name(po));
    if (sim_orig.value(po) != sim_muxed.value(mpo)) return false;
  }
  for (GateId dff : orig.dffs()) {
    const GateId mff = muxed.find(orig.gate_name(dff));
    if (sim_orig.next_state(dff) != sim_muxed.next_state(mff)) return false;
  }
  return true;
}

}  // namespace

StructureVerification verify_mux_structure(const Netlist& nl,
                                           const MuxPlan& plan,
                                           std::span<const Logic> mux_values,
                                           const DelayModel& model,
                                           const TestSet* tests,
                                           const VerifyOptions& opts) {
  StructureVerification ver;
  GateId se = kInvalidGate;
  const Netlist muxed = insert_muxes_physically(nl, plan, mux_values, &se);
  SP_ASSERT(se != kInvalidGate, "muxed netlist lost its shift-enable input");

  // --- timing -----------------------------------------------------------
  const TimingAnalysis sta_before(nl, model);
  const TimingAnalysis sta_after(muxed, model);
  ver.critical_delay_before_ps = sta_before.critical_delay_ps();
  ver.critical_delay_after_ps = sta_after.critical_delay_ps();
  ver.critical_delay_unchanged =
      std::abs(ver.critical_delay_after_ps - ver.critical_delay_before_ps) <=
      opts.delay_epsilon_ps;

  // --- normal-mode equivalence (SE = 0) ----------------------------------
  Rng rng(opts.seed);
  Simulator sim_orig(nl);
  Simulator sim_muxed(muxed);
  bool equivalent = true;
  std::vector<Logic> pi(nl.inputs().size());
  std::vector<Logic> state(nl.dffs().size());
  for (int v = 0; v < opts.random_vectors && equivalent; ++v) {
    for (Logic& x : pi) x = from_bool(rng.next_bool());
    for (Logic& x : state) x = from_bool(rng.next_bool());
    equivalent = responses_match(nl, sim_orig, muxed, sim_muxed, se, pi, state);
    ++ver.vectors_checked;
  }
  if (tests) {
    for (const TestPattern& t : tests->patterns) {
      if (!equivalent) break;
      if (!t.fully_specified()) continue;
      equivalent =
          responses_match(nl, sim_orig, muxed, sim_muxed, se, t.pi, t.ppi);
      ++ver.vectors_checked;
    }
  }
  ver.normal_mode_equivalent = equivalent;

  // --- scan-mode constants (SE = 1) --------------------------------------
  bool constants_ok = true;
  sim_muxed.set_input(se, Logic::One);
  for (Logic& x : pi) x = from_bool(rng.next_bool());
  for (std::size_t k = 0; k < nl.inputs().size(); ++k) {
    sim_muxed.set_input(muxed.find(nl.gate_name(nl.inputs()[k])), pi[k]);
  }
  for (std::size_t c = 0; c < nl.dffs().size(); ++c) {
    sim_muxed.set_state(muxed.find(nl.gate_name(nl.dffs()[c])),
                        from_bool(rng.next_bool()));
  }
  sim_muxed.eval_incremental();
  for (std::size_t c = 0; c < nl.dffs().size(); ++c) {
    if (!plan.multiplexed[c]) continue;
    const GateId mux_gate =
        muxed.find("mux$" + nl.gate_name(nl.dffs()[c]));
    SP_ASSERT(mux_gate != kInvalidGate, "planned mux missing");
    if (sim_muxed.value(mux_gate) != mux_values[c]) constants_ok = false;
  }
  ver.scan_mode_constants_ok = constants_ok;
  return ver;
}

}  // namespace scanpower
