#pragma once
// Structural verification of the proposed scan architecture (the claims
// illustrated by Figure 1 of the paper):
//  - inserting the muxes does not change the critical path delay (no
//    impact on the normal-mode working frequency);
//  - with shift-enable low the modified circuit is functionally identical
//    to the original (fault coverage is preserved: the same tests produce
//    the same responses);
//  - with shift-enable high every multiplexed pseudo-input presents its
//    planned constant.

#include <cstdint>
#include <span>

#include "atpg/pattern.hpp"
#include "netlist/netlist.hpp"
#include "scan/add_mux.hpp"
#include "sim/logic.hpp"
#include "timing/delay_model.hpp"

namespace scanpower {

struct StructureVerification {
  double critical_delay_before_ps = 0.0;
  double critical_delay_after_ps = 0.0;
  bool critical_delay_unchanged = false;
  bool normal_mode_equivalent = false;  ///< SE=0: same POs and next states
  bool scan_mode_constants_ok = false;  ///< SE=1: muxed lines at constants
  std::size_t vectors_checked = 0;

  bool all_ok() const {
    return critical_delay_unchanged && normal_mode_equivalent &&
           scan_mode_constants_ok;
  }
};

struct VerifyOptions {
  int random_vectors = 256;
  std::uint64_t seed = 0x5eed5eedULL;
  double delay_epsilon_ps = 1e-6;
};

/// Builds the physical muxed netlist and checks the three properties.
/// `tests` (optional) are additionally replayed for response equality.
StructureVerification verify_mux_structure(const Netlist& nl,
                                           const MuxPlan& plan,
                                           std::span<const Logic> mux_values,
                                           const DelayModel& model,
                                           const TestSet* tests = nullptr,
                                           const VerifyOptions& opts = {});

}  // namespace scanpower
