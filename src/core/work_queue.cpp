#include "core/work_queue.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

DiagnosisQueue::DiagnosisQueue(Options opts, Telemetry* telemetry)
    : opts_(opts), telemetry_(telemetry),
      pool_(opts.pool_capacity, telemetry) {
  SP_CHECK(opts_.max_batch >= 1,
           strprintf("DiagnosisQueue: max_batch must be >= 1 (got %zu)",
                     opts_.max_batch));
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

DiagnosisQueue::~DiagnosisQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  done_cv_.notify_all();  // wake submitters blocked on max_pending
  dispatcher_.join();     // poisons whatever was still queued
}

DiagnosisQueue::DesignKey DiagnosisQueue::open(
    const Netlist& nl, const FlowOptions& opts,
    std::span<const TestPattern> patterns) {
  const DesignKey key = DesignContext::hash_design(nl);
  std::unique_lock<std::mutex> lock(mu_);
  auto it = tenants_.find(key);
  if (it == tenants_.end()) {
    Tenant t;
    t.ctx = pool_.acquire(nl, opts);
    t.session = std::make_unique<ScanSession>(t.ctx, opts);
    t.session->bind_patterns(patterns);
    it = tenants_.emplace(key, std::move(t)).first;
    return key;
  }
  // Re-opening an already-registered design: a true no-op for identical
  // patterns (safe even mid-traffic -- nothing is rebound, and bound_ is
  // only ever written here under mu_); different patterns would
  // invalidate caches under the dispatcher, so require the design idle.
  Tenant& t = it->second;
  const std::span<const TestPattern> bound = t.session->patterns();
  if (std::equal(bound.begin(), bound.end(), patterns.begin(),
                 patterns.end())) {
    return key;
  }
  SP_CHECK(!t.busy && t.fifo.empty(),
           strprintf("DiagnosisQueue::open: design %016llx has pending or "
                     "in-flight jobs; drain() before rebinding patterns",
                     static_cast<unsigned long long>(key)));
  t.session->bind_patterns(patterns);
  return key;
}

std::future<DiagnosisResult> DiagnosisQueue::submit(DesignKey key,
                                                    Evidence evidence) {
  std::future<DiagnosisResult> fut;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = tenants_.find(key);
    SP_CHECK(it != tenants_.end(),
             strprintf("DiagnosisQueue::submit: unregistered design key "
                       "%016llx (call open() first)",
                       static_cast<unsigned long long>(key)));
    if (opts_.max_pending > 0 && pending_ >= opts_.max_pending) {
      if (opts_.overload == OverloadPolicy::Reject) {
        SP_TELEM_ADD(telemetry_, 0, CounterId::kQueueRejected, 1);
        throw OverloadError(opts_.retry_hint_ms);
      }
      // Block: park until the dispatcher frees depth. The tenant map only
      // grows, so `it` stays valid across the wait.
      done_cv_.wait(lock, [this] {
        return stop_ || pending_ < opts_.max_pending;
      });
      if (stop_) throw QueueShutdownError();
    }
    if (stop_) throw QueueShutdownError();
    Job job;
    job.evidence = std::move(evidence);
    job.seq = next_seq_++;
    job.enqueued = std::chrono::steady_clock::now();
    fut = job.promise.get_future();
    it->second.fifo.push_back(std::move(job));
    ++pending_;
    SP_TELEM_ADD(telemetry_, 0, CounterId::kQueueSubmitted, 1);
    update_depth_gauge();
  }
  cv_.notify_one();
  return fut;
}

void DiagnosisQueue::update_depth_gauge() {
  if constexpr (kTelemetryEnabled) {
    if (telemetry_) {
      telemetry_->metrics.set_gauge(GaugeId::kQueueDepth,
                                    static_cast<std::int64_t>(pending_));
    }
  }
}

DiagnosisQueue::Tenant* DiagnosisQueue::pick_round_robin() {
  if (tenants_.empty()) return nullptr;
  // First backlogged design strictly after the cursor, wrapping -- a
  // design that just ran a batch goes to the back of the rotation.
  auto it = tenants_.upper_bound(rr_cursor_);
  for (std::size_t i = 0; i < tenants_.size(); ++i, ++it) {
    if (it == tenants_.end()) it = tenants_.begin();
    if (!it->second.busy && !it->second.fifo.empty()) {
      rr_cursor_ = it->first;
      return &it->second;
    }
  }
  return nullptr;
}

void DiagnosisQueue::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] {
      if (stop_) return true;
      for (const auto& [key, t] : tenants_) {
        if (!t.fifo.empty()) return true;
      }
      return false;
    });
    if (stop_) {
      // Shutdown: fail every still-queued job with the typed shutdown
      // error instead of running it (or silently dropping the promise,
      // which would surface as an opaque broken_promise at the client).
      std::size_t poisoned = 0;
      for (auto& [key, t] : tenants_) {
        for (Job& j : t.fifo) {
          j.promise.set_exception(
              std::make_exception_ptr(QueueShutdownError()));
          ++poisoned;
        }
        t.fifo.clear();
      }
      pending_ -= poisoned;
      SP_TELEM_ADD(telemetry_, 0, CounterId::kQueuePoisoned, poisoned);
      update_depth_gauge();
      done_cv_.notify_all();
      return;
    }
    Tenant* best = pick_round_robin();
    if (!best) continue;
    const std::size_t n = std::min(opts_.max_batch, best->fifo.size());
    std::vector<Job> jobs;
    jobs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      jobs.push_back(std::move(best->fifo.front()));
      best->fifo.pop_front();
    }
    best->busy = true;
    lock.unlock();
    run_batch(*best, std::move(jobs));
    lock.lock();
    best->busy = false;
    pending_ -= n;
    update_depth_gauge();
    done_cv_.notify_all();
  }
}

void DiagnosisQueue::run_batch(Tenant& tenant, std::vector<Job> jobs) {
  const auto now = std::chrono::steady_clock::now();
  std::uint64_t wait_us = 0;
  for (const Job& j : jobs) {
    wait_us += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - j.enqueued)
            .count());
  }
  SP_TELEM_ADD(telemetry_, 0, CounterId::kQueueWaitUs, wait_us);
  SP_TELEM_ADD(telemetry_, 0, CounterId::kQueueBatches, 1);
  SP_TELEM_ADD(telemetry_, 0, CounterId::kQueueCoalesced,
               static_cast<std::uint64_t>(jobs.size() - 1));

  std::vector<Evidence> evidence;
  evidence.reserve(jobs.size());
  for (Job& j : jobs) evidence.push_back(std::move(j.evidence));
  try {
    std::vector<DiagnosisResult> results =
        tenant.session->diagnose_batch(evidence);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].promise.set_value(std::move(results[i]));
    }
  } catch (...) {
    // One malformed log fails batch validation before any scoring; retry
    // per log so it poisons only its own future. Results stay
    // bit-identical: sequential diagnose() is the batch's reference
    // semantics.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      try {
        jobs[i].promise.set_value(tenant.session->diagnose(evidence[i]));
      } catch (...) {
        jobs[i].promise.set_exception(std::current_exception());
      }
    }
  }
}

void DiagnosisQueue::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t DiagnosisQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

}  // namespace scanpower
