#pragma once
// DiagnosisQueue: the async front door of the diagnosis service.
//
// Clients submit tester evidence and get a future back; a single
// dispatcher thread drains the queue, coalescing whatever accumulated
// per design into one ScanSession::diagnose_batch call (up to max_batch
// logs, matching the diagnoser's fixed 64-candidate scoring rounds).
// Batching amortizes the shared per-batch engine state and fans logs
// across the session's worker pool, while the determinism contract keeps
// every result bit-identical to a sequential diagnose() on the same
// evidence -- so the queue changes latency and throughput, never answers.
//
//   DiagnosisQueue q(opts, &telemetry);
//   auto key = q.open(netlist, options, patterns);  // context + session
//   std::future<DiagnosisResult> f = q.submit(key, evidence);
//   DiagnosisResult r = f.get();
//
// Designs register through open(), which parks a shared DesignContext in
// the queue's SessionPool and binds one per-design tenant session (only
// the dispatcher thread ever touches a session, honoring its
// single-threaded contract). submit() is thread-safe and cheap: push,
// stamp, notify. Dispatch is round-robin across designs (FIFO within a
// design, batched per design): after a design's batch the cursor moves
// on, so one backlogged design costs every other design at most one
// batch of head-of-line delay instead of monopolizing the dispatcher
// the way global submission-order FIFO did. A failing batch falls back
// to per-log dispatch so one malformed log poisons only its own future.
//
// Admission control: `max_pending` bounds queued + in-flight jobs.
// At the bound, OverloadPolicy::Block parks submit() until the
// dispatcher frees depth, and OverloadPolicy::Reject throws
// OverloadError carrying a retry_after_ms hint -- the wire layer maps it
// to {"error":"overloaded","retry_after_ms":...} and the net client
// backs off and retries. Destruction does NOT run pending work: any job
// still queued fails with QueueShutdownError (call drain() first for a
// graceful stop); blocked submitters are woken with the same error.
//
// Telemetry (optional, queue-scoped): queue.{submitted,batches,
// coalesced,rejected,poisoned,wait_us} and the queue.depth gauge.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>

#include "core/session.hpp"
#include "core/session_pool.hpp"

namespace scanpower {

/// Thrown by submit() under OverloadPolicy::Reject when the queue is at
/// max_pending. retry_after_ms() is the server's backoff hint.
class OverloadError : public Error {
 public:
  explicit OverloadError(std::uint64_t retry_after_ms)
      : Error("DiagnosisQueue overloaded: depth at max_pending; retry in " +
              std::to_string(retry_after_ms) + " ms"),
        retry_after_ms_(retry_after_ms) {}
  std::uint64_t retry_after_ms() const { return retry_after_ms_; }

 private:
  std::uint64_t retry_after_ms_;
};

/// Poison carried by futures whose job was still pending when the queue
/// shut down, and thrown by submit()/blocked submitters racing it.
class QueueShutdownError : public Error {
 public:
  QueueShutdownError()
      : Error("DiagnosisQueue shut down with this job still pending "
              "(drain() before destruction for a graceful stop)") {}
};

class DiagnosisQueue {
 public:
  /// What submit() does when the queue is at max_pending.
  enum class OverloadPolicy {
    Block,   ///< park the submitter until the dispatcher frees depth
    Reject,  ///< throw OverloadError with a retry_after_ms hint
  };

  struct Options {
    /// Max logs coalesced into one diagnose_batch dispatch. 64 matches
    /// the diagnoser's fixed candidate-round width: one batch keeps every
    /// worker busy without starving other designs behind it.
    std::size_t max_batch = 64;
    /// Capacity of the internal DesignContext pool.
    std::size_t pool_capacity = SessionPool::kDefaultCapacity;
    /// Admission bound on queued + in-flight jobs; 0 = unbounded (the
    /// pre-admission-control behavior).
    std::size_t max_pending = 0;
    /// Behavior at the max_pending bound.
    OverloadPolicy overload = OverloadPolicy::Block;
    /// Base retry hint attached to OverloadError / the wire reject.
    std::uint64_t retry_hint_ms = 20;
  };

  /// Key identifying one registered design (its structural hash).
  using DesignKey = std::uint64_t;

  /// Starts the dispatcher thread. `telemetry` (optional, borrowed, must
  /// outlive the queue) receives the queue and pool counters.
  explicit DiagnosisQueue(Options opts, Telemetry* telemetry = nullptr);
  DiagnosisQueue() : DiagnosisQueue(Options()) {}
  /// Finishes the in-flight batch, poisons every still-pending future
  /// with QueueShutdownError and joins the dispatcher. Pending work is
  /// NOT run -- call drain() first for a graceful stop.
  ~DiagnosisQueue();

  DiagnosisQueue(const DiagnosisQueue&) = delete;
  DiagnosisQueue& operator=(const DiagnosisQueue&) = delete;

  /// Registers a design: acquires (or builds) its shared context, creates
  /// the tenant session and binds `patterns`. Idempotent for identical
  /// patterns; rebinding different patterns requires the design idle (no
  /// pending or in-flight jobs -- throws Error otherwise). Returns the key
  /// submit() takes. Thread-safe, but heavy on first sight of a design;
  /// treat it as control-plane.
  DesignKey open(const Netlist& nl, const FlowOptions& opts,
                 std::span<const TestPattern> patterns);

  /// Enqueues one tester report against a registered design and returns
  /// the future result. Throws Error for an unregistered key, and at the
  /// max_pending bound either blocks or throws OverloadError per
  /// Options::overload. The future carries any diagnosis error for this
  /// log. Thread-safe.
  std::future<DiagnosisResult> submit(DesignKey key, Evidence evidence);

  /// Blocks until every job submitted so far has been dispatched and
  /// completed.
  void drain();

  /// Jobs waiting or in flight right now.
  std::size_t depth() const;

  const Options& options() const { return opts_; }

  /// The underlying context pool (contexts stay warm across open calls).
  SessionPool& contexts() { return pool_; }

 private:
  struct Job {
    Evidence evidence;
    std::promise<DiagnosisResult> promise;
    std::uint64_t seq = 0;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct Tenant {
    std::shared_ptr<const DesignContext> ctx;
    std::unique_ptr<ScanSession> session;
    std::deque<Job> fifo;
    bool busy = false;  ///< dispatcher is running a batch on this session
  };

  void dispatcher_loop();
  void run_batch(Tenant& tenant, std::vector<Job> jobs);
  void update_depth_gauge();  ///< callers hold mu_
  Tenant* pick_round_robin(); ///< callers hold mu_

  const Options opts_;
  Telemetry* telemetry_;
  SessionPool pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;       ///< dispatcher wakeup
  std::condition_variable done_cv_;  ///< drain() + blocked-submit waiters
  std::map<DesignKey, Tenant> tenants_;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;  ///< queued + in-flight jobs
  /// Round-robin cursor: the last design dispatched; the next batch goes
  /// to the first backlogged design strictly after it (wrapping).
  DesignKey rr_cursor_ = 0;
  bool stop_ = false;

  std::thread dispatcher_;  ///< last member: joins before state destructs
};

}  // namespace scanpower
