#include "diag/diagnose.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/assert.hpp"

namespace scanpower {

std::vector<std::uint32_t> prune_by_cone_unions(
    const Netlist& nl, ObservationConeCache& cones,
    std::span<const Fault> faults,
    const std::vector<std::vector<std::uint32_t>>& op_sets) {
  // allowed[g] = 1 iff gate g is in every op set's cone union. (The cone
  // cache owns its DFS scratch; the union uses its own, so a lazy cone
  // build mid-union cannot collide.)
  std::vector<std::uint8_t> allowed(nl.num_gates(), 1);
  std::vector<std::uint8_t> union_mark(nl.num_gates(), 0);
  std::vector<GateId> uni;
  for (const std::vector<std::uint32_t>& ops : op_sets) {
    uni.clear();
    for (std::uint32_t op : ops) {
      for (GateId g : cones.cone(op)) {
        if (!union_mark[g]) {
          union_mark[g] = 1;
          uni.push_back(g);
        }
      }
    }
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      allowed[g] &= union_mark[g];
    }
    for (GateId g : uni) union_mark[g] = 0;
  }

  // A fault's effect enters observation cones at its site gate -- for a
  // D-branch fault that is the capture cell itself, which the capture
  // point's cone includes.
  std::vector<std::uint32_t> candidates;
  candidates.reserve(faults.size());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (allowed[faults[fi].gate]) {
      candidates.push_back(static_cast<std::uint32_t>(fi));
    }
  }
  return candidates;
}

Diagnoser::Diagnoser(const Netlist& nl, DiagnosisOptions opts)
    : nl_(&nl), opts_(opts) {
  SP_CHECK(nl.finalized(), "Diagnoser requires a finalized netlist");
  SP_CHECK(is_valid_block_words(opts_.block_words),
           "diagnose: block_words must be 1, 2, 4, 8, 16 or 32");
  opts_.num_threads = ThreadPool::resolve_threads(opts_.num_threads);
  owned_points_ = std::make_unique<ObservationPoints>(nl);
  owned_cones_ = std::make_unique<ObservationConeCache>(nl, *owned_points_);
  owned_goods_ = std::make_unique<GoodBlockCache>();
  owned_pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
  points_ = owned_points_.get();
  cones_ = owned_cones_.get();
  goods_ = owned_goods_.get();
  pool_ = owned_pool_.get();
  workers_.resize(static_cast<std::size_t>(pool_->size()));
  for (FaultConeEvaluator& w : workers_) {
    w.init(nl, opts_.block_words, opts_.backend);
  }
}

Diagnoser::Diagnoser(const Netlist& nl, DiagnosisOptions opts, ThreadPool& pool,
                     const ObservationPoints& points,
                     ObservationConeCache& cones, GoodBlockCache& goods)
    : nl_(&nl), opts_(opts), points_(&points), cones_(&cones), goods_(&goods),
      pool_(&pool) {
  SP_CHECK(nl.finalized(), "Diagnoser requires a finalized netlist");
  SP_CHECK(is_valid_block_words(opts_.block_words),
           "diagnose: block_words must be 1, 2, 4, 8, 16 or 32");
  opts_.num_threads = pool.size();
  workers_.resize(static_cast<std::size_t>(pool_->size()));
  for (FaultConeEvaluator& w : workers_) {
    w.init(nl, opts_.block_words, opts_.backend);
  }
}

Diagnoser::~Diagnoser() = default;

void Diagnoser::ensure_goods(std::span<const TestPattern> patterns) {
  if (owned_goods_) {
    // Standalone: rebuild the good machine per call, the one-shot cost the
    // session API amortizes away. The cache cap stays at this engine's
    // historical 64 blocks -- a throwaway binding should not hold the
    // session-sized 256-block footprint.
    goods_->bind(*nl_, patterns, opts_.block_words, /*max_cached_blocks=*/64,
                 opts_.backend);
    return;
  }
  SP_CHECK(goods_->bound_to(patterns, opts_.block_words),
           "diagnose: the shared good-block cache is bound to a different "
           "pattern set (bind the session to these patterns first)");
}

std::vector<std::uint32_t> Diagnoser::prune_candidates(
    std::span<const Fault> faults, const FailureLog& log, PruneMode mode) {
  const Netlist& nl = *nl_;
  std::vector<std::vector<std::uint32_t>> op_sets;
  if (mode == PruneMode::kUnion) {
    // Noise-recovery fallback: one set holding every failing point. A
    // candidate survives iff it can reach *some* failing point -- sound
    // for any fault multiplicity and for logs with spurious records.
    std::vector<std::uint32_t> ops;
    for (const Failure& f : log.failures) ops.push_back(f.op);
    std::sort(ops.begin(), ops.end());
    ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
    if (!ops.empty()) op_sets.push_back(std::move(ops));
  } else {
    // Distinct failing-point sets, one per failing pattern (the log is
    // sorted by (pattern, op)). Two patterns failing the same points
    // contribute the same cone union, so dedupe before intersecting.
    for (std::size_t i = 0; i < log.failures.size();) {
      std::size_t j = i;
      std::vector<std::uint32_t> ops;
      while (j < log.failures.size() &&
             log.failures[j].pattern == log.failures[i].pattern) {
        ops.push_back(log.failures[j].op);
        ++j;
      }
      op_sets.push_back(std::move(ops));
      i = j;
    }
    std::sort(op_sets.begin(), op_sets.end());
    op_sets.erase(std::unique(op_sets.begin(), op_sets.end()), op_sets.end());
  }

  return prune_by_cone_unions(nl, *cones_, faults, op_sets);
}

Diagnoser::Prepared Diagnoser::prepare(std::span<const TestPattern> patterns,
                                       std::span<const Fault> faults,
                                       const FailureLog& log, PruneMode mode) {
  SP_CHECK(log.num_patterns == patterns.size(),
           "diagnose: failure log covers a different pattern count");
  SP_CHECK(std::is_sorted(log.failures.begin(), log.failures.end()),
           "diagnose: failure log must be sorted (FailureLog::normalize)");
  Prepared p;
  p.log = &log;
  p.res.num_faults = faults.size();

  p.observed = log.to_matrix(points_->size());
  p.total_fail = p.observed.popcount();
  p.res.num_failures = static_cast<std::size_t>(p.total_fail);
  {
    std::vector<std::uint32_t> pats, ops;
    for (const Failure& f : log.failures) {
      pats.push_back(f.pattern);
      ops.push_back(f.op);
    }
    std::sort(pats.begin(), pats.end());
    std::sort(ops.begin(), ops.end());
    p.res.num_failing_patterns = static_cast<std::size_t>(
        std::unique(pats.begin(), pats.end()) - pats.begin());
    p.res.num_failing_points = static_cast<std::size_t>(
        std::unique(ops.begin(), ops.end()) - ops.begin());
  }

  if (opts_.cone_pruning) {
    p.candidates = prune_candidates(faults, log, mode);
  } else {
    p.candidates.resize(faults.size());
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      p.candidates[fi] = static_cast<std::uint32_t>(fi);
    }
  }
  p.res.num_candidates = p.candidates.size();

  p.scores.resize(p.candidates.size());
  for (std::size_t ci = 0; ci < p.candidates.size(); ++ci) {
    p.scores[ci].fault = faults[p.candidates[ci]];
    p.scores[ci].fault_index = p.candidates[ci];
  }
  return p;
}

void Diagnoser::finalize(Prepared& p) {
  for (CandidateScore& sc : p.scores) {
    if (sc.dropped) {
      // Partial counters depend on where the sweep aborted; canonicalize
      // so rankings stay bit-identical across configurations.
      sc.tfsf = 0;
      sc.tpsf = 0;
      ++p.res.num_dropped;
    }
    sc.tfsp = p.total_fail - sc.tfsf;
  }
  std::sort(p.scores.begin(), p.scores.end());
  p.res.ranked = std::move(p.scores);
}

template <int W>
void Diagnoser::score_candidate_block(FaultConeEvaluator& ev,
                                      CandidateScore& sc, const Fault& f,
                                      const BlockSimulator& good,
                                      std::size_t block,
                                      const ResponseMatrix& observed,
                                      bool early_exit, std::uint64_t best) {
  const Netlist& nl = *nl_;
  const std::size_t lanes = goods_->lanes();
  const std::size_t base = block * lanes;
  const std::size_t batch =
      std::min(lanes, goods_->patterns().size() - base);
  const PackedBlock<W> mask = lane_validity_mask<W>(batch);
  const std::size_t word0 = base / 64;
  const std::size_t nwords = (batch + 63) / 64;

  // The drop bound stretches by noise_tolerance: a candidate that would
  // explain the log up to the tolerated number of noisy records must
  // finish scoring, and the saturating add keeps the "no bound yet"
  // sentinel infinite. The stretched test stays sound for the ranking --
  // TPSF only grows, so a dropped candidate's final Hamming distance
  // still provably exceeds the best by more than the tolerance.
  const std::uint64_t tol = opts_.noise_tolerance;
  const std::uint64_t bound =
      best > std::numeric_limits<std::uint64_t>::max() - tol ? best
                                                             : best + tol;
  // A D-branch fault sinks its DFF gate id as the capture branch; a
  // Q-stem fault sinks the same id meaning the Q net, which is read by
  // downstream capture points / its PO point.
  const bool d_branch = f.pin >= 0 && nl.type(f.gate) == GateType::Dff;
  ev.propagate<W>(
      good, f, mask, points_->observable(),
      [&](GateId gate, const PatternWord* diff) -> bool {
        const auto tally = [&](std::uint32_t op) {
          const PatternWord* obs = observed.row(op) + word0;
          for (std::size_t w = 0; w < nwords; ++w) {
            sc.tfsf += static_cast<std::uint64_t>(
                std::popcount(diff[w] & obs[w]));
            sc.tpsf += static_cast<std::uint64_t>(
                std::popcount(diff[w] & ~obs[w]));
          }
        };
        if (d_branch && gate == f.gate) {
          tally(static_cast<std::uint32_t>(points_->point_of_dff(gate)));
        } else {
          for (std::uint32_t op : points_->points_of_gate(gate)) {
            tally(op);
          }
        }
        return !(early_exit && sc.tpsf > bound);
      });
  if (early_exit && sc.tpsf > bound) sc.dropped = true;
}

template <int W>
void Diagnoser::score_candidates(std::span<const Fault> faults, Prepared& p) {
  const GoodBlockCache& goods = *goods_;
  const int num_workers = pool_->size();
  const bool early_exit = opts_.score_early_exit;

  // Candidates are scored in fixed-size rounds (in candidate order,
  // round-robin across workers within a round, so each score slot has
  // exactly one writer). The early-exit bound -- the best Hamming
  // distance among fully scored candidates -- advances only at round
  // boundaries; a candidate whose running TPSF exceeds it can never win
  // (TPSF only grows), so its cone sweep aborts and its remaining blocks
  // are skipped. Both the bound and the abort test depend only on
  // per-candidate totals, never on block partitioning or scheduling, so
  // the dropped set is bit-identical across (block width, thread count)
  // configurations.
  const std::size_t round_size =
      early_exit ? 64 : std::max<std::size_t>(p.candidates.size(), 1);
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();

  // Streaming scratch for pattern sets past the cache cap; the cached and
  // streamed values are identical, so so is the ranking.
  std::unique_ptr<BlockSimulator> stream;
  if (!goods.cached()) {
    stream = std::make_unique<BlockSimulator>(*nl_, W, opts_.backend);
  }

  for (std::size_t r0 = 0; r0 < p.candidates.size(); r0 += round_size) {
    const std::size_t r1 = std::min(r0 + round_size, p.candidates.size());
    for (std::size_t b = 0; b < goods.num_blocks(); ++b) {
      const BlockSimulator* good;
      if (goods.cached()) {
        good = &goods.block(b);
      } else {
        goods.stream(b, *stream);
        good = stream.get();
      }
      pool_->run_on_all([&](int t) {
        FaultConeEvaluator& ev = workers_[static_cast<std::size_t>(t)];
        for (std::size_t ci = r0 + static_cast<std::size_t>(t); ci < r1;
             ci += static_cast<std::size_t>(num_workers)) {
          CandidateScore& sc = p.scores[ci];
          if (sc.dropped) continue;
          score_candidate_block<W>(ev, sc, faults[p.candidates[ci]], *good, b,
                                   p.observed, early_exit, best);
        }
      });
    }
    for (std::size_t ci = r0; ci < r1; ++ci) {
      if (p.scores[ci].dropped) continue;
      best = std::min(best, p.total_fail - p.scores[ci].tfsf +
                                p.scores[ci].tpsf);
    }
  }
}

template <int W>
void Diagnoser::score_log_serial(int worker, std::span<const Fault> faults,
                                 Prepared& p, BlockSimulator* stream) {
  const GoodBlockCache& goods = *goods_;
  const bool early_exit = opts_.score_early_exit;
  // Identical round structure and per-candidate block order to the
  // pool-parallel path: the dropped set and every counter depend only on
  // per-candidate totals at block/round boundaries, so a log scored
  // serially by one worker is bit-identical to diagnose()'s result.
  const std::size_t round_size =
      early_exit ? 64 : std::max<std::size_t>(p.candidates.size(), 1);
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  FaultConeEvaluator& ev = workers_[static_cast<std::size_t>(worker)];

  for (std::size_t r0 = 0; r0 < p.candidates.size(); r0 += round_size) {
    const std::size_t r1 = std::min(r0 + round_size, p.candidates.size());
    for (std::size_t b = 0; b < goods.num_blocks(); ++b) {
      const BlockSimulator* good;
      if (goods.cached()) {
        good = &goods.block(b);
      } else {
        goods.stream(b, *stream);
        good = stream;
      }
      for (std::size_t ci = r0; ci < r1; ++ci) {
        CandidateScore& sc = p.scores[ci];
        if (sc.dropped) continue;
        score_candidate_block<W>(ev, sc, faults[p.candidates[ci]], *good, b,
                                 p.observed, early_exit, best);
      }
    }
    for (std::size_t ci = r0; ci < r1; ++ci) {
      if (p.scores[ci].dropped) continue;
      best = std::min(best, p.total_fail - p.scores[ci].tfsf +
                                p.scores[ci].tpsf);
    }
  }
}

template <int W>
void Diagnoser::recover_noise(int worker,
                              std::span<const TestPattern> patterns,
                              std::span<const Fault> faults, Prepared& p,
                              BlockSimulator* stream, bool serial) {
  if (!opts_.multiplets || p.total_fail == 0) return;
  if (!p.res.ranked.empty() && !p.res.ranked.front().dropped &&
      p.res.ranked.front().tfsp <= opts_.noise_tolerance) {
    return;  // a single candidate explains the log within tolerance
  }
  if (opts_.cone_pruning) {
    // Union-pruning fallback. The kUnion back-trace only touches cones
    // the kIntersect pass already cached, so in the batch fan-out this is
    // a pure cache read and stays race-free across workers.
    Prepared u = prepare(patterns, faults, *p.log, PruneMode::kUnion);
    if (u.candidates.size() != p.candidates.size()) {
      // The union candidate set is a strict superset -- rescore over it.
      if (serial) {
        score_log_serial<W>(worker, faults, u, stream);
      } else {
        score_candidates<W>(faults, u);
      }
      finalize(u);
      u.res.union_fallback = true;
      // The rescored result replaces the original; carry the query's
      // accumulated stats across (the rescore time itself lands in
      // cover_us via the caller's span).
      u.res.stats = p.res.stats;
      p = std::move(u);
    }
  }
  build_multiplets<W>(worker, faults, p, stream);
}

template <int W>
void Diagnoser::build_multiplets(int worker, std::span<const Fault> faults,
                                 Prepared& p, BlockSimulator* stream) {
  (void)faults;
  DiagnosisResult& res = p.res;
  res.multiplets.clear();
  if (res.ranked.empty() || p.total_fail == 0) return;

  const Netlist& nl = *nl_;
  const GoodBlockCache& goods = *goods_;
  const std::size_t wpp = p.observed.words_per_point();
  constexpr std::uint32_t kNoFop = static_cast<std::uint32_t>(-1);

  // Failing-pattern lane mask and a dense index over failing points.
  std::vector<PatternWord> fail_mask(wpp, 0);
  std::vector<std::uint32_t> fops;
  std::vector<std::uint32_t> fop_dense(points_->size(), kNoFop);
  for (const Failure& f : p.log->failures) {
    fail_mask[f.pattern / 64] |= PatternWord{1} << (f.pattern % 64);
    if (fop_dense[f.op] == kNoFop) {
      fop_dense[f.op] = static_cast<std::uint32_t>(fops.size());
      fops.push_back(f.op);
    }
  }

  // Shortlist: the top non-dropped candidates.
  std::size_t shortlist = 0;
  while (shortlist < res.ranked.size() &&
         shortlist < opts_.multiplet_shortlist &&
         !res.ranked[shortlist].dropped) {
    ++shortlist;
  }
  if (shortlist == 0) return;

  std::unique_ptr<BlockSimulator> local_stream;
  if (!goods.cached() && stream == nullptr) {
    local_stream = std::make_unique<BlockSimulator>(nl, W, opts_.backend);
    stream = local_stream.get();
  }
  FaultConeEvaluator& ev = workers_[static_cast<std::size_t>(worker)];
  const std::size_t lanes = goods.lanes();

  // Per-candidate predictions: `preds[k]` holds the candidate's predicted
  // failure lanes at every observed failing point, `offm[k]` the pattern
  // lanes where it predicts a failure at a never-failing point. A suspect
  // set explains a failing pattern when the UNION of its members'
  // predictions matches the observed behaviour at every observation
  // point. Union beats per-candidate exact cover on interaction patterns
  // -- ones where several faults fail together and no single candidate
  // reproduces the combined print -- while staying pure lane arithmetic,
  // so the emitted sets are as bit-identical across configurations as
  // the ranking itself.
  std::vector<std::vector<PatternWord>> preds(shortlist);
  std::vector<std::vector<PatternWord>> offm(shortlist);
  for (std::size_t k = 0; k < shortlist; ++k) {
    const Fault& f = res.ranked[k].fault;
    preds[k].assign(fops.size() * wpp, PatternWord{0});
    offm[k].assign(wpp, PatternWord{0});
    PatternWord* pred = preds[k].data();
    PatternWord* mismatch = offm[k].data();
    const bool d_branch = f.pin >= 0 && nl.type(f.gate) == GateType::Dff;
    for (std::size_t b = 0; b < goods.num_blocks(); ++b) {
      const BlockSimulator* good;
      if (goods.cached()) {
        good = &goods.block(b);
      } else {
        goods.stream(b, *stream);
        good = stream;
      }
      const std::size_t base = b * lanes;
      const std::size_t batch =
          std::min(lanes, goods.patterns().size() - base);
      const PackedBlock<W> mask = lane_validity_mask<W>(batch);
      const std::size_t word0 = base / 64;
      const std::size_t nwords = (batch + 63) / 64;
      ev.propagate<W>(
          *good, f, mask, points_->observable(),
          [&](GateId gate, const PatternWord* diff) {
            const auto record = [&](std::uint32_t op) {
              const std::uint32_t di = fop_dense[op];
              if (di != kNoFop) {
                PatternWord* row = pred + di * wpp + word0;
                for (std::size_t w = 0; w < nwords; ++w) row[w] |= diff[w];
              } else {
                for (std::size_t w = 0; w < nwords; ++w) {
                  mismatch[word0 + w] |= diff[w];
                }
              }
            };
            if (d_branch && gate == f.gate) {
              record(static_cast<std::uint32_t>(points_->point_of_dff(gate)));
            } else {
              for (std::uint32_t op : points_->points_of_gate(gate)) {
                record(op);
              }
            }
          });
    }
  }

  // Coverage of a suspect set: failing patterns where the union of the
  // members' predictions equals the observed print at every point.
  std::vector<PatternWord> mism(wpp);
  const auto coverage = [&](const std::vector<std::size_t>& ks,
                            std::vector<PatternWord>& out) {
    std::fill(mism.begin(), mism.end(), PatternWord{0});
    for (std::size_t k : ks) {
      for (std::size_t w = 0; w < wpp; ++w) mism[w] |= offm[k][w];
    }
    for (std::size_t i = 0; i < fops.size(); ++i) {
      const PatternWord* obs = p.observed.row(fops[i]);
      for (std::size_t w = 0; w < wpp; ++w) {
        PatternWord un = 0;
        for (std::size_t k : ks) un |= preds[k][i * wpp + w];
        mism[w] |= un ^ obs[w];
      }
    }
    out.resize(wpp);
    for (std::size_t w = 0; w < wpp; ++w) out[w] = fail_mask[w] & ~mism[w];
  };
  const auto popcnt = [](const std::vector<PatternWord>& v) {
    std::size_t n = 0;
    for (PatternWord w : v) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  };

  // Greedy cover, one candidate multiplet per seed: start from each of
  // the top-ranked candidates and repeatedly add the shortlist member
  // whose union-coverage with the set explains the most failing patterns
  // (strict improvement only; first-ranked wins ties). Purely arithmetic
  // over lane masks, so the emitted sets are as bit-identical across
  // configurations as the ranking itself.
  const std::size_t seeds = std::min(opts_.max_multiplets, shortlist);
  std::vector<SuspectSet> sets;
  std::vector<std::vector<std::uint32_t>> set_keys;
  std::vector<PatternWord> covered(wpp);
  std::vector<PatternWord> trial_cov(wpp);
  std::vector<std::size_t> trial;
  for (std::size_t s = 0; s < seeds; ++s) {
    std::vector<std::size_t> ks{s};
    coverage(ks, covered);
    std::size_t cur = popcnt(covered);
    while (ks.size() < opts_.max_multiplet_size) {
      std::size_t best_k = shortlist;
      std::size_t best_cov = cur;
      for (std::size_t k = 0; k < shortlist; ++k) {
        if (std::find(ks.begin(), ks.end(), k) != ks.end()) continue;
        trial = ks;
        trial.push_back(k);
        coverage(trial, trial_cov);
        const std::size_t c = popcnt(trial_cov);
        if (c > best_cov) {
          best_cov = c;
          best_k = k;
        }
      }
      if (best_k == shortlist) break;  // nothing improves coverage
      ks.push_back(best_k);
      cur = best_cov;
      coverage(ks, covered);
    }
    std::vector<std::uint32_t> key;
    for (std::size_t k : ks) key.push_back(res.ranked[k].fault_index);
    std::sort(key.begin(), key.end());
    if (std::find(set_keys.begin(), set_keys.end(), key) != set_keys.end()) {
      continue;  // same set reached from another seed
    }
    SuspectSet ss;
    for (std::size_t k : ks) ss.members.push_back(res.ranked[k]);
    ss.covered = popcnt(covered);
    ss.uncovered = res.num_failing_patterns - ss.covered;
    sets.push_back(std::move(ss));
    set_keys.push_back(std::move(key));
  }

  // Rank: most failing patterns explained, then smallest set, then best
  // members (lowest summed Hamming distance), then lexicographic fault
  // indices as the deterministic tie-break.
  const auto sum_hamming = [](const SuspectSet& ss) {
    std::uint64_t h = 0;
    for (const CandidateScore& m : ss.members) h += m.hamming();
    return h;
  };
  std::vector<std::size_t> order(sets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (sets[a].covered != sets[b].covered) {
      return sets[a].covered > sets[b].covered;
    }
    if (sets[a].members.size() != sets[b].members.size()) {
      return sets[a].members.size() < sets[b].members.size();
    }
    const std::uint64_t ha = sum_hamming(sets[a]);
    const std::uint64_t hb = sum_hamming(sets[b]);
    if (ha != hb) return ha < hb;
    return set_keys[a] < set_keys[b];
  });
  res.multiplets.reserve(order.size());
  for (std::size_t i : order) res.multiplets.push_back(std::move(sets[i]));
}

DiagnosisResult Diagnoser::diagnose(std::span<const TestPattern> patterns,
                                    std::span<const Fault> faults,
                                    const FailureLog& log) {
  Telemetry* const telem = opts_.telemetry;
  DiagnosisResult out;
  std::uint64_t total_us = 0;
  std::uint64_t cone_h0 = 0, cone_m0 = 0;
  if constexpr (kTelemetryEnabled) {
    cone_h0 = cones_->hits();
    cone_m0 = cones_->misses();
  }
  {
    TraceSpan span_all(telem, "diagnose", 0, CounterId::kCount, &total_us);
    // Validate + prune before ensure_goods: a malformed log must fail fast,
    // not after a full good-machine rebuild (standalone mode).
    Prepared p;
    {
      TraceSpan span(telem, "prune", 0, CounterId::kDiagPruneUs,
                     &p.res.stats.prune_us);
      p = prepare(patterns, faults, log, PruneMode::kIntersect);
    }
    ensure_goods(patterns);

    const auto run = [&]<int W>() {
      {
        TraceSpan span(telem, "score", 0, CounterId::kDiagScoreUs,
                       &p.res.stats.score_us);
        score_candidates<W>(faults, p);
      }
      finalize(p);
      // Worker 0's evaluator is free again (run_on_all has joined), so the
      // recovery stages replay on the caller thread.
      std::unique_ptr<BlockSimulator> stream;
      if (!goods_->cached()) {
        stream = std::make_unique<BlockSimulator>(*nl_, W, opts_.backend);
      }
      {
        TraceSpan span(telem, "cover", 0, CounterId::kDiagCoverUs,
                       &p.res.stats.cover_us);
        recover_noise<W>(0, patterns, faults, p, stream.get(),
                         /*serial=*/false);
      }
    };
    switch (opts_.block_words) {
      case 1: run.operator()<1>(); break;
      case 2: run.operator()<2>(); break;
      case 4: run.operator()<4>(); break;
      case 8: run.operator()<8>(); break;
      case 16: run.operator()<16>(); break;
      case 32: run.operator()<32>(); break;
      default: SP_ASSERT(false, "invalid block width");
    }

    if constexpr (kTelemetryEnabled) {
      // Drain the workers' sweep tallies in ascending order: the per-query
      // totals go on the result, the per-shard values into the registry.
      // Every query drains every worker, so tallies always start at zero.
      FaultConeEvaluator::SweepStats tot;
      for (std::size_t t = 0; t < workers_.size(); ++t) {
        const FaultConeEvaluator::SweepStats s = workers_[t].take_stats();
        tot.calls += s.calls;
        tot.unexcited += s.unexcited;
        tot.cone_gates += s.cone_gates;
        tot.active_gates += s.active_gates;
        tot.aborts += s.aborts;
        add_sweep_stats(telem, static_cast<int>(t), s);
      }
      p.res.stats.sweep_calls = tot.calls;
      p.res.stats.sweep_aborts = tot.aborts;
      // Serial wrt the cone cache (scoring never touches it), so the
      // deltas are exactly this query's lookups.
      p.res.stats.cone_cache_hits = cones_->hits() - cone_h0;
      p.res.stats.cone_cache_misses = cones_->misses() - cone_m0;
    }
    out = std::move(p.res);
  }
  if constexpr (kTelemetryEnabled) {
    if (telem != nullptr) {
      telem->metrics.add(0, CounterId::kDiagQueries, 1);
      telem->metrics.add(0, CounterId::kDiagCandidates, out.num_candidates);
      telem->metrics.add(0, CounterId::kDiagDropped, out.num_dropped);
      if (out.union_fallback) {
        telem->metrics.add(0, CounterId::kDiagUnionFallbacks, 1);
      }
      telem->metrics.add(0, CounterId::kDiagMultiplets, out.multiplets.size());
      telem->metrics.record_hist(HistId::kDiagnoseUs, total_us);
    }
  }
  return out;
}

std::vector<DiagnosisResult> Diagnoser::diagnose_batch(
    std::span<const TestPattern> patterns, std::span<const Fault> faults,
    std::span<const FailureLog* const> logs) {
  // A single log gains nothing from the per-worker fan-out (it would pin
  // the whole batch to one worker); the pool-parallel candidate scoring
  // of diagnose() is bit-identical and uses every worker.
  if (logs.size() == 1) {
    std::vector<DiagnosisResult> one;
    one.push_back(diagnose(patterns, faults, *logs[0]));
    return one;
  }

  Telemetry* const telem = opts_.telemetry;
  TraceSpan span_batch(telem, "diagnose_batch", 0);

  // Serial phase: validation, observed matrices and cone pruning (the
  // cone cache builds lazily, so it must not be touched concurrently).
  // This pass also caches every failing point's cone, which makes the
  // workers' noise-recovery fallback (a kUnion re-prune over the same
  // points) a pure read of the cache.
  std::vector<Prepared> prepared;
  prepared.reserve(logs.size());
  for (const FailureLog* log : logs) {
    std::uint64_t cone_h0 = 0, cone_m0 = 0;
    if constexpr (kTelemetryEnabled) {
      cone_h0 = cones_->hits();
      cone_m0 = cones_->misses();
    }
    std::uint64_t prune_us = 0;
    {
      TraceSpan span(telem, "prune", 0, CounterId::kDiagPruneUs, &prune_us);
      prepared.push_back(
          prepare(patterns, faults, *log, PruneMode::kIntersect));
    }
    if constexpr (kTelemetryEnabled) {
      DiagnosisStats& st = prepared.back().res.stats;
      st.prune_us = prune_us;
      st.cone_cache_hits = cones_->hits() - cone_h0;
      st.cone_cache_misses = cones_->misses() - cone_m0;
    }
  }
  ensure_goods(patterns);

  // Parallel phase: logs round-robin across the pool, each scored,
  // finalized and noise-recovered wholly within one worker from that
  // worker's private evaluator/scratch.
  const int num_workers = pool_->size();
  std::vector<std::unique_ptr<BlockSimulator>> streams(
      static_cast<std::size_t>(num_workers));
  if (!goods_->cached()) {
    for (auto& s : streams) {
      s = std::make_unique<BlockSimulator>(*nl_, opts_.block_words,
                                           opts_.backend);
    }
  }
  const auto run = [&]<int W>() {
    pool_->run_on_all([&](int t) {
      for (std::size_t li = static_cast<std::size_t>(t); li < prepared.size();
           li += static_cast<std::size_t>(num_workers)) {
        BlockSimulator* stream = streams[static_cast<std::size_t>(t)].get();
        Prepared& p = prepared[li];
        {
          TraceSpan span(telem, "score", t, CounterId::kDiagScoreUs,
                         &p.res.stats.score_us);
          score_log_serial<W>(t, faults, p, stream);
        }
        finalize(p);
        {
          TraceSpan span(telem, "cover", t, CounterId::kDiagCoverUs,
                         &p.res.stats.cover_us);
          recover_noise<W>(t, patterns, faults, p, stream, /*serial=*/true);
        }
        if constexpr (kTelemetryEnabled) {
          // This log ran wholly in worker t, so its evaluator's tallies
          // are exactly this log's sweeps.
          const FaultConeEvaluator::SweepStats s =
              workers_[static_cast<std::size_t>(t)].take_stats();
          p.res.stats.sweep_calls = s.calls;
          p.res.stats.sweep_aborts = s.aborts;
          add_sweep_stats(telem, t, s);
        }
      }
    });
  };
  switch (opts_.block_words) {
    case 1: run.operator()<1>(); break;
    case 2: run.operator()<2>(); break;
    case 4: run.operator()<4>(); break;
    case 8: run.operator()<8>(); break;
    case 16: run.operator()<16>(); break;
    case 32: run.operator()<32>(); break;
    default: SP_ASSERT(false, "invalid block width");
  }

  std::vector<DiagnosisResult> results;
  results.reserve(prepared.size());
  for (Prepared& p : prepared) {
    if constexpr (kTelemetryEnabled) {
      if (telem != nullptr) {
        telem->metrics.add(0, CounterId::kDiagQueries, 1);
        telem->metrics.add(0, CounterId::kDiagCandidates,
                           p.res.num_candidates);
        telem->metrics.add(0, CounterId::kDiagDropped, p.res.num_dropped);
        if (p.res.union_fallback) {
          telem->metrics.add(0, CounterId::kDiagUnionFallbacks, 1);
        }
        telem->metrics.add(0, CounterId::kDiagMultiplets,
                           p.res.multiplets.size());
      }
    }
    results.push_back(std::move(p.res));
  }
  return results;
}

bool SuspectSet::contains(const Fault& f) const {
  for (const CandidateScore& m : members) {
    if (m.fault == f) return true;
  }
  return false;
}

std::size_t DiagnosisResult::rank_of(const Fault& f) const {
  std::size_t at = ranked.size();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].fault == f) {
      at = i;
      break;
    }
  }
  if (at == ranked.size()) return 0;
  // Competition rank: candidates with equal (hamming, tfsf) -- and hence
  // equal counter triples -- are indistinguishable and share a rank.
  // Dropped candidates form their own trailing class (their scoring was
  // cut short, so only "cannot win" is known about them).
  std::size_t rank = 1;
  for (std::size_t i = 0; i < at; ++i) {
    if (ranked[i].hamming() != ranked[at].hamming() ||
        ranked[i].tfsf != ranked[at].tfsf ||
        ranked[i].dropped != ranked[at].dropped) {
      ++rank;
    }
  }
  return rank;
}

}  // namespace scanpower
