#include "diag/diagnose.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/assert.hpp"

namespace scanpower {

std::vector<std::uint32_t> prune_by_cone_unions(
    const Netlist& nl, ObservationConeCache& cones,
    std::span<const Fault> faults,
    const std::vector<std::vector<std::uint32_t>>& op_sets) {
  // allowed[g] = 1 iff gate g is in every op set's cone union. (The cone
  // cache owns its DFS scratch; the union uses its own, so a lazy cone
  // build mid-union cannot collide.)
  std::vector<std::uint8_t> allowed(nl.num_gates(), 1);
  std::vector<std::uint8_t> union_mark(nl.num_gates(), 0);
  std::vector<GateId> uni;
  for (const std::vector<std::uint32_t>& ops : op_sets) {
    uni.clear();
    for (std::uint32_t op : ops) {
      for (GateId g : cones.cone(op)) {
        if (!union_mark[g]) {
          union_mark[g] = 1;
          uni.push_back(g);
        }
      }
    }
    for (GateId g = 0; g < nl.num_gates(); ++g) {
      allowed[g] &= union_mark[g];
    }
    for (GateId g : uni) union_mark[g] = 0;
  }

  // A fault's effect enters observation cones at its site gate -- for a
  // D-branch fault that is the capture cell itself, which the capture
  // point's cone includes.
  std::vector<std::uint32_t> candidates;
  candidates.reserve(faults.size());
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (allowed[faults[fi].gate]) {
      candidates.push_back(static_cast<std::uint32_t>(fi));
    }
  }
  return candidates;
}

Diagnoser::Diagnoser(const Netlist& nl, DiagnosisOptions opts)
    : nl_(&nl), opts_(opts), points_(nl), cones_(nl, points_) {
  SP_CHECK(nl.finalized(), "Diagnoser requires a finalized netlist");
  SP_CHECK(is_valid_block_words(opts_.block_words),
           "diagnose: block_words must be 1, 2, 4 or 8");
  opts_.num_threads = ThreadPool::resolve_threads(opts_.num_threads);
  pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
  workers_.resize(static_cast<std::size_t>(pool_->size()));
  for (FaultConeEvaluator& w : workers_) w.init(nl, opts_.block_words);
}

Diagnoser::~Diagnoser() = default;

std::vector<std::uint32_t> Diagnoser::prune_candidates(
    std::span<const Fault> faults, const FailureLog& log) {
  const Netlist& nl = *nl_;
  // Distinct failing-point sets, one per failing pattern (the log is
  // sorted by (pattern, op)). Two patterns failing the same points
  // contribute the same cone union, so dedupe before intersecting.
  std::vector<std::vector<std::uint32_t>> op_sets;
  for (std::size_t i = 0; i < log.failures.size();) {
    std::size_t j = i;
    std::vector<std::uint32_t> ops;
    while (j < log.failures.size() &&
           log.failures[j].pattern == log.failures[i].pattern) {
      ops.push_back(log.failures[j].op);
      ++j;
    }
    op_sets.push_back(std::move(ops));
    i = j;
  }
  std::sort(op_sets.begin(), op_sets.end());
  op_sets.erase(std::unique(op_sets.begin(), op_sets.end()), op_sets.end());

  return prune_by_cone_unions(nl, cones_, faults, op_sets);
}

template <int W>
void Diagnoser::score_candidates(std::span<const TestPattern> patterns,
                                 std::span<const Fault> faults,
                                 std::span<const std::uint32_t> candidates,
                                 const ResponseMatrix& observed,
                                 std::uint64_t total_fail,
                                 std::vector<CandidateScore>& scores) {
  const Netlist& nl = *nl_;
  const std::size_t lanes = static_cast<std::size_t>(W) * 64;
  const int num_workers = pool_->size();
  const bool early_exit = opts_.score_early_exit;

  // Candidates are scored in fixed-size rounds (in candidate order,
  // round-robin across workers within a round, so each score slot has
  // exactly one writer). The early-exit bound -- the best Hamming
  // distance among fully scored candidates -- advances only at round
  // boundaries; a candidate whose running TPSF exceeds it can never win
  // (TPSF only grows), so its cone sweep aborts and its remaining blocks
  // are skipped. Both the bound and the abort test depend only on
  // per-candidate totals, never on block partitioning or scheduling, so
  // the dropped set is bit-identical across (block width, thread count)
  // configurations.
  const std::size_t round_size = early_exit ? 64 : candidates.size();
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();

  // Scores candidates [r0, r1) against one simulated good-machine block.
  const auto score_block = [&](const BlockSimulator& good, std::size_t base,
                               std::size_t r0, std::size_t r1) {
    const std::size_t batch = std::min(lanes, patterns.size() - base);
    const PackedBlock<W> mask = lane_validity_mask<W>(batch);
    const std::size_t word0 = base / 64;
    const std::size_t nwords = (batch + 63) / 64;

    pool_->run_on_all([&](int t) {
      FaultConeEvaluator& ev = workers_[static_cast<std::size_t>(t)];
      for (std::size_t ci = r0 + static_cast<std::size_t>(t); ci < r1;
           ci += static_cast<std::size_t>(num_workers)) {
        CandidateScore& sc = scores[ci];
        if (sc.dropped) continue;
        const Fault& f = faults[candidates[ci]];
        // A D-branch fault sinks its DFF gate id as the capture branch;
        // a Q-stem fault sinks the same id meaning the Q net, which is
        // read by downstream capture points / its PO point.
        const bool d_branch = f.pin >= 0 && nl.type(f.gate) == GateType::Dff;
        ev.propagate<W>(
            good, f, mask, points_.observable(),
            [&](GateId gate, const PatternWord* diff) -> bool {
              const auto tally = [&](std::uint32_t op) {
                const PatternWord* obs = observed.row(op) + word0;
                for (std::size_t w = 0; w < nwords; ++w) {
                  sc.tfsf += static_cast<std::uint64_t>(
                      std::popcount(diff[w] & obs[w]));
                  sc.tpsf += static_cast<std::uint64_t>(
                      std::popcount(diff[w] & ~obs[w]));
                }
              };
              if (d_branch && gate == f.gate) {
                tally(static_cast<std::uint32_t>(points_.point_of_dff(gate)));
              } else {
                for (std::uint32_t op : points_.points_of_gate(gate)) {
                  tally(op);
                }
              }
              return !(early_exit && sc.tpsf > best);
            });
        if (early_exit && sc.tpsf > best) sc.dropped = true;
      }
    });
  };

  if (candidates.size() <= round_size) {
    // Single round (early-exit off, or few candidates): the bound never
    // advances mid-round, so stream the blocks through one reused
    // simulator instead of caching them all.
    BlockSimulator good(nl, W);
    for (std::size_t base = 0; base < patterns.size(); base += lanes) {
      load_pattern_block(nl, patterns, base, good);
      good.eval();
      score_block(good, base, 0, candidates.size());
    }
    return;
  }

  // Multiple rounds revisit every block: cache the simulated good machine
  // per block while the pattern set is modest (num_gates * W * 8 bytes
  // per block), and fall back to re-simulating each block per round
  // beyond that cap -- a good-machine eval is cheap next to scoring a
  // round of candidates, and the values are identical either way.
  const std::size_t nblocks = (patterns.size() + lanes - 1) / lanes;
  constexpr std::size_t kMaxCachedGoodBlocks = 64;
  const bool cache_blocks = nblocks <= kMaxCachedGoodBlocks;
  std::vector<BlockSimulator> goods;
  if (cache_blocks) {
    for (std::size_t base = 0; base < patterns.size(); base += lanes) {
      goods.emplace_back(nl, W);
      load_pattern_block(nl, patterns, base, goods.back());
      goods.back().eval();
    }
  } else {
    goods.emplace_back(nl, W);  // one streaming simulator, reloaded per block
  }
  for (std::size_t r0 = 0; r0 < candidates.size(); r0 += round_size) {
    const std::size_t r1 = std::min(r0 + round_size, candidates.size());
    for (std::size_t b = 0; b < nblocks; ++b) {
      if (cache_blocks) {
        score_block(goods[b], b * lanes, r0, r1);
      } else {
        load_pattern_block(nl, patterns, b * lanes, goods[0]);
        goods[0].eval();
        score_block(goods[0], b * lanes, r0, r1);
      }
    }
    for (std::size_t ci = r0; ci < r1; ++ci) {
      if (scores[ci].dropped) continue;
      best = std::min(best, total_fail - scores[ci].tfsf + scores[ci].tpsf);
    }
  }
}

DiagnosisResult Diagnoser::diagnose(std::span<const TestPattern> patterns,
                                    std::span<const Fault> faults,
                                    const FailureLog& log) {
  SP_CHECK(log.num_patterns == patterns.size(),
           "diagnose: failure log covers a different pattern count");
  SP_CHECK(std::is_sorted(log.failures.begin(), log.failures.end()),
           "diagnose: failure log must be sorted (FailureLog::normalize)");
  DiagnosisResult res;
  res.num_faults = faults.size();

  const ResponseMatrix observed = log.to_matrix(points_.size());
  const std::uint64_t total_fail = observed.popcount();
  res.num_failures = static_cast<std::size_t>(total_fail);
  {
    std::vector<std::uint32_t> pats, ops;
    for (const Failure& f : log.failures) {
      pats.push_back(f.pattern);
      ops.push_back(f.op);
    }
    std::sort(pats.begin(), pats.end());
    std::sort(ops.begin(), ops.end());
    res.num_failing_patterns = static_cast<std::size_t>(
        std::unique(pats.begin(), pats.end()) - pats.begin());
    res.num_failing_points = static_cast<std::size_t>(
        std::unique(ops.begin(), ops.end()) - ops.begin());
  }

  std::vector<std::uint32_t> candidates;
  if (opts_.cone_pruning) {
    candidates = prune_candidates(faults, log);
  } else {
    candidates.resize(faults.size());
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      candidates[fi] = static_cast<std::uint32_t>(fi);
    }
  }
  res.num_candidates = candidates.size();

  std::vector<CandidateScore> scores(candidates.size());
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    scores[ci].fault = faults[candidates[ci]];
    scores[ci].fault_index = candidates[ci];
  }

  switch (opts_.block_words) {
    case 1: score_candidates<1>(patterns, faults, candidates, observed, total_fail, scores); break;
    case 2: score_candidates<2>(patterns, faults, candidates, observed, total_fail, scores); break;
    case 4: score_candidates<4>(patterns, faults, candidates, observed, total_fail, scores); break;
    case 8: score_candidates<8>(patterns, faults, candidates, observed, total_fail, scores); break;
    default: SP_ASSERT(false, "invalid block width");
  }

  for (CandidateScore& sc : scores) {
    if (sc.dropped) {
      // Partial counters depend on where the sweep aborted; canonicalize
      // so rankings stay bit-identical across configurations.
      sc.tfsf = 0;
      sc.tpsf = 0;
      ++res.num_dropped;
    }
    sc.tfsp = total_fail - sc.tfsf;
  }
  std::sort(scores.begin(), scores.end());
  res.ranked = std::move(scores);
  return res;
}

std::size_t DiagnosisResult::rank_of(const Fault& f) const {
  std::size_t at = ranked.size();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].fault == f) {
      at = i;
      break;
    }
  }
  if (at == ranked.size()) return 0;
  // Competition rank: candidates with equal (hamming, tfsf) -- and hence
  // equal counter triples -- are indistinguishable and share a rank.
  // Dropped candidates form their own trailing class (their scoring was
  // cut short, so only "cannot win" is known about them).
  std::size_t rank = 1;
  for (std::size_t i = 0; i < at; ++i) {
    if (ranked[i].hamming() != ranked[at].hamming() ||
        ranked[i].tfsf != ranked[at].tfsf ||
        ranked[i].dropped != ranked[at].dropped) {
      ++rank;
    }
  }
  return rank;
}

}  // namespace scanpower
