#pragma once
// Cause-effect stuck-at diagnosis: which fault explains a failure log?
//
// Two stages, both built on the packed simulation engine:
//
//  1. Candidate generation -- structural pruning. A single stuck-at fault
//     can only corrupt observation points whose fanin cone contains the
//     fault site, so for every failing pattern the candidate must lie in
//     the union of the failing points' fanin cones, and therefore in the
//     intersection of those unions across failing patterns. Distinct
//     failing-point sets are deduplicated before intersecting, so the
//     back-trace cost scales with response diversity, not pattern count.
//
//  2. Candidate ranking -- packed per-candidate simulation. Every
//     surviving candidate is injected into the faulty machine (reusing
//     FaultConeEvaluator's sparse cone sweep) and its predicted failures
//     are compared against the observed log with SLAT-style match
//     counters over (pattern, observation point) pairs:
//       TFSF  tester-fail, simulation-fail   (explained failures)
//       TFSP  tester-fail, simulation-pass   (unexplained failures)
//       TPSF  tester-pass, simulation-fail   (mispredicted failures)
//     Ranking: exact matches (TFSP = TPSF = 0) first, then ascending
//     Hamming distance (TFSP + TPSF), then descending TFSF, ties broken
//     by candidate index. Candidates are scored round-robin across the
//     worker pool; every counter is a popcount sum over disjoint words,
//     so results are bit-identical for every (block width, thread count)
//     configuration.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/pattern.hpp"
#include "diag/response.hpp"
#include "netlist/netlist.hpp"
#include "util/thread_pool.hpp"

namespace scanpower {

/// Shared cone-union back-trace used by both diagnosers: a candidate
/// survives iff its site gate lies, for every op set, in the union of
/// that set's observation-point cones. Full-response diagnosis passes
/// one set per distinct failing-point pattern; compacted diagnosis one
/// set of unmasked points per distinct failing window. Callers
/// deduplicate `op_sets` (identical sets contribute identical unions).
std::vector<std::uint32_t> prune_by_cone_unions(
    const Netlist& nl, ObservationConeCache& cones,
    std::span<const Fault> faults,
    const std::vector<std::vector<std::uint32_t>>& op_sets);

struct DiagnosisOptions {
  /// Pattern words per simulation block (1, 2, 4 or 8).
  int block_words = 4;
  /// Worker count for candidate scoring. 1 = serial; 0 = hardware
  /// concurrency.
  int num_threads = 1;
  /// Fanin-cone back-trace pruning before scoring. Disable to score the
  /// entire fault list (diagnosing logs with suspected multiple faults).
  bool cone_pruning = true;
  /// Early-exit during scoring (mirrors fault dropping in the simulator):
  /// TPSF only grows as a candidate's cone sweep tallies observation
  /// points, so a candidate whose running TPSF already exceeds the best
  /// completed Hamming distance (TFSP + TPSF) cannot win -- its sweep is
  /// aborted and its remaining pattern blocks skipped. Candidates are
  /// scored in fixed-size rounds and the best Hamming bound advances only
  /// at round boundaries, so the dropped set -- and the final ranking --
  /// stays bit-identical across every (block width, thread count)
  /// configuration. Dropped candidates keep canonical zero counters and
  /// rank after all fully scored candidates.
  bool score_early_exit = true;
  /// Report size used by the CLI/JSON front ends; the ranked list itself
  /// always keeps every scored candidate.
  std::size_t max_report = 10;
};

/// One scored candidate fault.
struct CandidateScore {
  Fault fault;
  std::uint32_t fault_index = 0;  ///< index into the diagnosed fault list
  std::uint64_t tfsf = 0;         ///< tester fail & simulation fail
  std::uint64_t tfsp = 0;         ///< tester fail & simulation pass
  std::uint64_t tpsf = 0;         ///< tester pass & simulation fail
  /// Scoring was cut short: the candidate provably cannot beat the best
  /// explanation (see DiagnosisOptions::score_early_exit). Counters are
  /// canonical (tfsf = tpsf = 0, tfsp = total failures).
  bool dropped = false;

  bool exact() const { return !dropped && tfsp == 0 && tpsf == 0; }
  std::uint64_t hamming() const { return tfsp + tpsf; }

  /// Strict-weak "explains the log better" order (see header comment);
  /// dropped candidates rank after every fully scored one.
  friend bool operator<(const CandidateScore& a, const CandidateScore& b) {
    if (a.dropped != b.dropped) return !a.dropped;
    if (a.dropped) return a.fault_index < b.fault_index;
    if (a.hamming() != b.hamming()) return a.hamming() < b.hamming();
    if (a.tfsf != b.tfsf) return a.tfsf > b.tfsf;
    return a.fault_index < b.fault_index;
  }
};

struct DiagnosisResult {
  /// Every scored candidate, best explanation first.
  std::vector<CandidateScore> ranked;

  std::size_t num_faults = 0;            ///< fault universe diagnosed against
  std::size_t num_candidates = 0;        ///< survived cone pruning (= ranked.size())
  std::size_t num_dropped = 0;           ///< scoring cut short by early-exit
  std::size_t num_failures = 0;          ///< log entries (failing windows
                                         ///< for compacted diagnosis)
  std::size_t num_failing_patterns = 0;
  std::size_t num_failing_points = 0;    ///< distinct failing observation points

  // Compacted-signature diagnosis only (SignatureDiagnoser); zero when
  // diagnosing a full failure log.
  std::size_t num_windows = 0;
  std::size_t num_failing_windows = 0;
  std::size_t num_masked = 0;            ///< masked (point, window) pairs

  /// 1-based competition rank of fault `f` among the scored candidates:
  /// candidates with equal scores share a rank (they are indistinguishable
  /// under the applied patterns). Returns 0 if `f` was pruned away.
  std::size_t rank_of(const Fault& f) const;
};

class Diagnoser {
 public:
  explicit Diagnoser(const Netlist& nl, DiagnosisOptions opts = {});
  ~Diagnoser();

  const DiagnosisOptions& options() const { return opts_; }
  const ObservationPoints& points() const { return points_; }

  /// Scores `faults` (typically collapse_faults(nl)) against the observed
  /// failure log under `patterns` (fully specified; the log's pattern
  /// indices must refer to this set).
  DiagnosisResult diagnose(std::span<const TestPattern> patterns,
                           std::span<const Fault> faults,
                           const FailureLog& log);

 private:
  std::vector<std::uint32_t> prune_candidates(std::span<const Fault> faults,
                                              const FailureLog& log);

  template <int W>
  void score_candidates(std::span<const TestPattern> patterns,
                        std::span<const Fault> faults,
                        std::span<const std::uint32_t> candidates,
                        const ResponseMatrix& observed,
                        std::uint64_t total_fail,
                        std::vector<CandidateScore>& scores);

  const Netlist* nl_;
  DiagnosisOptions opts_;
  ObservationPoints points_;
  ObservationConeCache cones_;           ///< per-op fanin cones, lazily built
  std::vector<FaultConeEvaluator> workers_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace scanpower
