#pragma once
// Cause-effect stuck-at diagnosis: which fault explains a failure log?
//
// Two stages, both built on the packed simulation engine:
//
//  1. Candidate generation -- structural pruning. A single stuck-at fault
//     can only corrupt observation points whose fanin cone contains the
//     fault site, so for every failing pattern the candidate must lie in
//     the union of the failing points' fanin cones, and therefore in the
//     intersection of those unions across failing patterns. Distinct
//     failing-point sets are deduplicated before intersecting, so the
//     back-trace cost scales with response diversity, not pattern count.
//
//  2. Candidate ranking -- packed per-candidate simulation. Every
//     surviving candidate is injected into the faulty machine (reusing
//     FaultConeEvaluator's sparse cone sweep) and its predicted failures
//     are compared against the observed log with SLAT-style match
//     counters over (pattern, observation point) pairs:
//       TFSF  tester-fail, simulation-fail   (explained failures)
//       TFSP  tester-fail, simulation-pass   (unexplained failures)
//       TPSF  tester-pass, simulation-fail   (mispredicted failures)
//     Ranking: exact matches (TFSP = TPSF = 0) first, then ascending
//     Hamming distance (TFSP + TPSF), then descending TFSF, ties broken
//     by candidate index. Candidates are scored round-robin across the
//     worker pool; every counter is a popcount sum over disjoint words,
//     so results are bit-identical for every (block width, thread count)
//     configuration.
//
// When the best single candidate leaves failures unexplained (a noisy
// log, or more than one real defect), a noise-recovery stage runs after
// ranking:
//
//  3. Union-pruning fallback -- the intersection back-trace of stage 1 is
//     only sound for a single fault (with two defects, no single cone
//     union need contain either site for *every* failing pattern). When
//     the top-ranked candidate's TFSP exceeds noise_tolerance, pruning
//     falls back to the union of all failing points' cones and rescoring
//     runs over the enlarged candidate set -- the graceful, automatic
//     form of the manual all-or-nothing cone_pruning = false escape
//     hatch.
//
//  4. Multiplet cover -- SLAT-style per-pattern partitioning. Each
//     shortlisted candidate's predicted response is replayed; a failing
//     pattern is "explained exactly" by a candidate iff the candidate's
//     predicted failures match the observed failures on that pattern at
//     every observation point. A greedy set cover over that partition
//     emits ranked suspect *sets* (DiagnosisResult::multiplets) -- pairs
//     (or small sets) of candidates that jointly explain the log when no
//     single candidate does. Clean single-fault logs skip both stages
//     (the top candidate explains everything), so the single-fault path
//     pays nothing.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/pattern.hpp"
#include "diag/response.hpp"
#include "netlist/netlist.hpp"
#include "util/thread_pool.hpp"

namespace scanpower {

/// Shared cone-union back-trace used by both diagnosers: a candidate
/// survives iff its site gate lies, for every op set, in the union of
/// that set's observation-point cones. Full-response diagnosis passes
/// one set per distinct failing-point pattern; compacted diagnosis one
/// set of unmasked points per distinct failing window. Callers
/// deduplicate `op_sets` (identical sets contribute identical unions).
std::vector<std::uint32_t> prune_by_cone_unions(
    const Netlist& nl, ObservationConeCache& cones,
    std::span<const Fault> faults,
    const std::vector<std::vector<std::uint32_t>>& op_sets);

struct DiagnosisOptions {
  /// Pattern words per simulation block (1, 2, 4, 8, 16 or 32; 16/32
  /// require the wide backend).
  int block_words = 4;
  /// Kernel backend for the packed sweeps; Auto = best available for the
  /// width. Results are bit-identical across backends.
  SimBackend backend = SimBackend::Auto;
  /// Worker count for candidate scoring. 1 = serial; 0 = hardware
  /// concurrency.
  int num_threads = 1;
  /// Fanin-cone back-trace pruning before scoring. Disable to score the
  /// entire fault list (diagnosing logs with suspected multiple faults).
  bool cone_pruning = true;
  /// Early-exit during scoring (mirrors fault dropping in the simulator):
  /// TPSF only grows as a candidate's cone sweep tallies observation
  /// points, so a candidate whose running TPSF already exceeds the best
  /// completed Hamming distance (TFSP + TPSF) cannot win -- its sweep is
  /// aborted and its remaining pattern blocks skipped. Candidates are
  /// scored in fixed-size rounds and the best Hamming bound advances only
  /// at round boundaries, so the dropped set -- and the final ranking --
  /// stays bit-identical across every (block width, thread count)
  /// configuration. Dropped candidates keep canonical zero counters and
  /// rank after all fully scored candidates.
  bool score_early_exit = true;
  /// Report size used by the CLI/JSON front ends; the ranked list itself
  /// always keeps every scored candidate.
  std::size_t max_report = 10;
  /// Tester-noise tolerance, in records: a candidate is not dropped by
  /// the scoring early-exit for mispredicting up to this many records
  /// beyond the best completed Hamming distance, and the noise-recovery
  /// stages only trigger when the top candidate leaves more than this
  /// many failures unexplained. 0 = trust the log exactly.
  std::uint64_t noise_tolerance = 0;
  /// Noise recovery (union-pruning fallback + multiplet cover) when no
  /// single candidate explains the log within noise_tolerance.
  bool multiplets = true;
  /// Top-ranked candidates replayed for the multiplet cover.
  std::size_t multiplet_shortlist = 64;
  /// Maximum candidates per suspect set.
  std::size_t max_multiplet_size = 4;
  /// Maximum suspect sets reported (also the number of greedy seeds).
  std::size_t max_multiplets = 8;
  /// Optional metrics/trace scope (not owned; nullptr = no registry or
  /// trace output, but DiagnosisResult::stats is still populated).
  Telemetry* telemetry = nullptr;
};

/// Per-query telemetry carried on a DiagnosisResult. All-zero when the
/// library is built with SCANPOWER_TELEMETRY=OFF. Wall-clock fields are
/// non-deterministic by nature; the count fields equal what the query
/// added to the corresponding registry counters. Cone-cache deltas are
/// only attributed on serial prepare paths (single-log diagnose, and the
/// serial prepare phase of a batch); concurrent cache hits from batch
/// noise recovery are counted globally but not per query.
struct DiagnosisStats {
  std::uint64_t prune_us = 0;         ///< validate + back-trace pruning
  std::uint64_t score_us = 0;         ///< candidate ranking (first pass)
  std::uint64_t cover_us = 0;         ///< noise recovery: union rescore + cover
  std::uint64_t sweep_calls = 0;      ///< cone sweeps run for this query
  std::uint64_t sweep_aborts = 0;     ///< sweeps cut short by early-exit
  std::uint64_t cone_cache_hits = 0;
  std::uint64_t cone_cache_misses = 0;
};

/// One scored candidate fault.
struct CandidateScore {
  Fault fault;
  std::uint32_t fault_index = 0;  ///< index into the diagnosed fault list
  std::uint64_t tfsf = 0;         ///< tester fail & simulation fail
  std::uint64_t tfsp = 0;         ///< tester fail & simulation pass
  std::uint64_t tpsf = 0;         ///< tester pass & simulation fail
  /// Scoring was cut short: the candidate provably cannot beat the best
  /// explanation (see DiagnosisOptions::score_early_exit). Counters are
  /// canonical (tfsf = tpsf = 0, tfsp = total failures).
  bool dropped = false;

  bool exact() const { return !dropped && tfsp == 0 && tpsf == 0; }
  std::uint64_t hamming() const { return tfsp + tpsf; }

  /// Strict-weak "explains the log better" order (see header comment);
  /// dropped candidates rank after every fully scored one.
  friend bool operator<(const CandidateScore& a, const CandidateScore& b) {
    if (a.dropped != b.dropped) return !a.dropped;
    if (a.dropped) return a.fault_index < b.fault_index;
    if (a.hamming() != b.hamming()) return a.hamming() < b.hamming();
    if (a.tfsf != b.tfsf) return a.tfsf > b.tfsf;
    return a.fault_index < b.fault_index;
  }
};

/// One multi-fault suspect set: candidates that jointly explain the log.
/// `covered` counts failing patterns some member explains exactly (its
/// predicted failures equal the observed failures on that pattern at
/// every observation point); `uncovered` counts the rest -- residual
/// noise, or a defect outside the shortlist.
struct SuspectSet {
  std::vector<CandidateScore> members;  ///< greedy insertion order
  std::size_t covered = 0;
  std::size_t uncovered = 0;

  bool contains(const Fault& f) const;
};

struct DiagnosisResult {
  /// Every scored candidate, best explanation first.
  std::vector<CandidateScore> ranked;

  /// Ranked multi-fault suspect sets (best cover first). Empty when the
  /// top single candidate explains the log within noise_tolerance, when
  /// options disable multiplets, or for batch/compacted paths that do
  /// not run the cover. Bit-identical across every (block width, thread
  /// count) configuration, like `ranked`.
  std::vector<SuspectSet> multiplets;
  /// Cone pruning fell back from the per-pattern intersection to the
  /// union of all failing points' cones (multi-fault / noisy log).
  bool union_fallback = false;

  std::size_t num_faults = 0;            ///< fault universe diagnosed against
  std::size_t num_candidates = 0;        ///< survived cone pruning (= ranked.size())
  std::size_t num_dropped = 0;           ///< scoring cut short by early-exit
  std::size_t num_failures = 0;          ///< log entries (failing windows
                                         ///< for compacted diagnosis)
  std::size_t num_failing_patterns = 0;
  std::size_t num_failing_points = 0;    ///< distinct failing observation points

  // Compacted-signature diagnosis only (SignatureDiagnoser); zero when
  // diagnosing a full failure log.
  std::size_t num_windows = 0;
  std::size_t num_failing_windows = 0;
  std::size_t num_masked = 0;            ///< masked (point, window) pairs

  /// Per-query timing and work tallies (never part of ranking or of any
  /// determinism contract; see DiagnosisStats).
  DiagnosisStats stats;

  /// 1-based competition rank of fault `f` among the scored candidates:
  /// candidates with equal scores share a rank (they are indistinguishable
  /// under the applied patterns). Returns 0 if `f` was pruned away.
  std::size_t rank_of(const Fault& f) const;
};

class Diagnoser {
 public:
  /// Standalone: builds a private worker pool, observation-point space,
  /// cone cache and good-block cache (the cache is rebound on every
  /// diagnose() call) -- one-shot use without a ScanSession.
  explicit Diagnoser(const Netlist& nl, DiagnosisOptions opts = {});
  /// Borrowing: shares a ScanSession's pool, point space, cone cache and
  /// good-block cache across calls and engines. `goods` must already be
  /// bound (by the owner) to the pattern storage later passed to
  /// diagnose(); opts.num_threads is superseded by the pool's size.
  Diagnoser(const Netlist& nl, DiagnosisOptions opts, ThreadPool& pool,
            const ObservationPoints& points, ObservationConeCache& cones,
            GoodBlockCache& goods);
  ~Diagnoser();

  const DiagnosisOptions& options() const { return opts_; }
  const ObservationPoints& points() const { return *points_; }

  /// Scores `faults` (typically collapse_faults(nl)) against the observed
  /// failure log under `patterns` (fully specified; the log's pattern
  /// indices must refer to this set).
  DiagnosisResult diagnose(std::span<const TestPattern> patterns,
                           std::span<const Fault> faults,
                           const FailureLog& log);

  /// Batch entry point behind ScanSession::diagnose_batch: every log is
  /// validated and cone-pruned serially (sharing the lazily built cones),
  /// then the logs fan out round-robin across the worker pool -- each log
  /// is scored wholly within one worker, in the same fixed 64-candidate
  /// rounds and block order as diagnose(), so each result is bit-identical
  /// to a sequential diagnose() call on the same log.
  std::vector<DiagnosisResult> diagnose_batch(
      std::span<const TestPattern> patterns, std::span<const Fault> faults,
      std::span<const FailureLog* const> logs);

 private:
  /// Validated, pruned, ready-to-score state of one log.
  struct Prepared {
    const FailureLog* log = nullptr;
    ResponseMatrix observed;
    std::uint64_t total_fail = 0;
    std::vector<std::uint32_t> candidates;
    std::vector<CandidateScore> scores;
    DiagnosisResult res;  ///< stats prefilled; ranked filled by finalize()
  };

  /// Back-trace flavour: intersection of per-pattern cone unions (sound
  /// for one fault) or the single union over every failing point (sound
  /// for any fault multiplicity; the noise-recovery fallback).
  enum class PruneMode { kIntersect, kUnion };

  void ensure_goods(std::span<const TestPattern> patterns);
  Prepared prepare(std::span<const TestPattern> patterns,
                   std::span<const Fault> faults, const FailureLog& log,
                   PruneMode mode);
  void finalize(Prepared& p);

  std::vector<std::uint32_t> prune_candidates(std::span<const Fault> faults,
                                              const FailureLog& log,
                                              PruneMode mode);

  /// Accumulates one candidate's counters over one good-machine block and
  /// applies the early-exit drop test at the block boundary.
  template <int W>
  void score_candidate_block(FaultConeEvaluator& ev, CandidateScore& sc,
                             const Fault& f, const BlockSimulator& good,
                             std::size_t block, const ResponseMatrix& observed,
                             bool early_exit, std::uint64_t best);

  template <int W>
  void score_candidates(std::span<const Fault> faults, Prepared& p);
  template <int W>
  void score_log_serial(int worker, std::span<const Fault> faults, Prepared& p,
                        BlockSimulator* stream);

  /// Post-ranking noise recovery: union-pruning fallback + multiplet
  /// cover (header stages 3/4). `serial` selects the one-worker scoring
  /// path for the rescore (batch fan-out; only already-cached cones are
  /// read, so concurrent workers stay race-free).
  template <int W>
  void recover_noise(int worker, std::span<const TestPattern> patterns,
                     std::span<const Fault> faults, Prepared& p,
                     BlockSimulator* stream, bool serial);
  /// Replays the top shortlist candidates, partitions failing patterns by
  /// exact explanation and greedily covers them into res.multiplets.
  template <int W>
  void build_multiplets(int worker, std::span<const Fault> faults, Prepared& p,
                        BlockSimulator* stream);

  const Netlist* nl_;
  DiagnosisOptions opts_;
  // Owned engine state (standalone construction only; null when borrowed).
  std::unique_ptr<ObservationPoints> owned_points_;
  std::unique_ptr<ObservationConeCache> owned_cones_;
  std::unique_ptr<GoodBlockCache> owned_goods_;
  std::unique_ptr<ThreadPool> owned_pool_;
  // Borrowed-or-owned views used by all engine code.
  const ObservationPoints* points_ = nullptr;
  ObservationConeCache* cones_ = nullptr;
  GoodBlockCache* goods_ = nullptr;
  ThreadPool* pool_ = nullptr;
  std::vector<FaultConeEvaluator> workers_;
};

}  // namespace scanpower
