#include "diag/noise.hpp"

#include <cmath>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scanpower {

namespace {

void check_rates(const NoiseOptions& opts) {
  SP_CHECK(opts.drop_rate >= 0.0 && opts.drop_rate <= 1.0,
           "NoiseModel: drop_rate must be in [0, 1]");
  SP_CHECK(opts.flip_rate >= 0.0 && opts.flip_rate <= 1.0,
           "NoiseModel: flip_rate must be in [0, 1]");
}

std::size_t flip_budget(double rate, std::size_t records) {
  return static_cast<std::size_t>(
      std::llround(rate * static_cast<double>(records)));
}

}  // namespace

NoiseModel::NoiseModel(NoiseOptions opts) : opts_(opts) { check_rates(opts_); }

FailureLog NoiseModel::corrupt(const FailureLog& log, std::size_t num_points,
                               NoiseStats* stats) const {
  SP_CHECK(num_points > 0, "NoiseModel: num_points must be positive");
  SP_CHECK(log.num_patterns > 0, "NoiseModel: log has no patterns");
  Rng rng(opts_.seed);
  NoiseStats st;

  FailureLog out;
  out.circuit = log.circuit;
  out.num_patterns = log.num_patterns;
  std::unordered_set<std::uint64_t> taken;
  const auto key = [](std::uint32_t pattern, std::uint32_t op) {
    return (static_cast<std::uint64_t>(pattern) << 32) | op;
  };
  taken.reserve(log.failures.size() * 2);
  for (const Failure& f : log.failures) {
    // Every original record occupies its position whether or not it is
    // dropped: a flip must land on a position the tester reported as
    // passing, and a dropped record is a lost failure, not a pass.
    taken.insert(key(f.pattern, f.op));
    if (rng.next_double() < opts_.drop_rate) {
      ++st.dropped;
    } else {
      out.failures.push_back(f);
    }
  }

  // Spurious failures at passing positions. Rejection-sampled with a
  // deterministic retry cap so a pathological log (almost every position
  // failing) terminates with fewer flips rather than spinning.
  const std::size_t budget = flip_budget(opts_.flip_rate, log.failures.size());
  std::size_t attempts = 64 * budget + 64;
  while (st.flipped < budget && attempts-- > 0) {
    const auto pattern =
        static_cast<std::uint32_t>(rng.next_below(log.num_patterns));
    const auto op = static_cast<std::uint32_t>(rng.next_below(num_points));
    if (!taken.insert(key(pattern, op)).second) continue;
    out.failures.push_back({pattern, op});
    ++st.flipped;
  }

  out.normalize();
  if (stats) *stats = st;
  return out;
}

SignatureLog NoiseModel::corrupt(const SignatureLog& log,
                                 NoiseStats* stats) const {
  Rng rng(opts_.seed);
  NoiseStats st;
  SignatureLog out = log;
  const std::uint64_t width_mask =
      log.misr.width >= 64 ? ~std::uint64_t{0}
                           : ((std::uint64_t{1} << log.misr.width) - 1);

  std::size_t original_failing = 0;
  for (std::size_t w = 0; w < out.num_windows(); ++w) {
    if (!log.window_fails(w)) continue;
    ++original_failing;
    if (rng.next_double() < opts_.drop_rate) {
      out.observed[w] = out.expected[w];  // lost failure reads as passing
      ++st.dropped;
    }
  }

  const std::size_t budget = flip_budget(opts_.flip_rate, original_failing);
  for (std::size_t i = 0; i < budget && out.num_windows() > 0; ++i) {
    const std::size_t w = rng.next_below(out.num_windows());
    std::uint64_t garble = rng.next_u64() & width_mask;
    if (garble == 0) garble = 1;  // a zero XOR would be a no-op, not noise
    out.observed[w] ^= garble;
    ++st.flipped;
  }

  if (stats) *stats = st;
  return out;
}

std::string NoiseModel::corrupt_text(const std::string& text) const {
  Rng rng(opts_.seed);
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  std::size_t records = 0;
  for (const std::string& l : lines) {
    const std::string t(trim(l));
    if (!t.empty() && t[0] != '#') ++records;
  }
  std::size_t budget = flip_budget(opts_.flip_rate, records);

  std::ostringstream out;
  for (const std::string& l : lines) {
    out << l << "\n";
    const std::string t(trim(l));
    if (t.empty() || t[0] == '#') continue;
    if (budget > 0 && rng.next_double() < opts_.flip_rate) {
      out << l << "\n";  // duplicated record line
      --budget;
    }
  }
  return out.str();
}

}  // namespace scanpower
