#pragma once
// Seeded tester-noise model for diagnosis robustness work.
//
// Real tester logs are not the clean output of ResponseCapture::inject:
// records get dropped (truncated uploads, tester memory limits), spurious
// failures appear (marginal strobes, contact noise), and hand-carried
// files accumulate duplicated lines. NoiseModel perturbs a FailureLog or
// SignatureLog with calibrated, reproducible corruption so tests and
// benches can inject noise the same way they inject faults: construct
// with rates and a seed, call corrupt(), get the same corrupted log every
// time on every platform.
//
// Corruption kinds:
//  - drops: each failing record (failure entry / failing window) is
//    independently deleted with probability drop_rate. A dropped window
//    reads back as passing (observed = expected).
//  - flips: round(flip_rate * original_failures) spurious failures are
//    added at uniformly chosen passing (pattern, point) positions; for a
//    signature log the observed signature of a uniformly chosen window is
//    XORed with a random nonzero value, corrupting passing and failing
//    windows alike.
//  - corrupt_text(): duplicates already-emitted record lines of a saved
//    text log. Duplicate records cannot exist in a normalized in-memory
//    log, so this is the ingestion-hardening companion: the strict
//    loaders must reject the result with a line-numbered error.

#include <cstdint>
#include <string>

#include "compact/signature_log.hpp"
#include "diag/response.hpp"

namespace scanpower {

struct NoiseOptions {
  double drop_rate = 0.0;  ///< per-record deletion probability, [0, 1]
  double flip_rate = 0.0;  ///< spurious records per original record, [0, 1]
  std::uint64_t seed = 0x5eeded;
};

/// What one corrupt() call actually did (the realized noise, for logging
/// and for asserting calibration in tests).
struct NoiseStats {
  std::size_t dropped = 0;  ///< failing records deleted
  std::size_t flipped = 0;  ///< spurious records added / signatures XORed
};

class NoiseModel {
 public:
  explicit NoiseModel(NoiseOptions opts);

  const NoiseOptions& options() const { return opts_; }

  /// Corrupted copy of a failure log. `num_points` bounds the observation
  /// point space spurious failures are drawn from (typically
  /// ObservationPoints::size()). The result is normalized.
  FailureLog corrupt(const FailureLog& log, std::size_t num_points,
                     NoiseStats* stats = nullptr) const;

  /// Corrupted copy of a signature log: failing windows drop back to
  /// their expected signature, flipped windows get their observed
  /// signature XORed with a random nonzero width-masked value.
  SignatureLog corrupt(const SignatureLog& log,
                       NoiseStats* stats = nullptr) const;

  /// Ingestion-noise companion: duplicates round(flip_rate * lines)
  /// non-comment record lines of a saved text log (failure or signature
  /// format), re-emitting each immediately after the original. The strict
  /// loaders reject duplicated records, so the result must fail to load
  /// with a line-numbered error.
  std::string corrupt_text(const std::string& text) const;

 private:
  NoiseOptions opts_;
};

}  // namespace scanpower
