#include "diag/response.hpp"

#include <algorithm>
#include <bit>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

ObservationPoints::ObservationPoints(const Netlist& nl) {
  SP_CHECK(nl.finalized(), "ObservationPoints requires a finalized netlist");
  num_pos_ = nl.outputs().size();
  source_.reserve(num_pos_ + nl.dffs().size());
  for (GateId po : nl.outputs()) source_.push_back(po);
  dff_op_.assign(nl.num_gates(), static_cast<std::uint32_t>(-1));
  cells_ = nl.dffs();
  for (GateId dff : cells_) {
    dff_op_[dff] = static_cast<std::uint32_t>(source_.size());
    source_.push_back(nl.fanins(dff)[0]);
  }

  // CSR gate -> observation points reading its net.
  std::vector<std::uint32_t> counts(nl.num_gates() + 1, 0);
  for (GateId g : source_) counts[g + 1]++;
  op_offsets_.assign(nl.num_gates() + 1, 0);
  for (std::size_t i = 1; i < op_offsets_.size(); ++i) {
    op_offsets_[i] = op_offsets_[i - 1] + counts[i];
  }
  op_data_.resize(source_.size());
  std::vector<std::uint32_t> cursor(op_offsets_.begin(), op_offsets_.end() - 1);
  for (std::size_t op = 0; op < source_.size(); ++op) {
    op_data_[cursor[source_[op]]++] = static_cast<std::uint32_t>(op);
  }

  observable_ = observable_net_mask(nl);
}

GateId ObservationPoints::dff_gate(std::size_t op) const {
  SP_ASSERT(is_dff_capture(op), "ObservationPoints: not a capture point");
  return cells_[op - num_pos_];
}

std::string ObservationPoints::name(const Netlist& nl, std::size_t op) const {
  if (op < num_pos_) {
    return "po:" + nl.gate_name(source_[op]);
  }
  return "dff:" + nl.gate_name(cells_[op - num_pos_]) + ".D";
}

std::string ObservationPoints::record_name(const Netlist& nl,
                                           std::size_t op) const {
  if (op < num_pos_) {
    return "po:" + nl.gate_name(source_[op]);
  }
  return "ff:" + nl.gate_name(cells_[op - num_pos_]);
}

std::size_t ObservationPoints::resolve_record_name(
    const Netlist& nl, const std::string& token) const {
  std::string kind;
  std::string net;
  if (token.rfind("po:", 0) == 0) {
    kind = "po";
    net = token.substr(3);
  } else if (token.rfind("ff:", 0) == 0) {
    kind = "ff";
    net = token.substr(3);
  } else if (token.rfind("dff:", 0) == 0) {
    kind = "ff";
    net = token.substr(4);
    if (net.size() > 2 && net.compare(net.size() - 2, 2, ".D") == 0) {
      net.resize(net.size() - 2);  // accept the informational ".D" suffix
    }
  } else {
    SP_CHECK(false, "failure log: bad observation-point token \"" + token +
                        "\" (expected po:<net> or ff:<cell>)");
  }
  const GateId g = nl.find(net);
  SP_CHECK(g != kInvalidGate,
           "failure log: unknown net \"" + net + "\" in \"" + token + "\"");
  if (kind == "ff") {
    const std::size_t op = point_of_dff(g);
    SP_CHECK(op != kNone,
             "failure log: \"" + net + "\" is not a scan cell");
    return op;
  }
  for (std::uint32_t op : points_of_gate(g)) {
    if (!is_dff_capture(op) && source_[op] == g) return op;
  }
  throw Error("failure log: \"" + net + "\" is not a primary output");
}

std::span<const std::uint32_t> ObservationPoints::points_of_gate(GateId g) const {
  return {op_data_.data() + op_offsets_[g], op_offsets_[g + 1] - op_offsets_[g]};
}

std::size_t ObservationPoints::point_of_dff(GateId d) const {
  const std::uint32_t op = dff_op_[d];
  return op == static_cast<std::uint32_t>(-1) ? kNone : op;
}

ObservationConeCache::ObservationConeCache(const Netlist& nl,
                                           const ObservationPoints& points)
    : nl_(&nl), points_(&points) {
  cache_.resize(points.size());
  cached_.assign(points.size(), 0);
  mark_.assign(nl.num_gates(), 0);
}

const std::vector<GateId>& ObservationConeCache::cone(std::size_t op) {
  if (cached_[op]) {
    if constexpr (kTelemetryEnabled) {
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return cache_[op];
  }
  if constexpr (kTelemetryEnabled) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  const Netlist& nl = *nl_;
  const std::span<const GateType> types = nl.types_flat();
  std::vector<GateId> out;
  std::vector<GateId> stack{points_->observed_gate(op)};
  // `mark_` is reusable scratch: every entry set here is in `out` and is
  // cleared before returning.
  mark_[stack[0]] = 1;
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    // The scan boundary cuts the cone: a DFF's Q net is a pseudo-input
    // (its own fault site), but logic behind its D pin belongs to the
    // previous capture cycle.
    if (!is_combinational(types[id])) continue;
    for (GateId fin : nl.fanin_span(id)) {
      if (!mark_[fin]) {
        mark_[fin] = 1;
        stack.push_back(fin);
      }
    }
  }
  if (points_->is_dff_capture(op)) {
    const GateId cell = points_->dff_gate(op);
    if (!mark_[cell]) {
      mark_[cell] = 1;
      out.push_back(cell);  // D-branch fault sites live on the capture cell
    }
  }
  for (GateId id : out) mark_[id] = 0;
  cache_[op] = std::move(out);
  cached_[op] = 1;
  return cache_[op];
}

void ObservationConeCache::build_all() {
  for (std::size_t op = 0; op < cache_.size(); ++op) (void)cone(op);
}

std::size_t ResponseMatrix::popcount() const {
  std::size_t n = 0;
  for (PatternWord w : words) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

void FailureLog::normalize() {
  std::sort(failures.begin(), failures.end());
  failures.erase(std::unique(failures.begin(), failures.end()), failures.end());
}

ResponseMatrix FailureLog::to_matrix(std::size_t num_points) const {
  ResponseMatrix m;
  m.num_points = num_points;
  m.num_patterns = num_patterns;
  m.words.assign(num_points * m.words_per_point(), 0);
  for (const Failure& f : failures) {
    SP_CHECK(f.pattern < num_patterns && f.op < num_points,
             "FailureLog: failure outside pattern/point range");
    m.set_bit(f.op, f.pattern);
  }
  return m;
}

void save_failure_log(std::ostream& out, const FailureLog& log,
                      const Netlist* nl, const ObservationPoints* ops,
                      bool named_records) {
  SP_CHECK(!named_records || (nl != nullptr && ops != nullptr),
           "save_failure_log: named records need the netlist and points");
  out << "# scanpower failure log\n";
  if (!log.circuit.empty()) out << "circuit " << log.circuit << "\n";
  out << "patterns " << log.num_patterns << "\n";
  for (const Failure& f : log.failures) {
    out << "fail " << f.pattern << " ";
    if (named_records) {
      SP_CHECK(f.op < ops->size(),
               "save_failure_log: failure outside the observation space");
      out << ops->record_name(*nl, f.op);
    } else {
      out << f.op;
      if (nl && ops && f.op < ops->size()) out << " " << ops->name(*nl, f.op);
    }
    out << "\n";
  }
  out << "end " << log.failures.size() << "\n";
}

namespace {

/// Strict non-negative index token: digits only, no sign, no trailing
/// characters ("12abc" and "-3" are parse errors, not 12 and a surprise).
bool parse_index_token(const std::string& tok, std::uint64_t& out) {
  if (tok.empty() || tok.size() > 19) return false;
  std::uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

}  // namespace

FailureLog load_failure_log(std::istream& in, const Netlist* nl,
                            const ObservationPoints* ops) {
  FailureLog log;
  std::string line;
  std::size_t lineno = 0;
  bool have_circuit = false;
  bool have_patterns = false;
  bool have_end = false;
  std::unordered_set<std::uint64_t> seen;
  const auto fail_at = [&lineno](const std::string& what) {
    throw Error(strprintf("failure log line %zu: %s", lineno, what.c_str()));
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed(trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream ls(trimmed);
    std::string kw;
    ls >> kw;
    if (have_end) fail_at("record \"" + kw + "\" after the end marker");
    if (kw == "circuit") {
      if (have_circuit) fail_at("duplicate circuit record");
      ls >> log.circuit;
      if (log.circuit.empty()) fail_at("expected \"circuit <name>\"");
      have_circuit = true;
    } else if (kw == "patterns") {
      if (have_patterns) fail_at("duplicate patterns record");
      std::string tok;
      ls >> tok;
      std::uint64_t v = 0;
      if (!parse_index_token(tok, v)) {
        fail_at("bad pattern count \"" + tok + "\"");
      }
      log.num_patterns = static_cast<std::size_t>(v);
      have_patterns = true;
    } else if (kw == "fail") {
      if (!have_patterns) fail_at("fail record before the patterns header");
      Failure f;
      std::string pat_tok;
      std::string op_tok;
      ls >> pat_tok >> op_tok;
      if (op_tok.empty()) fail_at("expected \"fail <pattern> <op>\"");
      std::uint64_t pat = 0;
      if (!parse_index_token(pat_tok, pat)) {
        fail_at("bad pattern index \"" + pat_tok + "\"");
      }
      if (pat >= log.num_patterns) {
        fail_at(strprintf("pattern %llu out of range (log has %zu patterns)",
                          static_cast<unsigned long long>(pat),
                          log.num_patterns));
      }
      f.pattern = static_cast<std::uint32_t>(pat);
      if (op_tok.find(':') == std::string::npos) {
        std::uint64_t v = 0;
        if (!parse_index_token(op_tok, v) || v > 0xffffffffULL) {
          fail_at("bad point index \"" + op_tok + "\"");
        }
        if (ops != nullptr && v >= ops->size()) {
          fail_at(strprintf("point %llu out of range (%zu observation points)",
                            static_cast<unsigned long long>(v), ops->size()));
        }
        f.op = static_cast<std::uint32_t>(v);
        // Index records may carry one informational op-name token (save
        // emits "po:..."/"dff:...", always containing ':').
        std::string name_tok;
        ls >> name_tok;
        if (!name_tok.empty() &&
            name_tok.find(':') == std::string::npos) {
          fail_at("unexpected trailing token \"" + name_tok + "\"");
        }
      } else {
        if (nl == nullptr || ops == nullptr) {
          fail_at("name-based record \"" + op_tok +
                  "\" needs the netlist to resolve");
        }
        try {
          f.op =
              static_cast<std::uint32_t>(ops->resolve_record_name(*nl, op_tok));
        } catch (const Error& e) {
          fail_at(e.what());
        }
      }
      if (!seen.insert((static_cast<std::uint64_t>(f.pattern) << 32) | f.op)
               .second) {
        fail_at(strprintf("duplicate failure record (pattern %u, point %u)",
                          f.pattern, f.op));
      }
      log.failures.push_back(f);
    } else if (kw == "end") {
      std::string tok;
      ls >> tok;
      std::uint64_t v = 0;
      if (!parse_index_token(tok, v)) {
        fail_at("bad end-marker count \"" + tok + "\"");
      }
      if (v != log.failures.size()) {
        fail_at(strprintf("end marker claims %llu records but %zu were read",
                          static_cast<unsigned long long>(v),
                          log.failures.size()));
      }
      have_end = true;
    } else {
      fail_at("unknown keyword \"" + kw + "\"");
    }
    std::string rest;
    ls >> rest;
    if (!rest.empty()) fail_at("unexpected trailing token \"" + rest + "\"");
  }
  SP_CHECK(have_end,
           "failure log: truncated (missing \"end <count>\" marker)");
  log.normalize();
  return log;
}

void save_failure_log_file(const std::string& path, const FailureLog& log,
                           const Netlist* nl, const ObservationPoints* ops,
                           bool named_records) {
  std::ofstream f(path);
  SP_CHECK(f.good(), "cannot write " + path);
  save_failure_log(f, log, nl, ops, named_records);
}

FailureLog load_failure_log_file(const std::string& path, const Netlist* nl,
                                 const ObservationPoints* ops) {
  std::ifstream f(path);
  SP_CHECK(f.good(), "cannot read " + path);
  return load_failure_log(f, nl, ops);
}

void GoodBlockCache::bind(const Netlist& nl,
                          std::span<const TestPattern> patterns,
                          int block_words, std::size_t max_cached_blocks,
                          SimBackend backend) {
  SP_CHECK(is_valid_block_words(block_words),
           "GoodBlockCache: block_words must be 1, 2, 4, 8, 16 or 32");
  nl_ = &nl;
  patterns_ = patterns;
  words_ = block_words;
  const std::size_t lanes = this->lanes();
  nblocks_ = (patterns.size() + lanes - 1) / lanes;
  cached_ = nblocks_ <= max_cached_blocks;
  blocks_.clear();
  if constexpr (kTelemetryEnabled) ++binds_;
  if (!cached_) return;
  const auto t0 = std::chrono::steady_clock::now();
  blocks_.reserve(nblocks_);
  for (std::size_t base = 0; base < patterns.size(); base += lanes) {
    blocks_.emplace_back(nl, words_, backend);
    load_pattern_block(nl, patterns, base, blocks_.back());
    blocks_.back().eval();
  }
  if constexpr (kTelemetryEnabled) {
    built_blocks_ += nblocks_;
    build_us_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
}

void GoodBlockCache::reset() {
  nl_ = nullptr;
  patterns_ = {};
  words_ = 0;
  nblocks_ = 0;
  cached_ = false;
  blocks_.clear();
}

void GoodBlockCache::stream(std::size_t b, BlockSimulator& scratch) const {
  SP_ASSERT(bound() && b < nblocks_, "GoodBlockCache: block out of range");
  if constexpr (kTelemetryEnabled) {
    streamed_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  load_pattern_block(*nl_, patterns_, b * lanes(), scratch);
  scratch.eval();
}

ResponseCapture::ResponseCapture(const Netlist& nl, int block_words,
                                 SimBackend backend)
    : nl_(&nl), words_(block_words), backend_(backend), points_(nl) {
  SP_CHECK(is_valid_block_words(block_words),
           "ResponseCapture: block_words must be 1, 2, 4, 8, 16 or 32");
  eval_.init(nl, block_words, backend);
}

template <int W>
void ResponseCapture::capture_good_impl(std::span<const TestPattern> patterns,
                                        ResponseMatrix& out) {
  const Netlist& nl = *nl_;
  BlockSimulator good(nl, W, backend_);
  const std::size_t lanes = good.lanes();
  const std::size_t wpp = out.words_per_point();
  for (std::size_t base = 0; base < patterns.size(); base += lanes) {
    const std::size_t batch = std::min(lanes, patterns.size() - base);
    load_pattern_block(nl, patterns, base, good);
    good.eval();
    const PackedBlock<W> mask = lane_validity_mask<W>(batch);
    const std::size_t word0 = base / 64;
    const std::size_t nwords = (batch + 63) / 64;
    for (std::size_t op = 0; op < points_.size(); ++op) {
      const PatternWord* v = good.block(points_.observed_gate(op));
      PatternWord* row = out.words.data() + op * wpp + word0;
      for (std::size_t w = 0; w < nwords; ++w) {
        row[w] = v[w] & mask.w[w];
      }
    }
  }
}

ResponseMatrix ResponseCapture::capture_good(
    std::span<const TestPattern> patterns) {
  ResponseMatrix out;
  out.num_points = points_.size();
  out.num_patterns = patterns.size();
  out.words.assign(out.num_points * out.words_per_point(), 0);
  switch (words_) {
    case 1: capture_good_impl<1>(patterns, out); break;
    case 2: capture_good_impl<2>(patterns, out); break;
    case 4: capture_good_impl<4>(patterns, out); break;
    case 8: capture_good_impl<8>(patterns, out); break;
    case 16: capture_good_impl<16>(patterns, out); break;
    case 32: capture_good_impl<32>(patterns, out); break;
    default: SP_ASSERT(false, "invalid block width");
  }
  return out;
}

template <int W>
void ResponseCapture::inject_impl(std::span<const TestPattern> patterns,
                                  const Fault& f, FailureLog& log) {
  const Netlist& nl = *nl_;
  BlockSimulator good(nl, W, backend_);
  const std::size_t lanes = good.lanes();
  for (std::size_t base = 0; base < patterns.size(); base += lanes) {
    const std::size_t batch = std::min(lanes, patterns.size() - base);
    load_pattern_block(nl, patterns, base, good);
    good.eval();
    const PackedBlock<W> mask = lane_validity_mask<W>(batch);
    // Only a D-branch fault sinks the DFF gate id *as a capture branch*;
    // a stem fault on a DFF's Q net sinks the same gate id but means the
    // Q net, read by whatever observation points consume it.
    const bool d_branch = f.pin >= 0 && nl.type(f.gate) == GateType::Dff;
    eval_.propagate<W>(
        good, f, mask, points_.observable(),
        [&](GateId gate, const PatternWord* diff) {
          const auto emit = [&](std::uint32_t op) {
            for (int w = 0; w < W; ++w) {
              PatternWord d = diff[w];
              while (d != 0) {
                const int lane = std::countr_zero(d);
                d &= d - 1;
                log.failures.push_back(
                    {static_cast<std::uint32_t>(base +
                                                static_cast<std::size_t>(w) * 64 +
                                                static_cast<std::size_t>(lane)),
                     op});
              }
            }
          };
          if (d_branch && gate == f.gate) {
            emit(static_cast<std::uint32_t>(points_.point_of_dff(gate)));
          } else {
            for (std::uint32_t op : points_.points_of_gate(gate)) emit(op);
          }
        });
  }
}

FailureLog ResponseCapture::inject(std::span<const TestPattern> patterns,
                                   const Fault& f) {
  FailureLog log;
  log.circuit = nl_->name();
  log.num_patterns = patterns.size();
  switch (words_) {
    case 1: inject_impl<1>(patterns, f, log); break;
    case 2: inject_impl<2>(patterns, f, log); break;
    case 4: inject_impl<4>(patterns, f, log); break;
    case 8: inject_impl<8>(patterns, f, log); break;
    case 16: inject_impl<16>(patterns, f, log); break;
    case 32: inject_impl<32>(patterns, f, log); break;
    default: SP_ASSERT(false, "invalid block width");
  }
  log.normalize();
  return log;
}

template <int W>
void ResponseCapture::inject_multi_impl(std::span<const TestPattern> patterns,
                                        std::span<const Fault> faults,
                                        FailureLog& log) {
  const Netlist& nl = *nl_;
  const std::span<const GateType> types = nl.types_flat();
  const std::span<const std::uint32_t> levels = nl.levels_flat();
  const std::span<const std::uint8_t> observable = points_.observable();

  // Split capture-branch faults from net faults: a stuck D branch
  // supersedes whatever the cell's driver computes, so it is compared
  // per cell after the shared cone sweep, against the *good* driver
  // value (the stuck branch hides any upstream corruption of the D net).
  std::vector<Fault> sites;
  std::vector<Fault> branches;
  std::vector<std::uint8_t> branch_stuck(nl.num_gates(), 0);
  for (const Fault& f : faults) {
    if (f.pin >= 0 && types[f.gate] == GateType::Dff) {
      SP_CHECK(!branch_stuck[f.gate],
               "inject: contradictory faults on one capture branch");
      branch_stuck[f.gate] = 1;
      branches.push_back(f);
    } else {
      sites.push_back(f);
    }
  }
  // Per-gate forcing plan. A gate may carry several faults at once: a
  // stuck output (stem) plus stuck inputs (pins), or several stuck pins.
  // The stem forcing supersedes every pin forcing on the same gate; only
  // opposite stuck-at values on the *same* site are contradictory (an
  // impossible chip) and rejected.
  std::vector<std::uint8_t> is_site(nl.num_gates(), 0);
  std::vector<std::int8_t> stem_force(nl.num_gates(), -1);
  std::unordered_map<GateId, std::vector<std::pair<int, bool>>> pin_forces;
  for (const Fault& f : sites) {
    is_site[f.gate] = 1;
    if (f.pin < 0) {
      // Duplicates were collapsed, so a second stem fault here must have
      // the opposite polarity.
      SP_CHECK(stem_force[f.gate] < 0,
               "inject: contradictory stem faults on one gate");
      stem_force[f.gate] = f.stuck_at ? 1 : 0;
    } else {
      auto& forces = pin_forces[f.gate];
      for (const auto& [pin, stuck] : forces) {
        SP_CHECK(pin != f.pin,
                 "inject: contradictory faults on one gate input");
      }
      forces.emplace_back(f.pin, f.stuck_at);
    }
  }

  // Merged, level-sorted union of the sites' fanout cones: one in-order
  // sweep evaluates the machine carrying every fault at once, so effects
  // interact exactly (an upstream fault's corrupted value feeds the
  // downstream site's pin-forced re-evaluation).
  std::vector<std::uint8_t> in_union(nl.num_gates(), 0);
  std::vector<GateId> union_cone;
  for (const Fault& f : sites) {
    for (GateId g : eval_.cone(f.gate)) {
      if (!in_union[g]) {
        in_union[g] = 1;
        union_cone.push_back(g);
      }
    }
  }
  std::sort(union_cone.begin(), union_cone.end(), [&](GateId a, GateId b) {
    return levels[a] != levels[b] ? levels[a] < levels[b] : a < b;
  });

  BlockSimulator good(nl, W, backend_);
  const std::size_t lanes = good.lanes();
  std::vector<PatternWord> faulty(nl.num_gates() * static_cast<std::size_t>(W));
  std::vector<std::uint8_t> touched(nl.num_gates(), 0);
  std::vector<GateId> active;
  std::vector<PatternWord> ins;
  const auto fanin_block = [&](GateId fin) {
    return touched[fin] ? faulty.data() + static_cast<std::size_t>(fin) * W
                        : good.block(fin);
  };

  for (std::size_t base = 0; base < patterns.size(); base += lanes) {
    const std::size_t batch = std::min(lanes, patterns.size() - base);
    load_pattern_block(nl, patterns, base, good);
    good.eval();
    const PackedBlock<W> mask = lane_validity_mask<W>(batch);

    const auto emit = [&](std::uint32_t op, const PatternWord* diff) {
      for (int w = 0; w < W; ++w) {
        PatternWord d = diff[w];
        while (d != 0) {
          const int lane = std::countr_zero(d);
          d &= d - 1;
          log.failures.push_back(
              {static_cast<std::uint32_t>(base +
                                          static_cast<std::size_t>(w) * 64 +
                                          static_cast<std::size_t>(lane)),
               op});
        }
      }
    };

    active.clear();
    for (GateId id : union_cone) {
      const std::span<const GateId> fans = nl.fanin_span(id);
      PatternWord out[W];
      if (is_site[id]) {
        if (stem_force[id] >= 0) {
          const PatternWord forced = stem_force[id] ? ~PatternWord{0} : 0;
          for (int w = 0; w < W; ++w) out[w] = forced;
        } else {
          const auto& forces = pin_forces.find(id)->second;
          ins.resize(fans.size());
          for (int w = 0; w < W; ++w) {
            for (std::size_t p = 0; p < fans.size(); ++p) {
              ins[p] = fanin_block(fans[p])[w];
            }
            for (const auto& [pin, stuck] : forces) {
              ins[static_cast<std::size_t>(pin)] =
                  stuck ? ~PatternWord{0} : 0;
            }
            out[w] = eval_type_packed(types[id], ins);
          }
        }
      } else {
        std::uint8_t any_touched = 0;
        for (GateId fin : fans) any_touched |= touched[fin];
        if (!any_touched) continue;
        eval_gate_block<W>(types[id], fans, fanin_block, out);
      }
      const PatternWord* g = good.block(id);
      PatternWord raw = 0;
      for (int w = 0; w < W; ++w) raw |= out[w] ^ g[w];
      if (raw == 0) continue;
      PatternWord* const fb = faulty.data() + static_cast<std::size_t>(id) * W;
      for (int w = 0; w < W; ++w) fb[w] = out[w];
      touched[id] = 1;
      active.push_back(id);
      if (!observable[id]) continue;
      PatternWord diff[W];
      PatternWord any = 0;
      for (int w = 0; w < W; ++w) {
        diff[w] = (out[w] ^ g[w]) & mask.w[w];
        any |= diff[w];
      }
      if (any == 0) continue;
      for (std::uint32_t op : points_.points_of_gate(id)) {
        if (points_.is_dff_capture(op) &&
            branch_stuck[points_.dff_gate(op)]) {
          continue;
        }
        emit(op, diff);
      }
    }
    for (const Fault& f : branches) {
      const PatternWord* good_d = good.block(nl.fanin_span(f.gate)[0]);
      const PatternWord forced = f.stuck_at ? ~PatternWord{0} : 0;
      PatternWord diff[W];
      PatternWord any = 0;
      for (int w = 0; w < W; ++w) {
        diff[w] = (good_d[w] ^ forced) & mask.w[w];
        any |= diff[w];
      }
      if (any != 0) {
        emit(static_cast<std::uint32_t>(points_.point_of_dff(f.gate)), diff);
      }
    }
    for (GateId id : active) touched[id] = 0;
  }
}

FailureLog ResponseCapture::inject(std::span<const TestPattern> patterns,
                                   std::span<const Fault> faults) {
  FailureLog log;
  log.circuit = nl_->name();
  log.num_patterns = patterns.size();
  std::vector<Fault> unique_faults(faults.begin(), faults.end());
  std::sort(unique_faults.begin(), unique_faults.end(),
            [](const Fault& a, const Fault& b) {
              if (a.gate != b.gate) return a.gate < b.gate;
              if (a.pin != b.pin) return a.pin < b.pin;
              return a.stuck_at < b.stuck_at;
            });
  unique_faults.erase(std::unique(unique_faults.begin(), unique_faults.end()),
                      unique_faults.end());
  switch (words_) {
    case 1: inject_multi_impl<1>(patterns, unique_faults, log); break;
    case 2: inject_multi_impl<2>(patterns, unique_faults, log); break;
    case 4: inject_multi_impl<4>(patterns, unique_faults, log); break;
    case 8: inject_multi_impl<8>(patterns, unique_faults, log); break;
    case 16: inject_multi_impl<16>(patterns, unique_faults, log); break;
    case 32: inject_multi_impl<32>(patterns, unique_faults, log); break;
    default: SP_ASSERT(false, "invalid block width");
  }
  log.normalize();
  return log;
}

}  // namespace scanpower
