#include "diag/response.hpp"

#include <algorithm>
#include <bit>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

ObservationPoints::ObservationPoints(const Netlist& nl) {
  SP_CHECK(nl.finalized(), "ObservationPoints requires a finalized netlist");
  num_pos_ = nl.outputs().size();
  source_.reserve(num_pos_ + nl.dffs().size());
  for (GateId po : nl.outputs()) source_.push_back(po);
  dff_op_.assign(nl.num_gates(), static_cast<std::uint32_t>(-1));
  cells_ = nl.dffs();
  for (GateId dff : cells_) {
    dff_op_[dff] = static_cast<std::uint32_t>(source_.size());
    source_.push_back(nl.fanins(dff)[0]);
  }

  // CSR gate -> observation points reading its net.
  std::vector<std::uint32_t> counts(nl.num_gates() + 1, 0);
  for (GateId g : source_) counts[g + 1]++;
  op_offsets_.assign(nl.num_gates() + 1, 0);
  for (std::size_t i = 1; i < op_offsets_.size(); ++i) {
    op_offsets_[i] = op_offsets_[i - 1] + counts[i];
  }
  op_data_.resize(source_.size());
  std::vector<std::uint32_t> cursor(op_offsets_.begin(), op_offsets_.end() - 1);
  for (std::size_t op = 0; op < source_.size(); ++op) {
    op_data_[cursor[source_[op]]++] = static_cast<std::uint32_t>(op);
  }

  observable_ = observable_net_mask(nl);
}

GateId ObservationPoints::dff_gate(std::size_t op) const {
  SP_ASSERT(is_dff_capture(op), "ObservationPoints: not a capture point");
  return cells_[op - num_pos_];
}

std::string ObservationPoints::name(const Netlist& nl, std::size_t op) const {
  if (op < num_pos_) {
    return "po:" + nl.gate_name(source_[op]);
  }
  return "dff:" + nl.gate_name(cells_[op - num_pos_]) + ".D";
}

std::string ObservationPoints::record_name(const Netlist& nl,
                                           std::size_t op) const {
  if (op < num_pos_) {
    return "po:" + nl.gate_name(source_[op]);
  }
  return "ff:" + nl.gate_name(cells_[op - num_pos_]);
}

std::size_t ObservationPoints::resolve_record_name(
    const Netlist& nl, const std::string& token) const {
  std::string kind;
  std::string net;
  if (token.rfind("po:", 0) == 0) {
    kind = "po";
    net = token.substr(3);
  } else if (token.rfind("ff:", 0) == 0) {
    kind = "ff";
    net = token.substr(3);
  } else if (token.rfind("dff:", 0) == 0) {
    kind = "ff";
    net = token.substr(4);
    if (net.size() > 2 && net.compare(net.size() - 2, 2, ".D") == 0) {
      net.resize(net.size() - 2);  // accept the informational ".D" suffix
    }
  } else {
    SP_CHECK(false, "failure log: bad observation-point token \"" + token +
                        "\" (expected po:<net> or ff:<cell>)");
  }
  const GateId g = nl.find(net);
  SP_CHECK(g != kInvalidGate,
           "failure log: unknown net \"" + net + "\" in \"" + token + "\"");
  if (kind == "ff") {
    const std::size_t op = point_of_dff(g);
    SP_CHECK(op != kNone,
             "failure log: \"" + net + "\" is not a scan cell");
    return op;
  }
  for (std::uint32_t op : points_of_gate(g)) {
    if (!is_dff_capture(op) && source_[op] == g) return op;
  }
  throw Error("failure log: \"" + net + "\" is not a primary output");
}

std::span<const std::uint32_t> ObservationPoints::points_of_gate(GateId g) const {
  return {op_data_.data() + op_offsets_[g], op_offsets_[g + 1] - op_offsets_[g]};
}

std::size_t ObservationPoints::point_of_dff(GateId d) const {
  const std::uint32_t op = dff_op_[d];
  return op == static_cast<std::uint32_t>(-1) ? kNone : op;
}

ObservationConeCache::ObservationConeCache(const Netlist& nl,
                                           const ObservationPoints& points)
    : nl_(&nl), points_(&points) {
  cache_.resize(points.size());
  cached_.assign(points.size(), 0);
  mark_.assign(nl.num_gates(), 0);
}

const std::vector<GateId>& ObservationConeCache::cone(std::size_t op) {
  if (cached_[op]) return cache_[op];
  const Netlist& nl = *nl_;
  const std::span<const GateType> types = nl.types_flat();
  std::vector<GateId> out;
  std::vector<GateId> stack{points_->observed_gate(op)};
  // `mark_` is reusable scratch: every entry set here is in `out` and is
  // cleared before returning.
  mark_[stack[0]] = 1;
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    // The scan boundary cuts the cone: a DFF's Q net is a pseudo-input
    // (its own fault site), but logic behind its D pin belongs to the
    // previous capture cycle.
    if (!is_combinational(types[id])) continue;
    for (GateId fin : nl.fanin_span(id)) {
      if (!mark_[fin]) {
        mark_[fin] = 1;
        stack.push_back(fin);
      }
    }
  }
  if (points_->is_dff_capture(op)) {
    const GateId cell = points_->dff_gate(op);
    if (!mark_[cell]) {
      mark_[cell] = 1;
      out.push_back(cell);  // D-branch fault sites live on the capture cell
    }
  }
  for (GateId id : out) mark_[id] = 0;
  cache_[op] = std::move(out);
  cached_[op] = 1;
  return cache_[op];
}

std::size_t ResponseMatrix::popcount() const {
  std::size_t n = 0;
  for (PatternWord w : words) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

void FailureLog::normalize() {
  std::sort(failures.begin(), failures.end());
  failures.erase(std::unique(failures.begin(), failures.end()), failures.end());
}

ResponseMatrix FailureLog::to_matrix(std::size_t num_points) const {
  ResponseMatrix m;
  m.num_points = num_points;
  m.num_patterns = num_patterns;
  m.words.assign(num_points * m.words_per_point(), 0);
  for (const Failure& f : failures) {
    SP_CHECK(f.pattern < num_patterns && f.op < num_points,
             "FailureLog: failure outside pattern/point range");
    m.set_bit(f.op, f.pattern);
  }
  return m;
}

void save_failure_log(std::ostream& out, const FailureLog& log,
                      const Netlist* nl, const ObservationPoints* ops,
                      bool named_records) {
  SP_CHECK(!named_records || (nl != nullptr && ops != nullptr),
           "save_failure_log: named records need the netlist and points");
  out << "# scanpower failure log\n";
  if (!log.circuit.empty()) out << "circuit " << log.circuit << "\n";
  out << "patterns " << log.num_patterns << "\n";
  for (const Failure& f : log.failures) {
    out << "fail " << f.pattern << " ";
    if (named_records) {
      SP_CHECK(f.op < ops->size(),
               "save_failure_log: failure outside the observation space");
      out << ops->record_name(*nl, f.op);
    } else {
      out << f.op;
      if (nl && ops && f.op < ops->size()) out << " " << ops->name(*nl, f.op);
    }
    out << "\n";
  }
}

FailureLog load_failure_log(std::istream& in, const Netlist* nl,
                            const ObservationPoints* ops) {
  FailureLog log;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed(trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream ls(trimmed);
    std::string kw;
    ls >> kw;
    if (kw == "circuit") {
      ls >> log.circuit;
    } else if (kw == "patterns") {
      ls >> log.num_patterns;
      SP_CHECK(!ls.fail(), strprintf("failure log line %zu: bad pattern count",
                                     lineno));
    } else if (kw == "fail") {
      Failure f;
      std::string op_tok;
      ls >> f.pattern >> op_tok;
      SP_CHECK(!ls.fail() && !op_tok.empty(),
               strprintf("failure log line %zu: expected \"fail <pattern> "
                         "<op>\"", lineno));
      if (op_tok.find(':') == std::string::npos) {
        std::size_t pos = 0;
        unsigned long v = 0;
        try {
          v = std::stoul(op_tok, &pos);
        } catch (const std::exception&) {
          pos = 0;
        }
        SP_CHECK(pos != 0 && pos == op_tok.size() && v <= 0xffffffffUL,
                 strprintf("failure log line %zu: bad point index \"%s\"",
                           lineno, op_tok.c_str()));
        f.op = static_cast<std::uint32_t>(v);
      } else {
        SP_CHECK(nl != nullptr && ops != nullptr,
                 strprintf("failure log line %zu: name-based record \"%s\" "
                           "needs the netlist to resolve",
                           lineno, op_tok.c_str()));
        f.op = static_cast<std::uint32_t>(ops->resolve_record_name(*nl, op_tok));
      }
      log.failures.push_back(f);
    } else {
      SP_CHECK(false, strprintf("failure log line %zu: unknown keyword \"%s\"",
                                lineno, kw.c_str()));
    }
  }
  log.normalize();
  return log;
}

void save_failure_log_file(const std::string& path, const FailureLog& log,
                           const Netlist* nl, const ObservationPoints* ops,
                           bool named_records) {
  std::ofstream f(path);
  SP_CHECK(f.good(), "cannot write " + path);
  save_failure_log(f, log, nl, ops, named_records);
}

FailureLog load_failure_log_file(const std::string& path, const Netlist* nl,
                                 const ObservationPoints* ops) {
  std::ifstream f(path);
  SP_CHECK(f.good(), "cannot read " + path);
  return load_failure_log(f, nl, ops);
}

void GoodBlockCache::bind(const Netlist& nl,
                          std::span<const TestPattern> patterns,
                          int block_words, std::size_t max_cached_blocks) {
  SP_CHECK(is_valid_block_words(block_words),
           "GoodBlockCache: block_words must be 1, 2, 4 or 8");
  nl_ = &nl;
  patterns_ = patterns;
  words_ = block_words;
  const std::size_t lanes = this->lanes();
  nblocks_ = (patterns.size() + lanes - 1) / lanes;
  cached_ = nblocks_ <= max_cached_blocks;
  blocks_.clear();
  if (!cached_) return;
  blocks_.reserve(nblocks_);
  for (std::size_t base = 0; base < patterns.size(); base += lanes) {
    blocks_.emplace_back(nl, words_);
    load_pattern_block(nl, patterns, base, blocks_.back());
    blocks_.back().eval();
  }
}

void GoodBlockCache::reset() {
  nl_ = nullptr;
  patterns_ = {};
  words_ = 0;
  nblocks_ = 0;
  cached_ = false;
  blocks_.clear();
}

void GoodBlockCache::stream(std::size_t b, BlockSimulator& scratch) const {
  SP_ASSERT(bound() && b < nblocks_, "GoodBlockCache: block out of range");
  load_pattern_block(*nl_, patterns_, b * lanes(), scratch);
  scratch.eval();
}

ResponseCapture::ResponseCapture(const Netlist& nl, int block_words)
    : nl_(&nl), words_(block_words), points_(nl) {
  SP_CHECK(is_valid_block_words(block_words),
           "ResponseCapture: block_words must be 1, 2, 4 or 8");
  eval_.init(nl, block_words);
}

template <int W>
void ResponseCapture::capture_good_impl(std::span<const TestPattern> patterns,
                                        ResponseMatrix& out) {
  const Netlist& nl = *nl_;
  BlockSimulator good(nl, W);
  const std::size_t lanes = good.lanes();
  const std::size_t wpp = out.words_per_point();
  for (std::size_t base = 0; base < patterns.size(); base += lanes) {
    const std::size_t batch = std::min(lanes, patterns.size() - base);
    load_pattern_block(nl, patterns, base, good);
    good.eval();
    const PackedBlock<W> mask = lane_validity_mask<W>(batch);
    const std::size_t word0 = base / 64;
    const std::size_t nwords = (batch + 63) / 64;
    for (std::size_t op = 0; op < points_.size(); ++op) {
      const PatternWord* v = good.block(points_.observed_gate(op));
      PatternWord* row = out.words.data() + op * wpp + word0;
      for (std::size_t w = 0; w < nwords; ++w) {
        row[w] = v[w] & mask.w[w];
      }
    }
  }
}

ResponseMatrix ResponseCapture::capture_good(
    std::span<const TestPattern> patterns) {
  ResponseMatrix out;
  out.num_points = points_.size();
  out.num_patterns = patterns.size();
  out.words.assign(out.num_points * out.words_per_point(), 0);
  switch (words_) {
    case 1: capture_good_impl<1>(patterns, out); break;
    case 2: capture_good_impl<2>(patterns, out); break;
    case 4: capture_good_impl<4>(patterns, out); break;
    case 8: capture_good_impl<8>(patterns, out); break;
    default: SP_ASSERT(false, "invalid block width");
  }
  return out;
}

template <int W>
void ResponseCapture::inject_impl(std::span<const TestPattern> patterns,
                                  const Fault& f, FailureLog& log) {
  const Netlist& nl = *nl_;
  BlockSimulator good(nl, W);
  const std::size_t lanes = good.lanes();
  for (std::size_t base = 0; base < patterns.size(); base += lanes) {
    const std::size_t batch = std::min(lanes, patterns.size() - base);
    load_pattern_block(nl, patterns, base, good);
    good.eval();
    const PackedBlock<W> mask = lane_validity_mask<W>(batch);
    // Only a D-branch fault sinks the DFF gate id *as a capture branch*;
    // a stem fault on a DFF's Q net sinks the same gate id but means the
    // Q net, read by whatever observation points consume it.
    const bool d_branch = f.pin >= 0 && nl.type(f.gate) == GateType::Dff;
    eval_.propagate<W>(
        good, f, mask, points_.observable(),
        [&](GateId gate, const PatternWord* diff) {
          const auto emit = [&](std::uint32_t op) {
            for (int w = 0; w < W; ++w) {
              PatternWord d = diff[w];
              while (d != 0) {
                const int lane = std::countr_zero(d);
                d &= d - 1;
                log.failures.push_back(
                    {static_cast<std::uint32_t>(base +
                                                static_cast<std::size_t>(w) * 64 +
                                                static_cast<std::size_t>(lane)),
                     op});
              }
            }
          };
          if (d_branch && gate == f.gate) {
            emit(static_cast<std::uint32_t>(points_.point_of_dff(gate)));
          } else {
            for (std::uint32_t op : points_.points_of_gate(gate)) emit(op);
          }
        });
  }
}

FailureLog ResponseCapture::inject(std::span<const TestPattern> patterns,
                                   const Fault& f) {
  FailureLog log;
  log.circuit = nl_->name();
  log.num_patterns = patterns.size();
  switch (words_) {
    case 1: inject_impl<1>(patterns, f, log); break;
    case 2: inject_impl<2>(patterns, f, log); break;
    case 4: inject_impl<4>(patterns, f, log); break;
    case 8: inject_impl<8>(patterns, f, log); break;
    default: SP_ASSERT(false, "invalid block width");
  }
  log.normalize();
  return log;
}

}  // namespace scanpower
