#pragma once
// Observable-point responses and failing-pattern logs for simulation-based
// stuck-at diagnosis.
//
// The full-scan response of one pattern is the vector of values at the
// observation points: every primary output plus every scan-cell capture
// (the DFF D pin). ObservationPoints fixes an index space over those
// points; ResponseMatrix stores per-point responses packed one bit lane
// per pattern (the same 64-lane layout the simulation engine uses), so a
// signature comparison is a word-wise XOR/popcount.
//
// A tester only reports *failing* (pattern, observation point) pairs --
// the failure log. ResponseCapture produces such logs synthetically by
// injecting a stuck-at fault into the packed faulty machine, which is how
// the diagnosis tests and the CLI's --inject mode model a defective chip.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/packed_sim.hpp"
#include "atpg/pattern.hpp"
#include "netlist/netlist.hpp"
#include "util/telemetry.hpp"

namespace scanpower {

/// Index space over the observable points of the full-scan response: one
/// point per primary output (in Netlist::outputs() order) followed by one
/// per scan-cell capture (in Netlist::dffs() order).
class ObservationPoints {
 public:
  explicit ObservationPoints(const Netlist& nl);

  std::size_t size() const { return source_.size(); }
  std::size_t num_pos() const { return num_pos_; }
  bool is_dff_capture(std::size_t op) const { return op >= num_pos_; }

  /// The gate whose simulated value is observed at `op` (the PO gate
  /// itself, or the D-pin driver of the DFF).
  GateId observed_gate(std::size_t op) const { return source_[op]; }

  /// The scan cell of a capture point (asserts is_dff_capture).
  GateId dff_gate(std::size_t op) const;

  /// "po:<net>" or "dff:<cell>.D" -- stable across runs, used in logs.
  std::string name(const Netlist& nl, std::size_t op) const;

  /// Name-based record token: "po:<net>" for a primary-output point,
  /// "ff:<cell>" for a scan-cell capture point. Unlike raw indices these
  /// survive netlist re-finalization and gate-id renumbering.
  std::string record_name(const Netlist& nl, std::size_t op) const;

  /// Resolves a record token ("po:<net>", "ff:<cell>"; "dff:<cell>" and
  /// "dff:<cell>.D" accepted as aliases) to its point index. Throws Error
  /// for unknown nets or tokens that name no observation point.
  std::size_t resolve_record_name(const Netlist& nl,
                                  const std::string& token) const;

  /// Observation points reading gate `g`'s net: its PO point (if marked
  /// an output) plus one capture point per DFF D pin it drives.
  std::span<const std::uint32_t> points_of_gate(GateId g) const;

  /// Capture point of DFF gate `d`; kNone if `d` is not a DFF.
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t point_of_dff(GateId d) const;

  /// Byte mask over gates: 1 iff some observation point reads the gate's
  /// net (identical to observable_net_mask()).
  std::span<const std::uint8_t> observable() const { return observable_; }

 private:
  std::size_t num_pos_ = 0;
  std::vector<GateId> source_;             ///< per op: observed gate
  std::vector<GateId> cells_;              ///< capture points' DFFs, op order
  std::vector<std::uint32_t> op_offsets_;  ///< CSR: gate -> op list
  std::vector<std::uint32_t> op_data_;
  std::vector<std::uint32_t> dff_op_;      ///< gate -> capture op or -1
  std::vector<std::uint8_t> observable_;
};

/// Lazily built fanin cones of observation points: the gates a fault
/// effect can pass through on the way to point `op` -- the transitive
/// fanin of the observed gate (sources included, cut at the scan
/// boundary: logic behind a DFF's D pin belongs to the previous capture
/// cycle) plus, for capture points, the scan cell itself (D-branch fault
/// sites live there). Shared by full-response and compacted-signature
/// diagnosis, so the two engines cannot disagree about reachability.
class ObservationConeCache {
 public:
  ObservationConeCache(const Netlist& nl, const ObservationPoints& points);

  const std::vector<GateId>& cone(std::size_t op);

  /// Pre-builds every cone. Lazy misses share the DFS scratch and flip the
  /// non-atomic cached_ bytes, so they are serial-only; after build_all()
  /// returns no miss can ever happen again and cone() is safe from any
  /// number of threads at once (reads plus relaxed hit tallies).
  /// DesignContext publishes fully built caches through this, extending
  /// the determinism contract to concurrent tenants.
  void build_all();

  /// Lifetime hit/miss tallies. Relaxed atomics: the batch fan-out reads
  /// already-cached cones from several workers at once (misses only ever
  /// happen on the serial path).
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  const Netlist* nl_;
  const ObservationPoints* points_;
  std::vector<std::vector<GateId>> cache_;
  std::vector<std::uint8_t> cached_;
  std::vector<std::uint8_t> mark_;  ///< DFS scratch, all-zero between calls
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Simulated good-machine pattern blocks, shared across diagnose() calls.
/// Binding simulates every 64*block_words-pattern block of the bound set
/// and keeps the results while the block count stays under the cache cap
/// (one BlockSimulator per block: num_gates * W * 8 bytes of values);
/// past the cap only the geometry is kept and callers replay blocks
/// through their own streaming simulator via stream(). Both diagnosers
/// score candidates out of this cache, and a ScanSession keeps one
/// instance bound across calls so repeated diagnoses of one (netlist,
/// pattern set) pair never re-simulate the good machine.
class GoodBlockCache {
 public:
  static constexpr std::size_t kDefaultMaxCachedBlocks = 256;

  GoodBlockCache() = default;

  /// (Re)binds to (nl, patterns, block_words). `patterns` must be fully
  /// specified and must outlive the binding (the owner keeps the storage
  /// alive; bound_to() identifies a binding by that storage). `backend`
  /// selects the kernel backend for the cached good machines; the values
  /// are bit-identical across backends, so it is not part of the binding
  /// identity.
  void bind(const Netlist& nl, std::span<const TestPattern> patterns,
            int block_words,
            std::size_t max_cached_blocks = kDefaultMaxCachedBlocks,
            SimBackend backend = SimBackend::Auto);
  void reset();

  bool bound() const { return nl_ != nullptr; }
  /// True iff bound to exactly this pattern storage and width.
  bool bound_to(std::span<const TestPattern> patterns, int block_words) const {
    return bound() && patterns_.data() == patterns.data() &&
           patterns_.size() == patterns.size() && words_ == block_words;
  }

  int block_words() const { return words_; }
  std::size_t lanes() const { return static_cast<std::size_t>(words_) * 64; }
  std::size_t num_blocks() const { return nblocks_; }
  std::span<const TestPattern> patterns() const { return patterns_; }

  /// True when every block is materialized (block count under the cap).
  bool cached() const { return cached_; }
  /// Cached good machine of block `b` (cached() only).
  const BlockSimulator& block(std::size_t b) const {
    if constexpr (kTelemetryEnabled) {
      cached_reads_.fetch_add(1, std::memory_order_relaxed);
    }
    return blocks_[b];
  }
  /// Replays block `b` into `scratch` (load + eval); the values equal the
  /// cached ones, so cached and streaming scoring are bit-identical.
  void stream(std::size_t b, BlockSimulator& scratch) const;

  /// Lifetime telemetry tallies (relaxed atomics where batch workers read
  /// concurrently; all-zero when telemetry is compiled out).
  std::uint64_t binds() const { return binds_; }
  std::uint64_t built_blocks() const { return built_blocks_; }
  std::uint64_t build_us() const { return build_us_; }
  std::uint64_t cached_reads() const {
    return cached_reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t streamed_reads() const {
    return streamed_reads_.load(std::memory_order_relaxed);
  }
  std::size_t blocks_cached() const { return blocks_.size(); }

 private:
  const Netlist* nl_ = nullptr;
  std::span<const TestPattern> patterns_;
  int words_ = 0;
  std::size_t nblocks_ = 0;
  bool cached_ = false;
  std::vector<BlockSimulator> blocks_;
  std::uint64_t binds_ = 0;         ///< serial (bind callers)
  std::uint64_t built_blocks_ = 0;  ///< serial (bind callers)
  std::uint64_t build_us_ = 0;      ///< serial (bind callers)
  mutable std::atomic<std::uint64_t> cached_reads_{0};
  mutable std::atomic<std::uint64_t> streamed_reads_{0};
};

/// Packed per-point response signatures: row `op` holds one bit per
/// pattern (bit lane i of word w = pattern 64*w + i).
struct ResponseMatrix {
  std::size_t num_points = 0;
  std::size_t num_patterns = 0;
  std::vector<PatternWord> words;  ///< num_points * words_per_point

  std::size_t words_per_point() const { return (num_patterns + 63) / 64; }
  PatternWord* row(std::size_t op) { return words.data() + op * words_per_point(); }
  const PatternWord* row(std::size_t op) const {
    return words.data() + op * words_per_point();
  }
  bool bit(std::size_t op, std::size_t pattern) const {
    return (row(op)[pattern / 64] >> (pattern % 64)) & 1;
  }
  void set_bit(std::size_t op, std::size_t pattern) {
    row(op)[pattern / 64] |= PatternWord{1} << (pattern % 64);
  }
  /// Total set bits (e.g. number of failures in an observed-failure mask).
  std::size_t popcount() const;
};

/// One tester-reported failure: pattern index x observation point index.
struct Failure {
  std::uint32_t pattern = 0;
  std::uint32_t op = 0;

  friend auto operator<=>(const Failure&, const Failure&) = default;
};

/// A failing-pattern log, as a tester (or synthetic injection) reports it.
struct FailureLog {
  std::string circuit;
  std::size_t num_patterns = 0;  ///< patterns applied (context for passes)
  std::vector<Failure> failures; ///< sorted by (pattern, op), duplicate-free

  void normalize();  ///< sort + dedupe
  /// Failure bits as a packed mask over `num_points` observation points.
  ResponseMatrix to_matrix(std::size_t num_points) const;
};

/// Plain-text failure-log format:
///   # comments
///   circuit <name>
///   patterns <n>
///   fail <pattern> <op_index> [op_name]     (index-based record)
///   fail <pattern> po:<net>                 (name-based record)
///   fail <pattern> ff:<cell>                (name-based record)
///   end <record_count>
/// Index records carry an informational op name that load ignores.
/// Name-based records survive netlist re-finalization; loading them
/// requires the netlist/observation-point context (records are resolved
/// through ObservationPoints::resolve_record_name). Loading a log that
/// contains name-based records without that context throws Error.
///
/// load validates strictly and throws with the offending line number:
/// duplicate or missing headers, fail records before the patterns header,
/// out-of-range pattern indices, out-of-range point indices (when the
/// observation-point context is given), duplicate failure records,
/// non-numeric or trailing garbage tokens, records after the end marker,
/// an end-marker count that disagrees with the records seen, and a
/// missing end marker (a truncated file).
void save_failure_log(std::ostream& out, const FailureLog& log,
                      const Netlist* nl = nullptr,
                      const ObservationPoints* ops = nullptr,
                      bool named_records = false);
FailureLog load_failure_log(std::istream& in, const Netlist* nl = nullptr,
                            const ObservationPoints* ops = nullptr);
void save_failure_log_file(const std::string& path, const FailureLog& log,
                           const Netlist* nl = nullptr,
                           const ObservationPoints* ops = nullptr,
                           bool named_records = false);
FailureLog load_failure_log_file(const std::string& path,
                                 const Netlist* nl = nullptr,
                                 const ObservationPoints* ops = nullptr);

/// Captures packed observable-point responses from the block simulator.
class ResponseCapture {
 public:
  explicit ResponseCapture(const Netlist& nl, int block_words = 4,
                           SimBackend backend = SimBackend::Auto);

  const ObservationPoints& points() const { return points_; }
  int block_words() const { return words_; }

  /// Good-machine signatures of `patterns` (must be fully specified).
  ResponseMatrix capture_good(std::span<const TestPattern> patterns);

  /// Synthetic device-under-diagnosis: the failure log a tester would
  /// record for a chip carrying exactly fault `f` under `patterns`.
  FailureLog inject(std::span<const TestPattern> patterns, const Fault& f);

  /// Multi-fault device-under-diagnosis: the failure log of a chip
  /// carrying every fault in `faults` simultaneously. This is an exact
  /// k-fault simulation over the merged fanout cones -- one fault masking
  /// or reinforcing another is modelled, unlike a superposition of
  /// single-fault logs. Duplicate faults are ignored; two distinct
  /// forcings of one site (or one capture branch) throw, since the
  /// defective machine they describe is contradictory.
  FailureLog inject(std::span<const TestPattern> patterns,
                    std::span<const Fault> faults);

 private:
  template <int W>
  void capture_good_impl(std::span<const TestPattern> patterns,
                         ResponseMatrix& out);
  template <int W>
  void inject_impl(std::span<const TestPattern> patterns, const Fault& f,
                   FailureLog& log);
  template <int W>
  void inject_multi_impl(std::span<const TestPattern> patterns,
                         std::span<const Fault> faults, FailureLog& log);

  const Netlist* nl_;
  int words_;
  SimBackend backend_ = SimBackend::Auto;
  ObservationPoints points_;
  FaultConeEvaluator eval_;
};

}  // namespace scanpower
