#include "net/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/work_queue.hpp"
#include "util/strings.hpp"

namespace scanpower::net {

DiagClient::DiagClient(const std::string& host, std::uint16_t port,
                       Options opts)
    : opts_(opts),
      conn_(Connection::connect(host, port, opts.connect_timeout_ms)),
      reader_(opts.max_line),
      rng_(opts.seed) {
  conn_.set_read_timeout(opts_.io_timeout_ms);
  conn_.set_write_timeout(opts_.io_timeout_ms);
}

DiagClient::DiagClient(const std::string& host, std::uint16_t port)
    : DiagClient(host, port, Options()) {}

void DiagClient::send_line(std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  conn_.write_all(framed);
}

std::string DiagClient::read_line() {
  char buf[4096];
  for (;;) {
    if (std::optional<std::string> line = reader_.next(); line.has_value()) {
      return std::move(*line);
    }
    const std::size_t n = conn_.read_some(buf, sizeof(buf));
    if (n == 0) {
      throw ClosedError("DiagClient: server closed the connection "
                        "mid-response");
    }
    reader_.feed(std::string_view(buf, n));
  }
}

std::string DiagClient::roundtrip(std::string_view command) {
  send_line(command);
  return read_line();
}

std::string DiagClient::request(std::string_view command) {
  std::uint64_t delay_ms = opts_.backoff_base_ms;
  for (int attempt = 0;; ++attempt) {
    std::string resp = roundtrip(command);
    const std::optional<std::string> err = json_string_field(resp, "error");
    if (!err.has_value() || *err != "overloaded") {
      if (json_string_field(resp, "ok") == std::optional<std::string>("queued")) {
        ++queued_;
      }
      return resp;
    }
    const std::uint64_t hint =
        json_u64_field(resp, "retry_after_ms").value_or(0);
    if (attempt >= opts_.max_retries) {
      throw OverloadError(std::max(hint, delay_ms));
    }
    ++retries_;
    // Exponential backoff from max(server hint, ramp), jittered over
    // [delay/2, delay] so synchronized clients spread out.
    delay_ms = std::min(opts_.backoff_max_ms, std::max(hint, delay_ms));
    const std::uint64_t jittered =
        delay_ms / 2 + rng_.next_below(delay_ms / 2 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
    delay_ms = std::min(opts_.backoff_max_ms, delay_ms * 2);
  }
}

std::string DiagClient::design(const std::string& path, bool nomap) {
  return request(strprintf("design %s%s", path.c_str(),
                           nomap ? " nomap" : ""));
}

std::string DiagClient::patterns(std::size_t n, std::uint64_t seed) {
  return request(strprintf("patterns %zu %llu", n,
                           static_cast<unsigned long long>(seed)));
}

std::vector<std::string> DiagClient::flush() {
  send_line("flush");
  std::vector<std::string> results;
  for (;;) {
    std::string line = read_line();
    if (json_string_field(line, "ok") == std::optional<std::string>("flush")) {
      const std::uint64_t n = json_u64_field(line, "results").value_or(0);
      SP_CHECK(n == results.size(),
               strprintf("DiagClient::flush: terminator reports %llu results, "
                         "received %zu",
                         static_cast<unsigned long long>(n), results.size()));
      break;
    }
    results.push_back(std::move(line));
  }
  queued_ = 0;
  return results;
}

std::vector<std::string> DiagClient::quit() {
  send_line("quit");
  std::vector<std::string> results;
  for (;;) {
    std::string line = read_line();
    if (json_string_field(line, "ok") == std::optional<std::string>("quit")) {
      break;
    }
    if (json_string_field(line, "ok") == std::optional<std::string>("flush")) {
      continue;  // the embedded flush terminator
    }
    results.push_back(std::move(line));
  }
  queued_ = 0;
  conn_.shutdown_both();
  return results;
}

}  // namespace scanpower::net
