#pragma once
// DiagClient: a small blocking client for the TCP diagnosis service.
//
// Speaks the wire mode of the CommandSession grammar: one command line
// out, one JSON response line back (flush is the exception: K result
// lines then the {"ok":"flush","results":K} terminator). The client
// adds the two behaviors a production tester front end needs and the
// raw protocol does not give:
//
//   - timeouts on connect and on every request/response round trip;
//   - jittered exponential backoff on {"error":"overloaded",...}: the
//     command is re-sent after max(server retry_after_ms, base) doubled
//     per attempt (capped), jittered uniformly over [1/2, 1] of the
//     delay by a seeded Rng so colliding clients deterministically
//     de-synchronize, until Options::max_retries is exhausted (then
//     OverloadError propagates to the caller).
//
// Any non-overload {"error":...} response is returned to the caller as
// the response line, NOT thrown -- the server uses error frames for
// per-command rejects (bad path, unknown command) that a driver may
// want to inspect, and tests assert on them directly.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/framing.hpp"
#include "net/socket.hpp"
#include "util/rng.hpp"

namespace scanpower::net {

class DiagClient {
 public:
  struct Options {
    int connect_timeout_ms = 5'000;
    /// Per read/write deadline inside one request (a diagnosis can take
    /// a while once flush blocks on the dispatcher).
    int io_timeout_ms = 60'000;
    /// Overload retries before giving up (OverloadError propagates).
    int max_retries = 12;
    std::uint64_t backoff_base_ms = 5;
    std::uint64_t backoff_max_ms = 1'000;
    /// Jitter seed; give concurrent clients distinct seeds.
    std::uint64_t seed = 0x5eed;
    std::size_t max_line = LineReader::kDefaultMaxLine;
  };

  /// Connects immediately; throws TimeoutError / NetError on failure.
  DiagClient(const std::string& host, std::uint16_t port, Options opts);
  DiagClient(const std::string& host, std::uint16_t port);

  /// Sends one command line and returns its single response line,
  /// retrying with backoff while the server answers overloaded. Counts
  /// a successfully queued evidence command toward queued().
  std::string request(std::string_view command);

  // Typed conveniences over request().
  std::string design(const std::string& path, bool nomap = false);
  std::string patterns(std::size_t n, std::uint64_t seed);
  /// `log` / `signature-log` / `inject` / `inject-index` lines.
  std::string submit(const std::string& command) { return request(command); }

  /// Flushes: returns the result lines (one JSON object per submitted
  /// log, in submission order); the flush terminator is consumed and
  /// validated, not returned.
  std::vector<std::string> flush();

  /// quit: flushes server-side, returns the pending result lines, and
  /// half-closes the connection.
  std::vector<std::string> quit();

  /// Evidence commands acknowledged since the last flush().
  std::size_t queued() const { return queued_; }

  /// Overload rejects absorbed by backoff so far (observability for
  /// tests and the saturation bench).
  std::uint64_t overload_retries() const { return retries_; }

 private:
  std::string read_line();
  void send_line(std::string_view line);
  std::string roundtrip(std::string_view command);

  Options opts_;
  Connection conn_;
  LineReader reader_;
  Rng rng_;
  std::size_t queued_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace scanpower::net
