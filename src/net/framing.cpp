#include "net/framing.hpp"

#include <sstream>
#include <utility>

#include "diag/diagnose.hpp"
#include "util/json.hpp"

namespace scanpower::net {

// ---------- LineReader -------------------------------------------------------

void LineReader::feed(std::string_view bytes) {
  for (char c : bytes) {
    if (discarding_) {
      if (c == '\n') discarding_ = false;
      continue;
    }
    if (c == '\n') {
      ready_.push_back(std::move(partial_));
      partial_.clear();
      continue;
    }
    partial_.push_back(c);
    if (partial_.size() > max_line_) {
      // The line is already over budget: queue the typed reject in
      // stream order and skip the rest of the line's bytes.
      ready_.push_back(std::nullopt);
      partial_.clear();
      discarding_ = true;
    }
  }
}

std::optional<std::string> LineReader::next() {
  if (ready_.empty()) return std::nullopt;
  std::optional<std::string> line = std::move(ready_.front());
  ready_.pop_front();
  ++lines_out_;
  if (!line.has_value()) throw LineTooLongError(lines_out_, max_line_);
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return line;
}

std::string LineReader::take_partial() {
  std::string out = std::move(partial_);
  partial_.clear();
  return out;
}

// ---------- response serialization ------------------------------------------

std::string result_json(const DiagnosisResult& res, const Netlist& nl,
                        const std::string& circuit, const std::string& source,
                        std::size_t num_patterns, std::size_t top) {
  std::ostringstream os;
  JsonWriter j(os, /*indent=*/0);  // compact: one object per line
  j.begin_object();
  j.field("circuit", circuit);
  j.field("source", source);
  j.field("num_patterns", static_cast<std::uint64_t>(num_patterns));
  j.field("num_faults", static_cast<std::uint64_t>(res.num_faults));
  j.field("num_candidates", static_cast<std::uint64_t>(res.num_candidates));
  j.field("num_failing_patterns",
          static_cast<std::uint64_t>(res.num_failing_patterns));
  j.field("union_fallback", res.union_fallback);
  j.begin_array("ranked");
  for (std::size_t i = 0; i < res.ranked.size() && i < top; ++i) {
    const CandidateScore& sc = res.ranked[i];
    j.begin_object();
    j.field("fault", sc.fault.to_string(nl));
    j.field("tfsf", sc.tfsf);
    j.field("tfsp", sc.tfsp);
    j.field("tpsf", sc.tpsf);
    j.field("exact", sc.exact());
    j.end_object();
  }
  j.end_array();
  j.end_object();
  return os.str();
}

std::string error_json(std::string_view msg, std::uint64_t line_no) {
  std::ostringstream os;
  JsonWriter j(os, /*indent=*/0);
  j.begin_object();
  j.field("error", msg);
  if (line_no != 0) j.field("line", static_cast<std::uint64_t>(line_no));
  j.end_object();
  return os.str();
}

std::string overloaded_json(std::uint64_t retry_after_ms) {
  std::ostringstream os;
  JsonWriter j(os, /*indent=*/0);
  j.begin_object();
  j.field("error", "overloaded");
  j.field("retry_after_ms", retry_after_ms);
  j.end_object();
  return os.str();
}

// ---------- minimal JSON field extraction -----------------------------------

namespace {

/// Position right after `"key":`, or npos.
std::size_t find_value(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = line.find(needle);
  return at == std::string_view::npos ? at : at + needle.size();
}

}  // namespace

std::optional<std::string> json_string_field(std::string_view line,
                                             std::string_view key) {
  std::size_t i = find_value(line, key);
  if (i == std::string_view::npos || i >= line.size() || line[i] != '"') {
    return std::nullopt;
  }
  ++i;
  std::string out;
  while (i < line.size() && line[i] != '"') {
    char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      const char e = line[++i];
      c = e == 'n' ? '\n' : e == 't' ? '\t' : e == 'r' ? '\r' : e;
    }
    out.push_back(c);
    ++i;
  }
  if (i >= line.size()) return std::nullopt;  // unterminated string
  return out;
}

std::optional<std::uint64_t> json_u64_field(std::string_view line,
                                            std::string_view key) {
  std::size_t i = find_value(line, key);
  if (i == std::string_view::npos || i >= line.size() ||
      line[i] < '0' || line[i] > '9') {
    return std::nullopt;
  }
  std::uint64_t v = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  return v;
}

}  // namespace scanpower::net
