#pragma once
// Newline-delimited wire framing for the diagnosis service, shared by
// the stdin and TCP front ends (and by the client, which reads the same
// frames back).
//
// Requests are the diag_server command grammar, one command per line;
// responses are compact JSON, one object per line. The reader is
// byte-stream driven: feed() takes whatever the transport produced
// (split or coalesced TCP segments, a whole stdin line, garbage) and
// next() hands back complete lines in order, so partial reads and
// packet boundaries never reach the protocol layer. Hardening:
//
//   - bounded line buffer: a line longer than max_line raises
//     LineTooLongError once (with the 1-based line number, matching the
//     PR 6 loader style), and the rest of the oversized line is
//     discarded up to its newline -- the stream stays usable;
//   - abrupt disconnects: a trailing unterminated fragment at EOF is
//     reported (take_partial) but never parsed as a command;
//   - CR/LF tolerance: a trailing '\r' is stripped, so telnet-style
//     clients work.
//
// Response serialization lives here too (result_json / error_json /
// overloaded_json and the JSON field extractors the client uses), so a
// byte of diagnosis output is produced by exactly one function no
// matter which transport carried the request -- that is what makes the
// "TCP responses byte-identical to in-process diagnose()" acceptance
// testable at the string level.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "util/assert.hpp"

namespace scanpower {
struct DiagnosisResult;
class Netlist;
}  // namespace scanpower

namespace scanpower::net {

/// A request line exceeded the reader's bound. Carries the 1-based line
/// number and the limit; the offending line is discarded, the stream
/// survives.
class LineTooLongError : public Error {
 public:
  LineTooLongError(std::uint64_t line_no, std::size_t limit)
      : Error("request line " + std::to_string(line_no) +
              ": line exceeds " + std::to_string(limit) + " bytes"),
        line_no_(line_no),
        limit_(limit) {}
  std::uint64_t line_no() const { return line_no_; }
  std::size_t limit() const { return limit_; }

 private:
  std::uint64_t line_no_;
  std::size_t limit_;
};

/// Incremental newline splitter with a bounded buffer.
class LineReader {
 public:
  static constexpr std::size_t kDefaultMaxLine = 64 * 1024;

  explicit LineReader(std::size_t max_line = kDefaultMaxLine)
      : max_line_(max_line) {
    SP_CHECK(max_line_ >= 1, "LineReader: max_line must be >= 1");
  }

  /// Appends raw transport bytes. Never throws; oversized detection is
  /// reported by next() so errors come out in stream order.
  void feed(std::string_view bytes);

  /// The next complete line (terminator stripped), or nullopt when more
  /// bytes are needed. Throws LineTooLongError exactly once per
  /// oversized line, after which the stream continues at the following
  /// line.
  std::optional<std::string> next();

  /// 1-based number of the line next() will produce next -- the number
  /// error responses should carry.
  std::uint64_t line_no() const { return lines_out_ + 1; }

  /// The unterminated trailing fragment (abrupt disconnect); empty when
  /// the stream ended cleanly. Clears the buffer.
  std::string take_partial();

 private:
  std::size_t max_line_;
  /// Completed lines in arrival order; nullopt marks an oversized line
  /// (next() converts it into the typed throw at the right position).
  std::deque<std::optional<std::string>> ready_;
  std::string partial_;          ///< bytes of the still-unterminated line
  std::uint64_t lines_out_ = 0;  ///< lines (and rejects) handed out
  bool discarding_ = false;      ///< inside an oversized line's tail
};

// ---------- response serialization ------------------------------------------

/// Compact single-line JSON for one diagnosis result: circuit/source
/// metadata, counters and the top-`top` ranked candidates. No trailing
/// newline. Shared by every transport -- byte-identical output by
/// construction.
std::string result_json(const DiagnosisResult& res, const Netlist& nl,
                        const std::string& circuit, const std::string& source,
                        std::size_t num_patterns, std::size_t top);

/// {"error":<msg>} plus the offending 1-based request line when nonzero.
std::string error_json(std::string_view msg, std::uint64_t line_no = 0);

/// The admission-control reject frame:
/// {"error":"overloaded","retry_after_ms":N}.
std::string overloaded_json(std::uint64_t retry_after_ms);

// ---------- minimal JSON field extraction -----------------------------------
// The client only inspects flat string/integer fields of single-line
// response objects; a full parser would be dead weight next to the
// writer-only util/json.hpp.

/// The string value of `"key":"..."` (unescaped for \" \\ \/ \n \t \r),
/// or nullopt when absent.
std::optional<std::string> json_string_field(std::string_view line,
                                             std::string_view key);
/// The unsigned integer value of `"key":N`, or nullopt when absent.
std::optional<std::uint64_t> json_u64_field(std::string_view line,
                                            std::string_view key);

}  // namespace scanpower::net
