#include "net/server.hpp"

#include <sstream>
#include <utility>

#include "atpg/fault.hpp"
#include "atpg/pattern.hpp"
#include "compact/signature_log.hpp"
#include "diag/response.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/verilog_io.hpp"
#include "techmap/techmap.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace scanpower::net {

namespace {

bool is_verilog_path(const std::string& path) {
  return path.size() > 2 && path.rfind(".v") == path.size() - 2;
}

/// Extension-dispatched design load (same convention as the CLIs), with
/// parse failures as typed errors instead of process exits.
Netlist load_design(const std::string& path, bool do_map) {
  Netlist nl = is_verilog_path(path) ? parse_verilog_file(path)
                                     : parse_bench_file(path);
  if (do_map && !is_mapped(nl)) nl = map_to_nand_nor_inv(nl);
  return nl;
}

/// The per-log failure frame of the flush stream: the result's metadata
/// with an "error" field instead of counters and rankings.
std::string pending_error_json(const std::string& circuit,
                               const std::string& source,
                               std::string_view msg) {
  std::ostringstream os;
  JsonWriter j(os, /*indent=*/0);
  j.begin_object();
  j.field("circuit", circuit);
  j.field("source", source);
  j.field("error", msg);
  j.end_object();
  return os.str();
}

}  // namespace

// ---------- CommandSession ---------------------------------------------------

CommandSession::CommandSession(DiagnosisQueue& queue, Telemetry* telemetry,
                               ServiceOptions opts, Sink out, Sink err)
    : queue_(queue),
      telemetry_(telemetry),
      opts_(std::move(opts)),
      out_(std::move(out)),
      err_(std::move(err)) {
  SP_CHECK(out_ != nullptr, "CommandSession: out sink is required");
}

CommandSession::~CommandSession() = default;

void CommandSession::error(std::string_view msg, std::uint64_t line_no) {
  if (opts_.wire_mode) {
    out_(error_json(msg, line_no));
  } else if (err_) {
    err_(msg);
  }
}

void CommandSession::ok(std::string_view what,
                        const std::function<void(JsonWriter&)>& extra) {
  if (!opts_.wire_mode) return;  // stdin mode: control commands are silent
  std::ostringstream os;
  JsonWriter j(os, /*indent=*/0);
  j.begin_object();
  j.field("ok", what);
  if (extra) extra(j);
  j.end_object();
  out_(os.str());
}

void CommandSession::cmd_design(std::istream& in, std::uint64_t line_no) {
  std::string path, opt;
  if (!(in >> path)) {
    error("design needs a file path", line_no);
    return;
  }
  in >> opt;
  loaded_ = std::make_unique<Netlist>(
      load_design(path, /*do_map=*/opt != "nomap"));
  const std::string name = loaded_->name();
  auto it = designs_.find(name);
  if (it != designs_.end()) {
    current_ = &it->second;  // already registered: just switch
    loaded_.reset();
  } else {
    current_ = nullptr;  // registered by the next 'patterns'
  }
  ok("design", [&](JsonWriter& j) { j.field("circuit", name); });
}

void CommandSession::cmd_patterns(std::istream& in, std::uint64_t line_no) {
  std::size_t n = 0;
  std::uint64_t seed = 0xd1a6ULL;
  if (!(in >> n) || n == 0) {
    error("patterns needs a count >= 1", line_no);
    return;
  }
  in >> seed;
  const Netlist* nl = loaded_   ? loaded_.get()
                      : current_ ? &current_->ctx->netlist()
                                 : nullptr;
  if (!nl) {
    error("no design loaded (use: design <path>)", line_no);
    return;
  }
  Rng rng(seed);
  std::vector<TestPattern> patterns;
  patterns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    patterns.push_back(random_pattern(*nl, rng));
  }
  // Rebinding different patterns needs the design idle. The single-
  // client stdin mode can safely force that by draining the queue; a
  // shared TCP server must not stall every other connection, so there
  // open() itself decides: identical patterns are a lock-free no-op,
  // different patterns require this design idle (flush first).
  if (!opts_.wire_mode) queue_.drain();
  const auto key = queue_.open(*nl, opts_.flow, patterns);
  Design& d = designs_[nl->name()];
  d.key = key;
  if (!d.ctx) {
    d.ctx = queue_.contexts().acquire(*nl, opts_.flow);
    d.front = std::make_unique<ScanSession>(d.ctx, opts_.flow);
  }
  d.front->bind_patterns(patterns);
  d.num_patterns = n;
  current_ = &d;
  loaded_.reset();
  ok("patterns", [&](JsonWriter& j) {
    j.field("circuit", d.ctx->netlist().name());
    j.field("num_patterns", static_cast<std::uint64_t>(n));
  });
}

void CommandSession::cmd_evidence(const std::string& cmd, std::istream& in,
                                  std::uint64_t line_no) {
  if (!current_) {
    error("no design registered (use: design <path>, then patterns <n>)",
          line_no);
    return;
  }
  std::string arg;
  if (!(in >> arg)) {
    error(cmd + " needs an argument", line_no);
    return;
  }
  Evidence ev;
  if (cmd == "log") {
    ev = load_failure_log_file(arg, &current_->ctx->netlist(),
                               &current_->ctx->points());
  } else if (cmd == "signature-log") {
    ev = load_signature_log_file(arg);
  } else {
    const Fault f =
        cmd == "inject"
            ? parse_fault(current_->ctx->netlist(), arg)
            : current_->ctx->faults().at(
                  static_cast<std::size_t>(std::stol(arg)));
    ev = current_->front->inject(f);
  }
  Pending p;
  p.circuit = current_->ctx->netlist().name();
  p.source = cmd + " " + arg;
  p.num_patterns = current_->num_patterns;
  p.ctx = current_->ctx;
  try {
    p.result = queue_.submit(current_->key, std::move(ev));
  } catch (const OverloadError& e) {
    // The admission-control reject: the client backs off and resends.
    if (opts_.wire_mode) {
      out_(overloaded_json(e.retry_after_ms()));
    } else if (err_) {
      err_(e.what());
    }
    return;
  }
  pending_.push_back(std::move(p));
  ok("queued", [&](JsonWriter& j) {
    j.field("pending", static_cast<std::uint64_t>(pending_.size()));
  });
}

void CommandSession::cmd_stats() {
  if (telemetry_ == nullptr) {
    error("stats: no telemetry attached");
    return;
  }
  const MetricsSnapshot snap = telemetry_->metrics.snapshot();
  if (!opts_.wire_mode) {
    std::ostringstream os;
    snap.write_text(os);
    std::string text = os.str();
    if (!text.empty() && text.back() == '\n') text.pop_back();
    out_(text);  // the sink appends the final newline
    return;
  }
  std::ostringstream os;
  JsonWriter j(os, /*indent=*/0);
  j.begin_object();
  j.field("ok", "stats");
  snap.write_json(j);
  j.end_object();
  out_(os.str());
}

void CommandSession::write_pending(Pending& p) {
  DiagnosisResult res;
  try {
    res = p.result.get();
  } catch (const std::exception& e) {
    out_(pending_error_json(p.circuit, p.source, e.what()));
    return;
  }
  out_(result_json(res, p.ctx->netlist(), p.circuit, p.source,
                   p.num_patterns, opts_.top));
}

void CommandSession::flush() {
  for (Pending& p : pending_) write_pending(p);
  const std::size_t n = pending_.size();
  pending_.clear();
  ok("flush",
     [&](JsonWriter& j) { j.field("results", static_cast<std::uint64_t>(n)); });
}

bool CommandSession::handle_line(const std::string& line,
                                 std::uint64_t line_no) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') return true;  // blank / comment
  try {
    if (cmd == "design") {
      cmd_design(in, line_no);
    } else if (cmd == "patterns") {
      cmd_patterns(in, line_no);
    } else if (cmd == "log" || cmd == "signature-log" || cmd == "inject" ||
               cmd == "inject-index") {
      cmd_evidence(cmd, in, line_no);
    } else if (cmd == "flush") {
      flush();
    } else if (cmd == "stats") {
      cmd_stats();
    } else if (cmd == "quit") {
      flush();
      ok("quit");
      return false;
    } else {
      error("unknown command: " + cmd, line_no);
    }
  } catch (const std::exception& e) {
    error(e.what(), line_no);
  }
  return true;
}

// ---------- NetServer --------------------------------------------------------

NetServer::NetServer(DiagnosisQueue& queue, Telemetry* telemetry, Options opts)
    : queue_(queue),
      telemetry_(telemetry),
      opts_(opts),
      listener_(opts.port) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

NetServer::~NetServer() { shutdown(); }

void NetServer::set_conn_gauge(std::size_t n) {
  if constexpr (kTelemetryEnabled) {
    if (telemetry_) {
      telemetry_->metrics.set_gauge(GaugeId::kNetActiveConns,
                                    static_cast<std::int64_t>(n));
    }
  }
}

void NetServer::reap_finished() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->reader.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t NetServer::active_connections() const {
  return active_.load(std::memory_order_acquire);
}

void NetServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::optional<Connection> conn;
    try {
      conn = listener_.accept(/*timeout_ms=*/100);
    } catch (const NetError&) {
      if (stop_.load(std::memory_order_acquire)) return;
      continue;  // transient accept failure; keep serving
    }
    if (!conn.has_value()) continue;  // timeout: re-check the stop flag
    conn->set_write_timeout(opts_.write_timeout_ms);
    std::lock_guard<std::mutex> lock(conns_mu_);
    reap_finished();
    if (conns_.size() >= opts_.max_connections) {
      SP_TELEM_ADD(telemetry_, 0, CounterId::kNetConnRejected, 1);
      try {
        conn->write_all(
            error_json(strprintf("too many connections (cap %zu)",
                                 opts_.max_connections)) +
            "\n");
      } catch (const NetError&) {
      }
      continue;  // destructor closes the socket
    }
    SP_TELEM_ADD(telemetry_, 0, CounterId::kNetAccepted, 1);
    auto slot = std::make_unique<Conn>();
    slot->conn = std::move(*conn);
    Conn* c = slot.get();
    conns_.push_back(std::move(slot));
    active_.fetch_add(1, std::memory_order_acq_rel);
    set_conn_gauge(active_connections());
    c->reader = std::thread([this, c] {
      serve(*c);
      active_.fetch_sub(1, std::memory_order_acq_rel);
      set_conn_gauge(active_connections());
      c->done.store(true, std::memory_order_release);
    });
  }
}

void NetServer::serve(Conn& c) {
  LineReader reader(opts_.max_line);
  CommandSession session(
      queue_, telemetry_, opts_.service,
      /*out=*/[this, &c](std::string_view line) {
        std::string framed(line);
        framed.push_back('\n');
        c.conn.write_all(framed);
        SP_TELEM_ADD(telemetry_, 0, CounterId::kNetBytesOut, framed.size());
      });
  char buf[4096];
  bool open = true;
  try {
    while (open) {
      const std::size_t n = c.conn.read_some(buf, sizeof(buf));
      if (n == 0) break;  // EOF: peer closed, or shutdown() half-closed us
      SP_TELEM_ADD(telemetry_, 0, CounterId::kNetBytesIn, n);
      reader.feed(std::string_view(buf, n));
      for (;;) {
        std::string line;
        try {
          std::optional<std::string> next = reader.next();
          if (!next.has_value()) break;
          line = std::move(*next);
        } catch (const LineTooLongError& e) {
          SP_TELEM_ADD(telemetry_, 0, CounterId::kNetFramingErrors, 1);
          session.error(e.what(), e.line_no());
          continue;
        }
        SP_TELEM_ADD(telemetry_, 0, CounterId::kNetRequests, 1);
        const std::uint64_t t0 = telemetry_now_us();
        open = session.handle_line(line, reader.line_no() - 1);
        if constexpr (kTelemetryEnabled) {
          if (telemetry_) {
            telemetry_->metrics.record_hist(HistId::kNetRequestUs,
                                            telemetry_now_us() - t0);
          }
        }
        if (!open) break;
      }
    }
    if (open) {
      // EOF without `quit`. A half-written command is an abrupt
      // disconnect -- drop it, but still answer everything the client
      // fully submitted (shutdown() relies on this drain).
      if (!reader.take_partial().empty()) {
        SP_TELEM_ADD(telemetry_, 0, CounterId::kNetFramingErrors, 1);
      }
      if (session.pending() > 0) session.flush();
    }
  } catch (const NetError&) {
    // Peer vanished mid-read or mid-write: abandon the connection. Any
    // still-pending futures die with the session; the dispatcher keeps
    // running everyone else's work.
  }
  // Half-close only: shutdown() may still hold a pointer to this
  // connection for its own shutdown_read(), so the fd is released by the
  // Conn slot's destruction (reap or shutdown), never by this thread.
  c.conn.shutdown_both();
}

void NetServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  stop_.store(true, std::memory_order_release);
  acceptor_.join();
  listener_.close();
  {
    // Half-close: every reader wakes with EOF, drains the commands it
    // already buffered, flushes its pending futures (the queue is still
    // dispatching) and writes the responses before closing.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& c : conns_) c->conn.shutdown_read();
    for (auto& c : conns_) c->reader.join();
    conns_.clear();
  }
  set_conn_gauge(0);
}

}  // namespace scanpower::net
