#pragma once
// The diagnosis service's command layer and TCP server.
//
// CommandSession is the one implementation of the diag_server line
// grammar (design / patterns / log / signature-log / inject /
// inject-index / flush / stats / quit), shared verbatim by the stdin
// front end and every TCP connection -- both transports route the same
// commands into the same shared DiagnosisQueue and serialize results
// through the same framing.hpp writers, which is what keeps responses
// byte-identical across transports and to in-process diagnose().
//
// Two response modes:
//   wire mode (TCP)    -- every command is answered with exactly one
//                         JSON line ({"ok":...} acks, {"error":...}
//                         rejects); `flush` emits one result object per
//                         pending log then an {"ok":"flush","results":N}
//                         terminator; `stats` is a single JSON object.
//                         An overloaded queue (Reject policy) answers
//                         {"error":"overloaded","retry_after_ms":...}.
//   stdin mode         -- the PR 9 behavior: control commands are
//                         silent, errors go to the error sink (stderr),
//                         `stats` prints the text report.
//
// NetServer is the transport in front of it: an accept loop (ephemeral-
// capable port), one reader thread per connection feeding a bounded
// LineReader, a connection cap (excess connections are answered with an
// error line and closed), and graceful shutdown -- stop accepting,
// half-close every connection so its reader drains buffered commands
// and flushes pending futures (the queue keeps dispatching throughout),
// then join. No hung clients, no broken promises.
//
// Telemetry: net.{accepted,conn_rejected,requests,bytes_in,bytes_out,
// framing_errors}, the net.active_connections gauge and the
// net.request_us handling-latency histogram, next to the queue.* family
// the DiagnosisQueue already maintains.

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/work_queue.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"

namespace scanpower::net {

/// Knobs shared by every front end of one service process.
struct ServiceOptions {
  /// Engine options for every design opened through the service.
  FlowOptions flow;
  /// Ranked candidates serialized per result.
  std::size_t top = 5;
  /// true: one JSON response line per command (TCP). false: the legacy
  /// silent-ack stdin behavior with text stats.
  bool wire_mode = true;
};

/// One client's view of the service: current design, registered designs
/// (front sessions for fault parsing / evidence injection) and the FIFO
/// of submitted-but-unflushed results. Single-threaded; owned by its
/// front end (the stdin loop or one connection's reader thread).
class CommandSession {
 public:
  using Sink = std::function<void(std::string_view line)>;

  /// `out` receives response lines (no trailing newline). `err` is the
  /// stdin-mode error channel; ignored in wire mode (errors become
  /// {"error":...} frames on `out`).
  CommandSession(DiagnosisQueue& queue, Telemetry* telemetry,
                 ServiceOptions opts, Sink out, Sink err = {});
  ~CommandSession();

  CommandSession(const CommandSession&) = delete;
  CommandSession& operator=(const CommandSession&) = delete;

  /// Handles one command line (1-based `line_no` feeds error frames).
  /// Returns false when the command was `quit` (pending results are
  /// flushed first). Never throws on bad input -- errors are responses.
  bool handle_line(const std::string& line, std::uint64_t line_no);

  /// Emits every pending result, in submission order.
  void flush();

  /// Emits an error response (wire mode: JSON frame; stdin mode: err
  /// sink) -- also the entry point for transport-level rejects like
  /// LineTooLongError.
  void error(std::string_view msg, std::uint64_t line_no = 0);

  std::size_t pending() const { return pending_.size(); }

 private:
  struct Design {
    DiagnosisQueue::DesignKey key = 0;
    std::shared_ptr<const DesignContext> ctx;
    std::unique_ptr<ScanSession> front;
    std::size_t num_patterns = 0;
  };
  struct Pending {
    std::string circuit;
    std::string source;
    std::size_t num_patterns = 0;
    std::shared_ptr<const DesignContext> ctx;  ///< keeps names resolvable
    std::future<DiagnosisResult> result;
  };

  void ok(std::string_view what,
          const std::function<void(JsonWriter&)>& extra = {});
  void cmd_design(std::istream& in, std::uint64_t line_no);
  void cmd_patterns(std::istream& in, std::uint64_t line_no);
  void cmd_evidence(const std::string& cmd, std::istream& in,
                    std::uint64_t line_no);
  void cmd_stats();
  void write_pending(Pending& p);

  DiagnosisQueue& queue_;
  Telemetry* telemetry_;
  ServiceOptions opts_;
  Sink out_;
  Sink err_;
  std::map<std::string, Design> designs_;  ///< by netlist name
  Design* current_ = nullptr;
  std::unique_ptr<Netlist> loaded_;  ///< awaiting its `patterns` command
  std::vector<Pending> pending_;
};

/// TCP transport: accept loop + per-connection readers over one shared
/// DiagnosisQueue.
class NetServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral; see port()
    std::size_t max_connections = 64;
    std::size_t max_line = LineReader::kDefaultMaxLine;
    /// Write deadline per response line, so one dead client cannot hang
    /// its reader (and with it, shutdown) forever. <= 0 = no deadline.
    int write_timeout_ms = 30'000;
    ServiceOptions service;
  };

  /// Binds and starts accepting immediately. `queue` and `telemetry`
  /// are borrowed and must outlive the server.
  NetServer(DiagnosisQueue& queue, Telemetry* telemetry, Options opts);
  ~NetServer();  ///< shutdown()

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (the kernel's pick when Options::port was 0).
  std::uint16_t port() const { return listener_.port(); }

  /// Graceful stop: stop accepting, half-close every connection so its
  /// reader finishes buffered commands and flushes every pending future
  /// (the queue keeps dispatching), join the readers. Idempotent.
  void shutdown();

  std::size_t active_connections() const;

 private:
  struct Conn {
    Connection conn;
    std::thread reader;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve(Conn& c);
  void reap_finished();  ///< callers hold conns_mu_
  void set_conn_gauge(std::size_t n);

  DiagnosisQueue& queue_;
  Telemetry* telemetry_;
  const Options opts_;
  Listener listener_;

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  /// Live connection count, kept outside conns_mu_ so a reader thread can
  /// update it while shutdown() holds the lock joining readers.
  std::atomic<std::size_t> active_{0};
  std::atomic<bool> stop_{false};
  bool shut_down_ = false;  ///< shutdown() ran (guarded by conns_mu_)
  std::thread acceptor_;
};

}  // namespace scanpower::net
