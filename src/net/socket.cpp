#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "util/strings.hpp"

namespace scanpower::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  const int err = errno;
  const std::string msg =
      strprintf("%s: %s", what, std::strerror(err));
  if (err == ECONNRESET || err == EPIPE || err == ECONNABORTED) {
    throw ClosedError(msg);
  }
  throw NetError(msg);
}

/// poll() one fd for readability/writability; EINTR-safe. Returns false
/// on timeout.
bool poll_one(int fd, bool for_write, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = static_cast<short>(for_write ? POLLOUT : POLLIN);
  p.revents = 0;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) return true;  // readable/writable, or error -- let I/O see it
    if (r == 0) return false;
    if (errno != EINTR) throw_errno("poll");
  }
}

}  // namespace

// ---------- Socket -----------------------------------------------------------

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------- Connection -------------------------------------------------------

Connection Connection::connect(const std::string& host, std::uint16_t port,
                               int timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int gai = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (gai != 0) {
    throw NetError(strprintf("connect %s:%u: %s", host.c_str(),
                             static_cast<unsigned>(port),
                             ::gai_strerror(gai)));
  }
  Socket sock(::socket(res->ai_family, res->ai_socktype, res->ai_protocol));
  if (!sock.valid()) {
    ::freeaddrinfo(res);
    throw_errno("socket");
  }
  // Non-blocking connect so the timeout is enforceable, then back to
  // blocking (all later I/O deadlines run through poll()).
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(sock.fd(), res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    if (errno != EINPROGRESS) throw_errno("connect");
    if (!poll_one(sock.fd(), /*for_write=*/true, timeout_ms)) {
      throw TimeoutError(strprintf("connect %s:%u: timed out after %d ms",
                                   host.c_str(), static_cast<unsigned>(port),
                                   timeout_ms));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      errno = err;
      throw_errno("connect");
    }
  }
  ::fcntl(sock.fd(), F_SETFL, flags);
  int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Connection(std::move(sock));
}

void Connection::wait_ready(bool for_write, int timeout_ms, const char* what) {
  if (timeout_ms <= 0) return;  // wait forever: let the syscall block
  if (!poll_one(sock_.fd(), for_write, timeout_ms)) {
    throw TimeoutError(
        strprintf("%s: timed out after %d ms", what, timeout_ms));
  }
}

std::size_t Connection::read_some(char* buf, std::size_t n) {
  SP_CHECK(sock_.valid(), "Connection::read_some: socket closed");
  wait_ready(/*for_write=*/false, read_timeout_ms_, "read");
  for (;;) {
    const ssize_t r = ::recv(sock_.fd(), buf, n, 0);
    if (r >= 0) return static_cast<std::size_t>(r);  // 0 = orderly EOF
    if (errno == EINTR) continue;
    throw_errno("read");
  }
}

void Connection::write_all(std::string_view data) {
  SP_CHECK(sock_.valid(), "Connection::write_all: socket closed");
  std::size_t off = 0;
  while (off < data.size()) {
    wait_ready(/*for_write=*/true, write_timeout_ms_, "write");
    const ssize_t w = ::send(sock_.fd(), data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (w >= 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("write");
  }
}

void Connection::shutdown_read() {
  if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_RD);
}

void Connection::shutdown_both() {
  if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_RDWR);
}

// ---------- Listener ---------------------------------------------------------

Listener::Listener(std::uint16_t port, int backlog, bool loopback_only) {
  sock_ = Socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock_.valid()) throw_errno("socket");
  int one = 1;
  ::setsockopt(sock_.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(sock_.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind");
  }
  if (::listen(sock_.fd(), backlog) != 0) throw_errno("listen");
  // Report the kernel's pick under port 0.
  socklen_t len = sizeof(addr);
  if (::getsockname(sock_.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

std::optional<Connection> Listener::accept(int timeout_ms) {
  SP_CHECK(sock_.valid(), "Listener::accept: listener closed");
  if (!poll_one(sock_.fd(), /*for_write=*/false, timeout_ms)) {
    return std::nullopt;
  }
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Connection(Socket(fd));
    }
    if (errno == EINTR) continue;
    if (errno == ECONNABORTED) return std::nullopt;  // peer gave up mid-accept
    throw_errno("accept");
  }
}

}  // namespace scanpower::net
