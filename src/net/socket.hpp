#pragma once
// RAII POSIX TCP sockets for the diagnosis service transport.
//
// Three thin layers, each mapping raw errno failures into the library's
// typed Error hierarchy (NetError, with TimeoutError / ClosedError
// refinements) so transport faults are catchable next to parse and
// option errors instead of surfacing as raw -1/errno pairs:
//
//   Socket     -- owning fd wrapper: move-only, closes on destruction.
//   Listener   -- bound + listening socket; port 0 binds an ephemeral
//                 port and port() reports what the kernel picked.
//                 accept() is poll-based with a timeout so an accept
//                 loop can observe a stop flag without signals.
//   Connection -- a connected stream with poll-based read/write
//                 timeouts, EINTR-safe full-buffer writes (MSG_NOSIGNAL:
//                 a dead peer is a ClosedError, never a SIGPIPE), and
//                 half-close (shutdown_read unblocks a parked reader --
//                 how the server wakes connection threads on shutdown).
//
// Loopback-only by default: the diagnosis service speaks an unauthenti-
// cated line protocol, so Listener binds 127.0.0.1 unless the caller
// explicitly opts into all interfaces.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/assert.hpp"

namespace scanpower::net {

/// Transport-layer failure (connect/bind/read/write), message carries
/// the operation and the errno text.
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error(what) {}
};

/// A read/write/connect deadline expired before the operation completed.
class TimeoutError : public NetError {
 public:
  explicit TimeoutError(const std::string& what) : NetError(what) {}
};

/// The peer closed or reset the connection mid-operation.
class ClosedError : public NetError {
 public:
  explicit ClosedError(const std::string& what) : NetError(what) {}
};

/// Owning file-descriptor wrapper. Move-only; close() is idempotent.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

/// A connected TCP stream. Obtained from Listener::accept() or
/// Connection::connect(); all I/O enforces the per-direction timeouts.
class Connection {
 public:
  Connection() = default;
  explicit Connection(Socket s) : sock_(std::move(s)) {}

  /// Blocking connect to host:port ("127.0.0.1" style dotted quad or a
  /// resolvable name) bounded by timeout_ms. Throws TimeoutError /
  /// NetError.
  static Connection connect(const std::string& host, std::uint16_t port,
                            int timeout_ms);

  bool valid() const { return sock_.valid(); }

  /// Read/write deadlines for subsequent operations, in ms; <= 0 means
  /// wait forever.
  void set_read_timeout(int ms) { read_timeout_ms_ = ms; }
  void set_write_timeout(int ms) { write_timeout_ms_ = ms; }

  /// Reads up to `n` bytes into `buf`. Returns 0 on orderly EOF, throws
  /// TimeoutError when the read deadline passes with no data, ClosedError
  /// on a reset.
  std::size_t read_some(char* buf, std::size_t n);

  /// Writes the whole buffer (looping over partial writes). Throws
  /// ClosedError when the peer is gone, TimeoutError past the deadline.
  void write_all(std::string_view data);

  /// Half-close: no more reads will be served; a reader blocked in
  /// read_some() wakes with EOF. Responses can still be written.
  void shutdown_read();
  /// Full shutdown of both directions (pending I/O wakes with EOF/error).
  void shutdown_both();
  void close() { sock_.close(); }

 private:
  void wait_ready(bool for_write, int timeout_ms, const char* what);

  Socket sock_;
  int read_timeout_ms_ = -1;
  int write_timeout_ms_ = -1;
};

/// A listening TCP socket, loopback-only unless `loopback_only=false`.
class Listener {
 public:
  /// Binds and listens; port 0 picks an ephemeral port (see port()).
  explicit Listener(std::uint16_t port, int backlog = 64,
                    bool loopback_only = true);

  /// The actually-bound port (the kernel's pick under port 0).
  std::uint16_t port() const { return port_; }

  /// Waits up to timeout_ms for a connection; nullopt on timeout (the
  /// accept loop's stop-flag poll point). Throws NetError on listener
  /// failure, including close() from another thread.
  std::optional<Connection> accept(int timeout_ms);

  void close() { sock_.close(); }

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

}  // namespace scanpower::net
