#include "netlist/bench_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "netlist/builder.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

namespace {

/// Parses "OP(a, b, c" -- the operator name and comma-separated operand
/// list; the caller strips the closing paren.
struct Call {
  std::string op;
  std::vector<std::string> operands;
};

Call parse_call(std::string_view text, const std::string& file, int lineno) {
  const std::size_t open = text.find('(');
  const std::size_t close = text.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    throw ParseError(file, lineno, "expected OP(...) call");
  }
  Call call;
  call.op = std::string(trim(text.substr(0, open)));
  const std::string_view args = text.substr(open + 1, close - open - 1);
  for (const std::string& tok : split(args, ",")) {
    const std::string operand(trim(tok));
    if (!operand.empty()) call.operands.push_back(operand);
  }
  if (call.op.empty()) throw ParseError(file, lineno, "missing operator name");
  return call;
}

}  // namespace

Netlist parse_bench(std::istream& in, const std::string& source_name) {
  NetlistBuilder builder(source_name);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and whitespace.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view body = trim(line);
    if (body.empty()) continue;

    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
      // Declaration form: INPUT(net) / OUTPUT(net).
      const Call call = parse_call(body, source_name, lineno);
      const std::string op = to_upper(call.op);
      if (call.operands.size() != 1) {
        throw ParseError(source_name, lineno,
                         op + " takes exactly one net name");
      }
      if (op == "INPUT") {
        builder.add_input(call.operands[0]);
      } else if (op == "OUTPUT") {
        builder.add_output(call.operands[0]);
      } else {
        throw ParseError(source_name, lineno, "unknown declaration " + op);
      }
      continue;
    }

    // Assignment form: net = OP(a, b, ...).
    const std::string out(trim(body.substr(0, eq)));
    if (out.empty()) throw ParseError(source_name, lineno, "missing net name");
    const Call call = parse_call(body.substr(eq + 1), source_name, lineno);
    const auto type = gate_type_from_name(call.op);
    if (!type) {
      throw ParseError(source_name, lineno, "unknown gate type " + call.op);
    }
    if (*type == GateType::Input) {
      throw ParseError(source_name, lineno, "INPUT cannot appear as a gate");
    }
    // Single-input AND/OR/NAND/NOR degenerate to BUF/NOT (seen in some
    // .bench dialects).
    GateType t = *type;
    if (call.operands.size() == 1) {
      if (t == GateType::And || t == GateType::Or) t = GateType::Buf;
      if (t == GateType::Nand || t == GateType::Nor) t = GateType::Not;
    }
    builder.add_gate(t, out, call.operands);
  }
  try {
    return builder.link();
  } catch (const Error& e) {
    throw ParseError(source_name, lineno, e.what());
  }
}

Netlist parse_bench_string(const std::string& text,
                           const std::string& source_name) {
  std::istringstream in(text);
  return parse_bench(in, source_name);
}

Netlist parse_bench_file(const std::string& path) {
  std::ifstream in(path);
  SP_CHECK(in.good(), "cannot open bench file: " + path);
  // Netlist name = basename without extension.
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name.erase(0, slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name.erase(dot);
  return parse_bench(in, name);
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << " -- written by scanpower\n";
  for (GateId id : nl.inputs()) out << "INPUT(" << nl.gate_name(id) << ")\n";
  for (GateId id : nl.outputs()) out << "OUTPUT(" << nl.gate_name(id) << ")\n";
  out << "\n";
  for (std::size_t i = 0; i < nl.num_gates(); ++i) {
    const Gate& g = nl.gate(static_cast<GateId>(i));
    if (g.type == GateType::Input) continue;
    out << g.name << " = " << gate_type_name(g.type) << "(";
    for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
      if (pin) out << ", ";
      out << nl.gate_name(g.fanins[pin]);
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream out;
  write_bench(out, nl);
  return out.str();
}

}  // namespace scanpower
