#pragma once
// ISCAS89 .bench reader/writer.
//
// Grammar handled (case-insensitive operators, '#' comments):
//   INPUT(net)
//   OUTPUT(net)
//   net = OP(a, b, ...)          OP in {AND OR NAND NOR NOT BUF/BUFF
//                                       XOR XNOR DFF MUX CONST0 CONST1}

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace scanpower {

/// Parses .bench text. `source_name` is used in error messages and as the
/// netlist name. Throws ParseError on malformed input.
Netlist parse_bench(std::istream& in, const std::string& source_name);
Netlist parse_bench_string(const std::string& text, const std::string& source_name);
Netlist parse_bench_file(const std::string& path);

/// Serializes back to .bench. Round-trips through parse_bench.
void write_bench(std::ostream& out, const Netlist& nl);
std::string write_bench_string(const Netlist& nl);

}  // namespace scanpower
