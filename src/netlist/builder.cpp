#include "netlist/builder.hpp"

#include <unordered_map>

#include "util/assert.hpp"

namespace scanpower {

void NetlistBuilder::add_input(const std::string& net) {
  entries_.push_back({GateType::Input, net, {}});
}

void NetlistBuilder::add_output(const std::string& net) {
  output_marks_.push_back(net);
}

void NetlistBuilder::add_gate(GateType type, const std::string& out,
                              const std::vector<std::string>& fanin_nets) {
  entries_.push_back({type, out, fanin_nets});
}

Netlist NetlistBuilder::link() const {
  // Ids are assigned in entry order, so names can be resolved up front and
  // forward references become plain indices.
  std::unordered_map<std::string, GateId> ids;
  ids.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    SP_CHECK(ids.emplace(entries_[i].out, static_cast<GateId>(i)).second,
             "net defined more than once: " + entries_[i].out);
  }
  Netlist nl(name_);
  for (const Entry& e : entries_) {
    std::vector<GateId> fan;
    fan.reserve(e.fanins.size());
    for (const std::string& f : e.fanins) {
      auto it = ids.find(f);
      SP_CHECK(it != ids.end(),
               "gate " + e.out + " references undefined net " + f);
      fan.push_back(it->second);
    }
    nl.add_gate(e.type, e.out, std::move(fan));
  }
  for (const std::string& net : output_marks_) {
    auto it = ids.find(net);
    SP_CHECK(it != ids.end(), "OUTPUT references undefined net " + net);
    nl.mark_output(it->second);
  }
  nl.finalize();
  return nl;
}

}  // namespace scanpower
