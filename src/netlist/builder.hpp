#pragma once
// Name-based netlist construction.
//
// .bench files (and synthetic generators) reference nets before they are
// defined, so construction is two-phase: declare everything by name, then
// link() resolves names to GateIds, builds the Netlist and finalizes it.

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace scanpower {

class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string name = "top") : name_(std::move(name)) {}

  void add_input(const std::string& net);
  void add_output(const std::string& net);  ///< marks net as PO (may pre-date its definition)
  void add_gate(GateType type, const std::string& out,
                const std::vector<std::string>& fanin_nets);

  /// Resolves all names and returns the finalized netlist.
  /// Throws Error on undefined nets, duplicate definitions, or structural
  /// problems (arity, combinational cycles).
  Netlist link() const;

 private:
  struct Entry {
    GateType type;
    std::string out;
    std::vector<std::string> fanins;
  };
  std::string name_;
  std::vector<Entry> entries_;
  std::vector<std::string> output_marks_;
};

}  // namespace scanpower
