#include "netlist/gate_types.hpp"

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

const char* gate_type_name(GateType type) {
  switch (type) {
    case GateType::Input: return "INPUT";
    case GateType::Dff: return "DFF";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Mux: return "MUX";
  }
  SP_ASSERT(false, "unknown gate type");
}

std::optional<GateType> gate_type_from_name(const std::string& name) {
  const std::string up = to_upper(name);
  if (up == "INPUT") return GateType::Input;
  if (up == "DFF") return GateType::Dff;
  if (up == "CONST0") return GateType::Const0;
  if (up == "CONST1") return GateType::Const1;
  if (up == "BUF" || up == "BUFF") return GateType::Buf;
  if (up == "NOT" || up == "INV") return GateType::Not;
  if (up == "AND") return GateType::And;
  if (up == "NAND") return GateType::Nand;
  if (up == "OR") return GateType::Or;
  if (up == "NOR") return GateType::Nor;
  if (up == "XOR") return GateType::Xor;
  if (up == "XNOR") return GateType::Xnor;
  if (up == "MUX") return GateType::Mux;
  return std::nullopt;
}

bool is_combinational(GateType type) {
  return type != GateType::Input && type != GateType::Dff;
}

bool is_structural_source(GateType type) {
  return type == GateType::Input || type == GateType::Const0 ||
         type == GateType::Const1;
}

std::optional<bool> controlling_value(GateType type) {
  switch (type) {
    case GateType::And:
    case GateType::Nand:
      return false;
    case GateType::Or:
    case GateType::Nor:
      return true;
    default:
      return std::nullopt;
  }
}

std::optional<bool> controlled_output(GateType type) {
  switch (type) {
    case GateType::And: return false;
    case GateType::Nand: return true;
    case GateType::Or: return true;
    case GateType::Nor: return false;
    default: return std::nullopt;
  }
}

bool is_inverting(GateType type) {
  return type == GateType::Not || type == GateType::Nand ||
         type == GateType::Nor || type == GateType::Xnor;
}

bool is_symmetric(GateType type) {
  switch (type) {
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor:
      return true;
    default:
      return false;
  }
}

int min_fanins(GateType type) {
  switch (type) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      return 0;
    case GateType::Dff:
    case GateType::Buf:
    case GateType::Not:
      return 1;
    case GateType::Mux:
      return 3;
    default:
      return 2;
  }
}

int max_fanins(GateType type) {
  switch (type) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      return 0;
    case GateType::Dff:
    case GateType::Buf:
    case GateType::Not:
      return 1;
    case GateType::Mux:
      return 3;
    default:
      return 0;  // unbounded
  }
}

}  // namespace scanpower
