#pragma once
// Gate primitive types and their static properties.
//
// The IR follows ISCAS89 .bench semantics: every gate drives exactly one
// net, and the net is identified with the gate that drives it. DFFs are
// state elements (their outputs are the pseudo-inputs of the combinational
// core in full-scan mode); everything else is combinational.

#include <cstdint>
#include <optional>
#include <string>

namespace scanpower {

enum class GateType : std::uint8_t {
  Input,   ///< primary input (no fanins)
  Dff,     ///< D flip-flop; fanin[0] = D; output = Q
  Const0,  ///< constant logic 0 (no fanins)
  Const1,  ///< constant logic 1 (no fanins)
  Buf,     ///< 1-input buffer
  Not,     ///< 1-input inverter
  And,     ///< n-input AND (n >= 2)
  Nand,    ///< n-input NAND (n >= 2)
  Or,      ///< n-input OR (n >= 2)
  Nor,     ///< n-input NOR (n >= 2)
  Xor,     ///< n-input parity (n >= 2)
  Xnor,    ///< n-input complemented parity (n >= 2)
  Mux,     ///< 2:1 multiplexer; fanins = {select, a, b}; out = select ? b : a
};

constexpr int kNumGateTypes = static_cast<int>(GateType::Mux) + 1;

/// Canonical upper-case name ("NAND", "DFF", ...).
const char* gate_type_name(GateType type);

/// Parse a .bench operator name (case-insensitive). Returns nullopt for
/// unknown names.
std::optional<GateType> gate_type_from_name(const std::string& name);

/// True for gates evaluated by the combinational simulator (everything
/// except Input/Dff; constants are treated as combinational sources with
/// fixed values).
bool is_combinational(GateType type);

/// True for gates with no fanins (Input, Const0, Const1). Dff is *not* a
/// source structurally (it has a D fanin) but acts as a combinational
/// source in the full-scan view.
bool is_structural_source(GateType type);

/// Controlling value for simple gates: a single input at this value forces
/// the output regardless of other inputs. AND/NAND -> 0, OR/NOR -> 1.
/// nullopt for gates without a controlling value (XOR/XNOR/BUF/NOT/MUX/...).
std::optional<bool> controlling_value(GateType type);

/// Output value produced when a controlling-value input is present
/// (e.g. NAND with a 0 input -> 1).
std::optional<bool> controlled_output(GateType type);

/// True if the gate output inverts relative to the dominant sense
/// (NOT/NAND/NOR/XNOR).
bool is_inverting(GateType type);

/// True if the gate function is invariant under any permutation of its
/// inputs (pin reordering legality).
bool is_symmetric(GateType type);

/// Minimum/maximum legal fanin count. max = 0 means unbounded.
int min_fanins(GateType type);
int max_fanins(GateType type);

}  // namespace scanpower
