#include "netlist/levelize.hpp"

#include <algorithm>

namespace scanpower {

std::vector<GateId> fanin_cone(const Netlist& nl,
                               const std::vector<GateId>& sinks) {
  std::vector<bool> seen(nl.num_gates(), false);
  std::vector<GateId> stack = sinks;
  std::vector<GateId> cone;
  for (GateId s : stack) seen[s] = true;
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    cone.push_back(id);
    // Sequential edge D->DFF is part of the sink's cone only when the sink
    // itself is the DFF; we do traverse its D fanin (callers asking for the
    // cone of a DFF want the logic feeding it).
    for (GateId f : nl.fanins(id)) {
      if (!seen[f]) {
        seen[f] = true;
        stack.push_back(f);
      }
    }
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

std::vector<GateId> fanout_cone(const Netlist& nl,
                                const std::vector<GateId>& sources) {
  std::vector<bool> seen = reachable_from(nl, sources);
  std::vector<GateId> cone;
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (seen[id]) cone.push_back(id);
  }
  return cone;
}

std::vector<bool> reachable_from(const Netlist& nl,
                                 const std::vector<GateId>& sources) {
  std::vector<bool> seen(nl.num_gates(), false);
  std::vector<GateId> stack;
  for (GateId s : sources) {
    if (!seen[s]) {
      seen[s] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const GateId id = stack.back();
    stack.pop_back();
    for (GateId fo : nl.fanouts(id)) {
      // Do not propagate through a DFF: its output changes only on capture,
      // not combinationally.
      if (nl.type(fo) == GateType::Dff) {
        if (!seen[fo]) seen[fo] = true;  // mark the sink itself
        continue;
      }
      if (!seen[fo]) {
        seen[fo] = true;
        stack.push_back(fo);
      }
    }
  }
  return seen;
}

}  // namespace scanpower
