#pragma once
// Graph traversal utilities over the combinational core: cones and
// reachability. Used by timing (path tracing), ATPG (fault cones) and the
// core algorithm (transition propagation regions).

#include <vector>

#include "netlist/netlist.hpp"

namespace scanpower {

/// Transitive fanin of `sinks` (combinational edges only; stops at
/// Input/Dff/Const sources, which are included). Returned as a sorted
/// vector of unique GateIds.
std::vector<GateId> fanin_cone(const Netlist& nl, const std::vector<GateId>& sinks);

/// Transitive fanout of `sources` (combinational edges only; DFF D-pins
/// terminate propagation, the DFF itself is included as a sink marker).
std::vector<GateId> fanout_cone(const Netlist& nl, const std::vector<GateId>& sources);

/// Boolean reachability mask: out[g] is true iff g is in the combinational
/// transitive fanout of any source. Cheaper than fanout_cone when the
/// caller wants a mask.
std::vector<bool> reachable_from(const Netlist& nl, const std::vector<GateId>& sources);

}  // namespace scanpower
