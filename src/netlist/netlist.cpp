#include "netlist/netlist.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

GateId Netlist::add_gate(GateType type, std::string name,
                         std::vector<GateId> fanins) {
  SP_CHECK(!name.empty(), "gate name must be non-empty");
  SP_CHECK(by_name_.find(name) == by_name_.end(),
           "duplicate net name: " + name);
  // Fanin ids may reference gates added later (forward references are
  // normal in .bench); ranges are validated in finalize().
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.type = type;
  g.name = std::move(name);
  g.fanins = std::move(fanins);
  by_name_.emplace(g.name, id);
  if (type == GateType::Input) inputs_.push_back(id);
  if (type == GateType::Dff) dffs_.push_back(id);
  gates_.push_back(std::move(g));
  finalized_ = false;
  return id;
}

void Netlist::mark_output(GateId id) {
  SP_CHECK(id < gates_.size(), "mark_output: gate id out of range");
  if (!gates_[id].is_output) {
    gates_[id].is_output = true;
    outputs_.push_back(id);
  }
}

void Netlist::replace_uses(GateId from, GateId to) {
  SP_CHECK(from < gates_.size() && to < gates_.size(),
           "replace_uses: gate id out of range");
  for (Gate& g : gates_) {
    for (GateId& f : g.fanins) {
      if (f == from) f = to;
    }
  }
  finalized_ = false;
}

void Netlist::set_fanin(GateId gate, int pin, GateId driver) {
  SP_CHECK(gate < gates_.size() && driver < gates_.size(),
           "set_fanin: gate id out of range");
  SP_CHECK(pin >= 0 && static_cast<std::size_t>(pin) < gates_[gate].fanins.size(),
           "set_fanin: pin index out of range");
  gates_[gate].fanins[static_cast<std::size_t>(pin)] = driver;
  finalized_ = false;
}

void Netlist::permute_fanins(GateId gate, const std::vector<int>& perm) {
  SP_CHECK(gate < gates_.size(), "permute_fanins: gate id out of range");
  Gate& g = gates_[gate];
  SP_ASSERT(is_symmetric(g.type), "pin reordering on non-symmetric gate");
  SP_CHECK(perm.size() == g.fanins.size(),
           "permute_fanins: permutation size mismatch");
  std::vector<GateId> next(g.fanins.size());
  std::vector<bool> seen(g.fanins.size(), false);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const int src = perm[i];
    SP_CHECK(src >= 0 && static_cast<std::size_t>(src) < g.fanins.size() &&
                 !seen[static_cast<std::size_t>(src)],
             "permute_fanins: not a permutation");
    seen[static_cast<std::size_t>(src)] = true;
    next[i] = g.fanins[static_cast<std::size_t>(src)];
  }
  g.fanins = std::move(next);
  // A pin permutation of a symmetric gate preserves fanouts and levels;
  // no re-finalize required -- but the flat CSR row must track pin order.
  if (finalized_) {
    std::copy(g.fanins.begin(), g.fanins.end(),
              fanin_data_.begin() + fanin_offsets_[gate]);
  }
}

GateId Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidGate : it->second;
}

void Netlist::finalize() {
  validate_arity();
  compute_fanouts();
  compute_levels_and_topo();
  // Level-sort the topo order (ties by id). Every combinational edge
  // strictly increases level, so any level-sorted order is also a valid
  // topological order; sorting makes the sweep schedule deterministic and
  // lets cone evaluation reuse the same ordering invariant.
  std::sort(topo_.begin(), topo_.end(), [this](GateId a, GateId b) {
    return gates_[a].level != gates_[b].level ? gates_[a].level < gates_[b].level
                                              : a < b;
  });
  build_flat_views();
  finalized_ = true;
}

void Netlist::build_flat_views() {
  const std::size_t n = gates_.size();
  fanin_offsets_.assign(n + 1, 0);
  fanout_offsets_.assign(n + 1, 0);
  types_flat_.resize(n);
  levels_flat_.resize(n);
  std::size_t nin = 0, nout = 0;
  for (std::size_t i = 0; i < n; ++i) {
    nin += gates_[i].fanins.size();
    nout += gates_[i].fanouts.size();
  }
  fanin_data_.clear();
  fanin_data_.reserve(nin);
  fanout_data_.clear();
  fanout_data_.reserve(nout);
  for (std::size_t i = 0; i < n; ++i) {
    const Gate& g = gates_[i];
    fanin_data_.insert(fanin_data_.end(), g.fanins.begin(), g.fanins.end());
    fanin_offsets_[i + 1] = static_cast<std::uint32_t>(fanin_data_.size());
    fanout_data_.insert(fanout_data_.end(), g.fanouts.begin(), g.fanouts.end());
    fanout_offsets_[i + 1] = static_cast<std::uint32_t>(fanout_data_.size());
    types_flat_[i] = g.type;
    levels_flat_[i] = g.level;
  }
}

const std::vector<GateId>& Netlist::topo_order() const {
  SP_ASSERT(finalized_, "topo_order() requires finalize()");
  return topo_;
}

void Netlist::validate_arity() const {
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    for (GateId f : g.fanins) {
      SP_CHECK(f < gates_.size(),
               "gate " + g.name + " has a dangling fanin reference");
    }
    const int n = static_cast<int>(g.fanins.size());
    const int lo = min_fanins(g.type);
    const int hi = max_fanins(g.type);
    SP_CHECK(n >= lo && (hi == 0 || n <= hi),
             strprintf("gate %s (%s): illegal fanin count %d",
                       g.name.c_str(), gate_type_name(g.type), n));
  }
}

void Netlist::compute_fanouts() {
  for (Gate& g : gates_) g.fanouts.clear();
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    for (GateId f : gates_[i].fanins) {
      gates_[f].fanouts.push_back(static_cast<GateId>(i));
    }
  }
}

void Netlist::compute_levels_and_topo() {
  // Kahn's algorithm over the combinational graph. DFF outputs and PIs are
  // level-0 sources; DFF *D* pins are sinks (the edge D -> DFF is a
  // sequential edge and is not traversed).
  topo_.clear();
  depth_ = 0;
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  std::queue<GateId> ready;
  std::size_t num_comb = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    Gate& g = gates_[i];
    g.level = 0;
    if (!is_combinational(g.type)) continue;  // Input/Dff are sources
    ++num_comb;
    std::uint32_t deps = 0;
    for (GateId f : g.fanins) {
      if (is_combinational(gates_[f].type) &&
          gates_[f].type != GateType::Const0 &&
          gates_[f].type != GateType::Const1) {
        ++deps;
      }
    }
    // Constants count as level-0 sources even though is_combinational()
    // returns true for them; they are emitted into the topo order first.
    pending[i] = deps;
    if (deps == 0) ready.push(static_cast<GateId>(i));
  }
  while (!ready.empty()) {
    const GateId id = ready.front();
    ready.pop();
    Gate& g = gates_[id];
    std::uint32_t lvl = 0;
    for (GateId f : g.fanins) lvl = std::max(lvl, gates_[f].level + 1);
    if (g.type == GateType::Const0 || g.type == GateType::Const1) lvl = 0;
    g.level = lvl;
    depth_ = std::max(depth_, lvl);
    topo_.push_back(id);
    for (GateId fo : g.fanouts) {
      if (!is_combinational(gates_[fo].type)) continue;
      if (pending[fo] > 0 && --pending[fo] == 0) ready.push(fo);
    }
  }
  SP_CHECK(topo_.size() == num_comb,
           strprintf("netlist %s has a combinational cycle (%zu of %zu gates "
                     "levelized)",
                     name_.c_str(), topo_.size(), num_comb));
}

}  // namespace scanpower
