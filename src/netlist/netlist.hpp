#pragma once
// Gate-level netlist IR.
//
// Storage model: gates live in one contiguous vector; a GateId is an index
// into it. Every gate drives exactly one net, named after the gate
// (.bench semantics), so "net" and "gate output" are the same thing.
// Fanouts and levels are derived data, rebuilt by finalize() after any
// structural edit.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate_types.hpp"

namespace scanpower {

using GateId = std::uint32_t;
constexpr GateId kInvalidGate = static_cast<GateId>(-1);

struct Gate {
  GateType type = GateType::Input;
  std::string name;              ///< output net name, unique per netlist
  std::vector<GateId> fanins;    ///< driver gates, in pin order
  std::vector<GateId> fanouts;   ///< derived: gates reading this output
  std::uint32_t level = 0;       ///< derived: combinational level (sources = 0)
  bool is_output = false;        ///< marked by OUTPUT(...) in .bench
};

/// A gate-level circuit. Construct through NetlistBuilder (name-based) or
/// the id-based mutators here, then call finalize() before analysis.
class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // ---- construction --------------------------------------------------
  /// Adds a gate; fanin ids must already exist. Returns its id.
  GateId add_gate(GateType type, std::string name, std::vector<GateId> fanins = {});
  /// Marks an existing gate's output as a primary output.
  void mark_output(GateId id);
  /// Replaces every use of `from` as a fanin with `to` (does not delete
  /// `from`). Call finalize() afterwards.
  void replace_uses(GateId from, GateId to);
  /// Rewires a single fanin pin of `gate` to a new driver.
  void set_fanin(GateId gate, int pin, GateId driver);
  /// Permutes the fanin pins of a gate (pin reordering). `perm[i]` is the
  /// old pin index that moves to position i. Only legal for symmetric gates
  /// (asserted).
  void permute_fanins(GateId gate, const std::vector<int>& perm);

  /// Rebuilds fanouts and levels, and validates structure. Must be called
  /// after construction or any structural edit and before analysis.
  /// Throws Error on malformed structure (bad arity, combinational cycle).
  void finalize();
  bool finalized() const { return finalized_; }

  // ---- access ---------------------------------------------------------
  std::size_t num_gates() const { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_[id]; }
  GateType type(GateId id) const { return gates_[id].type; }
  const std::string& gate_name(GateId id) const { return gates_[id].name; }
  const std::vector<GateId>& fanins(GateId id) const { return gates_[id].fanins; }
  const std::vector<GateId>& fanouts(GateId id) const { return gates_[id].fanouts; }
  std::uint32_t level(GateId id) const { return gates_[id].level; }
  bool is_output(GateId id) const { return gates_[id].is_output; }

  /// Lookup by net name. Returns kInvalidGate if absent.
  GateId find(const std::string& name) const;

  const std::vector<GateId>& inputs() const { return inputs_; }    ///< PIs
  const std::vector<GateId>& outputs() const { return outputs_; }  ///< POs
  const std::vector<GateId>& dffs() const { return dffs_; }        ///< state elements

  /// Combinational gates in topological order (fanins before fanouts);
  /// excludes Input/Dff. Sorted by level (ties by id), so it doubles as a
  /// level-ordered sweep schedule. Valid after finalize().
  const std::vector<GateId>& topo_order() const;

  // ---- flat (CSR) views, valid after finalize() -----------------------
  // The per-gate vectors above are authoritative during construction;
  // finalize() flattens them into contiguous offset/data arrays so the
  // simulation and analysis inner loops touch only dense cache lines.
  std::span<const GateId> fanin_span(GateId id) const {
    return {fanin_data_.data() + fanin_offsets_[id],
            fanin_offsets_[id + 1] - fanin_offsets_[id]};
  }
  std::span<const GateId> fanout_span(GateId id) const {
    return {fanout_data_.data() + fanout_offsets_[id],
            fanout_offsets_[id + 1] - fanout_offsets_[id]};
  }
  const std::vector<std::uint32_t>& fanin_offsets() const { return fanin_offsets_; }
  const std::vector<GateId>& fanin_data() const { return fanin_data_; }
  const std::vector<std::uint32_t>& fanout_offsets() const { return fanout_offsets_; }
  const std::vector<GateId>& fanout_data() const { return fanout_data_; }
  /// Gate types / levels as dense arrays indexed by GateId (hot-loop
  /// alternative to gate(id).type / gate(id).level).
  std::span<const GateType> types_flat() const { return types_flat_; }
  std::span<const std::uint32_t> levels_flat() const { return levels_flat_; }

  /// Maximum combinational level (logic depth). Valid after finalize().
  std::uint32_t depth() const { return depth_; }

  /// Pseudo-inputs of the full-scan combinational core: DFF outputs.
  /// (Identical to dffs(): the DFF gate id *is* its Q net.)
  const std::vector<GateId>& pseudo_inputs() const { return dffs_; }

 private:
  friend class NetlistBuilder;

  void compute_fanouts();
  void compute_levels_and_topo();  // throws on combinational cycle
  void build_flat_views();
  void validate_arity() const;

  std::string name_;
  std::vector<Gate> gates_;
  std::unordered_map<std::string, GateId> by_name_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;
  std::vector<GateId> topo_;
  std::uint32_t depth_ = 0;
  bool finalized_ = false;

  // Flat CSR mirrors of the per-gate vectors (see build_flat_views()).
  std::vector<std::uint32_t> fanin_offsets_;
  std::vector<GateId> fanin_data_;
  std::vector<std::uint32_t> fanout_offsets_;
  std::vector<GateId> fanout_data_;
  std::vector<GateType> types_flat_;
  std::vector<std::uint32_t> levels_flat_;
};

}  // namespace scanpower
