#include "netlist/simplify.hpp"

#include <algorithm>
#include <optional>

#include "netlist/builder.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

namespace {

/// Per-gate simplification outcome for one pass.
struct Outcome {
  enum class Kind { Keep, Const, Alias } kind = Kind::Keep;
  bool const_value = false;
  GateId alias = kInvalidGate;     ///< same-polarity replacement
  GateType type = GateType::Buf;   ///< for Keep: possibly rewritten type
  std::vector<GateId> fanins;      ///< for Keep: resolved fanins
};

/// One forward pass: resolve every gate against the outcomes of its
/// (earlier-in-topo) fanins.
std::vector<Outcome> analyze(const Netlist& nl, SimplifyStats* stats) {
  std::vector<Outcome> out(nl.num_gates());

  // Resolve a fanin to (constant | representative id).
  auto resolve = [&](GateId f) -> std::pair<std::optional<bool>, GateId> {
    GateId cur = f;
    for (;;) {
      const Outcome& o = out[cur];
      if (o.kind == Outcome::Kind::Const) return {o.const_value, kInvalidGate};
      if (o.kind == Outcome::Kind::Alias) {
        cur = o.alias;
        continue;
      }
      return {std::nullopt, cur};
    }
  };

  for (GateId id = 0; id < nl.num_gates(); ++id) {
    const GateType t = nl.type(id);
    if (t == GateType::Input) {
      out[id].kind = Outcome::Kind::Keep;
      out[id].type = t;
      continue;
    }
    if (t == GateType::Const0 || t == GateType::Const1) {
      out[id].kind = Outcome::Kind::Const;
      out[id].const_value = (t == GateType::Const1);
      continue;
    }
  }

  for (GateId id : nl.topo_order()) {
    const GateType t = nl.type(id);
    if (t == GateType::Const0 || t == GateType::Const1) continue;
    Outcome& o = out[id];

    // Resolve fanins, folding constants per gate semantics.
    switch (t) {
      case GateType::Buf:
      case GateType::Not: {
        const auto [cv, ref] = resolve(nl.fanins(id)[0]);
        if (cv) {
          o.kind = Outcome::Kind::Const;
          o.const_value = (t == GateType::Not) ? !*cv : *cv;
          if (stats) stats->constants_folded++;
        } else if (t == GateType::Buf) {
          o.kind = Outcome::Kind::Alias;
          o.alias = ref;
          if (stats) stats->gates_rewritten++;
        } else {
          o.kind = Outcome::Kind::Keep;
          o.type = GateType::Not;
          o.fanins = {ref};
        }
        break;
      }
      case GateType::And:
      case GateType::Nand:
      case GateType::Or:
      case GateType::Nor: {
        const bool cvv = *controlling_value(t);  // 0 for AND-family
        const bool inv = is_inverting(t);
        bool controlled = false;
        std::vector<GateId> pins;
        for (GateId f : nl.fanins(id)) {
          const auto [cv, ref] = resolve(f);
          if (cv) {
            if (*cv == cvv) {
              controlled = true;
              break;
            }
            continue;  // non-controlling constant: pin drops
          }
          // Duplicate pins are idempotent for AND/OR semantics.
          if (std::find(pins.begin(), pins.end(), ref) == pins.end()) {
            pins.push_back(ref);
          }
        }
        if (controlled) {
          o.kind = Outcome::Kind::Const;
          o.const_value = *controlled_output(t);
          if (stats) stats->constants_folded++;
        } else if (pins.empty()) {
          // All pins were non-controlling constants.
          o.kind = Outcome::Kind::Const;
          o.const_value = inv ? cvv : !cvv;  // AND()->1, NAND()->0, ...
          if (stats) stats->constants_folded++;
        } else if (pins.size() == 1) {
          if (inv) {
            o.kind = Outcome::Kind::Keep;
            o.type = GateType::Not;
            o.fanins = pins;
          } else {
            o.kind = Outcome::Kind::Alias;
            o.alias = pins[0];
          }
          if (stats) stats->gates_rewritten++;
        } else {
          o.kind = Outcome::Kind::Keep;
          o.type = t;
          o.fanins = std::move(pins);
          if (o.fanins.size() != nl.fanins(id).size() && stats) {
            stats->gates_rewritten++;
          }
        }
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        bool phase = (t == GateType::Xnor);
        std::vector<GateId> pins;
        for (GateId f : nl.fanins(id)) {
          const auto [cv, ref] = resolve(f);
          if (cv) {
            phase ^= *cv;
            continue;
          }
          // Pairs of identical inputs cancel.
          const auto it = std::find(pins.begin(), pins.end(), ref);
          if (it != pins.end()) {
            pins.erase(it);
          } else {
            pins.push_back(ref);
          }
        }
        if (pins.empty()) {
          o.kind = Outcome::Kind::Const;
          o.const_value = phase;
          if (stats) stats->constants_folded++;
        } else if (pins.size() == 1) {
          if (phase) {
            o.kind = Outcome::Kind::Keep;
            o.type = GateType::Not;
            o.fanins = pins;
          } else {
            o.kind = Outcome::Kind::Alias;
            o.alias = pins[0];
          }
          if (stats) stats->gates_rewritten++;
        } else {
          o.kind = Outcome::Kind::Keep;
          o.type = phase ? GateType::Xnor : GateType::Xor;
          o.fanins = std::move(pins);
          if ((o.fanins.size() != nl.fanins(id).size() || o.type != t) &&
              stats) {
            stats->gates_rewritten++;
          }
        }
        break;
      }
      case GateType::Mux: {
        const auto [sv, sref] = resolve(nl.fanins(id)[0]);
        const auto [av, aref] = resolve(nl.fanins(id)[1]);
        const auto [bv, bref] = resolve(nl.fanins(id)[2]);
        if (sv) {
          // Select constant: alias to the chosen leg.
          const auto leg_v = *sv ? bv : av;
          const GateId leg_r = *sv ? bref : aref;
          if (leg_v) {
            o.kind = Outcome::Kind::Const;
            o.const_value = *leg_v;
            if (stats) stats->constants_folded++;
          } else {
            o.kind = Outcome::Kind::Alias;
            o.alias = leg_r;
            if (stats) stats->gates_rewritten++;
          }
        } else if (!av && !bv && aref == bref) {
          o.kind = Outcome::Kind::Alias;  // both legs identical
          o.alias = aref;
          if (stats) stats->gates_rewritten++;
        } else {
          // Keep; constant legs stay (they need tie cells at emit).
          o.kind = Outcome::Kind::Keep;
          o.type = GateType::Mux;
          o.fanins = nl.fanins(id);  // re-resolved at emit
        }
        break;
      }
      default:
        SP_ASSERT(false, "unexpected type in simplify pass");
    }
  }

  // DFFs: keep; fanin re-resolved at emit time.
  for (GateId dff : nl.dffs()) {
    out[dff].kind = Outcome::Kind::Keep;
    out[dff].type = GateType::Dff;
    out[dff].fanins = nl.fanins(dff);
  }
  return out;
}

}  // namespace

Netlist simplify(const Netlist& nl, SimplifyStats* stats) {
  SP_CHECK(nl.finalized(), "simplify requires a finalized netlist");
  SimplifyStats local;
  Netlist current = nl;

  for (int round = 0; round < 16; ++round) {
    SimplifyStats pass_stats;
    const std::vector<Outcome> out = analyze(current, &pass_stats);

    // Resolve helper over final outcomes.
    auto resolve = [&](GateId f) -> std::pair<std::optional<bool>, GateId> {
      GateId cur = f;
      for (;;) {
        const Outcome& o = out[cur];
        if (o.kind == Outcome::Kind::Const) {
          return {o.const_value, kInvalidGate};
        }
        if (o.kind == Outcome::Kind::Alias) {
          cur = o.alias;
          continue;
        }
        return {std::nullopt, cur};
      }
    };

    // Liveness over kept gates: POs and DFF D cones.
    std::vector<bool> live(current.num_gates(), false);
    std::vector<GateId> work;
    auto mark = [&](GateId g) {
      const auto [cv, ref] = resolve(g);
      if (cv) return;  // constant: tie cell emitted on demand
      if (!live[ref]) {
        live[ref] = true;
        work.push_back(ref);
      }
    };
    for (GateId po : current.outputs()) mark(po);
    for (GateId dff : current.dffs()) {
      live[dff] = true;
      mark(current.fanins(dff)[0]);
    }
    for (GateId pi : current.inputs()) live[pi] = true;
    while (!work.empty()) {
      const GateId g = work.back();
      work.pop_back();
      if (out[g].kind != Outcome::Kind::Keep) continue;
      for (GateId f : out[g].fanins) mark(f);
    }

    // Emit.
    NetlistBuilder builder(current.name());
    bool need_tie0 = false;
    bool need_tie1 = false;
    auto pin_name = [&](GateId f) -> std::string {
      const auto [cv, ref] = resolve(f);
      if (cv) {
        (*cv ? need_tie1 : need_tie0) = true;
        return *cv ? "tie1$$" : "tie0$$";
      }
      return current.gate_name(ref);
    };

    // First collect everything (tie flags fill in), then build.
    struct Emit {
      GateType type;
      std::string name;
      std::vector<std::string> fanins;
    };
    std::vector<Emit> emits;
    std::size_t kept_gates = 0;
    for (GateId id = 0; id < current.num_gates(); ++id) {
      const GateType t = current.type(id);
      if (t == GateType::Input) {
        emits.push_back({t, current.gate_name(id), {}});
        continue;
      }
      if (!live[id]) continue;
      const Outcome& o = out[id];
      if (o.kind != Outcome::Kind::Keep) continue;  // replaced everywhere
      if (t == GateType::Const0 || t == GateType::Const1) continue;
      std::vector<std::string> fans;
      for (GateId f : o.fanins) fans.push_back(pin_name(f));
      emits.push_back({o.type, current.gate_name(id), std::move(fans)});
      if (is_combinational(o.type)) ++kept_gates;
    }
    // POs that simplified to constants or aliases need surrogates keeping
    // their net names.
    std::vector<std::pair<std::string, std::string>> po_surrogates;
    for (GateId po : current.outputs()) {
      const Outcome& o = out[po];
      if (o.kind == Outcome::Kind::Keep && live[po]) continue;
      const std::string surrogate = pin_name(po);
      po_surrogates.emplace_back(current.gate_name(po), surrogate);
    }

    if (need_tie0) builder.add_gate(GateType::Const0, "tie0$$", {});
    if (need_tie1) builder.add_gate(GateType::Const1, "tie1$$", {});
    for (const Emit& e : emits) {
      if (e.type == GateType::Input) {
        builder.add_input(e.name);
      } else {
        builder.add_gate(e.type, e.name, e.fanins);
      }
    }
    for (const auto& [name, target] : po_surrogates) {
      builder.add_gate(GateType::Buf, name, {target});
    }
    for (GateId po : current.outputs()) {
      builder.add_output(current.gate_name(po));
    }
    Netlist next = builder.link();

    // Account removals.
    std::size_t before_comb = 0;
    std::size_t after_comb = 0;
    for (GateId id = 0; id < current.num_gates(); ++id) {
      if (is_combinational(current.type(id))) ++before_comb;
    }
    for (GateId id = 0; id < next.num_gates(); ++id) {
      if (is_combinational(next.type(id))) ++after_comb;
    }
    if (after_comb < before_comb) {
      pass_stats.gates_removed += before_comb - after_comb;
    }

    local.constants_folded += pass_stats.constants_folded;
    local.gates_rewritten += pass_stats.gates_rewritten;
    local.gates_removed += pass_stats.gates_removed;
    const bool converged = !pass_stats.changed() ||
                           (after_comb == before_comb &&
                            pass_stats.constants_folded == 0);
    current = std::move(next);
    if (converged) break;
  }
  if (stats) *stats = local;
  return current;
}

}  // namespace scanpower
