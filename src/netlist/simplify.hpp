#pragma once
// Structural netlist simplification: constant propagation, trivial-gate
// rewrites and dead-logic sweep.
//
// Used by the redundancy-removal pass (atpg/redundancy) after tying a
// proven-redundant line to its stuck value, and usable standalone to
// clean up generated or hand-written netlists.
//
// The rewrite is functionality-preserving at the PI/PO/DFF interface:
// primary inputs, outputs and flip-flops are never deleted (a DFF whose
// logic becomes constant still captures that constant).

#include "netlist/netlist.hpp"

namespace scanpower {

struct SimplifyStats {
  std::size_t constants_folded = 0;  ///< gates replaced by constants
  std::size_t gates_rewritten = 0;   ///< width reductions / buf collapses
  std::size_t gates_removed = 0;     ///< dead logic swept
  bool changed() const {
    return constants_folded || gates_rewritten || gates_removed;
  }
};

/// Returns a simplified, finalized copy of `nl`:
///  - constant inputs are folded through AND/NAND/OR/NOR/XOR/XNOR/NOT/BUF
///    and MUX (controlling values collapse the gate, non-controlling
///    values drop the pin; single-pin survivors become BUF/NOT);
///  - BUF chains collapse onto their drivers;
///  - combinational logic driving nothing (no path to a PO or DFF) is
///    removed.
/// Iterates to a fixpoint. `stats` (optional) receives the rewrite
/// counters.
Netlist simplify(const Netlist& nl, SimplifyStats* stats = nullptr);

}  // namespace scanpower
