#include "netlist/stats.hpp"

#include "util/strings.hpp"

namespace scanpower {

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.num_inputs = nl.inputs().size();
  s.num_outputs = nl.outputs().size();
  s.num_dffs = nl.dffs().size();
  s.depth = nl.depth();
  std::size_t fanout_sum = 0;
  std::size_t drivers = 0;
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    const Gate& g = nl.gate(id);
    s.by_type[static_cast<std::size_t>(g.type)]++;
    if (is_combinational(g.type) && g.type != GateType::Const0 &&
        g.type != GateType::Const1) {
      s.num_comb_gates++;
    }
    if (!g.fanouts.empty()) {
      fanout_sum += g.fanouts.size();
      drivers++;
      s.max_fanout = std::max(s.max_fanout, g.fanouts.size());
    }
  }
  s.avg_fanout = drivers ? static_cast<double>(fanout_sum) / static_cast<double>(drivers) : 0.0;
  return s;
}

std::string NetlistStats::to_string() const {
  std::string out = strprintf(
      "PI=%zu PO=%zu FF=%zu gates=%zu depth=%u avg_fanout=%.2f max_fanout=%zu",
      num_inputs, num_outputs, num_dffs, num_comb_gates, depth, avg_fanout,
      max_fanout);
  out += " [";
  bool first = true;
  for (int t = 0; t < kNumGateTypes; ++t) {
    if (by_type[static_cast<std::size_t>(t)] == 0) continue;
    if (!first) out += " ";
    first = false;
    out += strprintf("%s=%zu", gate_type_name(static_cast<GateType>(t)),
                     by_type[static_cast<std::size_t>(t)]);
  }
  out += "]";
  return out;
}

}  // namespace scanpower
