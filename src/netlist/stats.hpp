#pragma once
// Netlist statistics: the circuit-profile numbers reported in experiment
// headers and used by benchgen to validate synthetic circuits against the
// published ISCAS89 profiles.

#include <array>
#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace scanpower {

struct NetlistStats {
  std::size_t num_inputs = 0;      ///< primary inputs
  std::size_t num_outputs = 0;     ///< primary outputs
  std::size_t num_dffs = 0;        ///< state elements
  std::size_t num_comb_gates = 0;  ///< combinational gates excl. constants
  std::uint32_t depth = 0;         ///< logic depth (levels)
  double avg_fanout = 0.0;         ///< mean fanout of driving gates
  std::size_t max_fanout = 0;
  std::array<std::size_t, kNumGateTypes> by_type{};

  std::string to_string() const;
};

NetlistStats compute_stats(const Netlist& nl);

}  // namespace scanpower
