#include "netlist/verilog_io.hpp"

#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>

#include "netlist/builder.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

namespace {

struct Token {
  enum class Kind { Ident, Punct, Const0, Const1, End } kind = Kind::End;
  std::string text;
  int line = 0;
};

/// Strips comments and splits the stream into identifiers, punctuation
/// and 1'b0/1'b1 literals.
class Lexer {
 public:
  Lexer(std::string text, std::string file)
      : text_(std::move(text)), file_(std::move(file)) {}

  Token next() {
    skip_space_and_comments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) return t;  // End
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '\\') {
      t.kind = Token::Kind::Ident;
      if (c == '\\') ++pos_;  // escaped identifier: read to whitespace
      const std::size_t start = pos_;
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        const bool ok = c == '\\'
                            ? !std::isspace(static_cast<unsigned char>(d))
                            : (std::isalnum(static_cast<unsigned char>(d)) ||
                               d == '_' || d == '$');
        if (!ok) break;
        ++pos_;
      }
      t.text = text_.substr(start, pos_ - start);
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Only 1'b0 / 1'b1 are meaningful here.
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '\'')) {
        ++pos_;
      }
      const std::string lit = text_.substr(start, pos_ - start);
      if (lit == "1'b0") {
        t.kind = Token::Kind::Const0;
      } else if (lit == "1'b1") {
        t.kind = Token::Kind::Const1;
      } else {
        throw ParseError(file_, line_, "unsupported literal " + lit);
      }
      t.text = lit;
      return t;
    }
    t.kind = Token::Kind::Punct;
    t.text = std::string(1, c);
    ++pos_;
    return t;
  }

 private:
  void skip_space_and_comments() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        SP_CHECK(pos_ + 1 < text_.size(), "unterminated block comment");
        pos_ += 2;
        continue;
      }
      return;
    }
  }

  std::string text_;
  std::string file_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  Parser(const std::string& text, std::string file)
      : lexer_(text, file), file_(std::move(file)) {
    advance();
  }

  Netlist run() {
    expect_ident("module");
    const std::string mod_name = take_ident("module name");
    NetlistBuilder builder(mod_name);
    // Port list (names only; direction comes from declarations).
    expect_punct("(");
    while (!at_punct(")")) {
      take_ident("port name");
      if (at_punct(",")) advance();
    }
    expect_punct(")");
    expect_punct(";");

    std::size_t const_counter = 0;
    auto const_net = [&](bool value) {
      const std::string name = strprintf("const$%zu", const_counter++);
      builder.add_gate(value ? GateType::Const1 : GateType::Const0, name, {});
      return name;
    };

    while (!at_ident("endmodule")) {
      SP_CHECK(cur_.kind != Token::Kind::End,
               file_ + ": unexpected end of file (missing endmodule?)");
      const int line = cur_.line;
      const std::string head = take_ident("statement");
      if (head == "input" || head == "output" || head == "wire") {
        for (;;) {
          if (at_punct("[")) {
            throw ParseError(file_, line, "vector nets are not supported");
          }
          const std::string net = take_ident("net name");
          if (head == "input") builder.add_input(net);
          if (head == "output") outputs_.push_back(net);
          if (at_punct(",")) {
            advance();
            continue;
          }
          break;
        }
        expect_punct(";");
        continue;
      }
      if (head == "assign") {
        const std::string lhs = take_ident("assign target");
        expect_punct("=");
        if (cur_.kind == Token::Kind::Const0 ||
            cur_.kind == Token::Kind::Const1) {
          builder.add_gate(cur_.kind == Token::Kind::Const1 ? GateType::Const1
                                                            : GateType::Const0,
                           lhs, {});
          advance();
        } else {
          const std::string rhs = take_ident("assign source");
          builder.add_gate(GateType::Buf, lhs, {rhs});
        }
        expect_punct(";");
        continue;
      }
      // Primitive or dff instance.
      GateType type;
      if (head == "dff" || head == "DFF") {
        type = GateType::Dff;
      } else {
        const auto t = gate_type_from_name(head);
        if (!t || *t == GateType::Input || *t == GateType::Const0 ||
            *t == GateType::Const1) {
          throw ParseError(file_, line, "unknown construct '" + head + "'");
        }
        type = *t;
      }
      if (cur_.kind == Token::Kind::Ident) advance();  // instance name
      expect_punct("(");
      std::vector<std::string> conns;
      std::string q_net, d_net;
      bool named = false;
      while (!at_punct(")")) {
        if (at_punct(".")) {
          named = true;
          advance();
          const std::string port = take_ident("port name");
          expect_punct("(");
          std::string net;
          if (cur_.kind == Token::Kind::Const0 ||
              cur_.kind == Token::Kind::Const1) {
            net = const_net(cur_.kind == Token::Kind::Const1);
            advance();
          } else {
            net = take_ident("net");
          }
          expect_punct(")");
          if (port == "q" || port == "Q") {
            q_net = net;
          } else if (port == "d" || port == "D") {
            d_net = net;
          } else {
            throw ParseError(file_, line, "unknown named port ." + port);
          }
        } else if (cur_.kind == Token::Kind::Const0 ||
                   cur_.kind == Token::Kind::Const1) {
          conns.push_back(const_net(cur_.kind == Token::Kind::Const1));
          advance();
        } else {
          conns.push_back(take_ident("net"));
        }
        if (at_punct(",")) advance();
      }
      expect_punct(")");
      expect_punct(";");

      if (type == GateType::Dff) {
        if (named) {
          SP_CHECK(!q_net.empty() && !d_net.empty(),
                   file_ + ": dff needs .q and .d");
        } else {
          if (conns.size() != 2) {
            throw ParseError(file_, line, "dff expects (q, d)");
          }
          q_net = conns[0];
          d_net = conns[1];
        }
        builder.add_gate(GateType::Dff, q_net, {d_net});
        continue;
      }
      if (named) {
        throw ParseError(file_, line,
                         "named connections are only supported on dff");
      }
      if (conns.size() < 2) {
        throw ParseError(file_, line, "primitive needs an output and inputs");
      }
      const std::string out = conns.front();
      conns.erase(conns.begin());
      builder.add_gate(type, out, conns);
    }
    for (const std::string& net : outputs_) builder.add_output(net);
    return builder.link();
  }

 private:
  void advance() { cur_ = lexer_.next(); }
  bool at_punct(const std::string& p) const {
    return cur_.kind == Token::Kind::Punct && cur_.text == p;
  }
  bool at_ident(const std::string& s) const {
    return cur_.kind == Token::Kind::Ident && cur_.text == s;
  }
  void expect_punct(const std::string& p) {
    if (!at_punct(p)) {
      throw ParseError(file_, cur_.line, "expected '" + p + "'");
    }
    advance();
  }
  void expect_ident(const std::string& s) {
    if (!at_ident(s)) {
      throw ParseError(file_, cur_.line, "expected '" + s + "'");
    }
    advance();
  }
  std::string take_ident(const std::string& what) {
    if (cur_.kind != Token::Kind::Ident) {
      throw ParseError(file_, cur_.line, "expected " + what);
    }
    std::string s = cur_.text;
    advance();
    return s;
  }

  Lexer lexer_;
  std::string file_;
  Token cur_;
  std::vector<std::string> outputs_;
};

const char* verilog_primitive(GateType t) {
  switch (t) {
    case GateType::And: return "and";
    case GateType::Or: return "or";
    case GateType::Nand: return "nand";
    case GateType::Nor: return "nor";
    case GateType::Xor: return "xor";
    case GateType::Xnor: return "xnor";
    case GateType::Not: return "not";
    case GateType::Buf: return "buf";
    case GateType::Mux: return "mux";
    default: return nullptr;
  }
}

}  // namespace

Netlist parse_verilog(std::istream& in, const std::string& source_name) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parser(buf.str(), source_name).run();
}

Netlist parse_verilog_string(const std::string& text,
                             const std::string& source_name) {
  return Parser(text, source_name).run();
}

Netlist parse_verilog_file(const std::string& path) {
  std::ifstream in(path);
  SP_CHECK(in.good(), "cannot open verilog file: " + path);
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name.erase(0, slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name.erase(dot);
  (void)name;
  return parse_verilog(in, path);
}

void write_verilog(std::ostream& out, const Netlist& nl) {
  out << "// " << nl.name() << " -- written by scanpower\n";
  out << "module " << nl.name() << " (";
  bool first = true;
  for (GateId id : nl.inputs()) {
    out << (first ? "" : ", ") << nl.gate_name(id);
    first = false;
  }
  for (GateId id : nl.outputs()) {
    out << (first ? "" : ", ") << nl.gate_name(id);
    first = false;
  }
  out << ");\n";
  for (GateId id : nl.inputs()) {
    out << "  input " << nl.gate_name(id) << ";\n";
  }
  for (GateId id : nl.outputs()) {
    out << "  output " << nl.gate_name(id) << ";\n";
  }
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (nl.type(id) == GateType::Input || nl.is_output(id)) continue;
    out << "  wire " << nl.gate_name(id) << ";\n";
  }
  std::size_t n = 0;
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    const Gate& g = nl.gate(id);
    switch (g.type) {
      case GateType::Input:
        break;
      case GateType::Const0:
        out << "  assign " << g.name << " = 1'b0;\n";
        break;
      case GateType::Const1:
        out << "  assign " << g.name << " = 1'b1;\n";
        break;
      case GateType::Dff:
        out << "  dff ff" << n++ << " (.q(" << g.name << "), .d("
            << nl.gate_name(g.fanins[0]) << "));\n";
        break;
      default: {
        const char* prim = verilog_primitive(g.type);
        SP_ASSERT(prim != nullptr, "unwritable gate type");
        out << "  " << prim << " g" << n++ << " (" << g.name;
        for (GateId f : g.fanins) out << ", " << nl.gate_name(f);
        out << ");\n";
      }
    }
  }
  out << "endmodule\n";
}

std::string write_verilog_string(const Netlist& nl) {
  std::ostringstream out;
  write_verilog(out, nl);
  return out.str();
}

}  // namespace scanpower
