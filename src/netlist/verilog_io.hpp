#pragma once
// Structural (gate-level) Verilog reader/writer.
//
// Supported subset -- one module, scalar nets only:
//
//   module top (a, b, y);
//     input a, b;
//     output y;
//     wire w1;
//     nand g1 (w1, a, b);        // primitives: and or nand nor xor xnor
//     not     (y_n, w1);         //             not buf; instance name optional
//     mux m0  (y2, s, d0, d1);   // 2:1 mux (out, select, a, b) -- library cell
//     dff q0  (q, d);            // positional (q, d) or named (.q(q), .d(d))
//     assign y = w1;             // plain alias, or constants 1'b0 / 1'b1
//   endmodule
//
// Comments (// and /* */) are stripped; vectors/buses, expressions,
// parameters and hierarchies are rejected with a ParseError. The writer
// emits exactly this dialect, so write -> parse round-trips.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace scanpower {

Netlist parse_verilog(std::istream& in, const std::string& source_name);
Netlist parse_verilog_string(const std::string& text,
                             const std::string& source_name);
Netlist parse_verilog_file(const std::string& path);

void write_verilog(std::ostream& out, const Netlist& nl);
std::string write_verilog_string(const Netlist& nl);

}  // namespace scanpower
