#include "power/bsim.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace scanpower {

namespace {
constexpr double kBoltzmannOverQ = 8.617333262e-5;  // V/K

double thermal_voltage(const BsimParams& p) {
  return kBoltzmannOverQ * p.temperature_k;
}
}  // namespace

double bsim_subthreshold_a(const BsimParams& p, double vgs, double vds,
                           double vsb, bool pmos) {
  const double vt = thermal_voltage(p);
  const double u0 = pmos ? p.mobility_p : p.mobility_n;
  const double w = pmos ? p.w_eff_p_m : p.w_eff_n_m;
  const double vt0 = pmos ? p.vt0_p : p.vt0_n;
  const double a0 = u0 * p.cox_f_per_m2 * (w / p.l_eff_m) * vt * vt *
                    std::exp(1.8);
  const double exponent =
      (vgs - vt0 - p.body_delta * vsb + p.dibl_eta * vds) /
      (p.subthreshold_n * vt);
  const double drain_factor = 1.0 - std::exp(-vds / vt);
  return a0 * std::exp(exponent) * drain_factor;
}

double bsim_gate_tunneling_a(const BsimParams& p, double vox, bool pmos) {
  if (vox <= 0.0) return 0.0;
  SP_CHECK(vox < p.phi_ox_v, "bsim: V_ox must be below the barrier height");
  const double field = vox / p.tox_m;  // V/m
  const double shape = 1.0 - std::pow(1.0 - vox / p.phi_ox_v, 1.5);
  const double density = p.tunnel_a * field * field *
                         std::exp(-p.tunnel_b * shape / field);  // A/m^2
  const double w = pmos ? p.w_eff_p_m : p.w_eff_n_m;
  // Hole tunneling through the thicker effective barrier is weaker.
  const double polarity = pmos ? 0.12 : 1.0;
  return polarity * density * w * p.l_eff_m;
}

LeakageParams derive_leakage_params(const BsimParams& p) {
  constexpr double kToNa = 1e9;
  LeakageParams out;

  // Single off device with grounded source, full V_DS: the "weak"
  // (bottom-of-stack) and parallel-bank cases.
  const double n_off_full =
      bsim_subthreshold_a(p, 0.0, p.vdd, 0.0, /*pmos=*/false) * kToNa;
  const double p_off_full =
      bsim_subthreshold_a(p, 0.0, p.vdd, 0.0, /*pmos=*/true) * kToNa;
  out.nmos_off_weak = n_off_full;
  out.nmos_off_parallel = 1.1 * n_off_full;  // junction/band components
  out.pmos_off_parallel = p_off_full;
  out.pmos_off_weak = 0.85 * p_off_full;

  // "Strong" stack position: the off device sits above ON devices, so its
  // source floats up by the internal-node voltage V_x. Self-consistent
  // V_x solves I(V_x) continuity; a fixed small bias captures the
  // first-order effect (negative V_GS + body reverse bias + reduced
  // V_DS).
  const double vx = 0.065;
  out.nmos_off_strong =
      bsim_subthreshold_a(p, -vx, p.vdd - vx, vx, /*pmos=*/false) * kToNa;
  out.pmos_off_strong =
      bsim_subthreshold_a(p, -vx, p.vdd - vx, vx, /*pmos=*/true) * kToNa;

  // Two stacked off devices: the internal node settles where the upper
  // and lower currents match; the net effect is a further suppression
  // relative to the strong single-off case.
  const double vx2 = 0.065 + 0.003;
  const double two_off =
      bsim_subthreshold_a(p, -vx2, p.vdd - vx2, vx2, /*pmos=*/false) * kToNa;
  out.nmos_stack_beta =
      out.nmos_off_strong > 0 ? std::min(1.0, two_off / out.nmos_off_strong)
                              : 0.9;
  out.pmos_stack_beta = out.nmos_stack_beta * 0.97;

  // Gate tunneling of ON devices at V_ox ~ VDD.
  out.gate_leak_nmos_on =
      bsim_gate_tunneling_a(p, p.vdd, /*pmos=*/false) * kToNa;
  out.gate_leak_pmos_on =
      bsim_gate_tunneling_a(p, p.vdd, /*pmos=*/true) * kToNa;
  return out;
}

LeakageModel physical_leakage_model(const BsimParams& p) {
  return LeakageModel(derive_leakage_params(p));
}

}  // namespace scanpower
