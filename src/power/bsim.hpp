#pragma once
// Device-level leakage physics (Section 3 of the paper).
//
// The paper estimates leakage from two mechanisms:
//   (2) BSIM subthreshold conduction
//         I_sub = A0 * exp(q (V_GS - V_T0 - delta*V_SB + eta*V_DS)/(n k T))
//                    * (1 - exp(-q V_DS / (k T)))
//         A0    = u0 Cox (W/L) (kT/q)^2 e^1.8
//   (4) direct gate-oxide tunneling
//         J_DT  = A (V_ox/T_ox)^2
//                 exp( -B (1 - (1 - V_ox/phi_ox)^1.5) / (V_ox/T_ox) )
//
// The production tables in LeakageModel are *calibrated* to the paper's
// HSPICE NAND2 data; this module provides the physics path: evaluate the
// equations for a 45 nm-class device, derive the atomic LeakageParams
// (single-device off currents, stack factors, gate-leak contributions)
// from them, and let experiments explore technology trends (V_T, T_ox,
// temperature) that the paper argues make static power dominant.

#include "power/leakage_model.hpp"

namespace scanpower {

struct BsimParams {
  // Electrical / technology parameters (45 nm-class defaults, 0.9 V).
  double temperature_k = 300.0;
  double vdd = 0.9;
  double vt0_n = 0.20;        ///< NMOS zero-bias threshold (V)
  double vt0_p = 0.195;        ///< PMOS magnitude (V)
  double subthreshold_n = 1.5;   ///< swing coefficient n
  double dibl_eta = 0.08;     ///< drain-induced barrier lowering
  double body_delta = 0.12;   ///< body-effect coefficient
  double mobility_n = 0.045;  ///< u0, m^2/Vs (effective, short channel)
  double mobility_p = 0.020;
  double cox_f_per_m2 = 0.017;  ///< gate capacitance per area (F/m^2)
  double w_eff_n_m = 90e-9;   ///< effective width
  double w_eff_p_m = 135e-9;
  double l_eff_m = 45e-9;     ///< effective channel length
  // Tunneling (eq. 4) parameters.
  double tox_m = 1.2e-9;          ///< oxide thickness
  double phi_ox_v = 3.1;          ///< barrier height (electrons, Si/SiO2)
  double tunnel_a = 4.8e-6;       ///< A (A/V^2), lumped prefactor
  double tunnel_b = 2.5e10;       ///< B (V/m)
};

/// Subthreshold current (amperes) of one device per eq. (2).
/// `pmos` selects the PMOS parameter set (voltages passed as magnitudes).
double bsim_subthreshold_a(const BsimParams& p, double vgs, double vds,
                           double vsb, bool pmos);

/// Direct-tunneling gate current (amperes) of one ON device per eq. (4):
/// density times gate area.
double bsim_gate_tunneling_a(const BsimParams& p, double vox, bool pmos);

/// Derives the atomic LeakageParams (in nA) from the device equations:
///  - parallel off currents at full V_DS,
///  - stack-position asymmetry from the internal-node bias of a series
///    stack (strong position ~ source raised, body reverse-biased),
///  - stack factors from the two-off internal equilibrium,
///  - gate tunneling of ON devices at V_ox = VDD.
LeakageParams derive_leakage_params(const BsimParams& p);

/// Convenience: a LeakageModel built from physics instead of the
/// calibrated table. Useful for technology-trend sweeps; not bit-exact
/// with Figure 2.
LeakageModel physical_leakage_model(const BsimParams& p = {});

}  // namespace scanpower
