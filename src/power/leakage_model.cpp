#include "power/leakage_model.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

namespace {

/// Linear interpolation of single-off-device leakage across stack
/// positions: position 0 suppresses most (source closest to the internal
/// node chain), the last position least.
double interp_position(double strong, double weak, int pos, int width) {
  if (width <= 1) return weak;
  return strong + (weak - strong) * static_cast<double>(pos) /
                      static_cast<double>(width - 1);
}

}  // namespace

LeakageModel::LeakageModel(LeakageParams params) : params_(params) {
  // Precompute tables for the mapping library: INV + NAND/NOR widths 2..4.
  tables_.assign(kNumGateTypes, {});
  auto fill = [&](GateType t, int width) {
    auto& per_width = tables_[static_cast<std::size_t>(t)];
    if (per_width.size() <= static_cast<std::size_t>(width)) {
      per_width.resize(static_cast<std::size_t>(width) + 1);
    }
    auto& table = per_width[static_cast<std::size_t>(width)];
    table.resize(1u << width);
    for (unsigned p = 0; p < table.size(); ++p) {
      switch (t) {
        case GateType::Not: table[p] = inv_leakage(p); break;
        case GateType::Nand: table[p] = nand_leakage(width, p); break;
        case GateType::Nor: table[p] = nor_leakage(width, p); break;
        default: SP_ASSERT(false, "unexpected table fill");
      }
    }
  };
  fill(GateType::Not, 1);
  for (int w = 2; w <= kMaxWidth; ++w) {
    fill(GateType::Nand, w);
    fill(GateType::Nor, w);
  }
}

double LeakageModel::nand_leakage(int width, unsigned pattern) const {
  const unsigned all = (1u << width) - 1;
  if ((pattern & all) == all) {
    // Output 0: every PMOS of the parallel pull-up is off; every NMOS on.
    return width * params_.pmos_off_parallel +
           width * params_.gate_leak_nmos_on;
  }
  // Output 1: the NMOS series stack is blocked by the off devices.
  int num_off = 0;
  int first_off = -1;
  for (int i = 0; i < width; ++i) {
    if (((pattern >> i) & 1u) == 0) {
      ++num_off;
      if (first_off < 0) first_off = i;
    }
  }
  const double single = interp_position(params_.nmos_off_strong,
                                        params_.nmos_off_weak, first_off, width);
  double sub = single;
  for (int k = 1; k < num_off; ++k) sub *= params_.nmos_stack_beta;
  const int num_on = width - num_off;
  // Off inputs drive ON PMOS devices (gate tunneling), on inputs drive ON
  // NMOS devices.
  return sub + num_off * params_.gate_leak_pmos_on +
         num_on * params_.gate_leak_nmos_on;
}

double LeakageModel::nor_leakage(int width, unsigned pattern) const {
  const unsigned all = (1u << width) - 1;
  if ((pattern & all) == 0) {
    // Output 1: every NMOS of the parallel pull-down is off; PMOS stack on.
    return width * params_.nmos_off_parallel +
           width * params_.gate_leak_pmos_on;
  }
  // Output 0 or blocked pull-up: the PMOS series stack has off devices at
  // the pins driven to 1.
  int num_off = 0;
  int first_off = -1;
  for (int i = 0; i < width; ++i) {
    if (((pattern >> i) & 1u) == 1) {
      ++num_off;
      if (first_off < 0) first_off = i;
    }
  }
  const double single = interp_position(params_.pmos_off_strong,
                                        params_.pmos_off_weak, first_off, width);
  double sub = single;
  for (int k = 1; k < num_off; ++k) sub *= params_.pmos_stack_beta;
  const int num_on_pmos = width - num_off;
  return sub + num_off * params_.gate_leak_nmos_on +
         num_on_pmos * params_.gate_leak_pmos_on;
}

double LeakageModel::inv_leakage(unsigned pattern) const {
  if ((pattern & 1u) == 0) {
    // NMOS off, PMOS on.
    return params_.nmos_off_parallel + params_.gate_leak_pmos_on;
  }
  return params_.pmos_off_parallel + params_.gate_leak_nmos_on;
}

double LeakageModel::composite_leakage(GateType type, int width,
                                       unsigned pattern) const {
  auto bit = [&](int i) { return ((pattern >> i) & 1u) != 0; };
  switch (type) {
    case GateType::Buf: {
      // Two inverters back to back.
      return inv_leakage(pattern & 1u) + inv_leakage(bit(0) ? 0u : 1u);
    }
    case GateType::And: {
      bool all = true;
      for (int i = 0; i < width; ++i) all = all && bit(i);
      return nand_leakage(width, pattern) + inv_leakage(all ? 0u : 1u);
    }
    case GateType::Or: {
      bool any = false;
      for (int i = 0; i < width; ++i) any = any || bit(i);
      return nor_leakage(width, pattern) + inv_leakage(any ? 0u : 1u);
    }
    case GateType::Xor:
    case GateType::Xnor: {
      // Techmap structure: chain of 2-input XOR stages, each built from
      // four NAND2 cells; XNOR appends an inverter.
      double total = 0.0;
      bool acc = bit(0);
      for (int i = 1; i < width; ++i) {
        const bool b = bit(i);
        const bool m = !(acc && b);
        const bool pa = !(acc && m);
        const bool pb = !(b && m);
        total += nand_leakage(2, static_cast<unsigned>(acc) |
                                     (static_cast<unsigned>(b) << 1));
        total += nand_leakage(2, static_cast<unsigned>(acc) |
                                     (static_cast<unsigned>(m) << 1));
        total += nand_leakage(2, static_cast<unsigned>(b) |
                                     (static_cast<unsigned>(m) << 1));
        total += nand_leakage(2, static_cast<unsigned>(pa) |
                                     (static_cast<unsigned>(pb) << 1));
        acc = !(pa && pb);
      }
      if (type == GateType::Xnor) {
        total += inv_leakage(acc ? 1u : 0u);
      }
      return total;
    }
    case GateType::Mux: {
      // inv(s); ta = NAND(a, !s); tb = NAND(b, s); out = NAND(ta, tb).
      const bool s = bit(0);
      const bool a = bit(1);
      const bool b = bit(2);
      const bool ns = !s;
      const bool ta = !(a && ns);
      const bool tb = !(b && s);
      double total = inv_leakage(s ? 1u : 0u);
      total += nand_leakage(2, static_cast<unsigned>(a) |
                                   (static_cast<unsigned>(ns) << 1));
      total += nand_leakage(2, static_cast<unsigned>(b) |
                                   (static_cast<unsigned>(s) << 1));
      total += nand_leakage(2, static_cast<unsigned>(ta) |
                                   (static_cast<unsigned>(tb) << 1));
      return total;
    }
    default:
      SP_ASSERT(false, "composite_leakage: unsupported type");
  }
}

double LeakageModel::cell_leakage_na(GateType type, int width,
                                     unsigned pattern) const {
  switch (type) {
    case GateType::Input:
    case GateType::Dff:
    case GateType::Const0:
    case GateType::Const1:
      return 0.0;  // the paper reports the combinational part only
    case GateType::Not:
      return tables_[static_cast<std::size_t>(type)][1][pattern & 1u];
    case GateType::Nand:
    case GateType::Nor: {
      SP_CHECK(width >= 2, "leakage: gate width must be >= 2");
      if (width <= kMaxWidth) {
        return tables_[static_cast<std::size_t>(type)]
                      [static_cast<std::size_t>(width)]
                      [pattern & ((1u << width) - 1)];
      }
      // Wider than the characterized library: compute analytically.
      return type == GateType::Nand ? nand_leakage(width, pattern)
                                    : nor_leakage(width, pattern);
    }
    default:
      return composite_leakage(type, width, pattern);
  }
}

double LeakageModel::cell_expected_leakage_na(
    GateType type, std::span<const Logic> ins) const {
  const int width = static_cast<int>(ins.size());
  SP_CHECK(width <= 20, "leakage: gate too wide");
  // Collect X positions; average uniformly over their assignments.
  unsigned base = 0;
  std::vector<int> xpos;
  for (int i = 0; i < width; ++i) {
    if (ins[static_cast<std::size_t>(i)] == Logic::One) base |= 1u << i;
    if (ins[static_cast<std::size_t>(i)] == Logic::X) xpos.push_back(i);
  }
  if (xpos.empty()) return cell_leakage_na(type, width, base);
  SP_CHECK(xpos.size() <= 12, "leakage: too many unknown inputs on one gate");
  double sum = 0.0;
  const unsigned combos = 1u << xpos.size();
  for (unsigned c = 0; c < combos; ++c) {
    unsigned p = base;
    for (std::size_t j = 0; j < xpos.size(); ++j) {
      if ((c >> j) & 1u) p |= 1u << xpos[j];
    }
    sum += cell_leakage_na(type, width, p);
  }
  return sum / static_cast<double>(combos);
}

double LeakageModel::circuit_leakage_na(const Netlist& nl,
                                        std::span<const Logic> values) const {
  SP_CHECK(values.size() == nl.num_gates(),
           "circuit_leakage_na: value vector size mismatch");
  double total = 0.0;
  std::vector<Logic> ins;
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    const Gate& g = nl.gate(id);
    if (!is_combinational(g.type) || g.type == GateType::Const0 ||
        g.type == GateType::Const1) {
      continue;
    }
    ins.clear();
    for (GateId f : g.fanins) ins.push_back(values[f]);
    total += cell_expected_leakage_na(g.type, ins);
  }
  return total;
}

double LeakageModel::circuit_leakage_power_uw(const Netlist& nl,
                                              std::span<const Logic> values,
                                              double vdd) const {
  // nA * V = nW; convert to uW.
  return circuit_leakage_na(nl, values) * vdd * 1e-3;
}

GateLeakageTables::GateLeakageTables(const Netlist& nl,
                                     const LeakageModel& model)
    : model_(&model) {
  const std::size_t n = nl.num_gates();
  width_.assign(n, 0);
  leakless_.assign(n, 1);
  offset_.assign(n, kNone);
  xoffset_.assign(n, kNone);

  // Shared tables keyed by (type, width): the leakage of a cell depends
  // only on its shape and input state, never on which gate instantiates
  // it.
  std::map<std::pair<GateType, int>, std::pair<std::uint32_t, std::uint32_t>>
      shapes;
  for (GateId id = 0; id < n; ++id) {
    const GateType t = nl.type(id);
    if (!is_combinational(t) || t == GateType::Const0 ||
        t == GateType::Const1) {
      continue;  // sources and constants report zero leakage
    }
    const int w = static_cast<int>(nl.fanin_span(id).size());
    // Same ceiling as cell_expected_leakage_na: wider gates have no
    // leakage semantics anywhere in the stack, and width_ must not wrap.
    SP_CHECK(w <= 20, "leakage tables: gate too wide");
    leakless_[id] = 0;
    width_[id] = static_cast<std::uint8_t>(w);
    if (w > kMaxTableWidth) continue;  // analytic per-lane fallback

    auto [it, inserted] = shapes.try_emplace({t, w}, kNone, kNone);
    if (inserted) {
      const std::uint32_t off = static_cast<std::uint32_t>(storage_.size());
      const unsigned states = 1u << w;
      for (unsigned s = 0; s < states; ++s) {
        storage_.push_back(model.cell_leakage_na(t, w, s));
      }
      std::uint32_t xoff = kNone;
      if (w <= kMaxXTableWidth) {
        xoff = static_cast<std::uint32_t>(xstorage_.size());
        xstorage_.resize(xstorage_.size() + (1u << (2 * w)), 0.0);
        double* xt = xstorage_.data() + xoff;
        const double* base = storage_.data() + off;
        for (unsigned m = 0; m < states; ++m) {
          // X positions of this mask, ascending -- the same enumeration
          // order cell_expected_leakage_na uses, so sums round
          // identically.
          int xpos[kMaxXTableWidth];
          int nx = 0;
          for (int b = 0; b < w; ++b) {
            if ((m >> b) & 1u) xpos[nx++] = b;
          }
          const unsigned combos = 1u << nx;
          for (unsigned s = 0; s < states; ++s) {
            if ((s & m) != 0) continue;  // state bits under X are unused
            double sum = 0.0;
            for (unsigned c = 0; c < combos; ++c) {
              unsigned p = s;
              for (int j = 0; j < nx; ++j) {
                if ((c >> j) & 1u) p |= 1u << xpos[j];
              }
              sum += base[p];
            }
            xt[s | (m << w)] =
                nx == 0 ? base[s] : sum / static_cast<double>(combos);
          }
        }
      }
      it->second = {off, xoff};
    }
    offset_[id] = it->second.first;
    xoffset_[id] = it->second.second;
  }
}

std::pair<unsigned, double> LeakageModel::min_leakage_pattern(GateType type,
                                                              int width) const {
  unsigned best = 0;
  double best_leak = cell_leakage_na(type, width, 0);
  for (unsigned p = 1; p < (1u << width); ++p) {
    const double l = cell_leakage_na(type, width, p);
    if (l < best_leak) {
      best_leak = l;
      best = p;
    }
  }
  return {best, best_leak};
}

}  // namespace scanpower
