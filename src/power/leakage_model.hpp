#pragma once
// Per-cell, per-input-state leakage model (45 nm, 0.9 V).
//
// The paper characterizes every library cell with HSPICE/BSIM4 and stores
// the results "in several tables containing the leakage of each gate for a
// given input pattern". We reproduce that flow with an analytic
// transistor-stack model (subthreshold + gate tunneling components,
// following eqs. (2) and (4) of the paper in spirit) whose atomic
// parameters are *calibrated so the NAND2 table reproduces the paper's
// Figure 2 exactly*:
//
//        A B   leakage (nA)
//        0 0   78
//        0 1   73
//        1 0   264
//        1 1   408
//
// Pin order convention: pin 0 is the transistor position whose single-off
// state suppresses the series stack most (the "A" input of Figure 2).
// This asymmetry is what makes pin reordering (Section 4 of the paper)
// profitable: NAND2 "01" leaks 73 nA while "10" leaks 264 nA.
//
// Supported library: INV, NAND2-4, NOR2-4 (the paper's mapping library),
// plus BUF/AND/OR/XOR/XNOR/MUX composites for convenience when estimating
// unmapped netlists. Input/DFF/Const cells are reported as zero: the paper
// measures the *combinational part* only.

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic.hpp"

namespace scanpower {

/// Atomic device-leakage parameters (nA). Defaults reproduce Figure 2.
struct LeakageParams {
  // Subthreshold, NMOS series stack (NAND pull-down):
  double nmos_off_strong = 30.0;   ///< single off device at pin 0
  double nmos_off_weak = 221.0;    ///< single off device at last pin
  double nmos_stack_beta = 28.0 / 30.0;  ///< extra-off multiplicative factor
  // Subthreshold, PMOS:
  double pmos_off_parallel = 186.0;  ///< one off PMOS of a parallel bank
  double pmos_off_strong = 21.0;     ///< single off device at pin 0 (NOR stack)
  double pmos_off_weak = 155.0;      ///< single off device at last pin
  double pmos_stack_beta = 0.90;
  double nmos_off_parallel = 240.0;  ///< one off NMOS of a parallel bank (NOR)
  // Gate tunneling through ON devices:
  double gate_leak_pmos_on = 25.0;
  double gate_leak_nmos_on = 18.0;
};

class LeakageModel {
 public:
  explicit LeakageModel(LeakageParams params = {});

  const LeakageParams& params() const { return params_; }

  /// Leakage (nA) of one cell in a fully specified input state.
  /// `pattern` bit i (LSB = pin 0) is the value of pin i.
  double cell_leakage_na(GateType type, int width, unsigned pattern) const;

  /// Expected leakage (nA) with X inputs averaged uniformly over {0,1}.
  double cell_expected_leakage_na(GateType type, std::span<const Logic> ins) const;

  /// Total combinational leakage (nA) for a full value assignment
  /// (indexed by GateId, as produced by Simulator::values()).
  double circuit_leakage_na(const Netlist& nl, std::span<const Logic> values) const;

  /// Static power in uW at the given supply: sum(I_leak) * VDD.
  double circuit_leakage_power_uw(const Netlist& nl,
                                  std::span<const Logic> values,
                                  double vdd = 0.9) const;

  /// Best (minimum-leakage) input pattern of a cell and its value, over
  /// fully specified patterns. Used by tests and the pin-reorder sanity
  /// checks.
  std::pair<unsigned, double> min_leakage_pattern(GateType type, int width) const;

  static constexpr int kMaxWidth = 4;

 private:
  double nand_leakage(int width, unsigned pattern) const;
  double nor_leakage(int width, unsigned pattern) const;
  double inv_leakage(unsigned pattern) const;
  double composite_leakage(GateType type, int width, unsigned pattern) const;

  LeakageParams params_;
  // tables_[type][width] -> vector of 2^width entries (nA). Composite and
  // unsupported widths computed on demand.
  std::vector<std::vector<std::vector<double>>> tables_;
};

/// Per-netlist state->leakage tables, precomputed once per (netlist,
/// model) pair for the packed leakage engine: every leaking gate gets a
/// 2^fanin table indexed by its fully specified input state (bit i = pin
/// i), plus an expected-leakage table indexed by (state, xmask) pairs for
/// 3-valued evaluation (entries average cell_leakage_na uniformly over
/// the X positions, with exactly the arithmetic of
/// cell_expected_leakage_na, so packed and scalar evaluation agree
/// bit-for-bit). Tables are deduplicated by (type, width), so the
/// footprint is per-library-shape, not per-gate. Instances are immutable
/// after construction and safe to share across worker threads.
class GateLeakageTables {
 public:
  /// Widest gate tabulated (2^w doubles per distinct shape); wider gates
  /// fall back to analytic per-lane evaluation.
  static constexpr int kMaxTableWidth = 12;
  /// Widest gate with a precomputed (state, xmask) expected table
  /// (4^w doubles per distinct shape).
  static constexpr int kMaxXTableWidth = 6;

  GateLeakageTables(const Netlist& nl, const LeakageModel& model);

  const LeakageModel& model() const { return *model_; }

  int width(GateId id) const { return width_[id]; }
  /// True for gates that never leak (sources, constants).
  bool leakless(GateId id) const { return leakless_[id] != 0; }

  /// 2^width state table of gate id, or nullptr when the gate is leakless
  /// or wider than kMaxTableWidth.
  const double* table(GateId id) const {
    return offset_[id] == kNone ? nullptr : storage_.data() + offset_[id];
  }
  /// Expected-leakage table indexed by `state | (xmask << width)` with
  /// state & xmask == 0, or nullptr (leakless / wider than
  /// kMaxXTableWidth).
  const double* xtable(GateId id) const {
    return xoffset_[id] == kNone ? nullptr : xstorage_.data() + xoffset_[id];
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  const LeakageModel* model_;
  std::vector<std::uint8_t> width_;
  std::vector<std::uint8_t> leakless_;
  std::vector<std::uint32_t> offset_;   ///< per gate, into storage_
  std::vector<std::uint32_t> xoffset_;  ///< per gate, into xstorage_
  std::vector<double> storage_;
  std::vector<double> xstorage_;
};

}  // namespace scanpower
