#include "power/observability.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>

#include "atpg/sim_kernels.hpp"
#include "power/packed_leakage.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scanpower {

LeakageObservability::LeakageObservability(const Netlist& nl,
                                           const LeakageModel& model,
                                           ObservabilityOptions opts) {
  SP_CHECK(nl.finalized(), "observability requires a finalized netlist");
  obs_.assign(nl.num_gates(), 0.0);
  if (opts.method == ObservabilityMethod::MonteCarlo) {
    if (opts.packed) {
      compute_monte_carlo_packed(nl, model, opts);
    } else {
      compute_monte_carlo_scalar(nl, model, opts);
    }
  } else {
    compute_probabilistic(nl, model);
  }
}

void LeakageObservability::compute_monte_carlo_scalar(
    const Netlist& nl, const LeakageModel& model,
    const ObservabilityOptions& opts) {
  SP_CHECK(opts.samples > 1, "observability: need at least 2 samples");
  Rng rng(opts.seed);
  Simulator sim(nl);
  const std::size_t n = nl.num_gates();
  std::vector<double> sum1(n, 0.0);
  std::vector<double> sum0(n, 0.0);
  std::vector<std::uint32_t> cnt1(n, 0);

  double leak_total = 0.0;
  for (int s = 0; s < opts.samples; ++s) {
    for (GateId pi : nl.inputs()) sim.set_input(pi, from_bool(rng.next_bool()));
    for (GateId ff : nl.dffs()) sim.set_state(ff, from_bool(rng.next_bool()));
    sim.eval_incremental();
    const double leak = model.circuit_leakage_na(nl, sim.values());
    leak_total += leak;
    for (GateId id = 0; id < n; ++id) {
      if (sim.value(id) == Logic::One) {
        sum1[id] += leak;
        ++cnt1[id];
      } else {
        sum0[id] += leak;
      }
    }
  }
  mean_leakage_na_ = leak_total / opts.samples;
  for (GateId id = 0; id < n; ++id) {
    const std::uint32_t c1 = cnt1[id];
    const std::uint32_t c0 = static_cast<std::uint32_t>(opts.samples) - c1;
    if (c1 == 0 || c0 == 0) {
      obs_[id] = 0.0;  // line never observed both ways: no preference signal
      continue;
    }
    obs_[id] = sum1[id] / c1 - sum0[id] / c0;
  }
}

void LeakageObservability::compute_monte_carlo_packed(
    const Netlist& nl, const LeakageModel& model,
    const ObservabilityOptions& opts) {
  SP_CHECK(opts.samples > 1, "observability: need at least 2 samples");
  SP_CHECK(is_valid_block_words(opts.block_words),
           "observability: block_words must be 1, 2, 4, 8, 16 or 32");
  const std::size_t n = nl.num_gates();
  const std::size_t samples = static_cast<std::size_t>(opts.samples);
  const int W = opts.block_words;
  const std::size_t lanes = static_cast<std::size_t>(W) * 64;
  const std::size_t nblocks = (samples + lanes - 1) / lanes;
  // Borrow the caller's pool/tables when provided (ScanSession); the
  // sweep is bit-identical for any pool size, so sharing is result-free.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool_ptr = opts.pool;
  if (pool_ptr == nullptr) {
    owned_pool =
        std::make_unique<ThreadPool>(ThreadPool::resolve_threads(opts.num_threads));
    pool_ptr = owned_pool.get();
  }
  ThreadPool& pool = *pool_ptr;
  const int T = pool.size();

  std::unique_ptr<const GateLeakageTables> owned_tables;
  if (opts.tables == nullptr) {
    owned_tables = std::make_unique<GateLeakageTables>(nl, model);
  }
  const GateLeakageTables& tables =
      opts.tables ? *opts.tables : *owned_tables;
  const PackedLeakageEvaluator leval(nl, tables, opts.backend);
  const SimKernels& kern = sim_kernels(resolve_backend(opts.backend, W));

  // Per-worker simulation state; one block of samples per worker per
  // wave. Block b draws from a generator seeded by (opts.seed, b) alone,
  // and block partials are merged on the caller thread in ascending block
  // order (ordered_block_sweep), so the reduction -- and therefore every
  // observability value -- is bit-identical for any thread count.
  struct Partial {
    std::vector<double> sum1;
    std::vector<std::uint32_t> cnt1;
    double total = 0.0;
  };
  std::vector<Partial> parts(static_cast<std::size_t>(T));
  std::vector<BlockSimulator> sims;
  std::vector<std::vector<double>> leak_buf(static_cast<std::size_t>(T));
  sims.reserve(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    sims.emplace_back(nl, W, opts.backend);
    leak_buf[static_cast<std::size_t>(t)].resize(lanes);
    parts[static_cast<std::size_t>(t)].sum1.resize(n);
    parts[static_cast<std::size_t>(t)].cnt1.resize(n);
  }

  std::vector<double> sum1(n, 0.0);
  std::vector<double> sum0(n, 0.0);
  std::vector<std::uint32_t> cnt1(n, 0);
  double leak_total = 0.0;

  ordered_block_sweep(
      pool, nblocks,
      [&](int t, std::size_t b) {
        Partial& part = parts[static_cast<std::size_t>(t)];
        BlockSimulator& sim = sims[static_cast<std::size_t>(t)];
        Rng rng(block_seed(opts.seed, b));
        for (GateId pi : nl.inputs()) {
          for (int w = 0; w < W; ++w) {
            sim.set_source_word(pi, w, rng.next_u64());
          }
        }
        for (GateId ff : nl.dffs()) {
          for (int w = 0; w < W; ++w) {
            sim.set_source_word(ff, w, rng.next_u64());
          }
        }
        sim.eval();
        double* const leak = leak_buf[static_cast<std::size_t>(t)].data();
        leval.eval(sim, {leak, lanes});

        const std::size_t base = b * lanes;
        const std::size_t batch = std::min(lanes, samples - base);
        PatternWord valid[32];
        for (int w = 0; w < W; ++w) {
          const std::size_t lane0 = static_cast<std::size_t>(w) * 64;
          valid[w] = batch >= lane0 + 64 ? ~PatternWord{0}
                     : batch > lane0 ? (PatternWord{1} << (batch - lane0)) - 1
                                     : 0;
        }
        part.total = 0.0;
        for (std::size_t lane = 0; lane < batch; ++lane) {
          part.total += leak[lane];
        }
        // Per-gate masked-add reduction through the backend kernel
        // (obs_reduce's four-accumulator interleave is the reduction's
        // definition in every backend, so values stay bit-identical).
        for (GateId id = 0; id < n; ++id) {
          double s1 = 0.0;
          std::uint32_t c1 = 0;
          kern.obs_reduce(sim.block(id), valid, leak, W, &s1, &c1);
          part.sum1[id] = s1;
          part.cnt1[id] = c1;
        }
      },
      [&](int t, std::size_t) {
        const Partial& part = parts[static_cast<std::size_t>(t)];
        leak_total += part.total;
        for (GateId id = 0; id < n; ++id) {
          sum1[id] += part.sum1[id];
          sum0[id] += part.total - part.sum1[id];
          cnt1[id] += part.cnt1[id];
        }
      });

  mean_leakage_na_ = leak_total / static_cast<double>(samples);
  for (GateId id = 0; id < n; ++id) {
    const std::uint32_t c1 = cnt1[id];
    const std::uint32_t c0 = static_cast<std::uint32_t>(samples) - c1;
    if (c1 == 0 || c0 == 0) {
      obs_[id] = 0.0;  // line never observed both ways: no preference signal
      continue;
    }
    obs_[id] = sum1[id] / c1 - sum0[id] / c0;
  }
}

std::vector<double> signal_probabilities(const Netlist& nl) {
  std::vector<double> p(nl.num_gates(), 0.5);
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    auto pin = [&](std::size_t i) { return p[g.fanins[i]]; };
    switch (g.type) {
      case GateType::Const0: p[id] = 0.0; break;
      case GateType::Const1: p[id] = 1.0; break;
      case GateType::Buf: p[id] = pin(0); break;
      case GateType::Not: p[id] = 1.0 - pin(0); break;
      case GateType::And:
      case GateType::Nand: {
        double prod = 1.0;
        for (std::size_t i = 0; i < g.fanins.size(); ++i) prod *= pin(i);
        p[id] = g.type == GateType::And ? prod : 1.0 - prod;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        double prod = 1.0;
        for (std::size_t i = 0; i < g.fanins.size(); ++i) prod *= 1.0 - pin(i);
        p[id] = g.type == GateType::Nor ? prod : 1.0 - prod;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        double podd = 0.0;
        for (std::size_t i = 0; i < g.fanins.size(); ++i) {
          const double q = pin(i);
          podd = podd * (1.0 - q) + (1.0 - podd) * q;
        }
        p[id] = g.type == GateType::Xor ? podd : 1.0 - podd;
        break;
      }
      case GateType::Mux:
        p[id] = (1.0 - pin(0)) * pin(1) + pin(0) * pin(2);
        break;
      case GateType::Input:
      case GateType::Dff:
        break;  // stays 0.5
    }
  }
  return p;
}

double expected_gate_leakage_na(const LeakageModel& model, GateType type,
                                const std::vector<double>& fanin_probs) {
  const int width = static_cast<int>(fanin_probs.size());
  SP_CHECK(width <= 12, "expected_gate_leakage_na: gate too wide");
  double total = 0.0;
  const unsigned combos = 1u << width;
  for (unsigned pat = 0; pat < combos; ++pat) {
    double prob = 1.0;
    for (int i = 0; i < width; ++i) {
      const double q = fanin_probs[static_cast<std::size_t>(i)];
      prob *= ((pat >> i) & 1u) ? q : (1.0 - q);
    }
    if (prob > 0.0) total += prob * model.cell_leakage_na(type, width, pat);
  }
  return total;
}

void LeakageObservability::compute_probabilistic(const Netlist& nl,
                                                 const LeakageModel& model) {
  const std::vector<double> base_p = signal_probabilities(nl);

  const std::span<const GateType> types = nl.types_flat();
  const std::span<const std::uint32_t> levels = nl.levels_flat();

  // Expected leakage of a gate from current probabilities. `fp_scratch`
  // is hoisted out of the per-gate loop (this runs once per cone gate per
  // source).
  std::vector<double> fp_scratch;
  auto gate_leak = [&](GateId id, const std::vector<double>& p) {
    const GateType t = types[id];
    if (!is_combinational(t) || t == GateType::Const0 ||
        t == GateType::Const1) {
      return 0.0;
    }
    fp_scratch.clear();
    for (GateId f : nl.fanin_span(id)) fp_scratch.push_back(p[f]);
    return expected_gate_leakage_na(model, t, fp_scratch);
  };

  double base_total = 0.0;
  for (GateId id = 0; id < nl.num_gates(); ++id) base_total += gate_leak(id, base_p);
  mean_leakage_na_ = base_total;

  // For each line, force p=1 and p=0, re-propagate through its fanout cone
  // (levels are monotone along combinational edges, so a level-ordered
  // sweep of the cone is a valid evaluation order), and measure the total
  // expected leakage of the gates whose inputs changed.
  std::vector<double> p = base_p;
  std::vector<GateId> cone;
  std::vector<std::uint8_t> in_cone(nl.num_gates(), 0);

  std::vector<GateId> stack_scratch;
  auto collect_cone = [&](GateId src) {
    cone.clear();
    stack_scratch.assign(1, src);
    in_cone[src] = 1;
    while (!stack_scratch.empty()) {
      const GateId id = stack_scratch.back();
      stack_scratch.pop_back();
      cone.push_back(id);
      for (GateId fo : nl.fanout_span(id)) {
        if (!is_combinational(types[fo])) continue;
        if (!in_cone[fo]) {
          in_cone[fo] = 1;
          stack_scratch.push_back(fo);
        }
      }
    }
    std::sort(cone.begin(), cone.end(), [&](GateId a, GateId b) {
      return levels[a] < levels[b];
    });
  };

  std::vector<double> fp;
  auto eval_forced = [&](GateId src, double forced) {
    p[src] = forced;
    // Re-propagate probabilities through the cone (skipping src itself).
    for (GateId id : cone) {
      if (id == src) continue;
      fp.clear();
      for (GateId f : nl.fanin_span(id)) fp.push_back(p[f]);
      // Reuse signal-probability formulas by local evaluation:
      switch (types[id]) {
        case GateType::Buf: p[id] = fp[0]; break;
        case GateType::Not: p[id] = 1.0 - fp[0]; break;
        case GateType::And:
        case GateType::Nand: {
          double prod = 1.0;
          for (double q : fp) prod *= q;
          p[id] = types[id] == GateType::And ? prod : 1.0 - prod;
          break;
        }
        case GateType::Or:
        case GateType::Nor: {
          double prod = 1.0;
          for (double q : fp) prod *= 1.0 - q;
          p[id] = types[id] == GateType::Nor ? prod : 1.0 - prod;
          break;
        }
        case GateType::Xor:
        case GateType::Xnor: {
          double podd = 0.0;
          for (double q : fp) podd = podd * (1.0 - q) + (1.0 - podd) * q;
          p[id] = types[id] == GateType::Xor ? podd : 1.0 - podd;
          break;
        }
        case GateType::Mux:
          p[id] = (1.0 - fp[0]) * fp[1] + fp[0] * fp[2];
          break;
        default:
          break;
      }
    }
    // Affected leakage: gates in the cone plus immediate fanouts of cone
    // members (their input distribution changed even if their own output
    // is outside the cone -- covered because such fanouts are *in* the
    // cone by construction; the only gates with changed inputs outside
    // cone are fanouts of src when src is a source -- also in cone).
    double total = 0.0;
    for (GateId id : cone) total += gate_leak(id, p);
    // Include fanouts of src that are DFFs? They carry no leakage; skip.
    return total;
  };

  for (GateId src = 0; src < nl.num_gates(); ++src) {
    collect_cone(src);
    // Gates whose *inputs* include cone members but are not cone members
    // themselves do not exist (fanouts of cone members are cone members).
    const double l1 = eval_forced(src, 1.0);
    const double l0 = eval_forced(src, 0.0);
    obs_[src] = l1 - l0;
    // Restore probabilities.
    p[src] = base_p[src];
    for (GateId id : cone) {
      p[id] = base_p[id];
      in_cone[id] = 0;
    }
  }
}

}  // namespace scanpower
