#pragma once
// Leakage observability, extended from primary inputs to every line.
//
// Definition (eq. (6) of the paper, after [Johnson/Somasekhar/Roy]):
//   L_obs(i) = L_avg(i, 1) - L_avg(i, 0)
// where L_avg(i, v) is the average total leakage when line i is forced to
// v. A large magnitude means the line's value strongly influences total
// leakage; the sign says which value is cheaper (positive -> prefer 0).
//
// The paper uses the attribute as a *directive* at the two decision points
// of FindControlledInputPattern(): when a value must be set to '1' pick
// the line with minimum observability, when '0' pick maximum.
//
// Two estimation engines:
//  - MonteCarlo: sample random source vectors, simulate, and average total
//    leakage conditioned on each line's value. Exact in expectation,
//    including reconvergent fanout correlations.
//  - Probabilistic: independence-assumption signal probabilities; the
//    conditional averages are computed by forcing p(line) to 1/0 and
//    re-propagating probabilities through the line's fanout cone (in the
//    spirit of the reverse-topological computation of [15]).

#include <cstdint>
#include <vector>

#include "atpg/sim_backend.hpp"
#include "netlist/netlist.hpp"
#include "power/leakage_model.hpp"

namespace scanpower {

class ThreadPool;

enum class ObservabilityMethod { MonteCarlo, Probabilistic };

struct ObservabilityOptions {
  ObservabilityMethod method = ObservabilityMethod::MonteCarlo;
  int samples = 256;                ///< MonteCarlo sample count
  std::uint64_t seed = 0xb5eeccaa11dd22ffULL;
  /// Packed Monte-Carlo engine: 64*block_words samples per sweep on the
  /// BlockSimulator, per-lane leakage from GateLeakageTables, sample
  /// blocks partitioned across a worker pool. false = the scalar
  /// reference engine (one Simulator pass per sample); kept for
  /// cross-checks and as the benchmark baseline. The two engines draw
  /// different (equally seeded-deterministic) sample streams.
  bool packed = true;
  /// Pattern words per packed sweep (1, 2, 4, 8, 16 or 32; 16/32 require
  /// the wide backend).
  int block_words = 4;
  /// Kernel backend for the packed sweep; Auto = best available for the
  /// width. Results are bit-identical across backends.
  SimBackend backend = SimBackend::Auto;
  /// Worker threads for the packed sweep; 1 = serial, 0 = all cores.
  /// Results are bit-identical across thread counts: every sample block
  /// has a fixed seed derived from (seed, block index) and block partials
  /// are reduced in block order.
  int num_threads = 1;
  /// Borrowed per-(netlist, model) leakage tables; null = build a private
  /// copy (the one-shot cost a ScanSession amortizes across calls). Must
  /// be built from the same netlist and model passed to the constructor.
  const GateLeakageTables* tables = nullptr;
  /// Borrowed worker pool; null = create a private one of num_threads
  /// workers. Any pool size produces bit-identical values (see
  /// num_threads), so sharing a session's pool is result-neutral.
  ThreadPool* pool = nullptr;
};

class LeakageObservability {
 public:
  LeakageObservability(const Netlist& nl, const LeakageModel& model,
                       ObservabilityOptions opts = {});

  /// L_obs of a line (the output net of gate id), in nA.
  double obs(GateId id) const { return obs_[id]; }
  const std::vector<double>& values() const { return obs_; }

  /// Expected total leakage under random inputs (nA) -- a byproduct used
  /// as a baseline by reports.
  double mean_leakage_na() const { return mean_leakage_na_; }

 private:
  void compute_monte_carlo_scalar(const Netlist& nl, const LeakageModel& model,
                                  const ObservabilityOptions& opts);
  void compute_monte_carlo_packed(const Netlist& nl, const LeakageModel& model,
                                  const ObservabilityOptions& opts);
  void compute_probabilistic(const Netlist& nl, const LeakageModel& model);

  std::vector<double> obs_;
  double mean_leakage_na_ = 0.0;
};

/// Signal probabilities under the independence assumption:
/// p[g] = P(line g = 1) with sources at 0.5 (or forced values).
/// Exposed for tests and for the probabilistic observability engine.
std::vector<double> signal_probabilities(const Netlist& nl);

/// Expected leakage (nA) of one gate given fanin 1-probabilities (treated
/// as independent).
double expected_gate_leakage_na(const LeakageModel& model, GateType type,
                                const std::vector<double>& fanin_probs);

}  // namespace scanpower
