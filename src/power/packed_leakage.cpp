#include "power/packed_leakage.hpp"

#include "atpg/sim_kernels.hpp"
#include "util/assert.hpp"

namespace scanpower {

TernaryBlockSimulator::TernaryBlockSimulator(const Netlist& nl, int words,
                                             SimBackend backend)
    : nl_(&nl), words_(words) {
  SP_CHECK(nl.finalized(), "TernaryBlockSimulator requires a finalized netlist");
  SP_CHECK(is_valid_block_words(words),
           "TernaryBlockSimulator: words must be 1, 2, 4, 8, 16 or 32");
  backend_ = resolve_backend(backend, words);
  kern_ = &sim_kernels(backend_);
  // Sources start X (both planes set), like Simulator::clear_sources().
  p1_.assign(nl.num_gates() * static_cast<std::size_t>(words), ~PatternWord{0});
  p0_.assign(nl.num_gates() * static_cast<std::size_t>(words), ~PatternWord{0});
}

void TernaryBlockSimulator::set_source_all(GateId id, Logic v) {
  PatternWord* one = p1(id);
  PatternWord* zero = p0(id);
  const PatternWord w1 = v != Logic::Zero ? ~PatternWord{0} : 0;
  const PatternWord w0 = v != Logic::One ? ~PatternWord{0} : 0;
  for (int w = 0; w < words_; ++w) {
    one[w] = w1;
    zero[w] = w0;
  }
}

Logic TernaryBlockSimulator::lane_value(GateId id, std::size_t lane) const {
  const std::size_t w = lane / 64;
  const PatternWord bit = PatternWord{1} << (lane % 64);
  const bool b1 = (p1(id)[w] & bit) != 0;
  const bool b0 = (p0(id)[w] & bit) != 0;
  if (b1 && b0) return Logic::X;
  return b1 ? Logic::One : Logic::Zero;
}

void TernaryBlockSimulator::eval() {
  kern_->eval_ternary(*nl_, p1_.data(), p0_.data(), words_);
}

PackedLeakageEvaluator::PackedLeakageEvaluator(const Netlist& nl,
                                               const GateLeakageTables& tables,
                                               SimBackend backend)
    : nl_(&nl), tables_(&tables), backend_(backend) {
  SP_CHECK(nl.finalized(),
           "PackedLeakageEvaluator requires a finalized netlist");
}

void PackedLeakageEvaluator::eval(const BlockSimulator& sim,
                                  std::span<double> leak) const {
  const Netlist& nl = *nl_;
  const GateLeakageTables& tables = *tables_;
  const int W = sim.words();
  const std::size_t lanes = sim.lanes();
  SP_CHECK(leak.size() >= lanes, "packed leakage: output buffer too small");
  for (std::size_t i = 0; i < lanes; ++i) leak[i] = 0.0;

  const SimKernels& kern = sim_kernels(resolve_backend(backend_, W));
  PatternWord srcw[GateLeakageTables::kMaxTableWidth];
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (tables.leakless(id)) continue;
    const double* tbl = tables.table(id);
    const std::span<const GateId> fans = nl.fanin_span(id);
    const int k = tables.width(id);
    if (tbl == nullptr) {
      // Wider than the tabulated library: analytic per-lane evaluation.
      SP_CHECK(k <= 20, "packed leakage: gate too wide");
      const GateType t = nl.type(id);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const std::size_t w = lane / 64;
        const std::size_t b = lane % 64;
        unsigned state = 0;
        for (int j = 0; j < k; ++j) {
          state |= static_cast<unsigned>((sim.block(fans[j])[w] >> b) & 1)
                   << j;
        }
        leak[lane] += tables.model().cell_leakage_na(t, k, state);
      }
      continue;
    }
    // Tabulated gate: per-lane state assembly + table gather, one add per
    // lane per gate (backend kernel; bit-identical accumulation order).
    for (int w = 0; w < W; ++w) {
      for (int j = 0; j < k; ++j) srcw[j] = sim.block(fans[j])[w];
      kern.leak_gather(tbl, 0, srcw, k,
                       leak.data() + static_cast<std::size_t>(w) * 64);
    }
  }
}

void PackedLeakageEvaluator::eval(const TernaryBlockSimulator& sim,
                                  std::span<double> leak) const {
  const Netlist& nl = *nl_;
  const GateLeakageTables& tables = *tables_;
  const int W = sim.words();
  const std::size_t lanes = sim.lanes();
  SP_CHECK(leak.size() >= lanes, "packed leakage: output buffer too small");
  for (std::size_t i = 0; i < lanes; ++i) leak[i] = 0.0;

  std::vector<Logic> ins;  // fallback scratch (wide gates only)
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (tables.leakless(id)) continue;
    const std::span<const GateId> fans = nl.fanin_span(id);
    const int k = tables.width(id);
    const double* tbl = tables.table(id);
    const double* xtbl = tables.xtable(id);
    SP_CHECK(k <= 20, "packed leakage: gate too wide");
    for (int w = 0; w < W; ++w) {
      // Per fanin: definite-one and X masks for this word.
      PatternWord v[20];
      PatternWord x[20];
      PatternWord any_x = 0;
      for (int j = 0; j < k; ++j) {
        const PatternWord b1 = sim.p1(fans[j])[w];
        const PatternWord b0 = sim.p0(fans[j])[w];
        v[j] = b1 & ~b0;
        x[j] = b1 & b0;
        any_x |= x[j];
      }
      double* out = leak.data() + static_cast<std::size_t>(w) * 64;
      if (any_x == 0 && tbl != nullptr) {
        for (int i = 0; i < 64; ++i) {
          unsigned state = 0;
          for (int j = 0; j < k; ++j) {
            state |= static_cast<unsigned>((v[j] >> i) & 1) << j;
          }
          out[i] += tbl[state];
        }
        continue;
      }
      for (int i = 0; i < 64; ++i) {
        unsigned state = 0;
        unsigned xmask = 0;
        for (int j = 0; j < k; ++j) {
          state |= static_cast<unsigned>((v[j] >> i) & 1) << j;
          xmask |= static_cast<unsigned>((x[j] >> i) & 1) << j;
        }
        if (xmask == 0 && tbl != nullptr) {
          out[i] += tbl[state];
        } else if (xtbl != nullptr) {
          out[i] += xtbl[state | (xmask << k)];
        } else {
          // Wide gate: defer to the scalar expected-leakage walk.
          ins.resize(static_cast<std::size_t>(k));
          for (int j = 0; j < k; ++j) {
            ins[static_cast<std::size_t>(j)] =
                (xmask >> j) & 1u ? Logic::X
                                  : ((state >> j) & 1u ? Logic::One
                                                       : Logic::Zero);
          }
          out[i] += tables.model().cell_expected_leakage_na(nl.type(id), ins);
        }
      }
    }
  }
}

}  // namespace scanpower
