#include "power/packed_leakage.hpp"

#include "util/assert.hpp"

namespace scanpower {

TernaryBlockSimulator::TernaryBlockSimulator(const Netlist& nl, int words)
    : nl_(&nl), words_(words) {
  SP_CHECK(nl.finalized(), "TernaryBlockSimulator requires a finalized netlist");
  SP_CHECK(is_valid_block_words(words),
           "TernaryBlockSimulator: words must be 1, 2, 4 or 8");
  // Sources start X (both planes set), like Simulator::clear_sources().
  p1_.assign(nl.num_gates() * static_cast<std::size_t>(words), ~PatternWord{0});
  p0_.assign(nl.num_gates() * static_cast<std::size_t>(words), ~PatternWord{0});
}

void TernaryBlockSimulator::set_source_all(GateId id, Logic v) {
  PatternWord* one = p1(id);
  PatternWord* zero = p0(id);
  const PatternWord w1 = v != Logic::Zero ? ~PatternWord{0} : 0;
  const PatternWord w0 = v != Logic::One ? ~PatternWord{0} : 0;
  for (int w = 0; w < words_; ++w) {
    one[w] = w1;
    zero[w] = w0;
  }
}

Logic TernaryBlockSimulator::lane_value(GateId id, std::size_t lane) const {
  const std::size_t w = lane / 64;
  const PatternWord bit = PatternWord{1} << (lane % 64);
  const bool b1 = (p1(id)[w] & bit) != 0;
  const bool b0 = (p0(id)[w] & bit) != 0;
  if (b1 && b0) return Logic::X;
  return b1 ? Logic::One : Logic::Zero;
}

template <int W>
void TernaryBlockSimulator::eval_impl() {
  const Netlist& nl = *nl_;
  const std::span<const GateType> types = nl.types_flat();
  PatternWord* const ones = p1_.data();
  PatternWord* const zeros = p0_.data();
  const auto blk = [](PatternWord* base, GateId id) {
    return base + static_cast<std::size_t>(id) * W;
  };

  for (GateId id : nl.topo_order()) {
    const std::span<const GateId> fans = nl.fanin_span(id);
    PatternWord* const o1 = blk(ones, id);
    PatternWord* const o0 = blk(zeros, id);
    switch (types[id]) {
      case GateType::Const0:
        for (int w = 0; w < W; ++w) {
          o1[w] = 0;
          o0[w] = ~PatternWord{0};
        }
        break;
      case GateType::Const1:
        for (int w = 0; w < W; ++w) {
          o1[w] = ~PatternWord{0};
          o0[w] = 0;
        }
        break;
      case GateType::Buf: {
        const PatternWord* a1 = blk(ones, fans[0]);
        const PatternWord* a0 = blk(zeros, fans[0]);
        for (int w = 0; w < W; ++w) {
          o1[w] = a1[w];
          o0[w] = a0[w];
        }
        break;
      }
      case GateType::Not: {
        const PatternWord* a1 = blk(ones, fans[0]);
        const PatternWord* a0 = blk(zeros, fans[0]);
        for (int w = 0; w < W; ++w) {
          o1[w] = a0[w];
          o0[w] = a1[w];
        }
        break;
      }
      case GateType::And:
      case GateType::Nand: {
        // possibly-1 = every input possibly 1; possibly-0 = some input
        // possibly 0.
        const PatternWord* a1 = blk(ones, fans[0]);
        const PatternWord* a0 = blk(zeros, fans[0]);
        PatternWord t1[W];
        PatternWord t0[W];
        for (int w = 0; w < W; ++w) {
          t1[w] = a1[w];
          t0[w] = a0[w];
        }
        for (std::size_t i = 1; i < fans.size(); ++i) {
          const PatternWord* b1 = blk(ones, fans[i]);
          const PatternWord* b0 = blk(zeros, fans[i]);
          for (int w = 0; w < W; ++w) {
            t1[w] &= b1[w];
            t0[w] |= b0[w];
          }
        }
        if (types[id] == GateType::And) {
          for (int w = 0; w < W; ++w) {
            o1[w] = t1[w];
            o0[w] = t0[w];
          }
        } else {
          for (int w = 0; w < W; ++w) {
            o1[w] = t0[w];
            o0[w] = t1[w];
          }
        }
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        const PatternWord* a1 = blk(ones, fans[0]);
        const PatternWord* a0 = blk(zeros, fans[0]);
        PatternWord t1[W];
        PatternWord t0[W];
        for (int w = 0; w < W; ++w) {
          t1[w] = a1[w];
          t0[w] = a0[w];
        }
        for (std::size_t i = 1; i < fans.size(); ++i) {
          const PatternWord* b1 = blk(ones, fans[i]);
          const PatternWord* b0 = blk(zeros, fans[i]);
          for (int w = 0; w < W; ++w) {
            t1[w] |= b1[w];
            t0[w] &= b0[w];
          }
        }
        if (types[id] == GateType::Or) {
          for (int w = 0; w < W; ++w) {
            o1[w] = t1[w];
            o0[w] = t0[w];
          }
        } else {
          for (int w = 0; w < W; ++w) {
            o1[w] = t0[w];
            o0[w] = t1[w];
          }
        }
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        const PatternWord* a1 = blk(ones, fans[0]);
        const PatternWord* a0 = blk(zeros, fans[0]);
        PatternWord t1[W];
        PatternWord t0[W];
        for (int w = 0; w < W; ++w) {
          t1[w] = a1[w];
          t0[w] = a0[w];
        }
        for (std::size_t i = 1; i < fans.size(); ++i) {
          const PatternWord* b1 = blk(ones, fans[i]);
          const PatternWord* b0 = blk(zeros, fans[i]);
          for (int w = 0; w < W; ++w) {
            const PatternWord n1 = (t1[w] & b0[w]) | (t0[w] & b1[w]);
            const PatternWord n0 = (t1[w] & b1[w]) | (t0[w] & b0[w]);
            t1[w] = n1;
            t0[w] = n0;
          }
        }
        if (types[id] == GateType::Xor) {
          for (int w = 0; w < W; ++w) {
            o1[w] = t1[w];
            o0[w] = t0[w];
          }
        } else {
          for (int w = 0; w < W; ++w) {
            o1[w] = t0[w];
            o0[w] = t1[w];
          }
        }
        break;
      }
      case GateType::Mux: {
        // If the select can be 0, the output can take a's values; if it
        // can be 1, b's. An X select with agreeing data inputs resolves,
        // matching eval_gate().
        const PatternWord* s1 = blk(ones, fans[0]);
        const PatternWord* s0 = blk(zeros, fans[0]);
        const PatternWord* a1 = blk(ones, fans[1]);
        const PatternWord* a0 = blk(zeros, fans[1]);
        const PatternWord* b1 = blk(ones, fans[2]);
        const PatternWord* b0 = blk(zeros, fans[2]);
        for (int w = 0; w < W; ++w) {
          o1[w] = (s0[w] & a1[w]) | (s1[w] & b1[w]);
          o0[w] = (s0[w] & a0[w]) | (s1[w] & b0[w]);
        }
        break;
      }
      case GateType::Input:
      case GateType::Dff:
        SP_ASSERT(false, "topo_order contains a source");
    }
  }
}

void TernaryBlockSimulator::eval() {
  switch (words_) {
    case 1: eval_impl<1>(); break;
    case 2: eval_impl<2>(); break;
    case 4: eval_impl<4>(); break;
    case 8: eval_impl<8>(); break;
    default: SP_ASSERT(false, "invalid block width");
  }
}

PackedLeakageEvaluator::PackedLeakageEvaluator(const Netlist& nl,
                                               const GateLeakageTables& tables)
    : nl_(&nl), tables_(&tables) {
  SP_CHECK(nl.finalized(),
           "PackedLeakageEvaluator requires a finalized netlist");
}

void PackedLeakageEvaluator::eval(const BlockSimulator& sim,
                                  std::span<double> leak) const {
  const Netlist& nl = *nl_;
  const GateLeakageTables& tables = *tables_;
  const int W = sim.words();
  const std::size_t lanes = sim.lanes();
  SP_CHECK(leak.size() >= lanes, "packed leakage: output buffer too small");
  for (std::size_t i = 0; i < lanes; ++i) leak[i] = 0.0;

  const PatternWord* fb[GateLeakageTables::kMaxTableWidth];
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (tables.leakless(id)) continue;
    const double* tbl = tables.table(id);
    const std::span<const GateId> fans = nl.fanin_span(id);
    const int k = tables.width(id);
    if (tbl == nullptr) {
      // Wider than the tabulated library: analytic per-lane evaluation.
      SP_CHECK(k <= 20, "packed leakage: gate too wide");
      const GateType t = nl.type(id);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const std::size_t w = lane / 64;
        const std::size_t b = lane % 64;
        unsigned state = 0;
        for (int j = 0; j < k; ++j) {
          state |= static_cast<unsigned>((sim.block(fans[j])[w] >> b) & 1)
                   << j;
        }
        leak[lane] += tables.model().cell_leakage_na(t, k, state);
      }
      continue;
    }
    if (k == 1) {
      const PatternWord* a = sim.block(fans[0]);
      for (int w = 0; w < W; ++w) {
        double* out = leak.data() + static_cast<std::size_t>(w) * 64;
        const PatternWord aw = a[w];
        for (int i = 0; i < 64; ++i) out[i] += tbl[(aw >> i) & 1];
      }
    } else if (k == 2) {
      const PatternWord* a = sim.block(fans[0]);
      const PatternWord* b = sim.block(fans[1]);
      for (int w = 0; w < W; ++w) {
        double* out = leak.data() + static_cast<std::size_t>(w) * 64;
        const PatternWord aw = a[w];
        const PatternWord bw = b[w];
        for (int i = 0; i < 64; ++i) {
          out[i] += tbl[((aw >> i) & 1) | (((bw >> i) & 1) << 1)];
        }
      }
    } else {
      for (int j = 0; j < k; ++j) fb[j] = sim.block(fans[j]);
      for (int w = 0; w < W; ++w) {
        double* out = leak.data() + static_cast<std::size_t>(w) * 64;
        for (int i = 0; i < 64; ++i) {
          unsigned state = 0;
          for (int j = 0; j < k; ++j) {
            state |= static_cast<unsigned>((fb[j][w] >> i) & 1) << j;
          }
          out[i] += tbl[state];
        }
      }
    }
  }
}

void PackedLeakageEvaluator::eval(const TernaryBlockSimulator& sim,
                                  std::span<double> leak) const {
  const Netlist& nl = *nl_;
  const GateLeakageTables& tables = *tables_;
  const int W = sim.words();
  const std::size_t lanes = sim.lanes();
  SP_CHECK(leak.size() >= lanes, "packed leakage: output buffer too small");
  for (std::size_t i = 0; i < lanes; ++i) leak[i] = 0.0;

  std::vector<Logic> ins;  // fallback scratch (wide gates only)
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (tables.leakless(id)) continue;
    const std::span<const GateId> fans = nl.fanin_span(id);
    const int k = tables.width(id);
    const double* tbl = tables.table(id);
    const double* xtbl = tables.xtable(id);
    SP_CHECK(k <= 20, "packed leakage: gate too wide");
    for (int w = 0; w < W; ++w) {
      // Per fanin: definite-one and X masks for this word.
      PatternWord v[20];
      PatternWord x[20];
      PatternWord any_x = 0;
      for (int j = 0; j < k; ++j) {
        const PatternWord b1 = sim.p1(fans[j])[w];
        const PatternWord b0 = sim.p0(fans[j])[w];
        v[j] = b1 & ~b0;
        x[j] = b1 & b0;
        any_x |= x[j];
      }
      double* out = leak.data() + static_cast<std::size_t>(w) * 64;
      if (any_x == 0 && tbl != nullptr) {
        for (int i = 0; i < 64; ++i) {
          unsigned state = 0;
          for (int j = 0; j < k; ++j) {
            state |= static_cast<unsigned>((v[j] >> i) & 1) << j;
          }
          out[i] += tbl[state];
        }
        continue;
      }
      for (int i = 0; i < 64; ++i) {
        unsigned state = 0;
        unsigned xmask = 0;
        for (int j = 0; j < k; ++j) {
          state |= static_cast<unsigned>((v[j] >> i) & 1) << j;
          xmask |= static_cast<unsigned>((x[j] >> i) & 1) << j;
        }
        if (xmask == 0 && tbl != nullptr) {
          out[i] += tbl[state];
        } else if (xtbl != nullptr) {
          out[i] += xtbl[state | (xmask << k)];
        } else {
          // Wide gate: defer to the scalar expected-leakage walk.
          ins.resize(static_cast<std::size_t>(k));
          for (int j = 0; j < k; ++j) {
            ins[static_cast<std::size_t>(j)] =
                (xmask >> j) & 1u ? Logic::X
                                  : ((state >> j) & 1u ? Logic::One
                                                       : Logic::Zero);
          }
          out[i] += tables.model().cell_expected_leakage_na(nl.type(id), ins);
        }
      }
    }
  }
}

}  // namespace scanpower
