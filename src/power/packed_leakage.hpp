#pragma once
// Packed (bit-parallel) leakage evaluation.
//
// The scalar power stack evaluates one vector at a time: a full 3-valued
// simulation followed by a per-gate circuit_leakage_na() walk. This
// engine batches 64*W fully specified vectors per sweep on top of the
// BlockSimulator and aggregates per-lane circuit leakage from the packed
// value words through the precomputed GateLeakageTables: for each gate
// the per-lane input state index is assembled branch-free from the fanin
// value words and resolved with one table load, instead of 64*W scalar
// walks through the cell-model switch.
//
// Two evaluation modes:
//  - BlockSimulator (2-valued): fully specified lanes, used by the
//    Monte-Carlo observability engine and the min-leakage vector search.
//  - TernaryBlockSimulator (3-valued, Kleene): lanes may carry X (e.g.
//    the non-multiplexed scan cells during don't-care fill); X-affected
//    gates read the (state, xmask) expected tables, so each lane's total
//    equals the scalar X-aware leakage bit-for-bit.

#include <span>
#include <vector>

#include "atpg/packed_sim.hpp"
#include "netlist/netlist.hpp"
#include "power/leakage_model.hpp"
#include "sim/logic.hpp"

namespace scanpower {

/// Packed 3-valued (Kleene) simulator: each gate holds two W-word planes,
/// p1 ("possibly 1") and p0 ("possibly 0"); a lane with both bits set is
/// X, exactly one bit set is a known value. Gate evaluation reproduces
/// eval_gate() lane-wise (including the MUX rule: X select with agreeing
/// data inputs resolves), so ternary packed values match the scalar
/// Simulator on every lane.
class TernaryBlockSimulator {
 public:
  explicit TernaryBlockSimulator(const Netlist& nl, int words = 4,
                                 SimBackend backend = SimBackend::Auto);

  int words() const { return words_; }
  /// The resolved kernel backend (never Auto).
  SimBackend backend() const { return backend_; }
  std::size_t lanes() const { return static_cast<std::size_t>(words_) * 64; }

  PatternWord* p1(GateId id) {
    return p1_.data() + static_cast<std::size_t>(id) * words_;
  }
  const PatternWord* p1(GateId id) const {
    return p1_.data() + static_cast<std::size_t>(id) * words_;
  }
  PatternWord* p0(GateId id) {
    return p0_.data() + static_cast<std::size_t>(id) * words_;
  }
  const PatternWord* p0(GateId id) const {
    return p0_.data() + static_cast<std::size_t>(id) * words_;
  }

  /// Broadcasts one logic value (0/1/X) to every lane of a source.
  void set_source_all(GateId id, Logic v);
  /// Sets 64 fully specified lanes of a source: bit i of `ones` is the
  /// value of lane 64*wi + i.
  void set_source_word(GateId id, int wi, PatternWord ones) {
    p1(id)[wi] = ones;
    p0(id)[wi] = ~ones;
  }

  Logic lane_value(GateId id, std::size_t lane) const;

  /// Full levelized Kleene evaluation of the combinational core, through
  /// the resolved backend's kernel table.
  void eval();

 private:
  const Netlist* nl_;
  int words_;
  SimBackend backend_;      ///< resolved, never Auto
  const SimKernels* kern_;  ///< backend kernel table
  std::vector<PatternWord> p1_;  ///< num_gates * words_, gate-major
  std::vector<PatternWord> p0_;
};

/// Per-lane circuit leakage of a packed sweep. Stateless apart from
/// netlist/table references, so one evaluator can be shared by any number
/// of worker threads. Accumulation walks gates in ascending GateId -- the
/// same order as LeakageModel::circuit_leakage_na -- so per-lane sums are
/// bit-identical to the scalar walk.
class PackedLeakageEvaluator {
 public:
  /// `backend` steers the table-gather kernel of the 2-valued eval (the
  /// evaluator is width-agnostic, so resolution happens per eval() call
  /// against the simulator's width).
  PackedLeakageEvaluator(const Netlist& nl, const GateLeakageTables& tables,
                         SimBackend backend = SimBackend::Auto);

  const GateLeakageTables& tables() const { return *tables_; }

  /// leak[lane] = total combinational leakage (nA) of lane `lane`;
  /// leak.size() must be >= sim.lanes(). Fully specified lanes.
  void eval(const BlockSimulator& sim, std::span<double> leak) const;

  /// 3-valued variant: lanes carrying X on a gate's inputs contribute
  /// that gate's expected leakage (uniform over the X assignments),
  /// matching LeakageModel::cell_expected_leakage_na bit-for-bit.
  void eval(const TernaryBlockSimulator& sim, std::span<double> leak) const;

 private:
  const Netlist* nl_;
  const GateLeakageTables* tables_;
  SimBackend backend_;  ///< as requested (may be Auto; resolved per eval)
};

}  // namespace scanpower
