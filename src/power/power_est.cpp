#include "power/power_est.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace scanpower {

PowerEstimator::PowerEstimator(const Netlist& nl, const LeakageModel& leakage,
                               const CapacitanceModel& caps, PowerConfig config)
    : nl_(&nl),
      leakage_(&leakage),
      config_(config),
      toggles_(caps.load_vector(nl)) {}

void PowerEstimator::observe(std::span<const Logic> values) {
  SP_CHECK(values.size() == nl_->num_gates(),
           "PowerEstimator::observe: size mismatch");
  toggles_.observe(values);
  const double cycle_cap = toggles_.total() - last_total_;
  last_total_ = toggles_.total();
  peak_cap_ff_ = std::max(peak_cap_ff_, cycle_cap);
  const double leak = leakage_->circuit_leakage_na(*nl_, values);
  peak_leakage_na_ = std::max(peak_leakage_na_, leak);
  leakage_sum_na_ += leak;
  ++leakage_samples_;
}

double PowerEstimator::peak_dynamic_per_hz_uw() const {
  return 0.5 * config_.vdd * config_.vdd * peak_cap_ff_ * 1e-15 * 1e6;
}

double PowerEstimator::dynamic_per_hz_uw() const {
  // E/cycle = 1/2 VDD^2 * C_toggled;  C in fF -> 1e-15 F;  W -> 1e6 uW.
  const double cap_f = mean_toggled_cap_ff() * 1e-15;
  return 0.5 * config_.vdd * config_.vdd * cap_f * 1e6;
}

double PowerEstimator::mean_leakage_na() const {
  return leakage_samples_
             ? leakage_sum_na_ / static_cast<double>(leakage_samples_)
             : 0.0;
}

double PowerEstimator::static_uw() const {
  return mean_leakage_na() * config_.vdd * 1e-3;
}

void PowerEstimator::reset() {
  toggles_.reset();
  leakage_sum_na_ = 0.0;
  leakage_samples_ = 0;
  peak_cap_ff_ = 0.0;
  peak_leakage_na_ = 0.0;
  last_total_ = 0.0;
}

}  // namespace scanpower
