#pragma once
// Combined dynamic + static power estimation over a sequence of circuit
// states (eq. (1) of the paper for dynamic, the leakage tables for static).
//
// Protocol: the caller (scan-shift simulator, functional simulation, ...)
// feeds every per-cycle value vector into observe(). The estimator
// accumulates
//   - weighted toggles: sum over cycles of sum(C_L over toggled gates)
//   - leakage samples : per-cycle total leakage current
// and reports
//   - dynamic_per_hz_uw(): (1/2) VDD^2 * mean toggled capacitance  [uW/Hz]
//   - static_uw()        : VDD * mean leakage current              [uW]
// matching the two columns of Table I ("values in the dynamic columns must
// be multiplied by the working frequency").

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "power/leakage_model.hpp"
#include "sim/logic.hpp"
#include "sim/toggles.hpp"
#include "timing/delay_model.hpp"

namespace scanpower {

struct PowerConfig {
  double vdd = 0.9;  ///< supply voltage (paper: 45 nm at 0.9 V)
};

class PowerEstimator {
 public:
  PowerEstimator(const Netlist& nl, const LeakageModel& leakage,
                 const CapacitanceModel& caps, PowerConfig config = {});

  /// Records one clock cycle's settled value vector (size = num_gates).
  /// The first observation initializes toggle counting; every observation
  /// contributes one leakage sample.
  void observe(std::span<const Logic> values);

  /// Mean toggled load capacitance per cycle (fF). Zero until two
  /// observations have been made.
  double mean_toggled_cap_ff() const { return toggles_.per_cycle(); }

  /// Worst single-cycle toggled capacitance (fF) -- the peak-power proxy
  /// (cf. [Sankaralingam & Touba], reference [6] of the paper).
  double peak_toggled_cap_ff() const { return peak_cap_ff_; }

  /// Peak dynamic power per Hz in uW/Hz.
  double peak_dynamic_per_hz_uw() const;

  /// Worst single-cycle leakage current (nA).
  double peak_leakage_na() const { return peak_leakage_na_; }

  /// Dynamic power per Hz in uW/Hz (multiply by f for absolute power).
  double dynamic_per_hz_uw() const;

  /// Mean leakage current over observed cycles (nA).
  double mean_leakage_na() const;

  /// Static power in uW: VDD * mean leakage current.
  double static_uw() const;

  std::size_t cycles_observed() const { return leakage_samples_; }

  void reset();

 private:
  const Netlist* nl_;
  const LeakageModel* leakage_;
  PowerConfig config_;
  ToggleAccumulator toggles_;
  double leakage_sum_na_ = 0.0;
  std::size_t leakage_samples_ = 0;
  double peak_cap_ff_ = 0.0;
  double peak_leakage_na_ = 0.0;
  double last_total_ = 0.0;  ///< toggle total at the previous observation
};

}  // namespace scanpower
