#include "scan/add_mux.hpp"

#include "netlist/builder.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace scanpower {

MuxPlan plan_muxes(const Netlist& nl, const DelayModel& model,
                   const MuxPlanOptions& opts) {
  SP_CHECK(nl.finalized(), "plan_muxes requires a finalized netlist");
  // Step 1: critical path delay of the unmodified circuit.
  TimingAnalysis sta(nl, model);
  MuxPlan plan;
  plan.base_critical_delay_ps = sta.critical_delay_ps();
  plan.multiplexed.assign(nl.dffs().size(), false);

  // Step 2: tentative insertion per pseudo-input. The mux drives the
  // cell's original load; the critical delay with the mux present is
  // critical_delay_with_extra_source_delay(cell, mux_delay).
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    const GateId dff = nl.dffs()[i];
    if (nl.fanouts(dff).empty()) continue;  // nothing to isolate
    const double load = model.caps().load_ff(nl, dff);
    const double d_mux = model.mux_delay_ps(load);
    // The margin demands extra headroom beyond the mux delay itself
    // (slack >= d_mux + margin), so it scales the timing budget rather
    // than the (unreachable) target delay.
    const double with_mux = sta.critical_delay_with_extra_source_delay(
        dff, d_mux + opts.slack_margin_ps);
    if (with_mux <= plan.base_critical_delay_ps + opts.epsilon_ps) {
      plan.multiplexed[i] = true;
      ++plan.num_multiplexed;
    }
  }
  SP_LOG_INFO(strprintf("AddMUX[%s]: %zu/%zu scan cells multiplexed (Tcrit=%.1f ps)",
                     nl.name().c_str(), plan.num_multiplexed,
                     plan.multiplexed.size(), plan.base_critical_delay_ps));
  return plan;
}

Netlist insert_muxes_physically(const Netlist& nl, const MuxPlan& plan,
                                std::span<const Logic> mux_values,
                                GateId* se_out) {
  SP_CHECK(plan.multiplexed.size() == nl.dffs().size(),
           "mux plan does not match the netlist");
  SP_CHECK(mux_values.size() == nl.dffs().size(),
           "mux_values size mismatch");

  // Name of the mux output net for each planned cell.
  std::vector<std::string> mux_net(nl.num_gates());
  bool need_c0 = false;
  bool need_c1 = false;
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    if (!plan.multiplexed[i]) continue;
    const GateId dff = nl.dffs()[i];
    SP_CHECK(mux_values[i] != Logic::X,
             "insert_muxes_physically: planned cell " + nl.gate_name(dff) +
                 " has no constant value");
    mux_net[dff] = "mux$" + nl.gate_name(dff);
    (mux_values[i] == Logic::Zero ? need_c0 : need_c1) = true;
  }

  NetlistBuilder builder(nl.name() + "_muxed");
  builder.add_input("shift_enable$");
  if (need_c0) builder.add_gate(GateType::Const0, "tie0$", {});
  if (need_c1) builder.add_gate(GateType::Const1, "tie1$", {});

  auto mapped_name = [&](GateId driver) -> const std::string& {
    return mux_net[driver].empty() ? nl.gate_name(driver) : mux_net[driver];
  };

  for (GateId id = 0; id < nl.num_gates(); ++id) {
    const Gate& g = nl.gate(id);
    if (g.type == GateType::Input) {
      builder.add_input(g.name);
      continue;
    }
    std::vector<std::string> fanins;
    fanins.reserve(g.fanins.size());
    for (GateId f : g.fanins) fanins.push_back(mapped_name(f));
    builder.add_gate(g.type, g.name, fanins);
  }
  // The muxes themselves: out = SE ? constant : Q.
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    if (!plan.multiplexed[i]) continue;
    const GateId dff = nl.dffs()[i];
    const std::string tie = mux_values[i] == Logic::Zero ? "tie0$" : "tie1$";
    builder.add_gate(GateType::Mux, mux_net[dff],
                     {"shift_enable$", nl.gate_name(dff), tie});
  }
  for (GateId id : nl.outputs()) {
    // A DFF Q marked as PO observes the mux output in scan mode; keep the
    // original net as the PO (pads connect before the mux), matching the
    // paper's "no impact on functionality".
    builder.add_output(nl.gate_name(id));
  }
  Netlist out = builder.link();
  if (se_out) *se_out = out.find("shift_enable$");
  return out;
}

}  // namespace scanpower
