#pragma once
// AddMUX(): timing-constrained multiplexer insertion at scan-cell outputs
// (Section 4 of the paper).
//
//   1. Find the delay of the critical path(s).
//   2. For each pseudo-input, add a multiplexer; if the critical path
//      delay changed, remove it again.
//
// The select line is the existing Shift-Enable signal, so the hardware
// cost is one 2:1 mux per eligible cell and no routing overhead (the mux
// constant input ties locally to VCC/GND once the control pattern is
// known).
//
// The inserted mux drives the scan cell's original combinational load, so
// inserting it stretches every path through that cell by the mux delay.
// The timing check is therefore equivalent to: keep the mux iff
// mux_delay <= slack(cell) (+ optional user margin). plan_muxes() uses the
// slack form; insert_muxes_physically() rewrites the netlist so tests can
// verify the equivalence with a full STA re-run and a normal-mode
// functional equivalence check.

#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic.hpp"
#include "timing/delay_model.hpp"
#include "timing/sta.hpp"

namespace scanpower {

struct MuxPlanOptions {
  /// Extra slack (ps) demanded beyond the mux delay itself; 0 reproduces
  /// the paper's "critical path delay unchanged" rule. Used by the
  /// mux-coverage ablation sweep.
  double slack_margin_ps = 0.0;
  /// Tolerance when comparing critical delays.
  double epsilon_ps = 1e-6;
};

struct MuxPlan {
  /// multiplexed[i] corresponds to netlist().dffs()[i].
  std::vector<bool> multiplexed;
  double base_critical_delay_ps = 0.0;
  std::size_t num_multiplexed = 0;

  double coverage() const {
    return multiplexed.empty()
               ? 0.0
               : static_cast<double>(num_multiplexed) /
                     static_cast<double>(multiplexed.size());
  }
};

/// The paper's AddMUX() procedure.
MuxPlan plan_muxes(const Netlist& nl, const DelayModel& model,
                   const MuxPlanOptions& opts = {});

/// Physically inserts the planned muxes: adds a `shift_enable` primary
/// input, one CONST0/CONST1 tie per needed polarity, and a MUX per planned
/// cell (select = shift_enable, a = scan-cell Q, b = the constant from
/// `mux_values`). Every original reader of the Q net is rewired to the mux
/// output. `mux_values[i]` must be 0/1 for planned cells (X allowed only
/// for unplanned ones). Returns the rewritten netlist; `se_out` (optional)
/// receives the shift-enable gate id in the new netlist.
Netlist insert_muxes_physically(const Netlist& nl, const MuxPlan& plan,
                                std::span<const Logic> mux_values,
                                GateId* se_out = nullptr);

}  // namespace scanpower
