#include "scan/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace scanpower {

ScanChainOrder ScanChainOrder::identity(std::size_t n) {
  ScanChainOrder o;
  o.order.resize(n);
  std::iota(o.order.begin(), o.order.end(), 0);
  return o;
}

bool ScanChainOrder::is_permutation() const {
  std::vector<bool> seen(order.size(), false);
  for (std::size_t v : order) {
    if (v >= order.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

double chain_transition_cost(const TestSet& tests,
                             const ScanChainOrder& order) {
  SP_CHECK(order.is_permutation(), "chain_transition_cost: invalid order");
  const std::size_t len = order.order.size();
  if (len == 0 || tests.patterns.empty()) return 0.0;
  // Heuristic session model: chain starts at all-0; each pattern's bits
  // are shifted in while the previous stimulus (stand-in for the unknown
  // response) shifts out. Each cell-value change during a shift cycle
  // costs 1.
  std::vector<Logic> chain(len, Logic::Zero);
  double cost = 0.0;
  for (const TestPattern& t : tests.patterns) {
    SP_CHECK(t.ppi.size() == len, "chain_transition_cost: size mismatch");
    for (std::size_t cyc = 0; cyc < len; ++cyc) {
      const Logic incoming = t.ppi[order.order[len - 1 - cyc]];
      for (std::size_t pos = len; pos-- > 1;) {
        if (chain[pos] != chain[pos - 1]) cost += 1.0;
        chain[pos] = chain[pos - 1];
      }
      if (chain[0] != incoming) cost += 1.0;
      chain[0] = incoming;
    }
  }
  return cost;
}

ScanChainOrder reorder_scan_cells(const Netlist& nl, const TestSet& tests) {
  const std::size_t len = nl.dffs().size();
  ScanChainOrder result = ScanChainOrder::identity(len);
  if (len < 3 || tests.patterns.empty()) return result;

  // Agreement matrix: A[i][j] = #patterns where cell i and cell j carry
  // the same stimulus bit. Adjacent chain cells with high agreement
  // produce few 0/1 boundaries travelling down the chain.
  std::vector<std::vector<int>> agree(len, std::vector<int>(len, 0));
  for (const TestPattern& t : tests.patterns) {
    for (std::size_t i = 0; i < len; ++i) {
      for (std::size_t j = i + 1; j < len; ++j) {
        if (t.ppi[i] == t.ppi[j]) {
          agree[i][j]++;
          agree[j][i]++;
        }
      }
    }
  }

  // Greedy chaining: seed with the globally best pair, then repeatedly
  // append the unplaced cell with the highest agreement to either end.
  std::vector<bool> placed(len, false);
  std::size_t best_i = 0, best_j = 1;
  int best = -1;
  for (std::size_t i = 0; i < len; ++i) {
    for (std::size_t j = i + 1; j < len; ++j) {
      if (agree[i][j] > best) {
        best = agree[i][j];
        best_i = i;
        best_j = j;
      }
    }
  }
  std::vector<std::size_t> chain{best_i, best_j};
  placed[best_i] = placed[best_j] = true;
  while (chain.size() < len) {
    const std::size_t head = chain.front();
    const std::size_t tail = chain.back();
    std::size_t pick = len;
    bool at_tail = true;
    int pick_score = -1;
    for (std::size_t c = 0; c < len; ++c) {
      if (placed[c]) continue;
      if (agree[tail][c] > pick_score) {
        pick_score = agree[tail][c];
        pick = c;
        at_tail = true;
      }
      if (agree[head][c] > pick_score) {
        pick_score = agree[head][c];
        pick = c;
        at_tail = false;
      }
    }
    SP_ASSERT(pick < len, "reorder_scan_cells: no cell to place");
    placed[pick] = true;
    if (at_tail) {
      chain.push_back(pick);
    } else {
      chain.insert(chain.begin(), pick);
    }
  }
  result.order = std::move(chain);
  SP_ASSERT(result.is_permutation(), "reorder_scan_cells: broken permutation");
  // Keep the better of {identity, greedy} under the cost model.
  const ScanChainOrder identity = ScanChainOrder::identity(len);
  if (chain_transition_cost(tests, identity) <
      chain_transition_cost(tests, result)) {
    return identity;
  }
  return result;
}

TestSet reorder_test_vectors(const TestSet& tests) {
  TestSet out = tests;
  const std::size_t n = tests.patterns.size();
  if (n < 3) return out;
  auto distance = [&](const TestPattern& a, const TestPattern& b) {
    int d = 0;
    for (std::size_t k = 0; k < a.ppi.size(); ++k) {
      if (a.ppi[k] != b.ppi[k]) ++d;
    }
    for (std::size_t k = 0; k < a.pi.size(); ++k) {
      if (a.pi[k] != b.pi[k]) ++d;
    }
    return d;
  };
  std::vector<bool> used(n, false);
  std::vector<std::size_t> tour{0};
  used[0] = true;
  while (tour.size() < n) {
    const TestPattern& cur = tests.patterns[tour.back()];
    std::size_t best = n;
    int best_d = 1 << 30;
    for (std::size_t c = 0; c < n; ++c) {
      if (used[c]) continue;
      const int d = distance(cur, tests.patterns[c]);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    used[best] = true;
    tour.push_back(best);
  }
  out.patterns.clear();
  out.patterns.reserve(n);
  for (std::size_t idx : tour) out.patterns.push_back(tests.patterns[idx]);
  return out;
}

}  // namespace scanpower
