#pragma once
// Scan-cell and test-vector reordering (the paper's explicit future-work
// hook: "No test vector reordering or scan cell reordering was performed
// in these experiments. By applying reordering techniques, further
// improvements can be achieved.").
//
// Both are classic scan-power optimizations orthogonal to the proposed
// structure:
//  - Test-vector reordering picks a vector sequence with small
//    consecutive Hamming distance, so scan-out/scan-in overlap produces
//    fewer chain transitions (greedy nearest-neighbour TSP heuristic).
//  - Scan-cell reordering permutes chain positions so bits that agree
//    across the test set sit next to each other, reducing the number of
//    0/1 boundaries that travel down the chain during shift (greedy
//    chaining on column agreement).
//
// Neither changes any pattern's *applied* value: cell reordering permutes
// only the chain order (ScanChainOrder tells the shift simulator which
// cell loads which bit), and vector reordering permutes whole patterns.
// Fault coverage is therefore untouched.

#include <vector>

#include "atpg/pattern.hpp"
#include "netlist/netlist.hpp"

namespace scanpower {

/// A permutation of scan-chain positions: order[k] = index into
/// Netlist::dffs() of the cell at chain position k (position 0 receives
/// the scan-in bit first).
struct ScanChainOrder {
  std::vector<std::size_t> order;

  static ScanChainOrder identity(std::size_t n);
  bool is_permutation() const;
};

/// Weighted transitions the chain itself sees while shifting the test set
/// (sum over patterns and shift cycles of adjacent-bit differences); the
/// standard cost function for scan reordering. Lower = fewer transitions
/// entering the logic.
double chain_transition_cost(const TestSet& tests, const ScanChainOrder& order);

/// Greedy scan-cell reordering: chains cells so adjacent chain positions
/// have maximal bit agreement across the test set.
ScanChainOrder reorder_scan_cells(const Netlist& nl, const TestSet& tests);

/// Greedy test-vector reordering (nearest neighbour on Hamming distance
/// over ppi bits). Returns the permuted test set; coverage statistics are
/// copied through.
TestSet reorder_test_vectors(const TestSet& tests);

}  // namespace scanpower
