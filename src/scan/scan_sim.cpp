#include "scan/scan_sim.hpp"

#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace scanpower {

std::vector<Logic> simulate_chain_loading(const ScanChainOrder& order,
                                          std::span<const Logic> ppi,
                                          int num_chains, Logic initial) {
  SP_CHECK(num_chains >= 1, "simulate_chain_loading: num_chains must be >= 1");
  SP_CHECK(order.order.size() == ppi.size() && order.is_permutation(),
           "simulate_chain_loading: invalid order");
  const std::size_t len = ppi.size();
  const std::size_t k = static_cast<std::size_t>(num_chains);
  const std::size_t lmax = len == 0 ? 0 : (len + k - 1) / k;
  std::vector<Logic> chain(len, initial);
  for (std::size_t t = 0; t < lmax; ++t) {
    for (std::size_t c = 0; c < k; ++c) {
      const std::size_t lc = c < len ? (len - c + k - 1) / k : 0;
      if (lc == 0) continue;
      for (std::size_t j = lc; j-- > 1;) {
        chain[c + j * k] = chain[c + (j - 1) * k];
      }
      const std::size_t pad = lmax - lc;
      chain[c] = t >= pad ? ppi[order.order[c + (lc - 1 - (t - pad)) * k]]
                          : Logic::Zero;
    }
  }
  return chain;
}

ScanPowerEvaluator::ScanPowerEvaluator(const Netlist& nl,
                                       const LeakageModel& leakage,
                                       const CapacitanceModel& caps,
                                       PowerConfig config)
    : nl_(&nl), leakage_(&leakage), caps_(&caps), config_(config) {
  SP_CHECK(nl.finalized(), "ScanPowerEvaluator requires a finalized netlist");
}

ScanPowerResult ScanPowerEvaluator::evaluate(const TestSet& tests,
                                             std::span<const Logic> pi_control,
                                             std::span<const Logic> mux_control,
                                             const ScanSimOptions& opts) {
  const Netlist& nl = *nl_;
  const std::size_t num_pi = nl.inputs().size();
  const std::size_t chain_len = nl.dffs().size();
  SP_CHECK(pi_control.empty() || pi_control.size() == num_pi,
           "evaluate: pi_control size mismatch");
  SP_CHECK(mux_control.empty() || mux_control.size() == chain_len,
           "evaluate: mux_control size mismatch");

  Simulator sim(nl);
  PowerEstimator power(nl, *leakage_, *caps_, config_);

  // Chain position -> dffs() index. Default: netlist order (the paper's
  // "no scan cell reordering" configuration).
  ScanChainOrder default_order = ScanChainOrder::identity(chain_len);
  const ScanChainOrder& order =
      opts.chain_order ? *opts.chain_order : default_order;
  SP_CHECK(order.order.size() == chain_len && order.is_permutation(),
           "evaluate: invalid chain order");

  // Chain state indexed by chain *position*. Scan-in enters at position 0
  // and moves toward the tail.
  std::vector<Logic> chain(chain_len, opts.initial_state);
  // PI values held from the previously applied test (traditional scan).
  std::vector<Logic> held_pi(num_pi, Logic::Zero);

  auto cell_at = [&](std::size_t pos) { return nl.dffs()[order.order[pos]]; };
  auto mux_value = [&](std::size_t pos) -> Logic {
    return mux_control.empty() ? Logic::X : mux_control[order.order[pos]];
  };

  std::size_t observed_cycles = 0;
  auto observe = [&]() {
    power.observe(sim.values());
    if (opts.cycle_observer) {
      opts.cycle_observer(observed_cycles, sim.values());
    }
    ++observed_cycles;
  };

  auto drive_shift_cycle = [&]() {
    // What the combinational logic sees during this shift cycle.
    for (std::size_t k = 0; k < num_pi; ++k) {
      const Logic ctrl = pi_control.empty() ? Logic::X : pi_control[k];
      sim.set_input(nl.inputs()[k], ctrl == Logic::X ? held_pi[k] : ctrl);
    }
    for (std::size_t pos = 0; pos < chain_len; ++pos) {
      const Logic mv = mux_value(pos);
      sim.set_state(cell_at(pos), mv == Logic::X ? chain[pos] : mv);
    }
    sim.eval_incremental();
    observe();
  };

  // Multi-chain layout: position p belongs to chain p % k at in-chain
  // index p / k; all chains shift together for ceil(L/k) cycles, shorter
  // chains padded with leading zeros so every cell lands on its bit.
  const std::size_t k = static_cast<std::size_t>(opts.num_chains);
  SP_CHECK(opts.num_chains >= 1, "evaluate: num_chains must be >= 1");
  const std::size_t lmax = chain_len == 0 ? 0 : (chain_len + k - 1) / k;
  auto chain_length = [&](std::size_t c) {
    return c < chain_len ? (chain_len - c + k - 1) / k : 0;
  };

  for (const TestPattern& test : tests.patterns) {
    SP_CHECK(test.pi.size() == num_pi && test.ppi.size() == chain_len,
             "evaluate: pattern size mismatch");
    // ---- shift phase: ceil(L/k) cycles ---------------------------------
    for (std::size_t t = 0; t < lmax; ++t) {
      for (std::size_t c = 0; c < k; ++c) {
        const std::size_t lc = chain_length(c);
        if (lc == 0) continue;
        for (std::size_t j = lc; j-- > 1;) {
          chain[c + j * k] = chain[c + (j - 1) * k];
        }
        const std::size_t pad = lmax - lc;
        Logic incoming = Logic::Zero;
        if (t >= pad) {
          const std::size_t idx = lc - 1 - (t - pad);
          incoming = test.ppi[order.order[c + idx * k]];
        }
        chain[c] = incoming;
      }
      drive_shift_cycle();
    }
    // After the shifts: chain[pos] == test.ppi[order[pos]].
    // ---- capture cycle -------------------------------------------------
    // Shift-enable drops: muxes go transparent, PIs take the test values,
    // the response is captured into the cells.
    for (std::size_t k = 0; k < num_pi; ++k) {
      sim.set_input(nl.inputs()[k], test.pi[k]);
      held_pi[k] = test.pi[k];
    }
    for (std::size_t pos = 0; pos < chain_len; ++pos) {
      sim.set_state(cell_at(pos), chain[pos]);
    }
    sim.eval_incremental();
    if (opts.include_capture_cycles) observe();
    // Captured response becomes the chain content for the next scan-out.
    for (std::size_t pos = 0; pos < chain_len; ++pos) {
      chain[pos] = sim.next_state(cell_at(pos));
      // An X response bit (possible when patterns carry X) shifts out as X.
    }
  }

  ScanPowerResult res;
  res.dynamic_per_hz_uw = power.dynamic_per_hz_uw();
  res.static_uw = power.static_uw();
  res.mean_toggled_cap_ff = power.mean_toggled_cap_ff();
  res.mean_leakage_na = power.mean_leakage_na();
  res.peak_dynamic_per_hz_uw = power.peak_dynamic_per_hz_uw();
  res.peak_leakage_na = power.peak_leakage_na();
  res.cycles = power.cycles_observed();
  return res;
}

}  // namespace scanpower
