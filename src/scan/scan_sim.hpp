#pragma once
// Test-per-scan shift-power simulation.
//
// Protocol (full scan, one chain, no reordering -- as in the paper's
// experiments): for each test vector, L shift cycles move the stimulus in
// while the previous response moves out; one capture cycle follows. The
// combinational part is re-evaluated at every shift cycle and fed to a
// PowerEstimator, yielding exactly the two Table-I quantities: dynamic
// power per Hz and static (leakage) power, both for the combinational
// logic.
//
// Scan-mode input control is expressed per method:
//  - traditional scan  : PIs hold the previous test's values; every cell's
//    Q drives the logic directly.
//  - input control [8] : PIs are driven with a blocking pattern during
//    shift; cells drive the logic directly.
//  - proposed          : PIs driven with the found pattern AND muxed cells
//    present constants to the logic during shift.

#include <functional>
#include <span>

#include "atpg/pattern.hpp"
#include "netlist/netlist.hpp"
#include "power/power_est.hpp"
#include "scan/add_mux.hpp"
#include "scan/reorder.hpp"
#include "sim/logic.hpp"

namespace scanpower {

struct ScanPowerResult {
  double dynamic_per_hz_uw = 0.0;  ///< multiply by f for absolute power
  double static_uw = 0.0;
  double mean_toggled_cap_ff = 0.0;
  double mean_leakage_na = 0.0;
  double peak_dynamic_per_hz_uw = 0.0;  ///< worst single shift cycle
  double peak_leakage_na = 0.0;
  std::size_t cycles = 0;          ///< observed clock cycles
};

struct ScanSimOptions {
  /// Include the capture cycle (shift-enable low) in the power average.
  /// It is identical across methods; the paper's scan-mode framing is
  /// shift-only, so the default is off.
  bool include_capture_cycles = false;
  /// Chain state before the first pattern is shifted in.
  Logic initial_state = Logic::Zero;
  /// Optional scan-cell ordering (chain position -> dffs() index); null =
  /// netlist order, i.e. the paper's "no scan cell reordering" setup.
  const ScanChainOrder* chain_order = nullptr;
  /// Number of parallel scan chains. Cells are dealt round-robin over the
  /// (possibly reordered) position sequence; all chains shift together
  /// for ceil(L / num_chains) cycles per pattern, shorter chains padded
  /// with leading zero bits. 1 = the paper's single-chain setup.
  int num_chains = 1;
  /// Optional per-cycle observer (waveform dumps, custom metrics): called
  /// with the cycle index and the settled value vector for every observed
  /// cycle. Not part of the power accounting.
  std::function<void(std::size_t cycle, std::span<const Logic> values)>
      cycle_observer;
};

/// Pure chain-register model of the multi-chain shift protocol: starting
/// from `initial`, shifts `ppi` (cell-indexed, remapped through `order`)
/// into `num_chains` parallel chains for ceil(L/num_chains) cycles and
/// returns the final position-indexed chain state. Exposed for protocol
/// tests; the power evaluator follows exactly this sequence.
std::vector<Logic> simulate_chain_loading(const ScanChainOrder& order,
                                          std::span<const Logic> ppi,
                                          int num_chains,
                                          Logic initial = Logic::Zero);

class ScanPowerEvaluator {
 public:
  ScanPowerEvaluator(const Netlist& nl, const LeakageModel& leakage,
                     const CapacitanceModel& caps, PowerConfig config = {});

  /// Runs the whole test session.
  /// `pi_control`: per-PI value driven during shift; X = hold the
  ///   previously applied test's PI value (traditional-scan behaviour).
  /// `mux_control`: per-DFF constant presented during shift; X = the cell
  ///   is not multiplexed (its chain bit drives the logic).
  /// Sizes must match inputs()/dffs(); pass empty spans for all-X.
  ScanPowerResult evaluate(const TestSet& tests,
                           std::span<const Logic> pi_control = {},
                           std::span<const Logic> mux_control = {},
                           const ScanSimOptions& opts = {});

 private:
  const Netlist* nl_;
  const LeakageModel* leakage_;
  const CapacitanceModel* caps_;
  PowerConfig config_;
};

}  // namespace scanpower
