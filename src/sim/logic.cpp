#include "sim/logic.hpp"

#include "util/assert.hpp"

namespace scanpower {

char logic_char(Logic v) {
  switch (v) {
    case Logic::Zero: return '0';
    case Logic::One: return '1';
    case Logic::X: return 'x';
  }
  return '?';
}

Logic logic_from_char(char c) {
  switch (c) {
    case '0': return Logic::Zero;
    case '1': return Logic::One;
    case 'x':
    case 'X':
    case '-': return Logic::X;
    default:
      throw Error(std::string("invalid logic character: ") + c);
  }
}

std::string logic_string(std::span<const Logic> values) {
  std::string out;
  out.reserve(values.size());
  for (Logic v : values) out.push_back(logic_char(v));
  return out;
}

std::vector<Logic> logic_vector(const std::string& s) {
  std::vector<Logic> out;
  out.reserve(s.size());
  for (char c : s) out.push_back(logic_from_char(c));
  return out;
}

namespace {

/// AND-reduce with Kleene semantics: any 0 dominates; else X if any X.
Logic and_reduce(std::span<const Logic> ins) {
  bool saw_x = false;
  for (Logic v : ins) {
    if (v == Logic::Zero) return Logic::Zero;
    if (v == Logic::X) saw_x = true;
  }
  return saw_x ? Logic::X : Logic::One;
}

Logic or_reduce(std::span<const Logic> ins) {
  bool saw_x = false;
  for (Logic v : ins) {
    if (v == Logic::One) return Logic::One;
    if (v == Logic::X) saw_x = true;
  }
  return saw_x ? Logic::X : Logic::Zero;
}

Logic parity_reduce(std::span<const Logic> ins) {
  bool acc = false;
  for (Logic v : ins) {
    if (v == Logic::X) return Logic::X;
    acc ^= as_bool(v);
  }
  return from_bool(acc);
}

}  // namespace

Logic eval_gate(GateType type, std::span<const Logic> ins) {
  switch (type) {
    case GateType::Const0:
      return Logic::Zero;
    case GateType::Const1:
      return Logic::One;
    case GateType::Buf:
      return ins[0];
    case GateType::Not:
      return logic_not(ins[0]);
    case GateType::And:
      return and_reduce(ins);
    case GateType::Nand:
      return logic_not(and_reduce(ins));
    case GateType::Or:
      return or_reduce(ins);
    case GateType::Nor:
      return logic_not(or_reduce(ins));
    case GateType::Xor:
      return parity_reduce(ins);
    case GateType::Xnor:
      return logic_not(parity_reduce(ins));
    case GateType::Mux: {
      const Logic s = ins[0];
      const Logic a = ins[1];
      const Logic b = ins[2];
      if (s == Logic::Zero) return a;
      if (s == Logic::One) return b;
      // X select: output known only if both data inputs agree.
      return (a == b) ? a : Logic::X;
    }
    case GateType::Input:
    case GateType::Dff:
      SP_ASSERT(false, "eval_gate called on a source (Input/Dff)");
  }
  SP_ASSERT(false, "unhandled gate type in eval_gate");
}

}  // namespace scanpower
