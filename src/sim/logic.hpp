#pragma once
// Three-valued (Kleene) logic: 0, 1, X.
//
// X serves two roles in this library: "unknown/don't-care" during
// justification and pattern search, and "unassigned controlled input"
// in power evaluation (where it is interpreted as an expectation over
// {0,1}; see power/leakage_eval).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/gate_types.hpp"

namespace scanpower {

enum class Logic : std::uint8_t { Zero = 0, One = 1, X = 2 };

inline Logic from_bool(bool b) { return b ? Logic::One : Logic::Zero; }
inline bool is_known(Logic v) { return v != Logic::X; }
inline bool as_bool(Logic v) { return v == Logic::One; }

inline Logic logic_not(Logic v) {
  if (v == Logic::X) return Logic::X;
  return v == Logic::Zero ? Logic::One : Logic::Zero;
}

char logic_char(Logic v);                 ///< '0', '1', 'x'
Logic logic_from_char(char c);            ///< throws Error on other chars
std::string logic_string(std::span<const Logic> values);
std::vector<Logic> logic_vector(const std::string& s);

/// Kleene evaluation of one gate over its input values.
/// For Mux, ins = {select, a, b}. Input/Dff gates are sources and must not
/// be passed here (asserted).
Logic eval_gate(GateType type, std::span<const Logic> ins);

}  // namespace scanpower
