#include "sim/simulator.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace scanpower {

Simulator::Simulator(const Netlist& nl) : nl_(&nl) {
  SP_CHECK(nl.finalized(), "Simulator requires a finalized netlist");
  values_.assign(nl.num_gates(), Logic::X);
  in_dirty_.assign(nl.num_gates(), 0);
  queued_.assign(nl.num_gates(), 0);
}

void Simulator::touch_source(GateId id, Logic v) {
  if (values_[id] == v) return;
  values_[id] = v;
  if (!in_dirty_[id]) {
    in_dirty_[id] = 1;
    dirty_.push_back(id);
  }
}

void Simulator::set_input(GateId id, Logic v) {
  SP_ASSERT(nl_->type(id) == GateType::Input, "set_input on non-input");
  touch_source(id, v);
}

void Simulator::set_state(GateId id, Logic v) {
  SP_ASSERT(nl_->type(id) == GateType::Dff, "set_state on non-DFF");
  touch_source(id, v);
}

void Simulator::set_source(GateId id, Logic v) {
  const GateType t = nl_->type(id);
  SP_ASSERT(t == GateType::Input || t == GateType::Dff,
            "set_source on non-source");
  touch_source(id, v);
}

void Simulator::clear_sources() {
  for (GateId id : nl_->inputs()) touch_source(id, Logic::X);
  for (GateId id : nl_->dffs()) touch_source(id, Logic::X);
}

void Simulator::set_inputs(std::span<const Logic> values) {
  SP_CHECK(values.size() == nl_->inputs().size(),
           "set_inputs: size mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    touch_source(nl_->inputs()[i], values[i]);
  }
}

void Simulator::set_states(std::span<const Logic> values) {
  SP_CHECK(values.size() == nl_->dffs().size(), "set_states: size mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    touch_source(nl_->dffs()[i], values[i]);
  }
}

void Simulator::eval() {
  const std::span<const GateType> types = nl_->types_flat();
  for (GateId id : nl_->topo_order()) {
    const std::span<const GateId> fans = nl_->fanin_span(id);
    ins_.clear();
    for (GateId f : fans) ins_.push_back(values_[f]);
    values_[id] = eval_gate(types[id], ins_);
  }
  for (GateId id : dirty_) in_dirty_[id] = 0;
  dirty_.clear();
  full_pass_done_ = true;
}

void Simulator::eval_incremental() {
  if (!full_pass_done_) {
    eval();
    return;
  }
  // Level-ordered event propagation: a min-heap keyed by level guarantees
  // each gate is evaluated at most once with final fanin values. queued_
  // is member scratch; every entry set here is cleared on pop, so it is
  // all-zero again when the function returns.
  const std::span<const GateType> types = nl_->types_flat();
  const std::span<const std::uint32_t> levels = nl_->levels_flat();
  using Item = std::pair<std::uint32_t, GateId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  auto schedule_fanouts = [&](GateId id) {
    for (GateId fo : nl_->fanout_span(id)) {
      if (!is_combinational(types[fo])) continue;  // stop at DFF D pins
      if (!queued_[fo]) {
        queued_[fo] = 1;
        heap.emplace(levels[fo], fo);
      }
    }
  };
  for (GateId id : dirty_) schedule_fanouts(id);
  for (GateId id : dirty_) in_dirty_[id] = 0;
  dirty_.clear();

  while (!heap.empty()) {
    const GateId id = heap.top().second;
    heap.pop();
    queued_[id] = 0;
    ins_.clear();
    for (GateId f : nl_->fanin_span(id)) ins_.push_back(values_[f]);
    const Logic v = eval_gate(types[id], ins_);
    if (v != values_[id]) {
      values_[id] = v;
      schedule_fanouts(id);
    }
  }
}

Logic Simulator::next_state(GateId dff) const {
  SP_ASSERT(nl_->type(dff) == GateType::Dff, "next_state on non-DFF");
  return values_[nl_->fanins(dff)[0]];
}

void Simulator::capture() {
  for (GateId dff : nl_->dffs()) {
    touch_source(dff, values_[nl_->fanins(dff)[0]]);
  }
}

}  // namespace scanpower
