#pragma once
// Levelized 3-valued logic simulator with an incremental (event-driven)
// evaluation path.
//
// Sources are primary inputs (set_input) and DFF outputs / present state
// (set_state). eval() performs a full topological pass; eval_incremental()
// propagates only from sources whose values changed since the last eval,
// which is what the scan-shift loop and Monte-Carlo sampling use.

#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic.hpp"

namespace scanpower {

class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Sets a primary-input value. `id` must be an Input gate.
  void set_input(GateId id, Logic v);
  /// Sets a present-state (DFF output) value. `id` must be a Dff gate.
  void set_state(GateId id, Logic v);
  /// Sets any source (Input or Dff).
  void set_source(GateId id, Logic v);
  /// Resets every source to X.
  void clear_sources();

  /// Sets all primary inputs from a vector ordered like netlist().inputs().
  void set_inputs(std::span<const Logic> values);
  /// Sets all DFF outputs from a vector ordered like netlist().dffs().
  void set_states(std::span<const Logic> values);

  /// Full levelized evaluation of the combinational core.
  void eval();

  /// Propagates only from sources changed since the previous eval*/capture.
  /// Falls back to a full pass on first use. Produces values identical to
  /// eval().
  void eval_incremental();

  Logic value(GateId id) const { return values_[id]; }
  const std::vector<Logic>& values() const { return values_; }

  /// Next-state value of a DFF (the value at its D pin after eval()).
  Logic next_state(GateId dff) const;

  /// Clock edge: copies every DFF's D value into its output (capture).
  /// Marks the DFFs as changed sources for the next incremental eval.
  void capture();

 private:
  void touch_source(GateId id, Logic v);

  const Netlist* nl_;
  std::vector<Logic> values_;
  std::vector<GateId> dirty_;          ///< changed sources since last eval
  std::vector<std::uint8_t> in_dirty_; ///< membership flag for dirty_
  std::vector<std::uint8_t> queued_;   ///< scratch: heap membership (always
                                       ///< all-zero between eval calls)
  std::vector<Logic> ins_;             ///< scratch: fanin value gather
  bool full_pass_done_ = false;
};

}  // namespace scanpower
