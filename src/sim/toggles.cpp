#include "sim/toggles.hpp"

#include "util/assert.hpp"

namespace scanpower {

double weighted_toggles(std::span<const Logic> before,
                        std::span<const Logic> after,
                        std::span<const double> weights) {
  SP_CHECK(before.size() == after.size() && before.size() == weights.size(),
           "weighted_toggles: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    const Logic a = before[i];
    const Logic b = after[i];
    if (a == b) continue;
    if (a == Logic::X || b == Logic::X) {
      sum += 0.5 * weights[i];  // expectation over the unknown endpoint
    } else {
      sum += weights[i];
    }
  }
  return sum;
}

void ToggleAccumulator::observe(std::span<const Logic> state) {
  if (has_prev_) {
    total_ += weighted_toggles(prev_, state, weights_);
    ++cycles_;
  }
  prev_.assign(state.begin(), state.end());
  has_prev_ = true;
}

void ToggleAccumulator::reset() {
  prev_.clear();
  total_ = 0.0;
  cycles_ = 0;
  has_prev_ = false;
}

}  // namespace scanpower
