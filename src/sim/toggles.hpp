#pragma once
// Weighted toggle counting between consecutive circuit states.
//
// Dynamic power per eq.(1) of the paper is f * 1/2 * VDD^2 * sum_i a_i*C_i;
// under a zero-delay model the switching activity contribution of one
// clock cycle is the set of gates whose output value changed. The counter
// accumulates sum(C_i over toggled gates) so the caller can average over
// cycles and apply the voltage/frequency factors.

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic.hpp"

namespace scanpower {

/// Weighted toggle sum between two full value vectors.
/// Transitions to or from X count half a toggle (expectation over the
/// unknown value); X -> X counts zero.
double weighted_toggles(std::span<const Logic> before,
                        std::span<const Logic> after,
                        std::span<const double> weights);

/// Convenience accumulator for per-cycle series.
class ToggleAccumulator {
 public:
  explicit ToggleAccumulator(std::vector<double> weights)
      : weights_(std::move(weights)) {}

  /// Records the first state without counting, then accumulates toggles
  /// against the previous state.
  void observe(std::span<const Logic> state);

  double total() const { return total_; }
  std::size_t cycles() const { return cycles_; }
  /// Mean weighted toggles per observed transition (cycle).
  double per_cycle() const { return cycles_ ? total_ / static_cast<double>(cycles_) : 0.0; }
  void reset();

 private:
  std::vector<double> weights_;
  std::vector<Logic> prev_;
  double total_ = 0.0;
  std::size_t cycles_ = 0;
  bool has_prev_ = false;
};

}  // namespace scanpower
