#include "sim/vcd.hpp"

#include <ostream>

#include "util/assert.hpp"

namespace scanpower {

namespace {
/// Compact printable VCD identifier codes: base-94 over '!'..'~'.
std::string vcd_code(std::size_t index) {
  std::string code;
  do {
    code.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return code;
}

char vcd_char(Logic v) {
  switch (v) {
    case Logic::Zero: return '0';
    case Logic::One: return '1';
    case Logic::X: return 'x';
  }
  return 'x';
}
}  // namespace

VcdWriter::VcdWriter(std::ostream& out, const Netlist& nl,
                     const std::string& top, std::vector<GateId> signals)
    : out_(&out), signals_(std::move(signals)) {
  if (signals_.empty()) {
    signals_.reserve(nl.num_gates());
    for (GateId id = 0; id < nl.num_gates(); ++id) signals_.push_back(id);
  }
  codes_.reserve(signals_.size());
  last_.assign(signals_.size(), Logic::X);

  *out_ << "$timescale 1ns $end\n";
  *out_ << "$scope module " << top << " $end\n";
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    codes_.push_back(vcd_code(i));
    *out_ << "$var wire 1 " << codes_[i] << " " << nl.gate_name(signals_[i])
          << " $end\n";
  }
  *out_ << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::sample(std::uint64_t time, std::span<const Logic> values) {
  SP_CHECK(!finished_, "VcdWriter: sample after finish");
  bool any = first_;
  if (!any) {
    for (std::size_t i = 0; i < signals_.size(); ++i) {
      if (values[signals_[i]] != last_[i]) {
        any = true;
        break;
      }
    }
  }
  if (!any) return;
  *out_ << "#" << time << "\n";
  if (first_) *out_ << "$dumpvars\n";
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    const Logic v = values[signals_[i]];
    if (first_ || v != last_[i]) {
      *out_ << vcd_char(v) << codes_[i] << "\n";
      last_[i] = v;
      ++changes_;
    }
  }
  if (first_) *out_ << "$end\n";
  first_ = false;
}

void VcdWriter::finish() {
  finished_ = true;
}

VcdWriter::~VcdWriter() { finish(); }

}  // namespace scanpower
