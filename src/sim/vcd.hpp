#pragma once
// Minimal VCD (value change dump) writer for waveform inspection of scan
// episodes in GTKWave-class viewers.
//
// Usage:
//   VcdWriter vcd(out, nl, "scan_session");
//   for each cycle: vcd.sample(t, values);
//   vcd.finish();
//
// Signals are 1-bit scalars named after their nets; X maps to VCD 'x'.
// The scan evaluator exposes a per-cycle observer (ScanSimOptions) that
// plugs straight into sample().

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic.hpp"

namespace scanpower {

class VcdWriter {
 public:
  /// Writes the VCD header immediately. `signals` restricts the dump
  /// (empty = every gate).
  VcdWriter(std::ostream& out, const Netlist& nl, const std::string& top,
            std::vector<GateId> signals = {});

  /// Emits value changes at `time` (arbitrary integer timescale units).
  /// Only changed signals are written (first call dumps everything).
  void sample(std::uint64_t time, std::span<const Logic> values);

  /// Closes the final timestep. Called by the destructor if omitted.
  void finish();
  ~VcdWriter();

  std::size_t changes_written() const { return changes_; }

 private:
  std::ostream* out_;
  std::vector<GateId> signals_;
  std::vector<std::string> codes_;  ///< VCD id code per signal
  std::vector<Logic> last_;
  bool first_ = true;
  bool finished_ = false;
  std::size_t changes_ = 0;
};

}  // namespace scanpower
