#include "techmap/techmap.hpp"

#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/builder.hpp"
#include "util/assert.hpp"
#include "util/strings.hpp"

namespace scanpower {

namespace {

/// Emits mapped gates into a NetlistBuilder, tracking name aliases for
/// bypassed buffers and generating unique auxiliary net names.
class Mapper {
 public:
  Mapper(const Netlist& src, const TechmapOptions& opts)
      : src_(src), opts_(opts), builder_(src.name()) {
    SP_CHECK(opts.max_width >= 2, "techmap: max_width must be >= 2");
  }

  Netlist run() {
    // Emit in original order; name-based building tolerates forward
    // references, and aliases are resolved lazily at link time via a
    // pre-pass that computes them in topological-ish order below.
    compute_aliases();
    for (GateId id = 0; id < src_.num_gates(); ++id) emit_gate(id);
    for (GateId id : src_.outputs()) builder_.add_output(alias_[id]);
    return builder_.link();
  }

 private:
  void compute_aliases() {
    alias_.resize(src_.num_gates());
    // Buffers collapse onto their (transitively resolved) driver. Buffer
    // chains are resolved by walking until a non-buffer is found; cycles
    // are impossible in a finalized netlist.
    for (GateId id = 0; id < src_.num_gates(); ++id) {
      GateId g = id;
      while (src_.type(g) == GateType::Buf) g = src_.fanins(g)[0];
      alias_[id] = src_.gate_name(g);
    }
  }

  std::string fresh(const std::string& hint) {
    for (;;) {
      std::string name = strprintf("tm$%s$%u", hint.c_str(), counter_++);
      if (src_.find(name) == kInvalidGate) return name;
    }
  }

  std::vector<std::string> fanin_names(GateId id) {
    std::vector<std::string> names;
    names.reserve(src_.fanins(id).size());
    for (GateId f : src_.fanins(id)) names.push_back(alias_[f]);
    return names;
  }

  // ---- library-cell emission helpers ---------------------------------

  std::string emit_not(const std::string& a, const std::string& out = "") {
    const std::string name = out.empty() ? fresh("inv") : out;
    builder_.add_gate(GateType::Not, name, {a});
    return name;
  }

  /// AND of `ins` realized as NAND+INV trees; returns the output net name.
  /// If `out` is non-empty the final net uses that name.
  std::string emit_and(std::vector<std::string> ins, const std::string& out) {
    const std::string n = emit_nand(std::move(ins), "");
    return emit_not(n, out);
  }

  std::string emit_or(std::vector<std::string> ins, const std::string& out) {
    const std::string n = emit_nor(std::move(ins), "");
    return emit_not(n, out);
  }

  std::string emit_nand(std::vector<std::string> ins, const std::string& out) {
    SP_ASSERT(ins.size() >= 2, "emit_nand needs >= 2 inputs");
    if (static_cast<int>(ins.size()) <= opts_.max_width) {
      const std::string name = out.empty() ? fresh("nand") : out;
      builder_.add_gate(GateType::Nand, name, ins);
      return name;
    }
    // Reduce the operand list with AND groups until it fits one cell.
    return emit_nand(reduce_groups(std::move(ins), /*with_and=*/true), out);
  }

  std::string emit_nor(std::vector<std::string> ins, const std::string& out) {
    SP_ASSERT(ins.size() >= 2, "emit_nor needs >= 2 inputs");
    if (static_cast<int>(ins.size()) <= opts_.max_width) {
      const std::string name = out.empty() ? fresh("nor") : out;
      builder_.add_gate(GateType::Nor, name, ins);
      return name;
    }
    return emit_nor(reduce_groups(std::move(ins), /*with_and=*/false), out);
  }

  /// Groups operands into chunks of max_width and replaces each chunk by
  /// its AND (or OR). Guarantees the result is strictly shorter, so the
  /// emit_nand/emit_nor recursion terminates.
  std::vector<std::string> reduce_groups(std::vector<std::string> ins,
                                         bool with_and) {
    std::vector<std::string> next;
    std::size_t i = 0;
    const std::size_t w = static_cast<std::size_t>(opts_.max_width);
    while (i < ins.size()) {
      const std::size_t take = std::min(w, ins.size() - i);
      if (take == 1) {
        next.push_back(ins[i]);
      } else {
        std::vector<std::string> group(ins.begin() + static_cast<long>(i),
                                       ins.begin() + static_cast<long>(i + take));
        next.push_back(with_and ? emit_and(std::move(group), "")
                                : emit_or(std::move(group), ""));
      }
      i += take;
    }
    return next;
  }

  /// 2-input XOR from four NAND2 cells.
  std::string emit_xor2(const std::string& a, const std::string& b,
                        const std::string& out) {
    const std::string m = fresh("xm");
    builder_.add_gate(GateType::Nand, m, {a, b});
    const std::string pa = fresh("xa");
    builder_.add_gate(GateType::Nand, pa, {a, m});
    const std::string pb = fresh("xb");
    builder_.add_gate(GateType::Nand, pb, {b, m});
    const std::string name = out.empty() ? fresh("xor") : out;
    builder_.add_gate(GateType::Nand, name, {pa, pb});
    return name;
  }

  std::string emit_parity(const std::vector<std::string>& ins, bool invert,
                          const std::string& out) {
    std::string acc = ins[0];
    for (std::size_t i = 1; i + 1 < ins.size(); ++i) {
      acc = emit_xor2(acc, ins[i], "");
    }
    if (!invert) return emit_xor2(acc, ins.back(), out);
    const std::string x = emit_xor2(acc, ins.back(), "");
    return emit_not(x, out);
  }

  void emit_gate(GateId id) {
    const Gate& g = src_.gate(id);
    const std::string& out = g.name;
    switch (g.type) {
      case GateType::Input:
        builder_.add_input(out);
        return;
      case GateType::Dff:
        builder_.add_gate(GateType::Dff, out, {alias_[g.fanins[0]]});
        return;
      case GateType::Const0:
      case GateType::Const1:
        builder_.add_gate(g.type, out, {});
        return;
      case GateType::Buf:
        return;  // bypassed via alias
      case GateType::Not:
        emit_not(alias_[g.fanins[0]], out);
        return;
      case GateType::And:
        emit_and(fanin_names(id), out);
        return;
      case GateType::Or:
        emit_or(fanin_names(id), out);
        return;
      case GateType::Nand:
        emit_nand(fanin_names(id), out);
        return;
      case GateType::Nor:
        emit_nor(fanin_names(id), out);
        return;
      case GateType::Xor:
        emit_parity(fanin_names(id), /*invert=*/false, out);
        return;
      case GateType::Xnor:
        emit_parity(fanin_names(id), /*invert=*/true, out);
        return;
      case GateType::Mux: {
        // out = s ? b : a  ==  NAND(NAND(a, !s), NAND(b, s))
        const auto names = fanin_names(id);
        const std::string& s = names[0];
        const std::string& a = names[1];
        const std::string& b = names[2];
        const std::string ns = emit_not(s);
        const std::string ta = fresh("mta");
        builder_.add_gate(GateType::Nand, ta, {a, ns});
        const std::string tb = fresh("mtb");
        builder_.add_gate(GateType::Nand, tb, {b, s});
        builder_.add_gate(GateType::Nand, out, {ta, tb});
        return;
      }
    }
    SP_ASSERT(false, "unhandled gate type in techmap");
  }

  const Netlist& src_;
  TechmapOptions opts_;
  NetlistBuilder builder_;
  std::vector<std::string> alias_;
  unsigned counter_ = 0;
};

}  // namespace

Netlist map_to_nand_nor_inv(const Netlist& nl, const TechmapOptions& opts) {
  // A buffer driven only by buffers up to a PI that is also a PO would
  // alias a PO name to a PI; that is fine (OUTPUT(pi) is legal in .bench).
  Mapper mapper(nl, opts);
  return mapper.run();
}

bool is_mapped(const Netlist& nl, const TechmapOptions& opts) {
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    switch (nl.type(id)) {
      case GateType::Input:
      case GateType::Dff:
      case GateType::Const0:
      case GateType::Const1:
      case GateType::Not:
        break;
      case GateType::Nand:
      case GateType::Nor:
        if (static_cast<int>(nl.fanins(id).size()) > opts.max_width) return false;
        break;
      default:
        return false;
    }
  }
  return true;
}

}  // namespace scanpower
