#pragma once
// Technology mapping into the paper's cell library: NAND, NOR, INV
// (plus DFFs and constants, which pass through).
//
// The DATE'05 evaluation maps every ISCAS89 circuit onto a library that
// "contains only NAND gates, NOR gates, and inverters"; the leakage tables
// (power module) cover exactly that library. map_to_nand_nor_inv() is a
// correctness-preserving structural rewrite:
//
//   BUF           -> bypassed (uses rewired to the driver)
//   AND/OR        -> NAND/NOR + INV (trees when wider than max_width)
//   NAND/NOR wide -> balanced trees of <=max_width cells
//   XOR/XNOR      -> 4-NAND2 cells per 2-input stage, chained for n>2
//   MUX(s,a,b)    -> NAND(NAND(a, INV s), NAND(b, s))
//
// Primary outputs keep their original net names so test vectors and
// response comparison remain valid across mapping.

#include "netlist/netlist.hpp"

namespace scanpower {

struct TechmapOptions {
  /// Maximum fanin width of a NAND/NOR cell in the target library.
  /// The leakage model provides tables for widths 2..4.
  int max_width = 4;
};

/// Returns a functionally equivalent netlist using only
/// {NAND, NOR, NOT, DFF, INPUT, CONST0, CONST1}.
Netlist map_to_nand_nor_inv(const Netlist& nl, const TechmapOptions& opts = {});

/// True iff every gate of `nl` belongs to the target library.
bool is_mapped(const Netlist& nl, const TechmapOptions& opts = {});

}  // namespace scanpower
