#include "timing/delay_model.hpp"

#include "util/assert.hpp"

namespace scanpower {

double CapacitanceModel::pin_cap_ff(GateType type, int width) const {
  // Wider cells present slightly larger pins (device sizing for equal
  // drive); inverters are the smallest.
  switch (type) {
    case GateType::Not:
    case GateType::Buf:
      return 1.2;
    case GateType::Nand:
    case GateType::And:
      return 1.4 + 0.15 * (width - 2);
    case GateType::Nor:
    case GateType::Or:
      return 1.6 + 0.20 * (width - 2);  // PMOS stacks are wider
    case GateType::Xor:
    case GateType::Xnor:
      return 2.2;
    case GateType::Mux:
      return 1.8;
    case GateType::Dff:
      return 1.9;  // D pin
    default:
      return 1.4;
  }
}

double CapacitanceModel::load_ff(const Netlist& nl, GateId id) const {
  const Gate& g = nl.gate(id);
  double load = 0.0;
  for (GateId fo : g.fanouts) {
    load += pin_cap_ff(nl.type(fo), static_cast<int>(nl.fanins(fo).size()));
    load += wire_cap_per_fanout_ff();
  }
  if (g.is_output) load += output_pad_cap_ff();
  return load;
}

std::vector<double> CapacitanceModel::load_vector(const Netlist& nl) const {
  std::vector<double> loads(nl.num_gates());
  for (GateId id = 0; id < nl.num_gates(); ++id) loads[id] = load_ff(nl, id);
  return loads;
}

double DelayModel::intrinsic_ps(GateType type, int width) const {
  switch (type) {
    case GateType::Not:
      return 6.0;
    case GateType::Buf:
      return 10.0;
    case GateType::Nand:
    case GateType::And:
      return 9.0 + 2.5 * (width - 2);
    case GateType::Nor:
    case GateType::Or:
      return 11.0 + 3.5 * (width - 2);  // series PMOS is slower
    case GateType::Xor:
    case GateType::Xnor:
      return 18.0 + 4.0 * (width - 2);
    case GateType::Mux:
      return 14.0;
    case GateType::Const0:
    case GateType::Const1:
      return 0.0;
    case GateType::Input:
    case GateType::Dff:
      return 0.0;  // source arrival handled by the STA
  }
  SP_ASSERT(false, "unhandled gate type in intrinsic_ps");
}

double DelayModel::drive_res_ps_per_ff(GateType type, int width) const {
  switch (type) {
    case GateType::Not:
      return 1.6;
    case GateType::Buf:
      return 1.4;
    case GateType::Nand:
    case GateType::And:
      return 1.9 + 0.25 * (width - 2);
    case GateType::Nor:
    case GateType::Or:
      return 2.3 + 0.40 * (width - 2);
    case GateType::Xor:
    case GateType::Xnor:
      return 2.6;
    case GateType::Mux:
      return 2.0;
    default:
      return 0.0;
  }
}

double DelayModel::gate_delay_ps(const Netlist& nl, GateId id) const {
  const Gate& g = nl.gate(id);
  if (!is_combinational(g.type)) return 0.0;
  const int width = static_cast<int>(g.fanins.size());
  return intrinsic_ps(g.type, width) +
         drive_res_ps_per_ff(g.type, width) * caps_.load_ff(nl, id);
}

}  // namespace scanpower
