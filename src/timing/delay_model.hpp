#pragma once
// Load-dependent linear delay model and pin/wire capacitance model.
//
// delay(g) = intrinsic(type, width) + drive_res(type, width) * load(g)
// load(g)  = sum over fanout pins of pin_cap + wire_cap_per_fanout
//
// Constants approximate a 45 nm standard-cell library at 0.9 V (the
// technology of the paper's evaluation): picosecond intrinsics,
// femtofarad pin caps, ps/fF drive resistance. Absolute accuracy is not
// required -- AddMUX() only needs a consistent notion of "critical path
// delay changed", and dynamic power needs per-gate load capacitance.

#include <vector>

#include "netlist/netlist.hpp"

namespace scanpower {

class CapacitanceModel {
 public:
  /// Input-pin capacitance in fF for one pin of a gate.
  double pin_cap_ff(GateType type, int width) const;

  /// Estimated wire capacitance added per fanout branch (fF).
  double wire_cap_per_fanout_ff() const { return 0.35; }

  /// Total load on a gate's output net (fF): fanout pin caps + wire.
  /// Primary outputs add an external load.
  double load_ff(const Netlist& nl, GateId id) const;

  /// Per-gate load vector for the whole netlist (dynamic-power weights).
  std::vector<double> load_vector(const Netlist& nl) const;

  double output_pad_cap_ff() const { return 3.0; }
};

class DelayModel {
 public:
  DelayModel() = default;
  explicit DelayModel(CapacitanceModel caps) : caps_(caps) {}

  const CapacitanceModel& caps() const { return caps_; }

  /// Intrinsic (unloaded) delay in ps.
  double intrinsic_ps(GateType type, int width) const;

  /// Drive resistance in ps/fF.
  double drive_res_ps_per_ff(GateType type, int width) const;

  /// Full gate delay in ps given its load in the netlist.
  double gate_delay_ps(const Netlist& nl, GateId id) const;

  /// clk->Q delay of a scan cell (arrival of pseudo-inputs).
  double clk_to_q_ps() const { return 35.0; }

  /// Delay of the 2:1 multiplexer AddMUX inserts at a scan-cell output,
  /// driving that cell's original load.
  double mux_delay_ps(double load_ff) const {
    return intrinsic_ps(GateType::Mux, 2) +
           drive_res_ps_per_ff(GateType::Mux, 2) * load_ff;
  }

 private:
  CapacitanceModel caps_;
};

}  // namespace scanpower
