#include "timing/sta.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace scanpower {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

TimingAnalysis::TimingAnalysis(const Netlist& nl, const DelayModel& model)
    : nl_(&nl), model_(&model) {
  SP_CHECK(nl.finalized(), "TimingAnalysis requires a finalized netlist");
  const std::size_t n = nl.num_gates();
  arrival_.assign(n, 0.0);
  required_.assign(n, 0.0);
  delay_.assign(n, 0.0);

  for (GateId id = 0; id < n; ++id) {
    delay_[id] = model.gate_delay_ps(nl, id);
    if (nl.type(id) == GateType::Dff) arrival_[id] = model.clk_to_q_ps();
  }

  // Forward pass: arrival(g) = max fanin arrival + delay(g).
  for (GateId id : nl.topo_order()) {
    double arr = 0.0;
    for (GateId f : nl.fanin_span(id)) arr = std::max(arr, arrival_[f]);
    arrival_[id] = arr + delay_[id];
  }

  // Critical delay = max arrival over sinks (POs and DFF D pins). If the
  // circuit has no sinks (degenerate), fall back to max arrival anywhere.
  critical_delay_ = 0.0;
  bool saw_sink = false;
  auto visit_sink = [&](GateId g) {
    critical_delay_ = std::max(critical_delay_, arrival_[g]);
    saw_sink = true;
  };
  for (GateId id : nl.outputs()) visit_sink(id);
  for (GateId id : nl.dffs()) visit_sink(nl.fanins(id)[0]);
  if (!saw_sink) {
    for (GateId id = 0; id < n; ++id) {
      critical_delay_ = std::max(critical_delay_, arrival_[id]);
    }
  }

  // Backward pass: required(g) = min over fanouts (required(fo) -
  // delay(fo)); sinks are required at the critical delay.
  std::vector<double> req(n, std::numeric_limits<double>::infinity());
  for (GateId id : nl.outputs()) req[id] = critical_delay_;
  for (GateId dff : nl.dffs()) {
    const GateId d = nl.fanins(dff)[0];
    req[d] = std::min(req[d], critical_delay_);
  }
  const auto& topo = nl.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId id = *it;
    for (GateId f : nl.fanin_span(id)) {
      req[f] = std::min(req[f], req[id] - delay_[id]);
    }
  }
  // Sources feeding only DFF D pins or nothing: handled above; isolated
  // gates keep +inf -> clamp to critical delay (they constrain nothing).
  for (GateId id = 0; id < n; ++id) {
    if (req[id] == std::numeric_limits<double>::infinity()) {
      req[id] = critical_delay_;
    }
    required_[id] = req[id];
  }
}

std::vector<GateId> TimingAnalysis::critical_path() const {
  // Find the worst sink, then walk backwards along max-arrival fanins.
  GateId sink = kInvalidGate;
  double best = kNegInf;
  auto consider = [&](GateId g) {
    if (arrival_[g] > best + 1e-12 ||
        (sink == kInvalidGate && arrival_[g] >= best)) {
      best = arrival_[g];
      sink = g;
    }
  };
  for (GateId id : nl_->outputs()) consider(id);
  for (GateId dff : nl_->dffs()) consider(nl_->fanins(dff)[0]);
  if (sink == kInvalidGate) return {};

  std::vector<GateId> path;
  GateId cur = sink;
  for (;;) {
    path.push_back(cur);
    const auto& fans = nl_->fanins(cur);
    if (fans.empty() || !is_combinational(nl_->type(cur))) break;
    GateId next = kInvalidGate;
    double want = arrival_[cur] - delay_[cur];
    for (GateId f : fans) {
      if (std::abs(arrival_[f] - want) < 1e-9) {
        next = f;
        break;
      }
    }
    if (next == kInvalidGate) break;  // numeric mismatch; stop gracefully
    cur = next;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<GateId> TimingAnalysis::critical_gates(double epsilon_ps) const {
  std::vector<GateId> out;
  for (GateId id = 0; id < nl_->num_gates(); ++id) {
    if (slack_ps(id) <= epsilon_ps) out.push_back(id);
  }
  return out;
}

double TimingAnalysis::critical_delay_with_extra_source_delay(
    GateId src, double extra_ps) const {
  const GateType t = nl_->type(src);
  SP_ASSERT(t == GateType::Input || t == GateType::Dff,
            "extra source delay only applies to sources");
  // Longest path through src = D - slack(src); adding extra_ps stretches
  // exactly those paths.
  const double through = critical_delay_ - slack_ps(src);
  return std::max(critical_delay_, through + extra_ps);
}

}  // namespace scanpower
