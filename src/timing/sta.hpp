#pragma once
// Static timing analysis of the combinational core.
//
// Sources: primary inputs arrive at 0; DFF outputs (pseudo-inputs) arrive
// at clk->Q. Sinks: primary outputs and DFF D pins. The analysis computes
// arrival, required (against the circuit's own critical delay) and slack
// for every gate, plus critical-path extraction.
//
// AddMUX() uses the source-slack query: inserting a mux with delay d at a
// scan-cell output lengthens every path through that cell by d (the mux
// drives the cell's original load), so the critical delay changes iff
// d > slack(cell). mux insertion verification re-runs full STA on the
// physically rewritten netlist as a cross-check.

#include <vector>

#include "netlist/netlist.hpp"
#include "timing/delay_model.hpp"

namespace scanpower {

class TimingAnalysis {
 public:
  TimingAnalysis(const Netlist& nl, const DelayModel& model);

  /// Longest source-to-sink combinational delay (ps).
  double critical_delay_ps() const { return critical_delay_; }

  double arrival_ps(GateId id) const { return arrival_[id]; }
  double required_ps(GateId id) const { return required_[id]; }
  double slack_ps(GateId id) const { return required_[id] - arrival_[id]; }

  /// One critical path, source first. When several paths tie, the one
  /// following lowest gate ids is returned (deterministic).
  std::vector<GateId> critical_path() const;

  /// All gates lying on at least one critical path (slack ~ 0).
  std::vector<GateId> critical_gates(double epsilon_ps = 1e-6) const;

  /// Critical delay if an extra delay `extra_ps` were inserted at source
  /// `src` (a DFF or PI), without rewriting the netlist:
  /// max(D, D - slack(src) + extra).
  double critical_delay_with_extra_source_delay(GateId src, double extra_ps) const;

 private:
  const Netlist* nl_;
  const DelayModel* model_;
  std::vector<double> arrival_;
  std::vector<double> required_;
  std::vector<double> delay_;  ///< per-gate delay cache
  double critical_delay_ = 0.0;
};

}  // namespace scanpower
