#pragma once
// Internal invariant checking and recoverable-error helpers.
//
// SP_ASSERT(cond, msg)  -- internal invariant; aborts with a diagnostic.
//                          Violations indicate a bug in this library.
// SP_CHECK(cond, msg)   -- recoverable precondition on user-supplied data;
//                          throws scanpower::Error so callers can handle it.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace scanpower {

/// Base exception for all recoverable errors raised by the library
/// (malformed netlists, bad parameters, inconsistent scan configurations).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by parsers on malformed input files.
class ParseError : public Error {
 public:
  ParseError(const std::string& file, int line, const std::string& what)
      : Error(file + ":" + std::to_string(line) + ": " + what),
        file_(file),
        line_(line) {}
  const std::string& file() const { return file_; }
  int line() const { return line_; }

 private:
  std::string file_;
  int line_;
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::fprintf(stderr, "scanpower: internal invariant violated: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg.c_str());
  std::abort();
}

}  // namespace scanpower

#define SP_ASSERT(cond, msg)                                         \
  do {                                                               \
    if (!(cond)) ::scanpower::assert_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define SP_CHECK(cond, msg)                    \
  do {                                         \
    if (!(cond)) throw ::scanpower::Error(msg); \
  } while (0)
