#include "util/json.hpp"

#include <cstdio>
#include <ostream>

#include "util/assert.hpp"

namespace scanpower {

JsonWriter::JsonWriter(std::ostream& out, int indent)
    : out_(&out), indent_(indent) {}

std::string JsonWriter::quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::comma_and_newline() {
  if (!has_item_.empty()) {
    if (has_item_.back()) *out_ << ",";
    has_item_.back() = true;
    if (indent_ > 0) {
      *out_ << "\n"
            << std::string(has_item_.size() * static_cast<std::size_t>(indent_),
                           ' ');
    }
  }
}

void JsonWriter::write_key(std::string_view key) {
  comma_and_newline();
  *out_ << quote(key) << (indent_ > 0 ? ": " : ":");
}

void JsonWriter::begin_object() {
  comma_and_newline();
  *out_ << "{";
  has_item_.push_back(false);
}

void JsonWriter::begin_object(std::string_view key) {
  write_key(key);
  *out_ << "{";
  has_item_.push_back(false);
}

void JsonWriter::end_object() {
  SP_ASSERT(!has_item_.empty(), "JsonWriter: unbalanced end_object");
  const bool had = has_item_.back();
  has_item_.pop_back();
  if (had && indent_ > 0) {
    *out_ << "\n"
          << std::string(has_item_.size() * static_cast<std::size_t>(indent_),
                         ' ');
  }
  *out_ << "}";
  if (has_item_.empty() && indent_ > 0) *out_ << "\n";
}

void JsonWriter::begin_array() {
  comma_and_newline();
  *out_ << "[";
  has_item_.push_back(false);
}

void JsonWriter::begin_array(std::string_view key) {
  write_key(key);
  *out_ << "[";
  has_item_.push_back(false);
}

void JsonWriter::end_array() {
  SP_ASSERT(!has_item_.empty(), "JsonWriter: unbalanced end_array");
  const bool had = has_item_.back();
  has_item_.pop_back();
  if (had && indent_ > 0) {
    *out_ << "\n"
          << std::string(has_item_.size() * static_cast<std::size_t>(indent_),
                         ' ');
  }
  *out_ << "]";
  if (has_item_.empty() && indent_ > 0) *out_ << "\n";
}

void JsonWriter::field(std::string_view key, std::string_view value) {
  write_key(key);
  *out_ << quote(value);
}

void JsonWriter::field(std::string_view key, const char* value) {
  field(key, std::string_view(value));
}

void JsonWriter::field(std::string_view key, double value) {
  write_key(key);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  *out_ << buf;
}

void JsonWriter::field(std::string_view key, bool value) {
  write_key(key);
  *out_ << (value ? "true" : "false");
}

void JsonWriter::field(std::string_view key, std::uint64_t value) {
  write_key(key);
  *out_ << value;
}

void JsonWriter::field(std::string_view key, std::int64_t value) {
  write_key(key);
  *out_ << value;
}

void JsonWriter::field(std::string_view key, int value) {
  field(key, static_cast<std::int64_t>(value));
}

void JsonWriter::value(std::string_view v) {
  comma_and_newline();
  *out_ << quote(v);
}

void JsonWriter::value(double v) {
  comma_and_newline();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out_ << buf;
}

void JsonWriter::value(std::uint64_t v) {
  comma_and_newline();
  *out_ << v;
}

}  // namespace scanpower
