#pragma once
// Minimal streaming JSON writer for the CLI --json result dumps.
//
// No reading, no DOM: campaign scripts only need the tools to *emit*
// machine-readable results without a third-party dependency. The writer
// tracks nesting and comma placement; keys and string values are escaped
// per RFC 8259. Doubles are printed with enough digits to round-trip.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace scanpower {

class JsonWriter {
 public:
  /// Writes to `out`; `indent` spaces per nesting level (0 = compact).
  explicit JsonWriter(std::ostream& out, int indent = 2);

  // Containers. Pass a key when inside an object, omit inside an array /
  // at the top level.
  void begin_object();
  void begin_object(std::string_view key);
  void end_object();
  void begin_array();
  void begin_array(std::string_view key);
  void end_array();

  // Key/value pairs (inside an object).
  void field(std::string_view key, std::string_view value);
  void field(std::string_view key, const char* value);
  void field(std::string_view key, double value);
  void field(std::string_view key, bool value);
  void field(std::string_view key, std::uint64_t value);
  void field(std::string_view key, std::int64_t value);
  void field(std::string_view key, int value);

  // Bare values (inside an array / at the top level).
  void value(std::string_view v);
  void value(double v);
  void value(std::uint64_t v);

  /// Escaped, quoted JSON string.
  static std::string quote(std::string_view s);

 private:
  void comma_and_newline();
  void write_key(std::string_view key);

  std::ostream* out_;
  int indent_;
  std::vector<bool> has_item_;  ///< per nesting level
};

}  // namespace scanpower
