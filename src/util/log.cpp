#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace scanpower {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info ";
    case LogLevel::Warn: return "warn ";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[scanpower %s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace scanpower
