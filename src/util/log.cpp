#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace scanpower {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// The sink is rarely swapped and log calls are not hot (every call site is
// level-guarded), so a mutex around emission is fine -- and makes captured
// output from concurrent workers well-formed.
std::mutex g_sink_mu;
LogSink g_sink;  // empty = default stderr sink

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info ";
    case LogLevel::Warn: return "warn ";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[scanpower %s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace scanpower
