#pragma once
// Minimal leveled logging to stderr.
//
// The library is quiet by default (Level::Warn); experiment drivers raise
// the level with set_log_level(Level::Info) to narrate flow progress.

#include <string>

namespace scanpower {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

inline void log_debug(const std::string& msg) {
  detail::log_emit(LogLevel::Debug, msg);
}
inline void log_info(const std::string& msg) {
  detail::log_emit(LogLevel::Info, msg);
}
inline void log_warn(const std::string& msg) {
  detail::log_emit(LogLevel::Warn, msg);
}
inline void log_error(const std::string& msg) {
  detail::log_emit(LogLevel::Error, msg);
}

}  // namespace scanpower
