#pragma once
// Minimal leveled logging with a pluggable sink (default: stderr).
//
// The library is quiet by default (Level::Warn); experiment drivers raise
// the level with set_log_level(Level::Info) to narrate flow progress, and
// the CLIs expose it as --log-level. Tests capture output by installing a
// sink with set_log_sink.
//
// Call sites use the SP_LOG_* macros: the level check happens before the
// message expression is evaluated, so a disabled `SP_LOG_DEBUG(strprintf(
// ...))` never builds its string (the bare log_* functions evaluate their
// argument eagerly and survive only for trivially cheap messages).

#include <functional>
#include <string>
#include <string_view>

namespace scanpower {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// True when a message at `level` would be emitted.
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

/// Receives every emitted (level-passing) message. Installing an empty
/// function restores the default stderr sink.
using LogSink = std::function<void(LogLevel, std::string_view)>;
void set_log_sink(LogSink sink);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

inline void log_debug(const std::string& msg) {
  detail::log_emit(LogLevel::Debug, msg);
}
inline void log_info(const std::string& msg) {
  detail::log_emit(LogLevel::Info, msg);
}
inline void log_warn(const std::string& msg) {
  detail::log_emit(LogLevel::Warn, msg);
}
inline void log_error(const std::string& msg) {
  detail::log_emit(LogLevel::Error, msg);
}

/// Level-guarded emission: `expr` is evaluated only when the level passes.
#define SP_LOG_AT(level, expr)                                      \
  do {                                                              \
    if (::scanpower::log_enabled(level))                            \
      ::scanpower::detail::log_emit((level), (expr));               \
  } while (0)
#define SP_LOG_DEBUG(expr) SP_LOG_AT(::scanpower::LogLevel::Debug, expr)
#define SP_LOG_INFO(expr) SP_LOG_AT(::scanpower::LogLevel::Info, expr)
#define SP_LOG_WARN(expr) SP_LOG_AT(::scanpower::LogLevel::Warn, expr)
#define SP_LOG_ERROR(expr) SP_LOG_AT(::scanpower::LogLevel::Error, expr)

}  // namespace scanpower
