#include "util/rng.hpp"

// Header-only today; this translation unit anchors the library target and
// keeps a stable home for future out-of-line additions.
