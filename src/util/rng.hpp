#pragma once
// Deterministic, seedable random number generation.
//
// All stochastic phases of the library (random test patterns, Monte-Carlo
// leakage observability, don't-care filling) draw from Rng so that every
// experiment is reproducible bit-for-bit from its reported seed.

#include <cstdint>
#include <vector>

namespace scanpower {

/// splitmix64 -- used to expand a single 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Fixed per-block seed for deterministic parallel sweeps: block `index`
/// of a sweep seeded with `seed` always draws the same stream, whichever
/// worker processes it. Shared by the packed observability engine and the
/// min-leakage vector search, whose bit-identical-across-thread-counts
/// guarantees both rest on this derivation.
inline std::uint64_t block_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t state = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  return splitmix64(state);
}

/// xoshiro256** generator. Small, fast, high quality; not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ca9f0e11eaca6e5ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    seed_ = seed;
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  std::uint64_t seed() const { return seed_; }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 is invalid.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  bool next_bool() { return (next_u64() >> 63) != 0; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Derive an independent child generator (for parallel phases).
  Rng split() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
  std::uint64_t seed_ = 0;
};

}  // namespace scanpower
