#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace scanpower {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    const bool at_delim = i < s.size() && delims.find(s[i]) != std::string_view::npos;
    if (i == s.size() || at_delim) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace scanpower
