#pragma once
// Small string helpers shared by parsers and report writers.

#include <string>
#include <string_view>
#include <vector>

namespace scanpower {

/// Remove leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on any character in `delims`, dropping empty fields.
std::vector<std::string> split(std::string_view s, std::string_view delims);

/// ASCII upper-case copy.
std::string to_upper(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace scanpower
