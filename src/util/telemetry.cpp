#include "util/telemetry.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace scanpower {

namespace {

constexpr const char* kCounterNames[kNumCounters] = {
    "sweep.calls",
    "sweep.unexcited",
    "sweep.cone_gates",
    "sweep.active_gates",
    "sweep.aborts",
    "fault_sim.runs",
    "fault_sim.blocks",
    "fault_sim.detected",
    "backend.blocks_scalar",
    "backend.blocks_avx2",
    "backend.blocks_avx512",
    "backend.blocks_wide",
    "diag.queries",
    "diag.candidates",
    "diag.dropped",
    "diag.union_fallbacks",
    "diag.multiplets",
    "compact_diag.queries",
    "compact_diag.candidates",
    "cone_cache.hits",
    "cone_cache.misses",
    "good_cache.binds",
    "good_cache.built_blocks",
    "good_cache.cached_reads",
    "good_cache.streamed_reads",
    "xmask.builds",
    "session.diagnose_full",
    "session.diagnose_compacted",
    "session.batches",
    "session.pattern_binds",
    "session.pattern_bind_hits",
    "session.compact_state_hits",
    "session.compact_state_misses",
    "session.flow_runs",
    "sessions.ctx_builds",
    "sessions.pool_hits",
    "sessions.pool_misses",
    "sessions.pool_evictions",
    "queue.submitted",
    "queue.batches",
    "queue.coalesced",
    "queue.rejected",
    "queue.poisoned",
    "net.accepted",
    "net.conn_rejected",
    "net.requests",
    "net.bytes_in",
    "net.bytes_out",
    "net.framing_errors",
    "pool.runs",
    "pool.jobs",
    "diag.prune_us",
    "diag.score_us",
    "diag.cover_us",
    "good_cache.build_us",
    "xmask.build_us",
    "sessions.ctx_build_us",
    "queue.wait_us",
    "pool.busy_us",
};

constexpr const char* kGaugeNames[kNumGauges] = {
    "good_cache.blocks_cached",
    "pool.workers",
    "sim.backend",
    "sessions.pool_size",
    "queue.depth",
    "net.active_connections",
};

constexpr const char* kHistNames[kNumHists] = {
    "diag.latency_us",
    "compact_diag.latency_us",
    "net.request_us",
};

}  // namespace

const char* counter_name(CounterId id) {
  const auto i = static_cast<std::size_t>(id);
  SP_CHECK(i < kNumCounters, "bad CounterId");
  return kCounterNames[i];
}

const char* gauge_name(GaugeId id) {
  const auto i = static_cast<std::size_t>(id);
  SP_CHECK(i < kNumGauges, "bad GaugeId");
  return kGaugeNames[i];
}

const char* hist_name(HistId id) {
  const auto i = static_cast<std::size_t>(id);
  SP_CHECK(i < kNumHists, "bad HistId");
  return kHistNames[i];
}

// ---------- MetricsSnapshot --------------------------------------------------

std::uint64_t MetricsSnapshot::hist_count(HistId id) const {
  const auto& h = hists[static_cast<std::size_t>(id)];
  std::uint64_t n = 0;
  for (std::uint64_t b : h) n += b;
  return n;
}

void MetricsSnapshot::write_text(std::ostream& os) const {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (counters[i] != 0) os << kCounterNames[i] << ' ' << counters[i] << '\n';
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (gauges[i] != 0) os << kGaugeNames[i] << ' ' << gauges[i] << '\n';
  }
  for (std::size_t i = 0; i < kNumHists; ++i) {
    for (std::size_t b = 0; b < kNumHistBuckets; ++b) {
      if (hists[i][b] == 0) continue;
      os << kHistNames[i] << ".le_" << (b == 0 ? 0ull : (1ull << b)) << "us "
         << hists[i][b] << '\n';
    }
  }
}

void MetricsSnapshot::write_json(JsonWriter& w) const {
  w.begin_object("counters");
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (counters[i] != 0) w.field(kCounterNames[i], counters[i]);
  }
  w.end_object();
  w.begin_object("gauges");
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (gauges[i] != 0) w.field(kGaugeNames[i], gauges[i]);
  }
  w.end_object();
  w.begin_object("histograms");
  for (std::size_t i = 0; i < kNumHists; ++i) {
    std::uint64_t total = 0;
    for (std::uint64_t b : hists[i]) total += b;
    if (total == 0) continue;
    w.begin_object(kHistNames[i]);
    w.field("count", total);
    w.begin_array("buckets");
    for (std::size_t b = 0; b < kNumHistBuckets; ++b) w.value(hists[i][b]);
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

// ---------- MetricsRegistry --------------------------------------------------

std::size_t MetricsRegistry::hist_bucket(std::uint64_t us) {
  const std::size_t b = static_cast<std::size_t>(std::bit_width(us));
  return b < kNumHistBuckets ? b : kNumHistBuckets - 1;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  if constexpr (!kTelemetryEnabled) return s;
  // Ascending shard order: irrelevant for a sum, but keeps the merge
  // discipline uniform with every other deterministic reduction in the repo.
  for (int shard = 0; shard < kMaxShards; ++shard) {
    const CounterShard& cs = shards_[static_cast<std::size_t>(shard)];
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      s.counters[i] += cs.counters[i].load(std::memory_order_relaxed);
    }
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    s.gauges[i] = gauges_[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kNumHists; ++i) {
    for (std::size_t b = 0; b < kNumHistBuckets; ++b) {
      s.hists[i][b] = hists_[i][b].load(std::memory_order_relaxed);
    }
  }
  return s;
}

void MetricsRegistry::reset() {
  if constexpr (!kTelemetryEnabled) return;
  for (auto& shard : shards_) {
    for (auto& c : shard.counters) c.store(0, std::memory_order_relaxed);
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  for (auto& h : hists_) {
    for (auto& b : h) b.store(0, std::memory_order_relaxed);
  }
}

// ---------- TraceRecorder ----------------------------------------------------

int TraceRecorder::open_span(int shard) {
  if constexpr (!kTelemetryEnabled) return 0;
  const int s = shard < 0 ? 0
                          : (shard >= MetricsRegistry::kMaxShards
                                 ? MetricsRegistry::kMaxShards - 1
                                 : shard);
  std::lock_guard<std::mutex> lock(mu_);
  return depth_[static_cast<std::size_t>(s)]++;
}

void TraceRecorder::close_span(const char* name, int shard, int depth,
                               std::uint64_t start_us, std::uint64_t end_us) {
  if constexpr (!kTelemetryEnabled) return;
  const int s = shard < 0 ? 0
                          : (shard >= MetricsRegistry::kMaxShards
                                 ? MetricsRegistry::kMaxShards - 1
                                 : shard);
  std::lock_guard<std::mutex> lock(mu_);
  depth_[static_cast<std::size_t>(s)]--;
  events_.push_back(TraceEvent{name, s, depth, start_us,
                               end_us >= start_us ? end_us - start_us : 0});
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  if constexpr (!kTelemetryEnabled) return out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.shard != b.shard) return a.shard < b.shard;
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     return a.depth < b.depth;
                   });
  return out;
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.begin_array("traceEvents");
  for (const TraceEvent& e : events()) {
    w.begin_object();
    w.field("name", e.name);
    w.field("ph", "X");
    w.field("ts", e.start_us);
    w.field("dur", e.dur_us);
    w.field("pid", 1);
    w.field("tid", e.shard);
    w.begin_object("args");
    w.field("depth", e.depth);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void TraceRecorder::clear() {
  if constexpr (!kTelemetryEnabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  depth_.fill(0);
}

// ---------- global scope -----------------------------------------------------

Telemetry& global_telemetry() {
  static Telemetry t;
  return t;
}

}  // namespace scanpower
