#pragma once
// Telemetry: a process-wide but session-scopable metrics registry plus a
// phase-trace recorder with Chrome trace_event JSON export.
//
// The registry keeps monotonic counters, gauges and fixed-bucket latency
// histograms in per-shard slots (shard = thread-pool worker index, clamped
// to kMaxShards). Slots are relaxed atomics, so concurrent writers from
// shared caches are race-free, and snapshots merge shards in ascending
// shard order -- enabling telemetry never perturbs engine results or their
// bit-identical-across-(block_words, num_threads) guarantee, because the
// engines never read the registry back.
//
// Counter determinism contract (guarded by tests/test_telemetry.cpp):
//   - semantic counters (queries, candidates, dropped, fallbacks, ...) are
//     invariant across every (block_words, num_threads) configuration;
//   - work counters (sweeps, cone gates, blocks) are invariant across
//     thread counts at fixed block_words;
//   - counters whose name ends in "_us" are wall-clock time and carry no
//     determinism guarantee.
//
// Everything here compiles to nothing when the library is configured with
// -DSCANPOWER_TELEMETRY=OFF (the SCANPOWER_TELEMETRY_DISABLED macro): the
// hot-path entry points start with `if constexpr (!kTelemetryEnabled)
// return;`, so the disabled build carries no atomics, clocks or branches.

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <vector>

namespace scanpower {

class JsonWriter;

#if defined(SCANPOWER_TELEMETRY_DISABLED)
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

// ---------- metric identifiers ----------------------------------------------

enum class CounterId : int {
  // fault-cone sweeps (work counters)
  kSweepCalls = 0,     ///< propagate() calls that walked a cone (excited)
  kSweepUnexcited,     ///< propagate() calls that died before the sweep
  kSweepConeGates,     ///< total cone sizes of the swept cones
  kSweepActiveGates,   ///< gates actually re-evaluated (sparse-skip survivors)
  kSweepAborts,        ///< sweeps cut short by a bool sink (early-exit)
  // fault simulation
  kFaultSimRuns,
  kFaultSimBlocks,
  kFaultSimDetected,   ///< faults detected and dropped (semantic)
  // kernel-backend attribution: fault-sim blocks swept per backend (work
  // counters; which one advances depends on the resolved backend)
  kBackendBlocksScalar,
  kBackendBlocksAvx2,
  kBackendBlocksAvx512,
  kBackendBlocksWide,
  // full-response diagnosis (semantic)
  kDiagQueries,
  kDiagCandidates,     ///< prune survivors scored
  kDiagDropped,        ///< candidates dropped by the scoring early-exit
  kDiagUnionFallbacks, ///< noise-recovery union re-prunes taken
  kDiagMultiplets,     ///< suspect sets emitted
  // compacted diagnosis (semantic)
  kCompactQueries,
  kCompactCandidates,
  // shared caches
  kConeCacheHits,
  kConeCacheMisses,
  kGoodCacheBinds,       ///< pattern (re)binds of the good-block cache
  kGoodCacheBuiltBlocks, ///< good-machine blocks simulated
  kGoodCacheCachedReads, ///< block requests served from cache
  kGoodCacheStreamedReads, ///< block requests re-simulated past the cap
  kXMaskBuilds,
  // session
  kSessionDiagnoseFull,
  kSessionDiagnoseCompact,
  kSessionBatches,
  kSessionPatternBinds,
  kSessionPatternBindHits, ///< rebinds of identical content (no-op)
  kSessionCompactStateHits,
  kSessionCompactStateMisses,
  kSessionFlowRuns,
  // design-context pool (semantic: one shared DesignContext per design)
  kCtxBuilds,          ///< DesignContext constructions (pool misses build)
  kCtxPoolHits,        ///< acquire() served an already-published context
  kCtxPoolMisses,
  kCtxPoolEvictions,   ///< LRU entries dropped past the capacity knob
  // async diagnosis queue (semantic)
  kQueueSubmitted,     ///< submit() calls
  kQueueBatches,       ///< diagnose_batch dispatches by the queue worker
  kQueueCoalesced,     ///< logs that rode along in a multi-log batch
  kQueueRejected,      ///< submits refused by the Reject overload policy
  kQueuePoisoned,      ///< pending futures failed by queue shutdown
  // network transport (traffic-dependent: no determinism guarantee)
  kNetAccepted,        ///< connections accepted by the listener
  kNetConnRejected,    ///< connections refused at the connection cap
  kNetRequests,        ///< command lines handled across connections
  kNetBytesIn,         ///< payload bytes read off accepted sockets
  kNetBytesOut,        ///< response bytes written to accepted sockets
  kNetFramingErrors,   ///< oversized / malformed lines answered with errors
  // thread pool (configuration-dependent: varies with num_threads)
  kPoolRuns,
  kPoolJobs,
  // wall-clock time, microseconds (no determinism guarantee)
  kDiagPruneUs,
  kDiagScoreUs,
  kDiagCoverUs,        ///< noise recovery + multiplet cover
  kGoodCacheBuildUs,
  kXMaskBuildUs,
  kCtxBuildUs,         ///< DesignContext build wall time
  kQueueWaitUs,        ///< summed submit -> dispatch wait of queued logs
  kPoolBusyUs,
  kCount
};

enum class GaugeId : int {
  kGoodBlocksCached = 0, ///< blocks currently held by the good-block cache
  kPoolWorkers,
  kSimBackend,           ///< last resolved SimBackend (numeric enum value)
  kCtxPoolSize,          ///< design contexts currently resident in the pool
  kQueueDepth,           ///< evidence waiting in the diagnosis queue
  kNetActiveConns,       ///< currently open server connections
  kCount
};

enum class HistId : int {
  kDiagnoseUs = 0,     ///< full-response diagnose() latency
  kCompactDiagnoseUs,  ///< compacted diagnose() latency
  kNetRequestUs,       ///< per-command handling latency at the server
  kCount
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(CounterId::kCount);
inline constexpr std::size_t kNumGauges =
    static_cast<std::size_t>(GaugeId::kCount);
inline constexpr std::size_t kNumHists =
    static_cast<std::size_t>(HistId::kCount);
/// Histogram buckets are powers of two of microseconds: bucket i counts
/// values v with bit_width(v) == i, i.e. v in [2^(i-1), 2^i); bucket 0 is
/// v == 0 and the last bucket absorbs everything >= 2^30 us (~18 min).
inline constexpr std::size_t kNumHistBuckets = 32;

const char* counter_name(CounterId id);
const char* gauge_name(GaugeId id);
const char* hist_name(HistId id);

// ---------- snapshot ---------------------------------------------------------

/// A merged, point-in-time view of a MetricsRegistry. Plain data; safe to
/// copy, compare and serialize after the fact.
struct MetricsSnapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::int64_t, kNumGauges> gauges{};
  std::array<std::array<std::uint64_t, kNumHistBuckets>, kNumHists> hists{};

  std::uint64_t counter(CounterId id) const {
    return counters[static_cast<std::size_t>(id)];
  }
  std::int64_t gauge(GaugeId id) const {
    return gauges[static_cast<std::size_t>(id)];
  }
  std::uint64_t hist_count(HistId id) const;

  /// One `name value` line per non-zero counter/gauge, histograms as
  /// `name.le_<2^i>us count` bucket lines.
  void write_text(std::ostream& os) const;
  /// Fields of an already-open JSON object: "counters"/"gauges"/"histograms"
  /// sub-objects (non-zero entries only).
  void write_json(JsonWriter& w) const;
};

// ---------- registry ---------------------------------------------------------

class MetricsRegistry {
 public:
  static constexpr int kMaxShards = 64;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Add to a counter. `shard` is the writer's thread-pool worker index
  /// (0 for caller-thread code); shards only spread contention -- any shard
  /// is correct, and a snapshot sums them in ascending order.
  void add(int shard, CounterId id, std::uint64_t n = 1) {
    if constexpr (!kTelemetryEnabled) return;
    shard_(shard).counters[static_cast<std::size_t>(id)].fetch_add(
        n, std::memory_order_relaxed);
  }

  void set_gauge(GaugeId id, std::int64_t v) {
    if constexpr (!kTelemetryEnabled) return;
    gauges_[static_cast<std::size_t>(id)].store(v, std::memory_order_relaxed);
  }

  void record_hist(HistId id, std::uint64_t us) {
    if constexpr (!kTelemetryEnabled) return;
    hists_[static_cast<std::size_t>(id)][hist_bucket(us)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Merge every shard (ascending order) into a plain snapshot.
  MetricsSnapshot snapshot() const;

  /// Zero every counter, gauge and histogram bucket.
  void reset();

  static std::size_t hist_bucket(std::uint64_t us);

 private:
  struct alignas(64) CounterShard {
    std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
  };

  CounterShard& shard_(int shard) {
    const int s = shard < 0 ? 0 : (shard >= kMaxShards ? kMaxShards - 1 : shard);
    return shards_[static_cast<std::size_t>(s)];
  }

  std::array<CounterShard, kMaxShards> shards_{};
  std::array<std::atomic<std::int64_t>, kNumGauges> gauges_{};
  std::array<std::array<std::atomic<std::uint64_t>, kNumHistBuckets>, kNumHists>
      hists_{};
};

// ---------- phase tracing ----------------------------------------------------

struct TraceEvent {
  const char* name;       ///< static string (phase name)
  int shard;              ///< worker index; Chrome `tid` row
  int depth;              ///< nesting depth within the shard at open time
  std::uint64_t start_us; ///< microseconds since the recorder's epoch
  std::uint64_t dur_us;
};

/// Records completed nested phase spans. Disabled by default (recording a
/// span with the recorder disabled is a branch and nothing else); spans are
/// coarse (per query / per phase), so a single mutex guards the buffer.
class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void set_enabled(bool on) {
    if constexpr (!kTelemetryEnabled) return;
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const {
    if constexpr (!kTelemetryEnabled) return false;
    return enabled_.load(std::memory_order_relaxed);
  }

  std::uint64_t now_us() const {
    if constexpr (!kTelemetryEnabled) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Open a span on `shard`; returns the nesting depth to pass to close().
  int open_span(int shard);
  void close_span(const char* name, int shard, int depth,
                  std::uint64_t start_us, std::uint64_t end_us);

  /// Completed events sorted by (shard, start, depth) -- deterministic for
  /// a deterministic span structure.
  std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON ("ph":"X" complete events; load via
  /// chrome://tracing or https://ui.perfetto.dev).
  void write_chrome_trace(std::ostream& os) const;

  void clear();

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::array<int, MetricsRegistry::kMaxShards> depth_{};
};

// ---------- aggregate --------------------------------------------------------

/// One telemetry scope: a registry plus a trace recorder. `ScanSession` owns
/// one; standalone engines accept a `Telemetry*` option (nullptr = off).
struct Telemetry {
  MetricsRegistry metrics;
  TraceRecorder trace;
};

/// Process-wide scope for code that has no session (benchmarks, one-shot
/// tools).
Telemetry& global_telemetry();

/// Steady-clock microseconds (arbitrary epoch; deltas only). 0 when
/// telemetry is compiled out.
inline std::uint64_t telemetry_now_us() {
  if constexpr (!kTelemetryEnabled) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII nested phase span. One measurement feeds up to three sinks on
/// destruction: a TraceEvent (when the recorder is enabled), a `_us`
/// counter (when dur_counter is given), and `*elapsed_out += elapsed`
/// (when given -- works even with a nullptr telemetry scope, which is how
/// DiagnosisResult::stats stays populated without a registry attached).
class TraceSpan {
 public:
  explicit TraceSpan(Telemetry* t, const char* name, int shard = 0,
                     CounterId dur_counter = CounterId::kCount,
                     std::uint64_t* elapsed_out = nullptr)
      : t_(t), name_(name), shard_(shard), dur_counter_(dur_counter),
        elapsed_out_(elapsed_out) {
    if constexpr (!kTelemetryEnabled) return;
    const bool tracing = t_ != nullptr && t_->trace.enabled();
    const bool counting = t_ != nullptr && dur_counter_ != CounterId::kCount;
    if (tracing || counting || elapsed_out_ != nullptr) {
      start_us_ = t_ != nullptr ? t_->trace.now_us() : telemetry_now_us();
      armed_ = true;
      depth_ = tracing ? t_->trace.open_span(shard_) : -1;
    }
  }
  ~TraceSpan() {
    if constexpr (!kTelemetryEnabled) return;
    if (!armed_) return;
    const std::uint64_t end =
        t_ != nullptr ? t_->trace.now_us() : telemetry_now_us();
    const std::uint64_t el = end - start_us_;
    if (elapsed_out_ != nullptr) *elapsed_out_ += el;
    if (t_ != nullptr && dur_counter_ != CounterId::kCount)
      t_->metrics.add(shard_, dur_counter_, el);
    if (depth_ >= 0) t_->trace.close_span(name_, shard_, depth_, start_us_, end);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Telemetry* t_ = nullptr;
  const char* name_ = nullptr;
  int shard_ = 0;
  int depth_ = -1;
  CounterId dur_counter_ = CounterId::kCount;
  std::uint64_t* elapsed_out_ = nullptr;
  std::uint64_t start_us_ = 0;
  bool armed_ = false;
};

/// Counter add through a maybe-null Telemetry*. Compiles to nothing when
/// telemetry is disabled at build time.
#define SP_TELEM_ADD(telem, shard, id, n)                               \
  do {                                                                  \
    if constexpr (::scanpower::kTelemetryEnabled) {                     \
      if ((telem) != nullptr)                                           \
        (telem)->metrics.add((shard), (id),                             \
                             static_cast<std::uint64_t>(n));            \
    }                                                                   \
  } while (0)

}  // namespace scanpower
