#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace scanpower {

namespace {
inline std::uint64_t busy_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int num_threads) {
  size_ = std::max(1, resolve_threads(num_threads));
  slots_.resize(static_cast<std::size_t>(size_));
  threads_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int i = 1; i < size_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(int index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    if constexpr (kTelemetryEnabled) {
      WorkerSlot& slot = slots_[static_cast<std::size_t>(index)];
      const std::uint64_t t0 = busy_clock_ns();
      (*job)(index);
      slot.busy_ns += busy_clock_ns() - t0;
      ++slot.jobs;
    } else {
      (*job)(index);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(int)>& fn) {
  const auto run_local = [&] {
    if constexpr (kTelemetryEnabled) {
      WorkerSlot& slot = slots_[0];
      const std::uint64_t t0 = busy_clock_ns();
      fn(0);
      slot.busy_ns += busy_clock_ns() - t0;
      ++slot.jobs;
      ++runs_;
    } else {
      fn(0);
    }
  };
  if (size_ == 1) {
    run_local();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    outstanding_ = size_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  run_local();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    job_ = nullptr;
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  if constexpr (!kTelemetryEnabled) return s;
  s.runs = runs_;
  for (const WorkerSlot& slot : slots_) {  // ascending worker order
    s.jobs += slot.jobs;
    s.busy_us += slot.busy_ns / 1000;
  }
  return s;
}

}  // namespace scanpower
