#include "util/thread_pool.hpp"

#include <algorithm>

namespace scanpower {

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int num_threads) {
  size_ = std::max(1, resolve_threads(num_threads));
  threads_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int i = 1; i < size_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop(int index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    (*job)(index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(int)>& fn) {
  if (size_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    outstanding_ = size_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  fn(0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    job_ = nullptr;
  }
}

}  // namespace scanpower
