#pragma once
// Small reusable worker pool for data-parallel sweeps.
//
// A pool of `size()` logical workers executes the same callable, each
// with its own worker index; the caller blocks until every worker
// finishes. Worker 0 always runs on the calling thread, so a pool of
// size 1 spawns no threads and adds no synchronization -- single-thread
// configurations pay nothing. Threads are created once and parked on a
// condition variable between jobs, so per-call overhead is a wakeup, not
// a thread spawn (the fault simulator dispatches one job per 64*W-pattern
// batch).
//
// Determinism contract: the pool imposes no ordering between workers;
// callers get deterministic results by giving each worker a disjoint,
// index-derived slice of the work and merging slices in index order.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/telemetry.hpp"

namespace scanpower {

class ThreadPool {
 public:
  /// `num_threads` logical workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  /// Runs fn(worker_index) for worker_index in [0, size()); blocks until
  /// all invocations return. fn(0) runs on the calling thread.
  void run_on_all(const std::function<void(int)>& fn);

  /// Resolves a user-facing thread-count knob: 0 -> hardware concurrency,
  /// otherwise the value itself (minimum 1).
  static int resolve_threads(int requested);

  /// Lifetime telemetry totals. Each worker slot is written only by the
  /// thread running that worker index; call while the pool is idle (the
  /// run_on_all completion hand-off makes every slot visible to the
  /// caller). All-zero when telemetry is compiled out.
  struct Stats {
    std::uint64_t runs = 0;     ///< run_on_all invocations
    std::uint64_t jobs = 0;     ///< per-worker fn invocations
    std::uint64_t busy_us = 0;  ///< summed wall time inside worker fns
  };
  Stats stats() const;

 private:
  void worker_loop(int index);

  struct alignas(64) WorkerSlot {
    std::uint64_t jobs = 0;
    std::uint64_t busy_ns = 0;
  };

  int size_ = 1;
  std::vector<std::thread> threads_;  ///< size_ - 1 helper threads
  std::vector<WorkerSlot> slots_;     ///< one per worker, owner-written
  std::uint64_t runs_ = 0;            ///< caller-thread only

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;  ///< bumped per job; workers wait on it
  int outstanding_ = 0;           ///< helpers still running current job
  bool shutdown_ = false;
};

/// Deterministic wave-parallel sweep over `nblocks` independent blocks:
/// each wave assigns block `wave + t` to worker t (so a worker's scratch
/// holds exactly one block's partial at a time), then `merge` runs on the
/// calling thread in ascending block order. Results are therefore
/// bit-identical for any pool size as long as `work` derives everything
/// from the block index (e.g. via block_seed()). Used by the packed
/// Monte-Carlo observability engine and the min-leakage vector search.
///
/// work(worker, block): compute block `block` into worker-local state.
/// merge(worker, block): fold that partial into the global accumulators.
template <typename WorkFn, typename MergeFn>
void ordered_block_sweep(ThreadPool& pool, std::size_t nblocks, WorkFn&& work,
                         MergeFn&& merge) {
  const std::size_t num_workers = static_cast<std::size_t>(pool.size());
  for (std::size_t wave = 0; wave < nblocks; wave += num_workers) {
    pool.run_on_all([&](int t) {
      const std::size_t b = wave + static_cast<std::size_t>(t);
      if (b < nblocks) work(t, b);
    });
    for (std::size_t t = 0; t < num_workers && wave + t < nblocks; ++t) {
      merge(static_cast<int>(t), wave + t);
    }
  }
}

}  // namespace scanpower
