#include <gtest/gtest.h>

#include <set>

#include "util/assert.hpp"
#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/packed_sim.hpp"
#include "atpg/pattern.hpp"
#include "atpg/podem.hpp"
#include "atpg/tpg.hpp"
#include "benchgen/benchgen.hpp"
#include "netlist/builder.hpp"
#include "sim/simulator.hpp"
#include "techmap/techmap.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

// ---------- fault model -----------------------------------------------------

TEST(Faults, EnumerationCoversOutputsAndPins) {
  NetlistBuilder b("f");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Nand, "g", {"a", "c"});
  b.add_output("g");
  const Netlist nl = b.link();
  const auto faults = enumerate_faults(nl);
  // Stems: a, c, g (2 each) + pins: g.in0, g.in1 (2 each) = 10.
  EXPECT_EQ(faults.size(), 10u);
}

TEST(Faults, CollapsingDropsEquivalents) {
  NetlistBuilder b("f");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Nand, "g", {"a", "c"});
  b.add_output("g");
  const Netlist nl = b.link();
  const auto collapsed = collapse_faults(nl);
  // Fanout-free NAND: every pin fault collapses (sa0 onto output, sa1 onto
  // the driver stem): only the 6 stem faults remain.
  EXPECT_EQ(collapsed.size(), 6u);
}

TEST(Faults, BranchPinsKeptAfterFanout) {
  NetlistBuilder b("f");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Nand, "g1", {"a", "c"});
  b.add_gate(GateType::Nand, "g2", {"a", "g1"});
  b.add_output("g1");
  b.add_output("g2");
  const Netlist nl = b.link();
  const auto collapsed = collapse_faults(nl);
  // "a" branches (feeds g1 and g2): its non-controlling (sa1) branch
  // faults must be distinct.
  int a_pin_faults = 0;
  for (const Fault& f : collapsed) {
    if (f.pin >= 0 && nl.fanins(f.gate)[static_cast<std::size_t>(f.pin)] ==
                          nl.find("a")) {
      ++a_pin_faults;
      EXPECT_TRUE(f.stuck_at);  // sa0 collapsed onto output faults
    }
  }
  EXPECT_EQ(a_pin_faults, 2);
}

TEST(Faults, ToStringIsReadable) {
  const Netlist nl = make_s27();
  const Fault f1{nl.find("G10"), -1, true};
  EXPECT_EQ(f1.to_string(nl), "G10/sa1");
  const Fault f2{nl.find("G10"), 0, false};
  EXPECT_EQ(f2.to_string(nl), "G10.in0/sa0");
}

// ---------- packed simulation -----------------------------------------------

TEST(PackedSim, MatchesScalarSimulator) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  PackedSimulator packed(nl);
  Simulator scalar(nl);
  Rng rng(77);
  // 64 random patterns in one word.
  std::vector<TestPattern> pats;
  for (int i = 0; i < 64; ++i) pats.push_back(random_pattern(nl, rng));
  for (std::size_t k = 0; k < nl.inputs().size(); ++k) {
    PatternWord w = 0;
    for (int j = 0; j < 64; ++j) {
      if (pats[j].pi[k] == Logic::One) w |= PatternWord{1} << j;
    }
    packed.set_source(nl.inputs()[k], w);
  }
  for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
    PatternWord w = 0;
    for (int j = 0; j < 64; ++j) {
      if (pats[j].ppi[k] == Logic::One) w |= PatternWord{1} << j;
    }
    packed.set_source(nl.dffs()[k], w);
  }
  packed.eval();
  for (int j : {0, 1, 17, 63}) {
    scalar.set_inputs(pats[j].pi);
    scalar.set_states(pats[j].ppi);
    scalar.eval_incremental();
    for (GateId id = 0; id < nl.num_gates(); ++id) {
      const bool packed_bit = (packed.value(id) >> j) & 1;
      ASSERT_EQ(from_bool(packed_bit), scalar.value(id))
          << nl.gate_name(id) << " lane " << j;
    }
  }
}

// ---------- fault simulation against brute force ------------------------------

/// Brute-force detection check: does `pattern` detect `fault`?
bool detects(const Netlist& nl, const TestPattern& pattern, const Fault& f) {
  Simulator good(nl);
  good.set_inputs(pattern.pi);
  good.set_states(pattern.ppi);
  good.eval();
  // Faulty copy: evaluate by hand with the fault forced.
  std::vector<Logic> fv(nl.num_gates(), Logic::X);
  for (GateId pi : nl.inputs()) fv[pi] = good.value(pi);
  for (GateId ff : nl.dffs()) fv[ff] = good.value(ff);
  if (f.pin < 0 && !is_combinational(nl.type(f.gate))) {
    fv[f.gate] = from_bool(f.stuck_at);
  }
  std::vector<Logic> ins;
  for (GateId id : nl.topo_order()) {
    ins.clear();
    const auto& fans = nl.fanins(id);
    for (std::size_t p = 0; p < fans.size(); ++p) {
      Logic v = fv[fans[p]];
      if (id == f.gate && static_cast<int>(p) == f.pin) {
        v = from_bool(f.stuck_at);
      }
      ins.push_back(v);
    }
    fv[id] = eval_gate(nl.type(id), ins);
    if (f.pin < 0 && id == f.gate) fv[id] = from_bool(f.stuck_at);
  }
  if (f.pin >= 0 && nl.type(f.gate) == GateType::Dff) {
    return good.value(nl.fanins(f.gate)[0]) != from_bool(f.stuck_at);
  }
  for (GateId po : nl.outputs()) {
    if (good.value(po) != fv[po]) return true;
  }
  for (GateId dff : nl.dffs()) {
    const GateId d = nl.fanins(dff)[0];
    if (good.value(d) != fv[d]) return true;
  }
  return false;
}

TEST(FaultSim, AgreesWithBruteForceOnS27) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = collapse_faults(nl);
  Rng rng(31);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 20; ++i) pats.push_back(random_pattern(nl, rng));

  FaultSimulator fsim(nl);
  const FaultSimResult res = fsim.run(pats, faults);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    bool brute = false;
    for (const TestPattern& p : pats) {
      if (detects(nl, p, faults[fi])) {
        brute = true;
        break;
      }
    }
    EXPECT_EQ(res.detected[fi], brute) << faults[fi].to_string(nl);
  }
}

TEST(FaultSim, FirstDetectingPatternIsCorrect) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = collapse_faults(nl);
  Rng rng(33);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 10; ++i) pats.push_back(random_pattern(nl, rng));
  FaultSimulator fsim(nl);
  const FaultSimResult res = fsim.run(pats, faults);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    if (!res.detected[fi]) continue;
    const std::size_t first = res.detecting_pattern[fi];
    EXPECT_TRUE(detects(nl, pats[first], faults[fi]));
    for (std::size_t p = 0; p < first; ++p) {
      EXPECT_FALSE(detects(nl, pats[p], faults[fi]))
          << faults[fi].to_string(nl) << " pattern " << p;
    }
  }
}

TEST(FaultSim, InitialDetectedSkipsFaults) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = collapse_faults(nl);
  Rng rng(35);
  std::vector<TestPattern> pats;
  for (int i = 0; i < 8; ++i) pats.push_back(random_pattern(nl, rng));
  FaultSimulator fsim(nl);
  std::vector<bool> already(faults.size(), true);
  const FaultSimResult res = fsim.run(pats, faults, &already);
  EXPECT_EQ(res.num_detected, 0u);
}

TEST(FaultSim, RejectsXPatterns) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = collapse_faults(nl);
  TestPattern p;
  p.pi.assign(nl.inputs().size(), Logic::X);
  p.ppi.assign(nl.dffs().size(), Logic::Zero);
  FaultSimulator fsim(nl);
  EXPECT_THROW(fsim.run(std::span<const TestPattern>(&p, 1), faults), Error);
}

// ---------- PODEM ------------------------------------------------------------

TEST(Podem, GeneratedPatternsActuallyDetect) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = collapse_faults(nl);
  Podem podem(nl);
  Rng rng(41);
  int detected_count = 0;
  for (const Fault& f : faults) {
    const PodemResult r = podem.generate(f);
    ASSERT_NE(r.status, PodemStatus::Aborted) << f.to_string(nl);
    if (r.status != PodemStatus::Detected) continue;
    ++detected_count;
    TestPattern p = r.pattern;
    p.random_fill(rng);
    EXPECT_TRUE(detects(nl, p, f)) << f.to_string(nl);
  }
  EXPECT_GT(detected_count, 0);
}

TEST(Podem, UntestableClaimsVerifiedExhaustively) {
  // Redundant circuit: y = OR(a, NOT(a)) == 1, so y/sa1 is untestable.
  NetlistBuilder b("red");
  b.add_input("a");
  b.add_gate(GateType::Not, "n", {"a"});
  b.add_gate(GateType::Or, "y", {"a", "n"});
  b.add_output("y");
  const Netlist nl = b.link();
  Podem podem(nl);
  const PodemResult r1 = podem.generate({nl.find("y"), -1, true});
  EXPECT_EQ(r1.status, PodemStatus::Untestable);
  const PodemResult r0 = podem.generate({nl.find("y"), -1, false});
  EXPECT_EQ(r0.status, PodemStatus::Detected);
}

TEST(Podem, UntestableAgreesWithExhaustiveOnS27) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const auto faults = collapse_faults(nl);
  Podem podem(nl);
  // Exhaustive: 2^7 source assignments.
  const std::size_t n_src = nl.inputs().size() + nl.dffs().size();
  ASSERT_LE(n_src, 16u);
  for (const Fault& f : faults) {
    const PodemResult r = podem.generate(f);
    bool exists = false;
    for (unsigned v = 0; v < (1u << n_src) && !exists; ++v) {
      TestPattern p;
      unsigned bit = 0;
      for (std::size_t k = 0; k < nl.inputs().size(); ++k) {
        p.pi.push_back(from_bool((v >> bit++) & 1));
      }
      for (std::size_t k = 0; k < nl.dffs().size(); ++k) {
        p.ppi.push_back(from_bool((v >> bit++) & 1));
      }
      exists = detects(nl, p, f);
    }
    if (r.status == PodemStatus::Detected) {
      EXPECT_TRUE(exists) << f.to_string(nl);
    } else if (r.status == PodemStatus::Untestable) {
      EXPECT_FALSE(exists) << f.to_string(nl);
    }
  }
}

TEST(Podem, DffPinFaultHandled) {
  const Netlist nl = make_s27();
  // Find a DFF pin fault in the collapsed list, if any; otherwise build
  // one directly on G5 (its D driver G10 may or may not branch).
  const Fault f{nl.dffs()[0], 0, false};
  Podem podem(nl);
  const PodemResult r = podem.generate(f);
  EXPECT_NE(r.status, PodemStatus::Aborted);
  if (r.status == PodemStatus::Detected) {
    Rng rng(43);
    TestPattern p = r.pattern;
    p.random_fill(rng);
    EXPECT_TRUE(detects(nl, p, f));
  }
}

// ---------- pattern utilities -------------------------------------------------

TEST(Patterns, RoundTripString) {
  TestPattern p;
  p.pi = logic_vector("01x");
  p.ppi = logic_vector("1x0");
  const TestPattern q = TestPattern::from_string(p.to_string());
  EXPECT_EQ(q.pi, p.pi);
  EXPECT_EQ(q.ppi, p.ppi);
}

TEST(Patterns, RandomFillRemovesX) {
  TestPattern p;
  p.pi = logic_vector("x0x");
  p.ppi = logic_vector("xx");
  Rng rng(51);
  p.random_fill(rng);
  EXPECT_TRUE(p.fully_specified());
  EXPECT_EQ(p.pi[1], Logic::Zero);  // assigned bits untouched
}

// ---------- end-to-end TPG ------------------------------------------------------

TEST(Tpg, S27FullEfficiency) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const TestSet ts = generate_tests(nl);
  EXPECT_GT(ts.patterns.size(), 0u);
  EXPECT_EQ(ts.aborted_faults, 0u);
  // Every testable fault detected.
  EXPECT_EQ(ts.detected_faults + ts.untestable_faults, ts.total_faults);
  for (const TestPattern& p : ts.patterns) {
    EXPECT_TRUE(p.fully_specified());
  }
}

TEST(Tpg, DeterministicForFixedSeed) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const TestSet a = generate_tests(nl);
  const TestSet b = generate_tests(nl);
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  for (std::size_t i = 0; i < a.patterns.size(); ++i) {
    EXPECT_EQ(a.patterns[i].to_string(), b.patterns[i].to_string());
  }
}

TEST(Tpg, CompactionDoesNotLoseCoverage) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  TpgOptions with;
  with.compact = true;
  TpgOptions without;
  without.compact = false;
  const TestSet a = generate_tests(nl, with);
  const TestSet b = generate_tests(nl, without);
  EXPECT_EQ(a.detected_faults, b.detected_faults);
  EXPECT_LE(a.patterns.size(), b.patterns.size());
}

TEST(Tpg, CoverageMatchesIndependentFaultSim) {
  const Netlist nl = map_to_nand_nor_inv(make_s27());
  const TestSet ts = generate_tests(nl);
  const double cov = fault_coverage(nl, ts.patterns);
  EXPECT_NEAR(cov, ts.fault_coverage(), 1e-12);
}

}  // namespace
}  // namespace scanpower

namespace scanpower {
namespace {

TEST(Faults, XorKeepsPinFaults) {
  NetlistBuilder b("x");
  b.add_input("a");
  b.add_input("c");
  b.add_gate(GateType::Not, "n", {"a"});   // make 'a' branch
  b.add_gate(GateType::Xor, "y", {"a", "c"});
  b.add_output("y");
  b.add_output("n");
  const Netlist nl = b.link();
  const auto collapsed = collapse_faults(nl);
  int xor_pin_faults = 0;
  for (const Fault& f : collapsed) {
    if (f.gate == nl.find("y") && f.pin == 0) ++xor_pin_faults;
  }
  // 'a' branches (feeds n and y): XOR has no controlling value, so both
  // polarities of the branch fault survive collapsing.
  EXPECT_EQ(xor_pin_faults, 2);
}

TEST(Podem, BacktrackCountReported) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto faults = collapse_faults(nl);
  Podem podem(nl);
  int total_backtracks = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(50, faults.size()); ++i) {
    total_backtracks += podem.generate(faults[i]).backtracks;
  }
  EXPECT_GE(total_backtracks, 0);
}

TEST(Podem, AbortsUnderTinyBacktrackLimit) {
  // With limit 0, hard faults must abort rather than loop forever; easy
  // faults (justifiable without any conflict) may still be detected.
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const auto faults = collapse_faults(nl);
  PodemOptions opts;
  opts.backtrack_limit = 0;
  Podem podem(nl, opts);
  for (std::size_t i = 0; i < std::min<std::size_t>(100, faults.size()); ++i) {
    const PodemResult r = podem.generate(faults[i]);
    EXPECT_EQ(r.backtracks, 0);
    // Untestable with 0 backtracks is impossible to *prove* unless the
    // fault site is structurally dead; Detected and Aborted are the
    // expected outcomes.
    if (r.status == PodemStatus::Detected) {
      EXPECT_FALSE(r.pattern.pi.empty() && r.pattern.ppi.empty());
    }
  }
}

TEST(Tpg, WorksOnUnmappedCircuits) {
  // The ATPG does not require the NAND/NOR/INV mapping.
  const Netlist nl = make_s27();
  const TestSet ts = generate_tests(nl);
  EXPECT_GT(ts.fault_coverage(), 0.9);
  EXPECT_EQ(ts.aborted_faults, 0u);
}

}  // namespace
}  // namespace scanpower
