// Backend cross-check suite: the house determinism rule applied to the
// kernel-backend axis. Every backend available on this host must produce
// results bit-identical to the scalar reference engine -- fault-sim
// detections, diagnosis rankings (and suspect sets), observability sums
// and fill choices -- at every (block width, thread count) in the
// matrix, on the benchgen ISCAS89-like profiles and on the degenerate
// netlist shapes from test_degenerate.cpp.
//
// Backends that the host cannot run (AVX TUs compiled out, CPU without
// the features) are skipped here and covered by the CI matrix on hosts
// that do have them; the wide backend and scalar are always available so
// the suite is never vacuous.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/sim_backend.hpp"
#include "benchgen/benchgen.hpp"
#include "core/dont_care_fill.hpp"
#include "diag/diagnose.hpp"
#include "diag/response.hpp"
#include "netlist/builder.hpp"
#include "power/leakage_model.hpp"
#include "power/observability.hpp"
#include "techmap/techmap.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace scanpower {
namespace {

// ---------- matrix helpers --------------------------------------------------

/// Non-scalar backends runnable on this host (scalar is the reference).
std::vector<SimBackend> backends_under_test() {
  std::vector<SimBackend> v{SimBackend::Wide};
  if (backend_available(SimBackend::Avx2)) v.push_back(SimBackend::Avx2);
  if (backend_available(SimBackend::Avx512)) v.push_back(SimBackend::Avx512);
  return v;
}

/// The (W, T) matrix for a backend: W in {1, 4} (the wide backend's floor
/// is 16, so it runs {16, 32}) crossed with T in {1, 4}.
std::vector<std::pair<int, int>> matrix_for(SimBackend b) {
  const std::vector<int> widths =
      b == SimBackend::Wide ? std::vector<int>{16, 32} : std::vector<int>{1, 4};
  std::vector<std::pair<int, int>> m;
  for (int w : widths) {
    for (int t : {1, 4}) m.emplace_back(w, t);
  }
  return m;
}

std::vector<TestPattern> random_patterns(const Netlist& nl, int n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestPattern> pats;
  pats.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pats.push_back(random_pattern(nl, rng));
  return pats;
}

// Degenerate shapes (same as test_degenerate.cpp): a single gate, an
// output wired straight to an input, and a DFF-only shift path.
Netlist single_gate_netlist() {
  NetlistBuilder b("one_gate");
  b.add_input("a");
  b.add_gate(GateType::Not, "y", {"a"});
  b.add_output("y");
  return b.link();
}

Netlist po_from_pi_netlist() {
  NetlistBuilder b("wire");
  b.add_input("a");
  b.add_input("b");
  b.add_gate(GateType::Not, "y", {"b"});
  b.add_output("a");
  b.add_output("y");
  return b.link();
}

Netlist all_dff_netlist() {
  NetlistBuilder b("shift3");
  b.add_input("si");
  b.add_gate(GateType::Dff, "q1", {"si"});
  b.add_gate(GateType::Dff, "q2", {"q1"});
  b.add_gate(GateType::Dff, "q3", {"q2"});
  b.add_output("q3");
  return b.link();
}

// ---------- selection contract ----------------------------------------------

TEST(BackendApi, NameParseRoundTrip) {
  for (SimBackend b : {SimBackend::Auto, SimBackend::Scalar, SimBackend::Avx2,
                       SimBackend::Avx512, SimBackend::Wide}) {
    SimBackend back = SimBackend::Auto;
    ASSERT_TRUE(parse_backend(backend_name(b), &back)) << backend_name(b);
    EXPECT_EQ(back, b);
  }
  SimBackend out;
  EXPECT_FALSE(parse_backend("sse9", &out));
  EXPECT_FALSE(parse_backend("", &out));
}

TEST(BackendApi, WidthSupportMatrix) {
  for (int w : {1, 2, 4, 8, 16, 32}) {
    EXPECT_TRUE(backend_supports_words(SimBackend::Scalar, w));
    EXPECT_TRUE(backend_supports_words(SimBackend::Auto, w));
    EXPECT_EQ(backend_supports_words(SimBackend::Avx2, w), w <= 8);
    EXPECT_EQ(backend_supports_words(SimBackend::Avx512, w), w <= 8);
    EXPECT_EQ(backend_supports_words(SimBackend::Wide, w), w >= 16);
  }
  for (SimBackend b : {SimBackend::Scalar, SimBackend::Avx2, SimBackend::Wide,
                       SimBackend::Auto}) {
    EXPECT_FALSE(backend_supports_words(b, 3));
    EXPECT_FALSE(backend_supports_words(b, 64));
    EXPECT_FALSE(backend_supports_words(b, 0));
  }
}

TEST(BackendApi, ExplicitRequestsAreHardContracts) {
  // Scalar always resolves, at every width.
  for (int w : {1, 2, 4, 8, 16, 32}) {
    EXPECT_EQ(resolve_backend(SimBackend::Scalar, w), SimBackend::Scalar);
  }
  // Width-incompatible explicit requests throw (both backends are
  // "available" in the sense tested here: wide always, and the width
  // check fires before availability can save an AVX host).
  EXPECT_THROW(resolve_backend(SimBackend::Wide, 4), Error);
  EXPECT_THROW(resolve_backend(SimBackend::Wide, 8), Error);
  if (backend_available(SimBackend::Avx2)) {
    EXPECT_THROW(resolve_backend(SimBackend::Avx2, 16), Error);
    EXPECT_EQ(resolve_backend(SimBackend::Avx2, 4), SimBackend::Avx2);
  } else {
    EXPECT_THROW(resolve_backend(SimBackend::Avx2, 4), Error);
  }
  if (!backend_available(SimBackend::Avx512)) {
    EXPECT_THROW(resolve_backend(SimBackend::Avx512, 4), Error);
  }
  EXPECT_THROW(resolve_backend(SimBackend::Scalar, 5), Error);
}

// Auto resolution, including the SCANPOWER_FORCE_BACKEND steering that
// the CI matrix uses: a forced backend wins exactly when it is available
// and supports the width; otherwise detection falls back gracefully
// (never an error). The test honors whatever environment it runs under.
TEST(BackendApi, AutoResolvesToForcedOrBestAvailable) {
  SimBackend forced = SimBackend::Auto;
  if (const char* env = std::getenv("SCANPOWER_FORCE_BACKEND")) {
    if (env[0] != '\0' && !parse_backend(env, &forced)) {
      forced = SimBackend::Auto;
    }
  }
  for (int w : {1, 2, 4, 8, 16, 32}) {
    const SimBackend r = resolve_backend(SimBackend::Auto, w);
    EXPECT_NE(r, SimBackend::Auto);
    EXPECT_TRUE(backend_available(r));
    EXPECT_TRUE(backend_supports_words(r, w));
    if (forced != SimBackend::Auto && backend_available(forced) &&
        backend_supports_words(forced, w)) {
      EXPECT_EQ(r, forced) << "w=" << w;
    } else {
      EXPECT_EQ(r, detect_best_backend(w)) << "w=" << w;
    }
  }
}

TEST(BackendApi, ScalarAndWideAlwaysAvailable) {
  EXPECT_TRUE(backend_available(SimBackend::Scalar));
  EXPECT_TRUE(backend_available(SimBackend::Wide));
  EXPECT_TRUE(backend_compiled(SimBackend::Scalar));
  EXPECT_TRUE(backend_compiled(SimBackend::Wide));
}

// ---------- fault simulation ------------------------------------------------

void expect_same_fault_sim(const FaultSimResult& ref, const FaultSimResult& got,
                           const std::string& what) {
  EXPECT_EQ(ref.detected, got.detected) << what;
  EXPECT_EQ(ref.detecting_pattern, got.detecting_pattern) << what;
  EXPECT_EQ(ref.new_detects_per_pattern, got.new_detects_per_pattern) << what;
  EXPECT_EQ(ref.num_detected, got.num_detected) << what;
}

void cross_check_fault_sim(const Netlist& nl, const std::string& name) {
  const auto faults = collapse_faults(nl);
  ASSERT_FALSE(faults.empty()) << name;
  const auto pats = random_patterns(nl, 48, 0xbac0 + nl.num_gates());

  for (SimBackend b : backends_under_test()) {
    for (auto [w, t] : matrix_for(b)) {
      FaultSimOptions ref_opts;
      ref_opts.block_words = w;
      ref_opts.backend = SimBackend::Scalar;
      FaultSimulator ref_sim(nl, ref_opts);
      const FaultSimResult ref = ref_sim.run(pats, faults);

      FaultSimOptions opts;
      opts.block_words = w;
      opts.num_threads = t;
      opts.backend = b;
      FaultSimulator sim(nl, opts);
      expect_same_fault_sim(ref, sim.run(pats, faults),
                            name + " backend=" + backend_name(b) +
                                " W=" + std::to_string(w) +
                                " T=" + std::to_string(t));
    }
  }
}

class BackendProfileTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BackendProfileTest, FaultSimMatchesScalar) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like(GetParam()));
  cross_check_fault_sim(nl, GetParam());
}

std::vector<std::string> all_profile_names() {
  std::vector<std::string> names;
  for (const SynthProfile& p : iscas89_profiles()) names.push_back(p.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, BackendProfileTest,
                         ::testing::ValuesIn(all_profile_names()),
                         [](const auto& info) { return info.param; });

class BackendDegenerateTest : public ::testing::TestWithParam<int> {
 protected:
  Netlist make() const {
    switch (GetParam()) {
      case 0: return single_gate_netlist();
      case 1: return po_from_pi_netlist();
      default: return all_dff_netlist();
    }
  }
};

TEST_P(BackendDegenerateTest, FaultSimMatchesScalar) {
  const Netlist nl = make();
  cross_check_fault_sim(nl, nl.name());
}

INSTANTIATE_TEST_SUITE_P(Shapes, BackendDegenerateTest,
                         ::testing::Values(0, 1, 2));

// ---------- diagnosis rankings ----------------------------------------------

void expect_same_diagnosis(const DiagnosisResult& ref,
                           const DiagnosisResult& got,
                           const std::string& what) {
  ASSERT_EQ(ref.ranked.size(), got.ranked.size()) << what;
  for (std::size_t i = 0; i < ref.ranked.size(); ++i) {
    EXPECT_EQ(ref.ranked[i].fault, got.ranked[i].fault) << what << " i=" << i;
    EXPECT_EQ(ref.ranked[i].fault_index, got.ranked[i].fault_index)
        << what << " i=" << i;
    EXPECT_EQ(ref.ranked[i].tfsf, got.ranked[i].tfsf) << what << " i=" << i;
    EXPECT_EQ(ref.ranked[i].tfsp, got.ranked[i].tfsp) << what << " i=" << i;
    EXPECT_EQ(ref.ranked[i].tpsf, got.ranked[i].tpsf) << what << " i=" << i;
    EXPECT_EQ(ref.ranked[i].dropped, got.ranked[i].dropped)
        << what << " i=" << i;
  }
  ASSERT_EQ(ref.multiplets.size(), got.multiplets.size()) << what;
  for (std::size_t s = 0; s < ref.multiplets.size(); ++s) {
    ASSERT_EQ(ref.multiplets[s].members.size(),
              got.multiplets[s].members.size())
        << what << " set=" << s;
    for (std::size_t i = 0; i < ref.multiplets[s].members.size(); ++i) {
      EXPECT_EQ(ref.multiplets[s].members[i].fault,
                got.multiplets[s].members[i].fault)
          << what << " set=" << s << " i=" << i;
    }
    EXPECT_EQ(ref.multiplets[s].covered, got.multiplets[s].covered) << what;
    EXPECT_EQ(ref.multiplets[s].uncovered, got.multiplets[s].uncovered)
        << what;
  }
  EXPECT_EQ(ref.union_fallback, got.union_fallback) << what;
  EXPECT_EQ(ref.num_candidates, got.num_candidates) << what;
  EXPECT_EQ(ref.num_dropped, got.num_dropped) << what;
}

TEST(BackendCrossCheck, DiagnosisRankingsMatchScalar) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const auto faults = collapse_faults(nl);
  const auto pats = random_patterns(nl, 64, 0xd1a6);
  ResponseCapture cap(nl, 1);
  // A single-fault log and a two-fault (multiplet-exercising) log, built
  // from faults the pattern set actually detects.
  FaultSimulator fsim(nl, {});
  const FaultSimResult fres = fsim.run(pats, faults);
  std::vector<Fault> detected;
  for (std::size_t i = 0; i < faults.size() && detected.size() < 2; ++i) {
    // Distinct gates, so the pair is a consistent two-fault machine.
    if (fres.detected[i] &&
        (detected.empty() || detected[0].gate != faults[i].gate)) {
      detected.push_back(faults[i]);
    }
  }
  ASSERT_EQ(detected.size(), 2u);
  FailureLog single = cap.inject(pats, detected[0]);
  ASSERT_FALSE(single.failures.empty());
  FailureLog twin = cap.inject(pats, std::span<const Fault>(detected));
  for (const FailureLog* log : {&single, &twin}) {
    for (SimBackend b : backends_under_test()) {
      for (auto [w, t] : matrix_for(b)) {
        DiagnosisOptions ref_opts;
        ref_opts.block_words = w;
        ref_opts.backend = SimBackend::Scalar;
        Diagnoser ref_diag(nl, ref_opts);
        const DiagnosisResult ref = ref_diag.diagnose(pats, faults, *log);

        DiagnosisOptions opts;
        opts.block_words = w;
        opts.backend = b;
        opts.num_threads = t;
        Diagnoser diag(nl, opts);
        expect_same_diagnosis(ref, diag.diagnose(pats, faults, *log),
                              std::string("backend=") + backend_name(b) +
                                  " W=" + std::to_string(w) +
                                  " T=" + std::to_string(t));
      }
    }
  }
}

// ---------- observability sums ----------------------------------------------

TEST(BackendCrossCheck, ObservabilitySumsMatchScalar) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s444"));
  const LeakageModel model;
  for (SimBackend b : backends_under_test()) {
    for (auto [w, t] : matrix_for(b)) {
      ObservabilityOptions ref_opts;
      ref_opts.samples = 512;
      ref_opts.block_words = w;
      ref_opts.backend = SimBackend::Scalar;
      const LeakageObservability ref(nl, model, ref_opts);

      ObservabilityOptions opts = ref_opts;
      opts.backend = b;
      opts.num_threads = t;
      const LeakageObservability got(nl, model, opts);
      const std::string what = std::string("backend=") + backend_name(b) +
                               " W=" + std::to_string(w) +
                               " T=" + std::to_string(t);
      // Bit-identical doubles: the masked-add reduction has one defined
      // accumulation order shared by every backend.
      EXPECT_EQ(ref.values(), got.values()) << what;
      EXPECT_EQ(ref.mean_leakage_na(), got.mean_leakage_na()) << what;
    }
  }
}

// ---------- fill choices ----------------------------------------------------

TEST(BackendCrossCheck, FillChoicesMatchScalar) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s382"));
  const LeakageModel model;
  const std::vector<bool> eligible(nl.dffs().size(), true);
  for (SimBackend b : backends_under_test()) {
    for (auto [w, t] : matrix_for(b)) {
      FillOptions ref_opts;
      // Enough trials that the candidate-count clamp never narrows any
      // width in the matrix (32 words * 64 lanes = 2048 lanes).
      ref_opts.trials = 4096;
      ref_opts.block_words = w;
      ref_opts.backend = SimBackend::Scalar;
      std::vector<Logic> ref_pi(nl.inputs().size(), Logic::X);
      std::vector<Logic> ref_mux(nl.dffs().size(), Logic::X);
      const FillResult ref = fill_dont_cares_min_leakage(
          nl, model, ref_pi, ref_mux, eligible, ref_opts);

      FillOptions opts = ref_opts;
      opts.backend = b;
      opts.num_threads = t;
      std::vector<Logic> pi(nl.inputs().size(), Logic::X);
      std::vector<Logic> mux(nl.dffs().size(), Logic::X);
      const FillResult got =
          fill_dont_cares_min_leakage(nl, model, pi, mux, eligible, opts);

      const std::string what = std::string("backend=") + backend_name(b) +
                               " W=" + std::to_string(w) +
                               " T=" + std::to_string(t);
      EXPECT_EQ(ref_pi, pi) << what;
      EXPECT_EQ(ref_mux, mux) << what;
      EXPECT_EQ(ref.best_leakage_na, got.best_leakage_na) << what;
      EXPECT_EQ(ref.first_leakage_na, got.first_leakage_na) << what;
      EXPECT_EQ(ref.free_inputs, got.free_inputs) << what;
    }
  }
}

// The threaded fill must also be bit-identical to serial at a fixed
// backend/width -- the per-64-trial-word seeding satellite on its own.
TEST(BackendCrossCheck, ThreadedFillMatchesSerial) {
  const Netlist nl = map_to_nand_nor_inv(make_iscas89_like("s344"));
  const LeakageModel model;
  const std::vector<bool> eligible(nl.dffs().size(), true);
  FillOptions serial;
  serial.trials = 1024;
  serial.block_words = 1;
  serial.num_threads = 1;
  std::vector<Logic> ref_pi(nl.inputs().size(), Logic::X);
  std::vector<Logic> ref_mux(nl.dffs().size(), Logic::X);
  const FillResult ref = fill_dont_cares_min_leakage(nl, model, ref_pi,
                                                     ref_mux, eligible, serial);
  for (int t : {2, 4, 0}) {
    FillOptions opts = serial;
    opts.num_threads = t;
    std::vector<Logic> pi(nl.inputs().size(), Logic::X);
    std::vector<Logic> mux(nl.dffs().size(), Logic::X);
    const FillResult got =
        fill_dont_cares_min_leakage(nl, model, pi, mux, eligible, opts);
    EXPECT_EQ(ref_pi, pi) << "T=" << t;
    EXPECT_EQ(ref_mux, mux) << "T=" << t;
    EXPECT_EQ(ref.best_leakage_na, got.best_leakage_na) << "T=" << t;
    EXPECT_EQ(ref.first_leakage_na, got.first_leakage_na) << "T=" << t;
  }
}

}  // namespace
}  // namespace scanpower
