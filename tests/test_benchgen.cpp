#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "benchgen/benchgen.hpp"
#include "netlist/stats.hpp"

namespace scanpower {
namespace {

TEST(Benchgen, S27IsTheGenuineNetlist) {
  const Netlist nl = make_s27();
  // Spot-check known structure: G11 = NOR(G5, G9).
  const GateId g11 = nl.find("G11");
  ASSERT_NE(g11, kInvalidGate);
  EXPECT_EQ(nl.type(g11), GateType::Nor);
  EXPECT_EQ(nl.gate_name(nl.fanins(g11)[0]), "G5");
  EXPECT_EQ(nl.gate_name(nl.fanins(g11)[1]), "G9");
  // G7 = DFF(G13).
  const GateId g7 = nl.find("G7");
  EXPECT_EQ(nl.type(g7), GateType::Dff);
  EXPECT_EQ(nl.gate_name(nl.fanins(g7)[0]), "G13");
}

class ProfileTest : public ::testing::TestWithParam<SynthProfile> {};

TEST_P(ProfileTest, MatchesPublishedProfile) {
  const SynthProfile& p = GetParam();
  const Netlist nl = generate_synthetic(p);
  const NetlistStats st = compute_stats(nl);
  EXPECT_EQ(st.num_inputs, static_cast<std::size_t>(p.num_pi)) << p.name;
  EXPECT_EQ(st.num_outputs, static_cast<std::size_t>(p.num_po)) << p.name;
  EXPECT_EQ(st.num_dffs, static_cast<std::size_t>(p.num_ff)) << p.name;
  EXPECT_EQ(st.num_comb_gates, static_cast<std::size_t>(p.num_gates)) << p.name;
}

TEST_P(ProfileTest, NoDanglingLogic) {
  const SynthProfile& p = GetParam();
  const Netlist nl = generate_synthetic(p);
  // Every combinational gate must drive something (a gate, PO, or FF).
  std::size_t dangling = 0;
  for (GateId id = 0; id < nl.num_gates(); ++id) {
    if (!is_combinational(nl.type(id))) continue;
    if (nl.fanouts(id).empty() && !nl.is_output(id)) ++dangling;
  }
  // The generator drains undriven signals into POs/FF-Ds; a few can
  // remain when the undriven pool exceeds the sink count.
  EXPECT_LE(dangling, static_cast<std::size_t>(p.num_gates) / 50) << p.name;
}

TEST_P(ProfileTest, DeterministicForSeed) {
  const SynthProfile& p = GetParam();
  const Netlist a = generate_synthetic(p);
  const Netlist b = generate_synthetic(p);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (GateId id = 0; id < a.num_gates(); ++id) {
    EXPECT_EQ(a.gate_name(id), b.gate_name(id));
    EXPECT_EQ(a.type(id), b.type(id));
    EXPECT_EQ(a.fanins(id), b.fanins(id));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Iscas89, ProfileTest, ::testing::ValuesIn(iscas89_profiles()),
    [](const ::testing::TestParamInfo<SynthProfile>& info) {
      return info.param.name;
    });

TEST(Benchgen, DifferentSeedsDifferentCircuits) {
  SynthProfile a{"x", 5, 5, 5, 50, 1};
  SynthProfile b{"x", 5, 5, 5, 50, 2};
  const Netlist na = generate_synthetic(a);
  const Netlist nb = generate_synthetic(b);
  bool differ = na.num_gates() != nb.num_gates();
  for (GateId id = 0; !differ && id < na.num_gates(); ++id) {
    differ = na.type(id) != nb.type(id) || na.fanins(id) != nb.fanins(id);
  }
  EXPECT_TRUE(differ);
}

TEST(Benchgen, UnknownCircuitNameThrows) {
  EXPECT_THROW(make_iscas89_like("s99999"), Error);
}

TEST(Benchgen, ProfileValidation) {
  SynthProfile bad{"bad", 0, 1, 1, 10, 1};
  EXPECT_THROW(generate_synthetic(bad), Error);
  SynthProfile too_small{"small", 2, 8, 8, 10, 1};
  EXPECT_THROW(generate_synthetic(too_small), Error);
}

TEST(Benchgen, ReasonableDepth) {
  // Depth should be circuit-like: more than 3 levels, less than the gate
  // count (i.e. not one long chain).
  for (const char* name : {"s344", "s641", "s1423"}) {
    const Netlist nl = make_iscas89_like(name);
    EXPECT_GT(nl.depth(), 3u) << name;
    EXPECT_LT(nl.depth(), nl.num_gates() / 3) << name;
  }
}

}  // namespace
}  // namespace scanpower
